(* Requirements audit of an EVITA-scale automotive on-board architecture.

   Sect. 4.4 of the paper reports the method's application in the EVITA
   project: 29 authenticity requirements from a model with 38 component
   boundary actions and 16 system boundary actions (9 maximal, 7 minimal).
   This example runs the full manual analysis on our synthetic EVITA-scale
   architecture and checks the profile.

   Run with: dune exec examples/evita_audit.exe *)

module Evita = Fsa_vanet.Evita
module Analysis = Fsa_core.Analysis
module Auth = Fsa_requirements.Auth

let () =
  let report = Analysis.manual ~stakeholder:Evita.stakeholder Evita.model in

  Fmt.pr "=== EVITA-scale on-board architecture ===@.";
  Fmt.pr "components:@.";
  List.iter
    (fun c ->
      Fmt.pr "  %-14s boundary actions: @[%a@]@."
        (Fsa_model.Component.name c)
        Fmt.(list ~sep:comma Fsa_term.Action.pp)
        (Fsa_model.Component.boundary_actions c))
    (Fsa_model.Sos.components Evita.model);

  Fmt.pr "@.model statistics: %a@." Fsa_model.Sos.pp_stats report.Analysis.m_stats;

  Fmt.pr "@.system inputs (minimal elements):@.  @[%a@]@."
    Fmt.(list ~sep:comma Fsa_term.Action.pp)
    report.Analysis.m_boundary.Fsa_model.Sos.incoming;
  Fmt.pr "system outputs (maximal elements):@.  @[%a@]@."
    Fmt.(list ~sep:comma Fsa_term.Action.pp)
    report.Analysis.m_boundary.Fsa_model.Sos.outgoing;

  Fmt.pr "@.authenticity requirements (%d):@.%a@."
    (List.length report.Analysis.m_requirements)
    Auth.pp_set report.Analysis.m_requirements;

  Fmt.pr "@.=== profile check against the paper ===@.";
  Fmt.pr "paper:    %a@." Evita.pp_profile Evita.paper_profile;
  Fmt.pr "measured: %a@." Evita.pp_profile (Evita.measured_profile ());
  let ok = Evita.measured_profile () = Evita.paper_profile in
  Fmt.pr "profile %s@." (if ok then "MATCHES" else "DIFFERS");

  Fmt.pr "@.=== prioritised work list (top 10) ===@.";
  let ranking =
    Fsa_requirements.Prioritise.rank Evita.model report.Analysis.m_requirements
  in
  List.iteri
    (fun i s ->
      if i < 10 then
        Fmt.pr "%2d. %a@." (i + 1) Fsa_requirements.Prioritise.pp_scored s)
    ranking;

  (* A requirements-inspection table: for each output, which inputs must
     be authentic. *)
  Fmt.pr "@.=== dependence of outputs on inputs ===@.";
  let by_effect =
    List.sort_uniq Fsa_term.Action.compare
      (List.map Auth.effect report.Analysis.m_requirements)
  in
  List.iter
    (fun effect ->
      let causes =
        List.filter_map
          (fun r ->
            if Fsa_term.Action.equal (Auth.effect r) effect then
              Some (Auth.cause r)
            else None)
          report.Analysis.m_requirements
      in
      Fmt.pr "  %-14s <- @[%a@]@."
        (Fsa_term.Action.to_string effect)
        Fmt.(list ~sep:comma Fsa_term.Action.pp)
        causes)
    by_effect
