lib/graph/dot.ml: Buffer Fmt Format Fun List String
