test/test_report.ml: Alcotest Filename Fsa_core Fsa_lts Fsa_mc Fsa_spec Fsa_vanet List String Sys
