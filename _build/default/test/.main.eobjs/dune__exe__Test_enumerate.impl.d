test/test_enumerate.ml: Alcotest Array Fsa_lts Fsa_model Fsa_term Fsa_vanet Fun List Option Queue
