test/test_monitor.ml: Alcotest Fmt Fsa_core Fsa_lts Fsa_mc Fsa_requirements Fsa_term Fsa_vanet Lazy List String
