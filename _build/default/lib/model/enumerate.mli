(** Enumeration of SoS instances (Sect. 4.2): all structurally different
    combinations of component instances, isomorphic combinations
    neglected.

    Exhaustive and exponential in the number of candidate links; intended
    for the small instance sizes at which architectural analysis happens. *)

module Action = Fsa_term.Action

type template = {
  t_name : string;
  t_build : int -> Component.t;
  t_outputs : string list;
  t_inputs : string list;
}

val template :
  name:string ->
  build:(int -> Component.t) ->
  outputs:string list ->
  inputs:string list ->
  template

val compositions :
  ?max_candidates:int ->
  templates:template list ->
  connectors:(string * string) list ->
  size:int ->
  unit ->
  Sos.t list
(** All connected, loop-free instances of exactly [size] components whose
    links follow the (output label, input label) connector rules.
    @raise Invalid_argument when the candidate-link count exceeds
    [max_candidates] (default 16). *)

val up_to :
  ?max_candidates:int ->
  templates:template list ->
  connectors:(string * string) list ->
  max_size:int ->
  unit ->
  Sos.t list
