examples/quickstart.mli:
