test/test_requirements.ml: Alcotest Fmt Fsa_requirements Fsa_term Fsa_vanet List String
