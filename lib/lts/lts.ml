(* Reachability graphs (Definition 3 of the paper).

   The behaviour of an APA is the set of all coherent sequences of state
   transitions starting in the initial state; state transitions are the
   labelled edges of a directed graph whose nodes are the reachable global
   states.  States are numbered in breadth-first discovery order starting
   from 1, and printed M-1, M-2, ... in the style of the SH verification
   tool. *)

module Term = Fsa_term.Term
module Action = Fsa_term.Action
module State = Fsa_apa.Apa.State

type transition = { t_src : int; t_label : Action.t; t_dst : int }

type t = {
  apa_name : string;
  states : State.t array;
  initial : int;  (* always 0 *)
  succs : transition list array;  (* outgoing transitions, by source *)
  preds : transition list array;  (* incoming transitions, by target *)
}

exception State_space_too_large of int

let log_src = Logs.Src.create "fsa.lts" ~doc:"state-space exploration"

module Log = (val Logs.src_log log_src)

module Metrics = Fsa_obs.Metrics
module Span = Fsa_obs.Span
module Progress = Fsa_obs.Progress

let m_states = Metrics.counter "lts.states_explored"
let m_transitions = Metrics.counter "lts.transitions"
let m_dedup = Metrics.counter "lts.dedup_hits"
let g_frontier_peak = Metrics.gauge "lts.frontier_peak"
let g_rate = Metrics.gauge "lts.states_per_sec"

let h_out_degree =
  Metrics.histogram ~buckets:[| 0.; 1.; 2.; 4.; 8.; 16.; 32.; 64. |]
    "lts.out_degree"

module State_table = Hashtbl.Make (struct
  type t = State.t

  let equal = State.equal
  let hash = State.hash
end)

let explore ?(max_states = 1_000_000) ?progress apa =
  Span.with_ ~cat:"lts" "lts.explore" @@ fun () ->
  let obs = Metrics.enabled () in
  let t0 = if obs then Span.now_ns () else 0L in
  let initial = Fsa_apa.Apa.initial_state apa in
  let index = State_table.create 1024 in
  State_table.replace index initial 0;
  let states = ref [ initial ] in
  let nb = ref 1 in
  let edges = ref [] in
  let queue = Queue.create () in
  Queue.add (0, initial) queue;
  while not (Queue.is_empty queue) do
    let src_id, src = Queue.pop queue in
    let succs = Fsa_apa.Apa.step apa src in
    if obs then begin
      Metrics.incr m_states;
      Metrics.incr ~by:(List.length succs) m_transitions;
      Metrics.observe h_out_degree (float_of_int (List.length succs));
      Metrics.set_gauge_max g_frontier_peak (float_of_int (Queue.length queue))
    end;
    (match progress with
    | Some p -> Progress.tick p ~count:!nb ~frontier:(Queue.length queue)
    | None -> ());
    List.iter
      (fun (_rule, label, dst) ->
        let dst_id =
          match State_table.find_opt index dst with
          | Some id ->
            if obs then Metrics.incr m_dedup;
            id
          | None ->
            let id = !nb in
            if id >= max_states then raise (State_space_too_large max_states);
            State_table.replace index dst id;
            states := dst :: !states;
            incr nb;
            Queue.add (id, dst) queue;
            id
        in
        edges := { t_src = src_id; t_label = label; t_dst = dst_id } :: !edges)
      succs
  done;
  if obs then begin
    let elapsed = Int64.to_float (Int64.sub (Span.now_ns ()) t0) /. 1e9 in
    if elapsed > 0. then
      Metrics.set_gauge g_rate (float_of_int !nb /. elapsed)
  end;
  (match progress with Some p -> Progress.finish p ~count:!nb | None -> ());
  Log.debug (fun m ->
      m "explored %s: %d states, %d transitions" (Fsa_apa.Apa.name apa) !nb
        (List.length !edges));
  let states = Array.of_list (List.rev !states) in
  let succs = Array.make (Array.length states) [] in
  let preds = Array.make (Array.length states) [] in
  List.iter
    (fun tr ->
      succs.(tr.t_src) <- tr :: succs.(tr.t_src);
      preds.(tr.t_dst) <- tr :: preds.(tr.t_dst))
    !edges;
  (* Keep transition lists deterministically ordered. *)
  let order a b =
    let c = Stdlib.compare a.t_src b.t_src in
    if c <> 0 then c
    else
      let c = Action.compare a.t_label b.t_label in
      if c <> 0 then c else Stdlib.compare a.t_dst b.t_dst
  in
  Array.iteri (fun i l -> succs.(i) <- List.sort order l) succs;
  Array.iteri (fun i l -> preds.(i) <- List.sort order l) preds;
  { apa_name = Fsa_apa.Apa.name apa; states; initial = 0; succs; preds }

let name t = t.apa_name
let nb_states t = Array.length t.states
let nb_transitions t = Array.fold_left (fun acc l -> acc + List.length l) 0 t.succs
let initial t = t.initial
let state t i = t.states.(i)
let succ t i = t.succs.(i)
let pred t i = t.preds.(i)

let transitions t = Array.to_list t.succs |> List.concat

let state_name i = Printf.sprintf "M-%d" (i + 1)

let fold_states f t acc =
  let acc = ref acc in
  Array.iteri (fun i _ -> acc := f i !acc) t.states;
  !acc

let alphabet t =
  List.fold_left
    (fun acc tr -> Action.Set.add tr.t_label acc)
    Action.Set.empty (transitions t)

(* Dead states: no outgoing transition ("+++ dead +++" in the tool). *)
let deadlocks t =
  fold_states (fun i acc -> if t.succs.(i) = [] then i :: acc else acc) t []
  |> List.rev

(* Minima of the partial order of functionally dependent actions: every
   action leaving the initial state on any trace is a minimum, because it
   does not depend on any other action having occurred before
   (Sect. 5.4). *)
let minima t =
  List.fold_left
    (fun acc tr -> Action.Set.add tr.t_label acc)
    Action.Set.empty t.succs.(t.initial)

(* Maxima: the actions leading into a dead state from any trace — they do
   not trigger any further action after they have been performed. *)
let maxima t =
  List.fold_left
    (fun acc dead ->
      List.fold_left
        (fun acc tr -> Action.Set.add tr.t_label acc)
        acc t.preds.(dead))
    Action.Set.empty (deadlocks t)

(* Shortest trace (sequence of labels) from the initial state to state [i]. *)
let trace_to t i =
  let n = nb_states t in
  let prev = Array.make n None in
  let visited = Array.make n false in
  let queue = Queue.create () in
  visited.(t.initial) <- true;
  Queue.add t.initial queue;
  (try
     while not (Queue.is_empty queue) do
       let s = Queue.pop queue in
       if s = i then raise Exit;
       List.iter
         (fun tr ->
           if not visited.(tr.t_dst) then begin
             visited.(tr.t_dst) <- true;
             prev.(tr.t_dst) <- Some tr;
             Queue.add tr.t_dst queue
           end)
         t.succs.(s)
     done
   with Exit -> ());
  if not visited.(i) then None
  else begin
    let rec build acc s =
      if s = t.initial then acc
      else
        match prev.(s) with
        | None -> acc
        | Some tr -> build (tr.t_label :: acc) tr.t_src
    in
    Some (build [] i)
  end

(* All words of the (prefix-closed) action language up to length [n] —
   exponential, for tests and small examples only. *)
let words ~max_len t =
  let rec go acc word len s =
    let acc = List.rev word :: acc in
    if len = max_len then acc
    else
      List.fold_left
        (fun acc tr -> go acc (tr.t_label :: word) (len + 1) tr.t_dst)
        acc t.succs.(s)
  in
  List.sort_uniq (List.compare Action.compare) (go [] [] 0 t.initial)

(* Does some occurrence of a [target]-labelled transition happen on a path
   from the initial state that contains no prior [before]-labelled
   transition?  Used for the direct (non-abstracted) functional dependence
   test: [target] depends on [before] iff no such path exists. *)
let reachable_without t ~avoid ~target =
  let n = nb_states t in
  let visited = Array.make n false in
  let queue = Queue.create () in
  visited.(t.initial) <- true;
  Queue.add t.initial queue;
  let found = ref false in
  while not (Queue.is_empty queue || !found) do
    let s = Queue.pop queue in
    List.iter
      (fun tr ->
        if target tr.t_label then found := true
        else if (not (avoid tr.t_label)) && not visited.(tr.t_dst) then begin
          visited.(tr.t_dst) <- true;
          Queue.add tr.t_dst queue
        end)
      t.succs.(s)
  done;
  !found

let depends_on t ~max_action ~min_action =
  not
    (reachable_without t
       ~avoid:(Action.equal min_action)
       ~target:(Action.equal max_action))

(* The number of complete runs (maximal paths from the initial state to a
   dead state); [None] when the graph has a cycle.  For the paper's
   every-action-once scenarios this equals the number of linear
   extensions of the event poset. *)
let count_complete_runs t =
  let n = nb_states t in
  let colour = Array.make n 0 in
  let memo = Array.make n (-1) in
  let exception Cyclic in
  let rec count s =
    if memo.(s) >= 0 then memo.(s)
    else if colour.(s) = 1 then raise Cyclic
    else begin
      colour.(s) <- 1;
      let total =
        match t.succs.(s) with
        | [] -> 1
        | succs -> List.fold_left (fun acc tr -> acc + count tr.t_dst) 0 succs
      in
      colour.(s) <- 2;
      memo.(s) <- total;
      total
    end
  in
  match count t.initial with total -> Some total | exception Cyclic -> None

(* Classify dead states into complete runs and stuck (incomplete) ones by
   a caller-supplied completion predicate on states — a modelling-error
   diagnostic: a stuck deadlock usually indicates a message consumed by a
   component that could not process it. *)
type deadlock_report = { dr_complete : int list; dr_stuck : int list }

let classify_deadlocks t ~complete =
  let complete_l, stuck =
    List.partition (fun s -> complete t.states.(s)) (deadlocks t)
  in
  { dr_complete = complete_l; dr_stuck = stuck }

type stats = {
  nb_states : int;
  nb_transitions : int;
  nb_deadlocks : int;
  nb_labels : int;
}

let stats t =
  { nb_states = nb_states t;
    nb_transitions = nb_transitions t;
    nb_deadlocks = List.length (deadlocks t);
    nb_labels = Action.Set.cardinal (alphabet t) }

let pp_stats ppf s =
  Fmt.pf ppf "states: %d, transitions: %d, dead states: %d, labels: %d"
    s.nb_states s.nb_transitions s.nb_deadlocks s.nb_labels

let dot ?(name = "reachability") t =
  let d = Fsa_graph.Dot.create ~graph_attrs:[ ("rankdir", "TB") ] name in
  let dead = deadlocks t in
  Array.iteri
    (fun i _ ->
      let attrs =
        if i = t.initial then [ ("shape", "box"); ("style", "bold") ]
        else if List.mem i dead then [ ("shape", "doublecircle") ]
        else []
      in
      Fsa_graph.Dot.node ~attrs d (state_name i))
    t.states;
  List.iter
    (fun tr ->
      Fsa_graph.Dot.edge
        ~attrs:[ ("label", Action.to_string tr.t_label) ]
        d (state_name tr.t_src) (state_name tr.t_dst))
    (transitions t);
  Fsa_graph.Dot.to_string d

(* The tool's summary of minima and maxima (Example 6): minima with the
   state reached from M-1 by that action; maxima with the state from which
   the dead state is entered. *)
let pp_min_max ppf t =
  let minima_entries =
    List.map (fun tr -> (tr.t_label, tr.t_dst)) t.succs.(t.initial)
  in
  let maxima_entries =
    List.concat_map
      (fun dead -> List.map (fun tr -> (tr.t_label, tr.t_src)) t.preds.(dead))
      (deadlocks t)
  in
  let pp_entry ppf (a, s) =
    Fmt.pf ppf "%a %s" Action.pp a (state_name s)
  in
  Fmt.pf ppf "@[<v>The minima of this analysis:@,%a@,The corresponding maxima:@,%a@]"
    Fmt.(list ~sep:cut pp_entry)
    minima_entries
    Fmt.(list ~sep:cut pp_entry)
    maxima_entries
