(** Threat trees generated from authenticity requirements — the
    anti-model view (cf. van Lamsweerde's anti-goals in the paper's
    related work).

    The anti-goal of auth(x, y, P) is "make y happen without authentic
    x"; its refinements are mechanical given the functional model: forge
    any flow on a cause-to-effect path, or compromise an endpoint. *)

module Action = Fsa_term.Action
module Auth = Fsa_requirements.Auth
module Flow = Fsa_model.Flow
module Sos = Fsa_model.Sos

type attack =
  | Forge_flow of Flow.t
  | Compromise_origin of Action.t
  | Compromise_sink of Action.t

type gate = Or | And

type t =
  | Goal of { description : string; gate : gate; children : t list }
  | Leaf of attack

val pp_attack : attack Fmt.t
val pp_tree : t Fmt.t

val of_requirement : Sos.t -> Auth.t -> t
val leaves : t -> attack list
val nb_vectors : t -> int

val residual_after_channel_protection : t -> attack list
(** The endpoint-compromise vectors that channel protection cannot
    close. *)

val dot : ?name:string -> t -> string
