(* Tests for Fsa_apa: rule matching semantics, execution, composition. *)

module Term = Fsa_term.Term
module Action = Fsa_term.Action
module Apa = Fsa_apa.Apa

let term = Alcotest.testable Term.pp Term.equal
let state = Alcotest.testable Apa.State.pp Apa.State.equal

let set = Term.Set.of_list
let sym = Term.sym
let var = Term.var

let labels_of_step apa st =
  List.map (fun (_, l, _) -> Action.label l) (Apa.step apa st)
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* State operations                                                    *)
(* ------------------------------------------------------------------ *)

let test_state_ops () =
  let s = Apa.State.set "c" (set [ sym "a" ]) Apa.State.empty in
  Alcotest.(check bool) "mem" true (Apa.State.mem_elt "c" (sym "a") s);
  let s2 = Apa.State.add_elt "c" (sym "b") s in
  Alcotest.(check int) "add" 2 (Term.Set.cardinal (Apa.State.get "c" s2));
  let s3 = Apa.State.remove_elt "c" (sym "a") s2 in
  Alcotest.(check bool) "removed" false (Apa.State.mem_elt "c" (sym "a") s3);
  Alcotest.(check bool) "missing component is empty" true
    (Term.Set.is_empty (Apa.State.get "nope" s));
  Alcotest.(check bool) "states with equal content equal" true
    (Apa.State.equal s (Apa.State.set "c" (set [ sym "a" ]) Apa.State.empty))

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let test_validation () =
  (* unknown component in a rule *)
  (match
     Apa.make ~components:[ ("c", Term.Set.empty) ]
       ~rules:[ Apa.rule "r" ~takes:[ Apa.take "nope" (var "x") ] ~puts:[] ]
       "bad"
   with
  | _ -> Alcotest.fail "unknown component must be rejected"
  | exception Invalid_argument _ -> ());
  (* unbound variable in a put *)
  (match
     Apa.make ~components:[ ("c", Term.Set.empty) ]
       ~rules:[ Apa.rule "r" ~takes:[] ~puts:[ Apa.put "c" (var "x") ] ]
       "bad"
   with
  | _ -> Alcotest.fail "unbound put variable must be rejected"
  | exception Invalid_argument _ -> ());
  (* non-ground initial content *)
  (match
     Apa.make ~components:[ ("c", set [ var "x" ]) ] ~rules:[] "bad"
   with
  | _ -> Alcotest.fail "non-ground initial content must be rejected"
  | exception Invalid_argument _ -> ());
  (* duplicate rule names *)
  match
    Apa.make ~components:[ ("c", Term.Set.empty) ]
      ~rules:
        [ Apa.rule "r" ~takes:[ Apa.take "c" (var "x") ] ~puts:[];
          Apa.rule "r" ~takes:[ Apa.take "c" (var "y") ] ~puts:[] ]
      "bad"
  with
  | _ -> Alcotest.fail "duplicate rule names must be rejected"
  | exception Invalid_argument _ -> ()

let test_neighbourhood () =
  let r =
    Apa.rule "r"
      ~takes:[ Apa.take "a" (var "x"); Apa.read "b" (var "y") ]
      ~puts:[ Apa.put "c" (var "x") ]
  in
  Alcotest.(check (list string)) "N(t)" [ "a"; "b"; "c" ] (Apa.neighbourhood r)

(* ------------------------------------------------------------------ *)
(* Execution semantics                                                 *)
(* ------------------------------------------------------------------ *)

let test_simple_move () =
  let apa =
    Apa.make
      ~components:[ ("src", set [ sym "a" ]); ("dst", Term.Set.empty) ]
      ~rules:
        [ Apa.rule "move" ~takes:[ Apa.take "src" (var "x") ]
            ~puts:[ Apa.put "dst" (var "x") ] ]
      "mover"
  in
  match Apa.step apa (Apa.initial_state apa) with
  | [ (_, label, next) ] ->
    Alcotest.(check string) "label" "move" (Action.label label);
    Alcotest.check state "moved"
      (Apa.State.set "src" Term.Set.empty
         (Apa.State.set "dst" (set [ sym "a" ]) Apa.State.empty))
      next;
    Alcotest.(check bool) "deadlocked after" true (Apa.is_deadlocked apa next)
  | other -> Alcotest.fail (Printf.sprintf "expected 1 transition, got %d" (List.length other))

let test_binding_enumeration () =
  (* two elements match the pattern: two interpretations *)
  let apa =
    Apa.make
      ~components:[ ("src", set [ sym "a"; sym "b" ]); ("dst", Term.Set.empty) ]
      ~rules:
        [ Apa.rule "move" ~takes:[ Apa.take "src" (var "x") ]
            ~puts:[ Apa.put "dst" (var "x") ] ]
      "mover"
  in
  Alcotest.(check int) "two interpretations" 2
    (List.length (Apa.step apa (Apa.initial_state apa)))

let test_distinct_consumption () =
  (* two consuming takes on one component must bind distinct elements *)
  let apa =
    Apa.make
      ~components:[ ("src", set [ sym "a"; sym "b" ]); ("dst", Term.Set.empty) ]
      ~rules:
        [ Apa.rule "pair"
            ~takes:[ Apa.take "src" (var "x"); Apa.take "src" (var "y") ]
            ~puts:[ Apa.put "dst" (Term.app "p" [ var "x"; var "y" ]) ] ]
      "pairer"
  in
  let steps = Apa.step apa (Apa.initial_state apa) in
  (* (a,b) and (b,a): the diagonal pairs (a,a), (b,b) are excluded *)
  Alcotest.(check int) "distinct elements" 2 (List.length steps);
  List.iter
    (fun (_, _, next) ->
      Alcotest.(check bool) "source emptied" true
        (Term.Set.is_empty (Apa.State.get "src" next)))
    steps

let test_read_does_not_consume () =
  let apa =
    Apa.make
      ~components:[ ("cfg", set [ sym "k" ]); ("out", Term.Set.empty) ]
      ~rules:
        [ Apa.rule "use" ~takes:[ Apa.read "cfg" (var "x") ]
            ~puts:[ Apa.put "out" (var "x") ] ]
      "reader"
  in
  match Apa.step apa (Apa.initial_state apa) with
  | [ (_, _, next) ] ->
    Alcotest.(check bool) "config kept" true (Apa.State.mem_elt "cfg" (sym "k") next);
    Alcotest.(check bool) "output produced" true (Apa.State.mem_elt "out" (sym "k") next)
  | other -> Alcotest.fail (Printf.sprintf "expected 1 transition, got %d" (List.length other))

let test_guard () =
  let apa =
    Apa.make
      ~components:[ ("src", set [ sym "good"; sym "bad" ]); ("dst", Term.Set.empty) ]
      ~rules:
        [ Apa.rule "filter"
            ~takes:[ Apa.take "src" (var "x") ]
            ~guard:(fun s -> Term.Subst.find "x" s = Some (sym "good"))
            ~puts:[ Apa.put "dst" (var "x") ] ]
      "guarded"
  in
  match Apa.step apa (Apa.initial_state apa) with
  | [ (_, _, next) ] ->
    Alcotest.check term "only the good element moves" (sym "good")
      (Term.Set.choose (Apa.State.get "dst" next))
  | other -> Alcotest.fail (Printf.sprintf "expected 1 transition, got %d" (List.length other))

let test_pattern_take () =
  (* a structured pattern binds subterms *)
  let apa =
    Apa.make
      ~components:
        [ ("net", set [ Term.app "cam" [ sym "V1"; sym "pos1" ] ]);
          ("bus", Term.Set.empty) ]
      ~rules:
        [ Apa.rule "rec"
            ~takes:[ Apa.take "net" (Term.app "cam" [ var "v"; var "p" ]) ]
            ~puts:[ Apa.put "bus" (Term.app "warn" [ var "p" ]) ] ]
      "pattern"
  in
  match Apa.step apa (Apa.initial_state apa) with
  | [ (_, _, next) ] ->
    Alcotest.check term "payload extracted"
      (Term.app "warn" [ sym "pos1" ])
      (Term.Set.choose (Apa.State.get "bus" next))
  | other -> Alcotest.fail (Printf.sprintf "expected 1 transition, got %d" (List.length other))

let test_custom_labels () =
  let apa =
    Apa.make
      ~components:[ ("src", set [ sym "a" ]) ]
      ~rules:
        [ Apa.rule "r"
            ~takes:[ Apa.take "src" (var "x") ]
            ~puts:[]
            ~label:(fun s ->
              Action.make
                ~args:[ Option.get (Term.Subst.find "x" s) ]
                "consumed") ]
      "labelled"
  in
  match Apa.step apa (Apa.initial_state apa) with
  | [ (_, label, _) ] ->
    Alcotest.(check string) "label carries binding" "consumed(a)"
      (Action.to_string label)
  | other -> Alcotest.fail (Printf.sprintf "expected 1 transition, got %d" (List.length other))

(* ------------------------------------------------------------------ *)
(* Composition                                                         *)
(* ------------------------------------------------------------------ *)

let test_compose_shares_components () =
  let mk name dir =
    Apa.make
      ~components:[ (name ^ "_local", set [ sym "t" ]); ("net", Term.Set.empty) ]
      ~rules:
        [ Apa.rule (name ^ "_" ^ dir)
            ~takes:[ Apa.take (name ^ "_local") (var "x") ]
            ~puts:[ Apa.put "net" (var "x") ] ]
      name
  in
  let c = Apa.compose ~name:"both" [ mk "a" "send"; mk "b" "send" ] in
  Alcotest.(check int) "net shared: 3 components" 3 (List.length (Apa.components c));
  Alcotest.(check int) "rules concatenated" 2 (List.length (Apa.rules c))

let test_compose_unions_initials () =
  let mk name init =
    Apa.make ~components:[ ("net", set init) ] ~rules:[] name
  in
  let c = Apa.compose ~name:"u" [ mk "a" [ sym "x" ]; mk "b" [ sym "y" ] ] in
  Alcotest.(check int) "initial union" 2
    (Term.Set.cardinal (Apa.State.get "net" (Apa.initial_state c)))

let test_prefix () =
  let apa =
    Apa.make
      ~components:[ ("local", set [ sym "a" ]); ("net", Term.Set.empty) ]
      ~rules:
        [ Apa.rule "send" ~takes:[ Apa.take "local" (var "x") ]
            ~puts:[ Apa.put "net" (var "x") ] ]
      "v"
  in
  let p = Apa.prefix ~keep:[ "net" ] ~prefix:"V1_" apa in
  Alcotest.(check bool) "local renamed" true
    (List.mem_assoc "V1_local" (Apa.components p));
  Alcotest.(check bool) "net kept" true (List.mem_assoc "net" (Apa.components p));
  Alcotest.(check (list string)) "rule renamed" [ "V1_send" ]
    (List.map Apa.rule_name (Apa.rules p))

let test_with_initial () =
  let apa = Apa.make ~components:[ ("c", Term.Set.empty) ] ~rules:[] "x" in
  let apa' = Apa.with_initial "c" (set [ sym "a" ]) apa in
  Alcotest.(check int) "initial replaced" 1
    (Term.Set.cardinal (Apa.State.get "c" (Apa.initial_state apa')));
  match Apa.with_initial "nope" Term.Set.empty apa with
  | _ -> Alcotest.fail "unknown component must be rejected"
  | exception Invalid_argument _ -> ()

let test_vehicle_enabled_rules () =
  (* in the initial two-vehicle state exactly sense/pos/pos are enabled *)
  let apa = Fsa_vanet.Vehicle_apa.two_vehicles () in
  Alcotest.(check (list string)) "initially enabled"
    [ "V1_pos"; "V1_sense"; "V2_pos" ]
    (labels_of_step apa (Apa.initial_state apa))

let test_rec_ignores_own_messages () =
  (* V1's message must not be consumable by V1 itself: give V1 a pending
     gps so it could in principle receive *)
  let open Fsa_vanet.Vehicle_apa in
  let apa =
    Apa.compose ~name:"self_rx"
      [ vehicle ~role:Full ~esp_init:[ sw ] ~gps_init:[ pos1; pos2 ] 1 ]
  in
  (* drive: sense, pos(pos1), send -> message in net; V1_rec must not fire *)
  let rec drive st = function
    | [] -> st
    | label :: rest ->
      let next =
        List.find_map
          (fun (r, _, s) -> if Apa.rule_name r = label then Some s else None)
          (Apa.step apa st)
      in
      (match next with
      | Some s -> drive s rest
      | None -> Alcotest.fail (Printf.sprintf "cannot drive %s" label))
  in
  let st = drive (Apa.initial_state apa) [ "V1_sense"; "V1_pos"; "V1_send" ] in
  Alcotest.(check bool) "a message is on the net" true
    (not (Term.Set.is_empty (Apa.State.get "net" st)));
  Alcotest.(check bool) "V1 does not receive its own message" true
    (List.for_all
       (fun (r, _, _) -> Apa.rule_name r <> "V1_rec")
       (Apa.step apa st))

let suite =
  [ Alcotest.test_case "state operations" `Quick test_state_ops;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "neighbourhood" `Quick test_neighbourhood;
    Alcotest.test_case "simple move" `Quick test_simple_move;
    Alcotest.test_case "binding enumeration" `Quick test_binding_enumeration;
    Alcotest.test_case "distinct consumption" `Quick test_distinct_consumption;
    Alcotest.test_case "read does not consume" `Quick test_read_does_not_consume;
    Alcotest.test_case "guard" `Quick test_guard;
    Alcotest.test_case "pattern take" `Quick test_pattern_take;
    Alcotest.test_case "custom labels" `Quick test_custom_labels;
    Alcotest.test_case "compose shares components" `Quick test_compose_shares_components;
    Alcotest.test_case "compose unions initials" `Quick test_compose_unions_initials;
    Alcotest.test_case "prefix" `Quick test_prefix;
    Alcotest.test_case "with_initial" `Quick test_with_initial;
    Alcotest.test_case "vehicle enabled rules" `Quick test_vehicle_enabled_rules;
    Alcotest.test_case "rec ignores own messages" `Quick test_rec_ignores_own_messages ]
