lib/term/agent.mli: Fmt Map Set
