(** Finite automata over an ordered label alphabet.

    Machinery behind the SH verification tool's minimal-automaton
    computation: NFAs with epsilon transitions (homomorphic images of
    reachability graphs), subset construction, Hopcroft and Moore
    minimisation, language operations and decision procedures. *)

module Int_set : Set.S with type elt = int

module type LABEL = sig
  type t

  val compare : t -> t -> int
  val pp : t Fmt.t
end

module Make (L : LABEL) : sig
  module Lset : Set.S with type elt = L.t
  module Lmap : Map.S with type key = L.t

  module Nfa : sig
    type t

    val create :
      nb_states:int ->
      start:Int_set.t ->
      finals:Int_set.t ->
      edges:(int * L.t option * int) list ->
      t
    (** [None] labels are epsilon transitions. *)

    val nb_states : t -> int
    val start : t -> Int_set.t
    val finals : t -> Int_set.t
    val edges : t -> (int * L.t option * int) list
    val alphabet : t -> Lset.t
    val eps_closure : t -> Int_set.t -> Int_set.t
    val accepts : t -> L.t list -> bool
  end

  module Dfa : sig
    (** Partial DFAs: missing transitions reject. *)
    type t

    val create :
      nb_states:int ->
      start:int ->
      finals:Int_set.t ->
      delta:int Lmap.t array ->
      t

    val nb_states : t -> int
    val start : t -> int
    val finals : t -> Int_set.t
    val delta : t -> int Lmap.t array
    val is_final : t -> int -> bool
    val alphabet : t -> Lset.t
    val step : t -> int -> L.t -> int option
    val accepts : t -> L.t list -> bool
    val transitions : t -> (int * L.t * int) list
    val nb_transitions : t -> int

    val determinize : Nfa.t -> t
    (** Subset construction (reachable subsets only). *)

    val trim : t -> t
    (** Remove states that are unreachable or cannot reach a final state. *)

    val complete : alphabet:Lset.t -> t -> t
    (** Make the transition function total by adding a rejecting sink. *)

    val minimize : t -> t
    (** Hopcroft's partition refinement; result is trim. *)

    val minimize_moore : t -> t
    (** Moore's iterated refinement; for cross-checking [minimize]. *)

    val is_empty : t -> bool
    val intersection : t -> t -> t
    val union : t -> t -> t
    val difference : t -> t -> t
    val language_subset : t -> t -> bool
    val language_equal : t -> t -> bool
    val words : max_len:int -> t -> L.t list list

    val language_is_finite : t -> bool

    val count_words : t -> int option
    (** Number of accepted words; [None] for infinite languages. *)

    val shortest_accepted : t -> L.t list option
    (** Shortest accepted word; [None] for the empty language. *)

    val canonicalize : t -> t
    (** BFS renumbering of a trim DFA; structural equality of canonical
        forms decides isomorphism of minimal automata. *)

    val isomorphic : t -> t -> bool

    val dot : ?name:string -> ?state_label:(int -> string) -> t -> string
    val pp : t Fmt.t
  end

  val relabel : (L.t -> L.t option) -> Dfa.t -> Nfa.t
  (** Project a DFA through an alphabetic homomorphism on its labels:
      [None] erases the edge to an epsilon transition, [Some l']
      relabels it.  The NFA recognises the image of the DFA's language,
      so [Dfa.minimize (Dfa.determinize (relabel h dfa))] is the minimal
      automaton of the coarser abstraction — computed from [dfa] instead
      of from the original behaviour. *)

  val project : (L.t -> L.t option) -> Dfa.t -> Dfa.t
  (** [project h dfa] accepts the same language as
      [Dfa.determinize (relabel h dfa)], via a subset construction that
      represents subsets as bitsets over the source states — linear-time
      epsilon closures instead of the generic [Int_set] ones, which is
      what keeps per-pair projections from a many-thousand-state shared
      quotient cheap.  The result is deterministic but not minimal;
      follow with {!Dfa.minimize}. *)
end
