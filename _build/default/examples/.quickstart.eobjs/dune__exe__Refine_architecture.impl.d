examples/refine_architecture.ml: Fmt Fsa_refine Fsa_requirements Fsa_term Fsa_vanet List
