lib/grid/scenario.mli: Fsa_model Fsa_term
