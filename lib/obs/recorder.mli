(** Flight recorder: a bounded, domain-safe ring buffer of structured
    events.

    The recorder keeps the most recent {!capacity} events — request
    queueing, cache traffic, span (phase) boundaries, cache evictions,
    errors, slow requests — so that when a request ends in a timeout or
    an internal error the server can dump everything that happened
    around it, keyed by trace id ({!dump_trace}), without having logged
    anything during normal operation.

    Recording is gated on {!Metrics.enabled} and is cheap when idle (one
    load and one branch); events may be recorded from any domain.  Span
    boundaries are mirrored into the ring automatically: this module
    installs itself as {!Span.set_phase_hook} at initialisation. *)

type kind =
  | Enqueue  (** a request entered the server's work queue *)
  | Dequeue  (** a worker domain picked the request up *)
  | Cache_hit
  | Cache_miss
  | Phase_start  (** a span opened ([r_detail] = span name) *)
  | Phase_end
  | Eviction  (** the result cache evicted an entry *)
  | Error  (** a request failed ([r_detail] = kind and message) *)
  | Slow  (** a request exceeded the slow-request threshold *)

type event = {
  r_seq : int;  (** arrival sequence number, monotonically increasing *)
  r_time_ns : int64;  (** {!Span.now_ns} at recording time *)
  r_domain : int;  (** id of the recording domain *)
  r_trace : string;  (** trace id, [""] outside any trace *)
  r_kind : kind;
  r_detail : string;
}

val kind_to_string : kind -> string

val record : ?trace:string -> ?time_ns:int64 -> kind -> string -> unit
(** [record kind detail] appends an event, overwriting the oldest one
    once the ring is full.  [trace] defaults to {!Span.current_trace},
    [time_ns] to {!Span.now_ns}.  A no-op while recording is disabled. *)

val events : unit -> event list
(** The surviving events, oldest first. *)

val events_for_trace : string -> event list

val dump_trace : trace_id:string -> string
(** Deterministic JSON dump of the surviving events carrying [trace_id]:
    [{"trace_id": .., "events": [..]}], events in sequence order. *)

val capacity : unit -> int

val set_capacity : int -> unit
(** Resize the ring (clearing it).  The default capacity is 1024. *)

val size : unit -> int
(** Number of events currently held. *)

val dropped : unit -> int
(** Number of events overwritten since the last {!reset}/{!set_capacity}. *)

val recorded : unit -> int
(** Total number of events recorded since the last
    {!reset}/{!set_capacity}. *)

val reset : unit -> unit
