(** Asynchronous Product Automata (Definition 2 of the paper).

    An APA is a family of state components (sets of data terms) and a
    family of elementary automata (rules) communicating via shared state
    components.  Rules are specified in a guarded consume/read/produce
    style matching the paper's state transition relations; each variable
    binding of a rule is one interpretation and yields one labelled state
    transition. *)

module Term = Fsa_term.Term
module Action = Fsa_term.Action
module Smap : Map.S with type key = string

(** Global states: one set of ground terms per state component.  The
    representation carries a memoized structural hash, so states are
    hashed at most once however often the exploration's state table looks
    them up. *)
module State : sig
  type t

  val empty : t
  val get : string -> t -> Term.Set.t
  val set : string -> Term.Set.t -> t -> t
  val add_elt : string -> Term.t -> t -> t
  val remove_elt : string -> Term.t -> t -> t
  val mem_elt : string -> Term.t -> t -> bool
  val compare : t -> t -> int
  val equal : t -> t -> bool

  val hash : t -> int
  (** Consistent with [equal]. *)

  val components : t -> string list

  val map : comp:(string -> string) -> term:(Term.t -> Term.t) -> t -> t
  (** [map ~comp ~term s] renames every component key through [comp] and
      rewrites every stored element through [term].  Used by symmetry
      reduction ({!Fsa_sym}) to apply a component permutation to a
      global state; [comp] should be injective on the components of
      [s]. *)

  val pp : t Fmt.t
  val to_string : t -> string
end

type take = { t_component : string; t_pattern : Term.t; t_consume : bool }
type put = { p_component : string; p_template : Term.t }

type rule = {
  r_name : string;
  r_takes : take list;
  r_guard : Term.Subst.t -> bool;
  r_trivial_guard : bool;
      (** [true] when no guard was supplied to {!rule}: the guard closure
          is the constant [true].  Structural analyses use this to tell
          genuinely unguarded rules from opaque guard closures. *)
  r_puts : put list;
  r_label : Term.Subst.t -> Action.t;
  r_default_label : bool;
      (** [true] when no label closure was supplied to {!rule}: every
          firing is labelled [Action.make r_name].  Symmetry reduction
          relies on this — an opaque label closure could leak instance
          identities the state permutation cannot rewrite. *)
}

val take : ?consume:bool -> string -> Term.t -> take
val read : string -> Term.t -> take
(** [read c p] matches [p] in component [c] without removing it. *)

val put : string -> Term.t -> put

val rule :
  ?guard:(Term.Subst.t -> bool) ->
  ?label:(Term.Subst.t -> Action.t) ->
  takes:take list ->
  puts:put list ->
  string ->
  rule

val rule_name : rule -> string

val neighbourhood : rule -> string list
(** N(t): the state components the elementary automaton reads or writes. *)

type t

type error =
  | Unknown_component of string * string
  | Unbound_put_variable of string * string
  | Nonground_initial of string * Term.t
  | Duplicate_rule of string
  | Duplicate_component of string

val pp_error : error Fmt.t
val validate : t -> (unit, error list) result

val make : components:(string * Term.Set.t) list -> rules:rule list -> string -> t
(** @raise Invalid_argument on an ill-formed APA. *)

val name : t -> string
val components : t -> (string * Term.Set.t) list
val rules : t -> rule list

val rule_names : t -> string list
(** The sorted action alphabet under the default labelling (one action
    per rule name) — what spec-level [check] declarations and
    homomorphism keep sets may refer to. *)

val consumers : t -> string -> rule list
(** Rules with a consuming take on the given state component. *)

val readers : t -> string -> rule list
(** Rules with a non-consuming (read) take on the component. *)

val producers : t -> string -> rule list
(** Rules with a put into the component. *)

val initial_state : t -> State.t

val step : t -> State.t -> (rule * Action.t * State.t) list
(** All enabled transitions of all elementary automata in a state. *)

val enabled_rules : t -> State.t -> rule list
val is_deadlocked : t -> State.t -> bool

val compose : name:string -> t list -> t
(** Glue APAs by identifying equally-named state components (shared
    memory); initial sets are unioned. *)

val prefix : ?keep:string list -> prefix:string -> t -> t
(** Rename all components and rules with a prefix, except the shared
    components listed in [keep]. *)

val with_initial : string -> Term.Set.t -> t -> t
(** Replace the initial content of one state component. *)

val pp : t Fmt.t
