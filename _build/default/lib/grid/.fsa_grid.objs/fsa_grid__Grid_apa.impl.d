lib/grid/grid_apa.ml: Fsa_apa Fsa_term List Option Printf Scenario String
