lib/param/family.mli: Fmt Fsa_model Fsa_requirements Fsa_term
