test/test_term.ml: Alcotest Fsa_term List QCheck2 QCheck_alcotest
