lib/grid/grid_apa.mli: Fsa_apa Fsa_term
