(* Cooperative adaptive cruise control (platooning): a scenario beyond
   the paper's icy-road warning, with two purposes.

   1. The manual path generalises over the number of followers: every
      follower's throttle actuation depends on the leader's acceleration
      measurement, the broadcast, and the follower's own gap measurement —
      a requirement family quantified over the platoon.

   2. The operational model is *cyclic*: the leader beacons continuously
      (non-consuming reads, saturating sets), so the reachability graph
      has no dead states and the tool path's minima/maxima reading does
      not apply.  Functional dependence remains testable directly on the
      behaviour — the scenario documents exactly where the paper's
      acyclic assumption matters and what survives without it. *)

module Term = Fsa_term.Term
module Agent = Fsa_term.Agent
module Action = Fsa_term.Action
module Component = Fsa_model.Component
module Flow = Fsa_model.Flow
module Sos = Fsa_model.Sos
module Apa = Fsa_apa.Apa

(* ------------------------------------------------------------------ *)
(* Manual path: one control round as a functional model                *)
(* ------------------------------------------------------------------ *)

let sense_accel = Action.make ~actor:(Agent.unindexed "ACC") "sense_accel"
let broadcast = Action.make ~actor:(Agent.unindexed "CUL") "broadcast"
let receive i = Action.make ~actor:(Agent.concrete "CU" i) "receive"
let gap i = Action.make ~actor:(Agent.concrete "RAD" i) "gap"
let ctrl i = Action.make ~actor:(Agent.concrete "ECU" i) "ctrl"
let actuate i = Action.make ~actor:(Agent.concrete "THR" i) "actuate"

let leader =
  Component.make "Leader"
    ~actions:[ sense_accel; broadcast ]
    ~flows:[ Flow.internal sense_accel broadcast ]

let follower i =
  Component.make
    (Printf.sprintf "Follower_%d" i)
    ~actions:[ receive i; gap i; ctrl i; actuate i ]
    ~flows:
      [ Flow.internal (receive i) (ctrl i);
        Flow.internal (gap i) (ctrl i);
        Flow.internal (ctrl i) (actuate i) ]

let round ?(followers = 2) () =
  if followers < 1 then invalid_arg "Platoon.round";
  let ids = List.init followers (fun k -> k + 1) in
  Sos.make "platoon_round"
    ~components:(leader :: List.map follower ids)
    ~links:(List.map (fun i -> Flow.external_ broadcast (receive i)) ids)

(* The passenger of follower i is the stakeholder of its actuation. *)
let stakeholder action =
  match Action.actor action with
  | Some a when Agent.role a = "THR" ->
    Agent.make ~index:(Agent.index a) "Passenger"
  | Some a -> a
  | None -> Agent.unindexed "ENV"

let follower_domain agent =
  match Agent.role agent, Agent.index agent with
  | ("RAD" | "CU" | "ECU" | "THR"), Agent.Concrete _ -> Some "Followers"
  | _, _ -> None

(* ------------------------------------------------------------------ *)
(* Tool path: the continuously beaconing APA (cyclic behaviour)        *)
(* ------------------------------------------------------------------ *)

let beacon a = Term.app "beacon" [ a ]

(* All reads are non-consuming: every rule stays enabled once its inputs
   saturate, so the behaviour loops forever (self-loops on saturated
   states). *)
let apa ?(followers = 2) () =
  if followers < 1 then invalid_arg "Platoon.apa";
  let ids = List.init followers (fun k -> k + 1) in
  let leader =
    Apa.make
      ~components:
        [ ("accel", Term.Set.of_list [ Term.sym "a0" ]); ("net", Term.Set.empty) ]
      ~rules:
        [ Apa.rule "L_beacon"
            ~takes:[ Apa.read "accel" (Term.var "a") ]
            ~puts:[ Apa.put "net" (beacon (Term.var "a")) ]
            ~label:(fun _ -> Action.make "L_beacon") ]
      "Leader"
  in
  let follower i =
    let bus = Printf.sprintf "fbus%d" i in
    let radar = Printf.sprintf "radar%d" i in
    let act = Printf.sprintf "act%d" i in
    Apa.make
      ~components:
        [ (radar, Term.Set.of_list [ Term.sym (Printf.sprintf "g%d" i) ]);
          (bus, Term.Set.empty); (act, Term.Set.empty);
          ("net", Term.Set.empty) ]
      ~rules:
        [ Apa.rule
            (Printf.sprintf "F%d_receive" i)
            ~takes:[ Apa.read "net" (beacon (Term.var "a")) ]
            ~puts:[ Apa.put bus (beacon (Term.var "a")) ]
            ~label:(fun _ -> Action.make (Printf.sprintf "F%d_receive" i));
          Apa.rule
            (Printf.sprintf "F%d_gap" i)
            ~takes:[ Apa.read radar (Term.var "g") ]
            ~puts:[ Apa.put bus (Term.app "gap" [ Term.var "g" ]) ]
            ~label:(fun _ -> Action.make (Printf.sprintf "F%d_gap" i));
          Apa.rule
            (Printf.sprintf "F%d_ctrl" i)
            ~takes:
              [ Apa.read bus (beacon (Term.var "a"));
                Apa.read bus (Term.app "gap" [ Term.var "g" ]) ]
            ~puts:[ Apa.put act (Term.sym "cmd") ]
            ~label:(fun _ -> Action.make (Printf.sprintf "F%d_ctrl" i)) ]
      (Printf.sprintf "Follower%d" i)
  in
  Apa.compose ~name:"platoon" (leader :: List.map follower ids)

let l_beacon = Action.make "L_beacon"
let f_receive i = Action.make (Printf.sprintf "F%d_receive" i)
let f_gap i = Action.make (Printf.sprintf "F%d_gap" i)
let f_ctrl i = Action.make (Printf.sprintf "F%d_ctrl" i)
