(** Unified diagnostics for the spec-level static analyzer.

    Every finding of [Fsa_check.Check] (and, through it, the manual-path
    lint of [Fsa_model.Lint]) is a diagnostic: a stable code, a severity,
    an optional source span and a message.  Diagnostics render as
    compiler-style text (with an underline when the source is available)
    or as deterministic JSON — two runs over the same input are
    byte-identical. *)

module Loc = Fsa_spec.Loc

type severity = Error | Warning | Info

val pp_severity : severity Fmt.t
val severity_to_string : severity -> string

type t = {
  code : string;  (** stable code, e.g. ["FSA001"] *)
  severity : severity;
  file : string option;
  loc : Loc.t option;
  message : string;
}

val make :
  ?file:string ->
  ?loc:Loc.t ->
  severity:severity ->
  code:string ->
  ('a, Format.formatter, unit, t) format4 ->
  'a

val error :
  ?file:string -> ?loc:Loc.t -> code:string ->
  ('a, Format.formatter, unit, t) format4 -> 'a

val warning :
  ?file:string -> ?loc:Loc.t -> code:string ->
  ('a, Format.formatter, unit, t) format4 -> 'a

val info :
  ?file:string -> ?loc:Loc.t -> code:string ->
  ('a, Format.formatter, unit, t) format4 -> 'a

val compare : t -> t -> int
(** Orders by file, then location (line, col), then code, then severity,
    then message — the render order of every report, text and JSON
    alike. *)

val sort : t list -> t list

val promote_warnings : t list -> t list
(** [--werror]: every [Warning] becomes an [Error]; [Info] is unchanged. *)

val has_errors : t list -> bool

val count : severity -> t list -> int

val summary : t list -> string
(** E.g. ["2 errors, 1 warning, 3 notes"]; ["no findings"] when empty. *)

val describe : string -> string option
(** One-line meaning of a diagnostic code, when registered. *)

val registry : (string * severity * string) list
(** All registered codes with their default severity and description,
    sorted by code. *)

val pp : t Fmt.t
(** One-line compiler-style rendering:
    [FILE:LINE:COL: severity\[CODE\]: message]. *)

val render_text : ?sources:(string * string) list -> t list -> string
(** Full text report, sorted.  [sources] maps file names to their
    contents; when the source of a located diagnostic is available the
    offending span is underlined. *)

val render_json : t list -> string
(** Deterministic JSON array (sorted diagnostics, fixed key order,
    trailing newline). *)
