(** Persistent directed graphs and the algorithms used by functional
    security analysis: reachability, topological order, cycle detection,
    SCCs, reflexive/transitive closure and reduction, unit-capacity max
    flow / min cut, and label-preserving isomorphism. *)

module type VERTEX = sig
  type t

  val compare : t -> t -> int
  val pp : t Fmt.t
end

module type S = sig
  type vertex
  type t

  module Vset : Set.S with type elt = vertex
  module Vmap : Map.S with type key = vertex

  val compare_vertex : vertex -> vertex -> int
  val pp_vertex : vertex Fmt.t
  val empty : t
  val is_empty : t -> bool
  val add_vertex : vertex -> t -> t
  val add_edge : vertex -> vertex -> t -> t
  val remove_edge : vertex -> vertex -> t -> t
  val remove_vertex : vertex -> t -> t
  val of_edges : ?vertices:vertex list -> (vertex * vertex) list -> t
  val mem_vertex : vertex -> t -> bool
  val mem_edge : vertex -> vertex -> t -> bool
  val succ : vertex -> t -> Vset.t
  val pred : vertex -> t -> Vset.t
  val vertices : t -> Vset.t
  val edges : t -> (vertex * vertex) list
  val nb_vertices : t -> int
  val nb_edges : t -> int
  val out_degree : vertex -> t -> int
  val in_degree : vertex -> t -> int
  val sources : t -> Vset.t
  val sinks : t -> Vset.t
  val fold_vertices : (vertex -> 'a -> 'a) -> t -> 'a -> 'a
  val fold_edges : (vertex -> vertex -> 'a -> 'a) -> t -> 'a -> 'a
  val map : (vertex -> vertex) -> t -> t
  val union : t -> t -> t
  val reverse : t -> t
  val reachable : vertex -> t -> Vset.t
  val co_reachable : vertex -> t -> Vset.t
  val topological_sort : t -> vertex list option
  val find_cycle : t -> vertex list option
  val is_acyclic : t -> bool
  val sccs : t -> vertex list list
  val transitive_closure : ?reflexive:bool -> t -> t
  val transitive_closure_dense : ?reflexive:bool -> t -> t
  val transitive_reduction : t -> t
  val max_flow_unit : source:vertex -> sink:vertex -> t -> int * (vertex * vertex) list
  val min_edge_cut : source:vertex -> sink:vertex -> t -> (vertex * vertex) list
  val isomorphic : ?label:(vertex -> vertex -> bool) -> t -> t -> bool
  val pp : t Fmt.t
end

module Make (V : VERTEX) : S with type vertex = V.t
