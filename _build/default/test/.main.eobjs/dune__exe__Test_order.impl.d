test/test_order.ml: Alcotest Fmt Fsa_graph Fsa_order List QCheck2 QCheck_alcotest String
