(** The operational APA model of the demand-response scenario (tool
    path).  Exercises joins (the n-way aggregate), token duplication (the
    ingest) and fan-out (the dispatch). *)

module Term = Fsa_term.Term
module Action = Fsa_term.Action
module Apa = Fsa_apa.Apa

val meter : int -> Apa.t
val concentrator : int -> Apa.t
val market : Apa.t
val head_end : int -> Apa.t
val breaker : int -> Apa.t

val demand_response : ?households:int -> unit -> Apa.t

val manual_action_of_label : Action.t -> Action.t option
(** Map tool-path labels ([M1_measure]) to the manual-path actions
    ([measure(METER_1)]). *)

val stakeholder : Action.t -> Fsa_term.Agent.t
