lib/vanet/vehicle_apa.mli: Fsa_apa Fsa_term
