(* Tests for Fsa_vanet: geography, scenario builders, the EVITA-scale
   model. *)

module Term = Fsa_term.Term
module Agent = Fsa_term.Agent
module Action = Fsa_term.Action
module Geo = Fsa_vanet.Geo
module S = Fsa_vanet.Scenario
module V = Fsa_vanet.Vehicle_apa
module Evita = Fsa_vanet.Evita

(* ------------------------------------------------------------------ *)
(* Geo                                                                 *)
(* ------------------------------------------------------------------ *)

let test_geo_positions () =
  Alcotest.(check int) "four abstract positions" 4 (List.length Geo.positions);
  Alcotest.(check bool) "pos1 is a position" true
    (Geo.is_position (Term.sym "pos1"));
  Alcotest.(check bool) "sW is not" false (Geo.is_position (Term.sym "sW"));
  Alcotest.(check bool) "compound is not" false
    (Geo.is_position (Term.app "warn" [ Term.sym "pos1" ]))

let test_geo_distance () =
  Alcotest.(check (option int)) "pos1-pos2 close" (Some 1)
    (Geo.distance (Term.sym "pos1") (Term.sym "pos2"));
  Alcotest.(check (option int)) "pos1-pos1 zero" (Some 0)
    (Geo.distance (Term.sym "pos1") (Term.sym "pos1"));
  Alcotest.(check (option int)) "unknown term" None
    (Geo.distance (Term.sym "pos1") (Term.sym "nowhere"))

let test_geo_range () =
  Alcotest.(check bool) "pair A in range" true
    (Geo.in_range (Term.sym "pos1") (Term.sym "pos2"));
  Alcotest.(check bool) "pair B in range" true
    (Geo.in_range (Term.sym "pos3") (Term.sym "pos4"));
  Alcotest.(check bool) "across pairs out of range" false
    (Geo.in_range (Term.sym "pos1") (Term.sym "pos3"));
  Alcotest.(check bool) "custom range" true
    (Geo.in_range ~range:1000 (Term.sym "pos1") (Term.sym "pos3"));
  Alcotest.(check bool) "non-position" false
    (Geo.in_range (Term.sym "sW") (Term.sym "pos1"))

(* ------------------------------------------------------------------ *)
(* Scenario (manual path)                                              *)
(* ------------------------------------------------------------------ *)

let test_table1 () =
  Alcotest.(check int) "seven action rows" 7 (List.length S.table1);
  List.iter
    (fun (_, expl) ->
      Alcotest.(check bool) "every row has an explanation" true
        (String.length expl > 10))
    S.table1

let test_vehicle_template () =
  let c = S.vehicle_template in
  Alcotest.(check bool) "is a template" true (Fsa_model.Component.is_template c);
  Alcotest.(check int) "six actions" 6 (List.length (Fsa_model.Component.actions c));
  Alcotest.(check int) "six flows" 6 (List.length (Fsa_model.Component.flows c));
  (* exactly one flow carries the forwarding policy *)
  Alcotest.(check int) "one policy flow" 1
    (List.length
       (List.filter Fsa_model.Flow.is_policy_induced
          (Fsa_model.Component.flows c)))

let test_role_restriction () =
  let check_roles mk labels =
    let c = mk (Agent.Concrete 1) in
    Alcotest.(check (list string)) "actions restricted" (List.sort compare labels)
      (List.sort compare
         (List.map Action.label (Fsa_model.Component.actions c)))
  in
  check_roles S.warning_vehicle [ "sense"; "pos"; "send" ];
  check_roles S.receiving_vehicle [ "pos"; "rec"; "show" ];
  check_roles S.forwarding_vehicle [ "pos"; "rec"; "fwd" ]

let test_chain_construction () =
  let sos = S.chain 5 in
  Alcotest.(check int) "five components" 5
    (List.length (Fsa_model.Sos.components sos));
  Alcotest.(check int) "four links" 4 (List.length (Fsa_model.Sos.links sos));
  Alcotest.(check (list int)) "forwarders" [ 2; 3; 4 ] (S.forwarders_of_chain 5);
  (match S.chain 1 with
  | _ -> Alcotest.fail "chain of one must be rejected"
  | exception Invalid_argument _ -> ());
  (* chain 2 coincides with the two_vehicles instance *)
  Alcotest.(check bool) "chain 2 = two_vehicles (requirements)" true
    (Fsa_requirements.Auth.equal_set
       (Fsa_requirements.Derive.of_sos (S.chain 2))
       (Fsa_requirements.Derive.of_sos S.two_vehicles))

let test_v_forward_domain () =
  Alcotest.(check (option string)) "forwarder GPS in domain"
    (Some "V_forward")
    (S.v_forward_domain (Agent.concrete "GPS" 2));
  Alcotest.(check (option string)) "warner GPS outside" None
    (S.v_forward_domain (Agent.concrete "GPS" 1));
  Alcotest.(check (option string)) "other roles outside" None
    (S.v_forward_domain (Agent.concrete "ESP" 2))

let test_enumeration_dedup () =
  let instances = S.enumerate_two_component_instances () in
  Alcotest.(check int) "six structurally different combinations" 6
    (List.length instances);
  (* pairwise non-isomorphic *)
  let rec pairwise = function
    | [] -> ()
    | x :: rest ->
      List.iter
        (fun y ->
          Alcotest.(check bool) "non-isomorphic" false
            (Fsa_model.Sos.isomorphic x y))
        rest;
      pairwise rest
  in
  pairwise instances

(* ------------------------------------------------------------------ *)
(* Vehicle APA builders                                                *)
(* ------------------------------------------------------------------ *)

let test_apa_roles () =
  let count role = List.length (Fsa_apa.Apa.rules (V.vehicle ~role 1)) in
  Alcotest.(check int) "full vehicle rules" 6 (count V.Full);
  Alcotest.(check int) "warner rules" 3 (count V.Warner);
  Alcotest.(check int) "receiver rules" 3 (count V.Receiver);
  Alcotest.(check int) "forwarder rules" 3 (count V.Forwarder)

let test_apa_components () =
  (* Fig. 5: esp, gps, bus, hmi + net *)
  let apa = V.vehicle 1 in
  Alcotest.(check (list string)) "state components (Fig. 5)"
    [ "bus1"; "esp1"; "gps1"; "hmi1"; "net" ]
    (List.sort compare (List.map fst (Fsa_apa.Apa.components apa)))

let test_two_vehicles_components () =
  (* Example 5: 9 state components, 6 elementary automata for the
     restricted roles (3 + 3) *)
  let apa = V.two_vehicles () in
  Alcotest.(check int) "9 state components" 9
    (List.length (Fsa_apa.Apa.components apa));
  Alcotest.(check int) "6 elementary automata" 6
    (List.length (Fsa_apa.Apa.rules apa))

let test_stakeholder () =
  Alcotest.(check string) "driver of shows" "D_2"
    (Agent.to_string (V.stakeholder (V.v_show 2)));
  Alcotest.(check string) "system otherwise" "SYS"
    (Agent.to_string (V.stakeholder (V.v_sense 1)))

let test_manual_action_of_label () =
  let check label expected =
    match V.manual_action_of_label (Action.make label) with
    | Some a -> Alcotest.(check string) label expected (Action.to_string a)
    | None -> Alcotest.fail ("no mapping for " ^ label)
  in
  check "V1_sense" "sense(ESP_1, sW)";
  check "V2_show" "show(HMI_2, warn)";
  check "V3_fwd" "fwd(CU_3, cam(pos))";
  Alcotest.(check bool) "unknown label unmapped" true
    (V.manual_action_of_label (Action.make "bogus") = None);
  Alcotest.(check bool) "unknown verb unmapped" true
    (V.manual_action_of_label (Action.make "V1_jump") = None)

let test_rsu_tool_path () =
  (* Fig. 2 on the tool path: the RSU warns vehicle 1 *)
  let apa = V.rsu_and_vehicle () in
  let lts = Fsa_lts.Lts.explore apa in
  Alcotest.(check int) "seven states" 7 (Fsa_lts.Lts.nb_states lts);
  let report =
    Fsa_core.Analysis.tool ~stakeholder:V.stakeholder apa
  in
  Alcotest.(check (list string)) "Example 2 requirements (tool labels)"
    [ "auth(RSU_send, V1_show, D_1)"; "auth(V1_pos, V1_show, D_1)" ]
    (List.map Fsa_requirements.Auth.to_string
       report.Fsa_core.Analysis.t_requirements);
  (* cross-validate against the concrete manual instance *)
  let manual_sos =
    Fsa_model.Sos.make "rsu_concrete"
      ~components:[ S.rsu_component; S.receiving_vehicle (Agent.Concrete 1) ]
      ~links:
        [ Fsa_model.Flow.external_ S.rsu_send (S.cu_rec (Agent.Concrete 1)) ]
  in
  let manual = Fsa_core.Analysis.manual manual_sos in
  let c =
    Fsa_core.Analysis.crosscheck ~map:V.manual_action_of_label
      ~manual_requirements:manual.Fsa_core.Analysis.m_requirements
      ~tool_requirements:report.Fsa_core.Analysis.t_requirements
  in
  Alcotest.(check bool) "Fig. 2 paths agree" true c.Fsa_core.Analysis.c_agree

(* ------------------------------------------------------------------ *)
(* EVITA                                                               *)
(* ------------------------------------------------------------------ *)

let test_evita_profile () =
  (* the paper's Sect. 4.4 statistics, exactly *)
  let m = Evita.measured_profile () in
  let p = Evita.paper_profile in
  Alcotest.(check int) "29 requirements" p.Evita.requirements m.Evita.requirements;
  Alcotest.(check int) "38 component boundary actions"
    p.Evita.component_boundary_actions m.Evita.component_boundary_actions;
  Alcotest.(check int) "16 system boundary actions"
    p.Evita.system_boundary_actions m.Evita.system_boundary_actions;
  Alcotest.(check int) "9 maximal" p.Evita.maximal m.Evita.maximal;
  Alcotest.(check int) "7 minimal" p.Evita.minimal m.Evita.minimal

let test_evita_model_valid () =
  match Fsa_model.Sos.validate Evita.model with
  | Ok () -> ()
  | Error errs ->
    Alcotest.fail
      (Fmt.str "EVITA model invalid: %a"
         Fmt.(list ~sep:comma Fsa_model.Sos.pp_error)
         errs)

let test_evita_known_dependencies () =
  let reqs = Fsa_requirements.Derive.of_sos ~stakeholder:Evita.stakeholder Evita.model in
  let has cause effect =
    List.exists
      (fun r ->
        Action.label (Fsa_requirements.Auth.cause r) = cause
        && Action.label (Fsa_requirements.Auth.effect r) = effect)
      reqs
  in
  Alcotest.(check bool) "brake depends on pedal" true
    (has "pedal_press" "brake_actuate");
  Alcotest.(check bool) "brake depends on esp" true
    (has "esp_sense" "brake_actuate");
  Alcotest.(check bool) "dash depends on gps only" true
    (has "gps_acquire" "dash_status" && not (has "v2x_receive" "dash_status"));
  Alcotest.(check bool) "diagnostics isolated" true
    (has "diag_request" "diag_response" && not (has "diag_request" "brake_actuate"));
  Alcotest.(check bool) "engine does not depend on pedal" true
    (not (has "pedal_press" "engine_limit"))

let test_evita_stakeholders () =
  Alcotest.(check string) "driver" "Driver"
    (Agent.to_string (Evita.stakeholder (Action.of_string_exn "hmi_show(HMI)")));
  Alcotest.(check string) "backend" "Backend"
    (Agent.to_string (Evita.stakeholder (Action.of_string_exn "log_write(LOG)")));
  Alcotest.(check string) "tester" "Tester"
    (Agent.to_string (Evita.stakeholder (Action.of_string_exn "diag_response(DIAG)")))

let suite =
  [ Alcotest.test_case "geo positions" `Quick test_geo_positions;
    Alcotest.test_case "geo distance" `Quick test_geo_distance;
    Alcotest.test_case "geo range" `Quick test_geo_range;
    Alcotest.test_case "table 1" `Quick test_table1;
    Alcotest.test_case "vehicle template (Fig. 1b)" `Quick test_vehicle_template;
    Alcotest.test_case "role restriction" `Quick test_role_restriction;
    Alcotest.test_case "chain construction" `Quick test_chain_construction;
    Alcotest.test_case "V_forward domain" `Quick test_v_forward_domain;
    Alcotest.test_case "instance enumeration dedup" `Quick test_enumeration_dedup;
    Alcotest.test_case "APA roles" `Quick test_apa_roles;
    Alcotest.test_case "APA components (Fig. 5)" `Quick test_apa_components;
    Alcotest.test_case "two-vehicle APA (Example 5)" `Quick test_two_vehicles_components;
    Alcotest.test_case "stakeholder" `Quick test_stakeholder;
    Alcotest.test_case "label correspondence" `Quick test_manual_action_of_label;
    Alcotest.test_case "RSU tool path (Fig. 2)" `Quick test_rsu_tool_path;
    Alcotest.test_case "EVITA profile (Sect. 4.4)" `Quick test_evita_profile;
    Alcotest.test_case "EVITA model validity" `Quick test_evita_model_valid;
    Alcotest.test_case "EVITA known dependencies" `Quick test_evita_known_dependencies;
    Alcotest.test_case "EVITA stakeholders" `Quick test_evita_stakeholders ]
