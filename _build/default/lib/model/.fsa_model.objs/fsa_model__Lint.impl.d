lib/model/lint.ml: Action_graph Component Flow Fmt Fsa_term List Option Sos String
