(* Uniformly parameterised families of SoS instances (Sect. 6 outlook).

   The paper's system families are parameterised by a number of replicated
   identical components (e.g. the number of forwarding vehicles).  This
   module checks, instance by instance, that the requirement sets of a
   family follow a uniform schema — the finite-state evidence behind
   parameterised statements such as

     chi_i = chi_(i-1) + { (pos(GPS_i, pos), show(HMI_w, warn)) }. *)

module Action = Fsa_term.Action
module Auth = Fsa_requirements.Auth
module Sos = Fsa_model.Sos

type mismatch = {
  parameter : int;
  expected : Auth.t list;
  actual : Auth.t list;
}

let pp_mismatch ppf m =
  Fmt.pf ppf
    "@[<v2>parameter %d:@,expected:@,%a@,actual:@,%a@]" m.parameter
    Auth.pp_set m.expected Auth.pp_set m.actual

(* Check that [family n] has exactly the requirements [schema n] for every
   n in [range]; returns the mismatches (empty = uniform). *)
let check_schema ?stakeholder ~family ~schema range =
  List.filter_map
    (fun n ->
      let expected = Auth.normalise (schema n) in
      let actual = Fsa_requirements.Derive.of_sos ?stakeholder (family n) in
      if Auth.equal_set expected actual then None
      else Some { parameter = n; expected; actual })
    range

let is_uniform ?stakeholder ~family ~schema range =
  check_schema ?stakeholder ~family ~schema range = []

(* The increment of the requirement sets between consecutive instances:
   the paper reads the parameterised requirement off these differences.
   Callers must ensure that [family (n - 1)] is defined for every [n] in
   the range. *)
let increments ?stakeholder ~family range =
  List.map
    (fun n ->
      let prev = Fsa_requirements.Derive.of_sos ?stakeholder (family (n - 1)) in
      let cur = Fsa_requirements.Derive.of_sos ?stakeholder (family n) in
      (n, Auth.diff cur prev))
    range

(* A family is incrementally uniform when each step adds requirements of
   one single shape (the quantifiable family) and removes none. *)
let incrementally_uniform ?stakeholder ~family range =
  let steps = increments ?stakeholder ~family range in
  List.for_all
    (fun (n, added) ->
      let prev = Fsa_requirements.Derive.of_sos ?stakeholder (family (n - 1)) in
      let cur = Fsa_requirements.Derive.of_sos ?stakeholder (family n) in
      Auth.subset prev cur
      &&
      match added with
      | [] -> true
      | first :: rest ->
        let shape r = Action.shape (Auth.cause r) in
        List.for_all
          (fun r -> Action.compare_shape (shape first) (shape r) = 0)
          rest)
    steps
