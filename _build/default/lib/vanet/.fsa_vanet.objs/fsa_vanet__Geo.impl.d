lib/vanet/geo.ml: Fsa_term List
