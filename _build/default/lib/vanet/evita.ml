(* A synthetic EVITA-scale automotive on-board architecture.

   Sect. 4.4 of the paper reports that the method, applied in the EVITA
   project, elicited 29 authenticity requirements from a system model
   comprising 38 component boundary actions with 16 system boundary
   actions (9 maximal and 7 minimal elements).  The concrete EVITA model
   (deliverable D2.3) is not published in the paper, so we reconstruct a
   plausible on-board architecture with exactly that boundary-action
   profile and verify that functional security analysis elicits exactly
   29 requirements.

   The architecture: environment inputs are the ESP wheel sensors, GPS,
   radar, camera, the driver's brake pedal, incoming V2X messages and the
   diagnostic port (7 minimal elements).  Outputs are the brake and engine
   actuators, airbag deployment, the HMI warning, outgoing V2X messages,
   the event log, the telematics report, the diagnostic response and the
   dashboard status (9 maximal elements).  Sensor data is fused in a
   fusion ECU whose hazard assessment feeds the actuator domains over two
   bus segments; a central gateway distributes the GPS position. *)

module Term = Fsa_term.Term
module Agent = Fsa_term.Agent
module Action = Fsa_term.Action
module Component = Fsa_model.Component
module Flow = Fsa_model.Flow
module Sos = Fsa_model.Sos

let act role label = Action.make ~actor:(Agent.unindexed role) label

(* A linear component: actions chained head to tail. *)
let chain_component name role labels =
  let actions = List.map (act role) labels in
  let rec flows = function
    | a :: (b :: _ as rest) -> Flow.internal a b :: flows rest
    | [ _ ] | [] -> []
  in
  Component.make name ~actions ~flows:(flows actions)

(* Sensor domains *)
let esp_ecu = chain_component "EspEcu" "ESP" [ "esp_sense"; "esp_filter"; "esp_report" ]
let gps_unit = chain_component "GpsUnit" "GPS" [ "gps_acquire"; "gps_report" ]
let radar_ecu = chain_component "RadarEcu" "RADAR" [ "radar_scan"; "radar_track"; "radar_report" ]
let camera_ecu = chain_component "CameraEcu" "CAM" [ "cam_capture"; "cam_detect"; "cam_report" ]
let pedal_unit = chain_component "PedalUnit" "PEDAL" [ "pedal_press"; "pedal_report" ]

(* Communication unit: independent receive and transmit paths. *)
let comm_unit =
  let recv = act "CU" "v2x_receive" and parse = act "CU" "v2x_parse" in
  let pack = act "CU" "v2x_pack" and send = act "CU" "v2x_send" in
  Component.make "CommUnit"
    ~actions:[ recv; parse; pack; send ]
    ~flows:[ Flow.internal recv parse; Flow.internal pack send ]

(* Processing and distribution *)
let fusion_ecu = chain_component "FusionEcu" "FUSION" [ "fuse"; "hazard_assess"; "hazard_publish" ]
let gateway = chain_component "Gateway" "GW" [ "gw_in"; "gw_route"; "gw_out" ]
let chassis_bus = chain_component "ChassisBus" "CBUS" [ "cbus_in"; "cbus_out" ]
let powertrain_bus = chain_component "PowertrainBus" "PBUS" [ "pbus_in"; "pbus_out" ]

(* Actuator and reporting domains *)
let chassis_ctrl = chain_component "ChassisCtrl" "BRAKE" [ "brake_compute"; "brake_actuate" ]
let engine_ecu = chain_component "EngineEcu" "ENGINE" [ "engine_compute"; "engine_limit" ]
let airbag_ecu = chain_component "AirbagEcu" "AIRBAG" [ "airbag_arm"; "airbag_deploy" ]
let hmi_unit = chain_component "HmiUnit" "HMI" [ "hmi_render"; "hmi_show" ]
let logger = chain_component "Logger" "LOG" [ "log_merge"; "log_write" ]
let telematics = chain_component "Telematics" "TELEM" [ "telem_pack"; "telem_report" ]
let diagnostics = chain_component "Diagnostics" "DIAG" [ "diag_request"; "diag_response" ]
let dashboard = chain_component "Dashboard" "DASH" [ "dash_compute"; "dash_status" ]

let components =
  [ esp_ecu; gps_unit; radar_ecu; camera_ecu; pedal_unit; comm_unit;
    fusion_ecu; gateway; chassis_bus; powertrain_bus; chassis_ctrl;
    engine_ecu; airbag_ecu; hmi_unit; logger; telematics; diagnostics;
    dashboard ]

let links =
  let esp_report = act "ESP" "esp_report"
  and radar_report = act "RADAR" "radar_report"
  and cam_report = act "CAM" "cam_report"
  and gps_report = act "GPS" "gps_report"
  and pedal_report = act "PEDAL" "pedal_report"
  and v2x_parse = act "CU" "v2x_parse"
  and v2x_pack = act "CU" "v2x_pack"
  and fuse = act "FUSION" "fuse"
  and hazard_publish = act "FUSION" "hazard_publish"
  and gw_in = act "GW" "gw_in"
  and gw_out = act "GW" "gw_out"
  and cbus_in = act "CBUS" "cbus_in"
  and cbus_out = act "CBUS" "cbus_out"
  and pbus_in = act "PBUS" "pbus_in"
  and pbus_out = act "PBUS" "pbus_out"
  and brake_compute = act "BRAKE" "brake_compute"
  and engine_compute = act "ENGINE" "engine_compute"
  and airbag_arm = act "AIRBAG" "airbag_arm"
  and hmi_render = act "HMI" "hmi_render"
  and log_merge = act "LOG" "log_merge"
  and telem_pack = act "TELEM" "telem_pack"
  and dash_compute = act "DASH" "dash_compute" in
  [ (* sensor fusion *)
    Flow.external_ esp_report fuse;
    Flow.external_ radar_report fuse;
    Flow.external_ cam_report fuse;
    (* hazard distribution *)
    Flow.external_ hazard_publish cbus_in;
    Flow.external_ hazard_publish pbus_in;
    Flow.external_ cbus_out brake_compute;
    Flow.external_ cbus_out airbag_arm;
    Flow.external_ pbus_out engine_compute;
    Flow.external_ hazard_publish v2x_pack;
    Flow.external_ hazard_publish hmi_render;
    Flow.external_ hazard_publish log_merge;
    (* GPS distribution over the gateway *)
    Flow.external_ gps_report gw_in;
    Flow.external_ gw_out v2x_pack;
    Flow.external_ gw_out hmi_render;
    Flow.external_ gw_out log_merge;
    Flow.external_ gw_out telem_pack;
    Flow.external_ gw_out dash_compute;
    (* driver input *)
    Flow.external_ pedal_report brake_compute;
    Flow.external_ pedal_report log_merge;
    (* incoming V2X *)
    Flow.external_ v2x_parse hmi_render;
    Flow.external_ v2x_parse log_merge;
    Flow.external_ v2x_parse telem_pack ]

let model = Sos.make "evita_onboard" ~components ~links

(* Stakeholders per output domain: the driver is assured of what the HMI
   and dashboard display and of the actuator behaviour; the OEM backend is
   the stakeholder of telematics and logging; the workshop tester of the
   diagnostic response; the receiving traffic of sent V2X messages. *)
let stakeholder action =
  let driver = Agent.unindexed "Driver"
  and backend = Agent.unindexed "Backend"
  and tester = Agent.unindexed "Tester"
  and traffic = Agent.unindexed "Traffic" in
  match Action.label action with
  | "hmi_show" | "dash_status" | "brake_actuate" | "engine_limit"
  | "airbag_deploy" ->
    driver
  | "telem_report" | "log_write" -> backend
  | "diag_response" -> tester
  | "v2x_send" -> traffic
  | _ -> Agent.unindexed "SYS"

(* The published profile (Sect. 4.4). *)
type profile = {
  requirements : int;
  component_boundary_actions : int;
  system_boundary_actions : int;
  maximal : int;
  minimal : int;
}

let paper_profile =
  { requirements = 29;
    component_boundary_actions = 38;
    system_boundary_actions = 16;
    maximal = 9;
    minimal = 7 }

let measured_profile () =
  let s = Sos.stats model in
  let reqs = Fsa_requirements.Derive.of_sos ~stakeholder model in
  { requirements = List.length reqs;
    component_boundary_actions = s.Sos.nb_component_boundary;
    system_boundary_actions = s.Sos.nb_system_boundary;
    maximal = s.Sos.nb_maximal;
    minimal = s.Sos.nb_minimal }

let pp_profile ppf p =
  Fmt.pf ppf
    "%d authenticity requirements, %d component boundary actions, %d system \
     boundary actions (%d maximal, %d minimal)"
    p.requirements p.component_boundary_actions p.system_boundary_actions
    p.maximal p.minimal
