(* Tests for spec check declarations and the Markdown report generator. *)

module Parser = Fsa_spec.Parser
module Elaborate = Fsa_spec.Elaborate
module Ast = Fsa_spec.Ast
module Pattern = Fsa_mc.Pattern
module Lts = Fsa_lts.Lts
module Report = Fsa_core.Report
module S = Fsa_vanet.Scenario
module Evita = Fsa_vanet.Evita

let contains s sub =
  let rec go i =
    i + String.length sub <= String.length s
    && (String.sub s i (String.length sub) = sub || go (i + 1))
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Check declarations                                                  *)
(* ------------------------------------------------------------------ *)

let test_parse_checks () =
  let decls =
    Parser.parse_string
      {|
      check precedence V1_sense V2_show
      check absence V2_rec before V1_send
      check existence V2_show after V1_send
      check universality V1_pos globally
      |}
  in
  Alcotest.(check int) "four declarations" 4 (List.length decls);
  match decls with
  | [ Ast.D_check c1; Ast.D_check c2; Ast.D_check c3; Ast.D_check c4 ] ->
    Alcotest.(check string) "kind" "precedence" c1.Ast.ck_kind;
    Alcotest.(check (list string)) "args" [ "V1_sense"; "V2_show" ] c1.Ast.ck_args;
    Alcotest.(check (option (pair string string))) "before scope"
      (Some ("before", "V1_send"))
      c2.Ast.ck_scope;
    Alcotest.(check (option (pair string string))) "after scope"
      (Some ("after", "V1_send"))
      c3.Ast.ck_scope;
    Alcotest.(check (option (pair string string))) "globally is default" None
      c4.Ast.ck_scope
  | _ -> Alcotest.fail "check declarations expected"

let test_parse_check_errors () =
  let fails input =
    match Parser.parse_string input with
    | _ -> false
    | exception Fsa_spec.Loc.Error _ -> true
  in
  Alcotest.(check bool) "unknown kind" true (fails "check frobnicate X");
  Alcotest.(check bool) "missing argument" true (fails "check precedence X")

let spec_with_checks =
  {|
  component Vehicle {
    state esp = { }
    state gps = { }
    state bus = { }
    state hmi = { }
    shared net
    action sense: take esp(_x) -> put bus(_x)
    action pos:   take gps(_p) -> put bus(_p)
    action send:  take bus(sW), take bus(_p) when position(_p)
                  -> put net(cam(self, _p))
    action rec:   take net(cam(_v, _p)) when _v != self -> put bus(warn(_p))
    action show:  take bus(warn(_p)), take bus(_q)
                  when position(_q) && near(_p, _q) -> put hmi(warn)
  }
  instance V1 = Vehicle(1) { esp = { sW }, gps = { pos1 } }
  instance V2 = Vehicle(2) { gps = { pos2 } }

  check precedence V1_sense V2_show
  check existence V2_show
  check absence V1_show
  check precedence V2_show V1_sense
  |}

let test_elaborate_and_evaluate_checks () =
  let spec = Parser.parse_string spec_with_checks in
  let patterns = Elaborate.patterns_of_spec spec in
  Alcotest.(check int) "four patterns" 4 (List.length patterns);
  let lts = Lts.explore (Elaborate.apa_of_spec spec) in
  let results =
    List.map (fun (d, p) -> (d, (Pattern.check lts p).Pattern.holds_)) patterns
  in
  Alcotest.(check (list (pair string bool))) "verdicts"
    [ ("check precedence V1_sense V2_show", true);
      ("check existence V2_show", true);
      ("check absence V1_show", true);
      ("check precedence V2_show V1_sense", false) ]
    results

let test_shipped_spec_checks_hold () =
  let dir =
    List.find_opt Sys.file_exists
      [ "examples/specs"; "../../../examples/specs" ]
  in
  match dir with
  | None -> ()
  | Some dir ->
    List.iter
      (fun file ->
        let spec = Parser.parse_file (Filename.concat dir file) in
        let patterns = Elaborate.patterns_of_spec spec in
        Alcotest.(check bool) (file ^ " ships checks") true (patterns <> []);
        let lts = Lts.explore (Elaborate.apa_of_spec spec) in
        List.iter
          (fun (d, p) ->
            Alcotest.(check bool) (file ^ ": " ^ d) true
              (Pattern.check lts p).Pattern.holds_)
          patterns)
      [ "two_vehicles.fsa"; "smart_grid.fsa"; "platoon.fsa" ]

(* ------------------------------------------------------------------ *)
(* Pretty-printer round trips                                          *)
(* ------------------------------------------------------------------ *)

let test_pretty_roundtrip_inline () =
  let spec = Parser.parse_string spec_with_checks in
  let printed = Fsa_spec.Pretty.to_string spec in
  let reparsed = Parser.parse_string printed in
  Alcotest.(check bool) "AST round trip" true (Fsa_spec.Pretty.equal spec reparsed)

let test_pretty_roundtrip_files () =
  let dir =
    List.find_opt Sys.file_exists
      [ "examples/specs"; "../../../examples/specs" ]
  in
  match dir with
  | None -> ()
  | Some dir ->
    List.iter
      (fun file ->
        let spec = Parser.parse_file (Filename.concat dir file) in
        let reparsed = Parser.parse_string (Fsa_spec.Pretty.to_string spec) in
        Alcotest.(check bool) (file ^ " round trips") true
          (Fsa_spec.Pretty.equal spec reparsed))
      [ "two_vehicles.fsa"; "four_vehicles.fsa"; "evita_onboard.fsa";
        "smart_grid.fsa"; "platoon.fsa" ]

let test_pretty_preserves_behaviour () =
  let spec = Parser.parse_string spec_with_checks in
  let reparsed = Parser.parse_string (Fsa_spec.Pretty.to_string spec) in
  let states ast = Lts.nb_states (Lts.explore (Elaborate.apa_of_spec ast)) in
  Alcotest.(check int) "same state space" (states spec) (states reparsed)

(* ------------------------------------------------------------------ *)
(* Report generation                                                   *)
(* ------------------------------------------------------------------ *)

let test_report_two_vehicles () =
  let md = Report.markdown S.three_vehicles in
  Alcotest.(check bool) "title" true
    (contains md "# Functional security analysis: three_vehicles");
  Alcotest.(check bool) "inputs section" true (contains md "System inputs");
  Alcotest.(check bool) "requirements table" true (contains md "| # | Cause |");
  Alcotest.(check bool) "policy note" true
    (contains md "position-based-forwarding");
  Alcotest.(check bool) "availability count" true
    (contains md "1 requirement(s) exist only because");
  Alcotest.(check bool) "confidentiality table" true
    (contains md "Inferred level");
  Alcotest.(check bool) "refinement table" true (contains md "Min. cut");
  Alcotest.(check bool) "prioritised work list" true
    (contains md "Prioritised work list")

let test_report_options () =
  let options =
    { Report.default_options with
      Report.with_confidentiality = false;
      with_refinement = false }
  in
  let md = Report.markdown ~options S.two_vehicles in
  Alcotest.(check bool) "no confidentiality section" false
    (contains md "Inferred level");
  Alcotest.(check bool) "no refinement section" false (contains md "Min. cut");
  Alcotest.(check bool) "requirements still present" true
    (contains md "| # | Cause |")

let test_report_evita () =
  let options = { Report.default_options with Report.stakeholder = Evita.stakeholder } in
  let md = Report.markdown ~options Evita.model in
  Alcotest.(check bool) "mentions all 29" true
    (contains md "Authenticity requirements (29)");
  Alcotest.(check bool) "driver stakeholder used" true (contains md "Driver")

let suite =
  [ Alcotest.test_case "parse checks" `Quick test_parse_checks;
    Alcotest.test_case "check parse errors" `Quick test_parse_check_errors;
    Alcotest.test_case "elaborate and evaluate" `Quick test_elaborate_and_evaluate_checks;
    Alcotest.test_case "shipped spec checks hold" `Quick test_shipped_spec_checks_hold;
    Alcotest.test_case "pretty round trip (inline)" `Quick test_pretty_roundtrip_inline;
    Alcotest.test_case "pretty round trip (files)" `Quick test_pretty_roundtrip_files;
    Alcotest.test_case "pretty preserves behaviour" `Quick test_pretty_preserves_behaviour;
    Alcotest.test_case "report content" `Quick test_report_two_vehicles;
    Alcotest.test_case "report options" `Quick test_report_options;
    Alcotest.test_case "report on EVITA" `Quick test_report_evita ]
