(* The vehicular communication scenario of Sect. 3 — functional models for
   the manual analysis path of Sect. 4.

   Actions follow Table 1 of the paper:
     send(cam(pos))          RSU broadcasts a cooperative awareness message
     sense(ESP_i, sW)        ESP sensor of V_i senses slippery wheels
     pos(GPS_i, pos)         GPS sensor of V_i computes its position
     send(CU_i, cam(pos))    CU of V_i sends a warning message
     rec(CU_i, cam(pos))     CU of V_i receives a warning message
     fwd(CU_i, cam(pos))     CU of V_i forwards a warning message
     show(HMI_i, warn)       HMI of V_i shows its driver a warning *)

module Term = Fsa_term.Term
module Agent = Fsa_term.Agent
module Action = Fsa_term.Action
module Component = Fsa_model.Component
module Flow = Fsa_model.Flow
module Sos = Fsa_model.Sos

let forwarding_policy = "position-based-forwarding"

(* ------------------------------------------------------------------ *)
(* Action constructors (Table 1)                                       *)
(* ------------------------------------------------------------------ *)

let cam_pos = Term.app "cam" [ Term.sym "pos" ]
let sw = Term.sym "sW"
let warn = Term.sym "warn"
let position = Term.sym "pos"

let rsu_send = Action.make ~args:[ cam_pos ] "send"

let sense idx = Action.make ~actor:(Agent.make ~index:idx "ESP") ~args:[ sw ] "sense"
let gps_pos idx = Action.make ~actor:(Agent.make ~index:idx "GPS") ~args:[ position ] "pos"
let cu_send idx = Action.make ~actor:(Agent.make ~index:idx "CU") ~args:[ cam_pos ] "send"
let cu_rec idx = Action.make ~actor:(Agent.make ~index:idx "CU") ~args:[ cam_pos ] "rec"
let cu_fwd idx = Action.make ~actor:(Agent.make ~index:idx "CU") ~args:[ cam_pos ] "fwd"
let show idx = Action.make ~actor:(Agent.make ~index:idx "HMI") ~args:[ warn ] "show"

let driver idx = Agent.make ~index:idx "D"

(* Table 1, as (action, explanation) rows. *)
let table1 =
  let i = Agent.Symbolic "i" in
  [ (rsu_send,
     "A roadside unit broadcasts a cooperative awareness message cam \
      concerning a danger at position pos.");
    (sense i, "The ESP sensor of vehicle V_i senses slippery wheels (sW).");
    (gps_pos i, "The GPS sensor of vehicle V_i computes its position.");
    (cu_send i,
     "The communication unit CU_i of vehicle V_i sends a cooperative \
      awareness message cam concerning the assumed danger based on the \
      slippery wheels measurement for position pos.");
    (cu_rec i,
     "The communication unit CU_i of vehicle V_i receives a cooperative \
      awareness message cam for position pos from another vehicle or a \
      roadside unit.");
    (cu_fwd i,
     "The communication unit CU_i of vehicle V_i forwards a cooperative \
      awareness message cam for position pos.");
    (show i,
     "The human machine interface HMI_i of Vehicle V_i shows its driver a \
      warning warn with respect to the relative position.") ]

(* ------------------------------------------------------------------ *)
(* Functional component models (Fig. 1)                                *)
(* ------------------------------------------------------------------ *)

(* Fig. 1(a): the roadside unit has the single boundary action send. *)
let rsu_component =
  Component.make "RSU" ~actions:[ rsu_send ]
    ~ports:[ { Component.port_action = rsu_send; direction = `Out } ]
    ~flows:[]

(* Fig. 1(b): the vehicle component model.  The flow pos -> fwd carries
   the position-based forwarding policy (introduced for performance
   reasons, Sect. 4.4); all other flows are safety-functional. *)
let vehicle_template =
  let i = Agent.Symbolic "i" in
  Component.make "Vehicle" ~param:"i"
    ~actions:[ sense i; gps_pos i; cu_send i; cu_rec i; cu_fwd i; show i ]
    ~flows:
      [ Flow.internal (sense i) (cu_send i);
        Flow.internal (gps_pos i) (cu_send i);
        Flow.internal (cu_rec i) (show i);
        Flow.internal (gps_pos i) (show i);
        Flow.internal (cu_rec i) (cu_fwd i);
        Flow.internal ~policy:forwarding_policy (gps_pos i) (cu_fwd i) ]

(* Role-restricted vehicle instances: each SoS instance only contains the
   actions its use case exercises (Figs. 2-4 show exactly these). *)
let restrict component keep_labels =
  let keep a = List.mem (Action.label a) keep_labels in
  { component with
    Component.actions = List.filter keep (Component.actions component);
    flows =
      List.filter
        (fun f -> keep (Flow.src f) && keep (Flow.dst f))
        (Component.flows component);
    ports =
      List.filter
        (fun p -> keep p.Component.port_action)
        (Component.ports component) }

let vehicle_with_index idx =
  match idx with
  | Agent.Concrete i -> Component.instantiate ~short_name:"V" vehicle_template i
  | Agent.Symbolic x ->
    let c = Component.with_symbolic_index vehicle_template x in
    { c with Component.name = "V_" ^ x }
  | Agent.Unindexed -> invalid_arg "vehicle_with_index: Unindexed"

(* Use case 2: sense a danger and warn successive vehicles. *)
let warning_vehicle idx = restrict (vehicle_with_index idx) [ "sense"; "pos"; "send" ]

(* Use case 3: receive a warning and show it to the driver. *)
let receiving_vehicle idx = restrict (vehicle_with_index idx) [ "pos"; "rec"; "show" ]

(* Use case 4: receive a warning and retransmit it. *)
let forwarding_vehicle idx = restrict (vehicle_with_index idx) [ "pos"; "rec"; "fwd" ]

(* ------------------------------------------------------------------ *)
(* SoS instances (Figs. 2-4)                                           *)
(* ------------------------------------------------------------------ *)

let w = Agent.Symbolic "w"

(* Fig. 2: vehicle w receives a warning from the RSU (use cases 1 + 3). *)
let rsu_and_vehicle =
  Sos.make "rsu_and_vehicle"
    ~components:[ rsu_component; receiving_vehicle w ]
    ~links:[ Flow.external_ rsu_send (cu_rec w) ]

(* Fig. 3: vehicle w receives a warning from vehicle 1 (use cases 2 + 3). *)
let two_vehicles =
  Sos.make "two_vehicles"
    ~components:[ warning_vehicle (Agent.Concrete 1); receiving_vehicle w ]
    ~links:[ Flow.external_ (cu_send (Agent.Concrete 1)) (cu_rec w) ]

(* Fig. 4: vehicle 2 forwards warnings from vehicle 1 to vehicle w
   (use cases 2 + 3 + 4). *)
let three_vehicles =
  let v1 = Agent.Concrete 1 and v2 = Agent.Concrete 2 in
  Sos.make "three_vehicles"
    ~components:
      [ warning_vehicle v1; forwarding_vehicle v2; receiving_vehicle w ]
    ~links:
      [ Flow.external_ (cu_send v1) (cu_rec v2);
        Flow.external_ (cu_fwd v2) (cu_rec w) ]

(* The parameterised family: vehicle 1 warns, vehicles 2..n forward, and
   vehicle w receives — [chain 2] is [two_vehicles], [chain 3] is
   [three_vehicles] and so on. *)
let chain n =
  if n < 2 then invalid_arg "Scenario.chain: need at least two vehicles";
  let v i = Agent.Concrete i in
  let forwarders = List.init (n - 2) (fun k -> v (k + 2)) in
  let components =
    (warning_vehicle (v 1) :: List.map forwarding_vehicle forwarders)
    @ [ receiving_vehicle w ]
  in
  let rec links acc prev_out = function
    | [] -> List.rev (Flow.external_ prev_out (cu_rec w) :: acc)
    | idx :: rest ->
      links (Flow.external_ prev_out (cu_rec idx) :: acc) (cu_fwd idx) rest
  in
  Sos.make
    (Printf.sprintf "chain_%d" n)
    ~components
    ~links:(links [] (cu_send (v 1)) forwarders)

(* Vehicles that forward the message in [chain n]: the quantification
   domain V_forward of requirement (4). *)
let forwarders_of_chain n = List.init (max 0 (n - 2)) (fun k -> k + 2)

let v_forward_domain agent =
  match Agent.role agent, Agent.index agent with
  | "GPS", Agent.Concrete i when i >= 2 -> Some "V_forward"
  | _, _ -> None

(* All structurally different two-component SoS instances over the use
   cases (Sect. 4.2): used to demonstrate instance enumeration with
   isomorphic combinations neglected. *)
let enumerate_two_component_instances () =
  let senders =
    [ ("rsu", rsu_send, [ rsu_component ]);
      ("warner", cu_send (Agent.Concrete 1), [ warning_vehicle (Agent.Concrete 1) ]);
      ("forwarder", cu_fwd (Agent.Concrete 1),
       [ forwarding_vehicle (Agent.Concrete 1) ]) ]
  in
  let receivers =
    [ ("receiver", cu_rec w, [ receiving_vehicle w ]);
      ("relay", cu_rec w, [ forwarding_vehicle w ]) ]
  in
  List.concat_map
    (fun (sn, out, scs) ->
      List.filter_map
        (fun (rn, inp, rcs) ->
          (* a forwarder sending to itself makes no sense structurally;
             all combinations here are cross-component *)
          let name = Printf.sprintf "%s_to_%s" sn rn in
          match Sos.validate { Sos.name; components = scs @ rcs;
                               links = [ Flow.external_ out inp ] } with
          | Ok () ->
            Some (Sos.make name ~components:(scs @ rcs)
                    ~links:[ Flow.external_ out inp ])
          | Error _ -> None)
        receivers)
    senders
  |> Sos.dedup_isomorphic

(* Fully concrete chain (receiver has index n instead of the symbolic w):
   used when cross-validating the manual path against the tool path, whose
   APA instances are concretely indexed. *)
let chain_concrete n =
  if n < 2 then invalid_arg "Scenario.chain_concrete: need at least two vehicles";
  let v i = Agent.Concrete i in
  let forwarders = List.init (n - 2) (fun k -> v (k + 2)) in
  let components =
    (warning_vehicle (v 1) :: List.map forwarding_vehicle forwarders)
    @ [ receiving_vehicle (v n) ]
  in
  let rec links acc prev_out = function
    | [] -> List.rev (Flow.external_ prev_out (cu_rec (v n)) :: acc)
    | idx :: rest ->
      links (Flow.external_ prev_out (cu_rec idx) :: acc) (cu_fwd idx) rest
  in
  Sos.make
    (Printf.sprintf "chain_concrete_%d" n)
    ~components
    ~links:(links [] (cu_send (v 1)) forwarders)

(* Two independent concrete warner/receiver pairs — the manual-path
   counterpart of the Fig. 8 APA instance. *)
let pairs_concrete k =
  if k < 1 then invalid_arg "Scenario.pairs_concrete";
  let mk j =
    let s = (2 * j) + 1 and r = (2 * j) + 2 in
    ([ warning_vehicle (Agent.Concrete s); receiving_vehicle (Agent.Concrete r) ],
     Flow.external_ (cu_send (Agent.Concrete s)) (cu_rec (Agent.Concrete r)))
  in
  let parts = List.map mk (List.init k Fun.id) in
  Sos.make
    (Printf.sprintf "pairs_concrete_%d" k)
    ~components:(List.concat_map fst parts)
    ~links:(List.map snd parts)
