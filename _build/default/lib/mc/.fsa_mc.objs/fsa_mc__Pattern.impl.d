lib/mc/pattern.ml: Array Fmt Fsa_automata Fsa_hom Fsa_lts Fsa_term Fun List
