(* Finite automata over an arbitrary ordered label alphabet.

   The SH verification tool computes, for every homomorphic image of a
   behaviour, the corresponding minimal deterministic automaton (citing
   Eilenberg).  This module provides the underlying machinery: NFAs with
   epsilon transitions (the result of applying an alphabetic language
   homomorphism to a reachability graph), subset construction, completion,
   Hopcroft and Moore minimisation, language operations and decision
   procedures. *)

module Int_set = Set.Make (Int)

let log_src = Logs.Src.create "fsa.automata" ~doc:"finite-automata algorithms"

module Log = (val Logs.src_log log_src)

module Metrics = Fsa_obs.Metrics

let m_minimize_runs = Metrics.counter "automata.minimize_runs"
let m_refinement_rounds = Metrics.counter "automata.refinement_rounds"
let m_hopcroft_splits = Metrics.counter "automata.hopcroft_splits"
let g_minimize_in = Metrics.gauge "automata.minimize_states_in"
let g_minimize_out = Metrics.gauge "automata.minimize_states_out"

module type LABEL = sig
  type t

  val compare : t -> t -> int
  val pp : t Fmt.t
end

module Make (L : LABEL) = struct
  module Lset = Set.Make (L)
  module Lmap = Map.Make (L)

  (* ---------------------------------------------------------------- *)
  (* Nondeterministic finite automata with epsilon transitions          *)
  (* ---------------------------------------------------------------- *)

  module Nfa = struct
    type t = {
      nb_states : int;
      start : Int_set.t;
      finals : Int_set.t;
      edges : (int * L.t option * int) list;  (* None = epsilon *)
    }

    let create ~nb_states ~start ~finals ~edges =
      let check s =
        if s < 0 || s >= nb_states then
          invalid_arg (Printf.sprintf "Nfa.create: state %d out of range" s)
      in
      Int_set.iter check start;
      Int_set.iter check finals;
      List.iter (fun (s, _, d) -> check s; check d) edges;
      { nb_states; start; finals; edges }

    let nb_states t = t.nb_states
    let start t = t.start
    let finals t = t.finals
    let edges t = t.edges

    let alphabet t =
      List.fold_left
        (fun acc (_, l, _) ->
          match l with None -> acc | Some l -> Lset.add l acc)
        Lset.empty t.edges

    (* Adjacency indexed by source state. *)
    let successors t =
      let succ = Array.make t.nb_states [] in
      List.iter (fun (s, l, d) -> succ.(s) <- (l, d) :: succ.(s)) t.edges;
      succ

    let eps_closure_of succ set =
      let rec go visited = function
        | [] -> visited
        | s :: rest ->
          if Int_set.mem s visited then go visited rest
          else
            let visited = Int_set.add s visited in
            let next =
              List.filter_map
                (fun (l, d) -> match l with None -> Some d | Some _ -> None)
                succ.(s)
            in
            go visited (next @ rest)
      in
      go Int_set.empty (Int_set.elements set)

    let eps_closure t set = eps_closure_of (successors t) set

    let step_on succ set l =
      Int_set.fold
        (fun s acc ->
          List.fold_left
            (fun acc (l', d) ->
              match l' with
              | Some l'' when L.compare l l'' = 0 -> Int_set.add d acc
              | Some _ | None -> acc)
            acc succ.(s))
        set Int_set.empty

    let accepts t word =
      let succ = successors t in
      let current =
        List.fold_left
          (fun set l -> eps_closure_of succ (step_on succ set l))
          (eps_closure_of succ t.start)
          word
      in
      not (Int_set.is_empty (Int_set.inter current t.finals))
  end

  (* ---------------------------------------------------------------- *)
  (* Deterministic finite automata                                      *)
  (* ---------------------------------------------------------------- *)

  module Dfa = struct
    (* Partial DFAs: missing transitions go to an implicit non-accepting
       sink.  [delta] is indexed by state. *)
    type t = {
      nb_states : int;
      start : int;
      finals : Int_set.t;
      delta : int Lmap.t array;
    }

    let create ~nb_states ~start ~finals ~delta =
      if Array.length delta <> nb_states then
        invalid_arg "Dfa.create: delta length mismatch";
      if start < 0 || start >= nb_states then invalid_arg "Dfa.create: start";
      { nb_states; start; finals; delta }

    let nb_states t = t.nb_states
    let start t = t.start
    let finals t = t.finals
    let delta t = t.delta
    let is_final t s = Int_set.mem s t.finals

    let alphabet t =
      Array.fold_left
        (fun acc m -> Lmap.fold (fun l _ acc -> Lset.add l acc) m acc)
        Lset.empty t.delta

    let step t s l = Lmap.find_opt l t.delta.(s)

    let accepts t word =
      let rec go s = function
        | [] -> is_final t s
        | l :: rest -> (
          match step t s l with None -> false | Some s' -> go s' rest)
      in
      go t.start word

    let transitions t =
      let acc = ref [] in
      Array.iteri
        (fun s m -> Lmap.iter (fun l d -> acc := (s, l, d) :: !acc) m)
        t.delta;
      List.rev !acc

    let nb_transitions t =
      Array.fold_left (fun acc m -> acc + Lmap.cardinal m) 0 t.delta

    (* Subset construction.  Only reachable subsets are materialised. *)
    let determinize (nfa : Nfa.t) =
      let succ = Nfa.successors nfa in
      let module Sm = Map.Make (Int_set) in
      let start_set = Nfa.eps_closure_of succ (Nfa.start nfa) in
      let index = ref (Sm.singleton start_set 0) in
      let sets = ref [ start_set ] in
      let nb = ref 1 in
      let delta_acc = ref [] in
      let queue = Queue.create () in
      Queue.add (0, start_set) queue;
      while not (Queue.is_empty queue) do
        let id, set = Queue.pop queue in
        let labels =
          Int_set.fold
            (fun s acc ->
              List.fold_left
                (fun acc (l, _) ->
                  match l with None -> acc | Some l -> Lset.add l acc)
                acc succ.(s))
            set Lset.empty
        in
        let trans =
          Lset.fold
            (fun l acc ->
              let target =
                Nfa.eps_closure_of succ (Nfa.step_on succ set l)
              in
              if Int_set.is_empty target then acc
              else
                let tid =
                  match Sm.find_opt target !index with
                  | Some tid -> tid
                  | None ->
                    let tid = !nb in
                    index := Sm.add target tid !index;
                    sets := target :: !sets;
                    incr nb;
                    Queue.add (tid, target) queue;
                    tid
                in
                Lmap.add l tid acc)
            labels Lmap.empty
        in
        delta_acc := (id, trans) :: !delta_acc
      done;
      let nb_states = !nb in
      let delta = Array.make nb_states Lmap.empty in
      List.iter (fun (id, m) -> delta.(id) <- m) !delta_acc;
      let finals =
        List.fold_left
          (fun acc set ->
            let id = Sm.find set !index in
            if Int_set.is_empty (Int_set.inter set (Nfa.finals nfa)) then acc
            else Int_set.add id acc)
          Int_set.empty !sets
      in
      create ~nb_states ~start:0 ~finals ~delta

    (* Restrict to states reachable from the start and co-reachable to a
       final state (trim); preserves the language. *)
    let trim t =
      let reach = Array.make t.nb_states false in
      let rec fwd s =
        if not reach.(s) then begin
          reach.(s) <- true;
          Lmap.iter (fun _ d -> fwd d) t.delta.(s)
        end
      in
      fwd t.start;
      (* co-reachability via reverse adjacency *)
      let rev = Array.make t.nb_states [] in
      Array.iteri
        (fun s m -> Lmap.iter (fun _ d -> rev.(d) <- s :: rev.(d)) m)
        t.delta;
      let corect = Array.make t.nb_states false in
      let rec bwd s =
        if not corect.(s) then begin
          corect.(s) <- true;
          List.iter bwd rev.(s)
        end
      in
      Int_set.iter (fun s -> if reach.(s) then bwd s) t.finals;
      let keep = Array.init t.nb_states (fun s -> reach.(s) && corect.(s)) in
      if not keep.(t.start) then
        (* empty language: single non-accepting state *)
        create ~nb_states:1 ~start:0 ~finals:Int_set.empty
          ~delta:[| Lmap.empty |]
      else begin
        let remap = Array.make t.nb_states (-1) in
        let nb = ref 0 in
        Array.iteri
          (fun s k ->
            if k then begin
              remap.(s) <- !nb;
              incr nb
            end)
          keep;
        let delta = Array.make !nb Lmap.empty in
        Array.iteri
          (fun s m ->
            if keep.(s) then
              delta.(remap.(s)) <-
                Lmap.fold
                  (fun l d acc ->
                    if keep.(d) then Lmap.add l remap.(d) acc else acc)
                  m Lmap.empty)
          t.delta;
        let finals =
          Int_set.fold
            (fun s acc -> if keep.(s) then Int_set.add remap.(s) acc else acc)
            t.finals Int_set.empty
        in
        create ~nb_states:!nb ~start:remap.(t.start) ~finals ~delta
      end

    (* Complete the DFA over [alphabet] by adding an explicit sink. *)
    let complete ~alphabet t =
      let needs_sink =
        Array.exists
          (fun m -> Lset.exists (fun l -> not (Lmap.mem l m)) alphabet)
          t.delta
      in
      if not needs_sink then t
      else begin
        let sink = t.nb_states in
        let delta = Array.make (t.nb_states + 1) Lmap.empty in
        Array.iteri
          (fun s m ->
            delta.(s) <-
              Lset.fold
                (fun l acc ->
                  if Lmap.mem l acc then acc else Lmap.add l sink acc)
                alphabet m)
          t.delta;
        delta.(sink) <-
          Lset.fold (fun l acc -> Lmap.add l sink acc) alphabet Lmap.empty;
        create ~nb_states:(t.nb_states + 1) ~start:t.start ~finals:t.finals
          ~delta
      end

    (* Moore minimisation: iterated partition refinement by successor
       blocks.  Runs on the completed automaton, then trims the sink. *)
    let minimize_moore t =
      let t = trim t in
      let sigma = alphabet t in
      let t = complete ~alphabet:sigma t in
      let n = t.nb_states in
      let block = Array.init n (fun s -> if is_final t s then 1 else 0) in
      let changed = ref true in
      while !changed do
        changed := false;
        if Metrics.enabled () then Metrics.incr m_refinement_rounds;
        (* signature of a state: its block plus successor blocks *)
        let module Sig = Map.Make (struct
          type t = int * (int option) list

          let compare = Stdlib.compare
        end) in
        let signature s =
          ( block.(s),
            Lset.fold
              (fun l acc ->
                (match step t s l with
                 | Some d -> Some block.(d)
                 | None -> None)
                :: acc)
              sigma [] )
        in
        let index = ref Sig.empty in
        let next = Array.make n 0 in
        let nb = ref 0 in
        for s = 0 to n - 1 do
          let g = signature s in
          match Sig.find_opt g !index with
          | Some b -> next.(s) <- b
          | None ->
            index := Sig.add g !nb !index;
            next.(s) <- !nb;
            incr nb
        done;
        if next <> block then begin
          Array.blit next 0 block 0 n;
          changed := true
        end
      done;
      let nb = Array.fold_left (fun acc b -> max acc (b + 1)) 0 block in
      let delta = Array.make nb Lmap.empty in
      Array.iteri
        (fun s m ->
          delta.(block.(s)) <-
            Lmap.fold (fun l d acc -> Lmap.add l block.(d) acc) m delta.(block.(s)))
        t.delta;
      let finals =
        Int_set.fold
          (fun s acc -> Int_set.add block.(s) acc)
          t.finals Int_set.empty
      in
      trim (create ~nb_states:nb ~start:block.(t.start) ~finals ~delta)

    (* Hopcroft's minimisation with an indexed-partition refinement
       structure: the partition is a permutation array with per-block
       ranges, splits move marked states to the front of their block's
       range, and the "process the smaller half" rule bounds the work at
       O(n log n) block movements per letter. *)
    let minimize t =
      let obs = Metrics.enabled () in
      if obs then begin
        Metrics.incr m_minimize_runs;
        Metrics.set_gauge g_minimize_in (float_of_int t.nb_states)
      end;
      let t = trim t in
      let sigma = alphabet t in
      let t = complete ~alphabet:sigma t in
      let n = t.nb_states in
      if n = 0 then t
      else begin
        let labels = Array.of_seq (Lset.to_seq sigma) in
        let nl = Array.length labels in
        (* reverse transitions per label index *)
        let label_index =
          let m = ref Lmap.empty in
          Array.iteri (fun i l -> m := Lmap.add l i !m) labels;
          !m
        in
        let rev = Array.make_matrix nl n [] in
        Array.iteri
          (fun s m ->
            Lmap.iter
              (fun l d ->
                let li = Lmap.find l label_index in
                rev.(li).(d) <- s :: rev.(li).(d))
              m)
          t.delta;
        (* indexed partition *)
        let elems = Array.init n Fun.id in
        let loc = Array.init n Fun.id in
        let block_of = Array.make n 0 in
        let block_start = Array.make n 0 in
        let block_size = Array.make n 0 in
        let nb_blocks = ref 0 in
        let marked = Array.make n 0 in  (* per block: number marked *)
        (* initial partition: finals / non-finals *)
        let finals = Array.make n false in
        Int_set.iter (fun s -> finals.(s) <- true) t.finals;
        let place pred start =
          let count = ref 0 in
          for s = 0 to n - 1 do
            if pred s then begin
              let pos = start + !count in
              elems.(pos) <- s;
              loc.(s) <- pos;
              incr count
            end
          done;
          !count
        in
        let nf = place (fun s -> finals.(s)) 0 in
        let _ = place (fun s -> not finals.(s)) nf in
        if nf > 0 then begin
          let b = !nb_blocks in
          incr nb_blocks;
          block_start.(b) <- 0;
          block_size.(b) <- nf;
          for i = 0 to nf - 1 do
            block_of.(elems.(i)) <- b
          done
        end;
        if nf < n then begin
          let b = !nb_blocks in
          incr nb_blocks;
          block_start.(b) <- nf;
          block_size.(b) <- n - nf;
          for i = nf to n - 1 do
            block_of.(elems.(i)) <- b
          done
        end;
        (* worklist of (block, letter) with membership flags *)
        let in_work = Array.make_matrix n nl false in
        let work = Queue.create () in
        let push b li =
          if not in_work.(b).(li) then begin
            in_work.(b).(li) <- true;
            Queue.add (b, li) work
          end
        in
        for b = 0 to !nb_blocks - 1 do
          for li = 0 to nl - 1 do
            push b li
          done
        done;
        (* mark a state inside its block: swap it into the marked prefix *)
        let touched = ref [] in
        let mark s =
          let b = block_of.(s) in
          let m = marked.(b) in
          let pos = loc.(s) in
          let boundary = block_start.(b) + m in
          if pos >= boundary then begin
            if m = 0 then touched := b :: !touched;
            let other = elems.(boundary) in
            elems.(boundary) <- s;
            elems.(pos) <- other;
            loc.(s) <- boundary;
            loc.(other) <- pos;
            marked.(b) <- m + 1
          end
        in
        while not (Queue.is_empty work) do
          let a_block, li = Queue.pop work in
          in_work.(a_block).(li) <- false;
          (* X = predecessors on label li of states in a_block *)
          touched := [];
          let astart = block_start.(a_block)
          and asize = block_size.(a_block) in
          (* collect first: marking reorders elems within blocks only, and
             a_block itself may be split, so snapshot its members *)
          let members = Array.sub elems astart asize in
          Array.iter (fun s -> List.iter mark rev.(li).(s)) members;
          (* split every touched block *)
          List.iter
            (fun b ->
              let m = marked.(b) in
              marked.(b) <- 0;
              if m > 0 && m < block_size.(b) then begin
                if obs then Metrics.incr m_hopcroft_splits;
                (* new block: the marked prefix or the remainder, whichever
                   is smaller *)
                let nb = !nb_blocks in
                incr nb_blocks;
                let small_is_prefix = m <= block_size.(b) - m in
                if small_is_prefix then begin
                  block_start.(nb) <- block_start.(b);
                  block_size.(nb) <- m;
                  block_start.(b) <- block_start.(b) + m;
                  block_size.(b) <- block_size.(b) - m
                end
                else begin
                  block_start.(nb) <- block_start.(b) + m;
                  block_size.(nb) <- block_size.(b) - m;
                  block_size.(b) <- m
                end;
                for i = block_start.(nb) to block_start.(nb) + block_size.(nb) - 1
                do
                  block_of.(elems.(i)) <- nb
                done;
                (* enqueue the (smaller) new part for every letter; a
                   pending (b, c) stays pending, which keeps the
                   refinement correct and at most doubles the work *)
                for c = 0 to nl - 1 do
                  push nb c
                done
              end)
            !touched
        done;
        (* build the quotient *)
        let delta = Array.make !nb_blocks Lmap.empty in
        Array.iteri
          (fun s m ->
            let bs = block_of.(s) in
            delta.(bs) <-
              Lmap.fold (fun l d acc -> Lmap.add l block_of.(d) acc) m delta.(bs))
          t.delta;
        let finals_q =
          Int_set.fold
            (fun s acc -> Int_set.add block_of.(s) acc)
            t.finals Int_set.empty
        in
        let result =
          trim
            (create ~nb_states:!nb_blocks ~start:block_of.(t.start)
               ~finals:finals_q ~delta)
        in
        if obs then
          Metrics.set_gauge g_minimize_out (float_of_int result.nb_states);
        Log.debug (fun m ->
            m "hopcroft: minimised %d -> %d states over %d letters" n
              result.nb_states nl);
        result
      end


    let is_empty t =
      let t = trim t in
      Int_set.is_empty t.finals

    (* Product automaton under a boolean combinator on acceptance. *)
    let product ~combine t1 t2 =
      let sigma = Lset.union (alphabet t1) (alphabet t2) in
      let t1 = complete ~alphabet:sigma t1 in
      let t2 = complete ~alphabet:sigma t2 in
      let module Pm = Map.Make (struct
        type t = int * int

        let compare = Stdlib.compare
      end) in
      let index = ref (Pm.singleton (t1.start, t2.start) 0) in
      let nb = ref 1 in
      let delta_acc = ref [] in
      let finals = ref Int_set.empty in
      let queue = Queue.create () in
      Queue.add ((t1.start, t2.start), 0) queue;
      while not (Queue.is_empty queue) do
        let (s1, s2), id = Queue.pop queue in
        if combine (is_final t1 s1) (is_final t2 s2) then
          finals := Int_set.add id !finals;
        let trans =
          Lset.fold
            (fun l acc ->
              match step t1 s1 l, step t2 s2 l with
              | Some d1, Some d2 ->
                let key = (d1, d2) in
                let tid =
                  match Pm.find_opt key !index with
                  | Some tid -> tid
                  | None ->
                    let tid = !nb in
                    index := Pm.add key tid !index;
                    incr nb;
                    Queue.add (key, tid) queue;
                    tid
                in
                Lmap.add l tid acc
              | _, _ -> acc)
            sigma Lmap.empty
        in
        delta_acc := (id, trans) :: !delta_acc
      done;
      let delta = Array.make !nb Lmap.empty in
      List.iter (fun (id, m) -> delta.(id) <- m) !delta_acc;
      create ~nb_states:!nb ~start:0 ~finals:!finals ~delta

    let intersection t1 t2 = product ~combine:( && ) t1 t2
    let union t1 t2 = product ~combine:( || ) t1 t2

    let difference t1 t2 = product ~combine:(fun a b -> a && not b) t1 t2

    let language_subset t1 t2 = is_empty (difference t1 t2)

    let language_equal t1 t2 = language_subset t1 t2 && language_subset t2 t1

    (* All accepted words up to a length bound (tests, small examples). *)
    let words ~max_len t =
      let rec go acc word len s =
        let acc = if is_final t s then List.rev word :: acc else acc in
        if len = max_len then acc
        else
          Lmap.fold
            (fun l d acc -> go acc (l :: word) (len + 1) d)
            t.delta.(s) acc
      in
      List.sort_uniq (List.compare L.compare) (go [] [] 0 t.start)

    (* A language is finite iff the trim automaton is acyclic. *)
    let language_is_finite t =
      let t = trim t in
      let n = t.nb_states in
      (* colours: 0 white, 1 grey, 2 black *)
      let colour = Array.make n 0 in
      let rec cyclic s =
        colour.(s) <- 1;
        let found =
          Lmap.exists
            (fun _ d ->
              colour.(d) = 1 || (colour.(d) = 0 && cyclic d))
            t.delta.(s)
        in
        if not found then colour.(s) <- 2;
        found
      in
      n = 0 || not (cyclic t.start)

    (* The number of accepted words of a finite language ([None] when the
       language is infinite), by memoised counting on the trim DAG. *)
    let count_words t =
      let t = trim t in
      if not (language_is_finite t) then None
      else begin
        let memo = Array.make (max 1 t.nb_states) (-1) in
        let rec count s =
          if memo.(s) >= 0 then memo.(s)
          else begin
            let self = if is_final t s then 1 else 0 in
            let total =
              Lmap.fold (fun _ d acc -> acc + count d) t.delta.(s) self
            in
            memo.(s) <- total;
            total
          end
        in
        if t.nb_states = 0 then Some 0 else Some (count t.start)
      end

    (* Shortest accepted word by BFS; [None] for the empty language.  Used
       to extract counterexamples from difference automata. *)
    let shortest_accepted t =
      let n = t.nb_states in
      let visited = Array.make n false in
      let queue = Queue.create () in
      visited.(t.start) <- true;
      Queue.add (t.start, []) queue;
      let rec go () =
        if Queue.is_empty queue then None
        else begin
          let s, word = Queue.pop queue in
          if is_final t s then Some (List.rev word)
          else begin
            Lmap.iter
              (fun l d ->
                if not visited.(d) then begin
                  visited.(d) <- true;
                  Queue.add (d, l :: word) queue
                end)
              t.delta.(s);
            go ()
          end
        end
      in
      go ()

    (* Canonical form of a trim DFA: BFS renumbering with label-sorted
       edge exploration.  Two minimal automata are isomorphic iff their
       canonical forms are structurally equal. *)
    let canonicalize t =
      let t = trim t in
      let order = Array.make t.nb_states (-1) in
      let nb = ref 0 in
      let queue = Queue.create () in
      order.(t.start) <- 0;
      nb := 1;
      Queue.add t.start queue;
      while not (Queue.is_empty queue) do
        let s = Queue.pop queue in
        Lmap.iter
          (fun _ d ->
            if order.(d) = -1 then begin
              order.(d) <- !nb;
              incr nb;
              Queue.add d queue
            end)
          t.delta.(s)
      done;
      let delta = Array.make !nb Lmap.empty in
      Array.iteri
        (fun s m ->
          if order.(s) >= 0 then
            delta.(order.(s)) <-
              Lmap.fold
                (fun l d acc ->
                  if order.(d) >= 0 then Lmap.add l order.(d) acc else acc)
                m Lmap.empty)
        t.delta;
      let finals =
        Int_set.fold
          (fun s acc ->
            if order.(s) >= 0 then Int_set.add order.(s) acc else acc)
          t.finals Int_set.empty
      in
      create ~nb_states:!nb ~start:0 ~finals ~delta

    let isomorphic t1 t2 =
      let c1 = canonicalize t1 and c2 = canonicalize t2 in
      c1.nb_states = c2.nb_states
      && Int_set.equal c1.finals c2.finals
      && Array.for_all2 (fun m1 m2 -> Lmap.equal Int.equal m1 m2) c1.delta
           c2.delta

    let dot ?(name = "dfa") ?(state_label = fun i -> Printf.sprintf "q%d" i) t =
      let d = Fsa_graph.Dot.create ~graph_attrs:[ ("rankdir", "LR") ] name in
      Array.iteri
        (fun s _ ->
          let attrs =
            (if is_final t s then [ ("shape", "doublecircle") ]
             else [ ("shape", "circle") ])
            @ if s = t.start then [ ("style", "bold") ] else []
          in
          Fsa_graph.Dot.node ~attrs d (state_label s))
        t.delta;
      List.iter
        (fun (s, l, d') ->
          Fsa_graph.Dot.edge
            ~attrs:[ ("label", Fmt.str "%a" L.pp l) ]
            d (state_label s) (state_label d'))
        (transitions t);
      Fsa_graph.Dot.to_string d

    let pp ppf t =
      Fmt.pf ppf "@[<v>dfa: %d states, start q%d, finals {%a}@,%a@]"
        t.nb_states t.start
        Fmt.(list ~sep:comma int)
        (Int_set.elements t.finals)
        Fmt.(
          list ~sep:cut (fun ppf (s, l, d) ->
              Fmt.pf ppf "q%d --%a--> q%d" s L.pp l d))
        (transitions t)
  end

  (* Project a DFA through an alphabetic homomorphism on its labels:
     [None] turns the edge into an epsilon transition, [Some l'] relabels
     it.  The result recognises the homomorphic image of the DFA's
     language, so chaining [relabel] with subset construction and
     minimisation answers any coarser abstraction from an
     already-minimised intermediate automaton instead of from the
     original behaviour — the basis of the shared multi-pair
     abstraction engine. *)
  let relabel (h : L.t -> L.t option) (dfa : Dfa.t) : Nfa.t =
    let edges =
      List.rev_map (fun (s, l, d) -> (s, h l, d)) (Dfa.transitions dfa)
    in
    Nfa.create ~nb_states:(Dfa.nb_states dfa)
      ~start:(Int_set.singleton (Dfa.start dfa))
      ~finals:(Dfa.finals dfa) ~edges

  (* Subset construction specialised to projecting an already
     deterministic automaton: same language as
     [Dfa.determinize (relabel h dfa)], but subsets are bitsets over the
     source states instead of [Int_set], so the epsilon closures that
     dominate the generic construction on a large source become linear
     array walks.  This is what makes per-pair projections from a
     many-thousand-state shared quotient cheap enough to run once per
     derived requirement. *)
  let project (h : L.t -> L.t option) (dfa : Dfa.t) : Dfa.t =
    let n = Dfa.nb_states dfa in
    (* per-state successors, split once into erased and relabelled *)
    let eps = Array.make n [] in
    let lab = Array.make n [] in
    Array.iteri
      (fun s m ->
        Lmap.iter
          (fun l d ->
            match h l with
            | None -> eps.(s) <- d :: eps.(s)
            | Some l' -> lab.(s) <- (l', d) :: lab.(s))
          m)
      (Dfa.delta dfa);
    let final = Array.make n false in
    Int_set.iter (fun s -> final.(s) <- true) (Dfa.finals dfa);
    let nbytes = (n + 7) / 8 in
    (* epsilon closure of [seeds]: hashable bitset key, members, finality *)
    let closure seeds =
      let bits = Bytes.make nbytes '\000' in
      let members = ref [] in
      let is_final = ref false in
      let rec visit s =
        let i = s lsr 3 and m = 1 lsl (s land 7) in
        let b = Char.code (Bytes.unsafe_get bits i) in
        if b land m = 0 then begin
          Bytes.unsafe_set bits i (Char.unsafe_chr (b lor m));
          members := s :: !members;
          if final.(s) then is_final := true;
          List.iter visit eps.(s)
        end
      in
      List.iter visit seeds;
      (Bytes.unsafe_to_string bits, !members, !is_final)
    in
    let index : (string, int) Hashtbl.t = Hashtbl.create 16 in
    let finals_acc = ref Int_set.empty in
    let nb = ref 0 in
    let queue = Queue.create () in
    let intern (key, members, fin) =
      match Hashtbl.find_opt index key with
      | Some id -> id
      | None ->
        let id = !nb in
        incr nb;
        Hashtbl.add index key id;
        if fin then finals_acc := Int_set.add id !finals_acc;
        Queue.add (id, members) queue;
        id
    in
    let start = intern (closure [ Dfa.start dfa ]) in
    let delta_acc = ref [] in
    while not (Queue.is_empty queue) do
      let id, members = Queue.pop queue in
      let seeds =
        List.fold_left
          (fun acc s ->
            List.fold_left
              (fun acc (l', d) ->
                Lmap.update l'
                  (function None -> Some [ d ] | Some ds -> Some (d :: ds))
                  acc)
              acc lab.(s))
          Lmap.empty members
      in
      let trans =
        Lmap.fold
          (fun l' ds acc -> Lmap.add l' (intern (closure ds)) acc)
          seeds Lmap.empty
      in
      delta_acc := (id, trans) :: !delta_acc
    done;
    let delta = Array.make !nb Lmap.empty in
    List.iter (fun (id, m) -> delta.(id) <- m) !delta_acc;
    Dfa.create ~nb_states:!nb ~start ~finals:!finals_acc ~delta
end
