(* Pretty-printing of specification ASTs back to concrete syntax.  The
   printer and the parser round-trip: [Parser.parse_string (to_string ast)]
   yields an AST equal to [ast] up to source locations. *)

open Ast

let pp_sterm = Ast.pp_sterm

(* Conditions print in parser-compatible syntax; [C_true] is the absent
   [when] clause and must not be printed inside one. *)
let rec pp_cond ppf = function
  | C_true -> Fmt.string ppf "true == true" (* only if explicitly requested *)
  | C_eq (a, b) -> Fmt.pf ppf "%a == %a" pp_sterm a pp_sterm b
  | C_neq (a, b) -> Fmt.pf ppf "%a != %a" pp_sterm a pp_sterm b
  | C_call (f, args) ->
    Fmt.pf ppf "%s(%a)" f Fmt.(list ~sep:(any ", ") pp_sterm) args
  | C_and (a, b) -> Fmt.pf ppf "(%a && %a)" pp_cond a pp_cond b
  | C_or (a, b) -> Fmt.pf ppf "(%a || %a)" pp_cond a pp_cond b
  | C_not a -> Fmt.pf ppf "!(%a)" pp_cond a

let pp_termset ppf terms =
  Fmt.pf ppf "{ %a }" Fmt.(list ~sep:(any ", ") pp_sterm) terms

let pp_take ppf tk =
  Fmt.pf ppf "%s %s(%a)"
    (if tk.tk_read then "read" else "take")
    tk.tk_comp pp_sterm tk.tk_pat

let pp_put ppf pt = Fmt.pf ppf "put %s(%a)" pt.pt_comp pp_sterm pt.pt_term

let pp_rule ppf r =
  Fmt.pf ppf "  action %s: %a" r.ru_name
    Fmt.(list ~sep:(any ", ") pp_take)
    r.ru_takes;
  (match r.ru_cond with
  | C_true -> ()
  | cond -> Fmt.pf ppf " when %a" pp_cond cond);
  Fmt.pf ppf " -> %a" Fmt.(list ~sep:(any ", ") pp_put) r.ru_puts

let pp_comp_item ppf = function
  | I_state (name, []) -> Fmt.pf ppf "  state %s" name
  | I_state (name, init) -> Fmt.pf ppf "  state %s = %a" name pp_termset init
  | I_shared name -> Fmt.pf ppf "  shared %s" name
  | I_rule r -> pp_rule ppf r

let pp_component ppf cd =
  Fmt.pf ppf "component %s {@.%a@.}@." cd.cd_name
    Fmt.(list ~sep:(any "@.") pp_comp_item)
    cd.cd_items

let pp_instance ppf i =
  Fmt.pf ppf "instance %s = %s(%d)" i.in_name i.in_comp i.in_id;
  (match i.in_overrides with
  | [] -> ()
  | overrides ->
    let pp_override ppf (field, terms) =
      Fmt.pf ppf "%s = %a" field pp_termset terms
    in
    Fmt.pf ppf " { %a }" Fmt.(list ~sep:(any ", ") pp_override) overrides);
  Fmt.pf ppf "@."

let pp_cluster ppf c =
  Fmt.pf ppf "cluster %s = { %s }@." c.cl_name (String.concat ", " c.cl_members)

let pp_policy_opt ppf = function
  | None -> ()
  | Some p -> Fmt.pf ppf " [policy \"%s\"]" p

let pp_model ppf md =
  Fmt.pf ppf "model %s%s {@." md.md_name
    (match md.md_param with Some p -> "(" ^ p ^ ")" | None -> "");
  List.iter
    (fun ma ->
      match ma.ma_args with
      | [] -> Fmt.pf ppf "  action %s@." ma.ma_label
      | args ->
        Fmt.pf ppf "  action %s(%a)@." ma.ma_label
          Fmt.(list ~sep:(any ", ") pp_sterm)
          args)
    md.md_actions;
  List.iter
    (fun mf ->
      Fmt.pf ppf "  flow %s -> %s%a@." mf.mf_src mf.mf_dst pp_policy_opt
        mf.mf_policy)
    md.md_flows;
  Fmt.pf ppf "}@."

let pp_sos ppf sd =
  Fmt.pf ppf "sos %s {@." sd.sd_name;
  List.iter
    (fun u ->
      match u.us_index with
      | Some i -> Fmt.pf ppf "  use %s(%d) as %s@." u.us_model i u.us_alias
      | None -> Fmt.pf ppf "  use %s as %s@." u.us_model u.us_alias)
    sd.sd_uses;
  List.iter
    (fun lk ->
      let sa, sl = lk.lk_src and da, dl = lk.lk_dst in
      Fmt.pf ppf "  link %s.%s -> %s.%s%a@." sa sl da dl pp_policy_opt
        lk.lk_policy)
    sd.sd_links;
  Fmt.pf ppf "}@."

let pp_check ppf ck =
  Fmt.pf ppf "check %s %s" ck.ck_kind (String.concat " " ck.ck_args);
  (match ck.ck_scope with
  | None -> ()
  | Some (s, a) -> Fmt.pf ppf " %s %s" s a);
  Fmt.pf ppf "@."

let pp_decl ppf = function
  | D_component cd -> pp_component ppf cd
  | D_instance i -> pp_instance ppf i
  | D_cluster c -> pp_cluster ppf c
  | D_model md -> pp_model ppf md
  | D_sos sd -> pp_sos ppf sd
  | D_check ck -> pp_check ppf ck

let pp ppf spec = List.iter (fun d -> Fmt.pf ppf "%a@." pp_decl d) spec

let to_string spec = Fmt.str "%a" pp spec

(* Structural AST equality up to source locations, for round-trip tests. *)
let rec equal_sterm a b =
  match a, b with
  | S_int x, S_int y -> x = y
  | S_self, S_self -> true
  | S_app (f, xs), S_app (g, ys) ->
    String.equal f g && List.equal equal_sterm xs ys
  | (S_int _ | S_self | S_app _), _ -> false

let rec equal_cond a b =
  match a, b with
  | C_true, C_true -> true
  | C_eq (x1, y1), C_eq (x2, y2) | C_neq (x1, y1), C_neq (x2, y2) ->
    equal_sterm x1 x2 && equal_sterm y1 y2
  | C_call (f, xs), C_call (g, ys) ->
    String.equal f g && List.equal equal_sterm xs ys
  | C_and (x1, y1), C_and (x2, y2) | C_or (x1, y1), C_or (x2, y2) ->
    equal_cond x1 x2 && equal_cond y1 y2
  | C_not x, C_not y -> equal_cond x y
  | (C_true | C_eq _ | C_neq _ | C_call _ | C_and _ | C_or _ | C_not _), _ ->
    false

let equal_rule a b =
  String.equal a.ru_name b.ru_name
  && List.equal
       (fun t1 t2 ->
         t1.tk_read = t2.tk_read
         && String.equal t1.tk_comp t2.tk_comp
         && equal_sterm t1.tk_pat t2.tk_pat)
       a.ru_takes b.ru_takes
  && equal_cond a.ru_cond b.ru_cond
  && List.equal
       (fun p1 p2 ->
         String.equal p1.pt_comp p2.pt_comp && equal_sterm p1.pt_term p2.pt_term)
       a.ru_puts b.ru_puts

let equal_comp_item a b =
  match a, b with
  | I_state (n1, i1), I_state (n2, i2) ->
    String.equal n1 n2 && List.equal equal_sterm i1 i2
  | I_shared n1, I_shared n2 -> String.equal n1 n2
  | I_rule r1, I_rule r2 -> equal_rule r1 r2
  | (I_state _ | I_shared _ | I_rule _), _ -> false

let equal_decl a b =
  match a, b with
  | D_component c1, D_component c2 ->
    String.equal c1.cd_name c2.cd_name
    && List.equal equal_comp_item c1.cd_items c2.cd_items
  | D_instance i1, D_instance i2 ->
    String.equal i1.in_name i2.in_name
    && String.equal i1.in_comp i2.in_comp
    && i1.in_id = i2.in_id
    && List.equal
         (fun (f1, t1) (f2, t2) ->
           String.equal f1 f2 && List.equal equal_sterm t1 t2)
         i1.in_overrides i2.in_overrides
  | D_cluster c1, D_cluster c2 ->
    String.equal c1.cl_name c2.cl_name
    && List.equal String.equal c1.cl_members c2.cl_members
  | D_model m1, D_model m2 ->
    String.equal m1.md_name m2.md_name
    && Option.equal String.equal m1.md_param m2.md_param
    && List.equal
         (fun a1 a2 ->
           String.equal a1.ma_label a2.ma_label
           && List.equal equal_sterm a1.ma_args a2.ma_args)
         m1.md_actions m2.md_actions
    && List.equal
         (fun f1 f2 ->
           String.equal f1.mf_src f2.mf_src
           && String.equal f1.mf_dst f2.mf_dst
           && Option.equal String.equal f1.mf_policy f2.mf_policy)
         m1.md_flows m2.md_flows
  | D_sos s1, D_sos s2 ->
    String.equal s1.sd_name s2.sd_name
    && List.equal
         (fun u1 u2 ->
           String.equal u1.us_model u2.us_model
           && Option.equal Int.equal u1.us_index u2.us_index
           && String.equal u1.us_alias u2.us_alias)
         s1.sd_uses s2.sd_uses
    && List.equal
         (fun l1 l2 ->
           l1.lk_src = l2.lk_src && l1.lk_dst = l2.lk_dst
           && Option.equal String.equal l1.lk_policy l2.lk_policy)
         s1.sd_links s2.sd_links
  | D_check c1, D_check c2 ->
    String.equal c1.ck_kind c2.ck_kind
    && List.equal String.equal c1.ck_args c2.ck_args
    && Option.equal
         (fun (s1, a1) (s2, a2) -> String.equal s1 s2 && String.equal a1 a2)
         c1.ck_scope c2.ck_scope
  | ( ( D_component _ | D_instance _ | D_cluster _ | D_model _ | D_sos _
      | D_check _ ),
      _ ) ->
    false

let equal a b = List.equal equal_decl a b
