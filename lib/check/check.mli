(** Spec-level static analysis of APA models and functional specs.

    All passes run before (and without) any state-space exploration:

    - {b dead rules} (FSA001/FSA006/FSA007): a fixpoint over producible
      term shapes per state component — seeded from the initial state and
      closed under every rule's puts — flags rules whose take patterns
      can never match;
    - {b binding discipline} (FSA002/FSA003): variables used in put
      templates or guards but bound by no take pattern;
    - {b component usage} (FSA004/FSA005): write-only and unused state
      components;
    - {b APA races} (FSA010/FSA011): pairs of unguarded rules with
      consume/consume or consume/read conflicts on unifiable patterns on
      the same state component — the interleavings the asynchronous
      product makes order-sensitive;
    - {b abstraction soundness} (FSA020/FSA021/FSA022/FSA023): check
      declarations and homomorphism keep sets naming actions outside the
      APA's alphabet, and vacuous properties over dead actions;
    - {b manual path} (FSA030–FSA035): [Fsa_model.Lint] findings over
      every [sos] declaration, re-emitted as unified diagnostics;
    - {b structural analysis} (FSA040–FSA048, [deep] only):
      {!Fsa_struct.Structural} over the APA's net skeleton — place
      invariants certifying bounded components, the certified-infinite
      self-growth warning, potentially unbounded components, transition
      invariants, siphon/trap deadlock certificates and static
      dependence counts;
    - {b reduction prognosis} (FSA050–FSA058, [deep] only):
      {!Fsa_sym.Sym} over the elaborated APA — symmetry orbits, rejected
      candidate pairs, attested guards, interference modules and the
      predicted [--reduce] factor.  All advisory: asymmetric models are
      fine, the pass reports what a reduction could exploit;
    - {b information flow} (FSA060–FSA065, [deep] only):
      {!Fsa_flow.Flow} over the elaborated APA — confidentiality leaks
      from protected components into cross-instance channels (FSA060, a
      warning), plus advisory guard-free boundary crossings, dead attack
      surface, unguarded flow cycles, guard-killed edges and the
      flow-independence count behind [--prune-flow].

    The producible-shape fixpoint over-approximates reachability (guards
    are ignored and matched terms are never removed), so a rule it calls
    dead really is dead — which is why FSA001 is an error — while races
    and vacuity are reported as warnings.  Deep findings are advisory
    notes, except FSA041 whose unboundedness certificate is sound for
    the APA itself. *)

module Apa = Fsa_apa.Apa
module Ast = Fsa_spec.Ast

val spec :
  ?file:string -> ?deep:bool -> ?budget:int -> Ast.t -> Diagnostic.t list
(** Run every static pass over a parsed specification.  Parse-level
    semantic errors ({!Fsa_spec.Loc.Error} raised during elaboration) are
    caught and reported as FSA000 diagnostics rather than exceptions.
    [deep] (default [false]) additionally runs the structural net
    analysis (FSA040–FSA048) and the symmetry / partial-order reduction
    prognosis (FSA050–FSA058); [budget] bounds the siphon/trap
    enumeration. *)

val net_of_skeleton :
  Fsa_spec.Elaborate.skeleton -> Fsa_struct.Structural.net
(** The structural net of a located skeleton (initial contents, take and
    put signatures, guardedness) — what the deep pass and [fsa struct]
    analyse. *)

val flow_attribution :
  Fsa_spec.Elaborate.skeleton -> Fsa_flow.Flow.attribution
(** Exact flow-graph attribution from a located skeleton: per-rule
    elaborated instance and guard variable set — what lets
    {!Fsa_flow.Flow.build} evaluate guards (kill-sets) and tell
    cross-instance flows apart.  Callers without a spec fall back to
    {!Fsa_flow.Flow.heuristic_attribution}. *)

val apa : ?file:string -> Apa.t -> Diagnostic.t list
(** The structural passes (dead rules, component usage) over a
    programmatic APA.  Guards and source positions are opaque at this
    level, so race detection and guard-binding checks are skipped. *)

val keep_set :
  ?file:string -> alphabet:string list -> string list -> Diagnostic.t list
(** Validate a homomorphism keep set against the APA's action alphabet
    (FSA022 per unknown action, FSA023 when nothing at all is kept). *)

val rename_map :
  ?file:string ->
  alphabet:string list ->
  (string * string) list ->
  Diagnostic.t list
(** Validate a homomorphism rename map against the APA's action alphabet:
    FSA022 per unknown source action, FSA036 per merge group of a
    non-injective map (two or more distinct sources — including
    untouched alphabet actions, which rename to themselves — ending up
    on the same target).  Duplicate sources follow [Hom.rename]'s
    first-binding-wins semantics before the check. *)

val suggest : string -> string list -> string option
(** Nearest candidate by edit distance, for "did you mean" hints. *)
