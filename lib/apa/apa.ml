(* Asynchronous Product Automata (Definition 2 of the paper).

   An APA consists of a family of state components (sets of data terms), a
   family of elementary automata communicating via shared state components,
   and a neighbourhood relation assigning to each elementary automaton the
   state components it may read and write.

   Elementary automata are specified as rules in a guarded
   consume/read/produce style (the style of the paper's state transition
   relations, e.g. Delta_send): a rule pattern-matches elements of its
   neighbourhood components, binds variables, checks a guard and produces
   new elements.  For each interpretation (variable binding) the rule
   defines one state transition; the transition label is the corresponding
   action. *)

module Term = Fsa_term.Term
module Action = Fsa_term.Action
module Smap = Map.Make (String)

let log_src = Logs.Src.create "fsa.apa" ~doc:"APA rule matching and composition"

module Log = (val Logs.src_log log_src)

module Metrics = Fsa_obs.Metrics

let m_rules_tried = Metrics.counter "apa.rules_tried"
let m_bindings = Metrics.counter "apa.bindings_found"
let m_terms = Metrics.counter "apa.terms_allocated"

(* ------------------------------------------------------------------ *)
(* States                                                              *)
(* ------------------------------------------------------------------ *)

module State = struct
  (* A global state maps each state component name to its current set of
     data terms.  The map always contains every declared component.

     The structural hash is memoized: state-space exploration hashes every
     state once per table lookup, and recomputing the fold over all
     components dominated the sequential profile.  [-1] marks "not yet
     computed"; the cached value is deterministic, so the benign race of
     two domains filling the cache concurrently writes the same word. *)
  type t = { m : Term.Set.t Smap.t; mutable h : int }

  let of_map m = { m; h = -1 }
  let empty = of_map Smap.empty

  let get name s =
    match Smap.find_opt name s.m with Some set -> set | None -> Term.Set.empty

  let set name v s = of_map (Smap.add name v s.m)

  let add_elt name e s = set name (Term.Set.add e (get name s)) s
  let remove_elt name e s = set name (Term.Set.remove e (get name s)) s
  let mem_elt name e s = Term.Set.mem e (get name s)

  let compare a b =
    if a == b then 0 else Smap.compare Term.Set.compare a.m b.m

  (* Hash consistent with [equal]: folded over components and elements. *)
  let structural_hash m =
    Smap.fold
      (fun name set acc ->
        let h =
          Term.Set.fold (fun t acc -> acc + Term.hash t) set
            (Hashtbl.hash name)
        in
        ((acc * 31) + h) land max_int)
      m 17

  let hash s =
    if s.h >= 0 then s.h
    else begin
      let h = structural_hash s.m in
      s.h <- h;
      h
    end

  let equal a b =
    a == b
    || ((a.h < 0 || b.h < 0 || a.h = b.h) && compare a b = 0)

  let components s = List.map fst (Smap.bindings s.m)

  (* Rename component keys and rewrite the stored terms in one pass —
     the workhorse of symmetry canonicalisation ([Fsa_sym]).  The result
     is a fresh state with an unset hash cache.  [comp] must be
     injective on the keys of the state; colliding keys would silently
     drop a component, so we union defensively. *)
  let map ~comp ~term s =
    let m =
      Smap.fold
        (fun name set acc ->
          let set = Term.Set.map term set in
          let name = comp name in
          match Smap.find_opt name acc with
          | None -> Smap.add name set acc
          | Some prev -> Smap.add name (Term.Set.union prev set) acc)
        s.m Smap.empty
    in
    of_map m

  let pp ppf s =
    let pp_comp ppf (name, set) =
      Fmt.pf ppf "%s = {%a}" name
        Fmt.(list ~sep:comma Term.pp)
        (Term.Set.elements set)
    in
    Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut pp_comp) (Smap.bindings s.m)

    let to_string s = Fmt.str "%a" pp s
end

(* ------------------------------------------------------------------ *)
(* Rules (elementary automata)                                         *)
(* ------------------------------------------------------------------ *)

type take = {
  t_component : string;
  t_pattern : Term.t;
  t_consume : bool;  (* false: read without removing *)
}

type put = { p_component : string; p_template : Term.t }

type rule = {
  r_name : string;
  r_takes : take list;
  r_guard : Term.Subst.t -> bool;
  r_trivial_guard : bool;
  r_puts : put list;
  r_label : Term.Subst.t -> Action.t;
  r_default_label : bool;
}

let take ?(consume = true) component pattern =
  { t_component = component; t_pattern = pattern; t_consume = consume }

let read component pattern = take ~consume:false component pattern

let put component template = { p_component = component; p_template = template }

let rule ?guard ?label ~takes ~puts name =
  let r_guard = match guard with Some g -> g | None -> fun _ -> true in
  let r_label =
    match label with Some l -> l | None -> fun _ -> Action.make name
  in
  { r_name = name; r_takes = takes; r_guard;
    r_trivial_guard = Option.is_none guard; r_puts = puts;
    r_label = r_label; r_default_label = Option.is_none label }

let rule_name r = r.r_name

(* The neighbourhood N(t) of a rule: every state component it reads or
   writes. *)
let neighbourhood r =
  List.map (fun t -> t.t_component) r.r_takes
  @ List.map (fun p -> p.p_component) r.r_puts
  |> List.sort_uniq String.compare

(* ------------------------------------------------------------------ *)
(* APA                                                                 *)
(* ------------------------------------------------------------------ *)

type t = {
  name : string;
  components : (string * Term.Set.t) list;  (* declared, with initial sets *)
  rules : rule list;
}

type error =
  | Unknown_component of string * string  (* rule name, component *)
  | Unbound_put_variable of string * string  (* rule name, variable *)
  | Nonground_initial of string * Term.t
  | Duplicate_rule of string
  | Duplicate_component of string

let pp_error ppf = function
  | Unknown_component (r, c) ->
    Fmt.pf ppf "rule %s references undeclared state component %s" r c
  | Unbound_put_variable (r, v) ->
    Fmt.pf ppf "rule %s produces a term with unbound variable %s" r v
  | Nonground_initial (c, t) ->
    Fmt.pf ppf "initial content %a of component %s is not ground" Term.pp t c
  | Duplicate_rule r -> Fmt.pf ppf "rule %s is declared twice" r
  | Duplicate_component c -> Fmt.pf ppf "state component %s is declared twice" c

let validate t =
  let errors = ref [] in
  let err e = errors := e :: !errors in
  let declared c = List.mem_assoc c t.components in
  let rec dup_comp = function
    | [] -> ()
    | (c, _) :: rest ->
      if List.mem_assoc c rest then err (Duplicate_component c);
      dup_comp rest
  in
  dup_comp t.components;
  let rec dup_rule = function
    | [] -> ()
    | r :: rest ->
      if List.exists (fun r' -> String.equal r.r_name r'.r_name) rest then
        err (Duplicate_rule r.r_name);
      dup_rule rest
  in
  dup_rule t.rules;
  List.iter
    (fun (c, init) ->
      Term.Set.iter
        (fun e -> if not (Term.is_ground e) then err (Nonground_initial (c, e)))
        init)
    t.components;
  List.iter
    (fun r ->
      List.iter
        (fun tk ->
          if not (declared tk.t_component) then
            err (Unknown_component (r.r_name, tk.t_component)))
        r.r_takes;
      List.iter
        (fun p ->
          if not (declared p.p_component) then
            err (Unknown_component (r.r_name, p.p_component)))
        r.r_puts;
      (* Static scope check: every variable of a produced template must be
         bound by some take pattern. *)
      let bound =
        List.fold_left
          (fun acc tk -> Term.String_set.union acc (Term.vars tk.t_pattern))
          Term.String_set.empty r.r_takes
      in
      List.iter
        (fun p ->
          Term.String_set.iter
            (fun v ->
              if not (Term.String_set.mem v bound) then
                err (Unbound_put_variable (r.r_name, v)))
            (Term.vars p.p_template))
        r.r_puts)
    t.rules;
  match List.rev !errors with [] -> Ok () | es -> Error es

let make ~components ~rules name =
  let t = { name; components; rules } in
  match validate t with
  | Ok () ->
    Log.debug (fun m ->
        m "APA %s: %d state components, %d elementary automata" name
          (List.length components) (List.length rules));
    t
  | Error (e :: _) -> invalid_arg (Fmt.str "Apa.make %s: %a" name pp_error e)
  | Error [] -> assert false

let name t = t.name
let components t = t.components
let rules t = t.rules

(* The action alphabet under the default labelling (one action per rule
   name) — what spec-level [check] declarations and homomorphism keep
   sets may refer to. *)
let rule_names t = List.sort_uniq String.compare (List.map rule_name t.rules)

let consumers t c =
  List.filter
    (fun r ->
      List.exists
        (fun tk -> tk.t_consume && String.equal tk.t_component c)
        r.r_takes)
    t.rules

let readers t c =
  List.filter
    (fun r ->
      List.exists
        (fun tk -> (not tk.t_consume) && String.equal tk.t_component c)
        r.r_takes)
    t.rules

let producers t c =
  List.filter
    (fun r ->
      List.exists (fun p -> String.equal p.p_component c) r.r_puts)
    t.rules

let initial_state t =
  List.fold_left
    (fun s (c, init) -> State.set c (Term.Set.map Term.intern init) s)
    State.empty t.components

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

(* All interpretations of a rule in a state: enumerate, take by take, the
   possible bindings.  Distinct consuming takes of the same component must
   match distinct elements (set semantics: both elements are removed). *)
type binding = { subst : Term.Subst.t; consumed : (string * Term.t) list }

let match_takes state takes =
  let step acc tk =
    List.concat_map
      (fun b ->
        (* extensions of [b] by one matched element of this take *)
        let available = State.get tk.t_component state in
        Term.Set.fold
          (fun elt acc' ->
            let already_consumed =
              List.exists
                (fun (c, e) ->
                  String.equal c tk.t_component && Term.equal e elt)
                b.consumed
            in
            if tk.t_consume && already_consumed then acc'
            else
              match Term.match_ ~pattern:tk.t_pattern ~target:elt with
              | None -> acc'
              | Some s -> (
                match Term.Subst.merge b.subst s with
                | None -> acc'
                | Some subst ->
                  let consumed =
                    if tk.t_consume then (tk.t_component, elt) :: b.consumed
                    else b.consumed
                  in
                  { subst; consumed } :: acc'))
          available [])
      acc
  in
  List.fold_left step [ { subst = Term.Subst.empty; consumed = [] } ] takes

let interpretations rule state =
  match_takes state rule.r_takes |> List.filter (fun b -> rule.r_guard b.subst)

let apply_binding rule state b =
  let state =
    List.fold_left
      (fun s (c, e) -> State.remove_elt c e s)
      state b.consumed
  in
  (* Interning the produced terms makes recurring data items physically
     shared, so state comparisons during exploration hit the [==] fast
     paths of [Term.compare]. *)
  List.fold_left
    (fun s p ->
      State.add_elt p.p_component
        (Term.intern (Term.Subst.apply b.subst p.p_template))
        s)
    state rule.r_puts

(* All transitions enabled in [state]: (rule, action label, successor). *)
let step t state =
  let obs = Metrics.enabled () in
  List.concat_map
    (fun r ->
      if obs then Metrics.incr m_rules_tried;
      let bindings = interpretations r state in
      if obs then begin
        Metrics.incr ~by:(List.length bindings) m_bindings;
        Metrics.incr
          ~by:(List.length bindings * List.length r.r_puts)
          m_terms
      end;
      List.map
        (fun b -> (r, r.r_label b.subst, apply_binding r state b))
        bindings)
    t.rules

let enabled_rules t state =
  List.filter (fun r -> interpretations r state <> []) t.rules

let is_deadlocked t state = step t state = []

(* ------------------------------------------------------------------ *)
(* Composition                                                         *)
(* ------------------------------------------------------------------ *)

(* Glue APAs together by identifying equally-named state components (the
   paper's shared [net] component): initial sets are unioned, rules are
   concatenated.  Rule names must remain unique. *)
let compose ~name parts =
  let components =
    List.fold_left
      (fun acc part ->
        List.fold_left
          (fun acc (c, init) ->
            match List.assoc_opt c acc with
            | None -> (c, init) :: acc
            | Some prev -> (c, Term.Set.union prev init) :: List.remove_assoc c acc)
          acc part.components)
      [] parts
    |> List.rev
  in
  let rules = List.concat_map (fun p -> p.rules) parts in
  make ~components ~rules name

(* Prefix every component name and rule name: turns a component template
   into a distinctly-named instance before composition.  Shared components
   (e.g. [net]) are listed in [keep] and left unrenamed. *)
let prefix ?(keep = []) ~prefix:pfx t =
  let ren c = if List.mem c keep then c else pfx ^ c in
  let components = List.map (fun (c, init) -> (ren c, init)) t.components in
  let rules =
    List.map
      (fun r ->
        { r with
          r_name = pfx ^ r.r_name;
          r_takes =
            List.map (fun tk -> { tk with t_component = ren tk.t_component }) r.r_takes;
          r_puts =
            List.map (fun p -> { p with p_component = ren p.p_component }) r.r_puts })
      t.rules
  in
  { name = pfx ^ t.name; components; rules }

let with_initial component init t =
  if not (List.mem_assoc component t.components) then
    invalid_arg
      (Printf.sprintf "Apa.with_initial: unknown state component %s" component);
  { t with
    components =
      List.map
        (fun (c, old) -> if String.equal c component then (c, init) else (c, old))
        t.components }

let pp ppf t =
  let pp_comp ppf (c, init) =
    Fmt.pf ppf "%s = {%a}" c
      Fmt.(list ~sep:comma Term.pp)
      (Term.Set.elements init)
  in
  let pp_rule ppf r =
    Fmt.pf ppf "%s : N = {%a}" r.r_name
      Fmt.(list ~sep:comma string)
      (neighbourhood r)
  in
  Fmt.pf ppf "@[<v2>APA %s:@,state components:@,%a@,elementary automata:@,%a@]"
    t.name
    Fmt.(list ~sep:cut pp_comp)
    t.components
    Fmt.(list ~sep:cut pp_rule)
    t.rules
