(** Functional flows between actions (Sect. 4.1 of the paper). *)

type kind = Information | Control
type locality = Internal | External

type t = {
  src : Fsa_term.Action.t;
  dst : Fsa_term.Action.t;
  kind : kind;
  locality : locality;
  policy : string option;
      (** Policy tag for flows that exist only because of a non-safety
          policy, e.g. the position-based forwarding policy. *)
}

val make :
  ?kind:kind ->
  ?locality:locality ->
  ?policy:string ->
  Fsa_term.Action.t ->
  Fsa_term.Action.t ->
  t

val internal :
  ?kind:kind -> ?policy:string -> Fsa_term.Action.t -> Fsa_term.Action.t -> t

val external_ :
  ?kind:kind -> ?policy:string -> Fsa_term.Action.t -> Fsa_term.Action.t -> t

val src : t -> Fsa_term.Action.t
val dst : t -> Fsa_term.Action.t
val kind : t -> kind
val locality : t -> locality
val policy : t -> string option
val is_external : t -> bool
val is_policy_induced : t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool
val pp_kind : kind Fmt.t
val pp : t Fmt.t

val reindex : (Fsa_term.Agent.index -> Fsa_term.Agent.index) -> t -> t
(** Rewrite the instance indices of both endpoint actions. *)
