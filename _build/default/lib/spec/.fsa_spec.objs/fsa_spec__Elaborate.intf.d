lib/spec/elaborate.mli: Ast Fsa_apa Fsa_mc Fsa_model Fsa_term Loc
