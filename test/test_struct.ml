(* Tests for Fsa_struct: exact kernel computation, invariant-derived
   bounds, siphon/trap enumeration and deadlock verdicts on hand-built
   nets, the FSA041 unboundedness certificate, and the golden property
   behind --prune-static: the tool path derives identical requirement
   sets with and without static dependence pruning on every shipped
   example. *)

module Term = Fsa_term.Term
module Structural = Fsa_struct.Structural
module Parser = Fsa_spec.Parser
module Elaborate = Fsa_spec.Elaborate
module Analysis = Fsa_core.Analysis
module Auth = Fsa_requirements.Auth
module Metrics = Fsa_obs.Metrics

let const name = Term.app name []

let vec = Alcotest.(list (array int))
let sets = Alcotest.(list (list string))

(* ------------------------------------------------------------------ *)
(* Kernel (exact rational Gaussian elimination)                        *)
(* ------------------------------------------------------------------ *)

let test_kernel_dependent_rows () =
  (* row 3 = row 1 + row 2; kernel is spanned by (1, -1, 1) *)
  let m = [| [| 1; 1; 0 |]; [| 0; 1; 1 |]; [| 1; 2; 1 |] |] in
  Alcotest.check vec "kernel basis" [ [| 1; -1; 1 |] ] (Structural.kernel m)

let test_kernel_rational_pivot () =
  (* elimination passes through the pivot 3/2; the basis vector must
     still come out integral and minimal: 2x+3y = 0, 5z = 0 *)
  let m = [| [| 2; 3; 0 |]; [| 0; 0; 5 |]; [| 2; 3; 5 |] |] in
  Alcotest.check vec "kernel basis" [ [| 3; -2; 0 |] ] (Structural.kernel m)

let test_kernel_full_rank () =
  let m = [| [| 1; 0; 0 |]; [| 0; 2; 0 |]; [| 0; 0; 3 |] |] in
  Alcotest.check vec "trivial kernel" [] (Structural.kernel m)

let test_kernel_zero_matrix () =
  let m = [| [| 0; 0 |]; [| 0; 0 |] |] in
  Alcotest.check vec "whole space" [ [| 1; 0 |]; [| 0; 1 |] ]
    (Structural.kernel m)

(* ------------------------------------------------------------------ *)
(* Hand-built nets                                                     *)
(* ------------------------------------------------------------------ *)

let place ?(initial = []) name =
  { Structural.pl_name = name;
    pl_initial = Term.Set.of_list (List.map const initial) }

let rule_sig ?(guarded = false) name ~takes ~puts =
  { Structural.rs_name = name;
    rs_takes = List.map (fun (c, t) -> (c, const t, true)) takes;
    rs_puts = List.map (fun (c, t) -> (c, const t)) puts;
    rs_guarded = guarded }

(* A -> B transfer: tokens are conserved, so (1,1) is a P-invariant and
   both components are bounded by the initial marking. *)
let transfer_net =
  { Structural.n_places = [ place ~initial:[ "a" ] "A"; place "B" ];
    n_rules = [ rule_sig "r" ~takes:[ ("A", "a") ] ~puts:[ ("B", "a") ] ] }

let test_transfer_invariant () =
  let inc = Structural.incidence transfer_net in
  Alcotest.check vec "P-invariant" [ [| 1; 1 |] ]
    (Structural.p_invariants inc);
  Alcotest.(check (list (pair string int)))
    "both bounded by 1"
    [ ("A", 1); ("B", 1) ]
    (Structural.bounds transfer_net inc);
  Alcotest.(check (list (pair string int)))
    "nothing uncovered" []
    (Structural.potentially_unbounded transfer_net inc)

let test_transfer_siphon_deadlock () =
  (* {A} is a siphon with no trap inside: draining it kills the net *)
  let s, complete = Structural.siphons transfer_net in
  Alcotest.(check bool) "enumeration complete" true complete;
  Alcotest.check sets "minimal siphons" [ [ "A" ] ] s;
  Alcotest.(check (list string)) "no trap inside" []
    (Structural.max_trap_in transfer_net [ "A" ]);
  match Structural.deadlock transfer_net with
  | Structural.May_deadlock bad ->
    Alcotest.check sets "offending siphon" [ [ "A" ] ] bad
  | _ -> Alcotest.fail "expected May_deadlock"

(* A self-loop take A / put A: {A} is both a siphon and a trap, and it
   is initially marked, so Commoner's condition holds. *)
let cycle_net =
  { Structural.n_places = [ place ~initial:[ "a" ] "A" ];
    n_rules = [ rule_sig "r" ~takes:[ ("A", "a") ] ~puts:[ ("A", "a") ] ] }

let test_cycle_deadlock_free () =
  Alcotest.(check bool) "siphon" true (Structural.is_siphon cycle_net [ "A" ]);
  Alcotest.(check bool) "trap" true (Structural.is_trap cycle_net [ "A" ]);
  Alcotest.(check (list string)) "max trap" [ "A" ]
    (Structural.max_trap_in cycle_net [ "A" ]);
  match Structural.deadlock cycle_net with
  | Structural.Deadlock_free_skeleton -> ()
  | _ -> Alcotest.fail "expected Deadlock_free_skeleton"

let test_reads_do_not_count () =
  (* a read arc must not appear in the incidence matrix *)
  let net =
    { Structural.n_places = [ place ~initial:[ "a" ] "A"; place "B" ];
      n_rules =
        [ { Structural.rs_name = "r";
            rs_takes = [ ("A", const "a", false) ];
            rs_puts = [ ("B", const "b") ];
            rs_guarded = false } ] }
  in
  let inc = Structural.incidence net in
  Alcotest.(check int) "read row is zero" 0 inc.Structural.i_matrix.(0).(0);
  Alcotest.(check int) "put row counts" 1 inc.Structural.i_matrix.(1).(0)

let test_budget_truncation () =
  let s, complete = Structural.siphons ~budget:1 transfer_net in
  Alcotest.(check bool) "truncated" false complete;
  ignore s;
  match Structural.deadlock ~budget:1 transfer_net with
  | Structural.Unknown_budget -> ()
  | _ -> Alcotest.fail "expected Unknown_budget"

(* ------------------------------------------------------------------ *)
(* Static independence                                                 *)
(* ------------------------------------------------------------------ *)

let test_independence () =
  (* r1 feeds r2 through B; r3 is off in its own component *)
  let net =
    { Structural.n_places =
        [ place ~initial:[ "a" ] "A"; place "B"; place ~initial:[ "c" ] "C" ];
      n_rules =
        [ rule_sig "r1" ~takes:[ ("A", "a") ] ~puts:[ ("B", "b") ];
          rule_sig "r2" ~takes:[ ("B", "b") ] ~puts:[];
          rule_sig "r3" ~takes:[ ("C", "c") ] ~puts:[ ("C", "c") ] ] }
  in
  Alcotest.(check bool) "r1 flows into r2" false
    (Structural.independent net ~min:"r1" ~max:"r2");
  Alcotest.(check bool) "r2 does not flow into r1" true
    (Structural.independent net ~min:"r2" ~max:"r1");
  Alcotest.(check bool) "r3 is isolated" true
    (Structural.independent net ~min:"r1" ~max:"r3");
  Alcotest.(check bool) "a rule depends on itself" false
    (Structural.independent net ~min:"r3" ~max:"r3");
  Alcotest.(check bool) "unknown rules stay dependent" false
    (Structural.independent net ~min:"r1" ~max:"nope")

(* ------------------------------------------------------------------ *)
(* FSA041: certified infinite state space, without exploration         *)
(* ------------------------------------------------------------------ *)

let counter_spec =
  "component Counter {\n\
  \  state ctr = { z }\n\
  \  action inc: take ctr(_x) -> put ctr(s(_x))\n\
   }\n\
   instance C1 = Counter(1)\n"

let test_fsa041_certificate () =
  let module D = Fsa_check.Diagnostic in
  let ds =
    Fsa_check.Check.spec ~file:"counter.fsa" ~deep:true
      (Parser.parse_string counter_spec)
  in
  match List.find_opt (fun d -> d.D.code = "FSA041") ds with
  | None -> Alcotest.fail "expected an FSA041 certificate"
  | Some d ->
    Alcotest.(check bool) "it is a warning" true (d.D.severity = D.Warning)

let test_deep_examples_stay_info () =
  (* the shipped examples must never trip a structural warning: the CI
     gate runs check --deep --werror over them.  leaky_gateway.fsa is
     the exception by design — it exists to trip the FSA060
     confidentiality leak, which test_flow pins and CI asserts *)
  match Test_check.spec_dir () with
  | None -> ()
  | Some dir ->
    List.iter
      (fun path ->
        if Filename.basename path <> "leaky_gateway.fsa" then
          let module D = Fsa_check.Diagnostic in
          Fsa_check.Check.spec ~file:path ~deep:true (Parser.parse_file path)
          |> List.iter (fun d ->
                 if d.D.severity <> D.Info then
                   Alcotest.failf "%s: unexpected %a" path D.pp d))
      (Test_check.example_files dir)

(* ------------------------------------------------------------------ *)
(* Golden property: pruning never changes the derived requirements      *)
(* ------------------------------------------------------------------ *)

let test_prune_identical_on_examples () =
  match Test_check.spec_dir () with
  | None -> ()
  | Some dir ->
    let stakeholder = Fsa_vanet.Vehicle_apa.stakeholder in
    let analysed = ref 0 in
    List.iter
      (fun path ->
        match Elaborate.apa_of_spec (Parser.parse_file path) with
        | exception (Fsa_spec.Loc.Error _ | Invalid_argument _) ->
          () (* model-only spec, no instances *)
        | apa ->
          incr analysed;
          let plain = Analysis.tool ~stakeholder apa in
          let pruned = Analysis.tool ~prune:true ~stakeholder apa in
          Alcotest.(check bool)
            (path ^ ": requirement sets identical")
            true
            (Auth.equal_set plain.Analysis.t_requirements
               pruned.Analysis.t_requirements);
          Alcotest.(check int)
            (path ^ ": same number of requirements")
            (List.length plain.Analysis.t_requirements)
            (List.length pruned.Analysis.t_requirements))
      (Test_check.example_files dir);
    Alcotest.(check bool) "at least one spec analysed" true (!analysed > 0)

let test_prune_actually_skips () =
  match Test_check.spec_dir () with
  | None -> ()
  | Some dir ->
    let path = Filename.concat dir "four_vehicles.fsa" in
    if Sys.file_exists path then begin
      let apa = Elaborate.apa_of_spec (Parser.parse_file path) in
      Metrics.set_enabled true;
      Metrics.reset ();
      ignore
        (Analysis.tool ~prune:true
           ~stakeholder:Fsa_vanet.Vehicle_apa.stakeholder apa);
      let skipped = Metrics.counter_value Structural.pairs_pruned in
      Metrics.set_enabled false;
      Metrics.reset ();
      Alcotest.(check bool) "pairs were pruned" true (skipped > 0)
    end

(* ------------------------------------------------------------------ *)
(* Report plumbing                                                     *)
(* ------------------------------------------------------------------ *)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

let test_report_json_deterministic () =
  let render () =
    Structural.report_to_json (Structural.analyse transfer_net)
  in
  let a = render () and b = render () in
  Alcotest.(check string) "byte-identical" a b;
  Alcotest.(check bool) "mentions the siphon" true
    (contains ~affix:{|"siphons": [["A"]]|} a)

let suite =
  [ Alcotest.test_case "kernel: dependent rows" `Quick
      test_kernel_dependent_rows;
    Alcotest.test_case "kernel: rational pivot" `Quick
      test_kernel_rational_pivot;
    Alcotest.test_case "kernel: full rank" `Quick test_kernel_full_rank;
    Alcotest.test_case "kernel: zero matrix" `Quick test_kernel_zero_matrix;
    Alcotest.test_case "transfer net invariant and bounds" `Quick
      test_transfer_invariant;
    Alcotest.test_case "transfer net siphon deadlock" `Quick
      test_transfer_siphon_deadlock;
    Alcotest.test_case "cycle net deadlock free" `Quick
      test_cycle_deadlock_free;
    Alcotest.test_case "reads do not count" `Quick test_reads_do_not_count;
    Alcotest.test_case "budget truncation" `Quick test_budget_truncation;
    Alcotest.test_case "static independence" `Quick test_independence;
    Alcotest.test_case "FSA041 certificate" `Quick test_fsa041_certificate;
    Alcotest.test_case "deep pass on examples stays info" `Quick
      test_deep_examples_stay_info;
    Alcotest.test_case "pruning identical on examples" `Quick
      test_prune_identical_on_examples;
    Alcotest.test_case "pruning actually skips pairs" `Quick
      test_prune_actually_skips;
    Alcotest.test_case "report json deterministic" `Quick
      test_report_json_deterministic ]
