(* Maximum bipartite matching via Kuhn's augmenting-path algorithm.
   Used by [Fsa_order] to compute poset width (Dilworth: a minimum chain
   cover of a poset corresponds to a maximum matching in the split bipartite
   graph of its strict order relation). *)

type t = {
  pair_left : int array;  (* pair_left.(u) = matched right vertex or -1 *)
  pair_right : int array;  (* pair_right.(v) = matched left vertex or -1 *)
  size : int;
}

let maximum ~left ~right ~adj =
  if left < 0 || right < 0 then invalid_arg "Matching.maximum: negative size";
  let pair_left = Array.make left (-1) in
  let pair_right = Array.make right (-1) in
  let visited = Array.make right false in
  let rec try_kuhn u =
    List.exists
      (fun v ->
        if visited.(v) then false
        else begin
          visited.(v) <- true;
          if pair_right.(v) = -1 || try_kuhn pair_right.(v) then begin
            pair_left.(u) <- v;
            pair_right.(v) <- u;
            true
          end
          else false
        end)
      (adj u)
  in
  let size = ref 0 in
  for u = 0 to left - 1 do
    Array.fill visited 0 right false;
    if try_kuhn u then incr size
  done;
  { pair_left; pair_right; size = !size }

let size t = t.size
let pair_of_left t u = if t.pair_left.(u) >= 0 then Some t.pair_left.(u) else None
let pair_of_right t v = if t.pair_right.(v) >= 0 then Some t.pair_right.(v) else None
