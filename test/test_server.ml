(* Tests for Fsa_server: the shared executor (cache-aware analysis
   runs), the request/response protocol and the serving loop (EOF and
   shutdown drains, response ordering). *)

module Server = Fsa_server.Server
module Exec = Fsa_server.Server.Exec
module Json = Fsa_store.Json
module Store = Fsa_store.Store
module Parser = Fsa_spec.Parser

(* Known-good model shared with the store tests. *)
let spec_text = Test_store.spec_text
let spec_text_permuted = Test_store.spec_text_permuted

(* A spec whose check set contains one failing property. *)
let spec_text_failing_check =
  spec_text ^ "\ncheck absence V1_sense before V2_show\n"

(* 2^18 reachable states: enough that a millisecond budget cannot
   finish, while --max-states keeps the failure mode bounded. *)
let bomb_spec =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    "component Flip {\n\
    \  state a = { t }\n\
    \  state b = { }\n\
    \  action go: take a(_x) -> put b(_x)\n\
    \  action back: take b(_x) -> put a(_x)\n\
     }\n";
  for i = 1 to 18 do
    Buffer.add_string b
      (Printf.sprintf "instance F%d = Flip(%d) { a = { t } }\n" i i)
  done;
  Buffer.contents b

let request fields = Json.to_string (Json.Obj fields)

let source_request ?(source = spec_text) ~id ~op extra =
  request
    ([ ("id", Json.Int id); ("op", Json.Str op); ("source", Json.Str source) ]
    @ extra)

let parse_response line =
  match Json.parse line with
  | Ok v -> v
  | Error msg -> Alcotest.failf "response is not JSON (%s): %s" msg line

let is_ok resp = Json.member "ok" resp = Some (Json.Bool true)

let error_kind resp =
  Option.bind (Json.member "error" resp) (fun e ->
      Option.bind (Json.member "kind" e) Json.to_str)

let result_member k resp =
  Option.bind (Json.member "result" resp) (Json.member k)

let with_store_dir f () =
  let dir = Test_store.tmp_dir () in
  Fun.protect
    ~finally:(fun () -> Test_store.rm_rf dir)
    (fun () -> f (Store.open_ ~dir ()))

(* ------------------------------------------------------------------ *)
(* Round-trips per request type                                        *)
(* ------------------------------------------------------------------ *)

let test_roundtrips () =
  let cfg = Server.config () in
  let reply line = parse_response (Server.handle_line cfg line) in
  (* reach *)
  let r = reply (source_request ~id:1 ~op:"reach" []) in
  Alcotest.(check bool) "reach ok" true (is_ok r);
  Alcotest.(check bool) "reach states" true
    (result_member "states" r = Some (Json.Int 13));
  (* requirements *)
  let r =
    reply
      (source_request ~id:2 ~op:"requirements"
         [ ("method", Json.Str "direct") ])
  in
  Alcotest.(check bool) "requirements ok" true (is_ok r);
  (match Option.bind (result_member "requirements" r) Json.to_list with
  | Some reqs -> Alcotest.(check int) "three requirements" 3 (List.length reqs)
  | None -> Alcotest.fail "requirements missing");
  (* analyze *)
  let r = reply (source_request ~id:3 ~op:"analyze" []) in
  Alcotest.(check bool) "analyze ok" true (is_ok r);
  (match Option.bind (result_member "soses" r) Json.to_list with
  | Some [ sos ] ->
    Alcotest.(check bool) "sos name" true
      (Json.member "name" sos = Some (Json.Str "two_vehicles"))
  | _ -> Alcotest.fail "one sos expected");
  (* abstract *)
  let r =
    reply
      (source_request ~id:4 ~op:"abstract"
         [ ("keep", Json.List [ Json.Str "V1_sense"; Json.Str "V2_show" ]) ])
  in
  Alcotest.(check bool) "abstract ok" true (is_ok r);
  Alcotest.(check bool) "abstract dependence" true
    (result_member "dependence" r = Some (Json.Bool true));
  (* verify *)
  let r = reply (source_request ~id:5 ~op:"verify" []) in
  Alcotest.(check bool) "verify ok" true (is_ok r);
  Alcotest.(check bool) "verify clean" true
    (result_member "failed" r = Some (Json.Int 0));
  (* check *)
  let r = reply (source_request ~id:6 ~op:"check" []) in
  Alcotest.(check bool) "check ok" true (is_ok r)

let test_protocol_errors () =
  let cfg = Server.config () in
  let reply line = parse_response (Server.handle_line cfg line) in
  let r = reply "this is not json" in
  Alcotest.(check bool) "malformed not ok" false (is_ok r);
  Alcotest.(check (option string)) "malformed kind" (Some "parse_error")
    (error_kind r);
  let r = reply (source_request ~id:1 ~op:"frobnicate" []) in
  Alcotest.(check (option string)) "unknown op" (Some "bad_request")
    (error_kind r);
  let r = reply (request [ ("id", Json.Int 2); ("op", Json.Str "reach") ]) in
  Alcotest.(check (option string)) "missing source" (Some "bad_request")
    (error_kind r);
  let r = reply (source_request ~id:3 ~op:"reach" ~source:"component {" []) in
  Alcotest.(check (option string)) "bad spec" (Some "parse_error")
    (error_kind r);
  let r =
    reply (source_request ~id:4 ~op:"reach" [ ("max_states", Json.Int 3) ])
  in
  Alcotest.(check (option string)) "over limit" (Some "too_large")
    (error_kind r);
  (* the id is echoed even on errors *)
  Alcotest.(check bool) "id echoed" true (Json.member "id" r = Some (Json.Int 4))

let test_timeout_reply () =
  let cfg = Server.config ~max_states:400_000 () in
  let r =
    parse_response
      (Server.handle_line cfg
         (source_request ~id:9 ~op:"reach" ~source:bomb_spec
            [ ("timeout_ms", Json.Int 1) ]))
  in
  Alcotest.(check (option string)) "timeout kind" (Some "timeout")
    (error_kind r)

(* ------------------------------------------------------------------ *)
(* Executor caching                                                    *)
(* ------------------------------------------------------------------ *)

let test_exec_cache_jobs_and_reparse_independent =
  with_store_dir @@ fun store ->
  let cfg = Server.config ~store () in
  let o1 =
    Exec.run cfg ~op:Exec.Reach ~jobs:1 ~file:"a.fsa"
      (Parser.parse_string spec_text)
  in
  Alcotest.(check bool) "first run computes" false o1.Exec.oc_cached;
  (* different parse, permuted declarations, different job count and a
     different file name must all hit the same entry *)
  let o2 =
    Exec.run cfg ~op:Exec.Reach ~jobs:4 ~file:"b.fsa"
      (Parser.parse_string spec_text_permuted)
  in
  Alcotest.(check bool) "second run hits" true o2.Exec.oc_cached;
  Alcotest.(check string) "byte-identical replay" o1.Exec.oc_output
    o2.Exec.oc_output;
  Alcotest.(check int) "exit replayed" o1.Exec.oc_exit o2.Exec.oc_exit;
  (* a cache bypass still computes *)
  let o3 =
    Exec.run cfg ~op:Exec.Reach ~cache:false ~file:"a.fsa"
      (Parser.parse_string spec_text)
  in
  Alcotest.(check bool) "bypass computes" false o3.Exec.oc_cached;
  Alcotest.(check string) "bypass output agrees" o1.Exec.oc_output
    o3.Exec.oc_output

(* Pruning may not affect results, so it is excluded from the cache key:
   a cached unpruned requirements outcome must be served to a pruned
   request, and vice versa. *)
let test_exec_cache_ignores_prune =
  with_store_dir @@ fun store ->
  let cfg = Server.config ~store () in
  let spec () = Parser.parse_string spec_text in
  let plain =
    Exec.run cfg ~op:Exec.Requirements ~prune:false ~file:"a.fsa" (spec ())
  in
  Alcotest.(check bool) "unpruned run computes" false plain.Exec.oc_cached;
  let pruned =
    Exec.run cfg ~op:Exec.Requirements ~prune:true ~file:"a.fsa" (spec ())
  in
  Alcotest.(check bool) "pruned request served from cache" true
    pruned.Exec.oc_cached;
  Alcotest.(check string) "identical replay" plain.Exec.oc_output
    pruned.Exec.oc_output;
  (* other direction, against a fresh store *)
  let dir = Test_store.tmp_dir () in
  Fun.protect
    ~finally:(fun () -> Test_store.rm_rf dir)
    (fun () ->
      let cfg2 = Server.config ~store:(Store.open_ ~dir ()) () in
      let pruned2 =
        Exec.run cfg2 ~op:Exec.Requirements ~prune:true ~file:"a.fsa"
          (spec ())
      in
      Alcotest.(check bool) "pruned run computes" false pruned2.Exec.oc_cached;
      let plain2 =
        Exec.run cfg2 ~op:Exec.Requirements ~prune:false ~file:"a.fsa"
          (spec ())
      in
      Alcotest.(check bool) "unpruned request served from cache" true
        plain2.Exec.oc_cached;
      Alcotest.(check string) "identical replay" pruned2.Exec.oc_output
        plain2.Exec.oc_output;
      (* the pruned computation and the unpruned one agree byte for byte *)
      Alcotest.(check string) "pruned result equals unpruned" plain.Exec.oc_output
        pruned2.Exec.oc_output)

(* A state-space overflow reaches the caller as [Too_large] carrying the
   structural growth hint naming the runaway components. *)
let test_too_large_hint () =
  let cfg = Server.config () in
  match
    Exec.run cfg ~op:Exec.Reach ~max_states:5 ~file:"a.fsa"
      (Parser.parse_string spec_text)
  with
  | _ -> Alcotest.fail "expected Too_large"
  | exception Server.Too_large (n, hint) ->
    Alcotest.(check int) "bound carried" 5 n;
    Alcotest.(check bool) "hint names a component" true
      (String.length hint > 0)

let test_exec_caches_verify_failures =
  with_store_dir @@ fun store ->
  let cfg = Server.config ~store () in
  let spec = Parser.parse_string spec_text_failing_check in
  let o1 = Exec.run cfg ~op:Exec.Verify ~file:"f.fsa" spec in
  Alcotest.(check int) "failing checks exit 1" 1 o1.Exec.oc_exit;
  Alcotest.(check bool) "computed" false o1.Exec.oc_cached;
  let o2 = Exec.run cfg ~op:Exec.Verify ~file:"f.fsa" spec in
  Alcotest.(check bool) "replayed" true o2.Exec.oc_cached;
  Alcotest.(check int) "exit code replayed" 1 o2.Exec.oc_exit;
  Alcotest.(check string) "report replayed" o1.Exec.oc_output o2.Exec.oc_output

let test_exec_usage_errors () =
  let cfg = Server.config () in
  let spec = Parser.parse_string spec_text in
  (try
     ignore (Exec.run cfg ~op:Exec.Analyze ~sos:"nope" ~file:"a.fsa" spec);
     Alcotest.fail "unknown sos must raise"
   with Server.Usage_error _ -> ());
  try
    ignore (Exec.run cfg ~op:Exec.Abstract ~file:"a.fsa" spec);
    Alcotest.fail "missing keep set must raise"
  with Server.Usage_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Sustained mixed traffic                                             *)
(* ------------------------------------------------------------------ *)

let test_hundred_mixed_requests =
  with_store_dir @@ fun store ->
  let cfg = Server.config ~store () in
  let ops = [| "reach"; "requirements"; "analyze"; "verify"; "check" |] in
  let errors = ref 0 in
  for i = 0 to 99 do
    let line =
      if i = 50 then "{not json"
      else if i = 75 then
        source_request ~id:i ~op:"reach" [ ("max_states", Json.Int 2) ]
      else source_request ~id:i ~op:ops.(i mod Array.length ops) []
    in
    let resp = parse_response (Server.handle_line cfg line) in
    if not (is_ok resp) then incr errors
  done;
  Alcotest.(check int) "exactly the two poisoned requests fail" 2 !errors

(* ------------------------------------------------------------------ *)
(* Serving loop                                                        *)
(* ------------------------------------------------------------------ *)

let read_lines path =
  In_channel.with_open_bin path (fun ic ->
      let rec go acc =
        match In_channel.input_line ic with
        | Some l -> go (l :: acc)
        | None -> List.rev acc
      in
      go [])

let response_file () =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "fsa_server_test_%d_%d.out" (Unix.getpid ())
       (Test_store.tmp_counter_next ()))

let test_serve_channels_eof_drain () =
  let n = 6 in
  let rd, wr = Unix.pipe () in
  let requests =
    String.concat ""
      (List.init n (fun i ->
           source_request ~id:i ~op:"reach" [] ^ "\n"))
  in
  (* the whole stream fits in the pipe buffer, so writing before serving
     cannot block *)
  let len = String.length requests in
  assert (Unix.write_substring wr requests 0 len = len);
  Unix.close wr;
  let out = response_file () in
  let oc = open_out out in
  let cfg = Server.config ~workers:2 () in
  Server.serve_channels cfg ~fd_in:rd oc;
  close_out oc;
  Unix.close rd;
  let lines = read_lines out in
  Sys.remove out;
  Alcotest.(check int) "one response per request" n (List.length lines);
  (* responses come back in request order even with two workers *)
  List.iteri
    (fun i line ->
      let resp = parse_response line in
      Alcotest.(check bool)
        (Printf.sprintf "response %d in order" i)
        true
        (Json.member "id" resp = Some (Json.Int i) && is_ok resp))
    lines

let test_serve_channels_shutdown_drain () =
  let n = 3 in
  let rd, wr = Unix.pipe () in
  let requests =
    String.concat ""
      (List.init n (fun i -> source_request ~id:i ~op:"reach" [] ^ "\n"))
  in
  let len = String.length requests in
  assert (Unix.write_substring wr requests 0 len = len);
  (* the write end stays open: only request_shutdown can end the loop *)
  let stopper =
    Domain.spawn (fun () ->
        Unix.sleepf 0.4;
        Server.request_shutdown ())
  in
  let out = response_file () in
  let oc = open_out out in
  let cfg = Server.config ~workers:2 () in
  Server.serve_channels cfg ~fd_in:rd oc;
  close_out oc;
  Domain.join stopper;
  Unix.close wr;
  Unix.close rd;
  let lines = read_lines out in
  Sys.remove out;
  Alcotest.(check int) "accepted requests drained before exit" n
    (List.length lines);
  List.iter
    (fun line ->
      Alcotest.(check bool) "drained response ok" true
        (is_ok (parse_response line)))
    lines

(* ------------------------------------------------------------------ *)
(* Tracing, introspection and the flight recorder                      *)
(* ------------------------------------------------------------------ *)

module Metrics = Fsa_obs.Metrics
module Span = Fsa_obs.Span
module Recorder = Fsa_obs.Recorder

(* Observability on, from (and back to) a clean slate: these tests read
   process-global span and recorder state. *)
let with_tracing f () =
  Metrics.reset ();
  Span.reset ();
  Recorder.reset ();
  Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled false;
      Metrics.reset ();
      Span.reset ();
      Recorder.reset ())
    f

let trace_id_of resp = Option.bind (Json.member "trace_id" resp) Json.to_str

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    i + nl <= hl && (String.equal (String.sub haystack i nl) needle || go (i + 1))
  in
  go 0

let test_trace_echo () =
  let cfg = Server.config () in
  let reply line = parse_response (Server.handle_line cfg line) in
  let r =
    reply
      (source_request ~id:1 ~op:"reach" [ ("trace_id", Json.Str "my-trace") ])
  in
  Alcotest.(check (option string)) "explicit trace echoed" (Some "my-trace")
    (trace_id_of r);
  let r = reply (source_request ~id:2 ~op:"reach" []) in
  (match trace_id_of r with
  | Some t ->
    Alcotest.(check bool) "generated trace id non-empty" true
      (String.length t > 0)
  | None -> Alcotest.fail "trace_id missing from response");
  (* error responses echo the trace id too *)
  let r =
    reply
      (request
         [ ("id", Json.Int 3); ("op", Json.Str "reach");
           ("trace_id", Json.Str "err-trace") ])
  in
  Alcotest.(check bool) "error response not ok" false (is_ok r);
  Alcotest.(check (option string)) "error echoes trace" (Some "err-trace")
    (trace_id_of r)

let test_timings_in_result () =
  let cfg = Server.config () in
  let r =
    parse_response
      (Server.handle_line cfg (source_request ~id:1 ~op:"requirements" []))
  in
  Alcotest.(check bool) "requirements ok" true (is_ok r);
  let timings = result_member "timings" r in
  Alcotest.(check bool) "timings present" true (timings <> None);
  List.iter
    (fun phase ->
      Alcotest.(check bool) (phase ^ " present") true
        (Option.bind timings (Json.member phase) <> None))
    [ "explore_ms"; "min_max_ms"; "matrix_ms"; "derive_ms" ];
  match Option.bind (Option.bind timings (Json.member "pairs")) Json.to_list with
  | Some (pair :: _) ->
    Alcotest.(check bool) "pair names min and max" true
      (Json.member "min" pair <> None && Json.member "max" pair <> None)
  | _ -> Alcotest.fail "per-pair timings missing"

let test_stats_op =
  with_tracing @@ fun () ->
  let cfg = Server.config () in
  (* serve something first so the latency histogram has an observation *)
  ignore (Server.handle_line cfg (source_request ~id:1 ~op:"reach" []));
  let r =
    parse_response
      (Server.handle_line cfg
         (request [ ("id", Json.Int 2); ("op", Json.Str "stats") ]))
  in
  Alcotest.(check bool) "stats ok" true (is_ok r);
  let latency = result_member "latency_ms" r in
  List.iter
    (fun q ->
      Alcotest.(check bool) (q ^ " present") true
        (Option.bind latency (Json.member q) <> None))
    [ "p50"; "p90"; "p99" ];
  (match Option.bind (Option.bind latency (Json.member "count")) Json.to_int with
  | Some n -> Alcotest.(check bool) "latency counted" true (n >= 1)
  | None -> Alcotest.fail "latency count missing");
  Alcotest.(check bool) "queue idle" true
    (result_member "queue_depth" r = Some (Json.Int 0));
  (* worker slots reflect the last serving loop (none has run inside
     this test), so only the member's shape is asserted *)
  (match Option.bind (result_member "workers" r) Json.to_list with
  | Some _ -> ()
  | None -> Alcotest.fail "workers missing");
  (match Option.bind (result_member "recorder" r) (Json.member "capacity") with
  | Some _ -> ()
  | None -> Alcotest.fail "recorder state missing");
  match Option.bind (result_member "prometheus" r) Json.to_str with
  | Some text ->
    Alcotest.(check bool) "prometheus exposes the latency histogram" true
      (contains text "server_latency_ms_bucket{le=")
  | None -> Alcotest.fail "prometheus payload missing"

let test_flight_dump_on_timeout =
  with_tracing @@ fun () ->
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "fsa_flight_%d_%d" (Unix.getpid ())
         (Test_store.tmp_counter_next ()))
  in
  Fun.protect ~finally:(fun () -> Test_store.rm_rf dir) @@ fun () ->
  let cfg = Server.config ~max_states:400_000 ~flight_dir:dir () in
  let r =
    parse_response
      (Server.handle_line cfg
         (source_request ~id:7 ~op:"reach" ~source:bomb_spec
            [ ("timeout_ms", Json.Int 1); ("trace_id", Json.Str "boom-1") ]))
  in
  Alcotest.(check (option string)) "timeout kind" (Some "timeout")
    (error_kind r);
  let path = Filename.concat dir "boom-1.json" in
  Alcotest.(check bool) "flight dump written" true (Sys.file_exists path);
  let dump =
    parse_response (In_channel.with_open_bin path In_channel.input_all)
  in
  Alcotest.(check (option string)) "dump names the trace" (Some "boom-1")
    (Option.bind (Json.member "trace_id" dump) Json.to_str);
  let events =
    Option.value ~default:[]
      (Option.bind (Json.member "events" dump) Json.to_list)
  in
  Alcotest.(check bool) "dump holds events" true (events <> []);
  let kinds =
    List.filter_map
      (fun e -> Option.bind (Json.member "kind" e) Json.to_str)
      events
  in
  Alcotest.(check bool) "phase events captured" true
    (List.mem "phase_start" kinds);
  Alcotest.(check bool) "the failure itself captured" true
    (List.mem "error" kinds);
  (* a successful request must not dump *)
  let r =
    parse_response
      (Server.handle_line cfg
         (source_request ~id:8 ~op:"reach"
            [ ("trace_id", Json.Str "fine-1") ]))
  in
  Alcotest.(check bool) "clean request ok" true (is_ok r);
  Alcotest.(check bool) "no dump for a clean request" false
    (Sys.file_exists (Filename.concat dir "fine-1.json"))

(* Concurrent requests under distinct trace ids: each trace's span tree
   must be self-contained — one server.request root, every other span
   parented inside the same trace — even with several worker domains
   interleaving. *)
let test_concurrent_trace_trees =
  with_tracing @@ fun () ->
  let n = 6 in
  let rd, wr = Unix.pipe () in
  let requests =
    String.concat ""
      (List.init n (fun i ->
           source_request ~id:i ~op:"reach"
             [ ("trace_id", Json.Str (Printf.sprintf "t-%d" i)) ]
           ^ "\n"))
  in
  let len = String.length requests in
  assert (Unix.write_substring wr requests 0 len = len);
  Unix.close wr;
  let out = response_file () in
  let oc = open_out out in
  let cfg = Server.config ~workers:3 () in
  Server.serve_channels cfg ~fd_in:rd oc;
  close_out oc;
  Unix.close rd;
  let lines = read_lines out in
  Sys.remove out;
  Alcotest.(check int) "one response per request" n (List.length lines);
  List.iteri
    (fun i line ->
      Alcotest.(check (option string))
        (Printf.sprintf "trace %d echoed" i)
        (Some (Printf.sprintf "t-%d" i))
        (trace_id_of (parse_response line)))
    lines;
  for i = 0 to n - 1 do
    let trace = Printf.sprintf "t-%d" i in
    let evs = Span.events_for_trace trace in
    (match List.filter (fun e -> e.Span.ev_parent = 0) evs with
    | [ root ] ->
      Alcotest.(check string)
        (trace ^ " rooted at the request span")
        "server.request" root.Span.ev_name
    | roots ->
      Alcotest.failf "%s has %d root spans, wanted 1" trace
        (List.length roots));
    let ids = List.map (fun e -> e.Span.ev_id) evs in
    List.iter
      (fun e ->
        if e.Span.ev_parent <> 0 then
          Alcotest.(check bool)
            (Printf.sprintf "%s span %d parented in-trace" trace e.Span.ev_id)
            true
            (List.mem e.Span.ev_parent ids))
      evs
  done

let suite =
  [ Alcotest.test_case "request round-trips" `Quick test_roundtrips;
    Alcotest.test_case "protocol errors" `Quick test_protocol_errors;
    Alcotest.test_case "timeout reply" `Quick test_timeout_reply;
    Alcotest.test_case "exec cache ignores jobs and reparse" `Quick
      test_exec_cache_jobs_and_reparse_independent;
    Alcotest.test_case "exec cache ignores prune" `Quick
      test_exec_cache_ignores_prune;
    Alcotest.test_case "too large carries growth hint" `Quick
      test_too_large_hint;
    Alcotest.test_case "exec caches verify failures" `Quick
      test_exec_caches_verify_failures;
    Alcotest.test_case "exec usage errors" `Quick test_exec_usage_errors;
    Alcotest.test_case "hundred mixed requests" `Quick
      test_hundred_mixed_requests;
    Alcotest.test_case "serve drains on eof" `Quick
      test_serve_channels_eof_drain;
    Alcotest.test_case "serve drains on shutdown" `Quick
      test_serve_channels_shutdown_drain;
    Alcotest.test_case "trace id echoed" `Quick test_trace_echo;
    Alcotest.test_case "phase timings in results" `Quick
      test_timings_in_result;
    Alcotest.test_case "stats op" `Quick test_stats_op;
    Alcotest.test_case "flight dump on timeout" `Quick
      test_flight_dump_on_timeout;
    Alcotest.test_case "concurrent trace trees" `Quick
      test_concurrent_trace_trees ]
