(* Requirement reports: stable IDs, provenance, traceability, coverage
   and verification tagging over a derived requirement set.

   Everything here is deterministic by construction: items are ordered
   by the canonical requirement order, every list in the output is
   sorted, and no wall-clock reading enters the report — two runs over
   the same model emit byte-identical JSON and Markdown.  The
   run-dependent blocks (settings, pair coverage, graph shape, per-item
   automata) are segregated so [~body_only:true] emission is invariant
   across engine and reduction choices. *)

module Action = Fsa_term.Action
module Agent = Fsa_term.Agent
module Auth = Fsa_requirements.Auth
module Classify = Fsa_requirements.Classify
module Prioritise = Fsa_requirements.Prioritise
module Sos = Fsa_model.Sos
module Component = Fsa_model.Component
module Analysis = Fsa_core.Analysis
module Lts = Fsa_lts.Lts
module Hom = Fsa_hom.Hom
module Elaborate = Fsa_spec.Elaborate
module Json = Fsa_store.Json
module Store = Fsa_store.Store

let schema = "fsa-report/1"

(* ------------------------------------------------------------------ *)
(* Verification methods                                                *)
(* ------------------------------------------------------------------ *)

type verification = Test | Analysis | Inspection | Demonstration

let verification_to_string = function
  | Test -> "test"
  | Analysis -> "analysis"
  | Inspection -> "inspection"
  | Demonstration -> "demonstration"

let pp_verification ppf v = Fmt.string ppf (verification_to_string v)

(* ------------------------------------------------------------------ *)
(* Provenance                                                          *)
(* ------------------------------------------------------------------ *)

type origin = {
  og_rule : string;
  og_instance : string option;
  og_component : string option;
  og_action : string option;
}

let origins_of_skeleton (sk : Elaborate.skeleton) =
  List.map
    (fun (lr : Elaborate.located_rule) ->
      let prefix = lr.Elaborate.lr_instance ^ "_" in
      let plen = String.length prefix in
      let name = lr.Elaborate.lr_name in
      let use_case =
        if
          String.length name > plen
          && String.equal (String.sub name 0 plen) prefix
        then String.sub name plen (String.length name - plen)
        else name
      in
      { og_rule = name;
        og_instance = Some lr.Elaborate.lr_instance;
        og_component = Some lr.Elaborate.lr_component;
        og_action = Some use_case })
    sk.Elaborate.sk_rules

let origins_of_rules names =
  List.map
    (fun name ->
      match String.index_opt name '_' with
      | Some i when i > 0 && i < String.length name - 1 ->
        { og_rule = name;
          og_instance = Some (String.sub name 0 i);
          og_component = None;
          og_action = Some (String.sub name (i + 1) (String.length name - i - 1))
        }
      | _ ->
        { og_rule = name;
          og_instance = None;
          og_component = None;
          og_action = None })
    names

type endpoint = {
  ep_action : string;
  ep_instance : string option;
  ep_component : string option;
  ep_use_case : string option;
}

type automaton = { am_states : int; am_transitions : int }

type item = {
  it_id : string;
  it_digest : string;
  it_requirement : Auth.t;
  it_class : Classify.class_;
  it_score : int;
  it_rank : int;
  it_verification : verification;
  it_cause : endpoint;
  it_effect : endpoint;
  it_automaton : automaton option;
}

type pair_coverage = {
  pc_total : int;
  pc_tested : int;
  pc_pruned : int;
  pc_pruned_flow : int;
  pc_dependent : int;
  pc_independent : int;
}

type coverage = {
  cv_actions_total : int;
  cv_actions_covered : int;
  cv_actions_uncovered : string list;
  cv_pairs : pair_coverage;
}

type settings = {
  sg_path : string;
  sg_method : string;
  sg_engine : string;
  sg_reduce : string;
  sg_prune : string;
  sg_max_states : int;
}

type t = {
  r_digest : string;
  r_settings : settings;
  r_items : item list;
  r_actions : string list;
  r_instances : string list;
  r_by_action : (string * string list) list;
  r_by_instance : (string * string list) list;
  r_coverage : coverage;
  r_graph : (int * int) option;
}

(* ------------------------------------------------------------------ *)
(* Shared building blocks                                              *)
(* ------------------------------------------------------------------ *)

(* Identifier digests are content addresses of the canonical,
   location-free requirement rendering — the same requirement keeps the
   same digest across re-derivation, spec reformatting and declaration
   permutation, for the same reason Elaborate.digest_of_spec is stable
   there. *)
let item_digest req = String.sub (Store.digest_hex (Auth.to_string req)) 0 12
let item_id i = Printf.sprintf "SR-%04d" (i + 1)

let classify_verification cls cause effect =
  match cls with
  | Classify.Policy_induced _ -> Analysis
  | Classify.Safety_critical -> (
    match (cause.ep_instance, effect.ep_instance) with
    | Some a, Some b -> if String.equal a b then Demonstration else Test
    | _ -> Inspection)

(* Priority ordering: categorisation first (class weight dominates, as
   in Prioritise.rank), then the risk score, then the canonical
   requirement order as a deterministic tie-break. *)
let rank_items items =
  let weight cls = Prioritise.default_weights.Prioritise.class_weight cls in
  let order =
    List.sort
      (fun (a : item) b ->
        match compare (weight b.it_class) (weight a.it_class) with
        | 0 -> (
          match compare b.it_score a.it_score with
          | 0 -> Auth.compare a.it_requirement b.it_requirement
          | c -> c)
        | c -> c)
      items
  in
  List.map
    (fun (it : item) ->
      let rank =
        match
          List.find_index
            (fun (o : item) -> Auth.equal o.it_requirement it.it_requirement)
            order
        with
        | Some i -> i + 1
        | None -> 0
      in
      { it with it_rank = rank })
    items

let matrix ~universe ~instances items =
  let ids_where pred =
    List.filter_map
      (fun (it : item) -> if pred it then Some it.it_id else None)
      items
  in
  let by_action =
    List.map
      (fun a ->
        ( a,
          ids_where (fun it ->
              String.equal it.it_cause.ep_action a
              || String.equal it.it_effect.ep_action a) ))
      universe
  in
  let by_instance =
    List.map
      (fun i ->
        ( i,
          ids_where (fun it ->
              it.it_cause.ep_instance = Some i
              || it.it_effect.ep_instance = Some i) ))
      instances
  in
  (by_action, by_instance)

let action_coverage ~universe items pairs =
  let covered =
    List.sort_uniq String.compare
      (List.concat_map
         (fun (it : item) -> [ it.it_cause.ep_action; it.it_effect.ep_action ])
         items)
  in
  let uncovered =
    List.filter (fun a -> not (List.mem a covered)) universe
  in
  { cv_actions_total = List.length universe;
    cv_actions_covered = List.length universe - List.length uncovered;
    cv_actions_uncovered = uncovered;
    cv_pairs = pairs }

(* ------------------------------------------------------------------ *)
(* Tool path                                                           *)
(* ------------------------------------------------------------------ *)

(* Map a tool-path endpoint onto a declared functional model through
   the instance/label correspondence of Analysis.crosscheck: prefer
   the sos component named like the elaborated instance, fall back to
   a label that is unique across the whole sos. *)
let map_endpoint sos ep =
  match ep.ep_use_case with
  | None -> None
  | Some label -> (
    let in_component =
      match ep.ep_instance with
      | None -> None
      | Some inst -> (
        match
          List.find_opt
            (fun c -> String.equal (Component.name c) inst)
            (Sos.components sos)
        with
        | None -> None
        | Some c ->
          List.find_opt
            (fun a -> String.equal (Action.label a) label)
            (Component.actions c))
    in
    match in_component with
    | Some _ as r -> r
    | None -> (
      match
        List.filter
          (fun a -> String.equal (Action.label a) label)
          (Sos.all_actions sos)
      with
      | [ a ] -> Some a
      | _ -> None))

(* Classification and score through the first declared functional model
   both endpoints map into.  Requirements that map nowhere stay
   Safety_critical: the APA model carries no policy annotations, so the
   Sect. 4.4 criterion (does the dependence survive the removal of
   policy-induced flows?) degenerates — there is nothing to remove. *)
let assess ~soses req cause effect =
  let rec go = function
    | [] -> (Classify.Safety_critical, 0)
    | sos :: rest -> (
      match (map_endpoint sos cause, map_endpoint sos effect) with
      | Some c, Some e ->
        let mapped =
          Auth.make ~cause:c ~effect:e ~stakeholder:(Auth.stakeholder req)
        in
        let s = Prioritise.score sos mapped in
        (s.Prioritise.s_class, s.Prioritise.s_score)
      | _ -> go rest)
  in
  go soses

let endpoint_of_origin origins a =
  let name = Action.to_string a in
  match
    List.find_opt (fun o -> String.equal o.og_rule (Action.label a)) origins
  with
  | Some o ->
    { ep_action = name;
      ep_instance = o.og_instance;
      ep_component = o.og_component;
      ep_use_case = o.og_action }
  | None ->
    { ep_action = name;
      ep_instance = None;
      ep_component = None;
      ep_use_case = None }

let of_tool ?origins ?(soses = []) ?alphabet ~digest ~settings
    (tr : Analysis.tool_report) =
  let universe =
    List.sort_uniq String.compare
      (match alphabet with
      | Some names -> names
      | None ->
        List.map Action.to_string
          (Action.Set.elements (Lts.alphabet tr.Analysis.t_lts)))
  in
  let origins =
    match origins with Some os -> os | None -> origins_of_rules universe
  in
  let reqs = Auth.normalise tr.Analysis.t_requirements in
  (* Per-item minimal automata come from a shared projection engine.
     Reuse the one the analysis itself built when it ran the shared
     pass (its alphabet covers every surviving pair, hence every
     requirement); otherwise pay one build over the union alphabet of
     the requirement endpoints — one graph walk either way, never one
     per requirement. *)
  let engine =
    if reqs = [] then None
    else
      match tr.Analysis.t_engine with
      | Some _ as e -> e
      | None ->
        let alpha =
          List.fold_left
            (fun s r ->
              Action.Set.add (Auth.cause r)
                (Action.Set.add (Auth.effect r) s))
            Action.Set.empty reqs
        in
        Some
          (Hom.Shared.build ~alphabet:alpha ~minima:[] ~maxima:[]
             tr.Analysis.t_lts)
  in
  let items =
    List.mapi
      (fun i req ->
        let cause = endpoint_of_origin origins (Auth.cause req) in
        let effect = endpoint_of_origin origins (Auth.effect req) in
        let cls, score = assess ~soses req cause effect in
        let automaton =
          Option.map
            (fun eng ->
              let dfa =
                Hom.Shared.minimal_automaton eng ~min_action:(Auth.cause req)
                  ~max_action:(Auth.effect req)
              in
              { am_states = Hom.A.Dfa.nb_states dfa;
                am_transitions = List.length (Hom.A.Dfa.transitions dfa) })
            engine
        in
        { it_id = item_id i;
          it_digest = item_digest req;
          it_requirement = req;
          it_class = cls;
          it_score = score;
          it_rank = 0;
          it_verification = classify_verification cls cause effect;
          it_cause = cause;
          it_effect = effect;
          it_automaton = automaton })
      reqs
  in
  let items = rank_items items in
  let instances =
    List.sort_uniq String.compare
      (List.filter_map (fun o -> o.og_instance)
         (List.filter (fun o -> List.mem o.og_rule universe) origins)
      @ List.concat_map
          (fun (it : item) ->
            Option.to_list it.it_cause.ep_instance
            @ Option.to_list it.it_effect.ep_instance)
          items)
  in
  let by_action, by_instance = matrix ~universe ~instances items in
  let pairs =
    match tr.Analysis.t_timings.Analysis.ph_pairs with
    | [] ->
      (* no per-pair rows (degenerate run): count off the matrix *)
      let flat = Analysis.matrix_pairs tr in
      let total = List.length flat in
      let dependent =
        List.length (List.filter (fun (_, _, d) -> d) flat)
      in
      { pc_total = total;
        pc_tested = total;
        pc_pruned = 0;
        pc_pruned_flow = 0;
        pc_dependent = dependent;
        pc_independent = total - dependent }
    | rows ->
      let total = List.length rows in
      let pruned =
        List.length
          (List.filter (fun p -> p.Analysis.pt_pruned) rows)
      in
      let pruned_flow =
        List.length
          (List.filter
             (fun p ->
               match p.Analysis.pt_pruned_by with
               | Some by -> String.equal by "static-flow"
               | None -> false)
             rows)
      in
      let dependent =
        List.length
          (List.filter (fun (_, _, d) -> d) (Analysis.matrix_pairs tr))
      in
      { pc_total = total;
        pc_tested = total - pruned;
        pc_pruned = pruned;
        pc_pruned_flow = pruned_flow;
        pc_dependent = dependent;
        pc_independent = total - dependent }
  in
  { r_digest = digest;
    r_settings = settings;
    r_items = items;
    r_actions = universe;
    r_instances = instances;
    r_by_action = by_action;
    r_by_instance = by_instance;
    r_coverage = action_coverage ~universe items pairs;
    r_graph =
      Some
        ( tr.Analysis.t_stats.Lts.nb_states,
          tr.Analysis.t_stats.Lts.nb_transitions ) }

(* ------------------------------------------------------------------ *)
(* Manual path                                                         *)
(* ------------------------------------------------------------------ *)

let of_manual ~digest sos (mr : Analysis.manual_report) =
  let comps = Sos.components sos in
  let endpoint a =
    let owner = Sos.owner_of comps a in
    { ep_action = Action.to_string a;
      ep_instance = Option.map Component.name owner;
      ep_component = Option.map Component.name owner;
      ep_use_case = Some (Action.label a) }
  in
  let reqs = Auth.normalise mr.Analysis.m_requirements in
  let items =
    List.mapi
      (fun i req ->
        let cause = endpoint (Auth.cause req) in
        let effect = endpoint (Auth.effect req) in
        let cls =
          match
            List.find_opt
              (fun (r, _) -> Auth.equal r req)
              mr.Analysis.m_classified
          with
          | Some (_, c) -> c
          | None -> Classify.classify sos req
        in
        let score = (Prioritise.score sos req).Prioritise.s_score in
        { it_id = item_id i;
          it_digest = item_digest req;
          it_requirement = req;
          it_class = cls;
          it_score = score;
          it_rank = 0;
          it_verification = classify_verification cls cause effect;
          it_cause = cause;
          it_effect = effect;
          it_automaton = None })
      reqs
  in
  let items = rank_items items in
  let universe =
    List.sort_uniq String.compare
      (List.map Action.to_string (Sos.all_actions sos))
  in
  let instances =
    List.sort_uniq String.compare (List.map Component.name comps)
  in
  let by_action, by_instance = matrix ~universe ~instances items in
  (* the manual path enumerates χ directly — every candidate pair is a
     dependent pair, so the pair coverage is degenerate by design *)
  let chi = List.length mr.Analysis.m_chi in
  let pairs =
    { pc_total = chi;
      pc_tested = chi;
      pc_pruned = 0;
      pc_pruned_flow = 0;
      pc_dependent = chi;
      pc_independent = 0 }
  in
  { r_digest = digest;
    r_settings =
      { sg_path = "manual";
        sg_method = "manual";
        sg_engine = "manual";
        sg_reduce = "none";
        sg_prune = "none";
        sg_max_states = 0 };
    r_items = items;
    r_actions = universe;
    r_instances = instances;
    r_by_action = by_action;
    r_by_instance = by_instance;
    r_coverage = action_coverage ~universe items pairs;
    r_graph = None }

(* ------------------------------------------------------------------ *)
(* JSON emission                                                       *)
(* ------------------------------------------------------------------ *)

let class_kind = function
  | Classify.Safety_critical -> "safety-critical"
  | Classify.Policy_induced _ -> "policy-induced"

let class_policies = function
  | Classify.Safety_critical -> []
  | Classify.Policy_induced ps -> List.sort_uniq String.compare ps

let opt_str = function None -> Json.Null | Some s -> Json.Str s

let endpoint_json ep =
  Json.Obj
    [ ("action", Json.Str ep.ep_action);
      ("instance", opt_str ep.ep_instance);
      ("component", opt_str ep.ep_component);
      ("use_case", opt_str ep.ep_use_case) ]

let item_json ~body_only (it : item) =
  let automaton =
    match (body_only, it.it_automaton) with
    | true, _ | _, None -> []
    | false, Some a ->
      [ ( "automaton",
          Json.Obj
            [ ("states", Json.Int a.am_states);
              ("transitions", Json.Int a.am_transitions) ] ) ]
  in
  Json.Obj
    [ ("id", Json.Str it.it_id);
      ("digest", Json.Str it.it_digest);
      ("cause", Json.Str (Action.to_string (Auth.cause it.it_requirement)));
      ("effect", Json.Str (Action.to_string (Auth.effect it.it_requirement)));
      ( "stakeholder",
        Json.Str (Agent.to_string (Auth.stakeholder it.it_requirement)) );
      ("class", Json.Str (class_kind it.it_class));
      ( "policies",
        Json.List
          (List.map (fun p -> Json.Str p) (class_policies it.it_class)) );
      ("score", Json.Int it.it_score);
      ("rank", Json.Int it.it_rank);
      ( "verification",
        Json.Str (verification_to_string it.it_verification) );
      ( "provenance",
        Json.Obj
          ([ ("cause", endpoint_json it.it_cause);
             ("effect", endpoint_json it.it_effect) ]
          @ automaton) ) ]

let ids_json ids = Json.List (List.map (fun i -> Json.Str i) ids)

let to_json ?(body_only = false) r =
  let settings =
    if body_only then []
    else
      [ ( "settings",
          Json.Obj
            [ ("path", Json.Str r.r_settings.sg_path);
              ("method", Json.Str r.r_settings.sg_method);
              ("engine", Json.Str r.r_settings.sg_engine);
              ("reduce", Json.Str r.r_settings.sg_reduce);
              ("prune", Json.Str r.r_settings.sg_prune);
              ("max_states", Json.Int r.r_settings.sg_max_states) ] ) ]
  in
  let cov = r.r_coverage in
  let pair_cov =
    if body_only then []
    else
      [ ( "pairs",
          Json.Obj
            [ ("total", Json.Int cov.cv_pairs.pc_total);
              ("tested", Json.Int cov.cv_pairs.pc_tested);
              ("pruned", Json.Int cov.cv_pairs.pc_pruned);
              ("pruned_flow", Json.Int cov.cv_pairs.pc_pruned_flow);
              ("dependent", Json.Int cov.cv_pairs.pc_dependent);
              ("independent", Json.Int cov.cv_pairs.pc_independent) ] ) ]
  in
  let graph =
    match (body_only, r.r_graph) with
    | true, _ | _, None -> []
    | false, Some (states, transitions) ->
      [ ( "graph",
          Json.Obj
            [ ("states", Json.Int states);
              ("transitions", Json.Int transitions) ] ) ]
  in
  Json.Obj
    ([ ("schema", Json.Str schema); ("digest", Json.Str r.r_digest) ]
    @ settings
    @ [ ( "requirements",
          Json.List (List.map (item_json ~body_only) r.r_items) );
        ( "traceability",
          Json.Obj
            [ ( "actions",
                Json.Obj
                  (List.map (fun (a, ids) -> (a, ids_json ids)) r.r_by_action)
              );
              ( "instances",
                Json.Obj
                  (List.map
                     (fun (i, ids) -> (i, ids_json ids))
                     r.r_by_instance) );
              ( "requirements",
                Json.Obj
                  (List.map
                     (fun (it : item) ->
                       ( it.it_id,
                         Json.Obj
                           [ ( "actions",
                               ids_json
                                 (List.sort_uniq String.compare
                                    [ it.it_cause.ep_action;
                                      it.it_effect.ep_action ]) );
                             ( "instances",
                               ids_json
                                 (List.sort_uniq String.compare
                                    (Option.to_list it.it_cause.ep_instance
                                    @ Option.to_list it.it_effect.ep_instance))
                             ) ] ))
                     r.r_items) ) ] );
        ( "coverage",
          Json.Obj
            ([ ( "actions",
                 Json.Obj
                   [ ("total", Json.Int cov.cv_actions_total);
                     ("covered", Json.Int cov.cv_actions_covered);
                     ( "uncovered",
                       ids_json cov.cv_actions_uncovered ) ] ) ]
            @ pair_cov) ) ]
    @ graph)

let to_json_string ?body_only r = Json.to_string (to_json ?body_only r)

(* ------------------------------------------------------------------ *)
(* Markdown emission                                                   *)
(* ------------------------------------------------------------------ *)

let md_ids = function [] -> "—" | ids -> String.concat ", " ids

let to_markdown ?(body_only = false) r =
  let b = Buffer.create 2048 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "# Security requirements report\n\n";
  pf "- model digest: `%s`\n" r.r_digest;
  if not body_only then begin
    pf "- path: %s; method: %s; engine: %s; reduce: %s; prune: %s; \
        max states: %d\n"
      r.r_settings.sg_path r.r_settings.sg_method r.r_settings.sg_engine
      r.r_settings.sg_reduce r.r_settings.sg_prune
      r.r_settings.sg_max_states;
    match r.r_graph with
    | Some (states, transitions) ->
      pf "- reachability graph: %d states, %d transitions\n" states
        transitions
    | None -> ()
  end;
  pf "\n## Requirements (%d)\n\n" (List.length r.r_items);
  if r.r_items <> [] then begin
    pf "| ID | Requirement | Class | Verification | Score | Rank |\n";
    pf "|---|---|---|---|---|---|\n";
    List.iter
      (fun (it : item) ->
        pf "| %s | `%s` | %s | %s | %d | %d |\n" it.it_id
          (Auth.to_string it.it_requirement)
          (class_kind it.it_class)
          (verification_to_string it.it_verification)
          it.it_score it.it_rank)
      r.r_items;
    pf "\n";
    List.iter
      (fun (it : item) ->
        pf "### %s `%s`\n\n" it.it_id it.it_digest;
        pf "- requirement: `%s`\n" (Auth.to_string it.it_requirement);
        let ep role e =
          pf "- %s: `%s`%s%s%s\n" role e.ep_action
            (match e.ep_instance with
            | Some i -> Printf.sprintf " — instance %s" i
            | None -> "")
            (match e.ep_component with
            | Some c -> Printf.sprintf ", component %s" c
            | None -> "")
            (match e.ep_use_case with
            | Some u -> Printf.sprintf ", use case `%s`" u
            | None -> "")
        in
        ep "cause" it.it_cause;
        ep "effect" it.it_effect;
        (match class_policies it.it_class with
        | [] -> ()
        | ps -> pf "- policies: %s\n" (String.concat ", " ps));
        (match (body_only, it.it_automaton) with
        | true, _ | _, None -> ()
        | false, Some a ->
          pf "- minimal automaton: %d states, %d transitions\n" a.am_states
            a.am_transitions);
        pf "\n")
      r.r_items
  end;
  pf "## Traceability\n\n### Actions\n\n";
  pf "| Action | Requirements |\n|---|---|\n";
  List.iter
    (fun (a, ids) -> pf "| `%s` | %s |\n" a (md_ids ids))
    r.r_by_action;
  pf "\n### Instances\n\n| Instance | Requirements |\n|---|---|\n";
  List.iter
    (fun (i, ids) -> pf "| %s | %s |\n" i (md_ids ids))
    r.r_by_instance;
  let cov = r.r_coverage in
  pf "\n## Coverage\n\n";
  pf "- actions: %d/%d covered%s\n" cov.cv_actions_covered
    cov.cv_actions_total
    (match cov.cv_actions_uncovered with
    | [] -> ""
    | us -> Printf.sprintf "; uncovered: %s" (String.concat ", " us));
  if not body_only then
    pf "- pairs: %d total = %d tested + %d pruned%s; %d dependent, %d \
        independent\n"
      cov.cv_pairs.pc_total cov.cv_pairs.pc_tested cov.cv_pairs.pc_pruned
      (if cov.cv_pairs.pc_pruned_flow > 0 then
         Printf.sprintf " (%d static-flow)" cov.cv_pairs.pc_pruned_flow
       else "")
      cov.cv_pairs.pc_dependent cov.cv_pairs.pc_independent;
  Buffer.contents b
