(* Model linting: inspection warnings over functional SoS models.

   The derivation is only as good as the model; these checks surface the
   modelling smells that review sessions most often find by hand:

   - isolated actions (no flows at all): either dead modelling or an
     undeclared dependency;
   - components with no external interaction: they cannot influence or be
     influenced by the rest of the SoS;
   - actions that are simultaneously a system input and a system output:
     a degenerate dependency chain of length zero;
   - policy flows whose policy tag appears only once (likely a typo);
   - unreachable outputs: maximal actions no input can influence —
     decisions out of thin air;
   - fan-in joins at component boundaries: actions receiving several
     external flows, a common place for undocumented merge logic. *)

module Action = Fsa_term.Action

type warning =
  | Isolated_action of Action.t
  | Unconnected_component of string
  | Degenerate_boundary_action of Action.t
  | Singleton_policy of string * Flow.t
  | Uninfluenced_output of Action.t
  | External_fan_in of Action.t * int

let pp_warning ppf = function
  | Isolated_action a ->
    Fmt.pf ppf "action %a has no functional flows at all" Action.pp a
  | Unconnected_component c ->
    Fmt.pf ppf "component %s has no external interaction" c
  | Degenerate_boundary_action a ->
    Fmt.pf ppf "action %a is both a system input and a system output"
      Action.pp a
  | Singleton_policy (p, f) ->
    Fmt.pf ppf "policy %S is used by a single flow (%a) — typo?" p Flow.pp f
  | Uninfluenced_output a ->
    Fmt.pf ppf "output %a does not depend on any system input" Action.pp a
  | External_fan_in (a, n) ->
    Fmt.pf ppf "action %a receives %d external flows (merge logic?)"
      Action.pp a n

let severity = function
  | Isolated_action _ | Degenerate_boundary_action _ | Uninfluenced_output _ ->
    `Error
  | Unconnected_component _ | Singleton_policy _ | External_fan_in _ ->
    `Warning

(* Stable diagnostic codes, the manual-path block (FSA03x) of the unified
   code space rendered by [Fsa_check.Diagnostic]. *)
let code = function
  | Isolated_action _ -> "FSA030"
  | Unconnected_component _ -> "FSA031"
  | Degenerate_boundary_action _ -> "FSA032"
  | Singleton_policy _ -> "FSA033"
  | Uninfluenced_output _ -> "FSA034"
  | External_fan_in _ -> "FSA035"

let pp_severity ppf = function
  | `Error -> Fmt.string ppf "error"
  | `Warning -> Fmt.string ppf "warning"

let check sos =
  let warnings = ref [] in
  let warn w = warnings := w :: !warnings in
  let g = Sos.dependency_graph sos in
  let flows = Sos.all_flows sos in
  (* isolated actions *)
  List.iter
    (fun a ->
      if
        (not (Action_graph.G.mem_vertex a g))
        || Action_graph.G.in_degree a g = 0
           && Action_graph.G.out_degree a g = 0
      then warn (Isolated_action a))
    (Sos.all_actions sos);
  (* unconnected components *)
  List.iter
    (fun c ->
      let name = Component.name c in
      let has_external =
        List.exists
          (fun f ->
            List.exists (Action.equal (Flow.src f)) (Component.actions c)
            || List.exists (Action.equal (Flow.dst f)) (Component.actions c))
          (Sos.links sos)
      in
      if (not has_external) && List.length (Sos.components sos) > 1 then
        warn (Unconnected_component name))
    (Sos.components sos);
  (* degenerate boundary actions and uninfluenced outputs *)
  let b = Sos.boundary sos in
  List.iter
    (fun a ->
      if List.exists (Action.equal a) b.Sos.incoming then
        warn (Degenerate_boundary_action a))
    b.Sos.outgoing;
  List.iter
    (fun out ->
      if not (List.exists (Action.equal out) b.Sos.incoming) then begin
        let influenced =
          List.exists
            (fun inp ->
              Action_graph.G.Vset.mem out (Action_graph.G.reachable inp g))
            b.Sos.incoming
        in
        if not influenced then warn (Uninfluenced_output out)
      end)
    b.Sos.outgoing;
  (* singleton policies *)
  let policy_flows =
    List.filter_map (fun f -> Option.map (fun p -> (p, f)) (Flow.policy f)) flows
  in
  List.iter
    (fun (p, f) ->
      let uses = List.filter (fun (p', _) -> String.equal p p') policy_flows in
      if List.length uses = 1 then warn (Singleton_policy (p, f)))
    policy_flows;
  (* external fan-in *)
  let externals = List.filter Flow.is_external flows in
  List.iter
    (fun a ->
      let n =
        List.length
          (List.filter (fun f -> Action.equal (Flow.dst f) a) externals)
      in
      if n >= 3 then warn (External_fan_in (a, n)))
    (Sos.all_actions sos);
  List.rev !warnings

let errors sos = List.filter (fun w -> severity w = `Error) (check sos)

let pp_report ppf warnings =
  if warnings = [] then Fmt.string ppf "no findings"
  else
    Fmt.pf ppf "@[<v>%a@]"
      Fmt.(
        list ~sep:cut (fun ppf w ->
            Fmt.pf ppf "%a: %a" pp_severity (severity w) pp_warning w))
      warnings
