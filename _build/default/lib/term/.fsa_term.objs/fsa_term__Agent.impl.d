lib/term/agent.ml: Fmt Map Set Stdlib String
