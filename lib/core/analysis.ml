(* The functional security analysis methodology — the paper's primary
   contribution, as a library facade over the substrates.

   Two analysis paths produce the set of authenticity requirements of a
   system of systems:

   - the *manual* path (Sect. 4): functional model -> partial order zeta*
     -> restriction chi to (minima x maxima) -> auth(x, y, stakeholder(y));

   - the *tool* path (Sect. 5): APA model -> reachability graph ->
     minima/maxima identification -> per-pair functional dependence test
     (directly on the graph, or by abstraction with an alphabetic
     homomorphism and inspection of the minimal automaton).

   Both paths are implemented and can be cross-validated against each
   other via a label correspondence. *)

module Action = Fsa_term.Action
module Agent = Fsa_term.Agent
module Sos = Fsa_model.Sos
module Auth = Fsa_requirements.Auth
module Derive = Fsa_requirements.Derive
module Classify = Fsa_requirements.Classify
module Lts = Fsa_lts.Lts
module Hom = Fsa_hom.Hom

let log_src = Logs.Src.create "fsa.core" ~doc:"analysis pipeline phases"

module Log = (val Logs.src_log log_src)

module Span = Fsa_obs.Span

(* ------------------------------------------------------------------ *)
(* Manual path                                                         *)
(* ------------------------------------------------------------------ *)

type manual_report = {
  m_sos : Sos.t;
  m_stats : Sos.stats;
  m_boundary : Sos.boundary;
  m_chi : (Action.t * Action.t) list;
  m_requirements : Auth.t list;
  m_classified : (Auth.t * Classify.class_) list;
}

let manual ?(stakeholder = Derive.default_stakeholder) sos =
  Span.with_ ~cat:"core" "manual" @@ fun () ->
  let poset = Span.with_ ~cat:"core" "manual.poset" (fun () -> Sos.poset sos) in
  let requirements =
    Span.with_ ~cat:"core" "manual.derive" (fun () ->
        Derive.of_sos ~stakeholder sos)
  in
  let classified =
    Span.with_ ~cat:"core" "manual.classify" (fun () ->
        Classify.classify_all sos requirements)
  in
  Log.debug (fun m ->
      m "manual path %s: %d requirements" (Sos.name sos)
        (List.length requirements));
  { m_sos = sos;
    m_stats = Sos.stats sos;
    m_boundary = Sos.boundary sos;
    m_chi = Fsa_model.Action_graph.P.chi poset;
    m_requirements = requirements;
    m_classified = classified }

let pp_manual_report ppf r =
  Fmt.pf ppf
    "@[<v>== manual functional security analysis: %s ==@,\
     model: %a@,\
     incoming boundary actions: @[%a@]@,\
     outgoing boundary actions: @[%a@]@,\
     requirements:@,%a@]"
    (Sos.name r.m_sos) Sos.pp_stats r.m_stats
    Fmt.(list ~sep:comma Action.pp)
    r.m_boundary.Sos.incoming
    Fmt.(list ~sep:comma Action.pp)
    r.m_boundary.Sos.outgoing
    Fmt.(list ~sep:cut (fun ppf rc -> Fmt.pf ppf "- %a" Classify.pp_classified rc))
    r.m_classified

(* ------------------------------------------------------------------ *)
(* Tool path                                                           *)
(* ------------------------------------------------------------------ *)

type dependence_method =
  | Direct  (* BFS on the reachability graph *)
  | Abstract  (* homomorphism + minimal automaton, as in Sect. 5.5 *)

(* Wall-clock breakdown of one (min, max) dependence test.  For the
   Direct method the whole BFS is accounted to the compare phase; the
   erase/determinise/minimise stages exist only under Abstract. *)
type pair_timing = {
  pt_min : Action.t;
  pt_max : Action.t;
  pt_pruned : bool;
  pt_pruned_by : string option;
      (* ["static"] (skeleton reachability) or ["static-flow"]
         (guard-refined flow graph); [None] when tested *)
  pt_erase_ns : int64;
  pt_determinise_ns : int64;
  pt_minimise_ns : int64;
  pt_compare_ns : int64;
}

(* The shared engine's one-off cost and shape: what the per-pair
   erase/determinise/minimise columns of [ph_pairs] no longer contain
   when the shared path answered the pairs. *)
type shared_timing = {
  sh_alphabet_size : int;
  sh_dfa_states : int;
  sh_cached : bool;  (** the shared quotient came from the store *)
  sh_early_pairs : int;  (** pairs decided during the single pass *)
  sh_erase_ns : int64;
  sh_determinise_ns : int64;
  sh_minimise_ns : int64;
  sh_early_ns : int64;
}

type phase_timings = {
  ph_explore_ns : int64;
  ph_min_max_ns : int64;
  ph_matrix_ns : int64;
  ph_derive_ns : int64;
  ph_pairs : pair_timing list;
  ph_shared : shared_timing option;
}

(* What --reduce actually did: the size of the reduced exploration (the
   states and transitions that underwent rule matching), the order of
   the detected symmetry group, and — when the plan could not be applied
   soundly — why the run fell back to unreduced exploration. *)
type reduction_info = {
  ri_kind : string;  (** ["sym"], ["por"] or ["sym+por"] *)
  ri_reduced_states : int;
  ri_reduced_transitions : int;
  ri_group_order : float;
  ri_fallback : string option;
}

type tool_report = {
  t_lts : Lts.t;
  t_stats : Lts.stats;
  t_minima : Action.t list;
  t_maxima : Action.t list;
  t_matrix : (Action.t * (Action.t * bool) list) list;
  t_requirements : Auth.t list;
  t_timings : phase_timings;
  t_reduction : reduction_info option;
  t_engine : Hom.Shared.engine option;
}

(* Hook for caching the shared intermediate quotient.  The store lives
   above this library (lib/core does not depend on lib/store), so the
   analysis takes the cache as a pair of callbacks; the server wires
   them to [Fsa_store] entries keyed by spec digest + erased-alphabet
   digest + engine version. *)
type quotient_cache = {
  qc_find : alphabet:Action.t list -> Hom.A.Dfa.t option;
  qc_store : alphabet:Action.t list -> Hom.A.Dfa.t -> unit;
}

let dependence ~meth lts ~min_action ~max_action =
  match meth with
  | Direct -> Lts.depends_on lts ~max_action ~min_action
  | Abstract -> Hom.depends_abstract lts ~min_action ~max_action

let dependence_timed ~meth lts ~min_action ~max_action =
  match meth with
  | Direct ->
    let t0 = Span.now_ns () in
    let dep = Lts.depends_on lts ~max_action ~min_action in
    let t1 = Span.now_ns () in
    ( dep,
      { Hom.dt_erase_ns = 0L;
        dt_determinise_ns = 0L;
        dt_minimise_ns = 0L;
        dt_compare_ns = Int64.sub t1 t0 } )
  | Abstract -> Hom.depends_abstract_timed lts ~min_action ~max_action

module Structural = Fsa_struct.Structural
module Sym = Fsa_sym.Sym
module Apa = Fsa_apa.Apa

(* Static dependence pruning.  [prune mn mx] answers [true] only when it
   is sound to skip the dependence test and record "independent": the
   LTS must be labelled by rule names (the default labelling — an action
   with an actor, arguments or a label outside the rule names disables
   pruning for the whole run), and the token-flow graph of the net
   skeleton must admit no path from [mn]'s rule to [mx]'s rule.  Then no
   firing of [mx] can consume or read (transitively) anything [mn]
   produced: deleting [mn]'s firings and their downward flow closure
   from any run leaves a valid run still containing [mx], so the
   functional dependence test is negative by construction and pruning
   cannot change the result.

   [indep] shares a flow-independence matrix already built for the spec
   (a reduction plan carries one for its ample-set modules) instead of
   recomputing it here. *)
let default_labelled_rules apa =
  List.for_all (fun r -> r.Apa.r_default_label) (Apa.rules apa)

let rule_name_labelled apa lts =
  let rule_names = Apa.rule_names apa in
  default_labelled_rules apa
  || Action.Set.for_all
       (fun a ->
         Action.equal a (Action.make (Action.label a))
         && List.mem (Action.label a) rule_names)
       (Lts.alphabet lts)

let static_pruner ?indep apa lts =
  if not (rule_name_labelled apa lts) then fun _ _ -> false
  else
    let indep =
      match indep with
      | Some indep -> indep
      | None -> Structural.independent_all (Structural.of_apa apa)
    in
    fun mn mx ->
      not (Action.equal mn mx)
      && Lazy.force indep (Action.label mn) (Action.label mx)

let c_pairs_pruned = Structural.pairs_pruned

module Flow = Fsa_flow.Flow

(* Flow pruning ([--prune-flow]): the same soundness shape as
   {!static_pruner} — rule-name labelling required, reachability over a
   token-flow graph — but the graph is the guard-refined one of
   {!Fsa_flow.Flow}, a subgraph of the skeleton's, so it can only prune
   more pairs, never fewer, and the argument carries over verbatim
   (see the soundness note in [lib/flow/flow.mli]). *)
let flow_pruner flow apa lts =
  if not (rule_name_labelled apa lts) then fun _ _ -> false
  else
    fun mn mx ->
      (not (Action.equal mn mx))
      && Flow.independent flow ~min:(Action.label mn) ~max:(Action.label mx)

(* ------------------------------------------------------------------ *)
(* Reduced exploration (--reduce)                                      *)
(* ------------------------------------------------------------------ *)

module Stbl = Hashtbl.Make (struct
  type t = Apa.State.t

  let equal = Apa.State.equal
  let hash = Apa.State.hash
end)

let reduction_hooks pl =
  { Lts.rd_canon = Option.value (Sym.canon_fn pl) ~default:Fun.id;
    rd_ample = Option.value (Sym.ample_fn pl) ~default:(fun _ succs -> succs) }

let quotient ?(max_states = 1_000_000) ?(jobs = 1) ?progress pl apa =
  let reduce = reduction_hooks pl in
  if jobs > 1 then Lts.explore_par ~max_states ~reduce ?progress ~jobs apa
  else Lts.explore ~max_states ~reduce ?progress apa

(* Exact maxima of the FULL graph, recovered module-locally.

   An ample-reduced graph cannot answer the maxima question directly:
   its dead states are only ever entered by whatever module the
   scheduler ran last, so plain [Lts.maxima] loses every other module's
   final actions (and under sym+por the canonical block re-sorting even
   shuffles which module that is between steps).  But interference
   modules are fully independent subsystems — no rule of one can
   enable, disable or feed another — so the full graph is exactly their
   product, and the product's maxima decompose:

   - a product state is dead iff every module is locally dead, and by
     independence every combination of locally reachable states is
     reachable, so [a] (of module [i]) enters a dead product state iff
     [a] enters a dead state of module [i]'s local graph and every
     other module can die;
   - the reduced graph has a dead state iff every module can locally
     die (a reduced dead state is a genuine product dead state, and
     conversely termination of the chosen modules drives every module
     to a local dead end when it has one).

   So: no dead state in the reduced graph means no full maxima at all;
   otherwise the full maxima are the union of each module's local
   maxima, each computed by exploring that module's rules alone — the
   local graphs are tiny (the product divides into them). *)
let por_maxima ?(max_states = 1_000_000) po apa lts =
  if Lts.deadlocks lts = [] then Action.Set.empty
  else
    let rules = Apa.rules apa in
    List.fold_left
      (fun acc m ->
        let mrules =
          List.filter (fun r -> List.mem r.Apa.r_name m.Sym.m_rules) rules
        in
        let local =
          Lts.explore ~max_states
            (Apa.make ~components:(Apa.components apa) ~rules:mrules
               (Apa.name apa))
        in
        Action.Set.union acc (Lts.maxima local))
      Action.Set.empty (Sym.por_modules po)

(* Unfold a symmetry quotient back to the full reachability graph.

   Quotient exploration shrinks the expensive part — rule matching runs
   only on canonical representatives — but the dependence tests need the
   full graph with per-instance labels: testing over the quotient with
   its raw labels is unsound, because one representative path can mix
   transitions of different concrete instances.  The product BFS below
   enumerates pairs [(rep, sigma)] denoting the concrete state
   [sigma rep]: the successors of each representative are computed (and
   ample-filtered) once, then replayed under [sigma] for every concrete
   state of the orbit — the concrete label of a raw successor [(a, t)]
   is [sigma a], and the successor's own pair is [(rep', sigma . inv
   tau)] where [canonical t = (rep', tau)].  Per concrete edge the work
   is a permutation application, not a rule match.  BFS order is
   deterministic, so the rebuilt graph is reproducible (though its state
   numbering may differ from an unreduced exploration's; all set-level
   results — minima, maxima, dependence, requirements — coincide).

   [max_states] bounds the representatives (the states actually
   matched); the concrete graph may legitimately be [group_order] times
   larger, so it gets a proportionally larger safety cap. *)
let unfolded ?(max_states = 1_000_000) pl apa =
  let cz =
    match pl.Sym.pl_canonizer with
    | Some cz -> cz
    | None -> invalid_arg "Analysis.unfolded: plan has no canonizer"
  in
  if not (default_labelled_rules apa) then
    raise
      (Sym.Unsupported
         "model has custom action labels; the recorded renamings only \
          rewrite default rule-name labels");
  let ample = Option.value (Sym.ample_fn pl) ~default:(fun _ succs -> succs) in
  let full_cap =
    let order = Sym.group_order pl.Sym.pl_report in
    let scale = if Float.is_integer order && order <= 4096. then
        int_of_float order else 4096
    in
    max max_states (max_states * scale)
  in
  let succs = Stbl.create 1024 in
  let succ_of q =
    match Stbl.find_opt succs q with
    | Some l -> l
    | None ->
      if Stbl.length succs >= max_states then
        raise (Lts.State_space_too_large max_states);
      let l =
        List.map (fun (_, a, t) -> (a, t)) (ample q (Apa.step apa q))
      in
      Stbl.add succs q l;
      l
  in
  let index = Stbl.create 4096 in
  let rev_states = ref [] in
  let nb = ref 0 in
  let rev_edges = ref [] in
  let nb_edges = ref 0 in
  let queue = Queue.create () in
  let intern s q sigma =
    match Stbl.find_opt index s with
    | Some id -> id
    | None ->
      if !nb >= full_cap then raise (Lts.State_space_too_large full_cap);
      let id = !nb in
      incr nb;
      Stbl.add index s id;
      rev_states := s :: !rev_states;
      Queue.add (id, q, sigma) queue;
      id
  in
  let s0 = Apa.initial_state apa in
  ignore (intern s0 s0 Sym.Perm.id);
  while not (Queue.is_empty queue) do
    let id, q, sigma = Queue.pop queue in
    List.iter
      (fun (a, t) ->
        let label = Sym.Perm.apply_action sigma a in
        let rep, tau = Sym.canonical cz t in
        let sigma' = Sym.Perm.compose sigma (Sym.Perm.inverse tau) in
        let s' = Sym.Perm.apply_state sigma' rep in
        let id' = intern s' rep sigma' in
        incr nb_edges;
        rev_edges := { Lts.t_src = id; t_label = label; t_dst = id' } :: !rev_edges)
      (succ_of q)
  done;
  let states = Array.of_list (List.rev !rev_states) in
  let edges = List.rev !rev_edges in
  let reps = Stbl.length succs in
  let rep_transitions =
    Stbl.fold (fun _ l acc -> acc + List.length l) succs 0
  in
  (Lts.of_graph ~name:(Apa.name apa) ~states edges, reps, rep_transitions)

let tool ?(meth = Abstract) ?(max_states = 1_000_000) ?(jobs = 1)
    ?(prune = false) ?flow ?reduce ?(shared = true) ?quotient_cache ?progress
    ~stakeholder apa =
  Span.with_ ~cat:"core" "tool" @@ fun () ->
  let timed f =
    let t0 = Span.now_ns () in
    let v = f () in
    (v, Int64.sub (Span.now_ns ()) t0)
  in
  (* The requirement pipeline needs concrete per-instance labels, so a
     symmetry plan is applied as quotient-then-unfold; that in turn
     needs the default rule-name labelling the recorded renamings can
     rewrite.  Models with custom labels fall back to unreduced
     exploration (recorded in [ri_fallback]). *)
  let eff_reduce, fallback =
    match reduce with
    | None -> (None, None)
    | Some pl when default_labelled_rules apa -> (Some pl, None)
    | Some pl ->
      let reason =
        "model has custom action labels; explored unreduced"
      in
      Log.warn (fun m ->
          m "--reduce %s: %s" (Sym.kind_to_string pl.Sym.pl_kind) reason);
      (None, Some reason)
  in
  let quotient_size = ref None in
  let lts, ph_explore_ns =
    timed @@ fun () ->
    Span.with_ ~cat:"core" "tool.explore" (fun () ->
        match eff_reduce with
        | Some pl when Sym.canon_fn pl <> None ->
          let lts, reps, rep_transitions = unfolded ~max_states pl apa in
          quotient_size := Some (reps, rep_transitions);
          lts
        | Some pl ->
          (* partial order only: the reduced graph is analysed as-is *)
          quotient ~max_states ~jobs ?progress pl apa
        | None ->
          if jobs > 1 then Lts.explore_par ~max_states ?progress ~jobs apa
          else Lts.explore ~max_states ?progress apa)
  in
  (* An active ample-set reduction drops interleavings of rules from
     different interference modules, with two consequences downstream:
     maxima are recovered module-locally ({!por_maxima}), and the direct
     dependence test on the reduced graph could spuriously report
     cross-module pairs as dependent, so static pruning is forced on —
     flow-independent pairs are settled by the (sound) structural
     argument in both the reduced and the unreduced run, and same-module
     pairs project to the same module-local runs either way. *)
  let por_active =
    match eff_reduce with
    | Some pl -> Sym.ample_fn pl <> None
    | None -> false
  in
  let (minima, maxima), ph_min_max_ns =
    timed @@ fun () ->
    Span.with_ ~cat:"core" "tool.min_max" (fun () ->
        let maxima =
          if por_active then
            match eff_reduce with
            | Some { Sym.pl_por = Some po; _ } ->
              por_maxima ~max_states po apa lts
            | _ -> Lts.maxima lts
          else Lts.maxima lts
        in
        (Action.Set.elements (Lts.minima lts), Action.Set.elements maxima))
  in
  let struct_pruned =
    if prune || por_active then
      static_pruner
        ?indep:(Option.map (fun pl -> pl.Sym.pl_indep) eff_reduce)
        apa lts
    else fun _ _ -> false
  in
  let flow_pruned =
    match flow with
    | Some g -> flow_pruner g apa lts
    | None -> fun _ _ -> false
  in
  (* Attribution order matters only for reporting: a pair both pruners
     decide is credited to the cheaper skeleton argument. *)
  let pruned_by mn mx =
    if struct_pruned mn mx then Some "static"
    else if flow_pruned mn mx then Some "static-flow"
    else None
  in
  let pruned mn mx = pruned_by mn mx <> None in
  let pair_timings = ref [] in
  let engine = ref None in
  let matrix, ph_matrix_ns =
    timed @@ fun () ->
    Span.with_ ~cat:"core" "tool.dependence_matrix" @@ fun () ->
    (* Shared multi-pair engine (Abstract only): erase once to the
       union alphabet of all surviving pairs, determinise/minimise the
       shared image, then answer every pair from it.  Statically pruned
       pairs contribute nothing to the alphabet — their verdict never
       touches the automaton. *)
    (match meth with
    | Abstract when shared ->
      let surviving_minima =
        List.filter
          (fun mn -> List.exists (fun mx -> not (pruned mn mx)) maxima)
          minima
      and surviving_maxima =
        List.filter
          (fun mx -> List.exists (fun mn -> not (pruned mn mx)) minima)
          maxima
      in
      let alphabet =
        Action.Set.union
          (Action.Set.of_list surviving_minima)
          (Action.Set.of_list surviving_maxima)
      in
      if not (Action.Set.is_empty alphabet) then begin
        let alist = Action.Set.elements alphabet in
        let dfa =
          Option.bind quotient_cache (fun qc -> qc.qc_find ~alphabet:alist)
        in
        let e =
          Hom.Shared.build ?dfa ~alphabet ~minima:surviving_minima
            ~maxima:surviving_maxima lts
        in
        (match quotient_cache with
        | Some qc when not (Hom.Shared.cached e) ->
          qc.qc_store ~alphabet:alist (Hom.Shared.dfa e)
        | _ -> ());
        engine := Some e
      end
    | _ -> ());
    List.map
      (fun mx ->
        (mx,
         List.map
           (fun mn ->
             match pruned_by mn mx with
             | Some by ->
               (if String.equal by "static-flow" then
                  Fsa_obs.Metrics.incr Flow.pairs_pruned
                else Fsa_obs.Metrics.incr c_pairs_pruned);
               pair_timings :=
                 { pt_min = mn;
                   pt_max = mx;
                   pt_pruned = true;
                   pt_pruned_by = Some by;
                   pt_erase_ns = 0L;
                   pt_determinise_ns = 0L;
                   pt_minimise_ns = 0L;
                   pt_compare_ns = 0L }
                 :: !pair_timings;
               (mn, false)
             | None ->
               let dep, dt =
                 match !engine with
                 | Some e ->
                   Hom.Shared.depends_timed e ~min_action:mn ~max_action:mx
                 | None ->
                   dependence_timed ~meth lts ~min_action:mn ~max_action:mx
               in
               pair_timings :=
                 { pt_min = mn;
                   pt_max = mx;
                   pt_pruned = false;
                   pt_pruned_by = None;
                   pt_erase_ns = dt.Hom.dt_erase_ns;
                   pt_determinise_ns = dt.Hom.dt_determinise_ns;
                   pt_minimise_ns = dt.Hom.dt_minimise_ns;
                   pt_compare_ns = dt.Hom.dt_compare_ns }
                 :: !pair_timings;
               (mn, dep))
           minima))
      maxima
  in
  let requirements, ph_derive_ns =
    timed @@ fun () ->
    Span.with_ ~cat:"core" "tool.derive" @@ fun () ->
    List.concat_map
      (fun (mx, row) ->
        List.filter_map
          (fun (mn, dep) ->
            if dep then
              Some (Auth.make ~cause:mn ~effect:mx ~stakeholder:(stakeholder mx))
            else None)
          row)
      matrix
    |> Auth.normalise
  in
  Log.debug (fun m ->
      m "tool path %s: %d states, %d minima x %d maxima, %d requirements"
        (Lts.name lts) (Lts.nb_states lts) (List.length minima)
        (List.length maxima)
        (List.length requirements));
  let t_reduction =
    match reduce with
    | None -> None
    | Some pl ->
      let reduced_states, reduced_transitions =
        match !quotient_size with
        | Some (s, t) -> (s, t)
        | None -> (Lts.nb_states lts, Lts.nb_transitions lts)
      in
      Some
        { ri_kind = Sym.kind_to_string pl.Sym.pl_kind;
          ri_reduced_states = reduced_states;
          ri_reduced_transitions = reduced_transitions;
          ri_group_order = Sym.group_order pl.Sym.pl_report;
          ri_fallback = fallback }
  in
  { t_lts = lts;
    t_stats = Lts.stats lts;
    t_minima = minima;
    t_maxima = maxima;
    t_matrix = matrix;
    t_requirements = requirements;
    t_timings =
      { ph_explore_ns;
        ph_min_max_ns;
        ph_matrix_ns;
        ph_derive_ns;
        ph_pairs = List.rev !pair_timings;
        ph_shared =
          Option.map
            (fun e ->
              let bt = Hom.Shared.timing e in
              { sh_alphabet_size =
                  Action.Set.cardinal (Hom.Shared.alphabet e);
                sh_dfa_states = Hom.A.Dfa.nb_states (Hom.Shared.dfa e);
                sh_cached = Hom.Shared.cached e;
                sh_early_pairs = Hom.Shared.early_count e;
                sh_erase_ns = bt.Hom.Shared.sb_erase_ns;
                sh_determinise_ns = bt.Hom.Shared.sb_determinise_ns;
                sh_minimise_ns = bt.Hom.Shared.sb_minimise_ns;
                sh_early_ns = bt.Hom.Shared.sb_early_ns })
            !engine };
    t_reduction;
    t_engine = !engine }

let matrix_pairs r =
  List.concat_map
    (fun (mx, row) -> List.map (fun (mn, dep) -> (mn, mx, dep)) row)
    r.t_matrix

let pp_tool_report ppf r =
  let pp_row ppf (mx, row) =
    Fmt.pf ppf "%a depends on: @[%a@]" Action.pp mx
      Fmt.(list ~sep:comma Action.pp)
      (List.filter_map (fun (mn, d) -> if d then Some mn else None) row)
  in
  Fmt.pf ppf
    "@[<v>== tool-assisted analysis: %s ==@,\
     reachability graph: %a@,\
     minima: @[%a@]@,\
     maxima: @[%a@]@,\
     dependence:@,%a@,\
     requirements:@,%a@]"
    (Lts.name r.t_lts) Lts.pp_stats r.t_stats
    Fmt.(list ~sep:comma Action.pp)
    r.t_minima
    Fmt.(list ~sep:comma Action.pp)
    r.t_maxima
    Fmt.(list ~sep:cut pp_row)
    r.t_matrix Auth.pp_set r.t_requirements

(* ------------------------------------------------------------------ *)
(* Cross-validation of the two paths                                   *)
(* ------------------------------------------------------------------ *)

type crosscheck = {
  c_agree : bool;
  c_manual_only : Auth.t list;
  c_tool_only : Auth.t list;
  c_unmapped : Action.t list;  (* tool actions without a manual image *)
}

(* Translate the tool path's requirements into the manual action
   vocabulary via [map] (e.g. V1_sense -> sense(ESP_1, sW)) and compare
   requirement sets.  Stakeholders are compared as well, so [map] must be
   paired with consistent stakeholder assignments on both sides. *)
let crosscheck ~map ~manual_requirements ~tool_requirements =
  let unmapped = ref [] in
  let translate r =
    match map (Auth.cause r), map (Auth.effect r) with
    | Some cause, Some effect ->
      Some (Auth.make ~cause ~effect ~stakeholder:(Auth.stakeholder r))
    | None, _ ->
      unmapped := Auth.cause r :: !unmapped;
      None
    | _, None ->
      unmapped := Auth.effect r :: !unmapped;
      None
  in
  let tool_translated = List.filter_map translate tool_requirements in
  let manual_only = Auth.diff manual_requirements tool_translated in
  let tool_only = Auth.diff tool_translated manual_requirements in
  { c_agree = manual_only = [] && tool_only = [] && !unmapped = [];
    c_manual_only = manual_only;
    c_tool_only = tool_only;
    c_unmapped = List.sort_uniq Action.compare !unmapped }

let pp_crosscheck ppf c =
  if c.c_agree then Fmt.pf ppf "both analysis paths agree"
  else
    Fmt.pf ppf
      "@[<v>analysis paths disagree:@,manual only: %a@,tool only: %a@,\
       unmapped tool actions: @[%a@]@]"
      Auth.pp_set c.c_manual_only Auth.pp_set c.c_tool_only
      Fmt.(list ~sep:comma Action.pp)
      c.c_unmapped
