(** Process-wide metrics registry: counters, gauges and fixed-bucket
    histograms.

    Instruments are registered by name in a global table; registering the
    same name twice returns the same instrument (registering it with a
    different kind raises [Invalid_argument]).  Recording is O(1) and
    gated on a single process-wide flag — when disabled (the default),
    every record operation is one load and one branch and no state is
    mutated, so instrumented hot paths are effectively free.

    Counter and gauge recording is atomic and lock-free; registration,
    histogram recording, [reset] and the dump functions are serialised
    by an internal mutex.  All operations may therefore be performed
    from any domain (parallel exploration workers and server request
    workers record into shared instruments). *)

val set_enabled : bool -> unit
(** Turn recording on or off (off by default).  Registration is always
    possible; only recording is gated. *)

val enabled : unit -> bool

(** {1 Counters} *)

type counter

val counter : string -> counter
(** Register (or look up) the counter with the given name. *)

val incr : ?by:int -> counter -> unit
(** Add [by] (default 1) when recording is enabled. *)

val counter_value : counter -> int
val counter_name : counter -> string

(** {1 Gauges} *)

type gauge

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit
val set_gauge_max : gauge -> float -> unit
(** Raise the gauge to [v] if [v] exceeds its current value
    (high-watermark semantics). *)

val gauge_value : gauge -> float
val gauge_name : gauge -> string

(** {1 Histograms} *)

type histogram

val default_buckets : float array

val histogram : ?buckets:float array -> string -> histogram
(** Fixed-bucket histogram.  [buckets] are strictly increasing upper
    bounds; an implicit overflow bucket is appended.  A value [v] is
    counted in the first bucket whose bound is [>= v]. *)

val observe : histogram -> float -> unit
val histogram_counts : histogram -> int array
(** Per-bucket counts, the last entry being the overflow bucket. *)

val histogram_sum : histogram -> float
val histogram_count : histogram -> int
val histogram_name : histogram -> string

val quantile : histogram -> float -> float
(** [quantile h q] is a bucket-interpolated estimate of the [q]-quantile
    (e.g. [0.5] for the median) of the observed values: the bucket
    holding the rank-[q] observation is located and the estimate
    interpolated linearly between its bounds.  Values that fell in the
    overflow bucket are reported as the last finite bound.  [0.] on an
    empty histogram; [q] is clamped to [0, 1]. *)

(** {1 Registry} *)

val reset : unit -> unit
(** Zero every registered instrument (registrations are kept). *)

val counters : unit -> (string * int) list
(** All counters, sorted by name. *)

val gauges : unit -> (string * float) list

val to_json : unit -> string
(** Deterministic JSON dump of the whole registry:
    [{"counters": {..}, "gauges": {..}, "histograms": {..}}], keys sorted
    by name. *)

val to_prometheus : unit -> string
(** The registry in Prometheus text exposition format.  Names are
    sanitised for Prometheus ([.] and other illegal characters become
    [_], so ["server.latency_ms"] is exposed as [server_latency_ms]);
    histograms are rendered with cumulative [_bucket{le="..."}] series,
    a [+Inf] bucket, [_sum] and [_count]. *)

val pp_summary : unit Fmt.t
(** Human-readable table of every instrument. *)

(**/**)

val json_escape : Buffer.t -> string -> unit
(** JSON string-content escaping, shared with {!Span}. *)
