lib/requirements/generalise.ml: Auth Fmt Fsa_term Int List Map Option Stdlib String
