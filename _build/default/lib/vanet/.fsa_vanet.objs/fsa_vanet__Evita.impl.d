lib/vanet/evita.ml: Fmt Fsa_model Fsa_requirements Fsa_term List
