(** Lexer for the specification language. *)

type t

val make : string -> t
val location : t -> Loc.t
val next : t -> Token.t * Loc.t
val peek : t -> Token.t * Loc.t

val expect : t -> Token.t -> Loc.t
(** Consume the expected token or raise a located error. *)

val accept : t -> Token.t -> bool
(** Consume the token if it is next; [false] otherwise. *)

val ident : t -> string
