(** The canonical APA of a functional model: each action consumes one
    token per incoming flow and produces one per outgoing flow.  The
    generated reachability graph is the ideal lattice of the model's
    event poset, making the tool-assisted path available for every
    manual-path model — with identical action labels, so the two paths
    cross-validate through the identity map. *)

module Term = Fsa_term.Term
module Action = Fsa_term.Action
module Apa = Fsa_apa.Apa
module Sos = Fsa_model.Sos
module Flow = Fsa_model.Flow

val flow_component : Flow.t -> string
val pending_component : Action.t -> string
val out_component : Action.t -> string

val compile : ?name:string -> Sos.t -> Apa.t

val tool_analysis :
  ?meth:Analysis.dependence_method ->
  ?max_states:int ->
  ?stakeholder:(Action.t -> Fsa_term.Agent.t) ->
  Sos.t ->
  Analysis.tool_report

val crosscheck :
  ?meth:Analysis.dependence_method ->
  ?max_states:int ->
  ?stakeholder:(Action.t -> Fsa_term.Agent.t) ->
  Sos.t ->
  Analysis.crosscheck
