(** Authenticity requirements (Definition 1 of the paper).

    [auth(a, b, P)]: whenever action [b] happens, it must be authentic for
    agent [P] that action [a] has happened. *)

module Action = Fsa_term.Action
module Agent = Fsa_term.Agent

type t = { cause : Action.t; effect : Action.t; stakeholder : Agent.t }

val make : cause:Action.t -> effect:Action.t -> stakeholder:Agent.t -> t
val cause : t -> Action.t
val effect : t -> Action.t
val stakeholder : t -> Agent.t

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : t Fmt.t
val to_string : t -> string
val pp_prose : t Fmt.t

val normalise : t list -> t list
(** Sort and de-duplicate a requirement set. *)

val union : t list -> t list -> t list
val diff : t list -> t list -> t list
val subset : t list -> t list -> bool
val equal_set : t list -> t list -> bool
val pp_set : t list Fmt.t

module Set : Set.S with type elt = t
