lib/requirements/prioritise.mli: Auth Classify Fmt Fsa_model Fsa_term
