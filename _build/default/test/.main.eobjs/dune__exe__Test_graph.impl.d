test/test_graph.ml: Alcotest Fmt Fsa_graph Fun Int List QCheck2 QCheck_alcotest String
