(* Command-line driver for functional security analysis.

   Mirrors the workflow of the SH verification tool as used in the paper:
   load a specification, compute the reachability graph, identify minima
   and maxima, test functional dependence by abstraction and derive
   authenticity requirements — plus the manual path over functional
   models, and the built-in scenarios of the paper. *)

open Cmdliner

module Action = Fsa_term.Action
module Lts = Fsa_lts.Lts
module Hom = Fsa_hom.Hom
module Analysis = Fsa_core.Analysis
module Sym = Fsa_sym.Sym

let setup_logs verbose =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let verbose_arg =
  let doc = "Enable verbose logging." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let metrics_out_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics-out" ] ~docv:"FILE"
           ~doc:"Enable observability and write a JSON metrics dump to $(docv).")

let trace_out_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Enable observability and write Chrome trace-event JSON to \
                 $(docv) (open in chrome://tracing or Perfetto).")

let spec_arg =
  let doc = "Specification file (.fsa)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"SPEC" ~doc)

let jobs_arg =
  Arg.(value & opt int 1
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Explore the state space with $(docv) parallel domains; the \
                 resulting graph (state numbering included) is identical to \
                 the sequential exploration.")

let explore ~max_states ?progress ~jobs apa =
  if jobs > 1 then Lts.explore_par ~max_states ?progress ~jobs apa
  else Lts.explore ~max_states ?progress apa

(* Exit codes: 0 clean, 1 analysis failure / findings, 2 the input does
   not even parse or elaborate. *)
let parse_exit = 2

let die_loc ~file loc msg =
  Fmt.epr "fsa: %s: %a@." file Fsa_spec.Loc.pp_exn (loc, msg);
  exit parse_exit

let parse_spec path =
  try Ok (Fsa_spec.Parser.parse_file path) with
  | Fsa_spec.Loc.Error (loc, msg) -> Error (`Parse (loc, msg))
  | Sys_error msg -> Error (`Sys msg)

let or_die = function
  | Ok v -> v
  | Error msg ->
    Fmt.epr "fsa: %s@." msg;
    exit 1

(* usage-level failure (bad invocation, unknown name/format): same exit
   code as a spec that does not parse, distinct from analysis findings *)
let die_usage msg =
  Fmt.epr "fsa: %s@." msg;
  exit parse_exit

let load_spec path =
  match parse_spec path with
  | Ok spec -> spec
  | Error (`Parse (loc, msg)) -> die_loc ~file:path loc msg
  | Error (`Sys msg) -> or_die (Error msg)

let write_or_print ~out content =
  match out with
  | None -> print_string content
  | Some path -> (
    try
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc content);
      Fmt.pr "wrote %s@." path
    with Sys_error msg ->
      (* the message names the offending path *)
      or_die (Error msg))

(* Atomic [--out] writes, matching the store's temp+rename convention: a
   crash mid-write never leaves a truncated file at the target path, and
   a concurrent reader sees either the old content or the new, never a
   prefix. *)
let write_atomic ~path content =
  let tmp =
    Filename.concat
      (Filename.dirname path)
      (Printf.sprintf ".%s.tmp.%d" (Filename.basename path) (Unix.getpid ()))
  in
  try
    let oc = open_out tmp in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc content);
    Sys.rename tmp path;
    Fmt.epr "wrote %s@." path
  with Sys_error msg ->
    (try Sys.remove tmp with Sys_error _ -> ());
    or_die (Error msg)

let write_out ~out content =
  match out with None -> print_string content | Some path -> write_atomic ~path content

(* Observability plumbing: either output flag switches the process-wide
   registry on; the dumps are written even if the command dies halfway
   through, so a long exploration that hits the state bound still leaves a
   usable trace behind. *)
let with_obs ~metrics_out ~trace_out f =
  let wanted = metrics_out <> None || trace_out <> None in
  if not wanted then f ()
  else begin
    Fsa_obs.Metrics.reset ();
    Fsa_obs.Span.reset ();
    Fsa_obs.Recorder.reset ();
    Fsa_obs.Metrics.set_enabled true;
    let dump () =
      Fsa_obs.Metrics.set_enabled false;
      try
        Option.iter
          (fun path ->
            write_or_print ~out:(Some path) (Fsa_obs.Metrics.to_json ()))
          metrics_out;
        Option.iter
          (fun path ->
            write_or_print ~out:(Some path) (Fsa_obs.Span.to_chrome_json ()))
          trace_out
      with Sys_error msg -> or_die (Error msg)
    in
    Fun.protect ~finally:dump f
  end

let elaborate_apa ~file spec =
  Fsa_obs.Span.with_ ~cat:"core" "elaborate" @@ fun () ->
  try Fsa_spec.Elaborate.apa_of_spec spec with
  | Fsa_spec.Loc.Error (loc, msg) -> die_loc ~file loc msg

let explore_progress spec_path =
  Fsa_obs.Progress.stderr_reporter
    ~label:(Filename.remove_extension (Filename.basename spec_path))
    ()

(* --------------------------------------------------------------- *)
(* Result cache plumbing                                            *)
(* --------------------------------------------------------------- *)

module Server = Fsa_server.Server

let prune_arg =
  Arg.(value & flag
       & info [ "prune-static" ]
           ~doc:"Skip the dependence test for action pairs the structural \
                 pre-analysis proves independent (no token-flow path). \
                 Sound: the derived requirements are identical to an \
                 unpruned run.")

let flow_arg =
  Arg.(value & flag
       & info [ "prune-flow" ]
           ~doc:"Skip the dependence test for action pairs the static \
                 information-flow analysis (taint reachability over the \
                 guard-refined def-use graph, see $(b,fsa flow)) proves \
                 independent. Sound: the derived requirements are \
                 identical to an unpruned run; pairs only this analysis \
                 prunes are attributed static-flow in the report \
                 coverage.")

let reduce_conv =
  let parse s =
    match Sym.kind_of_string s with
    | Some k -> Ok k
    | None ->
      Error (`Msg (Printf.sprintf "unknown reduction %S (sym|por|sym+por)" s))
  in
  let print ppf k = Fmt.string ppf (Sym.kind_to_string k) in
  Arg.conv (parse, print)

let reduce_arg =
  Arg.(value & opt (some reduce_conv) None
       & info [ "reduce" ] ~docv:"KIND"
           ~doc:"Explore under reduction: $(b,sym) (component-permutation \
                 symmetry: interchangeable instances are explored once per \
                 orbit), $(b,por) (ample-set partial-order reduction over \
                 static interference modules) or $(b,sym+por). Sound: the \
                 derived requirement set is identical to an unreduced run; \
                 models with custom action labels fall back to unreduced \
                 exploration. See $(b,fsa sym) for the detected orbits.")

let shared_arg =
  Arg.(value
       & vflag true
           [ ( true,
               info [ "shared-abstraction" ]
                 ~doc:"Answer all (minimum, maximum) dependence pairs from \
                       one shared abstraction of the behaviour (erase once \
                       to the union alphabet of the surviving pairs, \
                       minimise, project per pair). This is the default; \
                       verdicts and requirements are identical to the \
                       per-pair path." );
             ( false,
               info [ "no-shared-abstraction" ]
                 ~doc:"Escape hatch: recompute the homomorphic image from \
                       the full reachability graph for every pair (the \
                       legacy per-pair path)." ) ])

let cache_arg =
  Arg.(value & flag
       & info [ "cache" ]
           ~doc:"Reuse (and populate) the content-addressed result cache.")

let no_cache_arg =
  Arg.(value & flag
       & info [ "no-cache" ]
           ~doc:"Bypass the result cache even where it is on by default.")

let cache_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "cache-dir" ] ~docv:"DIR"
           ~doc:"Cache directory (implies $(b,--cache); default \
                 \\$FSA_CACHE_DIR, else \\$XDG_CACHE_HOME/fsa).")

let open_store ~cache ~no_cache ~cache_dir =
  let enabled = (cache || cache_dir <> None) && not no_cache in
  if not enabled then None
  else
    let dir =
      match cache_dir with
      | Some dir -> dir
      | None -> Fsa_store.Store.default_dir ()
    in
    match Fsa_store.Store.open_ ~dir () with
    | store -> Some store
    | exception Sys_error msg -> or_die (Error msg)

(* Run one analysis through the shared executor (cache-aware when the
   config carries a store), mapping analysis-level failures to the CLI's
   exit-code conventions. *)
let exec_or_die cfg ~op ?meth ?max_states ?jobs ?prune ?flow ?sos ?keep
    ?reduce ?shared ?progress ~file spec =
  match
    Server.Exec.run cfg ~op ?meth ?max_states ?jobs ?prune ?flow ?sos ?keep
      ?reduce ?shared ?progress ~file spec
  with
  | outcome -> outcome
  | exception Fsa_spec.Loc.Error (loc, msg) -> die_loc ~file loc msg
  | exception Server.Usage_error msg -> die_usage msg
  | exception Server.Too_large (n, hint) ->
    or_die
      (Error
         (Printf.sprintf "state space exceeds the bound of %d states%s" n
            hint))

(* As above, and print the human report; on a hit the marker goes to
   stderr so stdout stays byte-identical to a fresh run. *)
let run_exec cfg ~op ?meth ?max_states ?jobs ?prune ?flow ?sos ?keep ?reduce
    ?shared ?progress ~file spec =
  let outcome =
    exec_or_die cfg ~op ?meth ?max_states ?jobs ?prune ?flow ?sos ?keep
      ?reduce ?shared ?progress ~file spec
  in
  if outcome.Server.Exec.oc_cached then Fmt.epr "(cached)@.";
  print_string outcome.Server.Exec.oc_output;
  outcome

(* --------------------------------------------------------------- *)
(* fsa reach                                                        *)
(* --------------------------------------------------------------- *)

let reach_cmd =
  let run verbose spec_path max_states jobs flow reduce dot_out cache
      no_cache cache_dir metrics_out trace_out =
    setup_logs verbose;
    with_obs ~metrics_out ~trace_out @@ fun () ->
    let spec = load_spec spec_path in
    match dot_out with
    | Some _ ->
      (* the DOT export needs the graph itself: bypass the cache *)
      let apa = elaborate_apa ~file:spec_path spec in
      let progress = explore_progress spec_path in
      let lts =
        match reduce with
        | None -> explore ~max_states ~progress ~jobs apa
        | Some kind ->
          let sigs = Fsa_spec.Elaborate.guard_signatures spec in
          let pl =
            Sym.plan ~guard_sig:(fun r -> List.assoc_opt r sigs) kind apa
          in
          Analysis.quotient ~max_states ~jobs ~progress pl apa
      in
      Fmt.pr "%a@." Lts.pp_stats (Lts.stats lts);
      Fmt.pr "%a@." Lts.pp_min_max lts;
      Option.iter
        (fun path -> write_or_print ~out:(Some path) (Lts.dot lts))
        dot_out
    | None ->
      let store = open_store ~cache ~no_cache ~cache_dir in
      let cfg = Server.config ?store () in
      let progress = explore_progress spec_path in
      (* reach has no dependence matrix, so --prune-flow cannot change
         anything; accepted for symmetry with requirements *)
      ignore
        (run_exec cfg ~op:Server.Exec.Reach ~max_states ~jobs ~flow ?reduce
           ~progress ~file:spec_path spec)
  in
  let max_states =
    Arg.(value & opt int 1_000_000 & info [ "max-states" ] ~doc:"State bound.")
  in
  let dot_out =
    Arg.(value & opt (some string) None
         & info [ "dot" ] ~docv:"FILE" ~doc:"Write the reachability graph as DOT.")
  in
  Cmd.v
    (Cmd.info "reach" ~doc:"Compute the reachability graph of a specification's APA model.")
    Term.(const run $ verbose_arg $ spec_arg $ max_states $ jobs_arg
          $ flow_arg $ reduce_arg $ dot_out $ cache_arg $ no_cache_arg
          $ cache_dir_arg $ metrics_out_arg $ trace_out_arg)

(* --------------------------------------------------------------- *)
(* fsa requirements                                                 *)
(* --------------------------------------------------------------- *)

let meth_conv =
  let parse = function
    | "direct" -> Ok Analysis.Direct
    | "abstract" -> Ok Analysis.Abstract
    | s -> Error (`Msg (Printf.sprintf "unknown method %S (direct|abstract)" s))
  in
  let print ppf = function
    | Analysis.Direct -> Fmt.string ppf "direct"
    | Analysis.Abstract -> Fmt.string ppf "abstract"
  in
  Arg.conv (parse, print)

let out_json_arg =
  Arg.(value & opt (some string) None
       & info [ "out" ] ~docv:"FILE"
           ~doc:"Write the structured JSON result to $(docv) (atomic \
                 temp+rename write); the human report still goes to stdout.")

let requirements_cmd =
  let run verbose spec_path meth max_states jobs prune flow reduce shared
      out cache no_cache cache_dir metrics_out trace_out =
    setup_logs verbose;
    with_obs ~metrics_out ~trace_out @@ fun () ->
    let spec = load_spec spec_path in
    let store = open_store ~cache ~no_cache ~cache_dir in
    let cfg =
      Server.config ?store ~stakeholder:Fsa_vanet.Vehicle_apa.stakeholder ()
    in
    let progress = explore_progress spec_path in
    let outcome =
      run_exec cfg ~op:Server.Exec.Requirements ~meth ~max_states ~jobs
        ~prune ~flow ?reduce ~shared ~progress ~file:spec_path spec
    in
    Option.iter
      (fun path ->
        write_atomic ~path
          (Fsa_store.Json.to_string outcome.Server.Exec.oc_result ^ "\n"))
      out
  in
  let meth =
    Arg.(value & opt meth_conv Analysis.Abstract
         & info [ "method" ] ~doc:"Dependence test: direct or abstract.")
  in
  let max_states =
    Arg.(value & opt int 1_000_000 & info [ "max-states" ] ~doc:"State bound.")
  in
  Cmd.v
    (Cmd.info "requirements"
       ~doc:"Derive authenticity requirements from a specification's APA model (tool path).")
    Term.(const run $ verbose_arg $ spec_arg $ meth $ max_states $ jobs_arg
          $ prune_arg $ flow_arg $ reduce_arg $ shared_arg $ out_json_arg
          $ cache_arg $ no_cache_arg $ cache_dir_arg $ metrics_out_arg
          $ trace_out_arg)

(* --------------------------------------------------------------- *)
(* fsa analyze (manual path over sos declarations)                  *)
(* --------------------------------------------------------------- *)

let analyze_cmd =
  let run verbose spec_path sos_name prune flow reduce cache no_cache
      cache_dir metrics_out trace_out =
    setup_logs verbose;
    with_obs ~metrics_out ~trace_out @@ fun () ->
    let spec = load_spec spec_path in
    (* advisory static pass first: findings go to stderr and never block
       the analysis (use `fsa check` for a gating run) *)
    (match Fsa_check.Check.spec ~file:spec_path spec with
    | [] -> ()
    | ds -> List.iter (fun d -> Fmt.epr "%a@." Fsa_check.Diagnostic.pp d) ds);
    let store = open_store ~cache ~no_cache ~cache_dir in
    let cfg = Server.config ?store () in
    (* the manual path never explores a state space, so pruning and
       reduction are no-ops here; the flags are accepted for symmetry
       with requirements *)
    ignore
      (run_exec cfg ~op:Server.Exec.Analyze ?sos:sos_name ~prune ~flow
         ?reduce ~file:spec_path spec)
  in
  let sos_name =
    Arg.(value & opt (some string) None
         & info [ "sos" ] ~docv:"NAME" ~doc:"Analyse only the named sos declaration.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Derive authenticity requirements from functional models (manual path).")
    Term.(const run $ verbose_arg $ spec_arg $ sos_name $ prune_arg
          $ flow_arg $ reduce_arg $ cache_arg $ no_cache_arg $ cache_dir_arg
          $ metrics_out_arg $ trace_out_arg)

(* --------------------------------------------------------------- *)
(* fsa abstract                                                     *)
(* --------------------------------------------------------------- *)

let abstract_cmd =
  let run verbose spec_path keep rename jobs dot_out out cache no_cache
      cache_dir =
    setup_logs verbose;
    let spec = load_spec spec_path in
    let apa =
      try Fsa_spec.Elaborate.apa_of_spec spec with
      | Fsa_spec.Loc.Error (loc, msg) -> die_loc ~file:spec_path loc msg
    in
    let rename_pairs =
      List.map
        (fun kv ->
          match String.index_opt kv '=' with
          | Some i when i > 0 && i < String.length kv - 1 ->
            ( String.sub kv 0 i,
              String.sub kv (i + 1) (String.length kv - i - 1) )
          | _ ->
            die_usage (Printf.sprintf "bad rename %S (expected OLD=NEW)" kv))
        rename
    in
    (* validate the keep set and rename map before paying for the
       exploration: a non-injective rename map (FSA036) would silently
       merge distinct actions and poison every dependence verdict *)
    (match
       Fsa_check.Check.keep_set ~file:spec_path
         ~alphabet:(Fsa_apa.Apa.rule_names apa) keep
       @ Fsa_check.Check.rename_map ~file:spec_path ~alphabet:keep
           rename_pairs
     with
    | [] -> ()
    | ds ->
      List.iter (fun d -> Fmt.epr "%a@." Fsa_check.Diagnostic.pp d) ds;
      if Fsa_check.Diagnostic.has_errors ds then exit 1);
    (* the structured JSON result exists only on the cached executor
       path; the DOT/rename bypass renders directly *)
    (match (out, dot_out, rename_pairs) with
    | Some _, Some _, _ | Some _, None, _ :: _ ->
      die_usage "--out cannot be combined with --dot or --rename"
    | _ -> ());
    match (dot_out, rename_pairs) with
    | Some _, _ | None, _ :: _ ->
      (* DOT export needs the automaton itself and the cached executor
         knows nothing of renamings: bypass the cache *)
      let lts = explore ~max_states:1_000_000 ~jobs apa in
      let actions = List.map Action.make keep in
      let h =
        match rename_pairs with
        | [] -> Hom.preserve actions
        | ps ->
          Hom.compose
            (Hom.rename
               (List.map (fun (a, b) -> (Action.make a, Action.make b)) ps))
            (Hom.preserve actions)
      in
      let dfa = Hom.minimal_automaton h lts in
      Fmt.pr "minimal automaton: %s@." (Hom.describe_dfa dfa);
      Fmt.pr "homomorphism simple on this behaviour: %b@."
        (Hom.is_simple h lts);
      (match actions with
      | [ mn; mx ] ->
        (* the dependence verdict lives in the image: test the renamed
           pair on the image automaton (labels outside the pair traverse
           freely, exactly as erasing them would) *)
        let img a = Option.value (h a) ~default:a in
        Fmt.pr "functional dependence %a -> %a: %b@." Action.pp (img mn)
          Action.pp (img mx)
          (not
             (Hom.dfa_has_target_before_avoid dfa ~avoid:(img mn)
                ~target:(img mx)))
      | _ -> ());
      Option.iter
        (fun path -> write_or_print ~out:(Some path) (Hom.A.Dfa.dot dfa))
        dot_out
    | None, [] ->
      let store = open_store ~cache ~no_cache ~cache_dir in
      let cfg = Server.config ?store () in
      let outcome =
        run_exec cfg ~op:Server.Exec.Abstract ~keep ~jobs ~file:spec_path
          spec
      in
      Option.iter
        (fun path ->
          write_atomic ~path
            (Fsa_store.Json.to_string outcome.Server.Exec.oc_result ^ "\n"))
        out
  in
  let keep =
    Arg.(non_empty & opt (list string) []
         & info [ "keep" ] ~docv:"ACTIONS"
             ~doc:"Comma-separated transition names the homomorphism preserves.")
  in
  let rename =
    Arg.(value & opt (list string) []
         & info [ "rename" ] ~docv:"OLD=NEW,..."
             ~doc:"Comma-separated renamings applied after $(b,--keep): the \
                   homomorphism maps OLD to NEW instead of keeping it \
                   unchanged. The map must stay injective on the kept \
                   alphabet — merges are rejected as FSA036.")
  in
  let dot_out =
    Arg.(value & opt (some string) None
         & info [ "dot" ] ~docv:"FILE" ~doc:"Write the minimal automaton as DOT.")
  in
  Cmd.v
    (Cmd.info "abstract"
       ~doc:"Compute the minimal automaton of a homomorphic image (Sect. 5.5).")
    Term.(const run $ verbose_arg $ spec_arg $ keep $ rename $ jobs_arg
          $ dot_out $ out_json_arg $ cache_arg $ no_cache_arg $ cache_dir_arg)

(* --------------------------------------------------------------- *)
(* fsa scenario                                                     *)
(* --------------------------------------------------------------- *)

let scenario_cmd =
  let run verbose name =
    setup_logs verbose;
    match name with
    | "two-vehicles" ->
      let report =
        Analysis.tool ~stakeholder:Fsa_vanet.Vehicle_apa.stakeholder
          (Fsa_vanet.Vehicle_apa.two_vehicles ())
      in
      Fmt.pr "%a@." Analysis.pp_tool_report report
    | "four-vehicles" ->
      let report =
        Analysis.tool ~stakeholder:Fsa_vanet.Vehicle_apa.stakeholder
          (Fsa_vanet.Vehicle_apa.four_vehicles ())
      in
      Fmt.pr "%a@." Analysis.pp_tool_report report
    | "rsu" ->
      Fmt.pr "%a@." Analysis.pp_manual_report
        (Analysis.manual Fsa_vanet.Scenario.rsu_and_vehicle)
    | "fig3" ->
      Fmt.pr "%a@." Analysis.pp_manual_report
        (Analysis.manual Fsa_vanet.Scenario.two_vehicles)
    | "fig4" ->
      Fmt.pr "%a@." Analysis.pp_manual_report
        (Analysis.manual Fsa_vanet.Scenario.three_vehicles)
    | "evita" ->
      Fmt.pr "paper:    %a@." Fsa_vanet.Evita.pp_profile
        Fsa_vanet.Evita.paper_profile;
      Fmt.pr "measured: %a@." Fsa_vanet.Evita.pp_profile
        (Fsa_vanet.Evita.measured_profile ())
    | "grid" ->
      let report =
        Analysis.tool ~stakeholder:Fsa_grid.Grid_apa.stakeholder
          (Fsa_grid.Grid_apa.demand_response ())
      in
      Fmt.pr "%a@." Analysis.pp_tool_report report
    | "platoon" ->
      Fmt.pr "%a@." Analysis.pp_manual_report
        (Analysis.manual ~stakeholder:Fsa_vanet.Platoon.stakeholder
           (Fsa_vanet.Platoon.round ()))
    | s ->
      Fmt.epr
        "fsa: unknown scenario %S \
         (two-vehicles|four-vehicles|rsu|fig3|fig4|evita|grid|platoon)@."
        s;
      exit parse_exit
  in
  let name_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"NAME"
             ~doc:"Built-in scenario: two-vehicles, four-vehicles, rsu, fig3, \
                   fig4, evita, grid or platoon.")
  in
  Cmd.v
    (Cmd.info "scenario" ~doc:"Run a built-in scenario from the paper.")
    Term.(const run $ verbose_arg $ name_arg)

(* --------------------------------------------------------------- *)
(* fsa dot                                                          *)
(* --------------------------------------------------------------- *)

let dot_cmd =
  let run verbose spec_path sos_name out =
    setup_logs verbose;
    let spec = load_spec spec_path in
    let sos =
      try
        match sos_name with
        | Some name -> Fsa_spec.Elaborate.sos_of_spec spec name
        | None -> (
          match Fsa_spec.Elaborate.sos_list spec with
          | [ sos ] -> sos
          | [] -> die_usage "the specification declares no sos"
          | _ -> die_usage "several sos declarations; pick one with --sos")
      with
      | Fsa_spec.Loc.Error (loc, msg) -> die_loc ~file:spec_path loc msg
      | Invalid_argument msg -> die_usage msg
    in
    write_or_print ~out (Fsa_model.Sos.dot sos)
  in
  let sos_name =
    Arg.(value & opt (some string) None
         & info [ "sos" ] ~docv:"NAME" ~doc:"The sos declaration to render.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file (stdout by default).")
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Render a functional flow graph as DOT.")
    Term.(const run $ verbose_arg $ spec_arg $ sos_name $ out)

(* --------------------------------------------------------------- *)
(* fsa conf                                                         *)
(* --------------------------------------------------------------- *)

let conf_cmd =
  let run verbose spec_path sos_name confidential =
    setup_logs verbose;
    let spec = load_spec spec_path in
    let soses =
      try
        match sos_name with
        | Some name -> [ Fsa_spec.Elaborate.sos_of_spec spec name ]
        | None -> Fsa_spec.Elaborate.sos_list spec
      with
      | Fsa_spec.Loc.Error (loc, msg) -> die_loc ~file:spec_path loc msg
      | Invalid_argument msg -> die_usage msg
    in
    if soses = [] then die_usage "the specification declares no sos";
    let module Conf = Fsa_requirements.Confidentiality in
    let labelling =
      match confidential with
      | [] -> Conf.default_labelling
      | labels ->
        { Conf.default_labelling with
          Conf.source_level =
            (fun a ->
              if List.mem (Action.label a) labels then Conf.Confidential
              else Conf.Public) }
    in
    let threshold =
      match confidential with [] -> Conf.Internal | _ :: _ -> Conf.Confidential
    in
    List.iter
      (fun sos ->
        Fmt.pr "== confidentiality analysis: %s ==@." (Fsa_model.Sos.name sos);
        Fmt.pr "%a@." Conf.pp_set (Conf.derive ~labelling ~threshold sos);
        match Conf.violations ~labelling sos with
        | [] -> Fmt.pr "no clearance violations@."
        | vs -> List.iter (fun v -> Fmt.pr "violation: %a@." Conf.pp_violation v) vs)
      soses
  in
  let sos_name =
    Arg.(value & opt (some string) None
         & info [ "sos" ] ~docv:"NAME" ~doc:"Analyse only the named sos declaration.")
  in
  let confidential =
    Arg.(value & opt (list string) []
         & info [ "confidential" ] ~docv:"ACTIONS"
             ~doc:"Comma-separated input action labels classified confidential.")
  in
  Cmd.v
    (Cmd.info "conf"
       ~doc:"Derive confidentiality requirements (forward information-flow analysis).")
    Term.(const run $ verbose_arg $ spec_arg $ sos_name $ confidential)

(* --------------------------------------------------------------- *)
(* fsa simulate                                                     *)
(* --------------------------------------------------------------- *)

let simulate_cmd =
  let run verbose spec_path seed monitor =
    setup_logs verbose;
    let spec = load_spec spec_path in
    let apa =
      try Fsa_spec.Elaborate.apa_of_spec spec with
      | Fsa_spec.Loc.Error (loc, msg) -> die_loc ~file:spec_path loc msg
    in
    let sim = Fsa_sim.Sim.create ~seed apa in
    if monitor then begin
      let report =
        Analysis.tool ~stakeholder:Fsa_vanet.Vehicle_apa.stakeholder apa
      in
      Fsa_sim.Sim.attach_monitor sim report.Analysis.t_requirements
    end;
    Fmt.pr "fsa simulator — %d transitions enabled, 'help' for commands@."
      (List.length (Fsa_sim.Sim.enabled sim));
    let rec loop () =
      Fmt.pr "> %!";
      match In_channel.input_line stdin with
      | None -> ()
      | Some line -> (
        match Fsa_sim.Sim.parse_command line with
        | Error msg ->
          Fmt.pr "error: %s@." msg;
          loop ()
        | Ok cmd -> (
          match Fsa_sim.Sim.execute sim cmd with
          | `Output s ->
            Fmt.pr "%s@." s;
            loop ()
          | `Quit -> ()))
    in
    loop ()
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random-walk seed.")
  in
  let monitor =
    Arg.(value & flag
         & info [ "monitor" ]
             ~doc:"Attach runtime monitors for the derived requirements.")
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Interactively execute a specification's APA model (reads commands from stdin).")
    Term.(const run $ verbose_arg $ spec_arg $ seed $ monitor)

(* --------------------------------------------------------------- *)
(* fsa export                                                       *)
(* --------------------------------------------------------------- *)

let export_cmd =
  let run verbose spec_path sos_name format out =
    setup_logs verbose;
    let spec = load_spec spec_path in
    let sos =
      try
        match sos_name with
        | Some name -> Fsa_spec.Elaborate.sos_of_spec spec name
        | None -> (
          match Fsa_spec.Elaborate.sos_list spec with
          | [ sos ] -> sos
          | [] -> die_usage "the specification declares no sos"
          | _ -> die_usage "several sos declarations; pick one with --sos")
      with
      | Fsa_spec.Loc.Error (loc, msg) -> die_loc ~file:spec_path loc msg
      | Invalid_argument msg -> die_usage msg
    in
    let reqs = Fsa_requirements.Derive.of_sos sos in
    let classify = Fsa_requirements.Classify.classify sos in
    let content =
      match format with
      | "json" -> Fsa_requirements.Export.to_json ~classify reqs
      | "csv" -> Fsa_requirements.Export.to_csv ~classify reqs
      | "md" | "markdown" -> Fsa_requirements.Export.to_markdown ~classify reqs
      | f -> die_usage (Printf.sprintf "unknown format %S (json|csv|md)" f)
    in
    write_or_print ~out content
  in
  let sos_name =
    Arg.(value & opt (some string) None
         & info [ "sos" ] ~docv:"NAME" ~doc:"The sos declaration to export.")
  in
  let format =
    Arg.(value & opt string "json"
         & info [ "format" ] ~docv:"FMT" ~doc:"Output format: json, csv or md.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file (stdout by default).")
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Export derived requirements as JSON, CSV or Markdown.")
    Term.(const run $ verbose_arg $ spec_arg $ sos_name $ format $ out)

(* --------------------------------------------------------------- *)
(* fsa refine                                                       *)
(* --------------------------------------------------------------- *)

let refine_cmd =
  let run verbose spec_path sos_name cause effect threat =
    setup_logs verbose;
    let spec = load_spec spec_path in
    let sos =
      try
        match sos_name with
        | Some name -> Fsa_spec.Elaborate.sos_of_spec spec name
        | None -> (
          match Fsa_spec.Elaborate.sos_list spec with
          | [ sos ] -> sos
          | [] -> die_usage "the specification declares no sos"
          | _ -> die_usage "several sos declarations; pick one with --sos")
      with
      | Fsa_spec.Loc.Error (loc, msg) -> die_loc ~file:spec_path loc msg
      | Invalid_argument msg -> die_usage msg
    in
    let reqs = Fsa_requirements.Derive.of_sos sos in
    let selected =
      List.filter
        (fun r ->
          (match cause with
          | Some c -> Action.label (Fsa_requirements.Auth.cause r) = c
          | None -> true)
          &&
          match effect with
          | Some e -> Action.label (Fsa_requirements.Auth.effect r) = e
          | None -> true)
        reqs
    in
    if selected = [] then or_die (Error "no requirement matches the filter");
    List.iter
      (fun req ->
        Fmt.pr "%a@.@." Fsa_refine.Refine.pp_plan
          (Fsa_refine.Refine.plan sos req);
        if threat then
          Fmt.pr "%a@." Fsa_refine.Threat.pp_tree
            (Fsa_refine.Threat.of_requirement sos req))
      selected
  in
  let sos_name =
    Arg.(value & opt (some string) None
         & info [ "sos" ] ~docv:"NAME" ~doc:"The sos declaration to refine against.")
  in
  let cause =
    Arg.(value & opt (some string) None
         & info [ "cause" ] ~docv:"LABEL" ~doc:"Only requirements with this cause label.")
  in
  let effect =
    Arg.(value & opt (some string) None
         & info [ "effect" ] ~docv:"LABEL" ~doc:"Only requirements with this effect label.")
  in
  let threat =
    Arg.(value & flag
         & info [ "threat" ] ~doc:"Also print the generated threat trees.")
  in
  Cmd.v
    (Cmd.info "refine"
       ~doc:"Compute protection options (paths, attack surface, minimum cut) per requirement.")
    Term.(const run $ verbose_arg $ spec_arg $ sos_name $ cause $ effect $ threat)

(* --------------------------------------------------------------- *)
(* fsa check (static analysis)                                      *)
(* --------------------------------------------------------------- *)

let check_cmd =
  let run verbose spec_paths format werror deep budget metrics_out trace_out =
    setup_logs verbose;
    (* compute the exit code inside [with_obs] but call [exit] outside
       it: [Stdlib.exit] does not unwind [Fun.protect], so an exit in
       the body would skip the metrics/trace dumps *)
    let code =
      with_obs ~metrics_out ~trace_out @@ fun () ->
      let module D = Fsa_check.Diagnostic in
      let diagnostics =
        List.concat_map
          (fun path ->
            match parse_spec path with
            | Ok spec -> Fsa_check.Check.spec ~file:path ~deep ?budget spec
            | Error (`Parse (loc, msg)) ->
              [ D.error ~file:path ~loc ~code:"FSA000" "%s" msg ]
            | Error (`Sys msg) -> or_die (Error msg))
          spec_paths
      in
      let diagnostics =
        if werror then D.promote_warnings diagnostics else diagnostics
      in
      (match format with
      | `Json -> print_string (D.render_json diagnostics)
      | `Text ->
        let sources =
          List.filter_map
            (fun path ->
              try
                Some (path, In_channel.with_open_bin path In_channel.input_all)
              with Sys_error _ -> None)
            spec_paths
        in
        print_string (D.render_text ~sources diagnostics));
      if List.exists (fun d -> d.D.code = "FSA000") diagnostics then
        parse_exit
      else if D.has_errors diagnostics then 1
      else 0
    in
    if code <> 0 then exit code
  in
  let specs_arg =
    Arg.(non_empty & pos_all file []
         & info [] ~docv:"SPEC" ~doc:"Specification files (.fsa).")
  in
  let format_arg =
    Arg.(value & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
         & info [ "format" ] ~docv:"FMT" ~doc:"Output format: text or json.")
  in
  let werror_arg =
    Arg.(value & flag
         & info [ "werror" ] ~doc:"Treat warnings as errors (notes are unaffected).")
  in
  let deep_arg =
    Arg.(value & flag
         & info [ "deep" ]
             ~doc:"Also run the structural analysis of the net skeleton: \
                   invariant bounds, unboundedness certificates, siphon/trap \
                   deadlock verdicts, static independence (FSA040-FSA048).")
  in
  let budget_arg =
    Arg.(value & opt (some int) None
         & info [ "budget" ] ~docv:"N"
             ~doc:"Search-node budget for siphon/trap enumeration under \
                   $(b,--deep) (default 10000).")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Statically analyse specifications without exploring the state \
             space: dead rules, unbound variables, APA races, unknown check \
             actions, modelling smells; $(b,--deep) adds structural \
             invariant, siphon and independence analysis.")
    Term.(const run $ verbose_arg $ specs_arg $ format_arg $ werror_arg
          $ deep_arg $ budget_arg $ metrics_out_arg $ trace_out_arg)

(* --------------------------------------------------------------- *)
(* fsa struct (structural analysis report)                          *)
(* --------------------------------------------------------------- *)

let struct_cmd =
  let run verbose spec_path format budget metrics_out trace_out =
    setup_logs verbose;
    with_obs ~metrics_out ~trace_out @@ fun () ->
    let module Structural = Fsa_struct.Structural in
    let spec = load_spec spec_path in
    let net =
      try
        Fsa_check.Check.net_of_skeleton
          (Fsa_spec.Elaborate.skeleton_of_spec spec)
      with Fsa_spec.Loc.Error (loc, msg) -> die_loc ~file:spec_path loc msg
    in
    if net.Structural.n_places = [] then
      die_usage
        (Printf.sprintf "%s declares no state components to analyse"
           spec_path);
    let report = Structural.analyse ?budget net in
    match format with
    | `Json -> print_string (Structural.report_to_json report)
    | `Text -> Fmt.pr "%a@." Structural.pp_report report
  in
  let format_arg =
    Arg.(value & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
         & info [ "format" ] ~docv:"FMT" ~doc:"Output format: text or json.")
  in
  let budget_arg =
    Arg.(value & opt (some int) None
         & info [ "budget" ] ~docv:"N"
             ~doc:"Search-node budget for siphon/trap enumeration \
                   (default 10000).")
  in
  Cmd.v
    (Cmd.info "struct"
       ~doc:"Structural analysis of a specification's net skeleton, \
             without exploring the state space: incidence matrix, place \
             and transition invariants, component bounds, siphons, traps, \
             deadlock verdict and static action independence.")
    Term.(const run $ verbose_arg $ spec_arg $ format_arg $ budget_arg
          $ metrics_out_arg $ trace_out_arg)

(* --------------------------------------------------------------- *)
(* fsa sym (symmetry orbits and reduction prognosis)                *)
(* --------------------------------------------------------------- *)

let sym_cmd =
  let run verbose spec_path format metrics_out trace_out =
    setup_logs verbose;
    with_obs ~metrics_out ~trace_out @@ fun () ->
    let spec = load_spec spec_path in
    let apa = elaborate_apa ~file:spec_path spec in
    let sigs = Fsa_spec.Elaborate.guard_signatures spec in
    let report =
      Sym.detect ~guard_sig:(fun r -> List.assoc_opt r sigs) apa
    in
    match format with
    | `Json -> print_string (Sym.report_to_json report)
    | `Text ->
      Fmt.pr "%a@." Sym.pp_report report;
      let modules =
        Sym.por_modules
          (Sym.por_plan apa (Fsa_struct.Structural.of_apa apa))
      in
      Fmt.pr "interference modules: %d (%d usable as ample sets)@."
        (List.length modules)
        (List.length (List.filter (fun m -> m.Sym.m_reducible) modules));
      let order = Sym.group_order report in
      if order > 1. then
        Fmt.pr "predicted reduction: up to %.0fx fewer states with \
                --reduce sym@."
          order
      else
        Fmt.pr "no reducible symmetry: --reduce sym explores the full \
                state space@."
  in
  let format_arg =
    Arg.(value & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
         & info [ "format" ] ~docv:"FMT" ~doc:"Output format: text or json.")
  in
  Cmd.v
    (Cmd.info "sym"
       ~doc:"Detect component-permutation symmetry in a specification's \
             APA model without exploring the state space: instance \
             orbits, rejected candidate pairs, attested guards, \
             interference modules and the predicted reduction factor \
             for $(b,--reduce).")
    Term.(const run $ verbose_arg $ spec_arg $ format_arg $ metrics_out_arg
          $ trace_out_arg)

(* --------------------------------------------------------------- *)
(* fsa flow (static information-flow analysis)                      *)
(* --------------------------------------------------------------- *)

let flow_cmd =
  let run verbose spec_path format metrics_out trace_out =
    setup_logs verbose;
    with_obs ~metrics_out ~trace_out @@ fun () ->
    let module Flow = Fsa_flow.Flow in
    let spec = load_spec spec_path in
    let graph =
      try
        let sk = Fsa_spec.Elaborate.skeleton_of_spec spec in
        let apa = Fsa_spec.Elaborate.apa_of_spec spec in
        Flow.build ~attribution:(Fsa_check.Check.flow_attribution sk) apa
      with
      | Fsa_spec.Loc.Error (loc, msg) -> die_loc ~file:spec_path loc msg
      | Invalid_argument msg -> die_usage msg
    in
    if Flow.rules graph = [] then
      die_usage
        (Printf.sprintf "%s declares no rules to analyse" spec_path);
    match format with
    | `Json -> print_string (Flow.report_to_json (Flow.analyse graph))
    | `Dot -> print_string (Flow.to_dot graph)
    | `Text -> Fmt.pr "%a@." Flow.pp_report (Flow.analyse graph)
  in
  let format_arg =
    Arg.(value
         & opt (enum [ ("text", `Text); ("json", `Json); ("dot", `Dot) ])
             `Text
         & info [ "format" ] ~docv:"FMT"
             ~doc:"Output format: text, json or dot (the def-use graph \
                   with guard-killed edges).")
  in
  Cmd.v
    (Cmd.info "flow"
       ~doc:"Static information-flow analysis of a specification's APA \
             model, without exploring the state space: the def-use flow \
             graph over rules and state components, guard-killed edges, \
             confidentiality leaks from protected components, \
             unsanitized cross-instance flows, dead attack surface, \
             unguarded flow cycles and the flow-independent action \
             pairs behind $(b,--prune-flow).")
    Term.(const run $ verbose_arg $ spec_arg $ format_arg $ metrics_out_arg
          $ trace_out_arg)

(* --------------------------------------------------------------- *)
(* fsa verify (behavioural check declarations)                      *)
(* --------------------------------------------------------------- *)

let verify_cmd =
  let run verbose spec_path jobs flow reduce cache no_cache cache_dir =
    setup_logs verbose;
    let spec = load_spec spec_path in
    let store = open_store ~cache ~no_cache ~cache_dir in
    let cfg = Server.config ?store () in
    (* verify has no dependence matrix either; the flag is accepted for
       symmetry with requirements *)
    let outcome =
      run_exec cfg ~op:Server.Exec.Verify ~jobs ~flow ?reduce
        ~file:spec_path spec
    in
    if outcome.Server.Exec.oc_exit <> 0 then begin
      (match Fsa_store.Json.member "failed" outcome.Server.Exec.oc_result with
      | Some (Fsa_store.Json.Int n) ->
        Fmt.epr "fsa: %d check(s) failed@." n
      | _ -> ());
      exit outcome.Server.Exec.oc_exit
    end
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Evaluate a specification's check declarations against its \
             behaviour (explores the state space; see $(b,check) for the \
             static analysis).")
    Term.(const run $ verbose_arg $ spec_arg $ jobs_arg $ flow_arg
          $ reduce_arg $ cache_arg $ no_cache_arg $ cache_dir_arg)

(* --------------------------------------------------------------- *)
(* fsa monitor                                                      *)
(* --------------------------------------------------------------- *)

let monitor_cmd =
  let run verbose spec_path trace_path =
    setup_logs verbose;
    let spec = load_spec spec_path in
    let apa =
      try Fsa_spec.Elaborate.apa_of_spec spec with
      | Fsa_spec.Loc.Error (loc, msg) -> die_loc ~file:spec_path loc msg
    in
    let report =
      Analysis.tool ~stakeholder:Fsa_vanet.Vehicle_apa.stakeholder apa
    in
    let read_lines ic =
      let rec go acc =
        match In_channel.input_line ic with
        | Some line ->
          let line = String.trim line in
          go (if line = "" || line.[0] = '#' then acc else line :: acc)
        | None -> List.rev acc
      in
      go []
    in
    let lines =
      match trace_path with
      | Some path ->
        let ic = open_in path in
        Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_lines ic)
      | None -> read_lines stdin
    in
    let trace = List.map Action.make lines in
    let m = Fsa_mc.Monitor.of_requirements report.Analysis.t_requirements in
    List.iter (Fsa_mc.Monitor.step m) trace;
    Fmt.pr "%a@." Fsa_mc.Monitor.pp_report m;
    if not (Fsa_mc.Monitor.all_satisfied m) then exit 1
  in
  let trace_path =
    Arg.(value & opt (some file) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Trace file, one transition name per line (stdin by default; \
                   blank lines and # comments ignored).")
  in
  Cmd.v
    (Cmd.info "monitor"
       ~doc:"Verify a recorded trace against the derived authenticity requirements.")
    Term.(const run $ verbose_arg $ spec_arg $ trace_path)

(* --------------------------------------------------------------- *)
(* fsa report                                                       *)
(* --------------------------------------------------------------- *)

let report_cmd =
  let run verbose spec_path format sos_name out meth max_states jobs prune
      flow reduce shared cache no_cache cache_dir metrics_out trace_out =
    setup_logs verbose;
    with_obs ~metrics_out ~trace_out @@ fun () ->
    let spec = load_spec spec_path in
    let store = open_store ~cache ~no_cache ~cache_dir in
    let cfg =
      Server.config ?store ~stakeholder:Fsa_vanet.Vehicle_apa.stakeholder ()
    in
    let progress = explore_progress spec_path in
    let outcome =
      exec_or_die cfg ~op:Server.Exec.Report ~meth ~max_states ~jobs ~prune
        ~flow ?sos:sos_name ?reduce ~shared ~progress ~file:spec_path spec
    in
    if outcome.Server.Exec.oc_cached then Fmt.epr "(cached)@.";
    let content =
      match format with
      | `Md -> outcome.Server.Exec.oc_output
      | `Json -> Fsa_store.Json.to_string outcome.Server.Exec.oc_result ^ "\n"
    in
    write_out ~out content
  in
  let format =
    Arg.(value
         & opt (enum [ ("md", `Md); ("markdown", `Md); ("json", `Json) ]) `Md
         & info [ "format" ] ~docv:"FORMAT"
             ~doc:"Output format: $(b,md) (default) or $(b,json) (the \
                   deterministic fsa-report/1 document).")
  in
  let sos_name =
    Arg.(value & opt (some string) None
         & info [ "sos" ] ~docv:"NAME"
             ~doc:"Report on the named sos declaration (manual path) \
                   instead of the elaborated APA model.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "o"; "out"; "output" ] ~docv:"FILE"
             ~doc:"Output file (atomic temp+rename write; stdout by \
                   default).")
  in
  let meth =
    Arg.(value & opt meth_conv Analysis.Abstract
         & info [ "method" ] ~doc:"Dependence test: direct or abstract.")
  in
  let max_states =
    Arg.(value & opt int 1_000_000 & info [ "max-states" ] ~doc:"State bound.")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Render the requirements report: stable SR-* identifiers, \
             provenance, traceability matrix, coverage and verification \
             tags (deterministic Markdown or JSON).")
    Term.(const run $ verbose_arg $ spec_arg $ format $ sos_name $ out
          $ meth $ max_states $ jobs_arg $ prune_arg $ flow_arg
          $ reduce_arg $ shared_arg $ cache_arg $ no_cache_arg
          $ cache_dir_arg $ metrics_out_arg $ trace_out_arg)

(* --------------------------------------------------------------- *)
(* fsa lint                                                         *)
(* --------------------------------------------------------------- *)

let lint_cmd =
  let run verbose spec_path sos_name =
    setup_logs verbose;
    let spec = load_spec spec_path in
    let soses =
      try
        match sos_name with
        | Some name -> [ Fsa_spec.Elaborate.sos_of_spec spec name ]
        | None -> Fsa_spec.Elaborate.sos_list spec
      with
      | Fsa_spec.Loc.Error (loc, msg) -> die_loc ~file:spec_path loc msg
      | Invalid_argument msg -> die_usage msg
    in
    if soses = [] then die_usage "the specification declares no sos";
    let had_errors = ref false in
    List.iter
      (fun sos ->
        let findings = Fsa_model.Lint.check sos in
        Fmt.pr "== lint: %s ==@.%a@." (Fsa_model.Sos.name sos)
          Fsa_model.Lint.pp_report findings;
        if List.exists (fun w -> Fsa_model.Lint.severity w = `Error) findings
        then had_errors := true)
      soses;
    if !had_errors then exit 1
  in
  let sos_name =
    Arg.(value & opt (some string) None
         & info [ "sos" ] ~docv:"NAME" ~doc:"Lint only the named sos declaration.")
  in
  Cmd.v
    (Cmd.info "lint" ~doc:"Check a functional model for modelling smells.")
    Term.(const run $ verbose_arg $ spec_arg $ sos_name)

(* --------------------------------------------------------------- *)
(* fsa diff                                                         *)
(* --------------------------------------------------------------- *)

let diff_cmd =
  let run verbose before_path after_path sos_name =
    setup_logs verbose;
    let load path =
      let spec = load_spec path in
      try
        match sos_name with
        | Some name -> Fsa_spec.Elaborate.sos_of_spec spec name
        | None -> (
          match Fsa_spec.Elaborate.sos_list spec with
          | [ sos ] -> sos
          | [] -> die_usage (path ^ ": the specification declares no sos")
          | _ ->
            die_usage
              (path ^ ": several sos declarations; pick one with --sos"))
      with
      | Fsa_spec.Loc.Error (loc, msg) -> die_loc ~file:path loc msg
      | Invalid_argument msg -> die_usage msg
    in
    let before = load before_path and after = load after_path in
    let d = Fsa_requirements.Diff.compare_models ~before ~after () in
    Fmt.pr "%a@." Fsa_requirements.Diff.pp d;
    if not (Fsa_requirements.Diff.is_neutral d) then exit 1
  in
  let before_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"BEFORE" ~doc:"Old specification.")
  in
  let after_arg =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"AFTER" ~doc:"New specification.")
  in
  let sos_name =
    Arg.(value & opt (some string) None
         & info [ "sos" ] ~docv:"NAME" ~doc:"The sos declaration to compare.")
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:"Change-impact analysis: requirement differences between two model versions.")
    Term.(const run $ verbose_arg $ before_arg $ after_arg $ sos_name)

(* --------------------------------------------------------------- *)
(* fsa serve                                                        *)
(* --------------------------------------------------------------- *)

let op_names = "reach|requirements|analyze|abstract|verify|check|report"

let serve_cmd =
  let run verbose socket workers timeout_ms max_states prune no_cache
      cache_dir flight_dir slow_ms metrics_out trace_out =
    setup_logs verbose;
    with_obs ~metrics_out ~trace_out @@ fun () ->
    (* a daemon always collects metrics, whether or not it dumps them on
       exit: the [stats] op serves them live *)
    Fsa_obs.Metrics.set_enabled true;
    (* the daemon caches by default; --no-cache switches it off *)
    let store = open_store ~cache:true ~no_cache ~cache_dir in
    let cfg =
      Server.config ~workers ~max_states ~timeout_ms ?store ~prune
        ?flight_dir ~slow_ms
        ~stakeholder:Fsa_vanet.Vehicle_apa.stakeholder ()
    in
    let stop _ = Server.request_shutdown () in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
    match socket with
    | Some path -> Server.serve_unix_socket cfg ~path
    | None -> Server.serve_channels cfg ~fd_in:Unix.stdin stdout
  in
  let socket =
    Arg.(value & opt (some string) None
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Serve on a Unix-domain socket instead of stdin/stdout.")
  in
  let workers =
    Arg.(value & opt int 1
         & info [ "workers" ] ~docv:"N"
             ~doc:"Worker domains handling requests in parallel.")
  in
  let timeout_ms =
    Arg.(value & opt int 0
         & info [ "timeout-ms" ] ~docv:"MS"
             ~doc:"Per-request wall-clock budget (0 = unlimited).")
  in
  let max_states =
    Arg.(value & opt int 1_000_000
         & info [ "max-states" ] ~doc:"Per-request state bound.")
  in
  let flight_dir =
    Arg.(value & opt (some string) None
         & info [ "flight-dir" ] ~docv:"DIR"
             ~doc:"Dump the flight recorder to $(docv)/<trace_id>.json \
                   for every request that ends in a timeout, too_large \
                   or internal error.")
  in
  let slow_ms =
    Arg.(value & opt float 0.
         & info [ "slow-ms" ] ~docv:"MS"
             ~doc:"Log requests slower than $(docv) milliseconds and \
                   record them as slow events (0 = off).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve analysis requests as newline-delimited JSON, one \
             request per line (op: reach, requirements, analyze, \
             abstract, verify, check or stats), from stdin or a \
             Unix-domain socket.  SIGTERM drains in-flight requests and \
             exits.  $(b,fsa stats) queries a running daemon.")
    Term.(const run $ verbose_arg $ socket $ workers $ timeout_ms
          $ max_states $ prune_arg $ no_cache_arg $ cache_dir_arg
          $ flight_dir $ slow_ms $ metrics_out_arg $ trace_out_arg)

(* --------------------------------------------------------------- *)
(* fsa batch                                                        *)
(* --------------------------------------------------------------- *)

let batch_cmd =
  let run verbose op_name jobs max_states timeout_ms prune no_cache cache_dir
      metrics_out trace_out spec_paths =
    setup_logs verbose;
    (* resolve the op before entering [with_obs], and exit after leaving
       it: [die_usage] and [exit] do not unwind [Fun.protect], so either
       one inside the body would skip the metrics/trace dumps *)
    let op =
      match Server.Exec.op_of_string op_name with
      | Some op -> op
      | None ->
        die_usage (Printf.sprintf "unknown op %S (%s)" op_name op_names)
    in
    let code =
      with_obs ~metrics_out ~trace_out @@ fun () ->
      (* batch runs cache by default; --no-cache switches it off *)
      let store = open_store ~cache:true ~no_cache ~cache_dir in
      let cfg =
        Server.config ~max_states ~timeout_ms ?store ~prune
          ~stakeholder:Fsa_vanet.Vehicle_apa.stakeholder ()
      in
      Server.Batch.run cfg ~op ~jobs spec_paths
    in
    exit code
  in
  let op_name =
    Arg.(value & opt string "requirements"
         & info [ "op" ] ~docv:"OP"
             ~doc:"Analysis to run over each file: reach, requirements, \
                   analyze, abstract, verify or check.")
  in
  let max_states =
    Arg.(value & opt int 1_000_000
         & info [ "max-states" ] ~doc:"Per-file state bound.")
  in
  let timeout_ms =
    Arg.(value & opt int 0
         & info [ "timeout-ms" ] ~docv:"MS"
             ~doc:"Per-file wall-clock budget (0 = unlimited).")
  in
  let specs_arg =
    Arg.(non_empty & pos_all file []
         & info [] ~docv:"SPEC" ~doc:"Specification files (.fsa).")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Run one analysis over many specification files in parallel, \
             cache-aware; prints one JSON result line per file, in input \
             order.")
    Term.(const run $ verbose_arg $ op_name $ jobs_arg $ max_states
          $ timeout_ms $ prune_arg $ no_cache_arg $ cache_dir_arg
          $ metrics_out_arg $ trace_out_arg $ specs_arg)

(* --------------------------------------------------------------- *)
(* fsa stats (live daemon introspection)                            *)
(* --------------------------------------------------------------- *)

let stats_cmd =
  let module Json = Fsa_store.Json in
  (* numeric members arrive as Int or Float depending on their value *)
  let num j k =
    match Option.bind j (Json.member k) with
    | Some (Json.Int i) -> float_of_int i
    | Some (Json.Float f) -> f
    | _ -> 0.
  in
  let int j k = int_of_float (num j k) in
  let bool j k =
    match Option.bind j (Json.member k) with
    | Some (Json.Bool b) -> b
    | _ -> false
  in
  let str j k =
    Option.value ~default:""
      (Option.bind (Option.bind j (Json.member k)) Json.to_str)
  in
  let render_text result =
    let latency = Json.member "latency_ms" result in
    Fmt.pr "latency_ms  p50 %.3f  p90 %.3f  p99 %.3f  (%d requests)@."
      (num latency "p50") (num latency "p90") (num latency "p99")
      (int latency "count");
    Fmt.pr "queue_depth %d@."
      (int (Some result) "queue_depth");
    (match Option.bind (Json.member "workers" result) Json.to_list with
    | None | Some [] -> ()
    | Some workers ->
      List.iteri
        (fun i w ->
          let w = Some w in
          if bool w "busy" then
            Fmt.pr "worker %d    domain %d  busy %s trace=%s for %.1f ms  \
                    (%d handled)@."
              i (int w "domain") (str w "op") (str w "trace_id")
              (num w "for_ms") (int w "handled")
          else
            Fmt.pr "worker %d    domain %d  idle  (%d handled)@." i
              (int w "domain") (int w "handled"))
        workers);
    (match Json.member "store" result with
    | None | Some Json.Null -> Fmt.pr "store       disabled@."
    | Some store ->
      let store = Some store in
      Fmt.pr "store       %s  %d entries, %d bytes@." (str store "dir")
        (int store "entries") (int store "bytes"));
    let rec_ = Json.member "recorder" result in
    Fmt.pr "recorder    %d/%d events held, %d dropped@." (int rec_ "size")
      (int rec_ "capacity") (int rec_ "dropped")
  in
  let run socket format =
    let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect sock (Unix.ADDR_UNIX socket)
     with Unix.Unix_error (e, _, _) ->
       or_die
         (Error
            (Printf.sprintf "%s: cannot connect (%s) — is the daemon \
                             running with --socket?"
               socket (Unix.error_message e))));
    let ic = Unix.in_channel_of_descr sock in
    let oc = Unix.out_channel_of_descr sock in
    output_string oc "{\"id\":\"stats\",\"op\":\"stats\"}\n";
    flush oc;
    let line =
      match input_line ic with
      | line -> line
      | exception End_of_file ->
        or_die (Error "server closed the connection without replying")
    in
    (try Unix.close sock with Unix.Unix_error _ -> ());
    match format with
    | `Json -> print_endline line
    | (`Text | `Prom) as format -> (
      match Json.parse line with
      | Error msg -> or_die (Error ("malformed response: " ^ msg))
      | Ok resp ->
        if Json.member "ok" resp <> Some (Json.Bool true) then
          or_die (Error ("server error: " ^ line));
        let result =
          Option.value ~default:Json.Null (Json.member "result" resp)
        in
        (match format with
        | `Prom -> (
          match Option.bind (Json.member "prometheus" result) Json.to_str with
          | Some text -> print_string text
          | None -> or_die (Error "response carries no prometheus payload"))
        | `Text -> render_text result))
  in
  let socket =
    Arg.(required & opt (some string) None
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Unix-domain socket of the running daemon.")
  in
  let format_arg =
    Arg.(value
         & opt (enum [ ("text", `Text); ("json", `Json); ("prom", `Prom) ])
             `Text
         & info [ "format" ] ~docv:"FMT"
             ~doc:"Output format: text (human summary), json (the raw \
                   response line) or prom (Prometheus text exposition).")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Query a running $(b,fsa serve) daemon for live statistics: \
             latency quantiles, queue depth, per-worker in-flight state, \
             cache occupancy, flight-recorder fill and the full metrics \
             registry in Prometheus format.")
    Term.(const run $ socket $ format_arg)

let main_cmd =
  let doc = "functional security analysis for systems of systems" in
  let info = Cmd.info "fsa" ~version:"1.0.0" ~doc in
  Cmd.group info
    [ reach_cmd; requirements_cmd; analyze_cmd; abstract_cmd; scenario_cmd;
      dot_cmd; conf_cmd; simulate_cmd; export_cmd; refine_cmd; check_cmd;
      struct_cmd; sym_cmd; flow_cmd; verify_cmd; monitor_cmd; report_cmd;
      lint_cmd;
      diff_cmd; serve_cmd; batch_cmd; stats_cmd ]

let () = exit (Cmd.eval main_cmd)
