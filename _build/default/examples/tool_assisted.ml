(* The tool-assisted requirements identification of Sect. 5, end to end:

     1. APA models of the vehicles (Fig. 5) and their composition into
        SoS instances (Figs. 6 and 8),
     2. reachability graphs (Figs. 7 and 9),
     3. minima and maxima identification (Example 6),
     4. abstraction: minimal automata of homomorphic images focused on one
        (minimum, maximum) pair (Figs. 10 and 11),
     5. the derived requirement sets,
     6. simplicity of the homomorphisms and temporal-logic checks on the
        abstract behaviour.

   Run with: dune exec examples/tool_assisted.exe *)

module V = Fsa_vanet.Vehicle_apa
module Lts = Fsa_lts.Lts
module Hom = Fsa_hom.Hom
module Ctl = Fsa_mc.Ctl
module Analysis = Fsa_core.Analysis

let section title = Fmt.pr "@.=== %s ===@." title

let () =
  section "APA model of a vehicle (Fig. 5)";
  Fmt.pr "%a@." Fsa_apa.Apa.pp (V.vehicle ~esp_init:[ V.sw ] ~gps_init:[ V.pos1 ] 1);

  section "SoS instance with two vehicles (Example 5 / Fig. 6)";
  let apa2 = V.two_vehicles () in
  Fmt.pr "%a@." Fsa_apa.Apa.pp apa2;
  Fmt.pr "initial state:@.%a@." Fsa_apa.Apa.State.pp
    (Fsa_apa.Apa.initial_state apa2);

  section "Reachability graph (Fig. 7) and minima/maxima (Example 6)";
  let lts2 = Lts.explore apa2 in
  Fmt.pr "%a@." Lts.pp_stats (Lts.stats lts2);
  Fmt.pr "%a@." Lts.pp_min_max lts2;

  section "Requirements of the two-vehicle instance (Sect. 5.4)";
  let report2 = Analysis.tool ~stakeholder:V.stakeholder apa2 in
  Fmt.pr "%a@." Fsa_requirements.Auth.pp_set report2.Analysis.t_requirements;

  section "SoS instance with four vehicles (Fig. 8) and its graph (Fig. 9)";
  let apa4 = V.four_vehicles () in
  let lts4 = Lts.explore apa4 in
  Fmt.pr "%a@." Lts.pp_stats (Lts.stats lts4);
  Fmt.pr "%a@." Lts.pp_min_max lts4;

  section "Abstraction: minimal automaton for (V1_sense, V2_show) (Fig. 10)";
  let h10 = Hom.preserve [ V.v_sense 1; V.v_show 2 ] in
  Fmt.pr "%s@." (Hom.describe_dfa (Hom.minimal_automaton h10 lts4));
  Fmt.pr "%s@." (Hom.dot ~name:"fig10" h10 lts4);
  Fmt.pr "simple: %b — dependence: %b@." (Hom.is_simple h10 lts4)
    (Hom.depends_abstract lts4 ~min_action:(V.v_sense 1) ~max_action:(V.v_show 2));

  section "Abstraction: minimal automaton for (V1_sense, V4_show) (Fig. 11)";
  let h11 = Hom.preserve [ V.v_sense 1; V.v_show 4 ] in
  Fmt.pr "%s@." (Hom.describe_dfa (Hom.minimal_automaton h11 lts4));
  Fmt.pr "%s@." (Hom.dot ~name:"fig11" h11 lts4);
  Fmt.pr "simple: %b — dependence: %b@." (Hom.is_simple h11 lts4)
    (Hom.depends_abstract lts4 ~min_action:(V.v_sense 1) ~max_action:(V.v_show 4));

  section "Requirement set of the four-vehicle scenario (Sect. 5.5)";
  let report4 = Analysis.tool ~stakeholder:V.stakeholder apa4 in
  Fmt.pr "%a@." Fsa_requirements.Auth.pp_set report4.Analysis.t_requirements;

  section "Temporal-logic checks (the tool's TL component)";
  (* Concretely: in no reachable state is the warning shown while the
     sensing is still pending — AG (enabled(V2_show) => not enabled(V1_sense))
     does not hold in general, but the liveness-flavoured check "on every
     path the warning display is eventually preceded by sensing" is the
     dependence property; here we check a safety property on the concrete
     graph and the same property on the abstract behaviour. *)
  let f =
    Ctl.AG (Ctl.Implies (Ctl.deadlock, Ctl.Not (Ctl.enabled_action (V.v_show 2))))
  in
  Fmt.pr "concrete |= %a : %b@." Ctl.pp f (Ctl.On_lts.check lts2 f);
  let habs = Hom.preserve [ V.v_sense 1; V.v_show 2 ] in
  let fabs = Ctl.EF (Ctl.enabled_action (V.v_show 2)) in
  Fmt.pr "abstract |= %a : %b (homomorphism simple: %b)@." Ctl.pp fabs
    (Ctl.check_abstract habs lts2 fabs)
    (Hom.is_simple habs lts2);

  section "Cross-validation with the manual path";
  let manual = Analysis.manual (Fsa_vanet.Scenario.pairs_concrete 2) in
  let check =
    Analysis.crosscheck ~map:V.manual_action_of_label
      ~manual_requirements:manual.Analysis.m_requirements
      ~tool_requirements:report4.Analysis.t_requirements
  in
  Fmt.pr "%a@." Analysis.pp_crosscheck check
