(** Self-similarity of parameterised behaviours (Sect. 6 outlook).

    A family is self-similar on a range when abstracting the behaviour of
    the (n+1)-component instance onto the alphabet of the n-component
    instance yields exactly the n-component behaviour.  Checked via
    language equivalence of minimal automata. *)

module Action = Fsa_term.Action
module Apa = Fsa_apa.Apa
module Lts = Fsa_lts.Lts
module Hom = Fsa_hom.Hom

val abstraction_equal : bigger:Lts.t -> smaller:Lts.t -> hom:Hom.t -> bool

type step = { parameter : int; similar : bool }
type report = { steps : step list; self_similar : bool }

val pp_report : report Fmt.t

val check_family :
  ?max_states:int ->
  family:(int -> Apa.t) ->
  hom_for:(int -> Hom.t) ->
  int list ->
  report

type family_verification = {
  fv_base : bool;
  fv_steps : report;
  fv_abstract_checks : (int * bool) list;
  fv_holds : bool;
}

val pp_family_verification : family_verification Fmt.t

val hom_to_base : hom_for:(int -> Hom.t) -> base:int -> int -> Hom.t
(** The composed abstraction from family(n) down to the base alphabet. *)

val verify_uniform_safety :
  ?max_states:int ->
  family:(int -> Apa.t) ->
  hom_for:(int -> Hom.t) ->
  base:int ->
  range:int list ->
  Fsa_mc.Pattern.t ->
  family_verification
(** Inductive verification of a safety pattern over the family: base case
    plus self-similarity steps; the per-instance abstract checks are a
    sanity net.  @raise Invalid_argument on liveness patterns. *)

val chain_hom : int -> Hom.t
(** chain(n+1) → chain(n): hide the new receiver, rename [Vn_fwd] to
    [Vn_show]. *)

val pairs_hom : int -> Hom.t
(** pairs(k+1) → pairs(k): hide the additional pair. *)

val check_chain : ?range:int list -> unit -> report
val check_pairs : ?range:int list -> unit -> report
