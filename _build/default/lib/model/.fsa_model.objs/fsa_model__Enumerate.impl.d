lib/model/enumerate.ml: Action_graph Component Flow Fsa_term List Option Printf Sos String
