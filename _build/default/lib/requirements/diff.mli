(** Change-impact analysis: the security effect of a model change is the
    difference of the derived requirement sets plus classification
    changes. *)

module Sos = Fsa_model.Sos

type reclassification = {
  rc_requirement : Auth.t;
  rc_before : Classify.class_;
  rc_after : Classify.class_;
}

type t = {
  added : Auth.t list;
  removed : Auth.t list;
  kept : Auth.t list;
  reclassified : reclassification list;
}

val compare_models :
  ?stakeholder:(Fsa_term.Action.t -> Fsa_term.Agent.t) ->
  before:Sos.t ->
  after:Sos.t ->
  unit ->
  t

val is_neutral : t -> bool
val pp : t Fmt.t
