(** Complete Markdown analysis reports: model statistics, boundary
    actions, classified authenticity requirements, confidentiality
    inference and refinement summaries. *)

module Action = Fsa_term.Action
module Agent = Fsa_term.Agent
module Sos = Fsa_model.Sos

type options = {
  with_confidentiality : bool;
  with_refinement : bool;
  stakeholder : Action.t -> Agent.t;
}

val default_options : options

val markdown : ?options:options -> Sos.t -> string
