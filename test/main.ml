let () =
  Alcotest.run "fsa"
    [ ("term", Test_term.suite);
      ("graph", Test_graph.suite);
      ("order", Test_order.suite);
      ("model", Test_model.suite);
      ("requirements", Test_requirements.suite);
      ("apa", Test_apa.suite);
      ("lts", Test_lts.suite);
      ("automata", Test_automata.suite);
      ("hom", Test_hom.suite);
      ("mc", Test_mc.suite);
      ("spec", Test_spec.suite);
      ("check", Test_check.suite);
      ("struct", Test_struct.suite);
      ("vanet", Test_vanet.suite);
      ("core", Test_core.suite);
      ("confidentiality", Test_confidentiality.suite);
      ("pattern", Test_pattern.suite);
      ("param", Test_param.suite);
      ("refine", Test_refine.suite);
      ("cyclic", Test_cyclic.suite);
      ("monitor", Test_monitor.suite);
      ("threat", Test_threat.suite);
      ("sim", Test_sim.suite);
      ("diagnostics", Test_diagnostics.suite);
      ("random", Test_random.suite);
      ("report", Test_report.suite);
      ("enumerate", Test_enumerate.suite);
      ("grid", Test_grid.suite);
      ("apa_of_model", Test_apa_of_model.suite);
      ("prioritise", Test_prioritise.suite);
      ("diff_lint", Test_diff_lint.suite);
      ("platoon", Test_platoon.suite);
      ("spec_random", Test_spec_random.suite);
      ("obs", Test_obs.suite);
      ("store", Test_store.suite);
      ("server", Test_server.suite) ]
