(* Tests for the static information-flow analysis: soundness of
   --prune-flow (requirements reports byte-identical with and without
   the flow pruner across every bundled example spec x jobs x --reduce
   kind x shared abstraction on/off), the guard-kill refinement, the
   leak / unsanitized-flow diagnostics on the deliberately leaky
   example, static-flow attribution of pruned pairs, and determinism of
   the check --json diagnostic order under declaration permutation and
   reformatting. *)

module Apa = Fsa_apa.Apa
module Sym = Fsa_sym.Sym
module Analysis = Fsa_core.Analysis
module Auth = Fsa_requirements.Auth
module Parser = Fsa_spec.Parser
module Elaborate = Fsa_spec.Elaborate
module Flow = Fsa_flow.Flow
module Check = Fsa_check.Check
module D = Fsa_check.Diagnostic
module V = Fsa_vanet.Vehicle_apa

let render r = Fmt.str "%a" Analysis.pp_tool_report r

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

let flow_of spec apa =
  Flow.build
    ~attribution:(Check.flow_attribution (Elaborate.skeleton_of_spec spec))
    apa

(* ------------------------------------------------------------------ *)
(* Soundness: --prune-flow never changes the derived requirements      *)
(* ------------------------------------------------------------------ *)

(* The baseline is one unpruned run per (model, reduction):
   pp_tool_report prints no timings and only dependent matrix entries,
   so it is invariant under jobs, engine and pruning — exactly the
   byte-identity the pruner must preserve. *)
let check_flow_sound name ?guard_sig ~flow apa =
  let stakeholder = V.stakeholder in
  List.iter
    (fun kind ->
      let reduce = Option.map (fun k -> Sym.plan ?guard_sig k apa) kind in
      let base = Analysis.tool ?reduce ~stakeholder apa in
      let base_report = render base in
      List.iter
        (fun jobs ->
          List.iter
            (fun shared ->
              let pruned =
                Analysis.tool ~jobs ?reduce ~shared ~flow ~stakeholder apa
              in
              let label =
                Printf.sprintf "%s/--reduce %s/jobs %d/shared %b" name
                  (match kind with
                  | None -> "none"
                  | Some k -> Sym.kind_to_string k)
                  jobs shared
              in
              Alcotest.(check string)
                (label ^ ": report byte-identical under --prune-flow")
                base_report (render pruned);
              Alcotest.(check bool)
                (label ^ ": requirement sets identical")
                true
                (Auth.equal_set base.Analysis.t_requirements
                   pruned.Analysis.t_requirements))
            [ true; false ])
        [ 1; 2; 4 ];
      (* both pruners together: structural attribution wins, the
         requirements still cannot change *)
      let both =
        Analysis.tool ?reduce ~prune:true ~flow ~stakeholder apa
      in
      Alcotest.(check string)
        (name ^ ": report byte-identical under --prune-static --prune-flow")
        base_report (render both))
    [ None; Some Sym.Sym; Some Sym.Sym_por ]

let test_flow_sound_specs () =
  match Test_check.spec_dir () with
  | None -> ()
  | Some dir ->
    let analysed = ref 0 in
    List.iter
      (fun path ->
        match Parser.parse_file path with
        | exception _ -> ()
        | spec -> (
          match Elaborate.apa_of_spec spec with
          | exception (Fsa_spec.Loc.Error _ | Invalid_argument _) -> ()
          | apa ->
            incr analysed;
            let sigs = Elaborate.guard_signatures spec in
            let guard_sig n = List.assoc_opt n sigs in
            check_flow_sound (Filename.basename path) ~guard_sig
              ~flow:(flow_of spec apa) apa))
      (Test_check.example_files dir);
    Alcotest.(check bool) "at least one spec analysed" true (!analysed > 0)

(* Pairs only the flow pruner skips are attributed "static-flow"; with
   the structural pruner also on, its "static" attribution wins. *)
let leaky_source =
  {|
component Gateway {
  state key = { }
  state buf = { }
  state probe = { }
  state panel = { }
  shared radio

  action load:  take key(_k) -> put buf(_k)
  action bcast: take buf(_k) -> put radio(pkt(self, _k))
  action diag:  take probe(_p) -> put panel(ok(_p))
}

component Sensor {
  state inbox = { }
  state alert = { }
  shared radio

  action recv: take radio(pkt(_g, _k)) -> put inbox(_k)
  action show: take inbox(_x) -> put alert(notify(_x))
}

instance G  = Gateway(1) { key = { k0 }, probe = { p0 } }
instance S1 = Sensor(2) { }
|}

let leaky () =
  let spec = Parser.parse_string leaky_source in
  let apa = Elaborate.apa_of_spec spec in
  (spec, apa)

let pruned_by r =
  List.filter_map
    (fun pt -> pt.Analysis.pt_pruned_by)
    r.Analysis.t_timings.Analysis.ph_pairs

let test_static_flow_attribution () =
  let spec, apa = leaky () in
  let flow = flow_of spec apa in
  let r = Analysis.tool ~flow ~stakeholder:V.stakeholder apa in
  let by = pruned_by r in
  Alcotest.(check bool) "flow alone prunes pairs" true (by <> []);
  List.iter
    (fun by -> Alcotest.(check string) "attributed static-flow" "static-flow" by)
    by;
  let both = Analysis.tool ~prune:true ~flow ~stakeholder:V.stakeholder apa in
  List.iter
    (fun by -> Alcotest.(check string) "static wins attribution" "static" by)
    (pruned_by both);
  Alcotest.(check int) "same pairs pruned either way" (List.length by)
    (List.length (pruned_by both));
  let unpruned = Analysis.tool ~stakeholder:V.stakeholder apa in
  Alcotest.(check (list string)) "no attribution without pruners" []
    (pruned_by unpruned)

(* ------------------------------------------------------------------ *)
(* The flow graph itself                                               *)
(* ------------------------------------------------------------------ *)

let test_leak_detected () =
  let spec, apa = leaky () in
  let g = flow_of spec apa in
  Alcotest.(check (list string)) "protected component" [ "G_key" ]
    (Flow.protected_components g);
  Alcotest.(check (list string)) "shared channel" [ "radio" ]
    (Flow.shared_channels g);
  (match Flow.leaks g with
  | [ lk ] ->
    Alcotest.(check string) "leak source" "G_key" lk.Flow.lk_source;
    Alcotest.(check string) "leak channel" "radio" lk.Flow.lk_channel;
    Alcotest.(check (list string)) "shortest witness"
      [ "G_load"; "G_bcast" ] lk.Flow.lk_rules
  | lks -> Alcotest.failf "expected exactly one leak, got %d" (List.length lks));
  (match Flow.unsanitized g with
  | [ e ] ->
    Alcotest.(check string) "unsanitized src" "G_bcast" e.Flow.e_src;
    Alcotest.(check string) "unsanitized dst" "S1_recv" e.Flow.e_dst;
    Alcotest.(check bool) "cross-instance" true e.Flow.e_cross
  | es ->
    Alcotest.failf "expected exactly one unsanitized flow, got %d"
      (List.length es));
  Alcotest.(check bool) "diag independent of the leak" true
    (Flow.independent g ~min:"G_diag" ~max:"S1_show");
  Alcotest.(check bool) "show depends on load" false
    (Flow.independent g ~min:"G_load" ~max:"S1_show")

(* The self-reception guard (v != self) is statically decided by the
   unifier: the producer's own put can never pass its own receive
   guard, so the (send, self rec) edge is killed — while the
   cross-vehicle edges survive. *)
let test_guard_kills () =
  match Test_check.spec_dir () with
  | None -> ()
  | Some dir ->
  let spec = Parser.parse_file (Filename.concat dir "two_vehicles.fsa") in
  let g = flow_of spec (Elaborate.apa_of_spec spec) in
  let kills = Flow.kills g in
  Alcotest.(check int) "two self-reception kills" 2 (List.length kills);
  List.iter
    (fun k ->
      Alcotest.(check string) "killed on the shared net" "net"
        k.Flow.k_component;
      Alcotest.(check bool) "a self pair" true
        (String.equal k.Flow.k_src "V1_send"
         && String.equal k.Flow.k_dst "V1_rec"
        || String.equal k.Flow.k_src "V2_send"
           && String.equal k.Flow.k_dst "V2_rec"))
    kills;
  Alcotest.(check bool) "cross edge survives" true
    (List.exists
       (fun e ->
         String.equal e.Flow.e_src "V1_send"
         && String.equal e.Flow.e_dst "V2_rec")
       (Flow.edges g));
  Alcotest.(check bool) "killed edge absent" false
    (List.exists
       (fun e ->
         String.equal e.Flow.e_src "V1_send"
         && String.equal e.Flow.e_dst "V1_rec")
       (Flow.edges g))

(* Refined reachability is a subgraph of the skeleton's, so the flow
   pruner can only prune a superset of the skeleton-independent
   pairs. *)
let test_refinement_is_monotone () =
  match Test_check.spec_dir () with
  | None -> ()
  | Some dir ->
    List.iter
      (fun path ->
        match Parser.parse_file path with
        | exception _ -> ()
        | spec -> (
          match Elaborate.apa_of_spec spec with
          | exception (Fsa_spec.Loc.Error _ | Invalid_argument _) -> ()
          | apa ->
            let g = flow_of spec apa in
            Alcotest.(check bool)
              (Filename.basename path
              ^ ": flow independence >= skeleton independence")
              true
              (Flow.independent_pairs g >= Flow.skeleton_independent_pairs g)))
      (Test_check.example_files dir)

let test_report_renderers () =
  let spec, apa = leaky () in
  let g = flow_of spec apa in
  let rpt = Flow.analyse g in
  let text = Fmt.str "%a" Flow.pp_report rpt in
  Alcotest.(check bool) "text names the leak" true
    (contains ~affix:"G_key" text && contains ~affix:"radio" text);
  let json = Flow.report_to_json rpt in
  Alcotest.(check string) "json deterministic" json
    (Flow.report_to_json (Flow.analyse (flow_of spec apa)));
  Alcotest.(check bool) "json carries the leak" true
    (contains ~affix:"\"leaks\"" json && contains ~affix:"G_key" json);
  let dot = Flow.to_dot g in
  Alcotest.(check bool) "dot marks the protected component" true
    (contains ~affix:"G_key" dot);
  Alcotest.(check bool) "dot marks the shared channel" true
    (contains ~affix:"doubleoctagon" dot)

(* ------------------------------------------------------------------ *)
(* check --json determinism under permutation and reformatting         *)
(* ------------------------------------------------------------------ *)

(* The same model with declarations permuted and reformatted (blank
   lines shift every location).  Diagnostics are sorted by
   file/location/code, so the rendered order differs only through the
   locations — the (code, message) content must be identical. *)
let leaky_permuted =
  {|

component Sensor {

  state inbox = { }
  state alert = { }
  shared radio

  action recv: take radio(pkt(_g, _k)) -> put inbox(_k)

  action show: take inbox(_x) -> put alert(notify(_x))
}

component Gateway {
  state key = { }

  state buf = { }
  state probe = { }
  state panel = { }
  shared radio

  action bcast: take buf(_k) -> put radio(pkt(self, _k))
  action load:  take key(_k) -> put buf(_k)
  action diag:  take probe(_p) -> put panel(ok(_p))
}

instance S1 = Sensor(2) { }
instance G  = Gateway(1) { key = { k0 }, probe = { p0 } }
|}

let codes_and_messages ds =
  List.sort compare (List.map (fun d -> (d.D.code, d.D.message)) ds)

let test_check_json_deterministic () =
  let ds = Check.spec ~file:"leaky.fsa" ~deep:true
      (Parser.parse_string leaky_source)
  in
  let ds' = Check.spec ~file:"leaky.fsa" ~deep:true
      (Parser.parse_string leaky_permuted)
  in
  Alcotest.(check (list (pair string string)))
    "same findings under declaration permutation"
    (codes_and_messages ds) (codes_and_messages ds');
  Alcotest.(check bool) "the leak is among them" true
    (List.exists (fun d -> d.D.code = "FSA060") ds);
  (* the rendered order is the diagnostic sort order (file, location,
     code, ...), independent of emission order *)
  let sorted_render ds = D.render_json (List.rev ds) in
  Alcotest.(check string) "render sorts internally" (D.render_json ds)
    (sorted_render ds);
  Alcotest.(check string) "byte-identical across runs" (D.render_json ds)
    (D.render_json
       (Check.spec ~file:"leaky.fsa" ~deep:true
          (Parser.parse_string leaky_source)))

let suite =
  [ Alcotest.test_case "--prune-flow sound on example specs" `Slow
      test_flow_sound_specs;
    Alcotest.test_case "static-flow attribution" `Quick
      test_static_flow_attribution;
    Alcotest.test_case "leak and unsanitized flow detected" `Quick
      test_leak_detected;
    Alcotest.test_case "guard kills self-reception" `Quick test_guard_kills;
    Alcotest.test_case "refinement monotone vs skeleton" `Quick
      test_refinement_is_monotone;
    Alcotest.test_case "flow report renderers" `Quick test_report_renderers;
    Alcotest.test_case "check --json deterministic under permutation" `Quick
      test_check_json_deterministic ]
