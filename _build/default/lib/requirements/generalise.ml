(* First-order generalisation of requirement families (Sect. 4.4).

   Across a family of SoS instances most requirements recur verbatim
   while families of requirements differ only in instance indices — e.g.
   the paper's

     auth(pos(GPS_2, pos), show(HMI_w, warn), D_w),
     auth(pos(GPS_3, pos), show(HMI_w, warn), D_w), ...

   which the paper expresses "in terms of first-order predicates":

     forall x in V_forward : auth(pos(GPS_x, pos), show(HMI_w, warn), D_w)

   Indices may co-vary across the whole triple (platoon-style families
   such as auth(gap(RAD_x), actuate(THR_x), Passenger_x)); a requirement
   generalises when all of its concrete instance indices are equal, so a
   single quantified variable covers them.  The [domain_of] oracle names
   the quantification domain of an agent; agents without a domain never
   generalise. *)

module Action = Fsa_term.Action
module Agent = Fsa_term.Agent

type t =
  | Concrete of Auth.t
  | Forall of { var : string; domain : string; schema : Auth.t }

let pp ppf = function
  | Concrete r -> Auth.pp ppf r
  | Forall { var; domain; schema } ->
    Fmt.pf ppf "forall %s in %s : %a" var domain Auth.pp schema

let compare a b =
  match a, b with
  | Concrete x, Concrete y -> Auth.compare x y
  | Concrete _, Forall _ -> -1
  | Forall _, Concrete _ -> 1
  | Forall f, Forall g ->
    let c = String.compare f.var g.var in
    if c <> 0 then c
    else
      let c = String.compare f.domain g.domain in
      if c <> 0 then c else Auth.compare f.schema g.schema

let equal a b = compare a b = 0

(* ------------------------------------------------------------------ *)
(* Index analysis of one requirement                                    *)
(* ------------------------------------------------------------------ *)

let agents_of r =
  (match Action.actor (Auth.cause r) with Some a -> [ a ] | None -> [])
  @ (match Action.actor (Auth.effect r) with Some a -> [ a ] | None -> [])
  @ [ Auth.stakeholder r ]

(* The single concrete instance index of a requirement, when all of its
   concretely indexed agents agree on one; [None] otherwise (no concrete
   index, or conflicting ones). *)
let instance_index r =
  let concrete =
    List.filter_map
      (fun a ->
        match Agent.index a with Agent.Concrete i -> Some i | _ -> None)
      (agents_of r)
  in
  match List.sort_uniq Int.compare concrete with
  | [ i ] -> Some i
  | [] | _ :: _ -> None

(* The quantification domain of a requirement: the unique domain assigned
   by [domain_of] to its concretely indexed agents. *)
let domain_of_requirement ~domain_of r =
  let domains =
    List.filter_map
      (fun a ->
        match Agent.index a with
        | Agent.Concrete _ -> domain_of a
        | Agent.Symbolic _ | Agent.Unindexed -> None)
      (agents_of r)
  in
  match List.sort_uniq String.compare domains with
  | [ d ] -> Some d
  | [] | _ :: _ -> None

(* The grouping key forgets concrete indices everywhere (shapes), keeping
   symbolic and unindexed agents fixed. *)
let agent_shape a =
  let role = Agent.role a in
  match Agent.index a with
  | Agent.Concrete _ -> (role, "#")
  | Agent.Symbolic s -> (role, "s:" ^ s)
  | Agent.Unindexed -> (role, "u")

type family_key = {
  k_cause : Action.shape;
  k_cause_agent : (string * string) option;
  k_effect : Action.shape;
  k_effect_agent : (string * string) option;
  k_stakeholder : string * string;
  k_domain : string;
}

let compare_key a b = Stdlib.compare a b

let key_of ~domain r =
  { k_cause = Action.shape (Auth.cause r);
    k_cause_agent = Option.map agent_shape (Action.actor (Auth.cause r));
    k_effect = Action.shape (Auth.effect r);
    k_effect_agent = Option.map agent_shape (Action.actor (Auth.effect r));
    k_stakeholder = agent_shape (Auth.stakeholder r);
    k_domain = domain }

(* Replace every concrete instance index of the requirement by the
   quantified variable. *)
let schema_of ~var r =
  let quantify = function
    | Agent.Concrete _ -> Agent.Symbolic var
    | (Agent.Symbolic _ | Agent.Unindexed) as idx -> idx
  in
  Auth.make
    ~cause:(Action.reindex quantify (Auth.cause r))
    ~effect:(Action.reindex quantify (Auth.effect r))
    ~stakeholder:(Agent.reindex quantify (Auth.stakeholder r))

let generalise ?(var = "x") ?(min_family = 2) ~domain_of reqs =
  let reqs = Auth.normalise reqs in
  (* candidates: a unique concrete instance index and a unique domain *)
  let candidates, concrete =
    List.partition
      (fun r ->
        Option.is_some (instance_index r)
        && Option.is_some (domain_of_requirement ~domain_of r))
      reqs
  in
  let module M = Map.Make (struct
    type t = family_key

    let compare = compare_key
  end) in
  let families =
    List.fold_left
      (fun m r ->
        let domain = Option.get (domain_of_requirement ~domain_of r) in
        let k = key_of ~domain r in
        let existing = match M.find_opt k m with Some l -> l | None -> [] in
        M.add k (r :: existing) m)
      M.empty candidates
  in
  let generalised, kept =
    M.fold
      (fun k members (gen, kept) ->
        let distinct_indices =
          List.filter_map instance_index members |> List.sort_uniq Int.compare
        in
        if List.length distinct_indices >= min_family then
          (Forall
             { var; domain = k.k_domain;
               schema = schema_of ~var (List.hd members) }
           :: gen,
           kept)
        else (gen, members @ kept))
      families ([], [])
  in
  List.sort_uniq compare
    (List.map (fun r -> Concrete r) (concrete @ kept) @ generalised)

(* Expand a generalised requirement back to concrete form over an explicit
   domain interpretation: the inverse direction, used to check that the
   generalised set covers exactly the union of the instances' sets. *)
let expand ~domain_members t =
  match t with
  | Concrete r -> [ r ]
  | Forall { var; domain; schema } ->
    List.map
      (fun i ->
        let concretise = function
          | Agent.Symbolic s when String.equal s var -> Agent.Concrete i
          | idx -> idx
        in
        Auth.make
          ~cause:(Action.reindex concretise (Auth.cause schema))
          ~effect:(Action.reindex concretise (Auth.effect schema))
          ~stakeholder:(Agent.reindex concretise (Auth.stakeholder schema)))
      (domain_members domain)

let expand_all ~domain_members ts =
  Auth.normalise (List.concat_map (expand ~domain_members) ts)

let pp_set ppf ts =
  Fmt.pf ppf "@[<v>%a@]"
    Fmt.(list ~sep:cut (fun ppf t -> Fmt.pf ppf "- %a" pp t))
    (List.sort_uniq compare ts)
