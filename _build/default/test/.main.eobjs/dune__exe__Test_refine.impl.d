test/test_refine.ml: Alcotest Fmt Fsa_graph Fsa_model Fsa_refine Fsa_requirements Fsa_term Fsa_vanet Int List String
