(** CTL model checking over finite behaviours — the counterpart of the SH
    verification tool's temporal logic component, applicable to concrete
    reachability graphs and to abstract behaviours under a (simple)
    homomorphism. *)

module Action = Fsa_term.Action

module type MODEL = sig
  type t

  val nb_states : t -> int
  val initial : t -> int
  val succ : t -> int -> (Action.t * int) list
end

type formula =
  | True
  | False
  | Atom of string * atom
  | Not of formula
  | And of formula * formula
  | Or of formula * formula
  | Implies of formula * formula
  | EX of formula
  | AX of formula
  | EF of formula
  | AF of formula
  | EG of formula
  | AG of formula
  | EU of formula * formula
  | AU of formula * formula

and atom =
  | Enabled of (Action.t -> bool)
  | Deadlock
  | State_pred of (int -> bool)

val atom : string -> atom -> formula
val enabled : ?name:string -> (Action.t -> bool) -> formula
val enabled_action : Action.t -> formula
val deadlock : formula
val state_pred : string -> (int -> bool) -> formula
val pp : formula Fmt.t

module Make (M : MODEL) : sig
  val sat_set : M.t -> formula -> bool array
  val check : M.t -> formula -> bool
  (** Satisfaction at the initial state.  Deadlock states witness [EG]
      (maximal finite paths count as full paths). *)

  val counterexample_states : M.t -> formula -> int list
end

module Lts_model : MODEL with type t = Fsa_lts.Lts.t
module Dfa_model : MODEL with type t = Fsa_hom.Hom.A.Dfa.t
module On_lts : module type of Make (Lts_model)
module On_dfa : module type of Make (Dfa_model)

val check_abstract : Fsa_hom.Hom.t -> Fsa_lts.Lts.t -> formula -> bool
(** Approximate satisfaction: check on the minimal automaton of the
    homomorphic image (meaningful when the homomorphism is simple). *)
