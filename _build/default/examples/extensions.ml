(* Beyond the paper's published experiments: the extensions implemented in
   this library, exercised on the vehicular scenario and the EVITA-scale
   architecture.

     1. confidentiality requirements (Sect. 6 future work): forward
        information-flow analysis with a classification lattice,
     2. property-specification patterns: the derived authenticity
        requirements restated (and checked) as precedence/response
        properties of the behaviour,
     3. uniform parameterisation and self-similarity (Sect. 6 outlook):
        finite-state evidence that the requirement schema chi_i and the
        behaviour family are uniform in the number of vehicles.

   Run with: dune exec examples/extensions.exe *)

module Action = Fsa_term.Action
module Agent = Fsa_term.Agent
module Conf = Fsa_requirements.Confidentiality
module Pattern = Fsa_mc.Pattern
module Family = Fsa_param.Family
module Selfsim = Fsa_param.Selfsim
module Lts = Fsa_lts.Lts
module S = Fsa_vanet.Scenario
module V = Fsa_vanet.Vehicle_apa
module Evita = Fsa_vanet.Evita

let section title = Fmt.pr "@.=== %s ===@." title

let () =
  section "Confidentiality: who may learn the vehicle's position?";
  (* the GPS position is personal data (paper cites the privacy analysis
     of Schaub et al. as the complementary view) *)
  let labelling =
    { Conf.default_labelling with
      Conf.source_level =
        (fun a ->
          if Action.label a = "gps_acquire" then Conf.Confidential
          else Conf.Public);
      Conf.observers = Evita.stakeholder }
  in
  let reqs = Conf.derive ~labelling ~threshold:Conf.Confidential Evita.model in
  Fmt.pr "%a@." Conf.pp_set reqs;
  List.iter (fun r -> Fmt.pr "%a@." Conf.pp_prose r) reqs;

  section "Confidentiality violations under an all-internal clearance";
  let strict =
    { labelling with Conf.sink_clearance = (fun _ -> Conf.Internal) }
  in
  List.iter
    (fun v -> Fmt.pr "- %a@." Conf.pp_violation v)
    (Conf.violations ~labelling:strict Evita.model);

  section "Authenticity requirements as behavioural properties";
  let lts = Lts.explore (V.two_vehicles ()) in
  let props =
    [ Pattern.make
        (Pattern.Precedence
           (Pattern.action_is (V.v_sense 1), Pattern.action_is (V.v_show 2)));
      Pattern.make
        (Pattern.Precedence
           (Pattern.action_is (V.v_pos 2), Pattern.action_is (V.v_show 2)));
      Pattern.make
        (Pattern.Response
           (Pattern.action_is (V.v_sense 1), Pattern.action_is (V.v_show 2)));
      Pattern.make ~scope:(Pattern.Before (Pattern.action_is (V.v_send 1)))
        (Pattern.Absence (Pattern.action_is (V.v_rec 2))) ]
  in
  List.iter
    (fun p -> Fmt.pr "- %a: %a@." Pattern.pp p Pattern.pp_result (Pattern.check lts p))
    props;
  (* a deliberately false property, with its counterexample *)
  let bogus =
    Pattern.make
      (Pattern.Precedence
         (Pattern.action_is (V.v_show 2), Pattern.action_is (V.v_sense 1)))
  in
  Fmt.pr "- %a: %a@." Pattern.pp bogus Pattern.pp_result (Pattern.check lts bogus);

  section "Uniform requirement schema chi_i (Sect. 4.4)";
  let incs = Family.increments ~family:S.chain [ 3; 4; 5; 6 ] in
  List.iter
    (fun (n, added) ->
      Fmt.pr "chain(%d) adds: %a@." n Fsa_requirements.Auth.pp_set added)
    incs;
  Fmt.pr "incrementally uniform: %b@."
    (Family.incrementally_uniform ~family:S.chain [ 3; 4; 5; 6 ]);

  section "Self-similarity of the behaviour families (Sect. 6 outlook)";
  Fmt.pr "chain family:@.%a@." Selfsim.pp_report
    (Selfsim.check_chain ~range:[ 2; 3; 4; 5 ] ());
  Fmt.pr "pairs family:@.%a@." Selfsim.pp_report
    (Selfsim.check_pairs ~range:[ 1; 2 ] ());
  Fmt.pr
    "@.Together with the uniform schema, the checked range is the \
     finite-state evidence for the parameterised requirement@.  forall x \
     in V_forward : auth(pos(GPS_x, pos), show(HMI_w, warn), D_w)@.";

  section "Inductive verification of a family-level safety property";
  let property =
    Pattern.make
      (Pattern.Precedence
         (Pattern.action_is (V.v_sense 1), Pattern.action_is (V.v_show 2)))
  in
  let fv =
    Selfsim.verify_uniform_safety ~family:V.chain ~hom_for:Selfsim.chain_hom
      ~base:2 ~range:[ 2; 3; 4 ] property
  in
  Fmt.pr "property: %a@.%a@." Pattern.pp property
    Selfsim.pp_family_verification fv
