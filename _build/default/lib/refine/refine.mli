(** Refinement of end-to-end authenticity requirements into architectural
    protection options (the follow-up engineering step of Sect. 6).

    For a requirement auth(x, y, P): the {e attack surface} is every flow
    on some path from x to y; the {e minimum protection set} is a minimum
    edge cut of that surface; {e hop-by-hop} decomposition produces
    per-hop obligations along a concrete path, the alternative being one
    end-to-end obligation over a protected channel. *)

module Action = Fsa_term.Action
module Agent = Fsa_term.Agent
module Auth = Fsa_requirements.Auth
module Sos = Fsa_model.Sos
module Flow = Fsa_model.Flow

val simple_paths :
  ?limit:int -> Sos.t -> Action.t -> Action.t -> Action.t list list
(** All simple paths from cause to effect (the dependency graph is a DAG);
    at most [limit] paths are returned. *)

val channels : Sos.t -> Action.t -> Action.t -> Flow.t list
(** Every flow on some cause-to-effect path: the attack surface. *)

val min_cut : Sos.t -> Action.t -> Action.t -> Flow.t list
(** A minimum set of flows whose protection severs every path. *)

type obligation = { ob_requirement : Auth.t; ob_flow : Flow.t option }

val pp_obligation : obligation Fmt.t
val hop_stakeholder : Action.t -> Agent.t

val hop_by_hop : Sos.t -> Auth.t -> Action.t list -> obligation list
(** Decompose a requirement along a concrete path; intermediate hops are
    owed to the receiving component, the final hop to the original
    stakeholder. *)

val end_to_end : Auth.t -> obligation

type plan = {
  p_requirement : Auth.t;
  p_paths : Action.t list list;
  p_surface : Flow.t list;
  p_min_cut : Flow.t list;
  p_hop_decompositions : obligation list list;
}

val plan : ?path_limit:int -> Sos.t -> Auth.t -> plan
val pp_plan : plan Fmt.t
