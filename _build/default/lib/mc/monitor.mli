(** Runtime verification of authenticity requirements against traces.

    The runtime complement of the design-time analysis: whenever the
    effect action occurs in a trace, the cause must have occurred
    before. *)

module Action = Fsa_term.Action
module Auth = Fsa_requirements.Auth

type verdict =
  | Satisfied
  | Violated of { position : int; missing : Action.t }

val pp_verdict : verdict Fmt.t
val equal_verdict : verdict -> verdict -> bool

type t

val of_requirements : Auth.t list -> t

val step : t -> Action.t -> unit
(** Feed one event. *)

val run : Auth.t list -> Action.t list -> (Auth.t * verdict) list
(** One-shot: monitor a whole trace. *)

val verdicts : t -> (Auth.t * verdict) list
val all_satisfied : t -> bool
val violations : t -> (Auth.t * verdict) list
val pp_report : t Fmt.t
