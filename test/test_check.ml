(* Tests for Fsa_check: the spec-level static analyzer and its unified
   diagnostics. *)

module Parser = Fsa_spec.Parser
module Loc = Fsa_spec.Loc
module Check = Fsa_check.Check
module D = Fsa_check.Diagnostic

let parse s = Parser.parse_string s

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

let codes ds = List.map (fun d -> d.D.code) ds

let has_code code ds = List.mem code (codes ds)

let find_code code ds = List.find (fun d -> String.equal d.D.code code) ds

(* ------------------------------------------------------------------ *)
(* One intentionally broken spec per diagnostic code                   *)
(* ------------------------------------------------------------------ *)

let test_dead_rule () =
  (* s can only ever hold the constant [a]; the take pattern [b] is
     unsatisfiable — even though producers keep writing [b]'s shape
     nowhere *)
  let ds =
    Check.spec
      (parse
         {|component C {
             state s = { a }
             action go: take s(b) -> put s(b)
           }
           instance I = C(1) { }|})
  in
  Alcotest.(check bool) "FSA001 reported" true (has_code "FSA001" ds);
  let d = find_code "FSA001" ds in
  Alcotest.(check bool) "is an error" true (d.D.severity = D.Error);
  (match d.D.loc with
  | Some l -> Alcotest.(check int) "on the take" 3 l.Loc.line
  | None -> Alcotest.fail "dead rule diagnostic must be located")

let test_dead_producer_chain () =
  (* b's only producer is itself dead, so c's consumer is dead too —
     and the message distinguishes "all producers dead" *)
  let ds =
    Check.spec
      (parse
         {|component C {
             state a = { }
             state b = { }
             action mk: take a(x) -> put b(x)
             action use: take b(x) -> put b(done)
           }
           instance I = C(1) { }|})
  in
  (* a is never written and initially empty: mk is inert (info), and b
     stays empty so use is reported dead via its empty component *)
  Alcotest.(check bool) "FSA006 for mk" true (has_code "FSA006" ds);
  Alcotest.(check bool) "FSA001 for use" true (has_code "FSA001" ds)

let test_unbound_put_variable () =
  let ds =
    Check.spec
      (parse
         {|component C {
             state s = { a }
             action go: take s(_x) -> put s(pair(_x, _y))
           }
           instance I = C(1) { }|})
  in
  let d = find_code "FSA002" ds in
  Alcotest.(check bool) "is an error" true (d.D.severity = D.Error)

let test_unbound_guard_variable () =
  let ds =
    Check.spec
      (parse
         {|component C {
             state s = { a }
             action go: take s(_x) when _z != self -> put s(_x)
           }
           instance I = C(1) { }|})
  in
  let d = find_code "FSA003" ds in
  Alcotest.(check bool) "is a warning" true (d.D.severity = D.Warning)

let test_undeclared_component () =
  let ds =
    Check.spec
      (parse
         {|component C {
             state s = { a }
             action go: take s(_x) -> put t(_x)
           }
           instance I = C(1) { }|})
  in
  let d = find_code "FSA007" ds in
  Alcotest.(check bool) "is an error" true (d.D.severity = D.Error)

let test_unused_component () =
  let ds =
    Check.spec
      (parse
         {|component C {
             state s = { a }
             state u = { }
             action go: take s(_x) -> put s(_x)
           }
           instance I = C(1) { }|})
  in
  Alcotest.(check bool) "FSA005 reported" true (has_code "FSA005" ds)

let test_race_consume_consume () =
  let ds =
    Check.spec
      (parse
         {|component C {
             state s = { m }
             state o = { }
             action eat1: take s(_x) -> put o(one(_x))
             action eat2: take s(_x) -> put o(two(_x))
           }
           instance I = C(1) { }|})
  in
  let d = find_code "FSA010" ds in
  Alcotest.(check bool) "is a warning" true (d.D.severity = D.Warning)

let test_race_consume_read () =
  let ds =
    Check.spec
      (parse
         {|component C {
             state s = { m }
             state o = { }
             action eat: take s(_x) -> put o(ate(_x))
             action look: read s(_x) -> put o(saw(_x))
           }
           instance I = C(1) { }|})
  in
  Alcotest.(check bool) "FSA011 reported" true (has_code "FSA011" ds);
  Alcotest.(check bool) "no consume/consume race" false (has_code "FSA010" ds)

let test_race_guard_suppression () =
  (* both rules guarded: the guard may disambiguate the interleaving, so
     no race is reported *)
  let ds =
    Check.spec
      (parse
         {|component C {
             state s = { m }
             state o = { }
             action eat1: take s(_x) when _x != self -> put o(one(_x))
             action eat2: take s(_x) -> put o(two(_x))
           }
           instance I = C(1) { }|})
  in
  Alcotest.(check bool) "guarded pair suppressed" false (has_code "FSA010" ds)

let test_check_unknown_action () =
  let ds =
    Check.spec
      (parse
         {|component C {
             state s = { a }
             action go: take s(_x) -> put s(_x)
           }
           instance I = C(1) { }
           check absence I_gone|})
  in
  let d = find_code "FSA020" ds in
  Alcotest.(check bool) "is an error" true (d.D.severity = D.Error);
  Alcotest.(check bool) "suggests I_go" true
    (contains ~affix:"I_go" d.D.message)

let test_check_vacuous () =
  let ds =
    Check.spec
      (parse
         {|component C {
             state s = { a }
             action go: take s(b) -> put s(b)
           }
           instance I = C(1) { }
           check existence I_go|})
  in
  Alcotest.(check bool) "FSA021 reported" true (has_code "FSA021" ds)

let test_keep_set () =
  let alphabet = [ "I_go"; "I_stop" ] in
  let ds = Check.keep_set ~alphabet [ "I_go" ] in
  Alcotest.(check int) "known action is clean" 0 (List.length ds);
  let ds = Check.keep_set ~alphabet [ "I_gone" ] in
  Alcotest.(check bool) "FSA022 reported" true (has_code "FSA022" ds);
  Alcotest.(check bool) "FSA023 when nothing kept" true (has_code "FSA023" ds);
  let ds = Check.keep_set ~alphabet [ "I_gone"; "I_stop" ] in
  Alcotest.(check bool) "partially known keeps the abstraction" false
    (has_code "FSA023" ds)

let test_rename_map () =
  let alphabet = [ "I_go"; "I_stop" ] in
  (* renaming onto a fresh target is injective and clean *)
  let ds = Check.rename_map ~alphabet [ ("I_go", "go") ] in
  Alcotest.(check int) "injective rename is clean" 0 (List.length ds);
  (* unknown source *)
  let ds = Check.rename_map ~alphabet [ ("I_gone", "go") ] in
  Alcotest.(check bool) "FSA022 for unknown source" true (has_code "FSA022" ds);
  let d = find_code "FSA022" ds in
  Alcotest.(check bool) "did-you-mean hint" true
    (contains ~affix:"I_go" d.D.message);
  (* renaming one action onto another alphabet action merges it with
     that action's identity image *)
  let ds = Check.rename_map ~alphabet [ ("I_go", "I_stop") ] in
  Alcotest.(check bool) "FSA036 for merge with identity image" true
    (has_code "FSA036" ds);
  let d = find_code "FSA036" ds in
  Alcotest.(check bool) "names both sources" true
    (contains ~affix:"I_go" d.D.message
    && contains ~affix:"I_stop" d.D.message);
  (* two sources on one fresh target *)
  let ds = Check.rename_map ~alphabet [ ("I_go", "x"); ("I_stop", "x") ] in
  Alcotest.(check bool) "FSA036 for two sources on one target" true
    (has_code "FSA036" ds);
  (* duplicate bindings for one source follow first-binding-wins *)
  let ds = Check.rename_map ~alphabet [ ("I_go", "x"); ("I_go", "y") ] in
  Alcotest.(check bool) "duplicate source is not a merge" false
    (has_code "FSA036" ds)

let test_parse_failure_is_fsa000 () =
  let ds =
    Check.spec
      (parse
         {|component C {
             state s = { a }
             action go: take s(_x) -> put s(missing(_y))
           }
           instance I = C(1) { s = { b } }
           sos nope { use NoSuchModel(1) as M }|})
  in
  (* the sos references an unknown model: elaboration fails, but as a
     diagnostic rather than an exception *)
  Alcotest.(check bool) "FSA000 reported" true (has_code "FSA000" ds)

let test_suggest () =
  Alcotest.(check (option string)) "near miss"
    (Some "V1_send")
    (Check.suggest "V1_snd" [ "V1_send"; "V2_rec" ]);
  Alcotest.(check (option string)) "no wild guesses" None
    (Check.suggest "completely_different" [ "V1_send"; "V2_rec" ])

(* ------------------------------------------------------------------ *)
(* Renderer determinism and golden cleanliness of shipped examples     *)
(* ------------------------------------------------------------------ *)

let spec_dir () =
  List.find_opt Sys.file_exists
    [ "examples/specs"; "../../../examples/specs"; "../../../../examples/specs" ]

let example_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".fsa")
  |> List.sort String.compare
  |> List.map (Filename.concat dir)

let test_examples_clean () =
  match spec_dir () with
  | None -> ()
  | Some dir ->
    List.iter
      (fun path ->
        let ds = Check.spec ~file:path (Parser.parse_file path) in
        List.iter
          (fun d ->
            if d.D.severity <> D.Info then
              Alcotest.failf "%s: unexpected finding %a" path D.pp d)
          ds)
      (example_files dir)

let test_json_deterministic () =
  match spec_dir () with
  | None -> ()
  | Some dir ->
    let render () =
      example_files dir
      |> List.concat_map (fun p -> Check.spec ~file:p (Parser.parse_file p))
      |> D.render_json
    in
    let a = render () and b = render () in
    Alcotest.(check string) "byte-identical across runs" a b;
    Alcotest.(check bool) "non-trivial output" true (String.length a > 2)

let test_render_text_underline () =
  let ds =
    Check.spec ~file:"broken.fsa"
      (parse "component C {\n  state s = { a }\n  action go: take s(b) -> put s(b)\n}\ninstance I = C(1) { }")
  in
  let text =
    D.render_text
      ~sources:
        [ ("broken.fsa",
           "component C {\n  state s = { a }\n  action go: take s(b) -> put s(b)\n}\ninstance I = C(1) { }") ]
      ds
  in
  Alcotest.(check bool) "quotes the offending line" true
    (contains ~affix:"take s(b)" text);
  Alcotest.(check bool) "underlines it" true (contains ~affix:"^~" text)

let test_registry_complete () =
  (* every code the analyzer can emit is registered with a description *)
  List.iter
    (fun code ->
      match D.describe code with
      | Some _ -> ()
      | None -> Alcotest.failf "code %s not registered" code)
    [ "FSA000"; "FSA001"; "FSA002"; "FSA003"; "FSA004"; "FSA005"; "FSA006";
      "FSA007"; "FSA010"; "FSA011"; "FSA020"; "FSA021"; "FSA022"; "FSA023";
      "FSA030"; "FSA031"; "FSA032"; "FSA033"; "FSA034"; "FSA035";
      "FSA040"; "FSA041"; "FSA042"; "FSA043"; "FSA044"; "FSA045"; "FSA046";
      "FSA047"; "FSA048";
      "FSA060"; "FSA061"; "FSA062"; "FSA063"; "FSA064"; "FSA065" ];
  (* lint codes map into the registry *)
  List.iter
    (fun w ->
      match D.describe (Fsa_model.Lint.code w) with
      | Some _ -> ()
      | None -> Alcotest.failf "lint code %s not registered" (Fsa_model.Lint.code w))
    [ Fsa_model.Lint.Isolated_action (Fsa_term.Action.make "a");
      Fsa_model.Lint.Unconnected_component "c";
      Fsa_model.Lint.Uninfluenced_output (Fsa_term.Action.make "o") ]

let test_werror_promotion () =
  let w = D.warning ~code:"FSA010" "race" in
  let i = D.info ~code:"FSA004" "sink" in
  match D.promote_warnings [ w; i ] with
  | [ w'; i' ] ->
    Alcotest.(check bool) "warning promoted" true (w'.D.severity = D.Error);
    Alcotest.(check bool) "info untouched" true (i'.D.severity = D.Info)
  | _ -> Alcotest.fail "promotion must preserve the list"

let suite =
  [ Alcotest.test_case "dead rule (FSA001)" `Quick test_dead_rule;
    Alcotest.test_case "dead producer chain" `Quick test_dead_producer_chain;
    Alcotest.test_case "unbound put var (FSA002)" `Quick test_unbound_put_variable;
    Alcotest.test_case "unbound guard var (FSA003)" `Quick test_unbound_guard_variable;
    Alcotest.test_case "undeclared component (FSA007)" `Quick test_undeclared_component;
    Alcotest.test_case "unused component (FSA005)" `Quick test_unused_component;
    Alcotest.test_case "consume/consume race (FSA010)" `Quick test_race_consume_consume;
    Alcotest.test_case "consume/read race (FSA011)" `Quick test_race_consume_read;
    Alcotest.test_case "guards suppress races" `Quick test_race_guard_suppression;
    Alcotest.test_case "unknown check action (FSA020)" `Quick test_check_unknown_action;
    Alcotest.test_case "vacuous check (FSA021)" `Quick test_check_vacuous;
    Alcotest.test_case "keep set (FSA022/FSA023)" `Quick test_keep_set;
    Alcotest.test_case "rename map (FSA022/FSA036)" `Quick test_rename_map;
    Alcotest.test_case "elaboration failure (FSA000)" `Quick test_parse_failure_is_fsa000;
    Alcotest.test_case "did-you-mean suggestions" `Quick test_suggest;
    Alcotest.test_case "shipped examples are clean" `Quick test_examples_clean;
    Alcotest.test_case "JSON output deterministic" `Quick test_json_deterministic;
    Alcotest.test_case "text renderer underlines" `Quick test_render_text_underline;
    Alcotest.test_case "code registry complete" `Quick test_registry_complete;
    Alcotest.test_case "--werror promotion" `Quick test_werror_promotion ]
