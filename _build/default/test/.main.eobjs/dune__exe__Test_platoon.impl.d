test/test_platoon.ml: Alcotest Fsa_hom Fsa_lts Fsa_mc Fsa_requirements Fsa_term Fsa_vanet Lazy List
