(** Static symmetry detection and ample-set partial-order reduction.

    The scalability pass behind [--reduce]: a static analysis over the
    elaborated APA that makes EVITA-scale fleets of near-identical
    vehicles explorable.

    {b Symmetry.}  Instances are recovered from the [Inst_rule] naming
    convention of elaborated specifications (and of the programmatic
    scenario builders).  Two groups of instances are interchangeable
    when a joint renaming of their rule names, state components and
    identity symbols maps the APA onto itself — rule sets isomorphic up
    to the renaming, initial contents included, guards either trivially
    true or attested equivalent by the caller ([guard_sig]).  Verified
    renamings are grouped into {e orbits of blocks} (a block is a set
    of instances that always move together, e.g. a warner/receiver pair
    with its private radio cluster).  States are then canonicalised by
    sorting the blocks of each orbit by their renamed local contents;
    exploring only canonical representatives shrinks a product of [k]
    identical blocks from [n^k] states towards the multiset bound
    [C(n+k-1, k)].

    Canonicalisation is refused (the orbit is kept in the report but
    marked non-reducible) when an instance identity can leak outside
    its own block's components — then per-block signatures would not
    determine the state and the quotient could be inconsistent.

    {b Partial order.}  Rules are partitioned into {e modules}: the
    connected components of the static interference relation
    ({!Fsa_struct.Structural.interferes}).  Rules in different modules
    can neither enable, disable nor feed each other, so expanding only
    one module's transitions in a state is a persistent (ample) set:
    C0 (non-empty), C1 (isolation) hold by construction, C2 is handled
    by always expanding the initial state in full, and C3 (no
    ignoring) by only ever choosing statically terminating modules
    (every rule consumes, intra-module token flow acyclic).  When any
    condition fails the state is expanded in full.

    Soundness gate: on every model that completes un-reduced, the
    reduced analysis produces the identical requirement set
    ({!Fsa_core.Analysis} re-derives per-instance requirements from the
    quotient through the recorded permutations). *)

module Term = Fsa_term.Term
module Action = Fsa_term.Action
module Apa = Fsa_apa.Apa
module State = Fsa_apa.Apa.State
module Structural = Fsa_struct.Structural

exception Unsupported of string
(** Raised (by reduction consumers) when a model steps outside what the
    static analysis verified — e.g. a transition whose label is not the
    default rule-name labelling, which the recorded renamings could not
    soundly rewrite.  Callers fall back to unreduced exploration. *)

(** {1 Permutations}

    A permutation of the model's name spaces: state components, rule
    names and identity symbols.  Only non-identity bindings are
    stored. *)
module Perm : sig
  type t

  val id : t
  val is_id : t -> bool
  val equal : t -> t -> bool

  val compose : t -> t -> t
  (** [compose a b] applies [b] first, then [a]. *)

  val inverse : t -> t
  val comp : t -> string -> string
  val rule : t -> string -> string

  val apply_term : t -> Term.t -> Term.t
  (** Rewrites identity symbols ([Sym]) through the symbol map. *)

  val apply_state : t -> State.t -> State.t
  (** Renames component keys and rewrites stored terms. *)

  val apply_action : t -> Action.t -> Action.t
  (** Rewrites the label through the rule map and the argument terms
      through the symbol map; the actor is left unchanged. *)

  val key : t -> string
  (** Canonical encoding, usable as a hash/visited-set key. *)

  val pp : t Fmt.t
end

(** {1 Orbit detection} *)

type block = {
  b_instances : string list;  (** member instances, sorted *)
  b_comps : string list;  (** components owned by the block, sorted *)
  b_rules : string list;  (** rules of the member instances, sorted *)
  b_from_ref : Perm.t;
      (** maps the orbit's reference block (names, rules, identities)
          to this block; the identity for the reference block itself *)
}

type orbit = {
  o_blocks : block list;  (** at least two; the first is the reference *)
  o_reducible : bool;
      (** [false] when canonicalisation was refused (identity leak) *)
  o_why : string;  (** reason when not reducible, [""] otherwise *)
}

type rejection = {
  j_a : string;
  j_b : string;  (** the candidate instance pair that failed *)
  j_reason : [ `Guard | `Initial | `Rules | `Ambiguous ];
  j_detail : string;
}

type report = {
  r_instances : (string * string list) list;
      (** instance name -> owned state components (both sorted) *)
  r_orbits : orbit list;
  r_rejected : rejection list;
      (** same-shape candidate pairs that are not interchangeable *)
  r_attested_guards : string list;
      (** rules with non-trivial guards accepted only because
          [guard_sig] attested equivalence — worth a diagnostic note *)
}

val detect : ?guard_sig:(string -> string option) -> Apa.t -> report
(** Detect component-permutation symmetry.  [guard_sig] maps a rule
    name to a canonical signature of its guard ([None] = unknown): two
    non-trivially guarded rules are only considered equivalent when
    their signatures are equal — spec-driven callers derive signatures
    from the guard syntax, programmatic callers may attest equivalence
    of their guard closures.  Without [guard_sig], any non-trivial
    guard breaks symmetry. *)

val group_order : report -> float
(** Order of the detected symmetry group over the reducible orbits
    (product of factorials of orbit sizes) — an upper bound on the
    state-space reduction factor. *)

val pp_report : report Fmt.t

val report_to_json : report -> string
(** Deterministic JSON object (fixed key order, trailing newline). *)

(** {1 State canonicalisation} *)

type canonizer

val canonizer : report -> canonizer
(** Canonicaliser over the report's reducible orbits.  The memo table
    inside is guarded by a mutex; safe to share across domains. *)

val nontrivial : canonizer -> bool
(** [true] when at least one reducible orbit exists. *)

val canonical : canonizer -> State.t -> State.t * Perm.t
(** [canonical c s] is [(rep, p)] with [rep = Perm.apply_state p s] the
    canonical representative of [s]'s orbit under the symmetry group.
    Consistent: all states of one orbit map to the same [rep]. *)

(** {1 Ample sets} *)

type por

val por_plan : Apa.t -> Structural.net -> por
(** Partition the net's rules into interference modules and certify
    which are statically terminating (usable as ample sets). *)

type por_module = {
  m_rules : string list;  (** sorted *)
  m_reducible : bool;
  m_why : string;  (** reason when not reducible, [""] otherwise *)
}

val por_modules : por -> por_module list

val ample :
  por ->
  State.t ->
  (Apa.rule * Action.t * State.t) list ->
  (Apa.rule * Action.t * State.t) list
(** Restrict a state's enabled transitions to an ample subset: the
    highest-priority terminating module with enabled rules, when at
    least two modules are active and the state is not the initial one;
    the full list otherwise.  A pure function of the state, so
    sequential and parallel exploration agree. *)

(** {1 Reduction plans} *)

type kind = Sym | Por | Sym_por

val kind_of_string : string -> kind option
(** Recognises ["sym"], ["por"], ["sym+por"]. *)

val kind_to_string : kind -> string

type plan = {
  pl_kind : kind;
  pl_report : report;
  pl_canonizer : canonizer option;  (** [Some] for [Sym]/[Sym_por] *)
  pl_por : por option;  (** [Some] for [Por]/[Sym_por] *)
  pl_net : Structural.net;
  pl_indep : (string -> string -> bool) Lazy.t;
      (** the spec-wide flow-independence matrix, built once and shared
          with {!Fsa_core.Analysis}'s static pruning *)
}

val plan : ?guard_sig:(string -> string option) -> kind -> Apa.t -> plan

val canon_fn : plan -> (State.t -> State.t) option
(** The canonicalisation hook for {!Fsa_lts.Lts.explore}'s [?reduce]. *)

val ample_fn :
  plan ->
  (State.t ->
  (Apa.rule * Action.t * State.t) list ->
  (Apa.rule * Action.t * State.t) list)
  option
(** The ample-set hook for {!Fsa_lts.Lts.explore}'s [?reduce]. *)
