(* Recursive-descent parser for the specification language.  Keywords are
   context sensitive (they lex as identifiers), so component or action
   names may reuse them freely outside their governing position. *)

open Ast

let keyword lx kw =
  let tok, loc = Lexer.next lx in
  match tok with
  | Token.Ident s when String.equal s kw -> loc
  | tok -> Loc.error loc "expected keyword %S, found %a" kw Token.pp tok

let is_keyword lx kw =
  match Lexer.peek lx with
  | Token.Ident s, _ -> String.equal s kw
  | _, _ -> false

(* sterm := INT | "self" | IDENT [ "(" sterm ("," sterm)* ")" ] *)
let rec parse_sterm lx =
  match Lexer.next lx with
  | Token.Int i, _ -> S_int i
  | Token.Ident "self", _ -> S_self
  | Token.Ident id, _ ->
    if Lexer.accept lx Token.Lparen then begin
      let args = parse_sterm_list lx in
      ignore (Lexer.expect lx Token.Rparen);
      S_app (id, args)
    end
    else S_app (id, [])
  | tok, loc -> Loc.error loc "expected a term, found %a" Token.pp tok

and parse_sterm_list lx =
  let first = parse_sterm lx in
  if Lexer.accept lx Token.Comma then first :: parse_sterm_list lx else [ first ]

let parse_termset lx =
  ignore (Lexer.expect lx Token.Lbrace);
  if Lexer.accept lx Token.Rbrace then []
  else begin
    let terms = parse_sterm_list lx in
    ignore (Lexer.expect lx Token.Rbrace);
    terms
  end

(* cond := conj ("||" conj)* ; conj := catom ("&&" catom)* *)
let rec parse_cond lx =
  let left = parse_conj lx in
  if Lexer.accept lx Token.Or_or then C_or (left, parse_cond lx) else left

and parse_conj lx =
  let left = parse_catom lx in
  if Lexer.accept lx Token.And_and then C_and (left, parse_conj lx) else left

and parse_catom lx =
  if Lexer.accept lx Token.Bang then C_not (parse_catom lx)
  else if Lexer.accept lx Token.Lparen then begin
    let c = parse_cond lx in
    ignore (Lexer.expect lx Token.Rparen);
    c
  end
  else begin
    let t = parse_sterm lx in
    match Lexer.peek lx with
    | Token.Eq_eq, _ ->
      ignore (Lexer.next lx);
      C_eq (t, parse_sterm lx)
    | Token.Bang_eq, _ ->
      ignore (Lexer.next lx);
      C_neq (t, parse_sterm lx)
    | _, loc -> (
      (* a bare term is a builtin predicate call *)
      match t with
      | S_app (f, args) -> C_call (f, args)
      | S_int _ | S_self -> Loc.error loc "expected a predicate or comparison")
  end

(* take := ("take"|"read") IDENT "(" sterm ")" *)
let parse_take lx =
  let tok, loc = Lexer.next lx in
  let read =
    match tok with
    | Token.Ident "take" -> false
    | Token.Ident "read" -> true
    | tok -> Loc.error loc "expected 'take' or 'read', found %a" Token.pp tok
  in
  let comp = Lexer.ident lx in
  ignore (Lexer.expect lx Token.Lparen);
  let pat = parse_sterm lx in
  let stop = Lexer.expect lx Token.Rparen in
  { tk_read = read; tk_comp = comp; tk_pat = pat; tk_loc = Loc.merge loc stop }

let parse_put lx =
  let loc = keyword lx "put" in
  let comp = Lexer.ident lx in
  ignore (Lexer.expect lx Token.Lparen);
  let term = parse_sterm lx in
  let stop = Lexer.expect lx Token.Rparen in
  { pt_comp = comp; pt_term = term; pt_loc = Loc.merge loc stop }

(* action IDENT ":" take ("," take)* ["when" cond] "->" put ("," put)* *)
let parse_rule lx =
  let loc = keyword lx "action" in
  let name = Lexer.ident lx in
  ignore (Lexer.expect lx Token.Colon);
  let rec takes acc =
    let tk = parse_take lx in
    if Lexer.accept lx Token.Comma then takes (tk :: acc)
    else List.rev (tk :: acc)
  in
  let tks = takes [] in
  let cond =
    if is_keyword lx "when" then begin
      ignore (keyword lx "when");
      parse_cond lx
    end
    else C_true
  in
  ignore (Lexer.expect lx Token.Arrow);
  let rec puts acc =
    let pt = parse_put lx in
    if Lexer.accept lx Token.Comma then puts (pt :: acc)
    else List.rev (pt :: acc)
  in
  let pts = puts [] in
  let stop =
    match List.rev pts with pt :: _ -> pt.pt_loc | [] -> loc
  in
  { ru_name = name; ru_takes = tks; ru_cond = cond; ru_puts = pts;
    ru_loc = Loc.merge loc stop }

let parse_comp_item lx =
  match Lexer.peek lx with
  | Token.Ident "state", _ ->
    ignore (keyword lx "state");
    let name = Lexer.ident lx in
    let init =
      if Lexer.accept lx Token.Eq then parse_termset lx else []
    in
    I_state (name, init)
  | Token.Ident "shared", _ ->
    ignore (keyword lx "shared");
    I_shared (Lexer.ident lx)
  | Token.Ident "action", _ -> I_rule (parse_rule lx)
  | tok, loc ->
    Loc.error loc "expected 'state', 'shared' or 'action', found %a" Token.pp
      tok

let parse_component lx =
  let loc = keyword lx "component" in
  let name = Lexer.ident lx in
  ignore (Lexer.expect lx Token.Lbrace);
  let rec items acc =
    if Lexer.accept lx Token.Rbrace then List.rev acc
    else items (parse_comp_item lx :: acc)
  in
  { cd_name = name; cd_items = items []; cd_loc = loc }

(* instance IDENT "=" IDENT "(" INT ")" [ "{" IDENT "=" termset ("," ...)* "}" ] *)
let parse_instance lx =
  let loc = keyword lx "instance" in
  let name = Lexer.ident lx in
  ignore (Lexer.expect lx Token.Eq);
  let comp = Lexer.ident lx in
  ignore (Lexer.expect lx Token.Lparen);
  let id =
    match Lexer.next lx with
    | Token.Int i, _ -> i
    | tok, loc -> Loc.error loc "expected an instance number, found %a" Token.pp tok
  in
  ignore (Lexer.expect lx Token.Rparen);
  let overrides =
    if Lexer.accept lx Token.Lbrace then begin
      let rec go acc =
        let field = Lexer.ident lx in
        ignore (Lexer.expect lx Token.Eq);
        let terms = parse_termset lx in
        let acc = (field, terms) :: acc in
        if Lexer.accept lx Token.Comma then go acc
        else begin
          ignore (Lexer.expect lx Token.Rbrace);
          List.rev acc
        end
      in
      if Lexer.accept lx Token.Rbrace then [] else go []
    end
    else []
  in
  { in_name = name; in_comp = comp; in_id = id; in_overrides = overrides;
    in_loc = loc }

let parse_cluster lx =
  let loc = keyword lx "cluster" in
  let name = Lexer.ident lx in
  ignore (Lexer.expect lx Token.Eq);
  ignore (Lexer.expect lx Token.Lbrace);
  let rec members acc =
    let m = Lexer.ident lx in
    if Lexer.accept lx Token.Comma then members (m :: acc)
    else begin
      ignore (Lexer.expect lx Token.Rbrace);
      List.rev (m :: acc)
    end
  in
  { cl_name = name; cl_members = members []; cl_loc = loc }

let parse_policy_opt lx =
  if Lexer.accept lx Token.Lbracket then begin
    ignore (keyword lx "policy");
    let p =
      match Lexer.next lx with
      | Token.String s, _ -> s
      | tok, loc -> Loc.error loc "expected a policy string, found %a" Token.pp tok
    in
    ignore (Lexer.expect lx Token.Rbracket);
    Some p
  end
  else None

let parse_model lx =
  let loc = keyword lx "model" in
  let name = Lexer.ident lx in
  let param =
    if Lexer.accept lx Token.Lparen then begin
      let p = Lexer.ident lx in
      ignore (Lexer.expect lx Token.Rparen);
      Some p
    end
    else None
  in
  ignore (Lexer.expect lx Token.Lbrace);
  let actions = ref [] and flows = ref [] in
  let rec items () =
    if Lexer.accept lx Token.Rbrace then ()
    else begin
      (match Lexer.peek lx with
      | Token.Ident "action", _ ->
        let loc = keyword lx "action" in
        let label = Lexer.ident lx in
        let args =
          if Lexer.accept lx Token.Lparen then begin
            let args = parse_sterm_list lx in
            ignore (Lexer.expect lx Token.Rparen);
            args
          end
          else []
        in
        actions := { ma_label = label; ma_args = args; ma_loc = loc } :: !actions
      | Token.Ident "flow", _ ->
        let loc = keyword lx "flow" in
        let src = Lexer.ident lx in
        ignore (Lexer.expect lx Token.Arrow);
        let dst = Lexer.ident lx in
        let policy = parse_policy_opt lx in
        flows := { mf_src = src; mf_dst = dst; mf_policy = policy; mf_loc = loc } :: !flows
      | tok, loc ->
        Loc.error loc "expected 'action' or 'flow', found %a" Token.pp tok);
      items ()
    end
  in
  items ();
  { md_name = name; md_param = param; md_actions = List.rev !actions;
    md_flows = List.rev !flows; md_loc = loc }

let parse_sos lx =
  let loc = keyword lx "sos" in
  let name = Lexer.ident lx in
  ignore (Lexer.expect lx Token.Lbrace);
  let uses = ref [] and links = ref [] in
  let rec items () =
    if Lexer.accept lx Token.Rbrace then ()
    else begin
      (match Lexer.peek lx with
      | Token.Ident "use", _ ->
        let loc = keyword lx "use" in
        let model = Lexer.ident lx in
        let index =
          if Lexer.accept lx Token.Lparen then begin
            match Lexer.next lx with
            | Token.Int i, _ ->
              ignore (Lexer.expect lx Token.Rparen);
              Some i
            | tok, loc ->
              Loc.error loc "expected an instance number, found %a" Token.pp tok
          end
          else None
        in
        ignore (keyword lx "as");
        let alias = Lexer.ident lx in
        uses := { us_model = model; us_index = index; us_alias = alias; us_loc = loc } :: !uses
      | Token.Ident "link", _ ->
        let loc = keyword lx "link" in
        let src_alias = Lexer.ident lx in
        ignore (Lexer.expect lx Token.Dot);
        let src_label = Lexer.ident lx in
        ignore (Lexer.expect lx Token.Arrow);
        let dst_alias = Lexer.ident lx in
        ignore (Lexer.expect lx Token.Dot);
        let dst_label = Lexer.ident lx in
        let policy = parse_policy_opt lx in
        links :=
          { lk_src = (src_alias, src_label); lk_dst = (dst_alias, dst_label);
            lk_policy = policy; lk_loc = loc }
          :: !links
      | tok, loc -> Loc.error loc "expected 'use' or 'link', found %a" Token.pp tok);
      items ()
    end
  in
  items ();
  { sd_name = name; sd_uses = List.rev !uses; sd_links = List.rev !links;
    sd_loc = loc }

(* check (absence|existence|universality) NAME [scope]
   check (precedence|response) NAME NAME [scope]
   scope := globally | before NAME | after NAME *)
let parse_check lx =
  let loc = keyword lx "check" in
  let kind = Lexer.ident lx in
  let arity =
    match kind with
    | "absence" | "existence" | "universality" -> 1
    | "precedence" | "response" -> 2
    | k -> Loc.error loc "unknown check kind %S" k
  in
  let args =
    List.init arity (fun _ -> Lexer.ident lx)
  in
  let scope =
    match Lexer.peek lx with
    | Token.Ident "globally", _ ->
      ignore (Lexer.next lx);
      None
    | Token.Ident (("before" | "after") as s), _ ->
      ignore (Lexer.next lx);
      Some (s, Lexer.ident lx)
    | _, _ -> None
  in
  { ck_kind = kind; ck_args = args; ck_scope = scope; ck_loc = loc }

let parse_decl lx =
  match Lexer.peek lx with
  | Token.Ident "component", _ -> D_component (parse_component lx)
  | Token.Ident "instance", _ -> D_instance (parse_instance lx)
  | Token.Ident "cluster", _ -> D_cluster (parse_cluster lx)
  | Token.Ident "model", _ -> D_model (parse_model lx)
  | Token.Ident "sos", _ -> D_sos (parse_sos lx)
  | Token.Ident "check", _ -> D_check (parse_check lx)
  | tok, loc ->
    Loc.error loc
      "expected 'component', 'instance', 'cluster', 'model', 'sos' or \
       'check', found %a"
      Token.pp tok

let parse_string input =
  let lx = Lexer.make input in
  let rec go acc =
    match Lexer.peek lx with
    | Token.Eof, _ -> List.rev acc
    | _, _ -> go (parse_decl lx :: acc)
  in
  go []

let parse_file path =
  let ic = open_in path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse_string content
