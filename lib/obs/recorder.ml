(* Flight recorder: a bounded ring of structured events.

   The recorder keeps the last [capacity] events — queueing, cache
   traffic, span (phase) boundaries, evictions, errors — so that when a
   request ends badly the server can dump everything that happened around
   it, keyed by trace id, without having logged anything in the steady
   state.  Recording is gated on [Metrics.enabled] and costs one mutex
   round and a few field writes per event; events are rare (per request /
   per phase, never per state), so the ring is far off any hot path.

   The ring is a mutex-protected array indexed by a monotonically
   increasing sequence number: slot [seq mod capacity] is overwritten in
   arrival order, which makes "the surviving events are exactly the last
   [capacity] ones, in order" a structural property rather than a
   bookkeeping obligation. *)

type kind =
  | Enqueue
  | Dequeue
  | Cache_hit
  | Cache_miss
  | Phase_start
  | Phase_end
  | Eviction
  | Error
  | Slow

type event = {
  r_seq : int;
  r_time_ns : int64;
  r_domain : int;
  r_trace : string;
  r_kind : kind;
  r_detail : string;
}

let kind_to_string = function
  | Enqueue -> "enqueue"
  | Dequeue -> "dequeue"
  | Cache_hit -> "cache_hit"
  | Cache_miss -> "cache_miss"
  | Phase_start -> "phase_start"
  | Phase_end -> "phase_end"
  | Eviction -> "eviction"
  | Error -> "error"
  | Slow -> "slow"

let default_capacity = 1024

let lock = Mutex.create ()
let ring = ref (Array.make default_capacity None)
let next_seq = ref 0

let capacity () = Mutex.protect lock (fun () -> Array.length !ring)

let set_capacity n =
  let n = max 1 n in
  Mutex.protect lock (fun () ->
      ring := Array.make n None;
      next_seq := 0)

let reset () =
  Mutex.protect lock (fun () ->
      Array.fill !ring 0 (Array.length !ring) None;
      next_seq := 0)

let record ?trace ?time_ns kind detail =
  if Metrics.enabled () then begin
    let trace = match trace with Some t -> t | None -> Span.current_trace () in
    let time_ns = match time_ns with Some t -> t | None -> Span.now_ns () in
    let domain = (Domain.self () :> int) in
    Mutex.protect lock (fun () ->
        let s = !next_seq in
        next_seq := s + 1;
        !ring.(s mod Array.length !ring) <-
          Some
            { r_seq = s;
              r_time_ns = time_ns;
              r_domain = domain;
              r_trace = trace;
              r_kind = kind;
              r_detail = detail })
  end

let events () =
  Mutex.protect lock (fun () ->
      Array.fold_left
        (fun acc slot -> match slot with None -> acc | Some ev -> ev :: acc)
        [] !ring)
  |> List.sort (fun a b -> Stdlib.compare a.r_seq b.r_seq)

let events_for_trace trace =
  List.filter (fun ev -> String.equal ev.r_trace trace) (events ())

let size () = List.length (events ())

let dropped () =
  Mutex.protect lock (fun () -> max 0 (!next_seq - Array.length !ring))

let recorded () = Mutex.protect lock (fun () -> !next_seq)

(* ------------------------------------------------------------------ *)
(* Dumps                                                               *)
(* ------------------------------------------------------------------ *)

let event_json ev =
  let b = Buffer.create 128 in
  Buffer.add_string b "{\"seq\":";
  Buffer.add_string b (string_of_int ev.r_seq);
  Buffer.add_string b ",\"t_us\":";
  Buffer.add_string b (Span.us_of_ns ev.r_time_ns);
  Buffer.add_string b ",\"domain\":";
  Buffer.add_string b (string_of_int ev.r_domain);
  Buffer.add_string b ",\"kind\":\"";
  Buffer.add_string b (kind_to_string ev.r_kind);
  Buffer.add_string b "\",\"detail\":\"";
  Metrics.json_escape b ev.r_detail;
  Buffer.add_string b "\"}";
  Buffer.contents b

(* Deterministic: events in sequence order, fixed member order, fixed
   number formatting — two dumps of the same ring state are identical. *)
let dump_trace ~trace_id =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"trace_id\":\"";
  Metrics.json_escape b trace_id;
  Buffer.add_string b "\",\"events\":[\n";
  let first = ref true in
  List.iter
    (fun ev ->
      if not !first then Buffer.add_string b ",\n";
      first := false;
      Buffer.add_string b (event_json ev))
    (events_for_trace trace_id);
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

(* Mirror span boundaries into the ring as phase events.  Installed at
   module initialisation: any program that links the recorder gets phase
   events for free. *)
let () =
  Span.set_phase_hook (fun phase name time_ns ->
      record ~time_ns
        (match phase with `Start -> Phase_start | `End -> Phase_end)
        name)
