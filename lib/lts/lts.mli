(** Reachability graphs of APA models (Definition 3 of the paper).

    States are numbered in breadth-first discovery order and printed
    [M-1], [M-2], ... in the style of the SH verification tool. *)

module Term = Fsa_term.Term
module Action = Fsa_term.Action
module State = Fsa_apa.Apa.State

type transition = { t_src : int; t_label : Action.t; t_dst : int }
type t

exception State_space_too_large of int

(** Exploration-time reduction hooks, supplied by {!Fsa_sym} (the LTS
    layer itself stays reduction-agnostic).  Both functions must be pure:
    they are applied transition-by-transition and the bit-identity of
    sequential and parallel exploration relies on it. *)
type reduction = {
  rd_canon : State.t -> State.t;
      (** canonical orbit representative, applied to every successor
          before interning (never to the initial state) *)
  rd_ample :
    State.t ->
    (Fsa_apa.Apa.rule * Action.t * State.t) list ->
    (Fsa_apa.Apa.rule * Action.t * State.t) list;
      (** restrict a state's enabled transitions to an ample subset *)
}

val no_reduction : reduction
(** Identity hooks: full exploration. *)

val explore :
  ?max_states:int ->
  ?reduce:reduction ->
  ?progress:Fsa_obs.Progress.t ->
  Fsa_apa.Apa.t ->
  t
(** Breadth-first state-space exploration from the initial state.  When
    [progress] is given it is ticked once per expanded state with the
    number of discovered states and the current frontier size.  With
    observability enabled ({!Fsa_obs.Metrics.set_enabled}), exploration
    records the [lts.*] counters and runs inside an [lts.explore] span.
    With [reduce], successor states are canonicalised and successor
    lists restricted before interning — the result is the reduced
    (quotient) graph.
    @raise State_space_too_large beyond [max_states] (default 1e6). *)

val explore_par :
  ?max_states:int ->
  ?reduce:reduction ->
  ?progress:Fsa_obs.Progress.t ->
  ?shards:int ->
  jobs:int ->
  Fsa_apa.Apa.t ->
  t
(** Parallel breadth-first exploration over [jobs] domains: a
    level-synchronous BFS with a sharded state table and chunked
    self-scheduling over each frontier, followed by a canonical
    renumbering pass.  The result is bit-identical to {!explore} — same
    [M-k] state numbering, same sorted transition lists — so parallel
    and sequential analyses are interchangeable.  [shards] rounds up to
    a power of two (default [64 * jobs]).  [jobs <= 1] falls back to
    {!explore}.  With observability enabled, additionally records
    [lts.domains], [lts.shard_conflicts] and per-domain
    [lts.d<i>.states_per_sec].
    @raise State_space_too_large beyond [max_states] (default 1e6). *)

val name : t -> string
val nb_states : t -> int
val nb_transitions : t -> int
val initial : t -> int
val state : t -> int -> State.t
val succ : t -> int -> transition list
val pred : t -> int -> transition list
val transitions : t -> transition list
(** All transitions as a fresh list; prefer {!iter_transitions} or
    {!fold_transitions} on hot paths — they do not materialize the
    list. *)

val iter_transitions : (transition -> unit) -> t -> unit
val fold_transitions : (transition -> 'a -> 'a) -> t -> 'a -> 'a

val of_edges : ?name:string -> nb_states:int -> transition list -> t
(** A synthetic graph over states [0 .. nb_states - 1] (state [0]
    initial, all states carrying {!State.empty}), for tests and for
    ingesting externally computed reachability graphs.
    @raise Invalid_argument on out-of-range endpoints. *)

val of_graph : ?name:string -> states:State.t array -> transition list -> t
(** Like {!of_edges} but with caller-supplied state contents (state [0]
    initial).  The unfold of a symmetry quotient rebuilds the full
    reachability graph this way.
    @raise Invalid_argument on an empty state array or out-of-range
    endpoints. *)

val state_name : int -> string
val fold_states : (int -> 'a -> 'a) -> t -> 'a -> 'a
val alphabet : t -> Action.Set.t

val deadlocks : t -> int list
(** States without outgoing transitions ("+++ dead +++"). *)

val minima : t -> Action.Set.t
(** Actions leaving the initial state: the minima of the partial order of
    functionally dependent actions (Sect. 5.4). *)

val maxima : t -> Action.Set.t
(** Actions entering a dead state: the maxima. *)

val trace_to : t -> int -> Action.t list option
val words : max_len:int -> t -> Action.t list list

val reachable_without :
  t -> avoid:(Action.t -> bool) -> target:(Action.t -> bool) -> bool
(** Is a [target]-labelled transition reachable along a path containing no
    [avoid]-labelled transition? *)

val depends_on : t -> max_action:Action.t -> min_action:Action.t -> bool
(** Direct functional dependence test: [max_action] depends on
    [min_action] iff every path to an occurrence of [max_action] contains
    a prior occurrence of [min_action]. *)

val count_complete_runs : t -> int option
(** Number of maximal paths to dead states; [None] on cyclic graphs.
    Equals the number of linear extensions of the event poset for
    every-action-once scenarios. *)

type deadlock_report = { dr_complete : int list; dr_stuck : int list }

val classify_deadlocks : t -> complete:(State.t -> bool) -> deadlock_report
(** Split dead states by a completion predicate; stuck deadlocks indicate
    modelling errors (e.g. a message consumed by a component that cannot
    process it). *)

type stats = {
  nb_states : int;
  nb_transitions : int;
  nb_deadlocks : int;
  nb_labels : int;
}

val stats : t -> stats
val pp_stats : stats Fmt.t
val dot : ?name:string -> t -> string

val pp_min_max : t Fmt.t
(** The tool's minima/maxima summary in the format of Example 6. *)
