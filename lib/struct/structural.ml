(* Structural analysis over the net skeleton of an APA: exact invariant
   computation, bounded siphon/trap enumeration and static dependence.

   Everything here is deterministic: places and rules keep their APA
   declaration order, kernel bases are ordered by free column, siphon
   enumeration explores places in index order and reports sorted sets. *)

module Term = Fsa_term.Term
module Apa = Fsa_apa.Apa
module Span = Fsa_obs.Span
module Metrics = Fsa_obs.Metrics

type place = { pl_name : string; pl_initial : Term.Set.t }

type rule_sig = {
  rs_name : string;
  rs_takes : (string * Term.t * bool) list;
  rs_puts : (string * Term.t) list;
  rs_guarded : bool;
}

type net = { n_places : place list; n_rules : rule_sig list }

let pairs_pruned = Metrics.counter "struct.pairs_pruned"

let of_apa apa =
  { n_places =
      List.map
        (fun (c, init) -> { pl_name = c; pl_initial = init })
        (Apa.components apa);
    n_rules =
      List.map
        (fun r ->
          { rs_name = Apa.rule_name r;
            rs_takes =
              List.map
                (fun (tk : Apa.take) ->
                  (tk.t_component, tk.t_pattern, tk.t_consume))
                r.Apa.r_takes;
            rs_puts =
              List.map
                (fun (p : Apa.put) -> (p.p_component, p.p_template))
                r.Apa.r_puts;
            rs_guarded = not r.Apa.r_trivial_guard })
        (Apa.rules apa) }

(* ------------------------------------------------------------------ *)
(* Incidence matrix                                                    *)
(* ------------------------------------------------------------------ *)

type incidence = {
  i_places : string array;
  i_rules : string array;
  i_matrix : int array array;
}

let incidence net =
  Span.with_ ~cat:"struct" "struct.incidence" @@ fun () ->
  let places = Array.of_list (List.map (fun p -> p.pl_name) net.n_places) in
  let rules = Array.of_list (List.map (fun r -> r.rs_name) net.n_rules) in
  let index = Hashtbl.create 16 in
  Array.iteri (fun i c -> Hashtbl.replace index c i) places;
  let m = Array.make_matrix (Array.length places) (Array.length rules) 0 in
  List.iteri
    (fun j r ->
      List.iter
        (fun (c, _, consume) ->
          if consume then
            match Hashtbl.find_opt index c with
            | Some i -> m.(i).(j) <- m.(i).(j) - 1
            | None -> ())
        r.rs_takes;
      List.iter
        (fun (c, _) ->
          match Hashtbl.find_opt index c with
          | Some i -> m.(i).(j) <- m.(i).(j) + 1
          | None -> ())
        r.rs_puts)
    net.n_rules;
  { i_places = places; i_rules = rules; i_matrix = m }

(* ------------------------------------------------------------------ *)
(* Exact rational kernel                                               *)
(* ------------------------------------------------------------------ *)

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(* num/den with den > 0 and gcd 1; magnitudes stay tiny for incidence
   matrices (entries in -2..2), so native ints are ample *)
module Q = struct
  type t = { num : int; den : int }

  let make num den =
    if den = 0 then invalid_arg "Q.make: zero denominator";
    let s = if den < 0 then -1 else 1 in
    let g = gcd num den in
    let g = if g = 0 then 1 else g in
    { num = s * num / g; den = s * den / g }

  let of_int n = { num = n; den = 1 }
  let zero = of_int 0
  let is_zero q = q.num = 0
  let neg q = { q with num = -q.num }
  let add a b = make ((a.num * b.den) + (b.num * a.den)) (a.den * b.den)
  let mul a b = make (a.num * b.num) (a.den * b.den)
  let div a b = if b.num = 0 then invalid_arg "Q.div" else mul a (make b.den b.num)
  let sub a b = add a (neg b)
end

let kernel (a : int array array) =
  let rows = Array.length a in
  let cols = if rows = 0 then 0 else Array.length a.(0) in
  if cols = 0 then []
  else begin
    let m =
      Array.init rows (fun i -> Array.init cols (fun j -> Q.of_int a.(i).(j)))
    in
    (* reduced row echelon form, recording (pivot row, pivot col) *)
    let pivots = ref [] in
    let prow = ref 0 in
    for c = 0 to cols - 1 do
      if !prow < rows then begin
        let found = ref (-1) in
        (try
           for r = !prow to rows - 1 do
             if not (Q.is_zero m.(r).(c)) then begin
               found := r;
               raise Exit
             end
           done
         with Exit -> ());
        if !found >= 0 then begin
          let r = !found in
          let tmp = m.(r) in
          m.(r) <- m.(!prow);
          m.(!prow) <- tmp;
          let pv = m.(!prow).(c) in
          for j = 0 to cols - 1 do
            m.(!prow).(j) <- Q.div m.(!prow).(j) pv
          done;
          for r' = 0 to rows - 1 do
            if r' <> !prow && not (Q.is_zero m.(r').(c)) then begin
              let f = m.(r').(c) in
              for j = 0 to cols - 1 do
                m.(r').(j) <- Q.sub m.(r').(j) (Q.mul f m.(!prow).(j))
              done
            end
          done;
          pivots := (!prow, c) :: !pivots;
          incr prow
        end
      end
    done;
    let pivots = List.rev !pivots in
    let pivot_cols = List.map snd pivots in
    let free_cols =
      List.filter
        (fun c -> not (List.mem c pivot_cols))
        (List.init cols Fun.id)
    in
    List.map
      (fun f ->
        let x = Array.make cols Q.zero in
        x.(f) <- Q.of_int 1;
        List.iter (fun (r, c) -> x.(c) <- Q.neg m.(r).(f)) pivots;
        (* scale to the smallest integer vector, leading entry positive *)
        let lcm =
          Array.fold_left
            (fun acc q -> acc / gcd acc q.Q.den * q.Q.den)
            1 x
        in
        let v = Array.map (fun q -> q.Q.num * (lcm / q.Q.den)) x in
        let g = Array.fold_left (fun acc n -> gcd acc n) 0 v in
        let v = if g > 1 then Array.map (fun n -> n / g) v else v in
        let sign =
          match Array.find_opt (fun n -> n <> 0) v with
          | Some n when n < 0 -> -1
          | _ -> 1
        in
        if sign < 0 then Array.map (fun n -> -n) v else v)
      free_cols
  end

let transpose m =
  let rows = Array.length m in
  let cols = if rows = 0 then 0 else Array.length m.(0) in
  Array.init cols (fun j -> Array.init rows (fun i -> m.(i).(j)))

let p_invariants inc = kernel (transpose inc.i_matrix)
let t_invariants inc = kernel inc.i_matrix

(* ------------------------------------------------------------------ *)
(* Boundedness                                                         *)
(* ------------------------------------------------------------------ *)

let initial_counts net inc =
  Array.map
    (fun c ->
      match List.find_opt (fun p -> String.equal p.pl_name c) net.n_places with
      | Some p -> Term.Set.cardinal p.pl_initial
      | None -> 0)
    inc.i_places

let nonneg v = Array.for_all (fun n -> n >= 0) v

let bounds net inc =
  let m0 = initial_counts net inc in
  let invs =
    List.filter_map
      (fun y ->
        if nonneg y then Some y
        else
          let y' = Array.map (fun n -> -n) y in
          if nonneg y' then Some y' else None)
      (p_invariants inc)
  in
  let best = Hashtbl.create 16 in
  List.iter
    (fun y ->
      let total = ref 0 in
      Array.iteri (fun i yi -> total := !total + (yi * m0.(i))) y;
      Array.iteri
        (fun i yi ->
          if yi > 0 then begin
            let b = !total / yi in
            match Hashtbl.find_opt best inc.i_places.(i) with
            | Some b' when b' <= b -> ()
            | _ -> Hashtbl.replace best inc.i_places.(i) b
          end)
        y)
    invs;
  Hashtbl.fold (fun c b acc -> (c, b) :: acc) best []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let row_sums inc =
  Array.map (fun row -> Array.fold_left ( + ) 0 row) inc.i_matrix

let growth inc =
  let sums = row_sums inc in
  Array.to_list (Array.mapi (fun i s -> (inc.i_places.(i), s)) sums)
  |> List.sort (fun (c1, s1) (c2, s2) ->
         if s1 <> s2 then compare s2 s1 else String.compare c1 c2)

let growth_hint net =
  let inc = incidence net in
  let top =
    List.filteri (fun i _ -> i < 3)
      (List.filter (fun (_, s) -> s > 0) (growth inc))
  in
  if top = [] then ""
  else
    Printf.sprintf "; fastest-growing components: %s"
      (String.concat ", "
         (List.map (fun (c, s) -> Printf.sprintf "%s (+%d)" c s) top))

let potentially_unbounded net inc =
  let covered = List.map fst (bounds net inc) in
  let sums = row_sums inc in
  Array.to_list (Array.mapi (fun i s -> (inc.i_places.(i), s)) sums)
  |> List.filter (fun (c, s) -> s > 0 && not (List.mem c covered))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ------------------------------------------------------------------ *)
(* Producible-shape fixpoint (enabledness over-approximation)          *)
(* ------------------------------------------------------------------ *)

let matches_shape pat shape =
  Option.is_some (Term.unify (Term.rename "p" pat) (Term.rename "s" shape))

let producible net =
  let shapes : (string, Term.t list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun p -> Hashtbl.replace shapes p.pl_name (Term.Set.elements p.pl_initial))
    net.n_places;
  let get c = Option.value ~default:[] (Hashtbl.find_opt shapes c) in
  let add c t =
    let cur = get c in
    if List.exists (Term.equal t) cur then false
    else begin
      Hashtbl.replace shapes c (t :: cur);
      true
    end
  in
  let enabled r =
    List.for_all
      (fun (c, pat, _) -> List.exists (matches_shape pat) (get c))
      r.rs_takes
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun r ->
        if enabled r then
          List.iter
            (fun (c, t) -> if add c t then changed := true)
            r.rs_puts)
      net.n_rules
  done;
  enabled

(* ------------------------------------------------------------------ *)
(* Certified unboundedness                                             *)
(* ------------------------------------------------------------------ *)

(* An unguarded rule with a take (c, p) and a put (c, t) where p matches
   t syntactically (t's variables are opaque, so p matches every
   instance of t), |t| > |p|, and no other consuming take: once enabled
   it fires forever by itself, each firing leaving a strictly larger
   term in c — infinitely many distinct terms, so infinitely many
   states. *)
let certified_unbounded net =
  let enabled = producible net in
  List.concat_map
    (fun r ->
      if r.rs_guarded || not (enabled r) then []
      else
        let consuming =
          List.filter (fun (_, _, consume) -> consume) r.rs_takes
        in
        List.filter_map
          (fun ((c, pat, consume) as tk) ->
            let self_only =
              match consuming with
              | [] -> true
              | [ tk' ] -> consume && tk' == tk
              | _ -> false
            in
            if not self_only then None
            else
              List.find_map
                (fun (c', t) ->
                  if
                    String.equal c c'
                    && Option.is_some (Term.match_ ~pattern:pat ~target:t)
                    && Term.size t > Term.size pat
                  then
                    Some
                      ( r.rs_name,
                        c,
                        Fmt.str
                          "take %a is re-satisfied by put %a, which grows \
                           the term on every firing"
                          Term.pp pat Term.pp t )
                  else None)
                r.rs_puts)
          r.rs_takes)
    net.n_rules

(* ------------------------------------------------------------------ *)
(* Siphons and traps (bitmask enumeration)                             *)
(* ------------------------------------------------------------------ *)

type masks = {
  mk_places : string array;
  mk_take : int array;  (* any take (consume or read) per rule *)
  mk_consume : int array;
  mk_put : int array;
}

let masks net =
  let places = Array.of_list (List.map (fun p -> p.pl_name) net.n_places) in
  let index = Hashtbl.create 16 in
  Array.iteri (fun i c -> Hashtbl.replace index c i) places;
  let bit c =
    match Hashtbl.find_opt index c with Some i -> 1 lsl i | None -> 0
  in
  let nr = List.length net.n_rules in
  let take = Array.make nr 0
  and consume = Array.make nr 0
  and put = Array.make nr 0 in
  List.iteri
    (fun j r ->
      List.iter
        (fun (c, _, cons) ->
          take.(j) <- take.(j) lor bit c;
          if cons then consume.(j) <- consume.(j) lor bit c)
        r.rs_takes;
      List.iter (fun (c, _) -> put.(j) <- put.(j) lor bit c) r.rs_puts)
    net.n_rules;
  { mk_places = places; mk_take = take; mk_consume = consume; mk_put = put }

let mask_of_set mk set =
  List.fold_left
    (fun acc c ->
      match Array.find_index (String.equal c) mk.mk_places with
      | Some i -> acc lor (1 lsl i)
      | None -> acc)
    0 set

let set_of_mask mk s =
  let out = ref [] in
  Array.iteri (fun i c -> if s land (1 lsl i) <> 0 then out := c :: !out)
    mk.mk_places;
  List.sort String.compare !out

(* a siphon stays empty once empty: every rule producing into S takes
   (consumes or reads) from S, hence is disabled when S is empty *)
let siphon_ok mk s =
  Array.for_all2
    (fun put take -> put land s = 0 || take land s <> 0)
    mk.mk_put mk.mk_take

(* a trap stays marked once marked: every rule consuming from S puts
   into S (reads remove nothing) *)
let trap_ok mk s =
  Array.for_all2
    (fun consume put -> consume land s = 0 || put land s <> 0)
    mk.mk_consume mk.mk_put

let is_siphon net set =
  let mk = masks net in
  siphon_ok mk (mask_of_set mk set)

let is_trap net set =
  let mk = masks net in
  trap_ok mk (mask_of_set mk set)

(* Enumerate minimal sets satisfying [ok] by deficiency repair: find a
   rule violating the closure condition and branch over the places
   ([repair r]) whose addition fixes it.  Seeding each search at place
   [p] with only places >= p admitted enumerates every minimal set
   exactly once (a set's minimum element is its seed). *)
let enumerate ~ok ~deficient ~repair mk budget =
  let n = Array.length mk.mk_places in
  if n > 62 then ([], false)
  else begin
    let found = ref [] in
    let nodes = ref 0 in
    let complete = ref true in
    let max_solutions = 256 in
    let rec search allowed s =
      incr nodes;
      if !nodes > budget || List.length !found >= max_solutions then
        complete := false
      else if
        (* prune supersets of an already-found solution *)
        List.exists (fun s' -> s' land s = s') !found
      then ()
      else
        match deficient s with
        | None -> found := s :: !found
        | Some r ->
          let cands = repair r land allowed land lnot s in
          let rec branch bits =
            if bits <> 0 then begin
              let b = bits land -bits in
              search allowed (s lor b);
              branch (bits lxor b)
            end
          in
          branch cands
    in
    ignore ok;
    for p = 0 to n - 1 do
      let allowed = lnot ((1 lsl p) - 1) in
      search allowed (1 lsl p)
    done;
    (* keep minimal solutions only, deterministic order *)
    let sols = List.sort_uniq compare !found in
    let minimal =
      List.filter
        (fun s ->
          not (List.exists (fun s' -> s' <> s && s' land s = s') sols))
        sols
    in
    (List.map (set_of_mask mk) minimal, !complete)
  end

let siphons ?(budget = 10_000) net =
  Span.with_ ~cat:"struct" "struct.siphons" @@ fun () ->
  let mk = masks net in
  let deficient s =
    let r = ref None in
    (try
       Array.iteri
         (fun j put ->
           if put land s <> 0 && mk.mk_take.(j) land s = 0 then begin
             r := Some j;
             raise Exit
           end)
         mk.mk_put
     with Exit -> ());
    !r
  in
  enumerate ~ok:(siphon_ok mk) ~deficient
    ~repair:(fun j -> mk.mk_take.(j))
    mk budget

let traps ?(budget = 10_000) net =
  let mk = masks net in
  let deficient s =
    let r = ref None in
    (try
       Array.iteri
         (fun j consume ->
           if consume land s <> 0 && mk.mk_put.(j) land s = 0 then begin
             r := Some j;
             raise Exit
           end)
         mk.mk_consume
     with Exit -> ());
    !r
  in
  enumerate ~ok:(trap_ok mk) ~deficient
    ~repair:(fun j -> mk.mk_put.(j))
    mk budget

(* greatest trap inside S: drop places a rule can drain without
   refilling S, to fixpoint *)
let max_trap_in net set =
  let mk = masks net in
  let s = ref (mask_of_set mk set) in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iteri
      (fun j consume ->
        let hit = consume land !s in
        if hit <> 0 && mk.mk_put.(j) land !s = 0 then begin
          s := !s land lnot hit;
          changed := true
        end)
      mk.mk_consume
  done;
  set_of_mask mk !s

let initially_marked net set =
  List.exists
    (fun p ->
      List.mem p.pl_name set && not (Term.Set.is_empty p.pl_initial))
    net.n_places

type deadlock_verdict =
  | Deadlock_free_skeleton
  | May_deadlock of string list list
  | Unknown_budget

let deadlock ?budget net =
  let sips, complete = siphons ?budget net in
  if not complete then Unknown_budget
  else
    let bad =
      List.filter
        (fun s ->
          let t = max_trap_in net s in
          t = [] || not (initially_marked net t))
        sips
    in
    if bad = [] then Deadlock_free_skeleton else May_deadlock bad

(* ------------------------------------------------------------------ *)
(* Static dependence                                                   *)
(* ------------------------------------------------------------------ *)

let flow_adjacency net =
  let rules = Array.of_list net.n_rules in
  let n = Array.length rules in
  let adj = Array.make n [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let connects =
        List.exists
          (fun (c, t) ->
            List.exists
              (fun (c', pat, _) -> String.equal c c' && matches_shape t pat)
              rules.(j).rs_takes)
          rules.(i).rs_puts
      in
      if connects then adj.(i) <- j :: adj.(i)
    done
  done;
  (rules, adj)

let flow_edges net =
  let rules, adj = flow_adjacency net in
  Array.to_list
    (Array.mapi
       (fun i succs ->
         List.rev_map (fun j -> (rules.(i).rs_name, rules.(j).rs_name)) succs)
       adj)
  |> List.concat
  |> List.sort compare

let reachable adj i =
  let n = Array.length adj in
  let seen = Array.make n false in
  let rec go i =
    if not seen.(i) then begin
      seen.(i) <- true;
      List.iter go adj.(i)
    end
  in
  go i;
  seen

let independent_all net =
  lazy
    (let rules, adj = flow_adjacency net in
     let index = Hashtbl.create 16 in
     Array.iteri (fun i r -> Hashtbl.replace index r.rs_name i) rules;
     let memo = Hashtbl.create 16 in
     fun min max ->
       match (Hashtbl.find_opt index min, Hashtbl.find_opt index max) with
       | Some i, Some j ->
         let seen =
           match Hashtbl.find_opt memo i with
           | Some seen -> seen
           | None ->
             let seen = reachable adj i in
             Hashtbl.replace memo i seen;
             seen
         in
         not seen.(j)
       | _ -> false)

let independent net ~min ~max = Lazy.force (independent_all net) min max

(* Interference, the commutation-relevant relation for partial-order
   reduction: two rules interfere when they touch a common state
   component and the accesses do not commute.  Two reads of the same
   component commute; so do two puts (sets union); every pairing
   involving a consuming take (it competes for the element, or removes
   what the other reads) and every put/take pairing (the put may enable
   or feed the take) does not. *)
let interferes r1 r2 =
  let access r =
    List.map
      (fun (c, _, consume) -> (c, if consume then `Consume else `Read))
      r.rs_takes
    @ List.map (fun (c, _) -> (c, `Put)) r.rs_puts
  in
  List.exists
    (fun (c1, a1) ->
      List.exists
        (fun (c2, a2) ->
          String.equal c1 c2
          &&
          match (a1, a2) with
          | `Read, `Read | `Put, `Put -> false
          | `Consume, _ | _, `Consume | `Put, `Read | `Read, `Put -> true)
        (access r2))
    (access r1)

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

type report = {
  r_places : string array;
  r_rules : string array;
  r_matrix : int array array;
  r_p_invariants : int array list;
  r_t_invariants : int array list;
  r_bounds : (string * int) list;
  r_unbounded : (string * int) list;
  r_certified : (string * string * string) list;
  r_growth : (string * int) list;
  r_siphons : string list list;
  r_siphons_complete : bool;
  r_traps : string list list;
  r_traps_complete : bool;
  r_verdict : deadlock_verdict;
  r_independent_pairs : int;
  r_rule_pairs : int;
}

let analyse ?budget net =
  let inc = incidence net in
  let p_invs, t_invs, bnds, unb =
    Span.with_ ~cat:"struct" "struct.invariants" @@ fun () ->
    ( p_invariants inc,
      t_invariants inc,
      bounds net inc,
      potentially_unbounded net inc )
  in
  let sips, sips_complete = siphons ?budget net in
  let trps, trps_complete = traps ?budget net in
  let verdict =
    if not sips_complete then Unknown_budget
    else
      let bad =
        List.filter
          (fun s ->
            let t = max_trap_in net s in
            t = [] || not (initially_marked net t))
          sips
      in
      if bad = [] then Deadlock_free_skeleton else May_deadlock bad
  in
  let indep = Lazy.force (independent_all net) in
  let names = List.map (fun r -> r.rs_name) net.n_rules in
  let independent_pairs =
    List.fold_left
      (fun acc a ->
        List.fold_left
          (fun acc b -> if a <> b && indep a b then acc + 1 else acc)
          acc names)
      0 names
  in
  let n = List.length names in
  { r_places = inc.i_places;
    r_rules = inc.i_rules;
    r_matrix = inc.i_matrix;
    r_p_invariants = p_invs;
    r_t_invariants = t_invs;
    r_bounds = bnds;
    r_unbounded = unb;
    r_certified = certified_unbounded net;
    r_growth = growth inc;
    r_siphons = sips;
    r_siphons_complete = sips_complete;
    r_traps = trps;
    r_traps_complete = trps_complete;
    r_verdict = verdict;
    r_independent_pairs = independent_pairs;
    r_rule_pairs = n * (n - 1) }

let pp_vector names ppf v =
  let terms =
    List.filter_map Fun.id
      (Array.to_list
         (Array.mapi
            (fun i n ->
              if n = 0 then None
              else if n = 1 then Some names.(i)
              else Some (Printf.sprintf "%d*%s" n names.(i)))
            v))
  in
  Fmt.string ppf (String.concat " + " terms)

let pp_set ppf s = Fmt.pf ppf "{%s}" (String.concat ", " s)

let pp_report ppf r =
  Fmt.pf ppf "places: %d, rules: %d@\n" (Array.length r.r_places)
    (Array.length r.r_rules);
  Fmt.pf ppf "P-invariants (%d):@\n" (List.length r.r_p_invariants);
  List.iter
    (fun v -> Fmt.pf ppf "  %a = const@\n" (pp_vector r.r_places) v)
    r.r_p_invariants;
  Fmt.pf ppf "T-invariants (%d):@\n" (List.length r.r_t_invariants);
  List.iter
    (fun v -> Fmt.pf ppf "  %a@\n" (pp_vector r.r_rules) v)
    r.r_t_invariants;
  Fmt.pf ppf "bounded components (%d):@\n" (List.length r.r_bounds);
  List.iter (fun (c, b) -> Fmt.pf ppf "  %s <= %d@\n" c b) r.r_bounds;
  Fmt.pf ppf "potentially unbounded (%d):@\n" (List.length r.r_unbounded);
  List.iter (fun (c, s) -> Fmt.pf ppf "  %s (net +%d)@\n" c s) r.r_unbounded;
  List.iter
    (fun (rl, c, why) ->
      Fmt.pf ppf "certified infinite: rule %s on %s (%s)@\n" rl c why)
    r.r_certified;
  Fmt.pf ppf "minimal siphons (%d%s):@\n" (List.length r.r_siphons)
    (if r.r_siphons_complete then "" else ", truncated");
  List.iter (fun s -> Fmt.pf ppf "  %a@\n" pp_set s) r.r_siphons;
  Fmt.pf ppf "minimal traps (%d%s):@\n" (List.length r.r_traps)
    (if r.r_traps_complete then "" else ", truncated");
  List.iter (fun s -> Fmt.pf ppf "  %a@\n" pp_set s) r.r_traps;
  (match r.r_verdict with
  | Deadlock_free_skeleton ->
    Fmt.pf ppf
      "deadlock: free at skeleton level (every minimal siphon contains an \
       initially marked trap)@\n"
  | May_deadlock bad ->
    Fmt.pf ppf "deadlock: possible — siphons without a marked trap:@\n";
    List.iter (fun s -> Fmt.pf ppf "  %a@\n" pp_set s) bad
  | Unknown_budget ->
    Fmt.pf ppf "deadlock: unknown (siphon enumeration truncated)@\n");
  Fmt.pf ppf "statically independent rule pairs: %d/%d"
    r.r_independent_pairs r.r_rule_pairs

let report_to_json r =
  let buf = Buffer.create 1024 in
  let str s =
    Buffer.add_char buf '"';
    Metrics.json_escape buf s;
    Buffer.add_char buf '"'
  in
  let str_list l =
    Buffer.add_char buf '[';
    List.iteri
      (fun i s ->
        if i > 0 then Buffer.add_string buf ", ";
        str s)
      l;
    Buffer.add_char buf ']'
  in
  let int_vec v =
    Buffer.add_char buf '[';
    Array.iteri
      (fun i n ->
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_string buf (string_of_int n))
      v;
    Buffer.add_char buf ']'
  in
  let vec_list vs =
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_string buf ", ";
        int_vec v)
      vs;
    Buffer.add_char buf ']'
  in
  let named_ints l =
    Buffer.add_char buf '[';
    List.iteri
      (fun i (c, n) ->
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_string buf "{\"component\": ";
        str c;
        Buffer.add_string buf (Printf.sprintf ", \"value\": %d}" n))
      l;
    Buffer.add_char buf ']'
  in
  let set_list l =
    Buffer.add_char buf '[';
    List.iteri
      (fun i s ->
        if i > 0 then Buffer.add_string buf ", ";
        str_list s)
      l;
    Buffer.add_char buf ']'
  in
  Buffer.add_string buf "{\n  \"places\": ";
  str_list (Array.to_list r.r_places);
  Buffer.add_string buf ",\n  \"rules\": ";
  str_list (Array.to_list r.r_rules);
  Buffer.add_string buf ",\n  \"incidence\": ";
  vec_list (Array.to_list r.r_matrix);
  Buffer.add_string buf ",\n  \"p_invariants\": ";
  vec_list r.r_p_invariants;
  Buffer.add_string buf ",\n  \"t_invariants\": ";
  vec_list r.r_t_invariants;
  Buffer.add_string buf ",\n  \"bounds\": ";
  named_ints r.r_bounds;
  Buffer.add_string buf ",\n  \"potentially_unbounded\": ";
  named_ints r.r_unbounded;
  Buffer.add_string buf ",\n  \"certified_infinite\": [";
  List.iteri
    (fun i (rl, c, why) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf "{\"rule\": ";
      str rl;
      Buffer.add_string buf ", \"component\": ";
      str c;
      Buffer.add_string buf ", \"reason\": ";
      str why;
      Buffer.add_char buf '}')
    r.r_certified;
  Buffer.add_string buf "]";
  Buffer.add_string buf ",\n  \"growth\": ";
  named_ints r.r_growth;
  Buffer.add_string buf ",\n  \"siphons\": ";
  set_list r.r_siphons;
  Buffer.add_string buf
    (Printf.sprintf ",\n  \"siphons_complete\": %b" r.r_siphons_complete);
  Buffer.add_string buf ",\n  \"traps\": ";
  set_list r.r_traps;
  Buffer.add_string buf
    (Printf.sprintf ",\n  \"traps_complete\": %b" r.r_traps_complete);
  Buffer.add_string buf ",\n  \"deadlock\": ";
  (match r.r_verdict with
  | Deadlock_free_skeleton -> str "free"
  | May_deadlock _ -> str "possible"
  | Unknown_budget -> str "unknown");
  Buffer.add_string buf
    (Printf.sprintf ",\n  \"independent_pairs\": %d,\n  \"rule_pairs\": %d\n}\n"
       r.r_independent_pairs r.r_rule_pairs);
  Buffer.contents buf
