(** Exploration-progress reporting: a throttled callback, invoked at most
    once per [every_n] items or [every_ns] of wall time.

    Unlike {!Metrics} and {!Span}, progress reporting is not gated on the
    global observability flag — the caller opts in by passing a reporter
    to e.g. [Lts.explore]. *)

type update = {
  u_count : int;  (** items (states) processed so far *)
  u_frontier : int;  (** current frontier / queue depth *)
  u_elapsed_ns : int64;  (** since the first tick *)
  u_rate : float;  (** items per second since the first tick *)
  u_final : bool;  (** true for the completion report *)
}

type t

val create : ?every_n:int -> ?every_ns:int64 -> (update -> unit) -> t
(** Defaults: [every_n] = 10_000 items, [every_ns] = 500ms.  The clock is
    read at most once per [min every_n 256] items. *)

val tick : t -> count:int -> frontier:int -> unit
(** Record that [count] items have been processed in total; invokes the
    callback when a threshold has been crossed. *)

val finish : t -> count:int -> unit
(** Emit a final ([u_final = true]) report — only if at least one
    intermediate report was emitted, so fast runs stay silent. *)

val stderr_reporter :
  ?every_n:int -> ?every_ns:int64 -> label:string -> unit -> t
(** A ready-made reporter printing a live single-line status to stderr. *)
