test/test_core.ml: Alcotest Fmt Fsa_apa Fsa_core Fsa_lts Fsa_model Fsa_requirements Fsa_term Fsa_vanet List String
