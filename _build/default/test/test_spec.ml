(* Tests for Fsa_spec: lexer, parser, elaboration, end-to-end specs. *)

module Token = Fsa_spec.Token
module Lexer = Fsa_spec.Lexer
module Parser = Fsa_spec.Parser
module Ast = Fsa_spec.Ast
module Elaborate = Fsa_spec.Elaborate
module Loc = Fsa_spec.Loc
module Lts = Fsa_lts.Lts

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let all_tokens input =
  let lx = Lexer.make input in
  let rec go acc =
    match Lexer.next lx with
    | Token.Eof, _ -> List.rev acc
    | tok, _ -> go (tok :: acc)
  in
  go []

let test_lexer_tokens () =
  Alcotest.(check int) "punctuation" 9
    (List.length (all_tokens "{ } ( ) [ ] , . :"));
  (match all_tokens "foo 42 \"bar\" -> == != && || !" with
  | [ Token.Ident "foo"; Token.Int 42; Token.String "bar"; Token.Arrow;
      Token.Eq_eq; Token.Bang_eq; Token.And_and; Token.Or_or; Token.Bang ] ->
    ()
  | _ -> Alcotest.fail "unexpected token stream");
  match all_tokens "a // comment to end of line\nb" with
  | [ Token.Ident "a"; Token.Ident "b" ] -> ()
  | _ -> Alcotest.fail "comments must be skipped"

let test_lexer_locations () =
  let lx = Lexer.make "a\n  b" in
  let _, loc_a = Lexer.next lx in
  Alcotest.(check int) "line of a" 1 loc_a.Loc.line;
  let _, loc_b = Lexer.next lx in
  Alcotest.(check int) "line of b" 2 loc_b.Loc.line;
  Alcotest.(check int) "col of b" 3 loc_b.Loc.col

let test_lexer_string_escapes () =
  match all_tokens {|"a\nb\"c"|} with
  | [ Token.String s ] -> Alcotest.(check string) "escapes" "a\nb\"c" s
  | _ -> Alcotest.fail "string literal expected"

let test_lexer_errors () =
  let fails input =
    match all_tokens input with
    | _ -> false
    | exception Loc.Error _ -> true
  in
  Alcotest.(check bool) "unterminated string" true (fails "\"abc");
  Alcotest.(check bool) "lone dash" true (fails "-");
  Alcotest.(check bool) "lone ampersand" true (fails "&");
  Alcotest.(check bool) "bad char" true (fails "#")

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let test_parse_component () =
  let decls =
    Parser.parse_string
      {|
      component C {
        state s = { a, f(b, 1) }
        shared net
        action go: take s(_x), read net(_y) when _x != _y -> put net(_x)
      }
      |}
  in
  match decls with
  | [ Ast.D_component cd ] ->
    Alcotest.(check string) "name" "C" cd.Ast.cd_name;
    Alcotest.(check int) "items" 3 (List.length cd.Ast.cd_items)
  | _ -> Alcotest.fail "one component expected"

let test_parse_instances_and_clusters () =
  let decls =
    Parser.parse_string
      {|
      instance V1 = Vehicle(1) { esp = { sW }, gps = { pos1 } }
      instance V2 = Vehicle(2) { }
      cluster netA = { V1, V2 }
      |}
  in
  match decls with
  | [ Ast.D_instance i1; Ast.D_instance i2; Ast.D_cluster c ] ->
    Alcotest.(check int) "id" 1 i1.Ast.in_id;
    Alcotest.(check int) "overrides" 2 (List.length i1.Ast.in_overrides);
    Alcotest.(check int) "empty overrides" 0 (List.length i2.Ast.in_overrides);
    Alcotest.(check (list string)) "members" [ "V1"; "V2" ] c.Ast.cl_members
  | _ -> Alcotest.fail "unexpected declarations"

let test_parse_model_and_sos () =
  let decls =
    Parser.parse_string
      {|
      model M(i) {
        action a(ESP_i, sW)
        action b
        flow a -> b [policy "perf"]
      }
      sos s {
        use M(1) as X
        use M(2) as Y
        link X.b -> Y.a
      }
      |}
  in
  match decls with
  | [ Ast.D_model md; Ast.D_sos sd ] ->
    Alcotest.(check (option string)) "param" (Some "i") md.Ast.md_param;
    Alcotest.(check int) "actions" 2 (List.length md.Ast.md_actions);
    (match md.Ast.md_flows with
    | [ f ] -> Alcotest.(check (option string)) "policy" (Some "perf") f.Ast.mf_policy
    | _ -> Alcotest.fail "one flow expected");
    Alcotest.(check int) "uses" 2 (List.length sd.Ast.sd_uses);
    Alcotest.(check int) "links" 1 (List.length sd.Ast.sd_links)
  | _ -> Alcotest.fail "model and sos expected"

let test_parse_errors_located () =
  let error_line input =
    match Parser.parse_string input with
    | _ -> None
    | exception Loc.Error (loc, _) -> Some loc.Loc.line
  in
  Alcotest.(check (option int)) "unknown declaration" (Some 1)
    (error_line "garbage");
  Alcotest.(check (option int)) "error on the right line" (Some 2)
    (error_line "component C {\n  bogus\n}")

(* ------------------------------------------------------------------ *)
(* Elaboration                                                         *)
(* ------------------------------------------------------------------ *)

let two_vehicle_spec =
  {|
  component Vehicle {
    state esp = { }
    state gps = { }
    state bus = { }
    state hmi = { }
    shared net
    action sense: take esp(_x) -> put bus(_x)
    action pos:   take gps(_p) -> put bus(_p)
    action send:  take bus(sW), take bus(_p) when position(_p)
                  -> put net(cam(self, _p))
    action rec:   take net(cam(_v, _p)) when _v != self -> put bus(warn(_p))
    action show:  take bus(warn(_p)), take bus(_q)
                  when position(_q) && near(_p, _q) -> put hmi(warn)
  }
  instance V1 = Vehicle(1) { esp = { sW }, gps = { pos1 } }
  instance V2 = Vehicle(2) { gps = { pos2 } }
  |}

let test_elaborate_two_vehicles () =
  let spec = Parser.parse_string two_vehicle_spec in
  let apa = Elaborate.apa_of_spec spec in
  let lts = Lts.explore apa in
  Alcotest.(check int) "13 states" 13 (Lts.nb_states lts);
  Alcotest.(check int) "1 dead" 1 (List.length (Lts.deadlocks lts))

let test_elaborate_clusters () =
  (* four vehicles, two radio clusters: 13^2 states *)
  let spec =
    Parser.parse_string
      (two_vehicle_spec
       ^ {|
      instance V3 = Vehicle(3) { esp = { sW }, gps = { pos3 } }
      instance V4 = Vehicle(4) { gps = { pos4 } }
      cluster netA = { V1, V2 }
      cluster netB = { V3, V4 }
      |})
  in
  let apa = Elaborate.apa_of_spec spec in
  let lts = Lts.explore apa in
  Alcotest.(check int) "169 states with clusters" 169 (Lts.nb_states lts)

let test_elaborate_shared_when_unclustered () =
  (* without clusters all four vehicles share one net: receivers compete
     for messages, so the state space differs from 169 *)
  let spec =
    Parser.parse_string
      (two_vehicle_spec
       ^ {|
      instance V3 = Vehicle(3) { esp = { sW }, gps = { pos3 } }
      instance V4 = Vehicle(4) { gps = { pos4 } }
      |})
  in
  let apa = Elaborate.apa_of_spec spec in
  let lts = Lts.explore apa in
  Alcotest.(check bool) "shared medium changes the behaviour" true
    (Lts.nb_states lts <> 169)

let test_elaborate_errors () =
  let fails input =
    match Elaborate.apa_of_spec (Parser.parse_string input) with
    | _ -> false
    | exception Loc.Error _ -> true
  in
  Alcotest.(check bool) "unknown component" true
    (fails "instance X = Nope(1)");
  Alcotest.(check bool) "variable in initial content" true
    (fails
       "component C { state s = { _x } action a: take s(_y) -> put s(_y) }\n\
        instance X = C(1)");
  Alcotest.(check bool) "unknown state override" true
    (fails
       "component C { state s action a: take s(_x) -> put s(_x) }\n\
        instance X = C(1) { bogus = { a } }");
  (* an unknown guard predicate surfaces (at latest) when the guard is
     evaluated during execution *)
  let guard_spec =
    "component C { state s = { a } action a: take s(_x) when mystery(_x) -> \
     put s(_x) }\n\
     instance X = C(1)"
  in
  let caught_at_elaboration =
    match Elaborate.apa_of_spec (Parser.parse_string guard_spec) with
    | apa -> (
      match Fsa_apa.Apa.step apa (Fsa_apa.Apa.initial_state apa) with
      | _ -> false
      | exception Loc.Error _ -> true)
    | exception Loc.Error _ -> true
  in
  Alcotest.(check bool) "unknown guard predicate" true caught_at_elaboration

let test_elaborate_duplicate_decls () =
  let fails input =
    match Elaborate.env_of_spec (Parser.parse_string input) with
    | _ -> false
    | exception Loc.Error _ -> true
  in
  Alcotest.(check bool) "duplicate component" true
    (fails "component C { state s }\ncomponent C { state s }");
  Alcotest.(check bool) "duplicate instance" true
    (fails
       "component C { state s }\ninstance X = C(1)\ninstance X = C(2)")

let test_elaborate_sos () =
  let spec =
    Parser.parse_string
      {|
      model Warner(i) {
        action sense(ESP_i, sW)
        action send(CU_i, cam(pos))
        flow sense -> send
      }
      model Receiver(i) {
        action rec(CU_i, cam(pos))
        action show(HMI_i, warn)
        flow rec -> show
      }
      sos pair {
        use Warner(1) as W
        use Receiver(2) as R
        link W.send -> R.rec
      }
      |}
  in
  let sos = Elaborate.sos_of_spec spec "pair" in
  let reqs = Fsa_requirements.Derive.of_sos sos in
  Alcotest.(check int) "one requirement" 1 (List.length reqs);
  Alcotest.(check string) "the sensing must be authentic"
    "auth(sense(ESP_1, sW), show(HMI_2, warn), D_2)"
    (Fsa_requirements.Auth.to_string (List.hd reqs));
  match Elaborate.sos_of_spec spec "nope" with
  | _ -> Alcotest.fail "unknown sos must fail"
  | exception Invalid_argument _ -> ()

let test_sterm_elaboration () =
  let t =
    Elaborate.term_of_sterm ~self:(Some (Fsa_term.Term.sym "V1"))
      ~loc:Loc.dummy
      (Ast.S_app ("cam", [ Ast.S_self; Ast.S_app ("_p", []) ]))
  in
  Alcotest.(check string) "self and var" "cam(V1, ?p)"
    (Fsa_term.Term.to_string t);
  match
    Elaborate.term_of_sterm ~self:None ~loc:Loc.dummy Ast.S_self
  with
  | _ -> Alcotest.fail "self outside component must fail"
  | exception Loc.Error _ -> ()

let spec_dir () =
  (* tests run from the dune sandbox; reach back to the source tree *)
  List.find_opt Sys.file_exists
    [ "examples/specs"; "../../../examples/specs"; "../../../../examples/specs" ]

let test_example_spec_file () =
  (* the shipped example specs parse and reproduce the paper's graphs *)
  match spec_dir () with
  | None -> ()
  | Some dir ->
    let spec = Parser.parse_file (Filename.concat dir "two_vehicles.fsa") in
    let lts = Lts.explore (Elaborate.apa_of_spec spec) in
    Alcotest.(check int) "13 states" 13 (Lts.nb_states lts);
    let spec4 = Parser.parse_file (Filename.concat dir "four_vehicles.fsa") in
    let lts4 = Lts.explore (Elaborate.apa_of_spec spec4) in
    Alcotest.(check int) "169 states" 169 (Lts.nb_states lts4);
    (* the smart-grid spec reproduces the programmatic grid APA *)
    let specg = Parser.parse_file (Filename.concat dir "smart_grid.fsa") in
    let ltsg = Lts.explore (Elaborate.apa_of_spec specg) in
    Alcotest.(check int) "80 grid states"
      (Lts.nb_states (Lts.explore (Fsa_grid.Grid_apa.demand_response ())))
      (Lts.nb_states ltsg)

let test_evita_spec_file () =
  (* the spec-language EVITA model matches the programmatic one *)
  match spec_dir () with
  | None -> ()
  | Some dir ->
    let spec = Parser.parse_file (Filename.concat dir "evita_onboard.fsa") in
    let sos = Elaborate.sos_of_spec spec "evita_onboard" in
    let stats = Fsa_model.Sos.stats sos in
    Alcotest.(check int) "38 component boundary actions" 38
      stats.Fsa_model.Sos.nb_component_boundary;
    Alcotest.(check int) "16 system boundary actions" 16
      stats.Fsa_model.Sos.nb_system_boundary;
    Alcotest.(check int) "9 maximal" 9 stats.Fsa_model.Sos.nb_maximal;
    Alcotest.(check int) "7 minimal" 7 stats.Fsa_model.Sos.nb_minimal;
    Alcotest.(check int) "29 requirements" 29
      (List.length (Fsa_requirements.Derive.of_sos sos));
    (* and the requirement pairs coincide with the programmatic model's *)
    let pairs s =
      List.map
        (fun r ->
          (Fsa_term.Action.label (Fsa_requirements.Auth.cause r),
           Fsa_term.Action.label (Fsa_requirements.Auth.effect r)))
        (Fsa_requirements.Derive.of_sos s)
      |> List.sort_uniq compare
    in
    Alcotest.(check (list (pair string string)))
      "same dependence pairs as the programmatic model"
      (pairs Fsa_vanet.Evita.model) (pairs sos)

(* Robustness: the front end must never crash on arbitrary input — it
   either parses or raises a located error. *)
let prop_frontend_total =
  QCheck2.Test.make ~name:"parser is total (parses or raises Loc.Error)"
    ~count:500
    QCheck2.Gen.(string_size ~gen:printable (int_bound 60))
    (fun input ->
      match Parser.parse_string input with
      | _ -> true
      | exception Loc.Error _ -> true)

let suite =
  [ Alcotest.test_case "lexer tokens" `Quick test_lexer_tokens;
    Alcotest.test_case "lexer locations" `Quick test_lexer_locations;
    Alcotest.test_case "lexer string escapes" `Quick test_lexer_string_escapes;
    Alcotest.test_case "lexer errors" `Quick test_lexer_errors;
    Alcotest.test_case "parse component" `Quick test_parse_component;
    Alcotest.test_case "parse instances/clusters" `Quick test_parse_instances_and_clusters;
    Alcotest.test_case "parse model/sos" `Quick test_parse_model_and_sos;
    Alcotest.test_case "parse errors located" `Quick test_parse_errors_located;
    Alcotest.test_case "elaborate two vehicles" `Quick test_elaborate_two_vehicles;
    Alcotest.test_case "elaborate clusters (169)" `Quick test_elaborate_clusters;
    Alcotest.test_case "shared medium differs" `Quick test_elaborate_shared_when_unclustered;
    Alcotest.test_case "elaborate errors" `Quick test_elaborate_errors;
    Alcotest.test_case "duplicate declarations" `Quick test_elaborate_duplicate_decls;
    Alcotest.test_case "elaborate sos" `Quick test_elaborate_sos;
    Alcotest.test_case "sterm elaboration" `Quick test_sterm_elaboration;
    Alcotest.test_case "example spec file" `Quick test_example_spec_file;
    Alcotest.test_case "EVITA spec file" `Quick test_evita_spec_file;
    QCheck_alcotest.to_alcotest prop_frontend_total ]
