(** Agents: acting entities (components, systems) and stakeholders.

    An agent is a role such as [ESP], [GPS], [HMI], [D] (driver) or [RSU],
    optionally indexed by the instance it belongs to.  [ESP_1] is the ESP
    sensor of vehicle 1; [GPS_w] is the GPS sensor of the parameterised
    vehicle [w]; [RSU] is unindexed. *)

type index =
  | Concrete of int  (** a specific instance, e.g. [_1] *)
  | Symbolic of string  (** a parameterised instance, e.g. [_w] *)
  | Unindexed

type t = { role : string; index : index }

val make : ?index:index -> string -> t
val concrete : string -> int -> t
val symbolic : string -> string -> t
val unindexed : string -> t

val role : t -> string
val index : t -> index

val compare : t -> t -> int
val compare_index : index -> index -> int
val equal : t -> t -> bool

val pp : t Fmt.t
val to_string : t -> string

val with_index : index -> t -> t

val reindex : (index -> index) -> t -> t
(** [reindex f t] rewrites the index of an indexed agent; unindexed agents
    are returned unchanged. *)

val is_parameterised : t -> bool

val of_string : string -> t
(** Parse the paper's notation: ["ESP_1"], ["GPS_w"], ["RSU"]. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
