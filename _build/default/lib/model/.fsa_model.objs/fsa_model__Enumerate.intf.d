lib/model/enumerate.mli: Component Fsa_term Sos
