(* Refinement of end-to-end authenticity requirements (Sect. 6: "the
   requirements have to be refined to more concrete requirements in this
   process").

   The elicited requirements deliberately avoid premature assumptions on
   the security architecture (hop-by-hop versus end-to-end measures).
   When the engineering process later fixes an architecture, each
   requirement auth(x, y, P) must be realised by protecting functional
   flows.  This module computes the architectural options:

   - [channels]: every flow lying on some path from the cause to the
     effect — the complete attack surface of the requirement;
   - [min_cut]: a minimum set of flows whose protection severs every
     unprotected path — the cheapest single protection boundary;
   - [hop_by_hop]: the decomposition of the requirement along a concrete
     path into per-hop obligations auth(a_k, a_(k+1), actor(a_(k+1)));
   - [end_to_end]: the alternative single obligation over a protected
     channel between the cause's and the effect's components. *)

module Action = Fsa_term.Action
module Agent = Fsa_term.Agent
module Auth = Fsa_requirements.Auth
module AG = Fsa_model.Action_graph
module Sos = Fsa_model.Sos
module Flow = Fsa_model.Flow

(* ------------------------------------------------------------------ *)
(* Paths and attack surface                                            *)
(* ------------------------------------------------------------------ *)

(* All simple paths from the cause to the effect, capped at [limit]
   paths (the dependency graphs are DAGs, so paths are finite). *)
let simple_paths ?(limit = 1000) sos src dst =
  let g = Sos.dependency_graph sos in
  let count = ref 0 in
  let rec go path v acc =
    if !count >= limit then acc
    else if Action.equal v dst then begin
      incr count;
      List.rev (v :: path) :: acc
    end
    else
      AG.G.Vset.fold
        (fun w acc -> go (v :: path) w acc)
        (AG.G.succ v g) acc
  in
  if AG.G.mem_vertex src g then List.rev (go [] src []) else []

(* Every flow on some path from [src] to [dst]: the attack surface of the
   requirement.  An edge (u, v) lies on such a path iff u is reachable
   from [src] and [dst] is reachable from v. *)
let channels sos src dst =
  let g = Sos.dependency_graph sos in
  if not (AG.G.mem_vertex src g && AG.G.mem_vertex dst g) then []
  else begin
    let from_src = AG.G.reachable src g in
    let to_dst = AG.G.co_reachable dst g in
    Sos.all_flows sos
    |> List.filter (fun f ->
           AG.G.Vset.mem (Flow.src f) from_src
           && AG.G.Vset.mem (Flow.dst f) to_dst)
  end

(* A minimum set of flows whose protection covers every path: the minimum
   edge cut of the sub-graph spanned by the requirement's channels. *)
let min_cut sos src dst =
  let surface = channels sos src dst in
  let g = AG.of_flows surface in
  if not (AG.G.mem_vertex src g && AG.G.mem_vertex dst g) then []
  else
    AG.G.min_edge_cut ~source:src ~sink:dst g
    |> List.map (fun (u, v) ->
           List.find
             (fun f -> Action.equal (Flow.src f) u && Action.equal (Flow.dst f) v)
             surface)

(* ------------------------------------------------------------------ *)
(* Decomposition                                                       *)
(* ------------------------------------------------------------------ *)

type obligation = {
  ob_requirement : Auth.t;
  ob_flow : Flow.t option;  (* the flow the obligation protects, if any *)
}

let pp_obligation ppf o =
  match o.ob_flow with
  | Some f when Flow.is_external f ->
    Fmt.pf ppf "%a  (over the external channel)" Auth.pp o.ob_requirement
  | Some _ | None -> Auth.pp ppf o.ob_requirement

(* The default stakeholder of an intermediate hop: the acting component
   of the receiving action — it must be assured that its input is
   authentic before processing it further. *)
let hop_stakeholder action =
  match Action.actor action with
  | Some actor -> actor
  | None -> Agent.unindexed "SYS"

(* Decompose a requirement along one concrete path into per-hop
   obligations.  The final hop keeps the original stakeholder. *)
let hop_by_hop sos req path =
  let flows = Sos.all_flows sos in
  let flow_between a b =
    List.find_opt
      (fun f -> Action.equal (Flow.src f) a && Action.equal (Flow.dst f) b)
      flows
  in
  let rec hops = function
    | a :: (b :: _ as rest) ->
      let stakeholder =
        if Action.equal b (Auth.effect req) then Auth.stakeholder req
        else hop_stakeholder b
      in
      { ob_requirement = Auth.make ~cause:a ~effect:b ~stakeholder;
        ob_flow = flow_between a b }
      :: hops rest
    | [ _ ] | [] -> []
  in
  hops path

(* The alternative: one end-to-end obligation over a (to be established)
   protected channel between the cause's and the effect's components. *)
let end_to_end req =
  { ob_requirement = req; ob_flow = None }

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)
(* ------------------------------------------------------------------ *)

type plan = {
  p_requirement : Auth.t;
  p_paths : Action.t list list;
  p_surface : Flow.t list;
  p_min_cut : Flow.t list;
  p_hop_decompositions : obligation list list;
}

let plan ?(path_limit = 100) sos req =
  let src = Auth.cause req and dst = Auth.effect req in
  let paths = simple_paths ~limit:path_limit sos src dst in
  { p_requirement = req;
    p_paths = paths;
    p_surface = channels sos src dst;
    p_min_cut = min_cut sos src dst;
    p_hop_decompositions = List.map (hop_by_hop sos req) paths }

let pp_plan ppf p =
  let pp_path ppf path =
    Fmt.pf ppf "@[%a@]" Fmt.(list ~sep:(any " -> ") Action.pp) path
  in
  Fmt.pf ppf
    "@[<v2>refinement of %a:@,\
     paths (%d):@,%a@,\
     attack surface: %d flows@,\
     minimum protection set (%d flows):@,%a@,\
     hop-by-hop obligations of the first path:@,%a@]"
    Auth.pp p.p_requirement (List.length p.p_paths)
    Fmt.(list ~sep:cut (fun ppf path -> Fmt.pf ppf "- %a" pp_path path))
    p.p_paths (List.length p.p_surface) (List.length p.p_min_cut)
    Fmt.(list ~sep:cut (fun ppf f -> Fmt.pf ppf "- %a" Flow.pp f))
    p.p_min_cut
    Fmt.(
      list ~sep:cut (fun ppf o -> Fmt.pf ppf "- %a" pp_obligation o))
    (match p.p_hop_decompositions with d :: _ -> d | [] -> [])
