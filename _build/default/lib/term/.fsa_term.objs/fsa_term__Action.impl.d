lib/term/action.ml: Agent Fmt Lexer List Map Option Printf Set String Term
