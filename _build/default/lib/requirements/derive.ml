(* Derivation of authenticity requirements from a system-of-systems
   instance (Sect. 4.3-4.4):

     1. build the partial order zeta* of the instance's functional flow,
     2. restrict to chi = zeta* on (minima x maxima),
     3. each pair (x, y) in chi yields auth(x, y, stakeholder(y)).

   The stakeholder function assigns to each outgoing boundary action the
   agent that must be assured of the requirement — e.g. the driver D_w for
   show(HMI_w, warn). *)

module Action = Fsa_term.Action
module Agent = Fsa_term.Agent

type stakeholder_assignment = Action.t -> Agent.t

(* The default assignment of the vehicular scenario: the stakeholder of an
   output action is the human principal of the component's system instance
   — the driver D_i for an action of HMI_i; otherwise the acting component
   itself (or an "ENV" agent for actor-less actions). *)
let default_stakeholder action =
  match Action.actor action with
  | None -> Agent.unindexed "ENV"
  | Some actor -> (
    match Agent.role actor with
    | "HMI" -> Agent.make ~index:(Agent.index actor) "D"
    | _ -> actor)

let of_poset ~stakeholder p =
  List.filter_map
    (fun (x, y) ->
      if Action.equal x y then None
      else Some (Auth.make ~cause:x ~effect:y ~stakeholder:(stakeholder y)))
    (Fsa_model.Action_graph.P.chi p)
  |> Auth.normalise

let of_sos ?(stakeholder = default_stakeholder) sos =
  of_poset ~stakeholder (Fsa_model.Sos.poset sos)

(* Requirements for one particular output action: the restriction of chi to
   pairs ending in [effect] — Example 1/2 of the paper derive requirements
   for show(HMI_w, warn) only. *)
let for_effect ?(stakeholder = default_stakeholder) sos effect =
  List.filter (fun r -> Action.equal (Auth.effect r) effect) (of_sos ~stakeholder sos)

(* Union over a family of SoS instances (Sect. 4.4: "the union of all these
   requirements for the different instances poses the set of requirements
   for the whole system"). *)
let of_instances ?(stakeholder = default_stakeholder) instances =
  List.fold_left
    (fun acc sos -> Auth.union acc (of_sos ~stakeholder sos))
    [] instances
