(* The functional security analysis methodology — the paper's primary
   contribution, as a library facade over the substrates.

   Two analysis paths produce the set of authenticity requirements of a
   system of systems:

   - the *manual* path (Sect. 4): functional model -> partial order zeta*
     -> restriction chi to (minima x maxima) -> auth(x, y, stakeholder(y));

   - the *tool* path (Sect. 5): APA model -> reachability graph ->
     minima/maxima identification -> per-pair functional dependence test
     (directly on the graph, or by abstraction with an alphabetic
     homomorphism and inspection of the minimal automaton).

   Both paths are implemented and can be cross-validated against each
   other via a label correspondence. *)

module Action = Fsa_term.Action
module Agent = Fsa_term.Agent
module Sos = Fsa_model.Sos
module Auth = Fsa_requirements.Auth
module Derive = Fsa_requirements.Derive
module Classify = Fsa_requirements.Classify
module Lts = Fsa_lts.Lts
module Hom = Fsa_hom.Hom

let log_src = Logs.Src.create "fsa.core" ~doc:"analysis pipeline phases"

module Log = (val Logs.src_log log_src)

module Span = Fsa_obs.Span

(* ------------------------------------------------------------------ *)
(* Manual path                                                         *)
(* ------------------------------------------------------------------ *)

type manual_report = {
  m_sos : Sos.t;
  m_stats : Sos.stats;
  m_boundary : Sos.boundary;
  m_chi : (Action.t * Action.t) list;
  m_requirements : Auth.t list;
  m_classified : (Auth.t * Classify.class_) list;
}

let manual ?(stakeholder = Derive.default_stakeholder) sos =
  Span.with_ ~cat:"core" "manual" @@ fun () ->
  let poset = Span.with_ ~cat:"core" "manual.poset" (fun () -> Sos.poset sos) in
  let requirements =
    Span.with_ ~cat:"core" "manual.derive" (fun () ->
        Derive.of_sos ~stakeholder sos)
  in
  let classified =
    Span.with_ ~cat:"core" "manual.classify" (fun () ->
        Classify.classify_all sos requirements)
  in
  Log.debug (fun m ->
      m "manual path %s: %d requirements" (Sos.name sos)
        (List.length requirements));
  { m_sos = sos;
    m_stats = Sos.stats sos;
    m_boundary = Sos.boundary sos;
    m_chi = Fsa_model.Action_graph.P.chi poset;
    m_requirements = requirements;
    m_classified = classified }

let pp_manual_report ppf r =
  Fmt.pf ppf
    "@[<v>== manual functional security analysis: %s ==@,\
     model: %a@,\
     incoming boundary actions: @[%a@]@,\
     outgoing boundary actions: @[%a@]@,\
     requirements:@,%a@]"
    (Sos.name r.m_sos) Sos.pp_stats r.m_stats
    Fmt.(list ~sep:comma Action.pp)
    r.m_boundary.Sos.incoming
    Fmt.(list ~sep:comma Action.pp)
    r.m_boundary.Sos.outgoing
    Fmt.(list ~sep:cut (fun ppf rc -> Fmt.pf ppf "- %a" Classify.pp_classified rc))
    r.m_classified

(* ------------------------------------------------------------------ *)
(* Tool path                                                           *)
(* ------------------------------------------------------------------ *)

type dependence_method =
  | Direct  (* BFS on the reachability graph *)
  | Abstract  (* homomorphism + minimal automaton, as in Sect. 5.5 *)

(* Wall-clock breakdown of one (min, max) dependence test.  For the
   Direct method the whole BFS is accounted to the compare phase; the
   erase/determinise/minimise stages exist only under Abstract. *)
type pair_timing = {
  pt_min : Action.t;
  pt_max : Action.t;
  pt_pruned : bool;
  pt_erase_ns : int64;
  pt_determinise_ns : int64;
  pt_minimise_ns : int64;
  pt_compare_ns : int64;
}

type phase_timings = {
  ph_explore_ns : int64;
  ph_min_max_ns : int64;
  ph_matrix_ns : int64;
  ph_derive_ns : int64;
  ph_pairs : pair_timing list;
}

type tool_report = {
  t_lts : Lts.t;
  t_stats : Lts.stats;
  t_minima : Action.t list;
  t_maxima : Action.t list;
  t_matrix : (Action.t * (Action.t * bool) list) list;
  t_requirements : Auth.t list;
  t_timings : phase_timings;
}

let dependence ~meth lts ~min_action ~max_action =
  match meth with
  | Direct -> Lts.depends_on lts ~max_action ~min_action
  | Abstract -> Hom.depends_abstract lts ~min_action ~max_action

let dependence_timed ~meth lts ~min_action ~max_action =
  match meth with
  | Direct ->
    let t0 = Span.now_ns () in
    let dep = Lts.depends_on lts ~max_action ~min_action in
    let t1 = Span.now_ns () in
    ( dep,
      { Hom.dt_erase_ns = 0L;
        dt_determinise_ns = 0L;
        dt_minimise_ns = 0L;
        dt_compare_ns = Int64.sub t1 t0 } )
  | Abstract -> Hom.depends_abstract_timed lts ~min_action ~max_action

module Structural = Fsa_struct.Structural

(* Static dependence pruning.  [prune mn mx] answers [true] only when it
   is sound to skip the dependence test and record "independent": the
   LTS must be labelled by rule names (the default labelling — an action
   with an actor, arguments or a label outside the rule names disables
   pruning for the whole run), and the token-flow graph of the net
   skeleton must admit no path from [mn]'s rule to [mx]'s rule.  Then no
   firing of [mx] can consume or read (transitively) anything [mn]
   produced: deleting [mn]'s firings and their downward flow closure
   from any run leaves a valid run still containing [mx], so the
   functional dependence test is negative by construction and pruning
   cannot change the result. *)
let static_pruner apa lts =
  let rule_names = Fsa_apa.Apa.rule_names apa in
  let default_labelled =
    Action.Set.for_all
      (fun a ->
        Action.equal a (Action.make (Action.label a))
        && List.mem (Action.label a) rule_names)
      (Lts.alphabet lts)
  in
  if not default_labelled then fun _ _ -> false
  else
    let indep = Structural.independent_all (Structural.of_apa apa) in
    fun mn mx ->
      not (Action.equal mn mx)
      && Lazy.force indep (Action.label mn) (Action.label mx)

let c_pairs_pruned = Structural.pairs_pruned

let tool ?(meth = Abstract) ?(max_states = 1_000_000) ?(jobs = 1)
    ?(prune = false) ?progress ~stakeholder apa =
  Span.with_ ~cat:"core" "tool" @@ fun () ->
  let timed f =
    let t0 = Span.now_ns () in
    let v = f () in
    (v, Int64.sub (Span.now_ns ()) t0)
  in
  let lts, ph_explore_ns =
    timed @@ fun () ->
    Span.with_ ~cat:"core" "tool.explore" (fun () ->
        if jobs > 1 then Lts.explore_par ~max_states ?progress ~jobs apa
        else Lts.explore ~max_states ?progress apa)
  in
  let (minima, maxima), ph_min_max_ns =
    timed @@ fun () ->
    Span.with_ ~cat:"core" "tool.min_max" (fun () ->
        ( Action.Set.elements (Lts.minima lts),
          Action.Set.elements (Lts.maxima lts) ))
  in
  let pruned = if prune then static_pruner apa lts else fun _ _ -> false in
  let pair_timings = ref [] in
  let matrix, ph_matrix_ns =
    timed @@ fun () ->
    Span.with_ ~cat:"core" "tool.dependence_matrix" @@ fun () ->
    List.map
      (fun mx ->
        (mx,
         List.map
           (fun mn ->
             if pruned mn mx then begin
               Fsa_obs.Metrics.incr c_pairs_pruned;
               pair_timings :=
                 { pt_min = mn;
                   pt_max = mx;
                   pt_pruned = true;
                   pt_erase_ns = 0L;
                   pt_determinise_ns = 0L;
                   pt_minimise_ns = 0L;
                   pt_compare_ns = 0L }
                 :: !pair_timings;
               (mn, false)
             end
             else begin
               let dep, dt =
                 dependence_timed ~meth lts ~min_action:mn ~max_action:mx
               in
               pair_timings :=
                 { pt_min = mn;
                   pt_max = mx;
                   pt_pruned = false;
                   pt_erase_ns = dt.Hom.dt_erase_ns;
                   pt_determinise_ns = dt.Hom.dt_determinise_ns;
                   pt_minimise_ns = dt.Hom.dt_minimise_ns;
                   pt_compare_ns = dt.Hom.dt_compare_ns }
                 :: !pair_timings;
               (mn, dep)
             end)
           minima))
      maxima
  in
  let requirements, ph_derive_ns =
    timed @@ fun () ->
    Span.with_ ~cat:"core" "tool.derive" @@ fun () ->
    List.concat_map
      (fun (mx, row) ->
        List.filter_map
          (fun (mn, dep) ->
            if dep then
              Some (Auth.make ~cause:mn ~effect:mx ~stakeholder:(stakeholder mx))
            else None)
          row)
      matrix
    |> Auth.normalise
  in
  Log.debug (fun m ->
      m "tool path %s: %d states, %d minima x %d maxima, %d requirements"
        (Lts.name lts) (Lts.nb_states lts) (List.length minima)
        (List.length maxima)
        (List.length requirements));
  { t_lts = lts;
    t_stats = Lts.stats lts;
    t_minima = minima;
    t_maxima = maxima;
    t_matrix = matrix;
    t_requirements = requirements;
    t_timings =
      { ph_explore_ns;
        ph_min_max_ns;
        ph_matrix_ns;
        ph_derive_ns;
        ph_pairs = List.rev !pair_timings } }

let pp_tool_report ppf r =
  let pp_row ppf (mx, row) =
    Fmt.pf ppf "%a depends on: @[%a@]" Action.pp mx
      Fmt.(list ~sep:comma Action.pp)
      (List.filter_map (fun (mn, d) -> if d then Some mn else None) row)
  in
  Fmt.pf ppf
    "@[<v>== tool-assisted analysis: %s ==@,\
     reachability graph: %a@,\
     minima: @[%a@]@,\
     maxima: @[%a@]@,\
     dependence:@,%a@,\
     requirements:@,%a@]"
    (Lts.name r.t_lts) Lts.pp_stats r.t_stats
    Fmt.(list ~sep:comma Action.pp)
    r.t_minima
    Fmt.(list ~sep:comma Action.pp)
    r.t_maxima
    Fmt.(list ~sep:cut pp_row)
    r.t_matrix Auth.pp_set r.t_requirements

(* ------------------------------------------------------------------ *)
(* Cross-validation of the two paths                                   *)
(* ------------------------------------------------------------------ *)

type crosscheck = {
  c_agree : bool;
  c_manual_only : Auth.t list;
  c_tool_only : Auth.t list;
  c_unmapped : Action.t list;  (* tool actions without a manual image *)
}

(* Translate the tool path's requirements into the manual action
   vocabulary via [map] (e.g. V1_sense -> sense(ESP_1, sW)) and compare
   requirement sets.  Stakeholders are compared as well, so [map] must be
   paired with consistent stakeholder assignments on both sides. *)
let crosscheck ~map ~manual_requirements ~tool_requirements =
  let unmapped = ref [] in
  let translate r =
    match map (Auth.cause r), map (Auth.effect r) with
    | Some cause, Some effect ->
      Some (Auth.make ~cause ~effect ~stakeholder:(Auth.stakeholder r))
    | None, _ ->
      unmapped := Auth.cause r :: !unmapped;
      None
    | _, None ->
      unmapped := Auth.effect r :: !unmapped;
      None
  in
  let tool_translated = List.filter_map translate tool_requirements in
  let manual_only = Auth.diff manual_requirements tool_translated in
  let tool_only = Auth.diff tool_translated manual_requirements in
  { c_agree = manual_only = [] && tool_only = [] && !unmapped = [];
    c_manual_only = manual_only;
    c_tool_only = tool_only;
    c_unmapped = List.sort_uniq Action.compare !unmapped }

let pp_crosscheck ppf c =
  if c.c_agree then Fmt.pf ppf "both analysis paths agree"
  else
    Fmt.pf ppf
      "@[<v>analysis paths disagree:@,manual only: %a@,tool only: %a@,\
       unmapped tool actions: @[%a@]@]"
      Auth.pp_set c.c_manual_only Auth.pp_set c.c_tool_only
      Fmt.(list ~sep:comma Action.pp)
      c.c_unmapped
