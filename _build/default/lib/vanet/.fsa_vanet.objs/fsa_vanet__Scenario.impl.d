lib/vanet/scenario.ml: Fsa_model Fsa_term Fun List Printf
