lib/automata/automata.ml: Array Fmt Fsa_graph Fun Int List Map Printf Queue Set Stdlib
