(* Agents are the acting entities of the model: components such as [ESP_1]
   or [GPS_w], whole systems such as [RSU], and stakeholders such as the
   driver [D_w].  An agent is a role optionally indexed by the system
   instance it belongs to; indices may be concrete numbers or symbolic
   (parameterised) names such as [w]. *)

type index =
  | Concrete of int
  | Symbolic of string
  | Unindexed

type t = { role : string; index : index }

let make ?index role =
  let index = match index with None -> Unindexed | Some i -> i in
  { role; index }

let concrete role i = { role; index = Concrete i }
let symbolic role x = { role; index = Symbolic x }
let unindexed role = { role; index = Unindexed }

let role t = t.role
let index t = t.index

let compare_index a b =
  match a, b with
  | Concrete x, Concrete y -> Stdlib.compare x y
  | Concrete _, _ -> -1
  | _, Concrete _ -> 1
  | Symbolic x, Symbolic y -> String.compare x y
  | Symbolic _, _ -> -1
  | _, Symbolic _ -> 1
  | Unindexed, Unindexed -> 0

let compare a b =
  let c = String.compare a.role b.role in
  if c <> 0 then c else compare_index a.index b.index

let equal a b = compare a b = 0

let pp_index ppf = function
  | Concrete i -> Fmt.pf ppf "_%d" i
  | Symbolic x -> Fmt.pf ppf "_%s" x
  | Unindexed -> ()

let pp ppf t = Fmt.pf ppf "%s%a" t.role pp_index t.index

let to_string t = Fmt.str "%a" pp t

let with_index index t = { t with index }

let reindex f t =
  match t.index with
  | Unindexed -> t
  | Concrete _ | Symbolic _ -> { t with index = f t.index }

let is_parameterised t =
  match t.index with Symbolic _ -> true | Concrete _ | Unindexed -> false

(* Parse agent notation such as "ESP_1", "GPS_w" or "RSU": the substring
   after the last underscore is the index when it is either a number or a
   short (<= 3 chars) lowercase name; otherwise the whole string is an
   unindexed role.  This heuristic matches the notation used throughout the
   paper while leaving multi-word roles like "road_side" intact. *)
let of_string s =
  match String.rindex_opt s '_' with
  | None -> unindexed s
  | Some i ->
    let role = String.sub s 0 i in
    let suffix = String.sub s (i + 1) (String.length s - i - 1) in
    let is_num = suffix <> "" && String.for_all (fun c -> c >= '0' && c <= '9') suffix in
    let is_param =
      suffix <> ""
      && String.length suffix <= 3
      && String.for_all (fun c -> c >= 'a' && c <= 'z') suffix
    in
    if role = "" then unindexed s
    else if is_num then concrete role (int_of_string suffix)
    else if is_param then symbolic role suffix
    else unindexed s

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)
