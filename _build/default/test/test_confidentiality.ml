(* Tests for Fsa_requirements.Confidentiality: the forward-flow dual
   analysis. *)

module Term = Fsa_term.Term
module Agent = Fsa_term.Agent
module Action = Fsa_term.Action
module Conf = Fsa_requirements.Confidentiality
module S = Fsa_vanet.Scenario
module Evita = Fsa_vanet.Evita

let level = Alcotest.testable Conf.pp_level (fun a b -> Conf.compare_level a b = 0)

let test_lattice () =
  Alcotest.(check bool) "public below secret" true
    (Conf.leq_level Conf.Public Conf.Secret);
  Alcotest.(check bool) "secret not below public" false
    (Conf.leq_level Conf.Secret Conf.Public);
  Alcotest.check level "join" Conf.Confidential
    (Conf.join Conf.Internal Conf.Confidential);
  Alcotest.check level "joins" Conf.Secret
    (Conf.joins [ Conf.Public; Conf.Secret; Conf.Internal ]);
  Alcotest.check level "empty joins is bottom" Conf.Public (Conf.joins []);
  List.iter
    (fun l -> Alcotest.(check bool) "reflexive" true (Conf.leq_level l l))
    [ Conf.Public; Conf.Internal; Conf.Confidential; Conf.Secret ]

let test_derive_two_vehicles () =
  (* every (input, output) chi pair yields a confidentiality requirement
     under the default (all-internal) labelling *)
  let reqs = Conf.derive S.two_vehicles in
  Alcotest.(check int) "three forward-flow requirements" 3 (List.length reqs);
  List.iter
    (fun r ->
      Alcotest.(check string) "all flows reach the HMI display" "show"
        (Action.label r.Conf.sink))
    reqs

let test_threshold_filters () =
  (* with a threshold of Confidential and all-internal sources nothing is
     derived *)
  let reqs = Conf.derive ~threshold:Conf.Confidential S.two_vehicles in
  Alcotest.(check int) "nothing above threshold" 0 (List.length reqs);
  (* classify the GPS position as confidential: its flows reappear *)
  let labelling =
    { Conf.default_labelling with
      Conf.source_level =
        (fun a ->
          match Action.actor a with
          | Some actor when Agent.role actor = "GPS" -> Conf.Confidential
          | Some _ | None -> Conf.Public) }
  in
  let reqs =
    Conf.derive ~labelling ~threshold:Conf.Confidential S.two_vehicles
  in
  Alcotest.(check int) "both GPS sources protected" 2 (List.length reqs);
  List.iter
    (fun r ->
      Alcotest.(check string) "sources are positions" "pos"
        (Action.label r.Conf.source))
    reqs

let test_inferred_levels () =
  let labelling =
    { Conf.default_labelling with
      Conf.source_level =
        (fun a ->
          if Action.label a = "sense" then Conf.Secret else Conf.Public) }
  in
  match Conf.inferred_levels ~labelling S.two_vehicles with
  | [ (sink, lvl) ] ->
    Alcotest.(check string) "single output" "show" (Action.label sink);
    Alcotest.check level "secret taints the display" Conf.Secret lvl
  | other ->
    Alcotest.fail (Printf.sprintf "expected one output, got %d" (List.length other))

let test_violations () =
  let labelling =
    { Conf.default_labelling with
      Conf.source_level =
        (fun a ->
          if Action.label a = "sense" then Conf.Secret else Conf.Public);
      Conf.sink_clearance = (fun _ -> Conf.Internal) }
  in
  (match Conf.violations ~labelling S.two_vehicles with
  | [ v ] ->
    Alcotest.(check string) "violating sink" "show" (Action.label v.Conf.v_sink);
    Alcotest.check level "inferred" Conf.Secret v.Conf.v_inferred;
    Alcotest.check level "clearance" Conf.Internal v.Conf.v_clearance;
    Alcotest.(check int) "one offending source" 1 (List.length v.Conf.v_sources)
  | other ->
    Alcotest.fail (Printf.sprintf "expected one violation, got %d" (List.length other)));
  (* with sufficient clearance: no violations *)
  let cleared =
    { labelling with Conf.sink_clearance = (fun _ -> Conf.Secret) }
  in
  Alcotest.(check int) "cleared sink" 0
    (List.length (Conf.violations ~labelling:cleared S.two_vehicles))

let test_evita_dual_analysis () =
  (* forward flows mirror the authenticity analysis: same chi pairs *)
  let conf =
    Conf.derive
      ~labelling:
        { Conf.default_labelling with
          Conf.observers = (fun a -> Evita.stakeholder a) }
      Evita.model
  in
  Alcotest.(check int) "29 forward-flow requirements (chi pairs)" 29
    (List.length conf);
  (* privacy case: GPS position is confidential; all five dependent
     outputs need cleared observers *)
  let labelling =
    { Conf.default_labelling with
      Conf.source_level =
        (fun a ->
          if Action.label a = "gps_acquire" then Conf.Confidential
          else Conf.Public) }
  in
  let gps_reqs =
    Conf.derive ~labelling ~threshold:Conf.Confidential Evita.model
  in
  Alcotest.(check (list string)) "position reaches five outputs"
    [ "dash_status"; "hmi_show"; "log_write"; "telem_report"; "v2x_send" ]
    (List.sort_uniq compare
       (List.map (fun r -> Action.label r.Conf.sink) gps_reqs))

let test_prose_and_pp () =
  let r = List.hd (Conf.derive S.two_vehicles) in
  let prose = Fmt.str "%a" Conf.pp_prose r in
  Alcotest.(check bool) "prose mentions the level" true
    (let sub = "internal" in
     let rec contains i =
       i + String.length sub <= String.length prose
       && (String.sub prose i (String.length sub) = sub || contains (i + 1))
     in
     contains 0);
  let listing = Fmt.str "%a" Conf.pp_set (Conf.derive S.two_vehicles) in
  Alcotest.(check bool) "set listing non-empty" true (String.length listing > 0)

let suite =
  [ Alcotest.test_case "lattice" `Quick test_lattice;
    Alcotest.test_case "derive (two vehicles)" `Quick test_derive_two_vehicles;
    Alcotest.test_case "threshold filtering" `Quick test_threshold_filters;
    Alcotest.test_case "inferred levels" `Quick test_inferred_levels;
    Alcotest.test_case "violations" `Quick test_violations;
    Alcotest.test_case "EVITA dual analysis" `Quick test_evita_dual_analysis;
    Alcotest.test_case "prose and pp" `Quick test_prose_and_pp ]
