(** APA models of the vehicular scenario (Sect. 5.1–5.2 of the paper). *)

module Term = Fsa_term.Term
module Action = Fsa_term.Action
module Apa = Fsa_apa.Apa

val vehicle_id : int -> Term.t

(** {1 Transition labels (tool naming, e.g. [V1_sense])} *)

val v_sense : int -> Action.t
val v_pos : int -> Action.t
val v_send : int -> Action.t
val v_rec : int -> Action.t
val v_show : int -> Action.t
val v_fwd : int -> Action.t

type role = Full | Warner | Receiver | Forwarder

val esp : int -> string
val gps : int -> string
val bus : int -> string
val hmi : int -> string
val sw : Term.t
val pos1 : Term.t
val pos2 : Term.t
val pos3 : Term.t
val pos4 : Term.t

val rules :
  ?net_in:string ->
  ?net_out:string ->
  ?range:int ->
  role:role ->
  int ->
  Apa.rule list

val vehicle :
  ?net_in:string ->
  ?net_out:string ->
  ?range:int ->
  ?role:role ->
  ?esp_init:Term.t list ->
  ?gps_init:Term.t list ->
  int ->
  Apa.t
(** The APA model of one vehicle (Fig. 5). *)

val rsu :
  ?net_out:string -> ?cam_init:Term.t list -> unit -> Apa.t
(** The roadside unit (use case 1): broadcasts the pending message. *)

val rsu_and_vehicle : unit -> Apa.t
(** Fig. 2 as a tool-path instance: vehicle 1 receives from the RSU. *)

val two_vehicles : unit -> Apa.t
(** Example 5 / Fig. 6: V1 warns, V2 receives. *)

val four_vehicles : unit -> Apa.t
(** Fig. 8: two independent pairs (V1 warns V2, V3 warns V4). *)

val four_vehicles_shared_net : unit -> Apa.t
(** The flawed single-medium variant of Fig. 8: receivers can consume
    messages they cannot process, leaving stuck deadlocks. *)

val pairs : ?uniform:bool -> int -> Apa.t
(** [pairs k]: k independent warner/receiver pairs (13^k states).
    [uniform] (default [false]) places every pair at the same two
    positions instead of alternating, so the pairs are interchangeable
    for symmetry reduction. *)

val guard_attest : string -> string option
(** Canonical guard signatures of the vehicle rules, for
    [Fsa_sym.Sym.detect ~guard_sig]: the guards are self-relative, so
    instances of the same role carry equivalent guards.  Valid for
    models built with a single radio range (all bundled scenarios). *)

val chain : int -> Apa.t
(** [chain n]: V1 warns, V2..V(n-1) forward hop by hop, Vn receives. *)

val stakeholder : Action.t -> Fsa_term.Agent.t
(** Driver [D_i] for [Vi_show]; a system agent otherwise. *)

val manual_action_of_label : Action.t -> Action.t option
(** Map tool-path labels ([V1_sense]) to the corresponding manual-path
    actions ([sense(ESP_1, sW)]) for cross-validation. *)
