(* From a derived requirement set to an engineering-grade report:

     1. run the tool path over the two-vehicle instance (Sect. 5),
     2. build an [Fsa_report.Report] from the run — stable SR-* ids,
        provenance, traceability, coverage and verification tags,
     3. emit it as Markdown and deterministic JSON.

   A programmatic APA model has no specification to attribute actions
   against, so the origins come from the [V1_send -> (V1, send)]
   rule-name heuristic ([origins_of_rules]); with a spec file,
   [origins_of_skeleton] gives exact instance/component attribution
   (that is what `fsa report` does).

   Run with: dune exec examples/requirements_report.exe *)

module V = Fsa_vanet.Vehicle_apa
module Analysis = Fsa_core.Analysis
module R = Fsa_report.Report

let section title = Fmt.pr "@.=== %s ===@." title

let () =
  let apa = V.two_vehicles () in
  let tool = Analysis.tool ~stakeholder:V.stakeholder apa in

  section "Report of the two-vehicle instance";
  let alphabet = Fsa_apa.Apa.rule_names apa in
  let report =
    R.of_tool
      ~origins:(R.origins_of_rules alphabet)
      ~alphabet
      ~digest:"programmatic-two-vehicles"
      ~settings:
        { R.sg_path = "tool";
          sg_method = "abstract";
          sg_engine = "shared-v1";
          sg_reduce = "none";
          sg_prune = "none";
          sg_max_states = 1_000_000 }
      tool
  in
  print_string (R.to_markdown report);

  section "Identifiers are stable content digests";
  List.iter
    (fun it ->
      Fmt.pr "%s %s  %s  (%s, rank %d)@." it.R.it_id it.R.it_digest
        (Fsa_requirements.Auth.to_string it.R.it_requirement)
        (R.verification_to_string it.R.it_verification)
        it.R.it_rank)
    report.R.r_items;

  section "Deterministic JSON (body only)";
  print_string (R.to_json_string ~body_only:true report);
  print_newline ()
