lib/requirements/diff.ml: Auth Classify Derive Fmt Fsa_model Fsa_term List
