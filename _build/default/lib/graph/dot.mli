(** Graphviz DOT emission for analysis artefacts. *)

type t

val create : ?graph_attrs:(string * string) list -> string -> t
val node : ?attrs:(string * string) list -> t -> string -> unit
val edge : ?attrs:(string * string) list -> t -> string -> string -> unit
val quote : string -> string
val to_string : t -> string
val write_file : string -> t -> unit
