(* Elaboration of parsed specifications into APA models (tool path) and
   functional SoS models (manual path). *)

open Ast
module Term = Fsa_term.Term
module Agent = Fsa_term.Agent
module Action = Fsa_term.Action
module Apa = Fsa_apa.Apa
module Component = Fsa_model.Component
module Flow = Fsa_model.Flow
module Sos = Fsa_model.Sos

(* ------------------------------------------------------------------ *)
(* Terms and conditions                                                *)
(* ------------------------------------------------------------------ *)

(* Identifiers with a leading underscore are variables; [self] denotes
   the identity of the enclosing instance. *)
let rec term_of_sterm ~self ~loc = function
  | S_int i -> Term.int i
  | S_self -> (
    match self with
    | Some t -> t
    | None -> Loc.error loc "'self' is only meaningful inside a component")
  | S_app (id, []) ->
    if String.length id > 1 && id.[0] = '_' then
      Term.var (String.sub id 1 (String.length id - 1))
    else Term.sym id
  | S_app (f, args) -> Term.app f (List.map (term_of_sterm ~self ~loc) args)

(* Builtin guard predicates available in [when] clauses. *)
let builtin loc name args =
  match name, args with
  | "position", [ p ] -> Fsa_vanet.Geo.is_position p
  | "near", [ p; q ] -> Fsa_vanet.Geo.in_range p q
  | "position", _ | "near", _ ->
    Loc.error loc "predicate %s applied to the wrong number of arguments" name
  | _, _ -> Loc.error loc "unknown guard predicate %s" name

let compile_cond ~self ~loc cond =
  let eval subst sterm =
    let t = Term.Subst.apply subst (term_of_sterm ~self ~loc sterm) in
    if Term.is_ground t then Some t else None
  in
  let rec go cond subst =
    match cond with
    | C_true -> true
    | C_eq (a, b) -> (
      match eval subst a, eval subst b with
      | Some x, Some y -> Term.equal x y
      | (None | Some _), _ -> false)
    | C_neq (a, b) -> (
      match eval subst a, eval subst b with
      | Some x, Some y -> not (Term.equal x y)
      | (None | Some _), _ -> false)
    | C_call (f, args) -> (
      let args = List.map (eval subst) args in
      match List.partition Option.is_some args with
      | some, [] -> builtin loc f (List.map Option.get some)
      | _, _ :: _ -> false)
    | C_and (a, b) -> go a subst && go b subst
    | C_or (a, b) -> go a subst || go b subst
    | C_not a -> not (go a subst)
  in
  go cond

(* ------------------------------------------------------------------ *)
(* APA instances                                                       *)
(* ------------------------------------------------------------------ *)

type env = {
  components : (string * component_decl) list;
  instances : instance_decl list;
  clusters : cluster_decl list;
  models : (string * model_decl) list;
  soses : sos_decl list;
  checks : check_decl list;
}

let env_of_spec spec =
  let init = { components = []; instances = []; clusters = []; models = [];
               soses = []; checks = [] } in
  let add env = function
    | D_component c ->
      if List.mem_assoc c.cd_name env.components then
        Loc.error c.cd_loc "component %s is declared twice" c.cd_name;
      { env with components = env.components @ [ (c.cd_name, c) ] }
    | D_instance i ->
      if List.exists (fun j -> String.equal j.in_name i.in_name) env.instances
      then Loc.error i.in_loc "instance %s is declared twice" i.in_name;
      { env with instances = env.instances @ [ i ] }
    | D_cluster c -> { env with clusters = env.clusters @ [ c ] }
    | D_model m ->
      if List.mem_assoc m.md_name env.models then
        Loc.error m.md_loc "model %s is declared twice" m.md_name;
      { env with models = env.models @ [ (m.md_name, m) ] }
    | D_sos s -> { env with soses = env.soses @ [ s ] }
    | D_check c -> { env with checks = env.checks @ [ c ] }
  in
  List.fold_left add init spec

(* The cluster that an instance's shared component maps to: the name of
   the cluster listing the instance, or the shared name itself. *)
let cluster_of env inst_name shared_name =
  match
    List.find_opt (fun c -> List.mem inst_name c.cl_members) env.clusters
  with
  | Some c -> c.cl_name
  | None -> shared_name

let states_of_decl cd =
  List.filter_map (function I_state (n, init) -> Some (n, init) | I_shared _ | I_rule _ -> None) cd.cd_items

let shared_of_decl cd =
  List.filter_map (function I_shared n -> Some n | I_state _ | I_rule _ -> None) cd.cd_items

let rules_of_decl cd =
  List.filter_map (function I_rule r -> Some r | I_state _ | I_shared _ -> None) cd.cd_items

(* Elaboration context of one instance declaration: its component
   declaration, [self] term and component renaming (shared components map
   to their radio cluster, local ones get an instance prefix). *)
let instance_ctx env inst =
  let cd =
    match List.assoc_opt inst.in_comp env.components with
    | Some cd -> cd
    | None -> Loc.error inst.in_loc "unknown component %s" inst.in_comp
  in
  let self = Some (Term.sym inst.in_name) in
  let shared = shared_of_decl cd in
  let local_names = List.map fst (states_of_decl cd) in
  let rename c =
    if List.mem c shared then cluster_of env inst.in_name c
    else if List.mem c local_names then inst.in_name ^ "_" ^ c
    else c
  in
  (cd, self, shared, rename)

(* The instance's state components with their initial contents: declared
   defaults, overridden per instance. *)
let instance_components env inst =
  let cd, self, shared, rename = instance_ctx env inst in
  let local_names = List.map fst (states_of_decl cd) in
  List.iter
    (fun (field, _) ->
      if not (List.mem field local_names) then
        Loc.error inst.in_loc "instance %s overrides unknown state %s"
          inst.in_name field)
    inst.in_overrides;
  List.map
    (fun (n, default) ->
      let contents =
        match List.assoc_opt n inst.in_overrides with
        | Some terms -> terms
        | None -> default
      in
      let terms =
        List.map
          (fun st ->
            let t = term_of_sterm ~self ~loc:inst.in_loc st in
            if not (Term.is_ground t) then
              Loc.error inst.in_loc
                "initial content %a of state %s is not ground"
                Term.pp t n;
            t)
          contents
      in
      (rename n, Term.Set.of_list terms))
    (states_of_decl cd)
  @ List.map (fun n -> (rename n, Term.Set.empty)) shared

(* Build the APA of one instance declaration. *)
let build_instance env inst =
  let cd, self, _shared, rename = instance_ctx env inst in
  let state_components = instance_components env inst in
  let build_rule r =
    let name = inst.in_name ^ "_" ^ r.ru_name in
    let takes =
      List.map
        (fun tk ->
          Apa.take ~consume:(not tk.tk_read) (rename tk.tk_comp)
            (term_of_sterm ~self ~loc:tk.tk_loc tk.tk_pat))
        r.ru_takes
    in
    let puts =
      List.map
        (fun pt ->
          Apa.put (rename pt.pt_comp)
            (term_of_sterm ~self ~loc:pt.pt_loc pt.pt_term))
        r.ru_puts
    in
    (* omit trivial guards and default labels so [Apa.rule] records them
       as such — the structural unboundedness certificate only applies to
       rules it can prove unguarded, and symmetry reduction to rules it
       knows carry the default [Action.make name] label *)
    match r.ru_cond with
    | C_true -> Apa.rule name ~takes ~puts
    | _ ->
      let guard = compile_cond ~self ~loc:r.ru_loc r.ru_cond in
      Apa.rule name ~takes ~puts ~guard
  in
  Apa.make ~components:state_components
    ~rules:(List.map build_rule (rules_of_decl cd))
    inst.in_name

let apa_of_spec ?(name = "system") spec =
  let env = env_of_spec spec in
  match env.instances with
  | [] -> invalid_arg "apa_of_spec: the specification declares no instances"
  | instances -> Apa.compose ~name (List.map (build_instance env) instances)

(* ------------------------------------------------------------------ *)
(* Located APA skeleton                                                *)
(* ------------------------------------------------------------------ *)

(* The static shape of the elaborated APA — takes, puts and initial
   contents as first-order terms — with the source location of every
   construct.  [Fsa_check] analyses this instead of [Apa.t], whose guards
   and labels are opaque closures without positions. *)

type located_take = {
  lt_comp : string;
  lt_pat : Term.t;
  lt_consume : bool;
  lt_loc : Loc.t;
}

type located_put = { lp_comp : string; lp_term : Term.t; lp_loc : Loc.t }

type located_rule = {
  lr_name : string;  (* full APA rule name, e.g. V1_send *)
  lr_instance : string;
  lr_component : string;  (* declaring component, e.g. Vehicle *)
  lr_takes : located_take list;
  lr_puts : located_put list;
  lr_guarded : bool;  (* has a non-trivial [when] clause *)
  lr_guard_vars : string list;  (* variables occurring in the guard *)
  lr_loc : Loc.t;
}

type skeleton = {
  sk_components : (string * Term.Set.t * Loc.t) list;
      (* renamed state components with initial contents, located at the
         declaring component *)
  sk_rules : located_rule list;
}

let rec cond_sterms = function
  | C_true -> []
  | C_eq (a, b) | C_neq (a, b) -> [ a; b ]
  | C_call (_, args) -> args
  | C_and (a, b) | C_or (a, b) -> cond_sterms a @ cond_sterms b
  | C_not a -> cond_sterms a

let skeleton_instance env inst =
  let cd, self, _shared, rename = instance_ctx env inst in
  let components =
    List.map (fun (n, init) -> (n, init, cd.cd_loc))
      (instance_components env inst)
  in
  let build_rule r =
    let takes =
      List.map
        (fun tk ->
          { lt_comp = rename tk.tk_comp;
            lt_pat = term_of_sterm ~self ~loc:tk.tk_loc tk.tk_pat;
            lt_consume = not tk.tk_read;
            lt_loc = tk.tk_loc })
        r.ru_takes
    in
    let puts =
      List.map
        (fun pt ->
          { lp_comp = rename pt.pt_comp;
            lp_term = term_of_sterm ~self ~loc:pt.pt_loc pt.pt_term;
            lp_loc = pt.pt_loc })
        r.ru_puts
    in
    let guard_vars =
      List.fold_left
        (fun acc st ->
          Term.String_set.union acc
            (Term.vars (term_of_sterm ~self ~loc:r.ru_loc st)))
        Term.String_set.empty
        (cond_sterms r.ru_cond)
    in
    { lr_name = inst.in_name ^ "_" ^ r.ru_name;
      lr_instance = inst.in_name;
      lr_component = cd.cd_name;
      lr_takes = takes;
      lr_puts = puts;
      lr_guarded = (match r.ru_cond with C_true -> false | _ -> true);
      lr_guard_vars = Term.String_set.elements guard_vars;
      lr_loc = r.ru_loc }
  in
  (components, List.map build_rule (rules_of_decl cd))

let skeleton_of_spec spec =
  let env = env_of_spec spec in
  let per_instance = List.map (skeleton_instance env) env.instances in
  (* identify equally-named (shared) components, unioning initial sets,
     mirroring [Apa.compose] *)
  let components =
    List.fold_left
      (fun acc (comps, _) ->
        List.fold_left
          (fun acc (n, init, loc) ->
            match List.assoc_opt n (List.map (fun (n, i, l) -> (n, (i, l))) acc)
            with
            | Some (init0, loc0) ->
              (n, Term.Set.union init0 init, loc0)
              :: List.filter (fun (m, _, _) -> not (String.equal m n)) acc
            | None -> (n, init, loc) :: acc)
          acc comps)
      [] per_instance
  in
  { sk_components =
      List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) components;
    sk_rules = List.concat_map snd per_instance }

(* ------------------------------------------------------------------ *)
(* Functional models                                                   *)
(* ------------------------------------------------------------------ *)

(* A model action such as [sense(ESP_i, sW)]: the first argument is taken
   as the acting component when it is a capitalised symbol. *)
let action_of_model_action ma =
  let args = List.map (term_of_sterm ~self:None ~loc:ma.ma_loc) ma.ma_args in
  match args with
  | Term.Sym s :: rest when s <> "" && s.[0] >= 'A' && s.[0] <= 'Z' ->
    Action.make ~actor:(Agent.of_string s) ~args:rest ma.ma_label
  | args -> Action.make ~args ma.ma_label

(* Instantiate a model declaration as a functional component.  With a
   parameter and an index, symbolic agent indices equal to the parameter
   are made concrete. *)
let component_of_model md ~alias ~index =
  let actions = List.map action_of_model_action md.md_actions in
  let reindex_action =
    match md.md_param, index with
    | Some p, Some i ->
      Action.reindex (function
        | Agent.Symbolic x when String.equal x p -> Agent.Concrete i
        | idx -> idx)
    | Some _, None | None, Some _ | None, None -> Fun.id
  in
  let actions = List.map reindex_action actions in
  let find_action label =
    match
      List.find_opt (fun a -> String.equal (Action.label a) label) actions
    with
    | Some a -> a
    | None -> Loc.error md.md_loc "model %s has no action %s" md.md_name label
  in
  let flows =
    List.map
      (fun mf ->
        Flow.internal ?policy:mf.mf_policy (find_action mf.mf_src)
          (find_action mf.mf_dst))
      md.md_flows
  in
  Component.make alias ~actions ~flows

let build_sos env sd =
  let aliases =
    List.map
      (fun u ->
        let md =
          match List.assoc_opt u.us_model env.models with
          | Some md -> md
          | None -> Loc.error u.us_loc "unknown model %s" u.us_model
        in
        (u.us_alias, component_of_model md ~alias:u.us_alias ~index:u.us_index))
      sd.sd_uses
  in
  let action_of (alias, label) loc =
    match List.assoc_opt alias aliases with
    | None -> Loc.error loc "unknown instance alias %s" alias
    | Some comp -> (
      match
        List.find_opt
          (fun a -> String.equal (Action.label a) label)
          (Component.actions comp)
      with
      | Some a -> a
      | None -> Loc.error loc "instance %s has no action %s" alias label)
  in
  let links =
    List.map
      (fun lk ->
        Flow.external_ ?policy:lk.lk_policy
          (action_of lk.lk_src lk.lk_loc)
          (action_of lk.lk_dst lk.lk_loc))
      sd.sd_links
  in
  Sos.make sd.sd_name ~components:(List.map snd aliases) ~links

let sos_list spec =
  let env = env_of_spec spec in
  List.map (build_sos env) env.soses

let sos_of_spec spec name =
  let env = env_of_spec spec in
  match List.find_opt (fun s -> String.equal s.sd_name name) env.soses with
  | Some sd -> build_sos env sd
  | None -> invalid_arg (Printf.sprintf "sos_of_spec: no sos named %s" name)

(* ------------------------------------------------------------------ *)
(* Behavioural checks                                                  *)
(* ------------------------------------------------------------------ *)

(* Compile the spec's check declarations into property patterns over the
   APA's transition labels. *)
let patterns_of_spec spec =
  let module Pattern = Fsa_mc.Pattern in
  let env = env_of_spec spec in
  List.map
    (fun ck ->
      let p name = Pattern.action_is (Action.make name) in
      let body =
        match ck.ck_kind, ck.ck_args with
        | "absence", [ a ] -> Pattern.Absence (p a)
        | "existence", [ a ] -> Pattern.Existence (p a)
        | "universality", [ a ] -> Pattern.Universality (p a)
        | "precedence", [ s; q ] -> Pattern.Precedence (p s, p q)
        | "response", [ s; q ] -> Pattern.Response (p s, p q)
        | k, args ->
          Loc.error ck.ck_loc "malformed check %s/%d" k (List.length args)
      in
      let scope =
        match ck.ck_scope with
        | None -> Pattern.Globally
        | Some ("before", a) -> Pattern.Before (p a)
        | Some ("after", a) -> Pattern.After (p a)
        | Some (s, _) -> Loc.error ck.ck_loc "unknown scope %S" s
      in
      let description =
        Fmt.str "check %s %s%s" ck.ck_kind
          (String.concat " " ck.ck_args)
          (match ck.ck_scope with
          | None -> ""
          | Some (s, a) -> Printf.sprintf " %s %s" s a)
      in
      (description, Pattern.make ~scope body))
    env.checks

(* ------------------------------------------------------------------ *)
(* Canonical model digests                                             *)
(* ------------------------------------------------------------------ *)

(* A content address for analysis results (lib/store): a location-free,
   declaration-order-independent rendering of the *elaborated* model.
   Working on elaborated terms (after variable/self resolution and
   component renaming) rather than the surface syntax makes the digest
   stable across re-parses, comment and whitespace edits, and permuted
   declarations, while staying sensitive to everything that changes the
   model — initial contents, takes/puts, guard structure, clusters
   (folded in through the component renaming). *)

type digest_part = [ `Apa | `Checks | `Models ]

let canon_sterm ~self ~loc st = Term.to_string (term_of_sterm ~self ~loc st)

let rec canon_cond ~self ~loc = function
  | C_true -> "true"
  | C_eq (a, b) ->
    Printf.sprintf "(eq %s %s)" (canon_sterm ~self ~loc a)
      (canon_sterm ~self ~loc b)
  | C_neq (a, b) ->
    Printf.sprintf "(neq %s %s)" (canon_sterm ~self ~loc a)
      (canon_sterm ~self ~loc b)
  | C_call (f, args) ->
    Printf.sprintf "(%s %s)" f
      (String.concat " " (List.map (canon_sterm ~self ~loc) args))
  | C_and (a, b) ->
    Printf.sprintf "(and %s %s)" (canon_cond ~self ~loc a)
      (canon_cond ~self ~loc b)
  | C_or (a, b) ->
    Printf.sprintf "(or %s %s)" (canon_cond ~self ~loc a)
      (canon_cond ~self ~loc b)
  | C_not a -> Printf.sprintf "(not %s)" (canon_cond ~self ~loc a)

(* Guard signatures for symmetry detection: like [canon_cond] but with
   [self] replaced by a fixed placeholder symbol, so the (self-relative)
   guards of two instances of the same component render identically. *)
let guard_signatures spec =
  let env = env_of_spec spec in
  let self = Some (Term.sym "@self") in
  List.concat_map
    (fun inst ->
      let cd, _, _, _ = instance_ctx env inst in
      List.filter_map
        (fun r ->
          match r.ru_cond with
          | C_true -> None
          | c ->
            Some
              ( inst.in_name ^ "_" ^ r.ru_name,
                canon_cond ~self ~loc:r.ru_loc c ))
        (rules_of_decl cd))
    env.instances

let canon_apa env =
  let instances =
    List.sort
      (fun a b -> String.compare a.in_name b.in_name)
      env.instances
  in
  List.concat_map
    (fun inst ->
      let cd, self, _shared, rename = instance_ctx env inst in
      let components =
        instance_components env inst
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
        |> List.map (fun (n, init) ->
               Printf.sprintf "  state %s = {%s}" n
                 (String.concat ", "
                    (List.map Term.to_string (Term.Set.elements init))))
      in
      let rules =
        List.map
          (fun r ->
            let takes =
              List.map
                (fun tk ->
                  Printf.sprintf "%s %s(%s)"
                    (if tk.tk_read then "read" else "take")
                    (rename tk.tk_comp)
                    (canon_sterm ~self ~loc:tk.tk_loc tk.tk_pat))
                r.ru_takes
            in
            let puts =
              List.map
                (fun pt ->
                  Printf.sprintf "put %s(%s)" (rename pt.pt_comp)
                    (canon_sterm ~self ~loc:pt.pt_loc pt.pt_term))
                r.ru_puts
            in
            Printf.sprintf "  rule %s_%s: %s when %s -> %s" inst.in_name
              r.ru_name
              (String.concat ", " takes)
              (canon_cond ~self ~loc:r.ru_loc r.ru_cond)
              (String.concat ", " puts))
          (rules_of_decl cd)
      in
      Printf.sprintf "instance %s = %s(%d)" inst.in_name inst.in_comp
        inst.in_id
      :: (components @ rules))
    instances

let canon_checks env =
  List.sort String.compare
    (List.map
       (fun ck ->
         Printf.sprintf "check %s %s%s" ck.ck_kind
           (String.concat " " ck.ck_args)
           (match ck.ck_scope with
           | None -> ""
           | Some (s, a) -> Printf.sprintf " %s %s" s a))
       env.checks)

let canon_models env =
  let self = None in
  let models =
    List.sort (fun (a, _) (b, _) -> String.compare a b) env.models
    |> List.concat_map (fun (name, md) ->
           let actions =
             List.map
               (fun ma ->
                 Printf.sprintf "  action %s(%s)" ma.ma_label
                   (String.concat ", "
                      (List.map (canon_sterm ~self ~loc:ma.ma_loc)
                         ma.ma_args)))
               md.md_actions
           in
           let flows =
             List.sort String.compare
               (List.map
                  (fun mf ->
                    Printf.sprintf "  flow %s -> %s%s" mf.mf_src mf.mf_dst
                      (match mf.mf_policy with
                      | None -> ""
                      | Some p -> " [" ^ p ^ "]"))
                  md.md_flows)
           in
           Printf.sprintf "model %s(%s)" name
             (Option.value ~default:"" md.md_param)
           :: (actions @ flows))
  in
  let soses =
    List.sort (fun a b -> String.compare a.sd_name b.sd_name) env.soses
    |> List.concat_map (fun sd ->
           let uses =
             List.sort String.compare
               (List.map
                  (fun u ->
                    Printf.sprintf "  use %s(%s) as %s" u.us_model
                      (match u.us_index with
                      | None -> ""
                      | Some i -> string_of_int i)
                      u.us_alias)
                  sd.sd_uses)
           in
           let links =
             List.sort String.compare
               (List.map
                  (fun lk ->
                    Printf.sprintf "  link %s.%s -> %s.%s%s" (fst lk.lk_src)
                      (snd lk.lk_src) (fst lk.lk_dst) (snd lk.lk_dst)
                      (match lk.lk_policy with
                      | None -> ""
                      | Some p -> " [" ^ p ^ "]"))
                  sd.sd_links)
           in
           Printf.sprintf "sos %s" sd.sd_name :: (uses @ links))
  in
  models @ soses

let digest_of_spec ~parts spec =
  let env = env_of_spec spec in
  let parts = List.sort_uniq Stdlib.compare parts in
  let section p =
    match p with
    | `Apa -> "[apa]" :: canon_apa env
    | `Checks -> "[checks]" :: canon_checks env
    | `Models -> "[models]" :: canon_models env
  in
  Digest.to_hex
    (Digest.string (String.concat "\n" (List.concat_map section parts)))
