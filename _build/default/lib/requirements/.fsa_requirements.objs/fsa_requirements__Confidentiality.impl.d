lib/requirements/confidentiality.ml: Fmt Fsa_model Fsa_term Int List
