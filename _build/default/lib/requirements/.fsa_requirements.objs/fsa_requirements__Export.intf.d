lib/requirements/export.mli: Auth Classify Fsa_term
