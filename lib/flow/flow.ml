(* Static information-flow analysis: the guard-refined def-use graph of
   an APA, taint reachability over it, and the security analyses behind
   the FSA060-FSA069 diagnostics.

   Everything is deterministic: rules and components keep their APA
   declaration order, edge and kill lists are sorted by (source index,
   target index, component), reachability is a memoized DFS in index
   order. *)

module Term = Fsa_term.Term
module Apa = Fsa_apa.Apa
module Span = Fsa_obs.Span
module Metrics = Fsa_obs.Metrics

let pairs_pruned = Metrics.counter "flow.pairs_pruned"

type attribution = {
  at_instance : string -> string option;
  at_guard_vars : string -> string list option;
}

let heuristic_attribution =
  { at_instance =
      (fun r ->
        match String.index_opt r '_' with
        | Some i when i > 0 -> Some (String.sub r 0 i)
        | _ -> None);
    at_guard_vars = (fun _ -> None) }

type edge = {
  e_src : string;
  e_dst : string;
  e_component : string;
  e_consume : bool;
  e_cross : bool;
  e_unguarded : bool;
}

type kill = {
  k_src : string;
  k_dst : string;
  k_component : string;
  k_bindings : (string * Term.t) list;
}

type info = {
  i_rule : Apa.rule;
  i_instance : string option;
  i_guard_vars : string list option;
}

type t = {
  g_rules : string array;
  g_infos : info array;
  g_index : (string, int) Hashtbl.t;
  g_components : string list;
  g_edges : edge list;
  g_kills : kill list;
  g_adj : int list array;  (* guard-refined successors *)
  g_skel_adj : int list array;  (* unrefined skeleton successors *)
  g_shared : string list;
  g_protected : string list;
  g_entries : string list;
  g_outputs : string list;
  g_memo : (int, bool array) Hashtbl.t;
  g_skel_memo : (int, bool array) Hashtbl.t;
}

(* Would the consumer's guard reject every token this (put, take) pair
   can deliver?  Sound only when the unifier binds every variable the
   guard inspects to a ground term: a most general unifier factors every
   concrete producer/consumer match, so a ground binding is forced in
   all of them, and a guard that is [false] on the forced bindings is
   [false] on every instance.  Anything uncertain — unknown guard
   variables, partial bindings, a guard that raises — keeps the edge. *)
let guard_kills info sub pat =
  let r = info.i_rule in
  if r.Apa.r_trivial_guard then None
  else
    match info.i_guard_vars with
    | None -> None
    | Some gvs ->
      let bound =
        List.fold_left
          (fun acc v ->
            let t = Term.Subst.apply sub (Term.Var ("s" ^ v)) in
            if Term.is_ground t then (v, t) :: acc else acc)
          []
          (Term.String_set.elements (Term.vars pat))
      in
      if not (List.for_all (fun v -> List.mem_assoc v bound) gvs) then None
      else
        let subst =
          List.fold_left
            (fun s (v, t) ->
              match Term.Subst.add v t s with Some s -> s | None -> s)
            Term.Subst.empty bound
        in
        let rejected = try not (r.Apa.r_guard subst) with _ -> false in
        if rejected then
          Some
            (List.sort
               (fun (a, _) (b, _) -> String.compare a b)
               (List.filter (fun (v, _) -> List.mem v gvs) bound))
        else None

let protected_needles =
  [ "key"; "secret"; "priv"; "credential"; "token"; "passw" ]

let looks_protected name =
  let lower = String.lowercase_ascii name in
  let contains needle =
    let nl = String.length needle and l = String.length lower in
    let rec go i = i + nl <= l && (String.sub lower i nl = needle || go (i + 1)) in
    go 0
  in
  List.exists contains protected_needles

let build ?(attribution = heuristic_attribution) apa =
  Span.with_ ~cat:"flow" "flow.build" @@ fun () ->
  let rules = Array.of_list (Apa.rules apa) in
  let n = Array.length rules in
  let names = Array.map Apa.rule_name rules in
  let index = Hashtbl.create (2 * n) in
  Array.iteri (fun i r -> Hashtbl.replace index r i) names;
  let infos =
    Array.map
      (fun r ->
        { i_rule = r;
          i_instance = attribution.at_instance r.Apa.r_name;
          i_guard_vars = attribution.at_guard_vars r.Apa.r_name })
      rules
  in
  let adj = Array.make n [] and skel_adj = Array.make n [] in
  let edges = ref [] and kills = ref [] in
  for i = 0 to n - 1 do
    let src = rules.(i) in
    for j = 0 to n - 1 do
      let dst = rules.(j) in
      (* per shared component: surviving (consume?) pairs and killed
         pairs with their forcing bindings *)
      let surviving = ref [] and killed = ref [] and any = ref false in
      List.iter
        (fun (p : Apa.put) ->
          List.iter
            (fun (tk : Apa.take) ->
              if String.equal p.Apa.p_component tk.Apa.t_component then
                match
                  Term.unify
                    (Term.rename "p" p.Apa.p_template)
                    (Term.rename "s" tk.Apa.t_pattern)
                with
                | None -> ()
                | Some sub -> (
                  any := true;
                  match guard_kills infos.(j) sub tk.Apa.t_pattern with
                  | Some bindings ->
                    killed := (p.Apa.p_component, bindings) :: !killed
                  | None ->
                    surviving :=
                      (p.Apa.p_component, tk.Apa.t_consume) :: !surviving))
            dst.Apa.r_takes)
        src.Apa.r_puts;
      let surviving = List.rev !surviving and killed = List.rev !killed in
      if !any then skel_adj.(i) <- j :: skel_adj.(i);
      if surviving <> [] then adj.(i) <- j :: adj.(i);
      let cross =
        match (infos.(i).i_instance, infos.(j).i_instance) with
        | Some a, Some b -> not (String.equal a b)
        | _ -> false
      in
      let components =
        List.sort_uniq String.compare (List.map fst surviving)
      in
      List.iter
        (fun c ->
          edges :=
            { e_src = names.(i);
              e_dst = names.(j);
              e_component = c;
              e_consume =
                List.exists
                  (fun (c', cons) -> String.equal c c' && cons)
                  surviving;
              e_cross = cross;
              e_unguarded = dst.Apa.r_trivial_guard }
            :: !edges)
        components;
      let killed_components =
        List.sort_uniq String.compare (List.map fst killed)
      in
      List.iter
        (fun c ->
          kills :=
            { k_src = names.(i);
              k_dst = names.(j);
              k_component = c;
              k_bindings =
                List.assoc c killed (* first kill on this component *) }
            :: !kills)
        killed_components
    done
  done;
  Array.iteri (fun i l -> adj.(i) <- List.rev l) adj;
  Array.iteri (fun i l -> skel_adj.(i) <- List.rev l) skel_adj;
  let touching c =
    Array.to_list infos
    |> List.filter (fun info ->
           List.exists
             (fun (tk : Apa.take) -> String.equal tk.Apa.t_component c)
             info.i_rule.Apa.r_takes
           || List.exists
                (fun (p : Apa.put) -> String.equal p.Apa.p_component c)
                info.i_rule.Apa.r_puts)
  in
  let components = List.map fst (Apa.components apa) in
  let shared =
    List.filter
      (fun c ->
        let instances =
          List.sort_uniq String.compare
            (List.filter_map (fun info -> info.i_instance) (touching c))
        in
        List.length instances >= 2)
      components
    |> List.sort String.compare
  in
  let protected_ =
    List.filter looks_protected components |> List.sort String.compare
  in
  let initial = Apa.initial_state apa in
  let entries =
    Array.to_list infos
    |> List.filter (fun info ->
           List.for_all
             (fun (tk : Apa.take) ->
               Term.Set.exists
                 (fun t ->
                   Option.is_some
                     (Term.match_ ~pattern:tk.Apa.t_pattern ~target:t))
                 (Apa.State.get tk.Apa.t_component initial))
             info.i_rule.Apa.r_takes)
    |> List.map (fun info -> info.i_rule.Apa.r_name)
  in
  let consumed_components =
    Array.to_list rules
    |> List.concat_map (fun r ->
           List.map (fun (tk : Apa.take) -> tk.Apa.t_component) r.Apa.r_takes)
    |> List.sort_uniq String.compare
  in
  let outputs =
    Array.to_list rules
    |> List.filter (fun r ->
           List.for_all
             (fun (p : Apa.put) ->
               not (List.mem p.Apa.p_component consumed_components))
             r.Apa.r_puts)
    |> List.map (fun r -> r.Apa.r_name)
  in
  { g_rules = names;
    g_infos = infos;
    g_index = index;
    g_components = components;
    g_edges = List.rev !edges;
    g_kills = List.rev !kills;
    g_adj = adj;
    g_skel_adj = skel_adj;
    g_shared = shared;
    g_protected = protected_;
    g_entries = entries;
    g_outputs = outputs;
    g_memo = Hashtbl.create 16;
    g_skel_memo = Hashtbl.create 16 }

let rules g = Array.to_list g.g_rules
let components g = g.g_components
let edges g = g.g_edges
let kills g = g.g_kills

let instance_of g r =
  match Hashtbl.find_opt g.g_index r with
  | None -> None
  | Some i -> g.g_infos.(i).i_instance

let guarded g r =
  match Hashtbl.find_opt g.g_index r with
  | None -> false
  | Some i -> not g.g_infos.(i).i_rule.Apa.r_trivial_guard

let shared_channels g = g.g_shared
let protected_components g = g.g_protected
let entry_rules g = g.g_entries
let output_rules g = g.g_outputs

let reachable adj i =
  let n = Array.length adj in
  let seen = Array.make n false in
  let rec go i =
    if not seen.(i) then begin
      seen.(i) <- true;
      List.iter go adj.(i)
    end
  in
  go i;
  seen

let reach_set memo adj i =
  match Hashtbl.find_opt memo i with
  | Some seen -> seen
  | None ->
    let seen = reachable adj i in
    Hashtbl.replace memo i seen;
    seen

let reaches g src dst =
  match (Hashtbl.find_opt g.g_index src, Hashtbl.find_opt g.g_index dst) with
  | Some i, Some j -> (reach_set g.g_memo g.g_adj i).(j)
  | _ -> true

let independent g ~min ~max =
  match (Hashtbl.find_opt g.g_index min, Hashtbl.find_opt g.g_index max) with
  | Some i, Some j -> not (reach_set g.g_memo g.g_adj i).(j)
  | _ -> false

let count_independent memo adj n =
  let count = ref 0 in
  for i = 0 to n - 1 do
    let seen = reach_set memo adj i in
    for j = 0 to n - 1 do
      if i <> j && not seen.(j) then incr count
    done
  done;
  !count

let independent_pairs g =
  count_independent g.g_memo g.g_adj (Array.length g.g_rules)

let skeleton_independent_pairs g =
  count_independent g.g_skel_memo g.g_skel_adj (Array.length g.g_rules)

let rule_pairs g =
  let n = Array.length g.g_rules in
  n * (n - 1)

(* ------------------------------------------------------------------ *)
(* Security analyses                                                   *)
(* ------------------------------------------------------------------ *)

type leak = {
  lk_source : string;
  lk_channel : string;
  lk_rules : string list;
}

let takes_component g i c =
  List.exists
    (fun (tk : Apa.take) -> String.equal tk.Apa.t_component c)
    g.g_infos.(i).i_rule.Apa.r_takes

let puts_component g i c =
  List.exists
    (fun (p : Apa.put) -> String.equal p.Apa.p_component c)
    g.g_infos.(i).i_rule.Apa.r_puts

(* Shortest rule path from a reader of [src] to a writer of [channel]
   in the refined graph, by multi-source BFS in index order. *)
let leak_path g ~src ~channel =
  let n = Array.length g.g_rules in
  let parent = Array.make n (-2) in
  let queue = Queue.create () in
  let hit = ref None in
  for i = 0 to n - 1 do
    if !hit = None && takes_component g i src then begin
      parent.(i) <- -1;
      if puts_component g i channel then hit := Some i
      else Queue.add i queue
    end
  done;
  while !hit = None && not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    List.iter
      (fun j ->
        if !hit = None && parent.(j) = -2 then begin
          parent.(j) <- i;
          if puts_component g j channel then hit := Some j
          else Queue.add j queue
        end)
      g.g_adj.(i)
  done;
  match !hit with
  | None -> None
  | Some last ->
    let rec unwind acc i =
      if parent.(i) = -1 then g.g_rules.(i) :: acc
      else unwind (g.g_rules.(i) :: acc) parent.(i)
    in
    Some (unwind [] last)

let leaks g =
  List.concat_map
    (fun src ->
      if List.mem src g.g_shared then
        [ { lk_source = src; lk_channel = src; lk_rules = [] } ]
      else
        List.filter_map
          (fun channel ->
            match leak_path g ~src ~channel with
            | None -> None
            | Some path ->
              Some { lk_source = src; lk_channel = channel; lk_rules = path })
          g.g_shared)
    g.g_protected

let unsanitized g =
  List.filter (fun e -> e.e_cross && e.e_unguarded) g.g_edges

let dead_sources g =
  if g.g_outputs = [] then []
  else
    List.filter
      (fun entry ->
        not (List.exists (fun out -> reaches g entry out) g.g_outputs))
      g.g_entries

(* Tarjan's SCC algorithm, iterative-enough for our rule counts.  A
   cycle is a non-trivial SCC or a self-loop; it is reported when every
   rule on it is unguarded. *)
let unguarded_cycles g =
  let n = Array.length g.g_rules in
  let indexv = Array.make n (-1)
  and low = Array.make n 0
  and on_stack = Array.make n false in
  let stack = ref [] and counter = ref 0 and sccs = ref [] in
  let rec strongconnect v =
    indexv.(v) <- !counter;
    low.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if indexv.(w) = -1 then begin
          strongconnect w;
          low.(v) <- min low.(v) low.(w)
        end
        else if on_stack.(w) then low.(v) <- min low.(v) indexv.(w))
      g.g_adj.(v);
    if low.(v) = indexv.(v) then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          if w = v then w :: acc else pop (w :: acc)
      in
      sccs := pop [] :: !sccs
    end
  in
  for v = 0 to n - 1 do
    if indexv.(v) = -1 then strongconnect v
  done;
  List.rev !sccs
  |> List.filter (fun scc ->
         match scc with
         | [ v ] -> List.mem v g.g_adj.(v)
         | _ :: _ :: _ -> true
         | [] -> false)
  |> List.filter (fun scc ->
         List.for_all
           (fun v -> g.g_infos.(v).i_rule.Apa.r_trivial_guard)
           scc)
  |> List.map (fun scc ->
         List.sort String.compare (List.map (fun v -> g.g_rules.(v)) scc))
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

type report = {
  r_rules : string list;
  r_components : string list;
  r_edges : edge list;
  r_kills : kill list;
  r_shared : string list;
  r_protected : string list;
  r_entries : string list;
  r_outputs : string list;
  r_leaks : leak list;
  r_unsanitized : edge list;
  r_dead : string list;
  r_cycles : string list list;
  r_independent_pairs : int;
  r_skeleton_independent_pairs : int;
  r_rule_pairs : int;
}

let analyse g =
  Span.with_ ~cat:"flow" "flow.analyse" @@ fun () ->
  { r_rules = rules g;
    r_components = g.g_components;
    r_edges = g.g_edges;
    r_kills = g.g_kills;
    r_shared = g.g_shared;
    r_protected = g.g_protected;
    r_entries = g.g_entries;
    r_outputs = g.g_outputs;
    r_leaks = leaks g;
    r_unsanitized = unsanitized g;
    r_dead = dead_sources g;
    r_cycles = unguarded_cycles g;
    r_independent_pairs = independent_pairs g;
    r_skeleton_independent_pairs = skeleton_independent_pairs g;
    r_rule_pairs = rule_pairs g }

let pp_edge ppf e =
  Fmt.pf ppf "%s -(%s%s)-> %s%s%s" e.e_src e.e_component
    (if e.e_consume then "" else ", read")
    e.e_dst
    (if e.e_cross then " [cross-instance]" else "")
    (if e.e_unguarded then " [unguarded]" else "")

let pp_bindings ppf bs =
  Fmt.pf ppf "%a"
    Fmt.(list ~sep:comma (fun ppf (v, t) -> Fmt.pf ppf "%s = %a" v Term.pp t))
    bs

let pp_report ppf r =
  Fmt.pf ppf "rules: %d, components: %d@\n" (List.length r.r_rules)
    (List.length r.r_components);
  Fmt.pf ppf "flow edges (%d):@\n" (List.length r.r_edges);
  List.iter (fun e -> Fmt.pf ppf "  %a@\n" pp_edge e) r.r_edges;
  Fmt.pf ppf "guard-killed edges (%d):@\n" (List.length r.r_kills);
  List.iter
    (fun k ->
      Fmt.pf ppf "  %s -(%s)-> %s killed by guard on %a@\n" k.k_src
        k.k_component k.k_dst pp_bindings k.k_bindings)
    r.r_kills;
  Fmt.pf ppf "cross-instance channels: %s@\n"
    (String.concat ", " r.r_shared);
  Fmt.pf ppf "protected components: %s@\n" (String.concat ", " r.r_protected);
  Fmt.pf ppf "entry rules: %s@\n" (String.concat ", " r.r_entries);
  Fmt.pf ppf "output rules: %s@\n" (String.concat ", " r.r_outputs);
  List.iter
    (fun l ->
      Fmt.pf ppf "leak: %s -> %s via %s@\n" l.lk_source l.lk_channel
        (if l.lk_rules = [] then "(shared channel itself)"
         else String.concat " -> " l.lk_rules))
    r.r_leaks;
  List.iter
    (fun e -> Fmt.pf ppf "unsanitized cross-instance flow: %a@\n" pp_edge e)
    r.r_unsanitized;
  List.iter
    (fun rl -> Fmt.pf ppf "dead attack surface: %s@\n" rl)
    r.r_dead;
  List.iter
    (fun c ->
      Fmt.pf ppf "unguarded flow cycle: %s@\n" (String.concat " -> " c))
    r.r_cycles;
  Fmt.pf ppf
    "flow-independent rule pairs: %d/%d (skeleton baseline: %d)"
    r.r_independent_pairs r.r_rule_pairs r.r_skeleton_independent_pairs

let report_to_json r =
  let buf = Buffer.create 1024 in
  let str s =
    Buffer.add_char buf '"';
    Metrics.json_escape buf s;
    Buffer.add_char buf '"'
  in
  let str_list l =
    Buffer.add_char buf '[';
    List.iteri
      (fun i s ->
        if i > 0 then Buffer.add_string buf ", ";
        str s)
      l;
    Buffer.add_char buf ']'
  in
  let edge_list l =
    Buffer.add_char buf '[';
    List.iteri
      (fun i e ->
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_string buf "{\"src\": ";
        str e.e_src;
        Buffer.add_string buf ", \"dst\": ";
        str e.e_dst;
        Buffer.add_string buf ", \"component\": ";
        str e.e_component;
        Buffer.add_string buf
          (Printf.sprintf ", \"consume\": %b, \"cross\": %b, \"unguarded\": %b}"
             e.e_consume e.e_cross e.e_unguarded))
      l;
    Buffer.add_char buf ']'
  in
  Buffer.add_string buf "{\n  \"rules\": ";
  str_list r.r_rules;
  Buffer.add_string buf ",\n  \"components\": ";
  str_list r.r_components;
  Buffer.add_string buf ",\n  \"edges\": ";
  edge_list r.r_edges;
  Buffer.add_string buf ",\n  \"kills\": [";
  List.iteri
    (fun i k ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf "{\"src\": ";
      str k.k_src;
      Buffer.add_string buf ", \"dst\": ";
      str k.k_dst;
      Buffer.add_string buf ", \"component\": ";
      str k.k_component;
      Buffer.add_string buf ", \"bindings\": [";
      List.iteri
        (fun j (v, t) ->
          if j > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf "{\"var\": ";
          str v;
          Buffer.add_string buf ", \"term\": ";
          str (Term.to_string t);
          Buffer.add_char buf '}')
        k.k_bindings;
      Buffer.add_string buf "]}")
    r.r_kills;
  Buffer.add_string buf "]";
  Buffer.add_string buf ",\n  \"channels\": ";
  str_list r.r_shared;
  Buffer.add_string buf ",\n  \"protected\": ";
  str_list r.r_protected;
  Buffer.add_string buf ",\n  \"entries\": ";
  str_list r.r_entries;
  Buffer.add_string buf ",\n  \"outputs\": ";
  str_list r.r_outputs;
  Buffer.add_string buf ",\n  \"leaks\": [";
  List.iteri
    (fun i l ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf "{\"source\": ";
      str l.lk_source;
      Buffer.add_string buf ", \"channel\": ";
      str l.lk_channel;
      Buffer.add_string buf ", \"path\": ";
      str_list l.lk_rules;
      Buffer.add_char buf '}')
    r.r_leaks;
  Buffer.add_string buf "]";
  Buffer.add_string buf ",\n  \"unsanitized\": ";
  edge_list r.r_unsanitized;
  Buffer.add_string buf ",\n  \"dead_sources\": ";
  str_list r.r_dead;
  Buffer.add_string buf ",\n  \"unguarded_cycles\": [";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_string buf ", ";
      str_list c)
    r.r_cycles;
  Buffer.add_string buf "]";
  Buffer.add_string buf
    (Printf.sprintf
       ",\n  \"independent_pairs\": %d,\n  \"skeleton_independent_pairs\": \
        %d,\n  \"rule_pairs\": %d\n}\n"
       r.r_independent_pairs r.r_skeleton_independent_pairs r.r_rule_pairs);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* DOT                                                                 *)
(* ------------------------------------------------------------------ *)

let dot_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      if c = '"' || c = '\\' then Buffer.add_char buf '\\';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_dot g =
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "digraph flow {\n  rankdir=LR;\n";
  List.iter
    (fun c ->
      let shared = List.mem c g.g_shared in
      let protected_ = List.mem c g.g_protected in
      pr "  \"c:%s\" [label=\"%s\", shape=%s%s];\n" (dot_escape c)
        (dot_escape c)
        (if shared then "doubleoctagon" else "box")
        (if protected_ then ", style=filled, fillcolor=lightpink" else ""))
    g.g_components;
  Array.iteri
    (fun i r ->
      pr "  \"r:%s\" [label=\"%s\", shape=ellipse%s];\n" (dot_escape r)
        (dot_escape r)
        (if not g.g_infos.(i).i_rule.Apa.r_trivial_guard then
           ", peripheries=2"
         else ""))
    g.g_rules;
  Array.iter
    (fun (info : info) ->
      let r = info.i_rule in
      List.iter
        (fun (tk : Apa.take) ->
          pr "  \"c:%s\" -> \"r:%s\"%s;\n"
            (dot_escape tk.Apa.t_component)
            (dot_escape r.Apa.r_name)
            (if tk.Apa.t_consume then "" else " [style=dashed]"))
        r.Apa.r_takes;
      List.iter
        (fun (p : Apa.put) ->
          pr "  \"r:%s\" -> \"c:%s\";\n" (dot_escape r.Apa.r_name)
            (dot_escape p.Apa.p_component))
        r.Apa.r_puts)
    g.g_infos;
  List.iter
    (fun k ->
      pr
        "  \"r:%s\" -> \"r:%s\" [style=dotted, color=red, label=\"%s \
         (killed)\"];\n"
        (dot_escape k.k_src) (dot_escape k.k_dst) (dot_escape k.k_component))
    g.g_kills;
  pr "}\n";
  Buffer.contents buf
