(** Requirement classification (Sect. 4.4 of the paper).

    A requirement is safety-critical when the underlying functional
    dependency persists after removing every policy-induced flow; otherwise
    it is attributed to the policies (e.g. the position-based forwarding
    policy makes requirement (4) an availability concern). *)

type class_ = Safety_critical | Policy_induced of string list

val pp_class : class_ Fmt.t
val equal_class : class_ -> class_ -> bool

val safety_graph : Fsa_model.Sos.t -> Fsa_model.Action_graph.G.t
val policies_of : Fsa_model.Sos.t -> string list

val classify : Fsa_model.Sos.t -> Auth.t -> class_
val classify_all : Fsa_model.Sos.t -> Auth.t list -> (Auth.t * class_) list
val safety_critical : Fsa_model.Sos.t -> Auth.t list -> Auth.t list
val pp_classified : (Auth.t * class_) Fmt.t
