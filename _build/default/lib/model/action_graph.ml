(* Shared instantiations of the generic graph and poset functors over
   actions: the functional flow graphs and the partial order zeta* of the
   paper live here. *)

module V = struct
  type t = Fsa_term.Action.t

  let compare = Fsa_term.Action.compare
  let pp = Fsa_term.Action.pp
end

module G = Fsa_graph.Digraph.Make (V)
module P = Fsa_order.Poset.Make (G)

let of_flows flows =
  List.fold_left
    (fun g f -> G.add_edge (Flow.src f) (Flow.dst f) g)
    G.empty flows

(* DOT rendering of a functional flow graph; external flows are dashed,
   policy-induced flows are annotated, mirroring Figs. 2-4 of the paper. *)
let dot ?(name = "functional_flow") ?(highlight = []) flows =
  let d = Fsa_graph.Dot.create ~graph_attrs:[ ("rankdir", "LR") ] name in
  let actions =
    List.concat_map (fun f -> [ Flow.src f; Flow.dst f ]) flows
    |> List.sort_uniq Fsa_term.Action.compare
  in
  List.iter
    (fun a ->
      let id = Fsa_term.Action.to_string a in
      let attrs =
        if List.exists (Fsa_term.Action.equal a) highlight then
          [ ("style", "bold"); ("color", "red") ]
        else []
      in
      Fsa_graph.Dot.node ~attrs d id)
    actions;
  List.iter
    (fun f ->
      let attrs =
        (if Flow.is_external f then [ ("style", "dashed") ] else [])
        @
        match Flow.policy f with
        | None -> []
        | Some p -> [ ("label", "policy: " ^ p) ]
      in
      Fsa_graph.Dot.edge ~attrs d
        (Fsa_term.Action.to_string (Flow.src f))
        (Fsa_term.Action.to_string (Flow.dst f)))
    flows;
  Fsa_graph.Dot.to_string d
