(* Quickstart: define a two-component system of systems, derive its
   authenticity requirements, and print them.

   The system: a weather station broadcasts road-condition reports; a
   variable speed-limit sign displays a limit computed from the received
   report and its own calibration.

   Run with: dune exec examples/quickstart.exe *)

module Term = Fsa_term.Term
module Agent = Fsa_term.Agent
module Action = Fsa_term.Action
module Component = Fsa_model.Component
module Flow = Fsa_model.Flow
module Sos = Fsa_model.Sos

let () =
  (* 1. Name the atomic actions of each component. *)
  let measure = Action.make ~actor:(Agent.unindexed "SENSOR") "measure" in
  let report = Action.make ~actor:(Agent.unindexed "STATION") "report" in
  let calibrate = Action.make ~actor:(Agent.unindexed "SIGN") "calibrate" in
  let receive = Action.make ~actor:(Agent.unindexed "SIGN") "receive" in
  let display = Action.make ~actor:(Agent.unindexed "SIGN") "display" in

  (* 2. Describe each component's internal functional flow. *)
  let station =
    Component.make "WeatherStation"
      ~actions:[ measure; report ]
      ~flows:[ Flow.internal measure report ]
  in
  let sign =
    Component.make "SpeedSign"
      ~actions:[ calibrate; receive; display ]
      ~flows:[ Flow.internal receive display; Flow.internal calibrate display ]
  in

  (* 3. Compose the system of systems: the report transmission is an
     external flow between the two components. *)
  let sos =
    Sos.make "variable_speed_limit"
      ~components:[ station; sign ]
      ~links:[ Flow.external_ report receive ]
  in

  (* 4. Derive the authenticity requirements: every pair of the relation
     chi = zeta* restricted to (minima x maxima) is one requirement. *)
  let stakeholder _ = Agent.unindexed "DRIVER" in
  let requirements = Fsa_requirements.Derive.of_sos ~stakeholder sos in

  Fmt.pr "System: %a@.@." Sos.pp_stats (Sos.stats sos);
  Fmt.pr "Authenticity requirements:@.%a@.@."
    Fsa_requirements.Auth.pp_set requirements;
  List.iter
    (fun r -> Fmt.pr "%a@." Fsa_requirements.Auth.pp_prose r)
    requirements
