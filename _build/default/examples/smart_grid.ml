(* Functional security analysis outside the vehicular domain: a smart-grid
   demand-response system of systems (see Fsa_grid for the models).

   Households carry smart meters; a neighbourhood concentrator aggregates
   readings; the utility head-end combines the aggregate with a market
   price into demand-response commands that actuate household breakers.
   The safety-critical outputs are the breaker actuations; billing is a
   settlement policy; meter readings are personal data.

   Both analysis paths run here — the functional model (manual) and the
   operational APA model (tool-assisted, with joins and fan-out) — and
   are cross-validated against each other.

   Run with: dune exec examples/smart_grid.exe *)

module Action = Fsa_term.Action
module Agent = Fsa_term.Agent
module Auth = Fsa_requirements.Auth
module Conf = Fsa_requirements.Confidentiality
module Analysis = Fsa_core.Analysis
module Scenario = Fsa_grid.Scenario
module Grid_apa = Fsa_grid.Grid_apa

let section title = Fmt.pr "@.=== %s ===@." title

let () =
  let grid = Scenario.demand_response () in

  section "Manual path: functional model";
  let manual = Analysis.manual ~stakeholder:Scenario.stakeholder grid in
  Fmt.pr "%a@." Analysis.pp_manual_report manual;
  Fmt.pr
    "@.The settlement flow is a billing policy: the corresponding \
     requirements are availability concerns, not safety-critical for the \
     switching decision.@.";

  section "Tool path: APA model with joins and fan-out";
  let apa = Grid_apa.demand_response () in
  let tool = Analysis.tool ~stakeholder:Grid_apa.stakeholder apa in
  Fmt.pr "%a@." Analysis.pp_tool_report tool;

  section "Cross-validation";
  let check =
    Analysis.crosscheck ~map:Grid_apa.manual_action_of_label
      ~manual_requirements:manual.Analysis.m_requirements
      ~tool_requirements:tool.Analysis.t_requirements
  in
  Fmt.pr "%a@." Analysis.pp_crosscheck check;

  section "Confidentiality: who may learn a household's readings?";
  let labelling =
    { Conf.default_labelling with
      Conf.source_level =
        (fun a ->
          if Action.label a = "measure" then Conf.Confidential else Conf.Public);
      Conf.observers = Scenario.stakeholder }
  in
  List.iter
    (fun r -> Fmt.pr "- %a@." Conf.pp r)
    (Conf.derive ~labelling ~threshold:Conf.Confidential grid);

  section "Protection options for one switching requirement";
  let switching =
    List.find
      (fun r ->
        Action.label (Auth.cause r) = "measure"
        && Action.label (Auth.effect r) = "switch"
        && Action.actor (Auth.cause r) = Some (Agent.concrete "METER" 1)
        && Action.actor (Auth.effect r) = Some (Agent.concrete "BRK" 1))
      manual.Analysis.m_requirements
  in
  Fmt.pr "%a@." Fsa_refine.Refine.pp_plan (Fsa_refine.Refine.plan grid switching);

  section "Threat tree for the same requirement";
  Fmt.pr "%a@." Fsa_refine.Threat.pp_tree
    (Fsa_refine.Threat.of_requirement grid switching);

  section "Scaling to three households";
  let manual3 =
    Analysis.manual ~stakeholder:Scenario.stakeholder
      (Scenario.demand_response ~households:3 ())
  in
  Fmt.pr "three households elicit %d requirements@."
    (List.length manual3.Analysis.m_requirements);

  section "Export (markdown)";
  print_string
    (Fsa_requirements.Export.to_markdown
       ~classify:(Fsa_requirements.Classify.classify grid)
       manual.Analysis.m_requirements)
