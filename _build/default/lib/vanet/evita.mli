(** A synthetic EVITA-scale automotive on-board architecture.

    Reconstructs a plausible on-board network with the boundary-action
    profile the paper reports for the EVITA project model (Sect. 4.4):
    38 component boundary actions, 16 system boundary actions (9 maximal,
    7 minimal), eliciting 29 authenticity requirements. *)

module Agent = Fsa_term.Agent
module Action = Fsa_term.Action
module Sos = Fsa_model.Sos

val components : Fsa_model.Component.t list
val links : Fsa_model.Flow.t list
val model : Sos.t

val stakeholder : Action.t -> Agent.t
(** Driver / backend / tester / receiving traffic, per output domain. *)

type profile = {
  requirements : int;
  component_boundary_actions : int;
  system_boundary_actions : int;
  maximal : int;
  minimal : int;
}

val paper_profile : profile
val measured_profile : unit -> profile
val pp_profile : profile Fmt.t
