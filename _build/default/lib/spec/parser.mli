(** Recursive-descent parser for the specification language.

    All parsing functions raise {!Loc.Error} on malformed input. *)

val parse_sterm : Lexer.t -> Ast.sterm
val parse_cond : Lexer.t -> Ast.cond
val parse_rule : Lexer.t -> Ast.rule_ast
val parse_component : Lexer.t -> Ast.component_decl
val parse_instance : Lexer.t -> Ast.instance_decl
val parse_cluster : Lexer.t -> Ast.cluster_decl
val parse_model : Lexer.t -> Ast.model_decl
val parse_sos : Lexer.t -> Ast.sos_decl
val parse_check : Lexer.t -> Ast.check_decl
val parse_decl : Lexer.t -> Ast.decl
val parse_string : string -> Ast.t
val parse_file : string -> Ast.t
