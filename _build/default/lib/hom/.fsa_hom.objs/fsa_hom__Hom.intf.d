lib/hom/hom.mli: Fsa_automata Fsa_lts Fsa_term
