lib/graph/dot.mli:
