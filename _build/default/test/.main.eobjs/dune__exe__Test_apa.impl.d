test/test_apa.ml: Alcotest Fsa_apa Fsa_term Fsa_vanet List Option Printf
