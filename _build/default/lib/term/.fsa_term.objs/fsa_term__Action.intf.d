lib/term/action.mli: Agent Fmt Map Set Term
