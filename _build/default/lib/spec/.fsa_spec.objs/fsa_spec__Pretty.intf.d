lib/spec/pretty.mli: Ast Fmt
