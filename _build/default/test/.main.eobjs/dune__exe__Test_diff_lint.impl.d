test/test_diff_lint.ml: Alcotest Fmt Fsa_grid Fsa_model Fsa_requirements Fsa_term Fsa_vanet List String
