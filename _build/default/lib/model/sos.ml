(* System-of-systems instances (Sect. 4.2).  A SoS instance is built from a
   number of functional component instances, glued together by external
   flows between actions of different components (e.g. the transmission of
   a cooperative awareness message from one vehicle's [send] to another
   vehicle's [rec]).  The synthesis of internal and external flow yields
   the global functional dependency graph from which requirements are
   derived. *)

module Action = Fsa_term.Action
module Agent = Fsa_term.Agent

type t = {
  name : string;
  components : Component.t list;
  links : Flow.t list;  (* external flows, between different components *)
}

type error =
  | Unknown_component_action of Action.t
  | Link_within_component of string * Flow.t
  | Cyclic_flow of Action.t list
  | Duplicate_component of string

let pp_error ppf = function
  | Unknown_component_action a ->
    Fmt.pf ppf "link endpoint %a is not an action of any component" Action.pp a
  | Link_within_component (c, f) ->
    Fmt.pf ppf "link %a connects two actions of the same component %s"
      Flow.pp f c
  | Cyclic_flow c ->
    Fmt.pf ppf "functional flow has a cycle: %a"
      Fmt.(list ~sep:(any " -> ") Action.pp)
      c
  | Duplicate_component n -> Fmt.pf ppf "component %s occurs twice" n

let owner_of components a =
  List.find_opt
    (fun c -> List.exists (Action.equal a) (Component.actions c))
    components

let all_flows t =
  List.concat_map Component.flows t.components @ t.links

let all_actions t =
  List.concat_map Component.actions t.components
  |> List.sort_uniq Action.compare

(* Every declared action is a vertex, so actions without any flow are
   visible to boundary computations (as both minimal and maximal). *)
let dependency_graph t =
  List.fold_left
    (fun g a -> Action_graph.G.add_vertex a g)
    (Action_graph.of_flows (all_flows t))
    (all_actions t)

let validate t =
  let errors = ref [] in
  let err e = errors := e :: !errors in
  let rec dup_check = function
    | [] -> ()
    | c :: rest ->
      if List.exists (fun c' -> String.equal (Component.name c) (Component.name c')) rest
      then err (Duplicate_component (Component.name c));
      dup_check rest
  in
  dup_check t.components;
  List.iter
    (fun f ->
      let check a =
        if Option.is_none (owner_of t.components a) then
          err (Unknown_component_action a)
      in
      check (Flow.src f);
      check (Flow.dst f);
      match owner_of t.components (Flow.src f), owner_of t.components (Flow.dst f) with
      | Some c1, Some c2 when String.equal (Component.name c1) (Component.name c2) ->
        err (Link_within_component (Component.name c1, f))
      | _, _ -> ())
    t.links;
  (match Action_graph.G.find_cycle (dependency_graph t) with
  | Some c -> err (Cyclic_flow c)
  | None -> ());
  match List.rev !errors with [] -> Ok () | es -> Error es

let make ?(links = []) ~components name =
  (* Links are external by construction. *)
  let links =
    List.map
      (fun f -> Flow.make ~kind:(Flow.kind f) ~locality:Flow.External
           ?policy:(Flow.policy f) (Flow.src f) (Flow.dst f))
      links
  in
  let t = { name; components; links } in
  match validate t with
  | Ok () -> t
  | Error (e :: _) -> invalid_arg (Fmt.str "Sos.make %s: %a" name pp_error e)
  | Error [] -> assert false

let name t = t.name
let components t = t.components
let links t = t.links

let component_names t = List.map Component.name t.components

(* The partial order zeta* of the instance.  [make] guarantees loop
   freedom, so this cannot fail for validated instances. *)
let poset t =
  match Action_graph.P.of_graph (dependency_graph t) with
  | Ok p -> p
  | Error (Action_graph.P.Cycle _) -> assert false

(* System boundary actions: minima (incoming: triggered by the system
   environment) and maxima (outgoing: influencing the environment) of the
   functional dependency order. *)
type boundary = { incoming : Action.t list; outgoing : Action.t list }

let boundary t =
  let p = poset t in
  { incoming = Action_graph.P.Eset.elements (Action_graph.P.minima p);
    outgoing = Action_graph.P.Eset.elements (Action_graph.P.maxima p) }

(* Component boundary actions: the union over all components of the actions
   at the respective component's boundary. *)
let component_boundary_actions t =
  List.concat_map Component.boundary_actions t.components
  |> List.sort_uniq Action.compare

type stats = {
  nb_components : int;
  nb_actions : int;
  nb_flows : int;
  nb_component_boundary : int;
  nb_system_boundary : int;
  nb_minimal : int;
  nb_maximal : int;
}

let stats t =
  let b = boundary t in
  let nb_minimal = List.length b.incoming in
  let nb_maximal = List.length b.outgoing in
  { nb_components = List.length t.components;
    nb_actions = List.length (all_actions t);
    nb_flows = List.length (all_flows t);
    nb_component_boundary = List.length (component_boundary_actions t);
    nb_system_boundary = nb_minimal + nb_maximal;
    nb_minimal;
    nb_maximal }

let pp_stats ppf s =
  Fmt.pf ppf
    "components: %d, actions: %d, flows: %d, component boundary actions: %d, \
     system boundary actions: %d (%d maximal, %d minimal)"
    s.nb_components s.nb_actions s.nb_flows s.nb_component_boundary
    s.nb_system_boundary s.nb_maximal s.nb_minimal

(* Structural comparison of SoS instances: two instances are considered
   isomorphic when their dependency graphs are isomorphic under a mapping
   that preserves action shapes (label, acting role and data arguments,
   forgetting the instance index).  Isomorphic combinations of component
   instances can be neglected during instance enumeration (Sect. 4.2). *)
let isomorphic t1 t2 =
  let label a b = Action.compare_shape (Action.shape a) (Action.shape b) = 0 in
  Action_graph.G.isomorphic ~label (dependency_graph t1) (dependency_graph t2)

let dedup_isomorphic instances =
  List.fold_left
    (fun kept inst ->
      if List.exists (isomorphic inst) kept then kept else inst :: kept)
    [] instances
  |> List.rev

let dot t = Action_graph.dot ~name:t.name (all_flows t)

let pp ppf t =
  Fmt.pf ppf "@[<v2>sos %s:@,%a@,links:@,%a@]" t.name
    Fmt.(list ~sep:cut Component.pp)
    t.components
    Fmt.(list ~sep:cut Flow.pp)
    t.links
