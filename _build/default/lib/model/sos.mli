(** System-of-systems instances (Sect. 4.2 of the paper).

    A SoS instance is a set of component instances glued together by
    external flows.  The synthesis of internal and external flow is the
    global functional dependency graph; its reflexive transitive closure is
    the partial order ζ* from which authenticity requirements derive. *)

module Action = Fsa_term.Action

type t = {
  name : string;
  components : Component.t list;
  links : Flow.t list;
}

type error =
  | Unknown_component_action of Action.t
  | Link_within_component of string * Flow.t
  | Cyclic_flow of Action.t list
  | Duplicate_component of string

val pp_error : error Fmt.t
val validate : t -> (unit, error list) result

val make : ?links:Flow.t list -> components:Component.t list -> string -> t
(** Build and validate an instance.  Links are forced to [External]
    locality.  @raise Invalid_argument on an ill-formed instance. *)

val name : t -> string
val components : t -> Component.t list
val links : t -> Flow.t list
val component_names : t -> string list

val owner_of : Component.t list -> Action.t -> Component.t option
val all_flows : t -> Flow.t list
val all_actions : t -> Action.t list
val dependency_graph : t -> Action_graph.G.t

val poset : t -> Action_graph.P.t
(** ζ* of the instance (total by construction for validated instances). *)

type boundary = { incoming : Action.t list; outgoing : Action.t list }

val boundary : t -> boundary
(** System boundary actions: minima (incoming) and maxima (outgoing) of
    the functional dependency order. *)

val component_boundary_actions : t -> Action.t list

type stats = {
  nb_components : int;
  nb_actions : int;
  nb_flows : int;
  nb_component_boundary : int;
  nb_system_boundary : int;
  nb_minimal : int;
  nb_maximal : int;
}

val stats : t -> stats
val pp_stats : stats Fmt.t

val isomorphic : t -> t -> bool
(** Structural isomorphism preserving action shapes; isomorphic instance
    combinations can be neglected during enumeration. *)

val dedup_isomorphic : t list -> t list

val dot : t -> string
val pp : t Fmt.t
