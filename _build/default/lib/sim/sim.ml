(* An interactive simulator for APA models — the inspection side of the
   SH verification tool ("visualisation and inspection of computed
   reachability graphs").

   A session holds the current global state, the trace executed so far
   (with undo), and optionally a set of requirement monitors that are fed
   every executed action.  The driver is UI-agnostic: commands come in as
   values (or parsed from a one-line textual syntax for the CLI), results
   go out as strings. *)

module Term = Fsa_term.Term
module Action = Fsa_term.Action
module Apa = Fsa_apa.Apa
module Auth = Fsa_requirements.Auth
module Monitor = Fsa_mc.Monitor

type t = {
  apa : Apa.t;
  mutable state : Apa.State.t;
  mutable history : (Action.t * Apa.State.t) list;
      (* executed action and the state *before* it, newest first *)
  mutable monitor : Monitor.t option;
  mutable rng : int;  (* deterministic linear-congruential stream *)
}

let create ?(seed = 42) apa =
  { apa;
    state = Apa.initial_state apa;
    history = [];
    monitor = None;
    rng = seed }

let state t = t.state
let apa t = t.apa

let trace t = List.rev_map fst t.history

let steps_taken t = List.length t.history

(* deterministic pseudo-random next integer *)
let next_random t bound =
  t.rng <- ((t.rng * 1103515245) + 12345) land 0x3FFFFFFF;
  t.rng mod bound

let attach_monitor t requirements =
  let m = Monitor.of_requirements requirements in
  (* replay the existing trace so verdicts are consistent *)
  List.iter (Monitor.step m) (trace t);
  t.monitor <- Some m

let monitor_report t =
  Option.map (fun m -> Fmt.str "%a" Monitor.pp_report m) t.monitor

(* The enabled transitions, deterministically ordered. *)
let enabled t =
  Apa.step t.apa t.state
  |> List.map (fun (rule, label, next) -> (Apa.rule_name rule, label, next))
  |> List.sort (fun (n1, l1, _) (n2, l2, _) ->
         let c = String.compare n1 n2 in
         if c <> 0 then c else Action.compare l1 l2)

let is_deadlocked t = enabled t = []

type step_error =
  | No_such_transition of string
  | Ambiguous of string * int
  | Deadlock

let pp_step_error ppf = function
  | No_such_transition name -> Fmt.pf ppf "no enabled transition %s" name
  | Ambiguous (name, n) ->
    Fmt.pf ppf "%s is ambiguous here (%d interpretations); step by index" name n
  | Deadlock -> Fmt.string ppf "the system is deadlocked"

let commit t label next =
  t.history <- (label, t.state) :: t.history;
  t.state <- next;
  Option.iter (fun m -> Monitor.step m label) t.monitor

(* Step by transition (rule) name; the name must identify a unique
   interpretation in the current state. *)
let step_named t name =
  match enabled t with
  | [] -> Error Deadlock
  | options -> (
    match List.filter (fun (n, _, _) -> String.equal n name) options with
    | [ (_, label, next) ] ->
      commit t label next;
      Ok label
    | [] -> Error (No_such_transition name)
    | several -> Error (Ambiguous (name, List.length several)))

(* Step by index into the [enabled] list. *)
let step_index t i =
  match List.nth_opt (enabled t) i with
  | Some (_, label, next) ->
    commit t label next;
    Ok label
  | None -> Error (No_such_transition (string_of_int i))

(* One uniformly chosen enabled transition. *)
let step_random t =
  match enabled t with
  | [] -> Error Deadlock
  | options ->
    let _, label, next = List.nth options (next_random t (List.length options)) in
    commit t label next;
    Ok label

(* Run random steps until deadlock or the bound is hit; returns the
   executed suffix. *)
let run_random t ~max_steps =
  let rec go acc k =
    if k = 0 then List.rev acc
    else
      match step_random t with
      | Ok label -> go (label :: acc) (k - 1)
      | Error _ -> List.rev acc
  in
  go [] max_steps

let undo t =
  match t.history with
  | [] -> false
  | (_, prev) :: rest ->
    t.state <- prev;
    t.history <- rest;
    (* monitors cannot un-see events: rebuild by replay *)
    (match t.monitor with
    | Some m ->
      (* re-create with the same requirements *)
      let reqs = List.map fst (Monitor.verdicts m) in
      let m' = Monitor.of_requirements reqs in
      List.iter (Monitor.step m') (trace t);
      t.monitor <- Some m'
    | None -> ());
    true

let reset t =
  t.state <- Apa.initial_state t.apa;
  (match t.monitor with
  | Some m ->
    let reqs = List.map fst (Monitor.verdicts m) in
    t.monitor <- Some (Monitor.of_requirements reqs)
  | None -> ());
  t.history <- []

(* ------------------------------------------------------------------ *)
(* A one-line command language for the CLI front end                    *)
(* ------------------------------------------------------------------ *)

type command =
  | Show_state
  | Show_enabled
  | Show_trace
  | Step_name of string
  | Step_index of int
  | Step_random
  | Run_random of int
  | Undo
  | Reset
  | Monitor_report
  | Save_trace of string
  | Help
  | Quit

let parse_command line =
  match
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun s -> s <> "")
  with
  | [ "state" ] -> Ok Show_state
  | [ "enabled" ] | [ "ls" ] -> Ok Show_enabled
  | [ "trace" ] -> Ok Show_trace
  | [ "step"; arg ] -> (
    match int_of_string_opt arg with
    | Some i -> Ok (Step_index i)
    | None -> Ok (Step_name arg))
  | [ "random" ] -> Ok Step_random
  | [ "run"; n ] -> (
    match int_of_string_opt n with
    | Some n when n > 0 -> Ok (Run_random n)
    | Some _ | None -> Error "run expects a positive number of steps")
  | [ "undo" ] -> Ok Undo
  | [ "reset" ] -> Ok Reset
  | [ "monitor" ] -> Ok Monitor_report
  | [ "save"; path ] -> Ok (Save_trace path)
  | [ "help" ] | [ "?" ] -> Ok Help
  | [ "quit" ] | [ "exit" ] | [ "q" ] -> Ok Quit
  | [] -> Error "empty command"
  | cmd :: _ -> Error (Printf.sprintf "unknown command %S (try 'help')" cmd)

let help_text =
  "commands:\n\
  \  state        show the current global state\n\
  \  enabled|ls   list enabled transitions\n\
  \  step N|NAME  execute the Nth enabled transition, or by name\n\
  \  random       execute one random enabled transition\n\
  \  run N        execute up to N random transitions\n\
  \  trace        show the executed trace\n\
  \  undo         revert the last step\n\
  \  reset        return to the initial state\n\
  \  monitor      show requirement monitor verdicts\n\
  \  save FILE    write the trace to FILE (one transition per line)\n\
  \  help         this text\n\
  \  quit         leave the simulator"

(* Execute one command; the [`Quit] result signals session end. *)
let execute t command : [ `Output of string | `Quit ] =
  let out fmt = Fmt.kstr (fun s -> `Output s) fmt in
  match command with
  | Show_state -> out "%a" Apa.State.pp t.state
  | Show_enabled -> (
    match enabled t with
    | [] -> out "(deadlocked)"
    | options ->
      `Output
        (String.concat "\n"
           (List.mapi
              (fun i (name, label, _) ->
                Fmt.str "%2d: %s  [%a]" i name Action.pp label)
              options)))
  | Show_trace ->
    out "%a" Fmt.(list ~sep:(any "; ") Action.pp) (trace t)
  | Step_name name -> (
    match step_named t name with
    | Ok label -> out "executed %a" Action.pp label
    | Error e -> out "error: %a" pp_step_error e)
  | Step_index i -> (
    match step_index t i with
    | Ok label -> out "executed %a" Action.pp label
    | Error e -> out "error: %a" pp_step_error e)
  | Step_random -> (
    match step_random t with
    | Ok label -> out "executed %a" Action.pp label
    | Error e -> out "error: %a" pp_step_error e)
  | Run_random n ->
    let executed = run_random t ~max_steps:n in
    out "executed %d steps%s" (List.length executed)
      (if is_deadlocked t then " (deadlocked)" else "")
  | Undo -> if undo t then out "undone" else out "nothing to undo"
  | Reset ->
    reset t;
    out "reset to the initial state"
  | Monitor_report -> (
    match monitor_report t with
    | Some report -> `Output report
    | None -> out "no monitor attached")
  | Save_trace path -> (
    match
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          List.iter
            (fun a -> output_string oc (Action.to_string a ^ "\n"))
            (trace t))
    with
    | () -> out "wrote %d events to %s" (steps_taken t) path
    | exception Sys_error msg -> out "error: %s" msg)
  | Help -> `Output help_text
  | Quit -> `Quit

(* Run a scripted session: execute the lines, collect the outputs. *)
let script t lines =
  let rec go acc = function
    | [] -> List.rev acc
    | line :: rest -> (
      match parse_command line with
      | Error msg -> go (("error: " ^ msg) :: acc) rest
      | Ok cmd -> (
        match execute t cmd with
        | `Output s -> go (s :: acc) rest
        | `Quit -> List.rev acc))
  in
  go [] lines
