lib/automata/automata.mli: Fmt Map Set
