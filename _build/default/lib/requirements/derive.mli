(** Systematic derivation of authenticity requirements from SoS instances
    (Sect. 4.3–4.4 of the paper). *)

module Action = Fsa_term.Action
module Agent = Fsa_term.Agent

type stakeholder_assignment = Action.t -> Agent.t

val default_stakeholder : stakeholder_assignment
(** Driver [D_i] for HMI actions; the acting component otherwise. *)

val of_poset :
  stakeholder:stakeholder_assignment -> Fsa_model.Action_graph.P.t -> Auth.t list

val of_sos :
  ?stakeholder:stakeholder_assignment -> Fsa_model.Sos.t -> Auth.t list
(** χ of the instance, as authenticity requirements. *)

val for_effect :
  ?stakeholder:stakeholder_assignment ->
  Fsa_model.Sos.t ->
  Action.t ->
  Auth.t list
(** Requirements for one output action only (Examples 1–2). *)

val of_instances :
  ?stakeholder:stakeholder_assignment -> Fsa_model.Sos.t list -> Auth.t list
(** Union over a family of instances. *)
