lib/requirements/prioritise.ml: Auth Classify Fmt Fsa_model Fsa_term Int List
