(** Cooperative adaptive cruise control (platooning): a requirement
    family quantified over the followers, and a deliberately {e cyclic}
    operational model (continuous beaconing) marking the boundary of the
    paper's acyclic minima/maxima reading — functional dependence remains
    directly testable on the behaviour. *)

module Term = Fsa_term.Term
module Agent = Fsa_term.Agent
module Action = Fsa_term.Action
module Sos = Fsa_model.Sos
module Apa = Fsa_apa.Apa

(** {1 Manual path (one control round)} *)

val sense_accel : Action.t
val broadcast : Action.t
val receive : int -> Action.t
val gap : int -> Action.t
val ctrl : int -> Action.t
val actuate : int -> Action.t

val leader : Fsa_model.Component.t
val follower : int -> Fsa_model.Component.t
val round : ?followers:int -> unit -> Sos.t

val stakeholder : Action.t -> Agent.t
val follower_domain : Agent.t -> string option

(** {1 Tool path (cyclic APA)} *)

val apa : ?followers:int -> unit -> Apa.t
val l_beacon : Action.t
val f_receive : int -> Action.t
val f_gap : int -> Action.t
val f_ctrl : int -> Action.t
