(* Property-specification patterns over action languages.

   The SH verification tool checks temporal-logic formulae on behaviours;
   in requirements-engineering practice such properties are usually stated
   through the property-specification patterns of Dwyer et al. (absence,
   universality, existence, precedence, response) restricted to a scope
   (globally, before the first occurrence of an action, after it).

   Each pattern/scope combination compiles to a deterministic automaton
   over the behaviour's concrete alphabet.  Safety patterns are checked by
   language containment of the (prefix-closed) behaviour; liveness
   patterns by containment of the maximal-trace language (the runs ending
   in a dead state — every maximal finite path of the reachability graph).
   Counterexamples are shortest offending traces. *)

module Action = Fsa_term.Action
module Lts = Fsa_lts.Lts
module A = Fsa_hom.Hom.A

type pred = { pred_name : string; holds : Action.t -> bool }

let pred name holds = { pred_name = name; holds }
let action_is a = pred (Action.to_string a) (Action.equal a)

type body =
  | Absence of pred  (* no action satisfying p occurs *)
  | Universality of pred  (* every action satisfies p *)
  | Existence of pred  (* some action satisfies p (liveness) *)
  | Precedence of pred * pred
      (* Precedence (s, p): p occurs only after s has occurred *)
  | Response of pred * pred
      (* Response (s, p): every s is eventually followed by p (liveness) *)

type scope =
  | Globally
  | Before of pred  (* the segment strictly before the first occurrence *)
  | After of pred  (* the segment strictly after the first occurrence *)

type t = { body : body; scope : scope }

let make ?(scope = Globally) body = { body; scope }

let is_liveness_body = function
  | Existence _ | Response _ -> true
  | Absence _ | Universality _ | Precedence _ -> false

let is_liveness t = is_liveness_body t.body

let pp_body ppf = function
  | Absence p -> Fmt.pf ppf "absence of %s" p.pred_name
  | Universality p -> Fmt.pf ppf "universality of %s" p.pred_name
  | Existence p -> Fmt.pf ppf "existence of %s" p.pred_name
  | Precedence (s, p) -> Fmt.pf ppf "%s precedes %s" s.pred_name p.pred_name
  | Response (s, p) -> Fmt.pf ppf "%s responds to %s" p.pred_name s.pred_name

let pp_scope ppf = function
  | Globally -> Fmt.string ppf "globally"
  | Before q -> Fmt.pf ppf "before %s" q.pred_name
  | After q -> Fmt.pf ppf "after %s" q.pred_name

let pp ppf t = Fmt.pf ppf "%a, %a" pp_body t.body pp_scope t.scope

(* ------------------------------------------------------------------ *)
(* Symbolic property machines                                          *)
(* ------------------------------------------------------------------ *)

(* A small deterministic machine with integer states; [None] on a step
   means the trace violates the property irrecoverably. *)
type machine = {
  nb : int;
  start : int;
  step : int -> Action.t -> int option;
  final : int -> bool;
}

let body_machine = function
  | Absence p ->
    { nb = 1; start = 0;
      step = (fun _ a -> if p.holds a then None else Some 0);
      final = (fun _ -> true) }
  | Universality p ->
    { nb = 1; start = 0;
      step = (fun _ a -> if p.holds a then Some 0 else None);
      final = (fun _ -> true) }
  | Existence p ->
    { nb = 2; start = 0;
      step = (fun s a -> if s = 1 || p.holds a then Some 1 else Some 0);
      final = (fun s -> s = 1) }
  | Precedence (s, p) ->
    (* state 0: s not seen yet — p forbidden; state 1: s seen *)
    { nb = 2; start = 0;
      step =
        (fun st a ->
          if st = 1 then Some 1
          else if s.holds a then Some 1
          else if p.holds a then None
          else Some 0);
      final = (fun _ -> true) }
  | Response (s, p) ->
    (* state 0: no pending obligation; state 1: response pending *)
    { nb = 2; start = 0;
      step =
        (fun st a ->
          match st with
          | 0 -> if s.holds a && not (p.holds a) then Some 1 else Some 0
          | _ -> if p.holds a then Some 0 else Some 1);
      final = (fun s -> s = 0) }

(* Scope wrappers.

   [Before q]: the body governs the segment before the first q; from the
   first q on, everything is allowed (state [nb], accepting).  A liveness
   obligation must be fulfilled before q or by the end of the trace.

   [After q]: the prefix up to and including the first q is unconstrained
   (state encodings shifted by one); the body governs the rest.  Traces
   without q satisfy the property. *)
let machine_of t =
  let m = body_machine t.body in
  match t.scope with
  | Globally -> m
  | Before q ->
    let sink = m.nb in
    { nb = m.nb + 1;
      start = m.start;
      step =
        (fun s a ->
          if s = sink then Some sink
          else if q.holds a then
            (* entering the don't-care region: liveness obligations must
               already be fulfilled *)
            if m.final s then Some sink else None
          else m.step s a);
      final = (fun s -> s = sink || m.final s) }
  | After q ->
    let pre = m.nb in
    { nb = m.nb + 1;
      start = pre;
      step =
        (fun s a ->
          if s = pre then if q.holds a then Some m.start else Some pre
          else m.step s a);
      final = (fun s -> s = pre || m.final s) }

(* Materialise the machine as a DFA over a concrete alphabet. *)
let property_dfa ~alphabet t =
  let m = machine_of t in
  let delta = Array.make m.nb A.Lmap.empty in
  for s = 0 to m.nb - 1 do
    delta.(s) <-
      List.fold_left
        (fun acc a ->
          match m.step s a with
          | Some d -> A.Lmap.add a d acc
          | None -> acc)
        A.Lmap.empty alphabet
  done;
  let finals =
    List.filter m.final (List.init m.nb Fun.id)
    |> Fsa_automata.Automata.Int_set.of_list
  in
  A.Dfa.create ~nb_states:m.nb ~start:m.start ~finals ~delta

(* ------------------------------------------------------------------ *)
(* Checking behaviours                                                 *)
(* ------------------------------------------------------------------ *)

(* The prefix-closed behaviour (all states accept) and the maximal-trace
   language (only dead states accept) of a reachability graph. *)
let behaviour_nfa ~maximal lts =
  let module IS = Fsa_automata.Automata.Int_set in
  let edges =
    List.map
      (fun tr -> (tr.Lts.t_src, Some tr.Lts.t_label, tr.Lts.t_dst))
      (Lts.transitions lts)
  in
  let finals =
    if maximal then IS.of_list (Lts.deadlocks lts)
    else IS.of_list (List.init (Lts.nb_states lts) Fun.id)
  in
  A.Nfa.create ~nb_states:(Lts.nb_states lts)
    ~start:(IS.singleton (Lts.initial lts))
    ~finals ~edges

(* Safety patterns on the homomorphic image: containment of the abstract
   (prefix-closed) language in the property automaton.  Liveness patterns
   need maximal traces, which projections do not preserve in general, so
   they are rejected here. *)
let holds_abstract hom lts t =
  if is_liveness t then
    invalid_arg "Pattern.holds_abstract: liveness patterns need maximal traces";
  let behaviour = Fsa_hom.Hom.minimal_automaton hom lts in
  let alphabet = A.Lset.elements (A.Dfa.alphabet behaviour) in
  let prop = property_dfa ~alphabet t in
  A.Dfa.language_subset behaviour prop

type result = { holds_ : bool; counterexample : Action.t list option }

let check lts t =
  let alphabet = Action.Set.elements (Lts.alphabet lts) in
  let prop = property_dfa ~alphabet t in
  let behaviour =
    A.Dfa.determinize (behaviour_nfa ~maximal:(is_liveness t) lts)
  in
  let offending = A.Dfa.difference behaviour prop in
  match A.Dfa.shortest_accepted (A.Dfa.trim offending) with
  | None -> { holds_ = true; counterexample = None }
  | Some word -> { holds_ = false; counterexample = Some word }

let holds lts t = (check lts t).holds_

let pp_result ppf r =
  match r.counterexample with
  | None -> Fmt.string ppf "holds"
  | Some trace ->
    Fmt.pf ppf "violated, e.g. by the trace %a"
      Fmt.(list ~sep:(any "; ") Action.pp)
      trace
