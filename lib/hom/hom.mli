(** Alphabetic language homomorphisms and abstraction-based dependence
    analysis (Sect. 5.5 of the paper). *)

module Action = Fsa_term.Action
module Lts = Fsa_lts.Lts
module Action_label : Fsa_automata.Automata.LABEL with type t = Action.t
module A : module type of Fsa_automata.Automata.Make (Action_label)

type t = Action.t -> Action.t option
(** An alphabetic homomorphism on action languages; [None] erases the
    action (maps it to the empty word). *)

val identity : t

val preserve : Action.t list -> t
(** Identity on the listed actions, erase everything else. *)

val rename : (Action.t * Action.t) list -> t
(** Pointwise renaming; actions outside the map are kept unchanged.
    First binding wins for duplicate sources.

    @raise Invalid_argument if the map itself is non-injective — two
    distinct sources renamed onto the same target silently merge
    behaviours and poison dependence verdicts.  Collisions with
    untouched alphabet actions are not detectable here; run
    {!rename_collisions} with the alphabet first. *)

val rename_collisions :
  ?alphabet:Action.t list ->
  (Action.t * Action.t) list ->
  (Action.t * Action.t list) list
(** The merge groups of a rename map: every target that two or more
    distinct sources end up on, with its sources (sorted).  With
    [?alphabet], actions the map leaves untouched count as sources of
    themselves, so renaming [a] onto an existing action [b] is reported
    as the merge of [a] and [b].  Empty result = the map is injective on
    the alphabet. *)

val compose : t -> t -> t

val erased : t -> Action.t list -> Action.t list
(** The actions of the given alphabet the homomorphism erases. *)

val preserved : t -> Action.t list -> Action.t list
(** The actions of the given alphabet the homomorphism keeps.  An
    abstraction preserving nothing has a single-state minimal automaton
    and makes every dependence verdict vacuous. *)

val image_nfa : t -> Lts.t -> A.Nfa.t
(** The homomorphic image of a (prefix-closed) behaviour, with erased
    transitions as epsilon edges; every state accepts. *)

val minimal_automaton : t -> Lts.t -> A.Dfa.t
(** The minimal deterministic automaton of the image — what the SH tool
    displays in Figs. 10 and 11. *)

val dfa_has_target_before_avoid :
  A.Dfa.t -> avoid:Action.t -> target:Action.t -> bool

val depends_abstract :
  Lts.t -> min_action:Action.t -> max_action:Action.t -> bool
(** Abstraction-based functional dependence: preserve only the pair,
    minimise, and check that [max_action] cannot occur before
    [min_action]. *)

type dependence_timing = {
  dt_erase_ns : int64;  (** building the homomorphic image NFA *)
  dt_determinise_ns : int64;
  dt_minimise_ns : int64;
  dt_compare_ns : int64;  (** the target-before-avoid search *)
}
(** Wall-clock breakdown of one abstraction-based dependence test. *)

val depends_abstract_timed :
  Lts.t ->
  min_action:Action.t ->
  max_action:Action.t ->
  bool * dependence_timing
(** {!depends_abstract} plus the time spent in each sub-phase, so the
    analysis layer can report which phase dominates per (min, max)
    pair. *)

val dependence_matrix :
  Lts.t ->
  minima:Action.t list ->
  maxima:Action.t list ->
  (Action.t * (Action.t * bool) list) list
(** For each maximum, the dependence verdict against every minimum. *)

module Pair_set : Set.S with type elt = Action.t * Action.t

(** Shared multi-pair abstraction engine: erase the behaviour once to
    the union alphabet of all surviving (minimum, maximum) pairs,
    determinise/minimise that shared image, then answer every pair from
    the shared automaton instead of re-walking the full graph per pair.
    Sound because [preserve {min, max} = preserve {min, max} . preserve
    union] for every pair inside the union alphabet, and minimal DFAs
    are unique up to isomorphism — verdicts and exported minimal
    automata are identical to the per-pair path. *)
module Shared : sig
  type build_timing = {
    sb_erase_ns : int64;  (** building the shared image NFA *)
    sb_determinise_ns : int64;
    sb_minimise_ns : int64;
    sb_early_ns : int64;  (** the on-the-fly early-decision pass *)
  }

  type engine

  val build :
    ?dfa:A.Dfa.t ->
    alphabet:Action.Set.t ->
    minima:Action.t list ->
    maxima:Action.t list ->
    Lts.t ->
    engine
  (** Build the shared quotient for [alphabet] (the union of all pair
      actions) and run the early-decision pass for the given minima and
      maxima.  [?dfa] injects a previously cached shared quotient: the
      behaviour graph is then not walked at all (and no pair is decided
      early — all verdicts come off the shared DFA, identically). *)

  val alphabet : engine -> Action.Set.t
  val dfa : engine -> A.Dfa.t
  (** The shared minimal DFA — the cacheable intermediate quotient. *)

  val cached : engine -> bool
  val timing : engine -> build_timing

  val early_count : engine -> int
  (** Number of pairs the single pass already proved independent. *)

  val depends : engine -> min_action:Action.t -> max_action:Action.t -> bool

  val depends_timed :
    engine ->
    min_action:Action.t ->
    max_action:Action.t ->
    bool * dependence_timing
  (** Per-pair verdict off the shared engine.  The returned timing rows
      carry only the genuinely per-pair compare time; the shared
      erase/determinise/minimise cost lives in {!timing}.
      @raise Invalid_argument if the pair is outside the engine's
      alphabet. *)

  val minimal_automaton :
    engine -> min_action:Action.t -> max_action:Action.t -> A.Dfa.t
  (** The pair's minimal automaton, projected from the shared quotient —
      isomorphic to [minimal_automaton (preserve [min; max]) lts]. *)
end

val is_simple : t -> Lts.t -> bool
(** Weak continuation-closure check on the product of the behaviour with
    the minimal automaton of its image: when it holds, every abstract
    continuation is realisable from every concrete representative and the
    homomorphism is simple on this behaviour (the condition the SH tool
    verifies before transferring abstract results). *)

val dot : ?name:string -> t -> Lts.t -> string
val describe_dfa : A.Dfa.t -> string
