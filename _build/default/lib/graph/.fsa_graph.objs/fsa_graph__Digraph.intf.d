lib/graph/digraph.mli: Fmt Map Set
