lib/vanet/vehicle_apa.ml: Fsa_apa Fsa_term Fun Geo List Printf Scenario String
