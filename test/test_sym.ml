(* Tests for Fsa_sym and the --reduce pipeline: orbit detection on the
   scenario builders (including guard-broken and initial-broken
   symmetry), canonicalisation consistency, ample-set module
   certification with its full-expansion fallbacks, and the soundness
   gate behind --reduce: on every model that completes un-reduced, the
   reduced analysis derives the identical requirement set, across
   reduction kinds and job counts. *)

module Term = Fsa_term.Term
module Apa = Fsa_apa.Apa
module State = Fsa_apa.Apa.State
module Sym = Fsa_sym.Sym
module Structural = Fsa_struct.Structural
module Lts = Fsa_lts.Lts
module Analysis = Fsa_core.Analysis
module Auth = Fsa_requirements.Auth
module Parser = Fsa_spec.Parser
module Elaborate = Fsa_spec.Elaborate
module V = Fsa_vanet.Vehicle_apa

let guard_sig = V.guard_attest

(* ------------------------------------------------------------------ *)
(* Orbit detection                                                     *)
(* ------------------------------------------------------------------ *)

let test_pairs_orbit () =
  let apa = V.pairs ~uniform:true 2 in
  let r = Sym.detect ~guard_sig apa in
  let reducible = List.filter (fun o -> o.Sym.o_reducible) r.Sym.r_orbits in
  Alcotest.(check int) "one reducible orbit" 1 (List.length reducible);
  let o = List.hd reducible in
  Alcotest.(check int) "two blocks" 2 (List.length o.Sym.o_blocks);
  List.iter
    (fun b ->
      Alcotest.(check int)
        "warner/receiver pair moves together" 2
        (List.length b.Sym.b_instances))
    o.Sym.o_blocks;
  Alcotest.(check bool)
    "non-trivial guards were attested" true
    (r.Sym.r_attested_guards <> []);
  Alcotest.(check (float 0.001)) "group order 2!" 2. (Sym.group_order r)

let test_pairs_orbit_three () =
  let r = Sym.detect ~guard_sig (V.pairs ~uniform:true 3) in
  let reducible = List.filter (fun o -> o.Sym.o_reducible) r.Sym.r_orbits in
  Alcotest.(check int) "one reducible orbit" 1 (List.length reducible);
  Alcotest.(check int) "three blocks" 3
    (List.length (List.hd reducible).Sym.o_blocks);
  Alcotest.(check (float 0.001)) "group order 3!" 6. (Sym.group_order r)

let test_guard_breaks_symmetry () =
  (* without attestation the opaque guard closures must break the
     candidate symmetry, not silently pass *)
  let r = Sym.detect (V.pairs ~uniform:true 2) in
  Alcotest.(check int) "no orbits without guard_sig" 0
    (List.length r.Sym.r_orbits);
  Alcotest.(check bool) "rejected for guards" true
    (List.exists (fun j -> j.Sym.j_reason = `Guard) r.Sym.r_rejected)

let test_initial_breaks_symmetry () =
  (* the alternating position layout puts pair 2 at pos3/pos4: same
     rules, different initial contents *)
  let r = Sym.detect ~guard_sig (V.pairs 2) in
  Alcotest.(check int) "no orbits on alternating layout" 0
    (List.length r.Sym.r_orbits);
  Alcotest.(check bool) "rejected for initial contents" true
    (List.exists (fun j -> j.Sym.j_reason = `Initial) r.Sym.r_rejected)

let test_platoon_orbit () =
  let path = "platoon.fsa" in
  match Test_check.spec_dir () with
  | None -> ()
  | Some dir ->
    let spec = Parser.parse_file (Filename.concat dir path) in
    let sigs = Elaborate.guard_signatures spec in
    let guard_sig n = List.assoc_opt n sigs in
    let apa = Elaborate.apa_of_spec spec in
    let r = Sym.detect ~guard_sig apa in
    let reducible = List.filter (fun o -> o.Sym.o_reducible) r.Sym.r_orbits in
    Alcotest.(check int) "followers form one reducible orbit" 1
      (List.length reducible)

let test_report_json_deterministic () =
  let render () =
    Sym.report_to_json (Sym.detect ~guard_sig (V.pairs ~uniform:true 2))
  in
  Alcotest.(check string) "byte-identical" (render ()) (render ())

(* ------------------------------------------------------------------ *)
(* Canonicalisation                                                    *)
(* ------------------------------------------------------------------ *)

let test_canonical_consistency () =
  let apa = V.pairs ~uniform:true 2 in
  let r = Sym.detect ~guard_sig apa in
  let cz = Sym.canonizer r in
  Alcotest.(check bool) "canonizer nontrivial" true (Sym.nontrivial cz);
  (* canonicalise every state of the full graph: each state must map to
     a fixed-point representative via its recorded permutation, and the
     distinct representatives must hit the multiset bound C(14, 2) = 91
     exactly — fewer would conflate orbits, more would split one *)
  let lts = Lts.explore apa in
  let reps = Hashtbl.create 97 in
  for id = 0 to Lts.nb_states lts - 1 do
    let s = Lts.state lts id in
    let rep, p = Sym.canonical cz s in
    Alcotest.(check bool) "rep = p s" true
      (State.equal rep (Sym.Perm.apply_state p s));
    let rep', p' = Sym.canonical cz rep in
    Alcotest.(check bool) "representatives are fixed points" true
      (State.equal rep rep' && Sym.Perm.is_id p');
    Hashtbl.replace reps (State.to_string rep) ()
  done;
  Alcotest.(check int) "91 orbits of 169 states" 91 (Hashtbl.length reps)

let test_quotient_smaller () =
  let apa = V.pairs ~uniform:true 2 in
  let pl = Sym.plan ~guard_sig Sym.Sym apa in
  let full = Lts.explore apa in
  let quot = Analysis.quotient pl apa in
  Alcotest.(check int) "full graph is 13^2" 169 (Lts.nb_states full);
  Alcotest.(check int) "quotient is C(14,2)" 91 (Lts.nb_states quot)

(* ------------------------------------------------------------------ *)
(* Ample sets                                                          *)
(* ------------------------------------------------------------------ *)

let test_por_modules () =
  let apa = V.pairs ~uniform:true 2 in
  let pl = Sym.plan ~guard_sig Sym.Por apa in
  let po = Option.get pl.Sym.pl_por in
  let ms = Sym.por_modules po in
  Alcotest.(check int) "one module per pair" 2 (List.length ms);
  List.iter
    (fun m ->
      Alcotest.(check bool) "pair modules terminate" true m.Sym.m_reducible)
    ms;
  (* the initial state is expanded in full (C2) ... *)
  let succs s = Apa.step apa s in
  let s0 = Apa.initial_state apa in
  Alcotest.(check int) "initial expanded in full"
    (List.length (succs s0))
    (List.length (Sym.ample po s0 (succs s0)));
  (* ... and a state with both modules active is restricted to one *)
  let lts = Lts.explore apa in
  let restricted = ref false in
  for id = 0 to Lts.nb_states lts - 1 do
    let s = Lts.state lts id in
    let full = succs s in
    let amp = Sym.ample po s full in
    Alcotest.(check bool) "ample is a subset" true
      (List.length amp <= List.length full);
    if List.length amp < List.length full then restricted := true
  done;
  Alcotest.(check bool) "some state was restricted" true !restricted

let test_por_fallback_single_module () =
  (* two_vehicles: one radio medium couples everything into a single
     interference module, so C1 never holds and ample stays full *)
  let apa = V.two_vehicles () in
  let pl = Sym.plan ~guard_sig Sym.Por apa in
  Alcotest.(check bool) "no ample hook" true (Sym.ample_fn pl = None)

let test_por_fallback_nonconsuming () =
  (* platoon: every take is a read, no module can be certified
     terminating (C3), so ample falls back to full expansion *)
  match Test_check.spec_dir () with
  | None -> ()
  | Some dir ->
    let spec = Parser.parse_file (Filename.concat dir "platoon.fsa") in
    let apa = Elaborate.apa_of_spec spec in
    let pl = Sym.plan Sym.Por apa in
    (match pl.Sym.pl_por with
    | None -> Alcotest.fail "expected a por plan"
    | Some po ->
      List.iter
        (fun m ->
          Alcotest.(check bool) "read-only modules not reducible" false
            m.Sym.m_reducible)
        (Sym.por_modules po));
    Alcotest.(check bool) "no ample hook" true (Sym.ample_fn pl = None)

(* ------------------------------------------------------------------ *)
(* Soundness gate: reduced == unreduced requirements                   *)
(* ------------------------------------------------------------------ *)

let kinds = [ Sym.Sym; Sym.Por; Sym.Sym_por ]

let check_equal_requirements name ?guard_sig apa =
  let stakeholder = V.stakeholder in
  let plain = Analysis.tool ~stakeholder apa in
  List.iter
    (fun kind ->
      let pl = Sym.plan ?guard_sig kind apa in
      List.iter
        (fun jobs ->
          let red = Analysis.tool ~jobs ~reduce:pl ~stakeholder apa in
          let label =
            Printf.sprintf "%s/--reduce %s/jobs %d" name
              (Sym.kind_to_string kind) jobs
          in
          Alcotest.(check bool)
            (label ^ ": requirement sets identical")
            true
            (Auth.equal_set plain.Analysis.t_requirements
               red.Analysis.t_requirements);
          Alcotest.(check bool)
            (label ^ ": reduction info present")
            true
            (red.Analysis.t_reduction <> None))
        [ 1; 2; 4 ])
    kinds

let test_reduce_identical_vanet () =
  check_equal_requirements "pairs-2-uniform" ~guard_sig
    (V.pairs ~uniform:true 2);
  check_equal_requirements "pairs-2-alternating" ~guard_sig (V.pairs 2);
  check_equal_requirements "four-vehicles" ~guard_sig (V.four_vehicles ())

let test_reduce_identical_specs () =
  match Test_check.spec_dir () with
  | None -> ()
  | Some dir ->
    let analysed = ref 0 in
    List.iter
      (fun path ->
        match Parser.parse_file path with
        | exception _ -> ()
        | spec ->
          (match Elaborate.apa_of_spec spec with
          | exception (Fsa_spec.Loc.Error _ | Invalid_argument _) -> ()
          | apa ->
            incr analysed;
            let sigs = Elaborate.guard_signatures spec in
            let guard_sig n = List.assoc_opt n sigs in
            check_equal_requirements (Filename.basename path) ~guard_sig apa))
      (Test_check.example_files dir);
    Alcotest.(check bool) "at least one spec analysed" true (!analysed > 0)

let test_reduce_actually_reduces () =
  let apa = V.pairs ~uniform:true 2 in
  let pl = Sym.plan ~guard_sig Sym.Sym_por apa in
  let plain = Analysis.tool ~stakeholder:V.stakeholder apa in
  let red = Analysis.tool ~reduce:pl ~stakeholder:V.stakeholder apa in
  match red.Analysis.t_reduction with
  | None -> Alcotest.fail "expected reduction info"
  | Some ri ->
    Alcotest.(check string) "kind" "sym+por" ri.Analysis.ri_kind;
    Alcotest.(check (option string)) "no fallback" None ri.Analysis.ri_fallback;
    Alcotest.(check bool) "matched fewer states than the full graph" true
      (ri.Analysis.ri_reduced_states < plain.Analysis.t_stats.Lts.nb_states);
    Alcotest.(check bool)
      "representatives within the quotient bound" true
      (ri.Analysis.ri_reduced_states <= 91)

let test_reduce_fallback_on_custom_labels () =
  (* a model with a custom label closure must fall back to unreduced
     exploration and say so, not derive from an unsound rewrite *)
  let apa =
    Apa.make
      ~components:
        [ ("a1", Term.Set.of_list [ Term.sym "t" ]);
          ("a2", Term.Set.of_list [ Term.sym "t" ]);
          ("b1", Term.Set.empty);
          ("b2", Term.Set.empty) ]
      ~rules:
        [ Apa.rule "I1_go"
            ~label:(fun _ -> Fsa_term.Action.make "go")
            ~takes:[ Apa.take "a1" (Term.var "x") ]
            ~puts:[ Apa.put "b1" (Term.var "x") ];
          Apa.rule "I2_go"
            ~label:(fun _ -> Fsa_term.Action.make "go")
            ~takes:[ Apa.take "a2" (Term.var "x") ]
            ~puts:[ Apa.put "b2" (Term.var "x") ] ]
      "custom"
  in
  let pl = Sym.plan Sym.Sym apa in
  let red = Analysis.tool ~reduce:pl ~stakeholder:V.stakeholder apa in
  match red.Analysis.t_reduction with
  | None -> Alcotest.fail "expected reduction info"
  | Some ri ->
    Alcotest.(check bool) "fell back" true (ri.Analysis.ri_fallback <> None)

let suite =
  [ Alcotest.test_case "pairs: one orbit of two blocks" `Quick
      test_pairs_orbit;
    Alcotest.test_case "pairs: three blocks, order 6" `Quick
      test_pairs_orbit_three;
    Alcotest.test_case "unattested guards break symmetry" `Quick
      test_guard_breaks_symmetry;
    Alcotest.test_case "initial contents break symmetry" `Quick
      test_initial_breaks_symmetry;
    Alcotest.test_case "platoon followers form an orbit" `Quick
      test_platoon_orbit;
    Alcotest.test_case "report json deterministic" `Quick
      test_report_json_deterministic;
    Alcotest.test_case "canonical form is orbit-constant" `Quick
      test_canonical_consistency;
    Alcotest.test_case "quotient hits the multiset bound" `Quick
      test_quotient_smaller;
    Alcotest.test_case "por modules certified and restricting" `Quick
      test_por_modules;
    Alcotest.test_case "por fallback: single module" `Quick
      test_por_fallback_single_module;
    Alcotest.test_case "por fallback: non-consuming rules" `Quick
      test_por_fallback_nonconsuming;
    Alcotest.test_case "reduced == unreduced on vanet builders" `Quick
      test_reduce_identical_vanet;
    Alcotest.test_case "reduced == unreduced on example specs" `Quick
      test_reduce_identical_specs;
    Alcotest.test_case "sym+por actually reduces pairs-2" `Quick
      test_reduce_actually_reduces;
    Alcotest.test_case "custom labels fall back unreduced" `Quick
      test_reduce_fallback_on_custom_labels ]
