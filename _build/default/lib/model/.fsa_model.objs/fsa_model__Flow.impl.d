lib/model/flow.ml: Fmt Fsa_term Option Stdlib String
