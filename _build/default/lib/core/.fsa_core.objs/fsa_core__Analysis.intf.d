lib/core/analysis.mli: Fmt Fsa_apa Fsa_lts Fsa_model Fsa_requirements Fsa_term
