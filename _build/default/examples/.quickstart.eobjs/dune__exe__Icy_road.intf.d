examples/icy_road.mli:
