(* Tests for Fsa_hom: homomorphisms, abstraction-based dependence
   (Figs. 10/11), simplicity.  Expected shapes are the paper's figures. *)

module Term = Fsa_term.Term
module Action = Fsa_term.Action
module Apa = Fsa_apa.Apa
module Lts = Fsa_lts.Lts
module Hom = Fsa_hom.Hom
module V = Fsa_vanet.Vehicle_apa

let lts2 = lazy (Lts.explore (V.two_vehicles ()))
let lts4 = lazy (Lts.explore (V.four_vehicles ()))

let action_words dfa n = Hom.A.Dfa.words ~max_len:n dfa

let test_hom_constructors () =
  let a = Action.make "a" and b = Action.make "b" in
  Alcotest.(check bool) "identity keeps" true (Hom.identity a = Some a);
  let h = Hom.preserve [ a ] in
  Alcotest.(check bool) "preserve keeps listed" true (h a = Some a);
  Alcotest.(check bool) "preserve erases others" true (h b = None);
  let r = Hom.rename [ (a, b) ] in
  Alcotest.(check bool) "rename maps" true (r a = Some b);
  Alcotest.(check bool) "rename keeps others" true (r b = Some b);
  let c = Hom.compose h r in
  (* first rename a->b, then preserve {a}: b is erased *)
  Alcotest.(check bool) "compose pipes through" true (c a = None)

let test_image_nfa_prefix_closed () =
  let lts = Lazy.force lts2 in
  let nfa = Hom.image_nfa Hom.identity lts in
  Alcotest.(check int) "one NFA state per LTS state" (Lts.nb_states lts)
    (Hom.A.Nfa.nb_states nfa);
  (* every state of a behaviour accepts *)
  Alcotest.(check int) "all accepting" (Lts.nb_states lts)
    (Fsa_automata.Automata.Int_set.cardinal (Hom.A.Nfa.finals nfa))

let test_fig10_shape () =
  (* dependent pair: 3-state chain sense -> show *)
  let lts = Lazy.force lts4 in
  let dfa =
    Hom.minimal_automaton (Hom.preserve [ V.v_sense 1; V.v_show 2 ]) lts
  in
  Alcotest.(check int) "3 states (Fig. 10)" 3 (Hom.A.Dfa.nb_states dfa);
  Alcotest.(check int) "2 transitions" 2 (Hom.A.Dfa.nb_transitions dfa);
  (* the only maximal word is sense.show *)
  Alcotest.(check int) "3 accepted words up to length 2" 3
    (List.length (action_words dfa 2));
  Alcotest.(check bool) "show before sense rejected" false
    (Hom.A.Dfa.accepts dfa [ V.v_show 2; V.v_sense 1 ]);
  Alcotest.(check bool) "sense then show accepted" true
    (Hom.A.Dfa.accepts dfa [ V.v_sense 1; V.v_show 2 ])

let test_fig11_shape () =
  (* independent pair: 4-state diamond *)
  let lts = Lazy.force lts4 in
  let dfa =
    Hom.minimal_automaton (Hom.preserve [ V.v_sense 1; V.v_show 4 ]) lts
  in
  Alcotest.(check int) "4 states (Fig. 11)" 4 (Hom.A.Dfa.nb_states dfa);
  Alcotest.(check int) "4 transitions" 4 (Hom.A.Dfa.nb_transitions dfa);
  Alcotest.(check bool) "both orders accepted" true
    (Hom.A.Dfa.accepts dfa [ V.v_show 4; V.v_sense 1 ]
     && Hom.A.Dfa.accepts dfa [ V.v_sense 1; V.v_show 4 ])

let test_depends_abstract () =
  let lts = Lazy.force lts4 in
  Alcotest.(check bool) "V2_show <- V1_sense" true
    (Hom.depends_abstract lts ~min_action:(V.v_sense 1) ~max_action:(V.v_show 2));
  Alcotest.(check bool) "V4_show independent of V1_sense" false
    (Hom.depends_abstract lts ~min_action:(V.v_sense 1) ~max_action:(V.v_show 4))

let test_abstract_agrees_with_direct () =
  (* the paper's two methods must agree on every (min, max) pair *)
  let lts = Lazy.force lts4 in
  let minima = Action.Set.elements (Lts.minima lts) in
  let maxima = Action.Set.elements (Lts.maxima lts) in
  List.iter
    (fun mx ->
      List.iter
        (fun mn ->
          Alcotest.(check bool)
            (Fmt.str "agree on (%a, %a)" Action.pp mn Action.pp mx)
            (Lts.depends_on lts ~max_action:mx ~min_action:mn)
            (Hom.depends_abstract lts ~min_action:mn ~max_action:mx))
        minima)
    maxima

let test_dependence_matrix () =
  let lts = Lazy.force lts4 in
  let matrix =
    Hom.dependence_matrix lts
      ~minima:(Action.Set.elements (Lts.minima lts))
      ~maxima:(Action.Set.elements (Lts.maxima lts))
  in
  let deps =
    List.concat_map
      (fun (_, row) -> List.filter (fun (_, d) -> d) row)
      matrix
  in
  (* Sect. 5.5: 6 requirements *)
  Alcotest.(check int) "6 dependent pairs" 6 (List.length deps)

let test_simplicity_of_pair_homs () =
  (* the homomorphisms used in the paper's analysis are simple on these
     behaviours *)
  let lts = Lazy.force lts4 in
  List.iter
    (fun (mn, mx) ->
      Alcotest.(check bool)
        (Fmt.str "simple for (%a, %a)" Action.pp mn Action.pp mx)
        true
        (Hom.is_simple (Hom.preserve [ mn; mx ]) lts))
    [ (V.v_sense 1, V.v_show 2); (V.v_sense 3, V.v_show 4) ]

let test_non_simple_hom () =
  (* A behaviour with a hidden early decision: from the initial state,
     rule A leads to a state where C is possible, rule B to a state where
     it is not.  Erasing A and B is NOT simple: the abstract automaton
     offers C although the concrete system may have taken branch B. *)
  let sym = Term.sym and var = Term.var in
  let apa =
    Apa.make
      ~components:
        [ ("c0", Term.Set.of_list [ sym "t" ]);
          ("c1", Term.Set.empty); ("c2", Term.Set.empty);
          ("c3", Term.Set.empty) ]
      ~rules:
        [ Apa.rule "A" ~takes:[ Apa.take "c0" (var "x") ]
            ~puts:[ Apa.put "c1" (var "x") ];
          Apa.rule "B" ~takes:[ Apa.take "c0" (var "x") ]
            ~puts:[ Apa.put "c2" (var "x") ];
          Apa.rule "C" ~takes:[ Apa.take "c1" (var "x") ]
            ~puts:[ Apa.put "c3" (var "x") ] ]
      "brancher"
  in
  let lts = Lts.explore apa in
  let h = Hom.preserve [ Action.make "C" ] in
  Alcotest.(check bool) "hiding the branching is not simple" false
    (Hom.is_simple h lts);
  (* whereas keeping the branching visible is *)
  let h' = Hom.preserve [ Action.make "A" ; Action.make "B"; Action.make "C" ] in
  Alcotest.(check bool) "identity-like hom is simple" true
    (Hom.is_simple h' lts)

let test_identity_simple () =
  Alcotest.(check bool) "identity is always simple" true
    (Hom.is_simple Hom.identity (Lazy.force lts2))

let test_rename_rejects_merges () =
  let a = Action.make "a" and b = Action.make "b" and x = Action.make "x" in
  (* an injective map is fine *)
  Alcotest.(check bool) "injective rename maps" true
    (Hom.rename [ (a, x) ] a = Some x);
  (* two sources on one target is a merge, not a rename *)
  Alcotest.(check bool) "non-injective map raises" true
    (match Hom.rename [ (a, x); (b, x) ] a with
    | _ -> false
    | exception Invalid_argument _ -> true);
  (match Hom.rename_collisions [ (a, x); (b, x) ] with
  | [ (tgt, srcs) ] ->
    Alcotest.(check bool) "collision target" true (Action.equal tgt x);
    Alcotest.(check int) "two colliding sources" 2 (List.length srcs);
    Alcotest.(check bool) "sources are a and b" true
      (List.exists (Action.equal a) srcs && List.exists (Action.equal b) srcs)
  | gs -> Alcotest.failf "expected one collision group, got %d" (List.length gs));
  (* a rename onto an action the alphabet already contains collides
     with that action's identity image *)
  Alcotest.(check int) "identity collision found against the alphabet" 1
    (List.length (Hom.rename_collisions ~alphabet:[ a; x ] [ (a, x) ]));
  Alcotest.(check int) "injective against the alphabet is clean" 0
    (List.length (Hom.rename_collisions ~alphabet:[ a; b ] [ (a, x) ]));
  (* duplicate bindings for one source are first-binding-wins, not a
     collision *)
  Alcotest.(check int) "duplicate source is not a merge" 0
    (List.length (Hom.rename_collisions [ (a, x); (a, b) ]))

let test_rename_merges_actions () =
  (* renaming both sense actions to one abstract "sense" action *)
  let lts = Lazy.force lts4 in
  let merged = Action.make "sense" in
  let h a =
    match Action.label a with
    | "V1_sense" | "V3_sense" -> Some merged
    | "V2_show" | "V4_show" -> Some a
    | _ -> None
  in
  let dfa = Hom.minimal_automaton h lts in
  Alcotest.(check bool) "merged action appears" true
    (List.exists
       (fun (_, l, _) -> Action.equal l merged)
       (Hom.A.Dfa.transitions dfa))

let test_dot_output () =
  let lts = Lazy.force lts2 in
  let dot = Hom.dot (Hom.preserve [ V.v_sense 1; V.v_show 2 ]) lts in
  Alcotest.(check bool) "dot mentions V1_sense" true
    (let sub = "V1_sense" in
     let rec contains i =
       i + String.length sub <= String.length dot
       && (String.sub dot i (String.length sub) = sub || contains (i + 1))
     in
     contains 0)

let suite =
  [ Alcotest.test_case "constructors" `Quick test_hom_constructors;
    Alcotest.test_case "image NFA prefix closed" `Quick test_image_nfa_prefix_closed;
    Alcotest.test_case "Fig. 10 shape (dependent)" `Quick test_fig10_shape;
    Alcotest.test_case "Fig. 11 shape (independent)" `Quick test_fig11_shape;
    Alcotest.test_case "abstract dependence" `Quick test_depends_abstract;
    Alcotest.test_case "abstract = direct" `Quick test_abstract_agrees_with_direct;
    Alcotest.test_case "dependence matrix" `Quick test_dependence_matrix;
    Alcotest.test_case "pair homs are simple" `Quick test_simplicity_of_pair_homs;
    Alcotest.test_case "non-simple hom detected" `Quick test_non_simple_hom;
    Alcotest.test_case "identity simple" `Quick test_identity_simple;
    Alcotest.test_case "rename rejects merges" `Quick test_rename_rejects_merges;
    Alcotest.test_case "rename merges actions" `Quick test_rename_merges_actions;
    Alcotest.test_case "dot output" `Quick test_dot_output ]
