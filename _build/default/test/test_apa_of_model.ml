(* Tests for the canonical APA of a functional model: the generated
   behaviour realises exactly the model's dependency order, so the two
   analysis paths agree by construction — verified here on the paper's
   scenarios, the grid, the EVITA-scale model and random models. *)

module Term = Fsa_term.Term
module Action = Fsa_term.Action
module Apa = Fsa_apa.Apa
module Lts = Fsa_lts.Lts
module Analysis = Fsa_core.Analysis
module AoM = Fsa_core.Apa_of_model
module Sos = Fsa_model.Sos
module S = Fsa_vanet.Scenario

let test_two_vehicles_states () =
  (* the canonical APA of the manual two-vehicle model has the same state
     space as the hand-written vehicle APA: 13 states (the ideal lattice
     of the same event poset) *)
  let lts = Lts.explore (AoM.compile S.two_vehicles) in
  Alcotest.(check int) "13 states" 13 (Lts.nb_states lts);
  Alcotest.(check int) "1 dead state" 1 (List.length (Lts.deadlocks lts));
  (* labels are the manual actions themselves *)
  Alcotest.(check bool) "labels are model actions" true
    (Action.Set.mem
       (S.sense (Fsa_term.Agent.Concrete 1))
       (Lts.alphabet lts))

let test_states_equal_ideals () =
  (* for several models: states of the canonical APA = order ideals of
     the model's poset *)
  List.iter
    (fun sos ->
      let ideals =
        Fsa_model.Action_graph.P.count_ideals (Sos.poset sos)
      in
      let states = Lts.nb_states (Lts.explore (AoM.compile sos)) in
      Alcotest.(check int) (Sos.name sos ^ ": states = ideals") ideals states)
    [ S.rsu_and_vehicle; S.two_vehicles; S.three_vehicles;
      S.chain_concrete 4; Fsa_grid.Scenario.demand_response () ]

let test_crosscheck_scenarios () =
  List.iter
    (fun sos ->
      let c = AoM.crosscheck ~meth:Analysis.Direct sos in
      Alcotest.(check bool) (Sos.name sos ^ " agrees") true c.Analysis.c_agree)
    [ S.rsu_and_vehicle; S.two_vehicles; S.three_vehicles;
      S.chain_concrete 5 ]

let test_crosscheck_grid () =
  let c =
    AoM.crosscheck ~meth:Analysis.Direct
      ~stakeholder:Fsa_grid.Scenario.stakeholder
      (Fsa_grid.Scenario.demand_response ())
  in
  Alcotest.(check bool) "grid agrees" true c.Analysis.c_agree

let test_crosscheck_evita () =
  (* the full EVITA-scale model: 80 460 states *)
  let c =
    AoM.crosscheck ~meth:Analysis.Direct
      ~stakeholder:Fsa_vanet.Evita.stakeholder Fsa_vanet.Evita.model
  in
  Alcotest.(check bool) "EVITA agrees" true c.Analysis.c_agree

let test_abstract_method_on_canonical () =
  (* the abstraction-based dependence test also works on generated APAs *)
  let report = AoM.tool_analysis ~meth:Analysis.Abstract S.two_vehicles in
  Alcotest.(check int) "3 requirements" 3
    (List.length report.Analysis.t_requirements)

(* Random layered models: the canonical APA's minima/maxima coincide with
   the poset's minima/maxima. *)
let prop_min_max_random =
  QCheck2.Test.make ~name:"canonical APA minima/maxima = poset minima/maxima"
    ~count:30 Test_random.gen_sos (fun sos ->
      let lts = Lts.explore (AoM.compile sos) in
      let p = Sos.poset sos in
      let of_set s =
        List.sort Action.compare (Action.Set.elements s)
      in
      let of_vset s =
        List.sort Action.compare
          (Fsa_model.Action_graph.P.Eset.elements s)
      in
      of_set (Lts.minima lts)
      = of_vset (Fsa_model.Action_graph.P.minima p)
      && of_set (Lts.maxima lts)
         = of_vset (Fsa_model.Action_graph.P.maxima p))

(* Consistency (no spurious requirements): for every (input, output) pair
   NOT in chi, the behaviour contains a run reaching the output without
   the input — so demanding auth for it would be an over-approximation. *)
let prop_no_spurious =
  QCheck2.Test.make ~name:"pairs outside chi are realisable without the input"
    ~count:30 Test_random.gen_sos (fun sos ->
      let p = Sos.poset sos in
      let lts = Lts.explore (AoM.compile sos) in
      let minima = Fsa_model.Action_graph.P.Eset.elements
          (Fsa_model.Action_graph.P.minima p) in
      let maxima = Fsa_model.Action_graph.P.Eset.elements
          (Fsa_model.Action_graph.P.maxima p) in
      List.for_all
        (fun mx ->
          List.for_all
            (fun mn ->
              Action.equal mn mx
              || Fsa_model.Action_graph.P.lt mn mx p
              || Lts.reachable_without lts ~avoid:(Action.equal mn)
                   ~target:(Action.equal mx))
            minima)
        maxima)

(* Random layered models: both paths agree by construction. *)
let prop_crosscheck_random =
  QCheck2.Test.make ~name:"canonical APA crosschecks on random models"
    ~count:30 Test_random.gen_sos (fun sos ->
      (AoM.crosscheck ~meth:Analysis.Direct sos).Analysis.c_agree)

let suite =
  [ Alcotest.test_case "two vehicles: 13 states" `Quick test_two_vehicles_states;
    Alcotest.test_case "states = ideals" `Quick test_states_equal_ideals;
    Alcotest.test_case "crosscheck scenarios" `Quick test_crosscheck_scenarios;
    Alcotest.test_case "crosscheck grid" `Quick test_crosscheck_grid;
    Alcotest.test_case "crosscheck EVITA (80k states)" `Slow test_crosscheck_evita;
    Alcotest.test_case "abstract method" `Quick test_abstract_method_on_canonical;
    QCheck_alcotest.to_alcotest prop_min_max_random;
    QCheck_alcotest.to_alcotest prop_no_spurious;
    QCheck_alcotest.to_alcotest prop_crosscheck_random ]
