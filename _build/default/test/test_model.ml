(* Tests for Fsa_model: components, flows, SoS composition, boundaries. *)

module Term = Fsa_term.Term
module Agent = Fsa_term.Agent
module Action = Fsa_term.Action
module Component = Fsa_model.Component
module Flow = Fsa_model.Flow
module Sos = Fsa_model.Sos

let action = Alcotest.testable Action.pp Action.equal

let a name = Action.make name
let act actor name = Action.make ~actor:(Agent.unindexed actor) name

(* ------------------------------------------------------------------ *)
(* Flows                                                               *)
(* ------------------------------------------------------------------ *)

let test_flow_kinds () =
  let f = Flow.internal ~policy:"perf" (a "x") (a "y") in
  Alcotest.(check bool) "policy induced" true (Flow.is_policy_induced f);
  Alcotest.(check bool) "internal" false (Flow.is_external f);
  let e = Flow.external_ (a "x") (a "y") in
  Alcotest.(check bool) "external" true (Flow.is_external e);
  Alcotest.(check bool) "no policy" false (Flow.is_policy_induced e)

let test_flow_reindex () =
  let src = Action.make ~actor:(Agent.symbolic "CU" "i") "send" in
  let dst = Action.make ~actor:(Agent.symbolic "CU" "i") "rec" in
  let f = Flow.internal src dst in
  let g =
    Flow.reindex (function Agent.Symbolic "i" -> Agent.Concrete 3 | x -> x) f
  in
  Alcotest.check action "src reindexed"
    (Action.make ~actor:(Agent.concrete "CU" 3) "send")
    (Flow.src g)

(* ------------------------------------------------------------------ *)
(* Components                                                          *)
(* ------------------------------------------------------------------ *)

let test_component_validation () =
  (match
     Component.validate
       { Component.name = "C"; param = None; actions = [ a "x" ];
         flows = [ Flow.internal (a "x") (a "y") ]; ports = [] }
   with
  | Error (Component.Unknown_action _ :: _) -> ()
  | Ok () | Error _ -> Alcotest.fail "undeclared flow endpoint must be caught");
  (match
     Component.validate
       { Component.name = "C"; param = None; actions = [ a "x"; a "x" ];
         flows = []; ports = [] }
   with
  | Error errs ->
    Alcotest.(check bool) "duplicate caught" true
      (List.exists (function Component.Duplicate_action _ -> true | _ -> false) errs)
  | Ok () -> Alcotest.fail "duplicate action must be caught");
  match
    Component.validate
      { Component.name = "C"; param = None; actions = [ a "x"; a "y" ];
        flows = [ Flow.external_ (a "x") (a "y") ]; ports = [] }
  with
  | Error (Component.External_flow_in_component _ :: _) -> ()
  | Ok () | Error _ -> Alcotest.fail "external flow inside component must be caught"

let test_component_boundaries () =
  let c =
    Component.make "C"
      ~actions:[ a "in1"; a "mid"; a "out1" ]
      ~flows:[ Flow.internal (a "in1") (a "mid"); Flow.internal (a "mid") (a "out1") ]
  in
  Alcotest.(check (list action)) "inputs" [ a "in1" ] (Component.inputs c);
  Alcotest.(check (list action)) "outputs" [ a "out1" ] (Component.outputs c);
  Alcotest.(check (list action)) "boundary" [ a "in1"; a "out1" ]
    (Component.boundary_actions c)

let test_component_isolated_action () =
  let c = Component.make "C" ~actions:[ a "solo" ] ~flows:[] in
  Alcotest.(check (list action)) "isolated action is boundary" [ a "solo" ]
    (Component.boundary_actions c)

let test_instantiate () =
  let tpl = Fsa_vanet.Scenario.vehicle_template in
  let inst = Component.instantiate ~short_name:"V" tpl 5 in
  Alcotest.(check string) "name" "V_5" (Component.name inst);
  Alcotest.(check bool) "no longer a template" false (Component.is_template inst);
  Alcotest.(check bool) "actions concretised" true
    (List.exists
       (fun act ->
         Action.equal act (Fsa_vanet.Scenario.sense (Agent.Concrete 5)))
       (Component.actions inst));
  match Component.instantiate inst 6 with
  | _ -> Alcotest.fail "instantiating a non-template must fail"
  | exception Invalid_argument _ -> ()

let test_with_symbolic_index () =
  let tpl = Fsa_vanet.Scenario.vehicle_template in
  let w = Component.with_symbolic_index tpl "w" in
  Alcotest.(check bool) "still a template" true (Component.is_template w);
  Alcotest.(check bool) "actions renamed" true
    (List.exists
       (fun act ->
         Action.equal act (Fsa_vanet.Scenario.show (Agent.Symbolic "w")))
       (Component.actions w))

(* ------------------------------------------------------------------ *)
(* SoS                                                                 *)
(* ------------------------------------------------------------------ *)

let mk_producer () =
  Component.make "P" ~actions:[ act "P" "make"; act "P" "emit" ]
    ~flows:[ Flow.internal (act "P" "make") (act "P" "emit") ]

let mk_consumer () =
  Component.make "C" ~actions:[ act "C" "recv"; act "C" "use" ]
    ~flows:[ Flow.internal (act "C" "recv") (act "C" "use") ]

let test_sos_validation () =
  let p = mk_producer () and c = mk_consumer () in
  (* unknown endpoint *)
  (match
     Sos.validate
       { Sos.name = "bad"; components = [ p; c ];
         links = [ Flow.external_ (act "P" "emit") (act "X" "nowhere") ] }
   with
  | Error errs ->
    Alcotest.(check bool) "unknown endpoint" true
      (List.exists
         (function Sos.Unknown_component_action _ -> true | _ -> false)
         errs)
  | Ok () -> Alcotest.fail "unknown endpoint must be caught");
  (* link within one component *)
  (match
     Sos.validate
       { Sos.name = "bad2"; components = [ p; c ];
         links = [ Flow.external_ (act "P" "make") (act "P" "emit") ] }
   with
  | Error errs ->
    Alcotest.(check bool) "self link" true
      (List.exists
         (function Sos.Link_within_component _ -> true | _ -> false)
         errs)
  | Ok () -> Alcotest.fail "intra-component link must be caught");
  (* cyclic flow *)
  match
    Sos.validate
      { Sos.name = "bad3"; components = [ p; c ];
        links =
          [ Flow.external_ (act "P" "emit") (act "C" "recv");
            Flow.external_ (act "C" "use") (act "P" "make") ] }
  with
  | Error errs ->
    Alcotest.(check bool) "cycle" true
      (List.exists (function Sos.Cyclic_flow _ -> true | _ -> false) errs)
  | Ok () -> Alcotest.fail "cyclic flow must be caught"

let test_sos_links_forced_external () =
  let p = mk_producer () and c = mk_consumer () in
  let sos =
    Sos.make "s" ~components:[ p; c ]
      ~links:[ Flow.internal (act "P" "emit") (act "C" "recv") ]
  in
  Alcotest.(check bool) "links are external" true
    (List.for_all Flow.is_external (Sos.links sos))

let test_sos_boundary () =
  let p = mk_producer () and c = mk_consumer () in
  let sos =
    Sos.make "s" ~components:[ p; c ]
      ~links:[ Flow.external_ (act "P" "emit") (act "C" "recv") ]
  in
  let b = Sos.boundary sos in
  Alcotest.(check (list action)) "incoming" [ act "P" "make" ] b.Sos.incoming;
  Alcotest.(check (list action)) "outgoing" [ act "C" "use" ] b.Sos.outgoing;
  let s = Sos.stats sos in
  Alcotest.(check int) "component boundary actions" 4 s.Sos.nb_component_boundary;
  Alcotest.(check int) "system boundary actions" 2 s.Sos.nb_system_boundary

let test_sos_isomorphic_dedup () =
  let mk name i =
    let send = Action.make ~actor:(Agent.concrete "S" i) "send" in
    let recv = Action.make ~actor:(Agent.concrete "R" i) "recv" in
    Sos.make name
      ~components:
        [ Component.make (Printf.sprintf "S_%d" i) ~actions:[ send ] ~flows:[];
          Component.make (Printf.sprintf "R_%d" i) ~actions:[ recv ] ~flows:[] ]
      ~links:[ Flow.external_ send recv ]
  in
  let a = mk "a" 1 and b = mk "b" 2 in
  Alcotest.(check bool) "index-shifted instances isomorphic" true
    (Sos.isomorphic a b);
  Alcotest.(check int) "dedup keeps one" 1
    (List.length (Sos.dedup_isomorphic [ a; b ]));
  (* different shapes are kept *)
  let c = Fsa_vanet.Scenario.rsu_and_vehicle in
  Alcotest.(check int) "different shapes kept" 2
    (List.length (Sos.dedup_isomorphic [ a; c ]))

let test_scenario_stats () =
  let s = Sos.stats Fsa_vanet.Scenario.two_vehicles in
  Alcotest.(check int) "two vehicles: 6 actions" 6 s.Sos.nb_actions;
  Alcotest.(check int) "two vehicles: 3 minima" 3 s.Sos.nb_minimal;
  Alcotest.(check int) "two vehicles: 1 maximum" 1 s.Sos.nb_maximal

let test_dot_render () =
  let dot = Sos.dot Fsa_vanet.Scenario.two_vehicles in
  Alcotest.(check bool) "mentions show action" true
    (let sub = "show" in
     let rec contains i =
       i + String.length sub <= String.length dot
       && (String.sub dot i (String.length sub) = sub || contains (i + 1))
     in
     contains 0);
  Alcotest.(check bool) "external link dashed" true
    (let sub = "dashed" in
     let rec contains i =
       i + String.length sub <= String.length dot
       && (String.sub dot i (String.length sub) = sub || contains (i + 1))
     in
     contains 0)

let suite =
  [ Alcotest.test_case "flow kinds" `Quick test_flow_kinds;
    Alcotest.test_case "flow reindex" `Quick test_flow_reindex;
    Alcotest.test_case "component validation" `Quick test_component_validation;
    Alcotest.test_case "component boundaries" `Quick test_component_boundaries;
    Alcotest.test_case "isolated action" `Quick test_component_isolated_action;
    Alcotest.test_case "instantiate" `Quick test_instantiate;
    Alcotest.test_case "symbolic index" `Quick test_with_symbolic_index;
    Alcotest.test_case "sos validation" `Quick test_sos_validation;
    Alcotest.test_case "links forced external" `Quick test_sos_links_forced_external;
    Alcotest.test_case "sos boundary" `Quick test_sos_boundary;
    Alcotest.test_case "isomorphic dedup" `Quick test_sos_isomorphic_dedup;
    Alcotest.test_case "scenario stats" `Quick test_scenario_stats;
    Alcotest.test_case "dot render" `Quick test_dot_render ]
