(* Authenticity requirements, Definition 1 of the paper:

     auth(a, b, P): whenever an action b happens, it must be authentic for
     agent P that in any course of events that seem possible to him, a
     certain action a has happened.

   A requirement is the triple (cause, effect, stakeholder).  Requirement
   sets are kept as sorted, duplicate-free lists. *)

module Action = Fsa_term.Action
module Agent = Fsa_term.Agent

type t = { cause : Action.t; effect : Action.t; stakeholder : Agent.t }

let make ~cause ~effect ~stakeholder = { cause; effect; stakeholder }

let cause t = t.cause
let effect t = t.effect
let stakeholder t = t.stakeholder

let compare a b =
  let c = Action.compare a.cause b.cause in
  if c <> 0 then c
  else
    let c = Action.compare a.effect b.effect in
    if c <> 0 then c else Agent.compare a.stakeholder b.stakeholder

let equal a b = compare a b = 0

let pp ppf t =
  Fmt.pf ppf "auth(%a, %a, %a)" Action.pp t.cause Action.pp t.effect Agent.pp
    t.stakeholder

let to_string t = Fmt.str "%a" pp t

(* English rendering in the style of the paper's Sect. 4.3: "It must be
   authentic for <stakeholder> that <cause> has happened whenever
   <effect> happens." *)
let pp_prose ppf t =
  Fmt.pf ppf
    "It must be authentic for %a that action %a has happened whenever \
     action %a happens."
    Agent.pp t.stakeholder Action.pp t.cause Action.pp t.effect

(* Requirement sets. *)
let normalise reqs = List.sort_uniq compare reqs

let union a b = normalise (a @ b)

let diff a b = List.filter (fun r -> not (List.exists (equal r) b)) a

let subset a b = List.for_all (fun r -> List.exists (equal r) b) a

let equal_set a b = subset a b && subset b a

let pp_set ppf reqs =
  Fmt.pf ppf "@[<v>%a@]"
    Fmt.(list ~sep:cut (fun ppf r -> Fmt.pf ppf "- %a" pp r))
    (normalise reqs)

module Set = Stdlib.Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
