lib/requirements/classify.mli: Auth Fmt Fsa_model
