(* Differential property tests over randomly generated specifications:
   print/parse round trips preserve the AST, and elaboration of the
   round-tripped spec yields the same behaviour. *)

module Ast = Fsa_spec.Ast
module Parser = Fsa_spec.Parser
module Pretty = Fsa_spec.Pretty
module Elaborate = Fsa_spec.Elaborate
module Lts = Fsa_lts.Lts

(* Random token-passing components: a chain of [len] states; each rule
   moves the token one step, optionally double-checking a config cell via
   a non-consuming read and a guard. *)
let gen_component =
  let open QCheck2.Gen in
  let* len = int_range 1 4 in
  let* with_reads = bool in
  let* with_guards = bool in
  let items =
    Ast.I_state ("s0", [ Ast.S_app ("tok", []) ])
    :: List.concat
         (List.init len (fun i ->
              [ Ast.I_state (Printf.sprintf "s%d" (i + 1), []) ]))
    @ [ Ast.I_state ("cfg", [ Ast.S_app ("k", []) ]) ]
    @ List.init len (fun i ->
          let takes =
            { Ast.tk_read = false;
              tk_comp = Printf.sprintf "s%d" i;
              tk_pat = Ast.S_app ("_x", []);
              tk_loc = Fsa_spec.Loc.dummy }
            :: (if with_reads then
                  [ { Ast.tk_read = true; tk_comp = "cfg";
                      tk_pat = Ast.S_app ("_c", []);
                      tk_loc = Fsa_spec.Loc.dummy } ]
                else [])
          in
          let cond =
            if with_guards && with_reads then
              Ast.C_neq (Ast.S_app ("_x", []), Ast.S_app ("_c", []))
            else Ast.C_true
          in
          Ast.I_rule
            { Ast.ru_name = Printf.sprintf "step%d" i;
              ru_takes = takes;
              ru_cond = cond;
              ru_puts =
                [ { Ast.pt_comp = Printf.sprintf "s%d" (i + 1);
                    pt_term = Ast.S_app ("_x", []);
                    pt_loc = Fsa_spec.Loc.dummy } ];
              ru_loc = Fsa_spec.Loc.dummy })
  in
  return
    { Ast.cd_name = "C"; cd_items = items; cd_loc = Fsa_spec.Loc.dummy }

let gen_spec =
  let open QCheck2.Gen in
  let* cd = gen_component in
  let* nb_instances = int_range 1 2 in
  let instances =
    List.init nb_instances (fun i ->
        Ast.D_instance
          { Ast.in_name = Printf.sprintf "I%d" (i + 1);
            in_comp = "C";
            in_id = i + 1;
            in_overrides = [];
            in_loc = Fsa_spec.Loc.dummy })
  in
  return (Ast.D_component cd :: instances)

let prop_roundtrip_ast =
  QCheck2.Test.make ~name:"random specs round trip through the printer"
    ~count:100 gen_spec (fun spec ->
      Pretty.equal spec (Parser.parse_string (Pretty.to_string spec)))

let prop_roundtrip_behaviour =
  QCheck2.Test.make
    ~name:"round-tripped specs elaborate to the same behaviour" ~count:100
    gen_spec (fun spec ->
      let states ast =
        Lts.nb_states (Lts.explore (Elaborate.apa_of_spec ast))
      in
      states spec = states (Parser.parse_string (Pretty.to_string spec)))

let prop_elaboration_total =
  QCheck2.Test.make ~name:"random specs elaborate without exception"
    ~count:100 gen_spec (fun spec ->
      match Elaborate.apa_of_spec spec with
      | _ -> true
      | exception Fsa_spec.Loc.Error _ -> true)

let suite =
  [ QCheck_alcotest.to_alcotest prop_roundtrip_ast;
    QCheck_alcotest.to_alcotest prop_roundtrip_behaviour;
    QCheck_alcotest.to_alcotest prop_elaboration_total ]
