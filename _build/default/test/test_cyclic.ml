(* The paper's scenarios have acyclic reachability graphs (every action
   happens once).  The machinery must nevertheless behave sensibly on
   cyclic behaviours — repeated sensing, message loops — which arise as
   soon as sensors can fire repeatedly.  These tests pin down the
   semantics of the analysis primitives on cyclic graphs. *)

module Term = Fsa_term.Term
module Action = Fsa_term.Action
module Apa = Fsa_apa.Apa
module Lts = Fsa_lts.Lts
module Hom = Fsa_hom.Hom
module Pattern = Fsa_mc.Pattern
module Ctl = Fsa_mc.Ctl

let sym = Term.sym
let var = Term.var

(* A two-state ping-pong: the token moves between a and b forever. *)
let ping_pong () =
  Apa.make
    ~components:[ ("a", Term.Set.of_list [ sym "t" ]); ("b", Term.Set.empty) ]
    ~rules:
      [ Apa.rule "ping" ~takes:[ Apa.take "a" (var "x") ]
          ~puts:[ Apa.put "b" (var "x") ];
        Apa.rule "pong" ~takes:[ Apa.take "b" (var "x") ]
          ~puts:[ Apa.put "a" (var "x") ] ]
    "ping_pong"

(* A sensor that can fire repeatedly, a display that consumes readings:
   cyclic producer with an acyclic consumer tail. *)
let repeating_sensor () =
  Apa.make
    ~components:
      [ ("clock", Term.Set.of_list [ sym "tick" ]);
        ("buffer", Term.Set.empty); ("screen", Term.Set.empty) ]
    ~rules:
      [ (* the clock is read, not consumed: sense can fire forever *)
        Apa.rule "sense"
          ~takes:[ Apa.read "clock" (var "t") ]
          ~puts:[ Apa.put "buffer" (sym "reading") ];
        Apa.rule "display"
          ~takes:[ Apa.take "buffer" (var "r") ]
          ~puts:[ Apa.put "screen" (var "r") ] ]
    "repeating_sensor"

let ping = Action.make "ping"
let pong = Action.make "pong"

let test_ping_pong_graph () =
  let lts = Lts.explore (ping_pong ()) in
  Alcotest.(check int) "two states" 2 (Lts.nb_states lts);
  Alcotest.(check int) "two transitions" 2 (Lts.nb_transitions lts);
  Alcotest.(check int) "no dead state" 0 (List.length (Lts.deadlocks lts));
  (* minima are still the actions leaving the initial state *)
  Alcotest.(check (list string)) "minima" [ "ping" ]
    (List.map Action.to_string (Action.Set.elements (Lts.minima lts)));
  (* no dead states: the maxima notion degenerates to the empty set *)
  Alcotest.(check int) "no maxima" 0 (Action.Set.cardinal (Lts.maxima lts))

let test_ping_pong_dependence () =
  let lts = Lts.explore (ping_pong ()) in
  Alcotest.(check bool) "pong depends on ping" true
    (Lts.depends_on lts ~max_action:pong ~min_action:ping);
  Alcotest.(check bool) "ping does not depend on pong" false
    (Lts.depends_on lts ~max_action:ping ~min_action:pong);
  (* the abstraction-based test agrees on cyclic behaviours *)
  Alcotest.(check bool) "abstract agrees (dependent)" true
    (Hom.depends_abstract lts ~min_action:ping ~max_action:pong);
  Alcotest.(check bool) "abstract agrees (independent)" false
    (Hom.depends_abstract lts ~min_action:pong ~max_action:ping)

let test_ping_pong_minimal_automaton () =
  let lts = Lts.explore (ping_pong ()) in
  let dfa = Hom.minimal_automaton Hom.identity lts in
  (* the infinite (ping pong)* prefix language has a 2-state automaton *)
  Alcotest.(check int) "two states" 2 (Hom.A.Dfa.nb_states dfa);
  Alcotest.(check bool) "(ping pong)+ping accepted" true
    (Hom.A.Dfa.accepts dfa [ ping; pong; ping ]);
  Alcotest.(check bool) "pong-first rejected" false
    (Hom.A.Dfa.accepts dfa [ pong ])

let test_ping_pong_words_bounded () =
  let lts = Lts.explore (ping_pong ()) in
  let words = Lts.words ~max_len:4 lts in
  (* exactly one word per length: ping, ping pong, ... *)
  Alcotest.(check int) "five words up to length 4" 5 (List.length words)

let test_ping_pong_ctl () =
  let lts = Lts.explore (ping_pong ()) in
  Alcotest.(check bool) "AG EX true (no deadlock ever)" true
    (Ctl.On_lts.check lts (Ctl.AG (Ctl.EX Ctl.True)));
  Alcotest.(check bool) "AF deadlock fails on a loop" false
    (Ctl.On_lts.check lts (Ctl.AF Ctl.deadlock));
  Alcotest.(check bool) "AG (EF enabled ping)" true
    (Ctl.On_lts.check lts (Ctl.AG (Ctl.EF (Ctl.enabled_action ping))))

let test_ping_pong_patterns () =
  let lts = Lts.explore (ping_pong ()) in
  (* safety patterns operate on the prefix language *)
  Alcotest.(check bool) "ping precedes pong" true
    (Pattern.holds lts
       (Pattern.make
          (Pattern.Precedence (Pattern.action_is ping, Pattern.action_is pong))));
  Alcotest.(check bool) "pong does not precede ping" false
    (Pattern.holds lts
       (Pattern.make
          (Pattern.Precedence (Pattern.action_is pong, Pattern.action_is ping))));
  (* liveness patterns are vacuous without maximal traces: documented
     behaviour — the maximal-trace language is empty *)
  Alcotest.(check bool) "existence vacuous without deadlocks" true
    (Pattern.holds lts (Pattern.make (Pattern.Existence (Pattern.action_is ping))))

let test_ping_pong_simplicity () =
  let lts = Lts.explore (ping_pong ()) in
  Alcotest.(check bool) "identity simple on a cyclic behaviour" true
    (Hom.is_simple Hom.identity lts);
  (* hiding pong keeps ping* reachable from every representative *)
  Alcotest.(check bool) "hiding pong is simple" true
    (Hom.is_simple (Hom.preserve [ ping ]) lts)

let test_repeating_sensor () =
  let apa = repeating_sensor () in
  (* unbounded buffer growth!  the screen set also grows, but [reading]
     is a single term, so the sets saturate: the state space is finite *)
  let lts = Lts.explore apa in
  Alcotest.(check bool) "saturating sets keep the space finite" true
    (Lts.nb_states lts <= 4);
  Alcotest.(check bool) "display depends on sensing" true
    (Lts.depends_on lts ~max_action:(Action.make "display")
       ~min_action:(Action.make "sense"))

let test_explore_bound_on_infinite () =
  (* a genuinely unbounded counter must hit the exploration bound *)
  let counter =
    Apa.make
      ~components:[ ("c", Term.Set.of_list [ Term.int 0 ]) ]
      ~rules:
        [ Apa.rule "inc"
            ~takes:[ Apa.take "c" (var "n") ]
            ~puts:[ Apa.put "c" (Term.app "s" [ var "n" ]) ] ]
      "counter"
  in
  match Lts.explore ~max_states:50 counter with
  | _ -> Alcotest.fail "unbounded state space must hit the bound"
  | exception Lts.State_space_too_large 50 -> ()

let suite =
  [ Alcotest.test_case "ping-pong graph" `Quick test_ping_pong_graph;
    Alcotest.test_case "ping-pong dependence" `Quick test_ping_pong_dependence;
    Alcotest.test_case "ping-pong minimal automaton" `Quick test_ping_pong_minimal_automaton;
    Alcotest.test_case "ping-pong bounded words" `Quick test_ping_pong_words_bounded;
    Alcotest.test_case "ping-pong CTL" `Quick test_ping_pong_ctl;
    Alcotest.test_case "ping-pong patterns" `Quick test_ping_pong_patterns;
    Alcotest.test_case "ping-pong simplicity" `Quick test_ping_pong_simplicity;
    Alcotest.test_case "repeating sensor saturates" `Quick test_repeating_sensor;
    Alcotest.test_case "unbounded space hits the bound" `Quick test_explore_bound_on_infinite ]
