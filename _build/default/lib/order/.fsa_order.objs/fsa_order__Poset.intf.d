lib/order/poset.mli: Fmt Fsa_graph Map Set
