(* Source locations for error reporting in the specification language.

   A location is a span: it starts at [line]/[col] (both 1-based) and
   ends at [end_line]/[end_col] (inclusive).  Point locations have
   [end_line = line] and [end_col = col]; diagnostics use the full span
   to underline the offending token rather than a single character. *)

type t = { line : int; col : int; end_line : int; end_col : int }

let dummy = { line = 0; col = 0; end_line = 0; end_col = 0 }

let point ~line ~col = { line; col; end_line = line; end_col = col }

let span ~line ~col ~end_line ~end_col = { line; col; end_line; end_col }

let is_dummy l = l.line = 0

(* The smallest span covering both locations (dummies are absorbing). *)
let merge a b =
  if is_dummy a then b
  else if is_dummy b then a
  else
    let start =
      if (a.line, a.col) <= (b.line, b.col) then a else b
    and stop =
      if (a.end_line, a.end_col) >= (b.end_line, b.end_col) then a else b
    in
    { line = start.line; col = start.col;
      end_line = stop.end_line; end_col = stop.end_col }

let compare a b =
  Stdlib.compare (a.line, a.col, a.end_line, a.end_col)
    (b.line, b.col, b.end_line, b.end_col)

let pp ppf { line; col; end_line; end_col } =
  if end_line > line then Fmt.pf ppf "lines %d-%d" line end_line
  else if end_col > col then Fmt.pf ppf "line %d, columns %d-%d" line col end_col
  else Fmt.pf ppf "line %d, column %d" line col

exception Error of t * string

let error loc fmt = Fmt.kstr (fun msg -> raise (Error (loc, msg))) fmt

let pp_exn ppf (loc, msg) = Fmt.pf ppf "%a: %s" pp loc msg
