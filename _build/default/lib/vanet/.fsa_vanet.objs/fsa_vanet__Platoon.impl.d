lib/vanet/platoon.ml: Fsa_apa Fsa_model Fsa_term List Printf
