(** Engineering-grade requirement reports: stable identifiers,
    provenance, a two-way traceability matrix, coverage and
    verification tagging over a derived requirement set.

    The paper's output — the [auth(a, b, P)] sets of Sect. 4 — is an
    unstructured list.  This layer turns it into something a downstream
    engineering pipeline can consume (after the SF→SR traceability
    matrices of ISO 26262-style processes and the verification-method
    assignment of Lian et al.):

    - every requirement gets a stable identifier [SR-NNNN], assigned by
      canonical order of the normalised set, plus a content digest so
      the identity survives re-derivation, spec reformatting and
      declaration permutation (the requirement rendering is
      location-free, like {!Fsa_spec.Elaborate.digest_of_spec});
    - provenance ties each requirement back to its (min, max)
      dependence pair, the elaborated instances and use-case actions
      involved, and (tool path) the pair's minimal automaton;
    - classification folds in {!Fsa_requirements.Classify} (mapping
      tool-path requirements onto declared functional models by the
      instance/label correspondence of {!Fsa_core.Analysis.crosscheck})
      and {!Fsa_requirements.Prioritise} scores;
    - a verification method is assigned per requirement by a
      deterministic heuristic (see {!verification});
    - emission is deterministic JSON ({!Fsa_store.Json}: fixed member
      order, no wall-clock values) and Markdown — two runs over the
      same model produce byte-identical reports. *)

module Action = Fsa_term.Action
module Auth = Fsa_requirements.Auth
module Classify = Fsa_requirements.Classify

val schema : string
(** The JSON schema tag, ["fsa-report/1"]. *)

(** {1 Verification methods}

    After Lian et al.: how the requirement should be checked against an
    implementation.  Assigned deterministically from classification and
    requirement shape alone (never from run statistics, so the tag is
    invariant under engine and reduction settings):

    - policy-induced requirements go to {e analysis} (the policy
      argument itself is the evidence; there is no safety path to
      exercise);
    - safety-critical requirements whose cause and effect live in
      different elaborated instances go to {e test} (they cross a
      system boundary and need an integration test);
    - safety-critical requirements inside one instance go to
      {e demonstration} (observable on the component in isolation);
    - requirements whose endpoints cannot be attributed to instances
      fall back to {e inspection}. *)

type verification = Test | Analysis | Inspection | Demonstration

val verification_to_string : verification -> string
val pp_verification : verification Fmt.t

(** {1 Provenance} *)

type origin = {
  og_rule : string;  (** full APA rule name, e.g. [V1_send] *)
  og_instance : string option;  (** elaborated instance, e.g. [V1] *)
  og_component : string option;  (** declaring component, e.g. [Vehicle] *)
  og_action : string option;  (** use-case action label, e.g. [send] *)
}
(** Where a tool-path action comes from in the specification. *)

val origins_of_skeleton : Fsa_spec.Elaborate.skeleton -> origin list
(** Exact origins from the located APA skeleton. *)

val origins_of_rules : string list -> origin list
(** Heuristic fallback for programmatic models without a spec: rule
    names are split at the first ['_'] into instance and use-case
    action; the declaring component is unknown. *)

type endpoint = {
  ep_action : string;
  ep_instance : string option;
  ep_component : string option;
  ep_use_case : string option;
}

type automaton = { am_states : int; am_transitions : int }
(** Shape of the pair's minimal automaton (Figs. 10/11 of the paper). *)

type item = {
  it_id : string;  (** [SR-NNNN], by canonical order *)
  it_digest : string;  (** content digest of the canonical rendering *)
  it_requirement : Auth.t;
  it_class : Classify.class_;
  it_score : int;  (** {!Fsa_requirements.Prioritise} score; [0] when no
                       functional model maps the requirement *)
  it_rank : int;  (** 1-based position in the priority ordering *)
  it_verification : verification;
  it_cause : endpoint;
  it_effect : endpoint;
  it_automaton : automaton option;  (** tool path only *)
}

(** {1 Coverage} *)

type pair_coverage = {
  pc_total : int;  (** (min, max) pairs of the dependence matrix *)
  pc_tested : int;  (** pairs whose dependence was actually tested *)
  pc_pruned : int;  (** pairs skipped by static pruning (any kind) *)
  pc_pruned_flow : int;
      (** the subset of [pc_pruned] attributed ["static-flow"]: skipped
          by {!Fsa_flow.Flow} taint reachability ([--prune-flow]) and
          not already caught by the structural pruner *)
  pc_dependent : int;  (** pairs that derived a requirement *)
  pc_independent : int;  (** [pc_total - pc_dependent] *)
}

type coverage = {
  cv_actions_total : int;
  cv_actions_covered : int;  (** appear as cause or effect of some item *)
  cv_actions_uncovered : string list;  (** sorted; [covered + uncovered
                                           = total] always holds *)
  cv_pairs : pair_coverage;
}

(** {1 Settings} *)

type settings = {
  sg_path : string;  (** ["tool"] or ["manual"] *)
  sg_method : string;  (** ["abstract"], ["direct"] or ["manual"] *)
  sg_engine : string;  (** ["shared-v1"], ["per-pair"], ["direct"], ["manual"] *)
  sg_reduce : string;  (** ["none"], ["sym"], ["por"] or ["sym+por"] *)
  sg_prune : string;
      (** ["none"], ["static"], ["flow"] or ["static+flow"] — which
          sound pruners skipped dependence tests *)
  sg_max_states : int;
}
(** What produced the report.  Settings (and the other run-dependent
    blocks: pair coverage, graph shape, per-item automata) are excluded
    by [to_* ~body_only:true], leaving exactly the content that is
    invariant across engine and reduction choices. *)

type t = {
  r_digest : string;  (** canonical model digest *)
  r_settings : settings;
  r_items : item list;  (** canonical (identifier) order *)
  r_actions : string list;  (** the action universe, sorted *)
  r_instances : string list;  (** sorted *)
  r_by_action : (string * string list) list;
      (** action → requirement ids, one row per universe action *)
  r_by_instance : (string * string list) list;
  r_coverage : coverage;
  r_graph : (int * int) option;  (** (states, transitions), tool path *)
}

(** {1 Builders} *)

val of_tool :
  ?origins:origin list ->
  ?soses:Fsa_model.Sos.t list ->
  ?alphabet:string list ->
  digest:string ->
  settings:settings ->
  Fsa_core.Analysis.tool_report ->
  t
(** Build a report from a tool-path run.  [origins] (default: the
    heuristic {!origins_of_rules} over the alphabet) attributes actions
    to instances/components; [soses] are the spec's declared functional
    models, used to classify and score requirements through the
    instance/label correspondence — requirements that do not map stay
    [Safety_critical] (an APA model carries no policy annotations, so
    the Sect. 4.4 criterion degenerates to safety-critical); [alphabet]
    (default: the explored graph's alphabet) is the action universe of
    the coverage summary — pass {!Fsa_apa.Apa.rule_names} to keep it
    independent of ample-set reduction.  Per-item minimal automata are
    projected from the run's own shared engine
    ({!Fsa_core.Analysis.tool_report.t_engine}) when the analysis built
    one, else from one fresh {!Fsa_hom.Hom.Shared} build over the union
    alphabet of the requirement endpoints. *)

val of_manual :
  digest:string -> Fsa_model.Sos.t -> Fsa_core.Analysis.manual_report -> t
(** Build a report from a manual-path run over one functional model.
    The manual path enumerates χ directly, so the pair coverage is
    degenerate ([tested = dependent = total], nothing pruned). *)

(** {1 Emission} *)

val to_json : ?body_only:bool -> t -> Fsa_store.Json.t
(** Deterministic JSON ({!schema}).  [body_only] (default [false])
    omits the run-dependent blocks — settings, pair coverage, graph
    shape, per-item automata — leaving the engine/reduction-invariant
    body (what the golden tests compare across configurations). *)

val to_json_string : ?body_only:bool -> t -> string

val to_markdown : ?body_only:bool -> t -> string
(** Deterministic Markdown rendering of the same content. *)
