(* Enumeration of system-of-systems instances (Sect. 4.2): "all
   structurally different combinations of component instances shall be
   considered.  Isomorphic combinations can be neglected."

   Given component templates and connection rules (which output action
   labels may feed which input action labels), we enumerate the connected,
   loop-free SoS instances of a given size and discard isomorphic
   duplicates.  The search is exhaustive and exponential in the number of
   candidate links — intended for the small instance sizes at which
   architectural analysis happens (the paper works with 2-4 components). *)

module Action = Fsa_term.Action

type template = {
  t_name : string;  (* template identifier, e.g. "warner" *)
  t_build : int -> Component.t;  (* instantiate with a concrete index *)
  t_outputs : string list;  (* labels of actions that may feed links *)
  t_inputs : string list;  (* labels of actions that may receive links *)
}

let template ~name ~build ~outputs ~inputs =
  { t_name = name; t_build = build; t_outputs = outputs; t_inputs = inputs }

(* Multisets of template choices of a given size (combinations with
   repetition, order-insensitive to limit duplicate work). *)
let rec multisets templates size =
  if size = 0 then [ [] ]
  else
    match templates with
    | [] -> []
    | t :: rest ->
      List.map (fun m -> t :: m) (multisets templates (size - 1))
      @ multisets rest size
      |> List.filter (fun m -> List.length m = size)

let action_with_label component label =
  List.find_opt
    (fun a -> String.equal (Action.label a) label)
    (Component.actions component)

(* All candidate links between two distinct instantiated components. *)
let candidate_links connectors components =
  List.concat_map
    (fun (i, (ti, ci)) ->
      List.concat_map
        (fun (j, (tj, cj)) ->
          if i = j then []
          else
            List.filter_map
              (fun (out_label, in_label) ->
                if
                  List.mem out_label ti.t_outputs
                  && List.mem in_label tj.t_inputs
                then
                  match
                    (action_with_label ci out_label, action_with_label cj in_label)
                  with
                  | Some a, Some b -> Some (Flow.external_ a b)
                  | _, _ -> None
                else None)
              connectors)
        components)
    components

(* Weak connectivity of an instance: every component reachable from the
   first, ignoring edge directions. *)
let connected sos =
  match Sos.components sos with
  | [] -> true
  | first :: _ as comps ->
    let g = Sos.dependency_graph sos in
    let undirected = Action_graph.G.union g (Action_graph.G.reverse g) in
    let owner a =
      Option.map Component.name (Sos.owner_of comps a)
    in
    let reached =
      match Component.actions first with
      | [] -> []
      | a :: _ ->
        Action_graph.G.Vset.elements (Action_graph.G.reachable a undirected)
    in
    let reached_components =
      List.filter_map owner reached |> List.sort_uniq String.compare
    in
    (* intra-component actions are connected through internal flows; a
       component with no flows at all still counts through any action *)
    List.for_all
      (fun c ->
        List.mem (Component.name c) reached_components
        || List.exists
             (fun a -> List.exists (Action.equal a) (Component.actions c))
             reached)
      comps

let rec subsets = function
  | [] -> [ [] ]
  | x :: rest ->
    let without = subsets rest in
    List.map (fun s -> x :: s) without @ without

(* All connected, loop-free instances of exactly [size] components.
   [max_candidates] caps the link-subset explosion. *)
let compositions ?(max_candidates = 16) ~templates ~connectors ~size () =
  if size < 1 then invalid_arg "Enumerate.compositions: size must be positive";
  List.concat_map
    (fun multiset ->
      let components =
        List.mapi (fun i t -> (i, (t, t.t_build (i + 1)))) multiset
      in
      let candidates = candidate_links connectors components in
      if List.length candidates > max_candidates then
        invalid_arg
          (Printf.sprintf
             "Enumerate.compositions: %d candidate links exceed the bound %d"
             (List.length candidates) max_candidates);
      List.filter_map
        (fun links ->
          if links = [] && size > 1 then None
          else
            let sos =
              { Sos.name = "enumerated";
                components = List.map (fun (_, (_, c)) -> c) components;
                links }
            in
            match Sos.validate sos with
            | Ok () when connected sos -> Some sos
            | Ok () | Error _ -> None)
        (subsets candidates))
    (multisets templates size)
  |> Sos.dedup_isomorphic

(* Convenience: all instances from size 1 to [max_size]. *)
let up_to ?max_candidates ~templates ~connectors ~max_size () =
  List.concat_map
    (fun size -> compositions ?max_candidates ~templates ~connectors ~size ())
    (List.init max_size (fun i -> i + 1))
  |> Sos.dedup_isomorphic
