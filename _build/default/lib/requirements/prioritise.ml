(* Requirement categorisation and prioritisation — the step following
   elicitation in the paper's process ("a requirements categorisation and
   prioritisation process can evaluate them according to a maximum
   acceptable risk strategy", Sect. 4.3).

   The score of a requirement is an explicit product of three documented
   factors; each has a caller-overridable assignment and a conservative
   default:

   - impact: how bad a violation is — driven by the classification
     (safety-critical above policy-induced) and a per-stakeholder weight;
   - exposure: how attackable the dependency is — the number of external
     (inter-system) flows on cause-to-effect paths, the channels an
     outside attacker can reach;
   - reach: how much of the system is involved — the length of the
     shortest dependency path, as a proxy for the attack surface that
     must be trusted end to end.

   The output is an ordered work list with the factor values recorded, so
   a review can challenge each number rather than a black-box rank. *)

module Action = Fsa_term.Action
module Agent = Fsa_term.Agent
module AG = Fsa_model.Action_graph
module Sos = Fsa_model.Sos
module Flow = Fsa_model.Flow

type weights = {
  class_weight : Classify.class_ -> int;
  stakeholder_weight : Agent.t -> int;
}

let default_weights =
  { class_weight =
      (function
        | Classify.Safety_critical -> 10
        | Classify.Policy_induced _ -> 3);
    stakeholder_weight = (fun _ -> 1) }

type scored = {
  s_requirement : Auth.t;
  s_class : Classify.class_;
  s_impact : int;
  s_exposure : int;  (* external flows on cause-to-effect paths *)
  s_reach : int;  (* shortest dependency path length (in flows) *)
  s_score : int;
}

(* External flows on some cause-to-effect path. *)
let exposure sos cause effect =
  let g = Sos.dependency_graph sos in
  if not (AG.G.mem_vertex cause g && AG.G.mem_vertex effect g) then 0
  else begin
    let from_cause = AG.G.reachable cause g in
    let to_effect = AG.G.co_reachable effect g in
    Sos.all_flows sos
    |> List.filter (fun f ->
           Flow.is_external f
           && AG.G.Vset.mem (Flow.src f) from_cause
           && AG.G.Vset.mem (Flow.dst f) to_effect)
    |> List.length
  end

(* Length (in flows) of the shortest dependency path. *)
let reach sos cause effect =
  let g = Sos.dependency_graph sos in
  let module Vset = AG.G.Vset in
  let rec bfs depth frontier visited =
    if Vset.is_empty frontier then 0
    else if Vset.mem effect frontier then depth
    else
      let next =
        Vset.fold
          (fun v acc -> Vset.union acc (AG.G.succ v g))
          frontier Vset.empty
      in
      let next = Vset.diff next visited in
      bfs (depth + 1) next (Vset.union visited next)
  in
  if AG.G.mem_vertex cause g then
    bfs 0 (Vset.singleton cause) (Vset.singleton cause)
  else 0

let score ?(weights = default_weights) sos req =
  let cls = Classify.classify sos req in
  let impact =
    weights.class_weight cls
    * weights.stakeholder_weight (Auth.stakeholder req)
  in
  let s_exposure = exposure sos (Auth.cause req) (Auth.effect req) in
  let s_reach = reach sos (Auth.cause req) (Auth.effect req) in
  { s_requirement = req;
    s_class = cls;
    s_impact = impact;
    s_exposure;
    s_reach;
    s_score = impact * (1 + s_exposure) * (1 + s_reach) }

(* The prioritised work list: categorisation first (higher class weight
   dominates, following the paper's "categorisation and prioritisation"
   order), then the risk score within a category; ties break on the
   requirement order for determinism. *)
let rank ?(weights = default_weights) sos reqs =
  List.map (score ~weights sos) reqs
  |> List.sort (fun a b ->
         let c =
           Int.compare (weights.class_weight b.s_class)
             (weights.class_weight a.s_class)
         in
         if c <> 0 then c
         else
           let c = Int.compare b.s_score a.s_score in
           if c <> 0 then c else Auth.compare a.s_requirement b.s_requirement)

let pp_scored ppf s =
  Fmt.pf ppf "%4d  %a  [%a; impact %d, exposure %d, reach %d]" s.s_score
    Auth.pp s.s_requirement Classify.pp_class s.s_class s.s_impact s.s_exposure
    s.s_reach

let pp_ranking ppf ranking =
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut pp_scored) ranking
