(* Functional component models (Sect. 4.1).  A component model describes
   one system component's behaviour: its atomic actions and the internal
   functional flow among them, together with the declared interaction
   points.  A component model is a *template* when its actions carry a
   symbolic instance index (e.g. vehicle [i]); instantiation replaces the
   symbolic index by a concrete one. *)

module Action = Fsa_term.Action
module Agent = Fsa_term.Agent

type port = {
  port_action : Action.t;
  direction : [ `In | `Out ];
      (* [`In]: the action is triggered by occurrences outside the
         component; [`Out]: the action involves changes outside. *)
}

type t = {
  name : string;  (* e.g. "Vehicle" or "V_1" once instantiated *)
  param : string option;  (* symbolic instance index of a template *)
  actions : Action.t list;
  flows : Flow.t list;  (* internal flows only *)
  ports : port list;  (* declared interactions with the environment *)
}

type error =
  | Unknown_action of string * Action.t  (* context, offending action *)
  | External_flow_in_component of Flow.t
  | Duplicate_action of Action.t

let pp_error ppf = function
  | Unknown_action (ctx, a) ->
    Fmt.pf ppf "%s mentions undeclared action %a" ctx Action.pp a
  | External_flow_in_component f ->
    Fmt.pf ppf "component flow %a is marked external" Flow.pp f
  | Duplicate_action a -> Fmt.pf ppf "action %a declared twice" Action.pp a

let validate t =
  let declared a = List.exists (Action.equal a) t.actions in
  let errors = ref [] in
  let err e = errors := e :: !errors in
  let rec dup_check = function
    | [] -> ()
    | a :: rest ->
      if List.exists (Action.equal a) rest then err (Duplicate_action a);
      dup_check rest
  in
  dup_check t.actions;
  List.iter
    (fun f ->
      if Flow.is_external f then err (External_flow_in_component f);
      if not (declared (Flow.src f)) then err (Unknown_action ("flow", Flow.src f));
      if not (declared (Flow.dst f)) then err (Unknown_action ("flow", Flow.dst f)))
    t.flows;
  List.iter
    (fun p ->
      if not (declared p.port_action) then
        err (Unknown_action ("port", p.port_action)))
    t.ports;
  match List.rev !errors with [] -> Ok () | es -> Error es

let make ?param ?(ports = []) ~actions ~flows name =
  let t = { name; param; actions; flows; ports } in
  match validate t with
  | Ok () -> t
  | Error (e :: _) -> invalid_arg (Fmt.str "Component.make %s: %a" name pp_error e)
  | Error [] -> assert false

let name t = t.name
let actions t = t.actions
let flows t = t.flows
let ports t = t.ports
let is_template t = Option.is_some t.param

(* Component boundary actions: the actions that form the interaction of the
   component's internals with its outside world — sources and sinks of the
   internal flow graph, plus declared ports. *)
let boundary_actions t =
  let g = Action_graph.of_flows t.flows in
  let from_graph =
    List.filter
      (fun a ->
        (not (Action_graph.G.mem_vertex a g))
        || Action_graph.G.in_degree a g = 0
        || Action_graph.G.out_degree a g = 0)
      t.actions
  in
  let from_ports = List.map (fun p -> p.port_action) t.ports in
  List.sort_uniq Action.compare (from_graph @ from_ports)

let inputs t =
  let g = Action_graph.of_flows t.flows in
  List.filter
    (fun a ->
      (not (Action_graph.G.mem_vertex a g)) || Action_graph.G.in_degree a g = 0)
    t.actions

let outputs t =
  let g = Action_graph.of_flows t.flows in
  List.filter
    (fun a ->
      (not (Action_graph.G.mem_vertex a g)) || Action_graph.G.out_degree a g = 0)
    t.actions

(* Instantiate a template: replace the symbolic index [param] by the
   concrete index [i] in every actor, and name the instance [name_i]
   (e.g. Vehicle template -> "V_1" when [short_name] is ["V"]). *)
let instantiate ?short_name t i =
  match t.param with
  | None -> invalid_arg (Fmt.str "Component.instantiate: %s is not a template" t.name)
  | Some p ->
    let subst = function
      | Agent.Symbolic x when String.equal x p -> Agent.Concrete i
      | idx -> idx
    in
    let base = match short_name with Some s -> s | None -> t.name in
    { name = Printf.sprintf "%s_%d" base i;
      param = None;
      actions = List.map (Action.reindex subst) t.actions;
      flows = List.map (Flow.reindex subst) t.flows;
      ports =
        List.map
          (fun pt -> { pt with port_action = Action.reindex subst pt.port_action })
          t.ports }

(* Rename the symbolic index of a template (alpha-conversion), used when
   composing several differently-named instances of one template
   symbolically, e.g. vehicles [1] and [w]. *)
let with_symbolic_index t x =
  match t.param with
  | None -> invalid_arg (Fmt.str "Component.with_symbolic_index: %s is not a template" t.name)
  | Some p ->
    let subst = function
      | Agent.Symbolic y when String.equal y p -> Agent.Symbolic x
      | idx -> idx
    in
    { t with
      param = Some x;
      actions = List.map (Action.reindex subst) t.actions;
      flows = List.map (Flow.reindex subst) t.flows;
      ports =
        List.map
          (fun pt -> { pt with port_action = Action.reindex subst pt.port_action })
          t.ports }

let pp ppf t =
  Fmt.pf ppf "@[<v2>component %s%s:@,actions: @[%a@]@,flows:@,%a@]" t.name
    (match t.param with Some p -> "(" ^ p ^ ")" | None -> "")
    Fmt.(list ~sep:comma Action.pp)
    t.actions
    Fmt.(list ~sep:cut Flow.pp)
    t.flows
