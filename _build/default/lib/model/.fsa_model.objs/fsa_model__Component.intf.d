lib/model/component.mli: Flow Fmt Fsa_term
