lib/lts/lts.ml: Array Fmt Fsa_apa Fsa_graph Fsa_term Hashtbl List Logs Printf Queue Stdlib
