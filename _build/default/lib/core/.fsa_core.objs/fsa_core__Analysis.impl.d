lib/core/analysis.ml: Fmt Fsa_hom Fsa_lts Fsa_model Fsa_requirements Fsa_term List
