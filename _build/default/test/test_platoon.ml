(* Tests for the platooning scenario: requirement families on the manual
   path, cyclic behaviour on the tool path. *)

module Action = Fsa_term.Action
module Agent = Fsa_term.Agent
module Auth = Fsa_requirements.Auth
module Generalise = Fsa_requirements.Generalise
module Derive = Fsa_requirements.Derive
module Lts = Fsa_lts.Lts
module Hom = Fsa_hom.Hom
module Pattern = Fsa_mc.Pattern
module Ctl = Fsa_mc.Ctl
module P = Fsa_vanet.Platoon

(* ------------------------------------------------------------------ *)
(* Manual path                                                         *)
(* ------------------------------------------------------------------ *)

let test_round_requirements () =
  let reqs = Derive.of_sos ~stakeholder:P.stakeholder (P.round ~followers:2 ()) in
  (* per follower: accel, gap -> actuate; 2 causes x 2 followers *)
  Alcotest.(check int) "four requirements" 4 (List.length reqs);
  Alcotest.(check bool) "leader's sensing reaches every follower" true
    (List.for_all
       (fun i ->
         List.exists
           (fun r ->
             Action.equal (Auth.cause r) P.sense_accel
             && Action.equal (Auth.effect r) (P.actuate i))
           reqs)
       [ 1; 2 ])

let test_family_generalises () =
  (* platoons of 2..5 followers: the union folds into quantified form *)
  let union =
    Derive.of_instances ~stakeholder:P.stakeholder
      (List.map (fun n -> P.round ~followers:n ()) [ 2; 3; 4; 5 ])
  in
  let gens = Generalise.generalise ~domain_of:P.follower_domain union in
  (* two quantified families: accel->actuate_x and gap_x->actuate_x *)
  Alcotest.(check int) "two quantified families" 2
    (List.length
       (List.filter
          (function Generalise.Forall _ -> true | Generalise.Concrete _ -> false)
          gens))

let test_schema_uniform () =
  Alcotest.(check bool) "requirement count is 2n" true
    (List.for_all
       (fun n ->
         List.length
           (Derive.of_sos ~stakeholder:P.stakeholder (P.round ~followers:n ()))
         = 2 * n)
       [ 1; 2; 3; 4; 5 ])

(* ------------------------------------------------------------------ *)
(* Tool path: cyclic behaviour                                         *)
(* ------------------------------------------------------------------ *)

let lts2 = lazy (Lts.explore (P.apa ~followers:2 ()))

let test_cyclic_behaviour () =
  let lts = Lazy.force lts2 in
  Alcotest.(check int) "no dead states" 0 (List.length (Lts.deadlocks lts));
  Alcotest.(check (option int)) "no finite run count" None
    (Lts.count_complete_runs lts);
  (* maxima degenerate to the empty set: the paper's reading needs
     acyclic behaviours *)
  Alcotest.(check int) "maxima empty" 0 (Action.Set.cardinal (Lts.maxima lts));
  (* saturating reads keep the space small *)
  Alcotest.(check bool) "small saturated space" true (Lts.nb_states lts <= 64)

let test_dependence_survives_cycles () =
  let lts = Lazy.force lts2 in
  (* the control command depends on the beacon, the reception and the
     follower's own gap — exactly the manual model's chi pairs *)
  List.iter
    (fun i ->
      Alcotest.(check bool) "ctrl <- beacon" true
        (Lts.depends_on lts ~max_action:(P.f_ctrl i) ~min_action:P.l_beacon);
      Alcotest.(check bool) "ctrl <- gap" true
        (Lts.depends_on lts ~max_action:(P.f_ctrl i) ~min_action:(P.f_gap i));
      Alcotest.(check bool) "ctrl independent of the other follower" false
        (Lts.depends_on lts ~max_action:(P.f_ctrl i)
           ~min_action:(P.f_gap (3 - i)));
      (* the abstraction-based test agrees on the cyclic behaviour *)
      Alcotest.(check bool) "abstract agrees" true
        (Hom.depends_abstract lts ~min_action:P.l_beacon
           ~max_action:(P.f_ctrl i)))
    [ 1; 2 ]

let test_patterns_on_cycles () =
  let lts = Lazy.force lts2 in
  Alcotest.(check bool) "beacon precedes control" true
    (Pattern.holds lts
       (Pattern.make
          (Pattern.Precedence
             (Pattern.action_is P.l_beacon, Pattern.action_is (P.f_ctrl 1)))));
  Alcotest.(check bool) "control never precedes its gap measurement" false
    (Pattern.holds lts
       (Pattern.make
          (Pattern.Precedence
             (Pattern.action_is (P.f_ctrl 1), Pattern.action_is (P.f_gap 1)))))

let test_ctl_liveness_on_cycles () =
  let lts = Lazy.force lts2 in
  (* the beacon is always eventually re-enabled: AG EF enabled(beacon) *)
  Alcotest.(check bool) "beacon perpetually available" true
    (Ctl.On_lts.check lts (Ctl.AG (Ctl.EF (Ctl.enabled_action P.l_beacon))));
  (* control becomes reachable from everywhere *)
  Alcotest.(check bool) "control perpetually reachable" true
    (Ctl.On_lts.check lts (Ctl.AG (Ctl.EF (Ctl.enabled_action (P.f_ctrl 1)))));
  (* but termination never happens *)
  Alcotest.(check bool) "never deadlocks" false
    (Ctl.On_lts.check lts (Ctl.EF Ctl.deadlock))

let test_scaling_followers () =
  (* one more follower multiplies the saturated space predictably *)
  let s n = Lts.nb_states (Lts.explore (P.apa ~followers:n ())) in
  Alcotest.(check bool) "monotone growth" true (s 1 < s 2 && s 2 < s 3)

let suite =
  [ Alcotest.test_case "round requirements" `Quick test_round_requirements;
    Alcotest.test_case "family generalises" `Quick test_family_generalises;
    Alcotest.test_case "schema uniform (2n)" `Quick test_schema_uniform;
    Alcotest.test_case "cyclic behaviour" `Quick test_cyclic_behaviour;
    Alcotest.test_case "dependence survives cycles" `Quick test_dependence_survives_cycles;
    Alcotest.test_case "patterns on cycles" `Quick test_patterns_on_cycles;
    Alcotest.test_case "CTL liveness on cycles" `Quick test_ctl_liveness_on_cycles;
    Alcotest.test_case "scaling followers" `Quick test_scaling_followers ]
