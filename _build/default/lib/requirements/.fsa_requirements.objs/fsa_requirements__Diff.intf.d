lib/requirements/diff.mli: Auth Classify Fmt Fsa_model Fsa_term
