(** Requirement categorisation and prioritisation (the step following
    elicitation, Sect. 4.3 of the paper).

    Scores are explicit products of documented factors — impact
    (classification × stakeholder weight), exposure (external flows on
    cause-to-effect paths) and reach (shortest dependency path) — so a
    review can challenge each number. *)

module Agent = Fsa_term.Agent
module Sos = Fsa_model.Sos

type weights = {
  class_weight : Classify.class_ -> int;
  stakeholder_weight : Agent.t -> int;
}

val default_weights : weights

type scored = {
  s_requirement : Auth.t;
  s_class : Classify.class_;
  s_impact : int;
  s_exposure : int;
  s_reach : int;
  s_score : int;
}

val exposure : Sos.t -> Fsa_term.Action.t -> Fsa_term.Action.t -> int
val reach : Sos.t -> Fsa_term.Action.t -> Fsa_term.Action.t -> int
val score : ?weights:weights -> Sos.t -> Auth.t -> scored

val rank : ?weights:weights -> Sos.t -> Auth.t list -> scored list
(** Categorisation first (higher class weight dominates), then the risk
    score within a category; deterministic tie-breaking. *)

val pp_scored : scored Fmt.t
val pp_ranking : scored list Fmt.t
