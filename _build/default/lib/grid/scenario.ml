(* A second application domain: smart-grid demand response.

   Households carry smart meters; a neighbourhood concentrator aggregates
   readings; the utility head-end combines the aggregate with a market
   price signal into a demand-response decision that actuates household
   breakers; the ingested readings also feed billing (a settlement
   policy, not safety-relevant for the switching decision).

   The functional models below are the manual-path representation; the
   operational APA models live in {!Grid_apa}. *)

module Term = Fsa_term.Term
module Agent = Fsa_term.Agent
module Action = Fsa_term.Action
module Component = Fsa_model.Component
module Flow = Fsa_model.Flow
module Sos = Fsa_model.Sos

let settlement_policy = "settlement"

let act role label = Action.make ~actor:(Agent.unindexed role) label
let acti role i label = Action.make ~actor:(Agent.concrete role i) label

(* Action constructors *)
let measure i = acti "METER" i "measure"
let report i = acti "METER" i "report"
let collect = act "CONC" "collect"
let aggregate = act "CONC" "aggregate"
let upload = act "CONC" "upload"
let quote = act "MARKET" "quote"
let ingest = act "HE" "ingest"
let price_in = act "HE" "price_in"
let decide = act "HE" "decide"
let dispatch = act "HE" "dispatch"
let bill = act "HE" "bill"
let command i = acti "BRK" i "command"
let switch i = acti "BRK" i "switch"

(* Functional component models *)
let meter i =
  Component.make
    (Printf.sprintf "Meter_%d" i)
    ~actions:[ measure i; report i ]
    ~flows:[ Flow.internal (measure i) (report i) ]

let breaker i =
  Component.make
    (Printf.sprintf "Breaker_%d" i)
    ~actions:[ command i; switch i ]
    ~flows:[ Flow.internal (command i) (switch i) ]

let concentrator =
  Component.make "Concentrator"
    ~actions:[ collect; aggregate; upload ]
    ~flows:[ Flow.internal collect aggregate; Flow.internal aggregate upload ]

let market = Component.make "Market" ~actions:[ quote ] ~flows:[]

let head_end =
  Component.make "HeadEnd"
    ~actions:[ ingest; price_in; decide; dispatch; bill ]
    ~flows:
      [ Flow.internal ingest decide;
        Flow.internal price_in decide;
        Flow.internal decide dispatch;
        Flow.internal ~policy:settlement_policy ingest bill ]

(* The demand-response SoS with [n] households (each a meter and a
   breaker). *)
let demand_response ?(households = 2) () =
  if households < 1 then invalid_arg "Grid.Scenario.demand_response";
  let hh = List.init households (fun k -> k + 1) in
  Sos.make "demand_response"
    ~components:
      (List.map meter hh
       @ [ concentrator; market; head_end ]
       @ List.map breaker hh)
    ~links:
      (List.map (fun i -> Flow.external_ (report i) collect) hh
       @ [ Flow.external_ upload ingest; Flow.external_ quote price_in ]
       @ List.map (fun i -> Flow.external_ dispatch (command i)) hh)

(* Stakeholders: the affected household for its breaker, the utility for
   billing, the acting component otherwise. *)
let stakeholder action =
  match Action.actor action with
  | Some a when Agent.role a = "BRK" ->
    Agent.make ~index:(Agent.index a) "Household"
  | Some a when Agent.role a = "HE" -> Agent.unindexed "Utility"
  | Some a -> a
  | None -> Agent.unindexed "ENV"
