(* Tests for Fsa_graph: digraphs, closures, SCCs, isomorphism, matching. *)

module G = Fsa_graph.Digraph.Make (struct
  type t = int

  let compare = Int.compare
  let pp = Fmt.int
end)

let vset = Alcotest.testable (Fmt.of_to_string (fun s ->
    Fmt.str "{%a}" Fmt.(list ~sep:comma int) (G.Vset.elements s)))
    G.Vset.equal

let edges_of g =
  List.sort compare (G.edges g)

let test_build () =
  let g = G.of_edges [ (1, 2); (2, 3); (1, 3) ] in
  Alcotest.(check int) "vertices" 3 (G.nb_vertices g);
  Alcotest.(check int) "edges" 3 (G.nb_edges g);
  Alcotest.(check bool) "mem edge" true (G.mem_edge 1 2 g);
  Alcotest.(check bool) "no reverse edge" false (G.mem_edge 2 1 g);
  Alcotest.check vset "succ" (G.Vset.of_list [ 2; 3 ]) (G.succ 1 g);
  Alcotest.check vset "pred" (G.Vset.of_list [ 1; 2 ]) (G.pred 3 g)

let test_add_remove () =
  let g = G.of_edges [ (1, 2) ] in
  let g = G.remove_edge 1 2 g in
  Alcotest.(check bool) "edge removed" false (G.mem_edge 1 2 g);
  Alcotest.(check int) "vertices kept" 2 (G.nb_vertices g);
  let g = G.add_edge 1 2 (G.add_edge 3 1 g) in
  let g = G.remove_vertex 1 g in
  Alcotest.(check int) "vertex removed" 2 (G.nb_vertices g);
  Alcotest.(check int) "incident edges removed" 0 (G.nb_edges g)

let test_idempotent_add () =
  let g = G.of_edges [ (1, 2); (1, 2) ] in
  Alcotest.(check int) "duplicate edge once" 1 (G.nb_edges g)

let test_sources_sinks () =
  let g = G.of_edges [ (1, 2); (2, 3); (4, 3) ] in
  Alcotest.check vset "sources" (G.Vset.of_list [ 1; 4 ]) (G.sources g);
  Alcotest.check vset "sinks" (G.Vset.of_list [ 3 ]) (G.sinks g)

let test_reachable () =
  let g = G.of_edges [ (1, 2); (2, 3); (4, 5) ] in
  Alcotest.check vset "forward" (G.Vset.of_list [ 1; 2; 3 ]) (G.reachable 1 g);
  Alcotest.check vset "backward" (G.Vset.of_list [ 1; 2; 3 ]) (G.co_reachable 3 g);
  Alcotest.check vset "isolated island" (G.Vset.of_list [ 4; 5 ]) (G.reachable 4 g)

let test_topological_sort () =
  let g = G.of_edges [ (1, 2); (1, 3); (2, 4); (3, 4) ] in
  (match G.topological_sort g with
  | None -> Alcotest.fail "DAG must have a topological order"
  | Some order ->
    Alcotest.(check int) "complete" 4 (List.length order);
    let position v =
      let rec go i = function
        | [] -> Alcotest.fail "vertex missing from order"
        | x :: rest -> if x = v then i else go (i + 1) rest
      in
      go 0 order
    in
    G.fold_edges
      (fun u v () ->
        Alcotest.(check bool) "edge respects order" true (position u < position v))
      g ());
  let cyclic = G.of_edges [ (1, 2); (2, 1) ] in
  Alcotest.(check bool) "cycle detected" true (G.topological_sort cyclic = None)

let test_find_cycle () =
  let acyclic = G.of_edges [ (1, 2); (2, 3) ] in
  Alcotest.(check bool) "no cycle" true (G.find_cycle acyclic = None);
  let g = G.of_edges [ (1, 2); (2, 3); (3, 1); (3, 4) ] in
  match G.find_cycle g with
  | None -> Alcotest.fail "cycle must be found"
  | Some cycle ->
    Alcotest.(check bool) "cycle has >= 2 vertices" true (List.length cycle >= 2);
    (* the returned sequence must be a real cycle in g *)
    let rec edges_ok = function
      | a :: (b :: _ as rest) -> G.mem_edge a b g && edges_ok rest
      | [ last ] -> G.mem_edge last (List.hd cycle) g
      | [] -> false
    in
    Alcotest.(check bool) "cycle edges exist" true (edges_ok cycle)

let test_sccs () =
  let g = G.of_edges [ (1, 2); (2, 3); (3, 1); (3, 4); (4, 5); (5, 4) ] in
  let sccs = List.map (List.sort compare) (G.sccs g) in
  let sorted = List.sort compare sccs in
  Alcotest.(check (list (list int))) "components" [ [ 1; 2; 3 ]; [ 4; 5 ] ] sorted

let test_transitive_closure () =
  let g = G.of_edges [ (1, 2); (2, 3) ] in
  let c = G.transitive_closure g in
  Alcotest.(check bool) "direct edge kept" true (G.mem_edge 1 2 c);
  Alcotest.(check bool) "transitive edge added" true (G.mem_edge 1 3 c);
  Alcotest.(check bool) "no reflexive edge" false (G.mem_edge 1 1 c);
  let r = G.transitive_closure ~reflexive:true g in
  Alcotest.(check bool) "reflexive edge added" true (G.mem_edge 1 1 r);
  (* idempotence *)
  Alcotest.(check (list (pair int int)))
    "closure idempotent" (edges_of c)
    (edges_of (G.transitive_closure c))

let test_transitive_reduction () =
  let g = G.of_edges [ (1, 2); (2, 3); (1, 3) ] in
  let red = G.transitive_reduction g in
  Alcotest.(check bool) "redundant edge removed" false (G.mem_edge 1 3 red);
  Alcotest.(check bool) "cover edges kept" true
    (G.mem_edge 1 2 red && G.mem_edge 2 3 red);
  (* closure of the reduction equals the closure of the original *)
  Alcotest.(check (list (pair int int)))
    "reduction preserves closure"
    (edges_of (G.transitive_closure g))
    (edges_of (G.transitive_closure red))

let test_union_map_reverse () =
  let g1 = G.of_edges [ (1, 2) ] and g2 = G.of_edges [ (2, 3) ] in
  let u = G.union g1 g2 in
  Alcotest.(check int) "union edges" 2 (G.nb_edges u);
  let m = G.map (fun v -> v * 10) u in
  Alcotest.(check bool) "mapped edge" true (G.mem_edge 10 20 m);
  let r = G.reverse u in
  Alcotest.(check bool) "reversed edge" true (G.mem_edge 2 1 r && G.mem_edge 3 2 r)

let test_isomorphic () =
  let g1 = G.of_edges [ (1, 2); (2, 3) ] in
  let g2 = G.of_edges [ (10, 20); (20, 30) ] in
  Alcotest.(check bool) "chains isomorphic" true (G.isomorphic g1 g2);
  let g3 = G.of_edges [ (1, 2); (1, 3) ] in
  Alcotest.(check bool) "chain vs fan differ" false (G.isomorphic g1 g3);
  let g4 = G.of_edges [ (1, 2); (2, 3); (3, 4) ] in
  Alcotest.(check bool) "different sizes differ" false (G.isomorphic g1 g4);
  (* label constraint can rule out structural isomorphisms *)
  let parity u v = u mod 2 = v mod 2 in
  Alcotest.(check bool) "label-compatible" true (G.isomorphic ~label:parity g1 (G.of_edges [ (3, 4); (4, 5) ]));
  Alcotest.(check bool) "label-incompatible" false
    (G.isomorphic ~label:parity g1 (G.of_edges [ (2, 3); (3, 4) ]))

let test_matching () =
  (* complete bipartite K22: perfect matching of size 2 *)
  let m =
    Fsa_graph.Matching.maximum ~left:2 ~right:2 ~adj:(fun _ -> [ 0; 1 ])
  in
  Alcotest.(check int) "K22 matching" 2 (Fsa_graph.Matching.size m);
  (* both lefts only reach right 0: matching of size 1 *)
  let m2 = Fsa_graph.Matching.maximum ~left:2 ~right:2 ~adj:(fun _ -> [ 0 ]) in
  Alcotest.(check int) "conflict matching" 1 (Fsa_graph.Matching.size m2);
  (* augmenting-path case: 0->{0}, 1->{0,1} must yield 2 *)
  let m3 =
    Fsa_graph.Matching.maximum ~left:2 ~right:2 ~adj:(fun u ->
        if u = 0 then [ 0 ] else [ 0; 1 ])
  in
  Alcotest.(check int) "augmenting path" 2 (Fsa_graph.Matching.size m3);
  (* consistency of pairings *)
  (match Fsa_graph.Matching.pair_of_left m3 0 with
  | Some v ->
    Alcotest.(check (option int)) "inverse pairing" (Some 0)
      (Fsa_graph.Matching.pair_of_right m3 v)
  | None -> Alcotest.fail "left 0 must be matched");
  Alcotest.(check int) "empty graph" 0
    (Fsa_graph.Matching.size
       (Fsa_graph.Matching.maximum ~left:3 ~right:3 ~adj:(fun _ -> [])))

let test_dot () =
  let d = Fsa_graph.Dot.create "test" in
  Fsa_graph.Dot.node d "a \"quoted\" node";
  Fsa_graph.Dot.edge d "x" "y";
  let s = Fsa_graph.Dot.to_string d in
  Alcotest.(check bool) "digraph header" true
    (String.length s > 0 && String.sub s 0 7 = "digraph");
  Alcotest.(check bool) "escaped quote" true
    (let sub = "\\\"quoted\\\"" in
     let rec contains i =
       i + String.length sub <= String.length s
       && (String.sub s i (String.length sub) = sub || contains (i + 1))
     in
     contains 0)

(* Properties over random DAGs: edges only from smaller to larger ids. *)
let gen_dag =
  let open QCheck2.Gen in
  let* n = int_range 2 9 in
  let* edges =
    list_size (int_bound (n * 2))
      (let* a = int_bound (n - 1) in
       let* b = int_bound (n - 1) in
       return (min a b, max a b))
  in
  let edges = List.filter (fun (a, b) -> a <> b) edges in
  return (G.of_edges ~vertices:(List.init n Fun.id) edges)

let prop_dag_topo =
  QCheck2.Test.make ~name:"random DAGs have topological orders" ~count:200
    gen_dag (fun g -> G.topological_sort g <> None)

let prop_closure_reduction =
  QCheck2.Test.make ~name:"closure(reduction) = closure" ~count:200 gen_dag
    (fun g ->
      edges_of (G.transitive_closure g)
      = edges_of (G.transitive_closure (G.transitive_reduction g)))

let prop_closures_agree =
  QCheck2.Test.make ~name:"DFS and Warshall closures agree" ~count:200 gen_dag
    (fun g ->
      edges_of (G.transitive_closure g)
      = edges_of (G.transitive_closure_dense g)
      && edges_of (G.transitive_closure ~reflexive:true g)
         = edges_of (G.transitive_closure_dense ~reflexive:true g))

let prop_self_isomorphic =
  QCheck2.Test.make ~name:"every graph is isomorphic to a relabelling"
    ~count:100 gen_dag (fun g -> G.isomorphic g (G.map (fun v -> v + 100) g))

let suite =
  [ Alcotest.test_case "build" `Quick test_build;
    Alcotest.test_case "add/remove" `Quick test_add_remove;
    Alcotest.test_case "idempotent add" `Quick test_idempotent_add;
    Alcotest.test_case "sources/sinks" `Quick test_sources_sinks;
    Alcotest.test_case "reachable" `Quick test_reachable;
    Alcotest.test_case "topological sort" `Quick test_topological_sort;
    Alcotest.test_case "find cycle" `Quick test_find_cycle;
    Alcotest.test_case "sccs" `Quick test_sccs;
    Alcotest.test_case "transitive closure" `Quick test_transitive_closure;
    Alcotest.test_case "transitive reduction" `Quick test_transitive_reduction;
    Alcotest.test_case "union/map/reverse" `Quick test_union_map_reverse;
    Alcotest.test_case "isomorphic" `Quick test_isomorphic;
    Alcotest.test_case "bipartite matching" `Quick test_matching;
    Alcotest.test_case "dot output" `Quick test_dot;
    QCheck_alcotest.to_alcotest prop_dag_topo;
    QCheck_alcotest.to_alcotest prop_closures_agree;
    QCheck_alcotest.to_alcotest prop_closure_reduction;
    QCheck_alcotest.to_alcotest prop_self_isomorphic ]
