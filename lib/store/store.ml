(* Content-addressed on-disk result cache.

   One JSON file per entry, named by the cache key.  Writes go through a
   temp file in the same directory followed by [Unix.rename], so readers
   never observe a partial entry; reads re-serialize the payload and
   compare its digest against the stored checksum, so bit rot and
   truncation degrade to a miss instead of a wrong answer.  LRU state is
   the file mtime: [find] touches the file on a hit, [add] evicts
   oldest-first until the directory is back under its size budget. *)

module Metrics = Fsa_obs.Metrics
module Recorder = Fsa_obs.Recorder

let m_hits = Metrics.counter "store.hits"
let m_misses = Metrics.counter "store.misses"
let m_evictions = Metrics.counter "store.evictions"

(* Enough of a key to correlate flight-recorder events with entries
   without blowing up the ring with full 32-char digests. *)
let short_key key = if String.length key > 12 then String.sub key 0 12 else key

(* v2: requirements/analyze outcomes embed an Fsa_report view, and
   requirements keys moved to the APA+models digest — v1 entries must
   not replay into the new shapes. *)
let format_version = 2

type t = { st_dir : string; st_max_bytes : int }

let dir t = t.st_dir

let default_dir () =
  match Sys.getenv_opt "FSA_CACHE_DIR" with
  | Some d when d <> "" -> d
  | _ -> (
    match Sys.getenv_opt "XDG_CACHE_HOME" with
    | Some d when d <> "" -> Filename.concat d "fsa"
    | _ -> (
      match Sys.getenv_opt "HOME" with
      | Some h when h <> "" -> Filename.concat (Filename.concat h ".cache") "fsa"
      | _ -> "_fsa_cache"))

let rec mkdir_p path =
  if path <> "" && path <> "/" && path <> "." && not (Sys.file_exists path)
  then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_ ?(max_bytes = 64 * 1024 * 1024) ~dir () =
  (try mkdir_p dir
   with Unix.Unix_error (e, _, _) ->
     raise (Sys_error
              (Printf.sprintf "%s: cannot create cache directory (%s)" dir
                 (Unix.error_message e))));
  if not (Sys.is_directory dir) then
    raise (Sys_error (dir ^ ": cache path is not a directory"));
  { st_dir = dir; st_max_bytes = max 0 max_bytes }

(* ------------------------------------------------------------------ *)
(* Keys                                                                *)
(* ------------------------------------------------------------------ *)

let digest_hex s = Digest.to_hex (Digest.string s)

let cache_key ~digest ~kind ~params =
  let params =
    List.sort (fun (a, _) (b, _) -> String.compare a b) params
    |> List.map (fun (k, v) -> k ^ "=" ^ v)
  in
  digest_hex
    (String.concat "\x00" (digest :: kind :: params))

(* ------------------------------------------------------------------ *)
(* Entries                                                             *)
(* ------------------------------------------------------------------ *)

type entry = {
  e_key : string;
  e_kind : string;
  e_result : Json.t;
  e_output : string;
  e_exit : int;
}

(* The payload object, in fixed member order; the checksum is the digest
   of this exact serialization. *)
let payload_json e =
  Json.Obj
    [ ("format", Json.Int format_version);
      ("key", Json.Str e.e_key);
      ("kind", Json.Str e.e_kind);
      ("result", e.e_result);
      ("output", Json.Str e.e_output);
      ("exit", Json.Int e.e_exit) ]

let entry_to_json e =
  match payload_json e with
  | Json.Obj members ->
    Json.Obj
      (members
      @ [ ("checksum", Json.Str (digest_hex (Json.to_string (payload_json e))))
        ])
  | _ -> assert false

let entry_of_json ~key json =
  let ( let* ) o f = Option.bind o f in
  let* format = Option.bind (Json.member "format" json) Json.to_int in
  if format <> format_version then None
  else
    let* k = Option.bind (Json.member "key" json) Json.to_str in
    if not (String.equal k key) then None
    else
      let* kind = Option.bind (Json.member "kind" json) Json.to_str in
      let* result = Json.member "result" json in
      let* output = Option.bind (Json.member "output" json) Json.to_str in
      let* exit_ = Option.bind (Json.member "exit" json) Json.to_int in
      let* checksum = Option.bind (Json.member "checksum" json) Json.to_str in
      let e =
        { e_key = k;
          e_kind = kind;
          e_result = result;
          e_output = output;
          e_exit = exit_ }
      in
      if String.equal checksum (digest_hex (Json.to_string (payload_json e)))
      then Some e
      else None

(* ------------------------------------------------------------------ *)
(* Disk                                                                *)
(* ------------------------------------------------------------------ *)

let entry_path t key = Filename.concat t.st_dir (key ^ ".json")

let read_file path =
  try Some (In_channel.with_open_bin path In_channel.input_all)
  with Sys_error _ -> None

let find t ~key =
  let path = entry_path t key in
  let entry =
    match read_file path with
    | None -> None
    | Some content -> (
      match Json.parse content with
      | Error _ -> None
      | Ok json -> entry_of_json ~key json)
  in
  (match entry with
  | Some _ ->
    Metrics.incr m_hits;
    Recorder.record Recorder.Cache_hit (short_key key);
    (* refresh the LRU clock; failure only weakens eviction ordering *)
    (try Unix.utimes path 0. 0. with Unix.Unix_error _ -> ())
  | None ->
    Metrics.incr m_misses;
    Recorder.record Recorder.Cache_miss (short_key key));
  entry

(* Oldest-first eviction until the directory fits the budget.  Entries
   sharing an mtime (coarse clocks) tie-break on file name for
   determinism. *)
let evict t =
  match Sys.readdir t.st_dir with
  | exception Sys_error _ -> ()
  | names ->
    let entries =
      Array.to_list names
      |> List.filter_map (fun name ->
             if Filename.check_suffix name ".json" then
               let path = Filename.concat t.st_dir name in
               match Unix.stat path with
               | { Unix.st_kind = Unix.S_REG; st_size; st_mtime; _ } ->
                 Some (path, st_size, st_mtime)
               | _ | (exception Unix.Unix_error _) -> None
             else None)
    in
    let total = List.fold_left (fun acc (_, size, _) -> acc + size) 0 entries in
    if total > t.st_max_bytes then begin
      let by_age =
        List.sort
          (fun (pa, _, ma) (pb, _, mb) ->
            let c = Float.compare ma mb in
            if c <> 0 then c else String.compare pa pb)
          entries
      in
      let excess = ref (total - t.st_max_bytes) in
      List.iter
        (fun (path, size, _) ->
          if !excess > 0 then begin
            (try
               Sys.remove path;
               excess := !excess - size;
               Metrics.incr m_evictions;
               Recorder.record Recorder.Eviction (Filename.basename path)
             with Sys_error _ -> ())
          end)
        by_age
    end

(* Distinct per writer even within one process: server worker domains
   share a pid, so a plain pid-keyed name could interleave two writers
   of the same entry. *)
let tmp_seq = Atomic.make 0

let add t e =
  let json = entry_to_json e in
  let path = entry_path t e.e_key in
  let tmp =
    Filename.concat t.st_dir
      (Printf.sprintf ".tmp-%d-%d-%s.json" (Unix.getpid ())
         (Atomic.fetch_and_add tmp_seq 1)
         e.e_key)
  in
  (try
     Out_channel.with_open_bin tmp (fun oc ->
         Out_channel.output_string oc (Json.to_string json);
         Out_channel.output_char oc '\n');
     Unix.rename tmp path
   with Sys_error _ | Unix.Unix_error _ ->
     (try Sys.remove tmp with Sys_error _ -> ()));
  evict t

(* Directory scan, not bookkeeping: the cache is shared between
   processes, so the only truthful occupancy is what is on disk now. *)
let occupancy t =
  match Sys.readdir t.st_dir with
  | exception Sys_error _ -> (0, 0)
  | names ->
    Array.fold_left
      (fun (n, bytes) name ->
        if Filename.check_suffix name ".json" then
          match Unix.stat (Filename.concat t.st_dir name) with
          | { Unix.st_kind = Unix.S_REG; st_size; _ } -> (n + 1, bytes + st_size)
          | _ -> (n, bytes)
          | exception Unix.Unix_error _ -> (n, bytes)
        else (n, bytes))
      (0, 0) names
