test/test_pattern.ml: Alcotest Fmt Fsa_lts Fsa_mc Fsa_term Fsa_vanet Lazy List String
