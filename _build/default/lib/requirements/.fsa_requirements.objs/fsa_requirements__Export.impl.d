lib/requirements/export.ml: Auth Buffer Char Classify Fmt Fsa_term Fun List Option Printf String
