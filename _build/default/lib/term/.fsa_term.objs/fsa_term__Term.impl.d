lib/term/term.ml: Fmt Hashtbl Lexer List Map Printf Set Stdlib String
