(* Spec-level static analysis: dead rules, binding discipline, component
   usage, APA races and abstraction soundness — all before (and without)
   exploring any state space. *)

module Term = Fsa_term.Term
module Apa = Fsa_apa.Apa
module Loc = Fsa_spec.Loc
module Ast = Fsa_spec.Ast
module Elab = Fsa_spec.Elaborate
module Lint = Fsa_model.Lint
module D = Diagnostic

open Elab

let c_diagnostics = Fsa_obs.Metrics.counter "check.diagnostics"
let c_rules = Fsa_obs.Metrics.counter "check.rules_checked"
let c_rounds = Fsa_obs.Metrics.counter "check.fixpoint_rounds"
let c_wall = Fsa_obs.Metrics.counter "check.wall_ns"

(* ------------------------------------------------------------------ *)
(* "Did you mean" suggestions                                          *)
(* ------------------------------------------------------------------ *)

let levenshtein a b =
  let la = String.length a and lb = String.length b in
  let prev = Array.init (lb + 1) Fun.id in
  let cur = Array.make (lb + 1) 0 in
  for i = 1 to la do
    cur.(0) <- i;
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      cur.(j) <- min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
    done;
    Array.blit cur 0 prev 0 (lb + 1)
  done;
  prev.(lb)

let suggest name candidates =
  let scored =
    List.filter_map
      (fun c ->
        let d = levenshtein name c in
        if d > 0 && d <= 2 + (String.length name / 4) then Some (d, c) else None)
      candidates
  in
  match List.sort Stdlib.compare scored with
  | (_, best) :: _ -> Some best
  | [] -> None

let with_hint candidates name =
  match suggest name candidates with
  | Some c -> Printf.sprintf " (did you mean %s?)" c
  | None -> ""

(* ------------------------------------------------------------------ *)
(* Producible-shape fixpoint                                           *)
(* ------------------------------------------------------------------ *)

(* A take pattern can match a producible shape when the two unify with
   variable namespaces kept disjoint (a shape's variables stand for "any
   term some binding could have produced here"). *)
let matches_shape pat shape =
  Option.is_some (Term.unify (Term.rename "p" pat) (Term.rename "s" shape))

(* Over-approximate the terms each state component can ever hold: seed
   with the initial contents, then close under the puts of every rule
   whose takes all have a matching shape.  Guards are ignored and shapes
   are never removed, so the result is a superset of reality; the set of
   candidate shapes (initial terms plus put templates) is finite, hence
   the fixpoint terminates. *)
let producible sk =
  let shapes : (string, Term.t list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (c, init, _) -> Hashtbl.replace shapes c (Term.Set.elements init))
    sk.sk_components;
  let get c = Option.value ~default:[] (Hashtbl.find_opt shapes c) in
  let add c t =
    let cur = get c in
    if List.exists (Term.equal t) cur then false
    else begin
      Hashtbl.replace shapes c (t :: cur);
      true
    end
  in
  let enabled r =
    List.for_all
      (fun tk -> List.exists (matches_shape tk.lt_pat) (get tk.lt_comp))
      r.lr_takes
  in
  let changed = ref true in
  while !changed do
    Fsa_obs.Metrics.incr c_rounds;
    changed := false;
    List.iter
      (fun r ->
        if enabled r then
          List.iter
            (fun pt -> if add pt.lp_comp pt.lp_term then changed := true)
            r.lr_puts)
      sk.sk_rules
  done;
  (get, enabled)

(* ------------------------------------------------------------------ *)
(* Passes over the located skeleton                                    *)
(* ------------------------------------------------------------------ *)

(* FSA007: takes and puts must reference declared state components.
   (The elaborator only catches this much later, inside [Apa.make], as an
   un-located [Invalid_argument].) *)
let pass_undeclared ?file sk add =
  let declared = List.map (fun (c, _, _) -> c) sk.sk_components in
  List.iter
    (fun r ->
      List.iter
        (fun tk ->
          if not (List.mem tk.lt_comp declared) then
            add
              (D.error ?file ~loc:tk.lt_loc ~code:"FSA007"
                 "rule %s references undeclared state component %s%s"
                 r.lr_name tk.lt_comp (with_hint declared tk.lt_comp)))
        r.lr_takes;
      List.iter
        (fun pt ->
          if not (List.mem pt.lp_comp declared) then
            add
              (D.error ?file ~loc:pt.lp_loc ~code:"FSA007"
                 "rule %s puts into undeclared state component %s%s" r.lr_name
                 pt.lp_comp (with_hint declared pt.lp_comp)))
        r.lr_puts)
    sk.sk_rules

(* FSA001/FSA006: rules whose takes can never be satisfied.  A rule
   reading a component that is never written and initially empty is
   "inert" — the instance simply does not exercise that ability (a common
   idiom: a receiver-only vehicle declares the full component type) — and
   only worth a note; a take pattern that conflicts with every producible
   shape is a genuine specification defect. *)
let pass_dead ?file sk get_shapes add =
  let writers c =
    List.exists
      (fun r -> List.exists (fun pt -> String.equal pt.lp_comp c) r.lr_puts)
      sk.sk_rules
  in
  let dead = ref [] in
  List.iter
    (fun r ->
      Fsa_obs.Metrics.incr c_rules;
      match
        List.find_opt
          (fun tk ->
            not (List.exists (matches_shape tk.lt_pat) (get_shapes tk.lt_comp)))
          r.lr_takes
      with
      | None -> ()
      | Some tk ->
        dead := r.lr_name :: !dead;
        let shapes = get_shapes tk.lt_comp in
        if shapes = [] && not (writers tk.lt_comp) then
          add
            (D.info ?file ~loc:tk.lt_loc ~code:"FSA006"
               "rule %s can never fire: state component %s is never written \
                and initially empty in this instantiation"
               r.lr_name tk.lt_comp)
        else if shapes = [] then
          add
            (D.error ?file ~loc:tk.lt_loc ~code:"FSA001"
               "rule %s is dead: nothing can ever appear in state component \
                %s (all of its producers are themselves dead)"
               r.lr_name tk.lt_comp)
        else
          add
            (D.error ?file ~loc:tk.lt_loc ~code:"FSA001"
               "rule %s is dead: take pattern %a can never match any term \
                producible in %s (producible: %a)"
               r.lr_name Term.pp tk.lt_pat tk.lt_comp
               Fmt.(list ~sep:comma Term.pp)
               (List.sort Term.compare shapes)))
    sk.sk_rules;
  !dead

(* FSA002/FSA003: every variable of a put template must be bound by a
   take pattern (else elaboration would fail much later, without a
   position); a guard variable that is never bound makes comparisons
   evaluate vacuously. *)
let pass_bindings ?file sk add =
  List.iter
    (fun r ->
      let bound =
        List.fold_left
          (fun acc tk -> Term.String_set.union acc (Term.vars tk.lt_pat))
          Term.String_set.empty r.lr_takes
      in
      List.iter
        (fun pt ->
          Term.String_set.iter
            (fun v ->
              if not (Term.String_set.mem v bound) then
                add
                  (D.error ?file ~loc:pt.lp_loc ~code:"FSA002"
                     "rule %s produces %a with variable _%s bound by no take \
                      pattern"
                     r.lr_name Term.pp pt.lp_term v))
            (Term.vars pt.lp_term))
        r.lr_puts;
      List.iter
        (fun v ->
          if not (Term.String_set.mem v bound) then
            add
              (D.warning ?file ~loc:r.lr_loc ~code:"FSA003"
                 "guard of rule %s references variable _%s bound by no take \
                  pattern — comparisons over it never hold"
                 r.lr_name v))
        r.lr_guard_vars)
    sk.sk_rules

(* FSA004/FSA005: state components nothing ever reads (observable sinks,
   worth a note) or nothing references at all. *)
let pass_usage ?file sk add =
  List.iter
    (fun (c, init, loc) ->
      let read =
        List.exists
          (fun r -> List.exists (fun tk -> String.equal tk.lt_comp c) r.lr_takes)
          sk.sk_rules
      and written =
        List.exists
          (fun r -> List.exists (fun pt -> String.equal pt.lp_comp c) r.lr_puts)
          sk.sk_rules
      in
      if (not read) && not written then begin
        if Term.Set.is_empty init then
          add
            (D.warning ?file ~loc ~code:"FSA005"
               "state component %s is declared but never read or written" c)
      end
      else if not read then
        add
          (D.info ?file ~loc ~code:"FSA004"
             "state component %s is write-only: its contents are never read \
              (observable sink?)"
             c))
    sk.sk_components

(* FSA010/FSA011: pairs of rules whose takes conflict on the same state
   component with unifiable patterns — exactly the interleavings the
   asynchronous product makes order-sensitive.  Pairs where either rule
   carries a guard are skipped: the guard may well disambiguate the
   interpretations (e.g. [when _v != self]), and guards are opaque to
   this analysis. *)
let pass_races ?file sk add =
  let takes_on c r =
    List.filter (fun tk -> String.equal tk.lt_comp c) r.lr_takes
  in
  let components =
    List.sort_uniq String.compare
      (List.concat_map
         (fun r -> List.map (fun tk -> tk.lt_comp) r.lr_takes)
         sk.sk_rules)
  in
  let rec pairs = function
    | [] -> []
    | r :: rest -> List.map (fun r' -> (r, r')) rest @ pairs rest
  in
  List.iter
    (fun c ->
      List.iter
        (fun (r1, r2) ->
          if not (r1.lr_guarded || r2.lr_guarded) then begin
            let conflict kind t1 t2 =
              match
                List.find_opt
                  (fun tk1 ->
                    List.exists
                      (fun tk2 -> matches_shape tk1.lt_pat tk2.lt_pat)
                      t2)
                  t1
              with
              | None -> ()
              | Some tk1 ->
                let code, what =
                  match kind with
                  | `CC -> ("FSA010", "both consume")
                  | `CR -> ("FSA011", "one consumes what the other reads")
                in
                add
                  (D.warning ?file ~loc:tk1.lt_loc ~code
                     "rules %s and %s race on %s: %s terms matching %a — \
                      their interleaving is order-sensitive in the \
                      asynchronous product"
                     r1.lr_name r2.lr_name c what Term.pp tk1.lt_pat)
            in
            let consumes r = List.filter (fun tk -> tk.lt_consume) (takes_on c r)
            and reads r =
              List.filter (fun tk -> not tk.lt_consume) (takes_on c r)
            in
            conflict `CC (consumes r1) (consumes r2);
            conflict `CR (consumes r1) (reads r2);
            conflict `CR (consumes r2) (reads r1)
          end)
        (pairs sk.sk_rules))
    components

(* FSA020/FSA021: check declarations must name actions of the APA's
   alphabet, and properties over actions that can never occur are
   vacuous. *)
let pass_checks ?file ~alphabet ~dead checks add =
  List.iter
    (fun (ck : Ast.check_decl) ->
      let names =
        ck.ck_args @ (match ck.ck_scope with Some (_, a) -> [ a ] | None -> [])
      in
      List.iter
        (fun name ->
          if alphabet = [] then
            add
              (D.error ?file ~loc:ck.ck_loc ~code:"FSA020"
                 "check refers to APA transition %s, but the specification \
                  declares no instances"
                 name)
          else if not (List.mem name alphabet) then
            add
              (D.error ?file ~loc:ck.ck_loc ~code:"FSA020"
                 "check names %s, which is not in the APA's action alphabet%s"
                 name (with_hint alphabet name))
          else if List.mem name dead then
            add
              (D.warning ?file ~loc:ck.ck_loc ~code:"FSA021"
                 "check is vacuous: action %s can never occur (its rule is \
                  dead)"
                 name))
        names)
    checks

(* ------------------------------------------------------------------ *)
(* Manual path: lint findings as unified diagnostics                   *)
(* ------------------------------------------------------------------ *)

let severity_of_code code =
  match
    List.find_opt (fun (c, _, _) -> String.equal c code) D.registry
  with
  | Some (_, sev, _) -> sev
  | None -> D.Warning

let pass_soses ?file ast (env : Elab.env) add =
  List.iter
    (fun (sd : Ast.sos_decl) ->
      match Elab.sos_of_spec ast sd.sd_name with
      | exception Loc.Error (loc, msg) ->
        add (D.error ?file ~loc ~code:"FSA000" "%s" msg)
      | sos ->
        List.iter
          (fun w ->
            let code = Lint.code w in
            add
              (D.make ?file ~loc:sd.sd_loc ~severity:(severity_of_code code)
                 ~code "sos %s: %a" sd.sd_name Lint.pp_warning w))
          (Lint.check sos))
    env.soses

(* ------------------------------------------------------------------ *)
(* Deep pass: structural net analysis (FSA040-FSA048)                  *)
(* ------------------------------------------------------------------ *)

module Structural = Fsa_struct.Structural

let net_of_skeleton sk =
  { Structural.n_places =
      List.map
        (fun (c, init, _) ->
          { Structural.pl_name = c; pl_initial = init })
        sk.sk_components;
    n_rules =
      List.map
        (fun r ->
          { Structural.rs_name = r.lr_name;
            rs_takes =
              List.map
                (fun tk -> (tk.lt_comp, tk.lt_pat, tk.lt_consume))
                r.lr_takes;
            rs_puts = List.map (fun pt -> (pt.lp_comp, pt.lp_term)) r.lr_puts;
            rs_guarded = r.lr_guarded })
        sk.sk_rules }

(* The structural findings are advisory (the skeleton forgets patterns,
   guards and the set semantics of components), so everything here is a
   note — except FSA041, whose certificate is sound for the APA itself:
   an unguarded self-regenerating rule with a strictly growing term
   really does make the state space infinite. *)
let pass_deep ?file ?budget sk add =
  let net = net_of_skeleton sk in
  if net.Structural.n_places <> [] then begin
    let comp_loc c =
      List.find_map
        (fun (c', _, loc) -> if String.equal c c' then Some loc else None)
        sk.sk_components
    in
    let rule_loc n =
      List.find_map
        (fun r -> if String.equal r.lr_name n then Some r.lr_loc else None)
        sk.sk_rules
    in
    let r = Structural.analyse ?budget net in
    let hint = Structural.growth_hint net in
    List.iter
      (fun (c, b) ->
        add
          (D.info ?file ?loc:(comp_loc c) ~code:"FSA040"
             "state component %s is bounded: a place invariant of the net \
              skeleton keeps its size at most %d"
             c b))
      r.Structural.r_bounds;
    List.iter
      (fun (rl, c, why) ->
        add
          (D.warning ?file ?loc:(rule_loc rl) ~code:"FSA041"
             "rule %s makes the state space infinite: %s in component %s"
             rl why c))
      r.Structural.r_certified;
    List.iter
      (fun (c, s) ->
        add
          (D.info ?file ?loc:(comp_loc c) ~code:"FSA042"
             "state component %s is potentially unbounded: net production \
              +%d per firing round and no covering place invariant%s"
             c s hint))
      r.Structural.r_unbounded;
    List.iter
      (fun v ->
        let combo =
          List.filter_map Fun.id
            (Array.to_list
               (Array.mapi
                  (fun i n ->
                    if n = 0 then None
                    else if n = 1 then Some r.Structural.r_rules.(i)
                    else
                      Some (Printf.sprintf "%d*%s" n r.Structural.r_rules.(i)))
                  v))
        in
        add
          (D.info ?file ~code:"FSA043"
             "transition invariant: firing {%s} returns the net skeleton to \
              the same marking (cyclic behaviour)"
             (String.concat ", " combo)))
      r.Structural.r_t_invariants;
    (match r.Structural.r_verdict with
    | Structural.May_deadlock bad ->
      List.iter
        (fun s ->
          add
            (D.info ?file ?loc:(Option.bind (List.nth_opt s 0) comp_loc)
               ~code:"FSA044"
               "components {%s} form a siphon with no initially marked \
                trap: once drained, every rule taking from them is \
                permanently disabled"
               (String.concat ", " s)))
        bad
    | Structural.Deadlock_free_skeleton ->
      add
        (D.info ?file ~code:"FSA045"
           "no structural deadlock at skeleton level: every one of the %d \
            minimal siphon(s) contains an initially marked trap"
           (List.length r.Structural.r_siphons))
    | Structural.Unknown_budget ->
      add
        (D.info ?file ~code:"FSA048"
           "structural deadlock analysis truncated: siphon enumeration \
            exceeded its budget"));
    if r.Structural.r_independent_pairs > 0 then
      add
        (D.info ?file ~code:"FSA046"
           "%d of %d ordered rule pairs have no token flow between them: \
            their functional dependence tests are skipped under \
            --prune-static"
           r.Structural.r_independent_pairs r.Structural.r_rule_pairs);
    List.iter
      (fun t ->
        if Structural.initially_marked net t then
          add
            (D.info ?file ?loc:(Option.bind (List.nth_opt t 0) comp_loc)
               ~code:"FSA047"
               "components {%s} form an initially marked trap: they can \
                never all drain"
               (String.concat ", " t)))
      r.Structural.r_traps
  end

(* ------------------------------------------------------------------ *)
(* Deep pass: reduction prognosis (FSA050-FSA058)                      *)
(* ------------------------------------------------------------------ *)

module Sym = Fsa_sym.Sym

(* Everything here is advisory (Info): asymmetric models are perfectly
   fine, the pass only reports what --reduce could exploit and why it
   would refuse the rest. *)
let pass_sym ?file ast add =
  match
    try Some (Elab.apa_of_spec ast, Elab.guard_signatures ast)
    with
    (* elaboration problems are already reported as FSA000; a spec with
       no instances (model-only) simply has nothing to reduce *)
    | Loc.Error _ | Invalid_argument _ ->
      None
  with
  | None -> ()
  | Some (apa, sigs) ->
    let rep = Sym.detect ~guard_sig:(fun r -> List.assoc_opt r sigs) apa in
    let blocks o =
      String.concat " ~ "
        (List.map
           (fun b -> "{" ^ String.concat " " b.Sym.b_instances ^ "}")
           o.Sym.o_blocks)
    in
    List.iter
      (fun o ->
        if o.Sym.o_reducible then
          add
            (D.info ?file ~code:"FSA050"
               "instances %s are interchangeable: --reduce sym explores \
                one representative per class (%d blocks)"
               (blocks o)
               (List.length o.Sym.o_blocks))
        else
          add
            (D.info ?file ~code:"FSA052"
               "orbit %s cannot be canonicalised: %s" (blocks o) o.Sym.o_why))
      rep.Sym.r_orbits;
    List.iter
      (fun j ->
        let code =
          match j.Sym.j_reason with `Initial -> "FSA054" | _ -> "FSA051"
        in
        add
          (D.info ?file ~code
             "instances %s and %s look alike but are not interchangeable: \
              %s"
             j.Sym.j_a j.Sym.j_b j.Sym.j_detail))
      rep.Sym.r_rejected;
    if rep.Sym.r_attested_guards <> [] then
      add
        (D.info ?file ~code:"FSA057"
           "guard equivalence of %s rests on syntactic signatures: \
            symmetry soundness assumes the guard builtins treat the \
            instances alike"
           (String.concat ", " rep.Sym.r_attested_guards));
    let modules = Sym.por_modules (Sym.por_plan apa (Structural.of_apa apa)) in
    let usable = List.filter (fun m -> m.Sym.m_reducible) modules in
    if List.length modules > 1 then begin
      add
        (D.info ?file ~code:"FSA053"
           "the rules split into %d interference modules (%d usable as \
            ample sets): --reduce por interleaves them one at a time"
           (List.length modules) (List.length usable));
      List.iter
        (fun m ->
          if not m.Sym.m_reducible then
            add
              (D.info ?file ~code:"FSA056"
                 "module {%s} cannot serve as an ample set: %s"
                 (String.concat ", " m.Sym.m_rules)
                 m.Sym.m_why))
        modules
    end;
    let order = Sym.group_order rep in
    if order > 1. then
      add
        (D.info ?file ~code:"FSA055"
           "symmetry group order %.0f: --reduce sym explores up to %.0fx \
            fewer states"
           order order);
    if order > 1. || usable <> [] then
      add
        (D.info ?file ~code:"FSA058"
           "this model qualifies for reduced exploration: try --reduce %s"
           (if order > 1. && usable <> [] then "sym+por"
            else if order > 1. then "sym"
            else "por"))

(* ------------------------------------------------------------------ *)
(* Deep pass: information flow (FSA060-FSA065)                         *)
(* ------------------------------------------------------------------ *)

module Flow = Fsa_flow.Flow

let flow_attribution sk =
  let find n f =
    List.find_map
      (fun r -> if String.equal r.lr_name n then Some (f r) else None)
      sk.sk_rules
  in
  { Flow.at_instance =
      (fun n ->
        match find n (fun r -> r.lr_instance) with
        | Some "" | None -> None
        | Some i -> Some i);
    at_guard_vars = (fun n -> find n (fun r -> r.lr_guard_vars)) }

(* Only the leak finding is a warning: protected material reaching a
   cross-instance channel is wrong on any reading.  Guard-free boundary
   crossings (FSA061) are advisory — broadcast topologies consume
   unauthenticated channel data as a matter of design — as are the dead
   surface, cycle, kill and independence summaries. *)
let pass_flow ?file sk ast add =
  match
    try Some (Elab.apa_of_spec ast)
    with Loc.Error _ | Invalid_argument _ -> None
  with
  | None -> ()
  | Some apa ->
    let g = Flow.build ~attribution:(flow_attribution sk) apa in
    let rule_loc n =
      List.find_map
        (fun r -> if String.equal r.lr_name n then Some r.lr_loc else None)
        sk.sk_rules
    in
    let comp_loc c =
      List.find_map
        (fun (c', _, loc) -> if String.equal c c' then Some loc else None)
        sk.sk_components
    in
    List.iter
      (fun l ->
        let loc =
          match l.Flow.lk_rules with
          | r :: _ -> rule_loc r
          | [] -> comp_loc l.Flow.lk_source
        in
        add
          (D.warning ?file ?loc ~code:"FSA060"
             "confidentiality leak: protected component %s flows into \
              cross-instance channel %s via %s"
             l.Flow.lk_source l.Flow.lk_channel
             (if l.Flow.lk_rules = [] then "direct shared access"
              else String.concat " -> " l.Flow.lk_rules)))
      (Flow.leaks g);
    List.iter
      (fun (e : Flow.edge) ->
        add
          (D.info ?file ?loc:(rule_loc e.Flow.e_dst) ~code:"FSA061"
             "unsanitized cross-instance flow: %s %s what %s puts into %s \
              without any guard"
             e.Flow.e_dst
             (if e.Flow.e_consume then "consumes" else "reads")
             e.Flow.e_src e.Flow.e_component))
      (Flow.unsanitized g);
    List.iter
      (fun rl ->
        add
          (D.info ?file ?loc:(rule_loc rl) ~code:"FSA062"
             "dead attack surface: %s is enabled on the initial state but \
              no flow path leads from it to any output rule"
             rl))
      (Flow.dead_sources g);
    List.iter
      (fun c ->
        add
          (D.info ?file ?loc:(Option.bind (List.nth_opt c 0) rule_loc)
             ~code:"FSA063"
             "unguarded flow cycle: {%s} feed each other and none of them \
              has a guard"
             (String.concat ", " c)))
      (Flow.unguarded_cycles g);
    List.iter
      (fun (k : Flow.kill) ->
        add
          (D.info ?file ?loc:(rule_loc k.Flow.k_dst) ~code:"FSA064"
             "the guard of %s statically rejects every token %s puts into \
              %s (forced bindings: %s)"
             k.Flow.k_dst k.Flow.k_src k.Flow.k_component
             (String.concat ", "
                (List.map
                   (fun (v, t) ->
                     Printf.sprintf "%s = %s" v (Term.to_string t))
                   k.Flow.k_bindings))))
      (Flow.kills g);
    let independent = Flow.independent_pairs g in
    if independent > 0 then
      add
        (D.info ?file ~code:"FSA065"
           "%d of %d ordered rule pairs are flow-independent (%d already \
            at skeleton level): their functional dependence tests are \
            skipped under --prune-flow"
           independent (Flow.rule_pairs g)
           (Flow.skeleton_independent_pairs g))

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let skeleton_passes ?file sk add =
  pass_undeclared ?file sk add;
  let get_shapes, _enabled = producible sk in
  let dead = pass_dead ?file sk get_shapes add in
  pass_bindings ?file sk add;
  pass_usage ?file sk add;
  pass_races ?file sk add;
  dead

let spec ?file ?(deep = false) ?budget ast =
  Fsa_obs.Span.with_ ~cat:"check" "check.spec" @@ fun () ->
  let t0 = Fsa_obs.Span.now_ns () in
  let ds = ref [] in
  let add d = ds := d :: !ds in
  (try
     let env = Elab.env_of_spec ast in
     (try
        let sk = Elab.skeleton_of_spec ast in
        let dead = skeleton_passes ?file sk add in
        let alphabet = List.map (fun r -> r.lr_name) sk.sk_rules in
        pass_checks ?file ~alphabet ~dead env.checks add;
        if deep then begin
          pass_deep ?file ?budget sk add;
          pass_sym ?file ast add;
          pass_flow ?file sk ast add
        end
      with Loc.Error (loc, msg) ->
        add (D.error ?file ~loc ~code:"FSA000" "%s" msg));
     pass_soses ?file ast env add
   with Loc.Error (loc, msg) ->
     add (D.error ?file ~loc ~code:"FSA000" "%s" msg));
  let out = D.sort !ds in
  Fsa_obs.Metrics.incr ~by:(List.length out) c_diagnostics;
  Fsa_obs.Metrics.incr
    ~by:(Int64.to_int (Int64.sub (Fsa_obs.Span.now_ns ()) t0))
    c_wall;
  out

let skeleton_of_apa apa =
  { sk_components =
      List.map (fun (c, init) -> (c, init, Loc.dummy)) (Apa.components apa);
    sk_rules =
      List.map
        (fun r ->
          { lr_name = Apa.rule_name r;
            lr_instance = "";
            lr_component = "";
            lr_takes =
              List.map
                (fun (tk : Apa.take) ->
                  { lt_comp = tk.t_component;
                    lt_pat = tk.t_pattern;
                    lt_consume = tk.t_consume;
                    lt_loc = Loc.dummy })
                r.Apa.r_takes;
            lr_puts =
              List.map
                (fun (p : Apa.put) ->
                  { lp_comp = p.p_component;
                    lp_term = p.p_template;
                    lp_loc = Loc.dummy })
                r.Apa.r_puts;
            (* guards are opaque closures here: treat every rule as
               guarded, which disables race reporting (no false
               positives) but keeps the dead-rule analysis sound *)
            lr_guarded = true;
            lr_guard_vars = [];
            lr_loc = Loc.dummy })
        (Apa.rules apa) }

let apa ?file a =
  Fsa_obs.Span.with_ ~cat:"check" "check.apa" @@ fun () ->
  let ds = ref [] in
  let add d = ds := d :: !ds in
  ignore (skeleton_passes ?file (skeleton_of_apa a) add : string list);
  let out = D.sort !ds in
  Fsa_obs.Metrics.incr ~by:(List.length out) c_diagnostics;
  out

let keep_set ?file ~alphabet names =
  let ds =
    List.filter_map
      (fun name ->
        if List.mem name alphabet then None
        else
          Some
            (D.error ?file ~code:"FSA022"
               "homomorphism keeps %s, which is not in the APA's action \
                alphabet%s"
               name (with_hint alphabet name)))
      names
  in
  if names <> [] && List.length ds = List.length names then
    ds
    @ [ D.warning ?file ~code:"FSA023"
          "the homomorphism erases the entire alphabet: the minimal \
           automaton is a single state and every dependence verdict is \
           vacuous" ]
  else ds

let rename_map ?file ~alphabet pairs =
  (* first binding wins, mirroring the assoc-list semantics of
     [Hom.rename] *)
  let table =
    List.fold_left
      (fun m (x, y) -> if List.mem_assoc x m then m else (x, y) :: m)
      [] pairs
    |> List.rev
  in
  let unknown =
    List.filter_map
      (fun (x, _) ->
        if List.mem x alphabet then None
        else
          Some
            (D.error ?file ~code:"FSA022"
               "homomorphism renames %s, which is not in the APA's action \
                alphabet%s"
               x (with_hint alphabet x)))
      table
  in
  (* group sources by target; untouched alphabet actions count as
     identity sources, so renaming [a] onto an existing action [b]
     merges the two just as mapping both onto a third symbol would *)
  let target x =
    match List.assoc_opt x table with Some y -> y | None -> x
  in
  let sources =
    List.sort_uniq String.compare (List.map fst table @ alphabet)
  in
  let groups = Hashtbl.create 16 in
  List.iter
    (fun x ->
      let t = target x in
      let prev = try Hashtbl.find groups t with Not_found -> [] in
      Hashtbl.replace groups t (x :: prev))
    sources;
  let collisions =
    Hashtbl.fold
      (fun t srcs acc ->
        if List.length srcs > 1 then
          (t, List.sort String.compare srcs) :: acc
        else acc)
      groups []
    |> List.sort compare
  in
  unknown
  @ List.map
      (fun (t, srcs) ->
        D.error ?file ~code:"FSA036"
          "rename map is not injective: %s all map to %s; the merged image \
           identifies behaviours the model distinguishes, so dependence \
           verdicts read off it are meaningless"
          (String.concat ", " srcs) t)
      collisions
