test/test_cyclic.ml: Alcotest Fsa_apa Fsa_hom Fsa_lts Fsa_mc Fsa_term List
