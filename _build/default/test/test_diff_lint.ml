(* Tests for change-impact analysis (Diff) and model linting (Lint). *)

module Term = Fsa_term.Term
module Agent = Fsa_term.Agent
module Action = Fsa_term.Action
module Component = Fsa_model.Component
module Flow = Fsa_model.Flow
module Sos = Fsa_model.Sos
module Lint = Fsa_model.Lint
module Auth = Fsa_requirements.Auth
module Diff = Fsa_requirements.Diff
module Classify = Fsa_requirements.Classify
module S = Fsa_vanet.Scenario

let act role name = Action.make ~actor:(Agent.unindexed role) name

(* ------------------------------------------------------------------ *)
(* Diff                                                                *)
(* ------------------------------------------------------------------ *)

let test_diff_neutral () =
  let d =
    Diff.compare_models ~before:S.two_vehicles ~after:S.two_vehicles ()
  in
  Alcotest.(check bool) "identical models are neutral" true (Diff.is_neutral d);
  Alcotest.(check int) "all requirements kept" 3 (List.length d.Diff.kept)

let test_diff_added_forwarder () =
  (* adding the forwarding hop introduces exactly the GPS_2 requirement *)
  let d =
    Diff.compare_models ~before:S.two_vehicles ~after:S.three_vehicles ()
  in
  Alcotest.(check (list string)) "one added requirement"
    [ "auth(pos(GPS_2, pos), show(HMI_w, warn), D_w)" ]
    (List.map Auth.to_string d.Diff.added);
  Alcotest.(check int) "nothing removed" 0 (List.length d.Diff.removed);
  Alcotest.(check int) "base requirements kept" 3 (List.length d.Diff.kept);
  Alcotest.(check int) "no reclassification" 0 (List.length d.Diff.reclassified)

let test_diff_reclassification () =
  (* same dependency graph, but a flow becomes policy-induced: the
     dependent requirement reclassifies without being added/removed *)
  let mk policy =
    let a = act "A" "input" and b = act "B" "process" and c = act "B" "output" in
    Sos.make "v"
      ~components:
        [ Component.make "A" ~actions:[ a ] ~flows:[];
          Component.make "B" ~actions:[ b; c ]
            ~flows:[ Flow.internal ?policy b c ] ]
      ~links:[ Flow.external_ a b ]
  in
  let d =
    Diff.compare_models ~before:(mk None) ~after:(mk (Some "caching")) ()
  in
  Alcotest.(check int) "no additions" 0 (List.length d.Diff.added);
  Alcotest.(check int) "no removals" 0 (List.length d.Diff.removed);
  (match d.Diff.reclassified with
  | [ rc ] ->
    Alcotest.(check bool) "was safety" true
      (Classify.equal_class rc.Diff.rc_before Classify.Safety_critical);
    Alcotest.(check bool) "now policy" true
      (Classify.equal_class rc.Diff.rc_after (Classify.Policy_induced [ "caching" ]))
  | _ -> Alcotest.fail "one reclassification expected");
  Alcotest.(check bool) "not neutral" false (Diff.is_neutral d)

let test_diff_removed () =
  let d =
    Diff.compare_models ~before:S.three_vehicles ~after:S.two_vehicles ()
  in
  Alcotest.(check int) "one removed" 1 (List.length d.Diff.removed);
  Alcotest.(check bool) "renders" true
    (String.length (Fmt.str "%a" Diff.pp d) > 0)

(* ------------------------------------------------------------------ *)
(* Lint                                                                *)
(* ------------------------------------------------------------------ *)

let test_lint_clean_models () =
  (* the grid model is fan-in heavy but otherwise clean *)
  Alcotest.(check (list string)) "two-vehicle model lints clean" []
    (List.map (Fmt.str "%a" Lint.pp_warning) (Lint.check S.two_vehicles));
  Alcotest.(check int) "grid has no errors" 0
    (List.length (Lint.errors (Fsa_grid.Scenario.demand_response ())))

let test_lint_isolated_action () =
  let a = act "A" "go" and stray = act "A" "stray" in
  let sos =
    Sos.make "iso"
      ~components:[ Component.make "A" ~actions:[ a; stray ] ~flows:[] ]
  in
  let findings = Lint.check sos in
  Alcotest.(check bool) "isolated actions flagged" true
    (List.exists
       (function Lint.Isolated_action _ -> true | _ -> false)
       findings)

let test_lint_unconnected_component () =
  let a = act "A" "out" and b = act "B" "in" and c = act "C" "lonely" in
  let sos =
    Sos.make "uncon"
      ~components:
        [ Component.make "A" ~actions:[ a ] ~flows:[];
          Component.make "B" ~actions:[ b ] ~flows:[];
          Component.make "C" ~actions:[ c ] ~flows:[] ]
      ~links:[ Flow.external_ a b ]
  in
  Alcotest.(check bool) "lonely component flagged" true
    (List.exists
       (function Lint.Unconnected_component "C" -> true | _ -> false)
       (Lint.check sos))

let test_lint_degenerate_boundary () =
  let a = act "A" "solo" in
  let sos =
    Sos.make "deg" ~components:[ Component.make "A" ~actions:[ a ] ~flows:[] ]
  in
  Alcotest.(check bool) "input-and-output action flagged" true
    (List.exists
       (function Lint.Degenerate_boundary_action _ -> true | _ -> false)
       (Lint.check sos));
  Alcotest.(check bool) "it is an error" true (Lint.errors sos <> [])

let test_lint_singleton_policy () =
  Alcotest.(check bool) "forwarding policy used once in fig4" true
    (List.exists
       (function Lint.Singleton_policy _ -> true | _ -> false)
       (Lint.check S.three_vehicles));
  (* with two forwarders the policy is used twice: no warning *)
  Alcotest.(check bool) "no singleton with two forwarders" false
    (List.exists
       (function Lint.Singleton_policy _ -> true | _ -> false)
       (Lint.check (S.chain 4)))

let test_lint_fan_in () =
  let findings = Lint.check Fsa_vanet.Evita.model in
  (* the fusion and logging inputs receive three or more external flows *)
  Alcotest.(check bool) "fan-in flagged on EVITA" true
    (List.exists
       (function Lint.External_fan_in (_, n) -> n >= 3 | _ -> false)
       findings);
  (* but none of the findings are errors *)
  Alcotest.(check int) "EVITA has no lint errors" 0
    (List.length (Lint.errors Fsa_vanet.Evita.model))

let test_lint_report_renders () =
  let a = act "A" "solo" in
  let sos =
    Sos.make "deg" ~components:[ Component.make "A" ~actions:[ a ] ~flows:[] ]
  in
  let text = Fmt.str "%a" Lint.pp_report (Lint.check sos) in
  Alcotest.(check bool) "mentions error" true
    (let sub = "error" in
     let rec contains i =
       i + String.length sub <= String.length text
       && (String.sub text i (String.length sub) = sub || contains (i + 1))
     in
     contains 0);
  Alcotest.(check string) "clean report" "no findings"
    (Fmt.str "%a" Lint.pp_report [])

let suite =
  [ Alcotest.test_case "diff: neutral" `Quick test_diff_neutral;
    Alcotest.test_case "diff: added forwarder" `Quick test_diff_added_forwarder;
    Alcotest.test_case "diff: reclassification" `Quick test_diff_reclassification;
    Alcotest.test_case "diff: removed" `Quick test_diff_removed;
    Alcotest.test_case "lint: clean models" `Quick test_lint_clean_models;
    Alcotest.test_case "lint: isolated action" `Quick test_lint_isolated_action;
    Alcotest.test_case "lint: unconnected component" `Quick test_lint_unconnected_component;
    Alcotest.test_case "lint: degenerate boundary" `Quick test_lint_degenerate_boundary;
    Alcotest.test_case "lint: singleton policy" `Quick test_lint_singleton_policy;
    Alcotest.test_case "lint: external fan-in" `Quick test_lint_fan_in;
    Alcotest.test_case "lint: report rendering" `Quick test_lint_report_renders ]
