lib/core/report.mli: Fsa_model Fsa_term
