lib/mc/monitor.mli: Fmt Fsa_requirements Fsa_term
