(* Experiment harness: regenerates every table and figure of the paper's
   evaluation and reports paper-expected vs. measured values, followed by
   Bechamel micro-benchmarks of the computational kernels.

   Run with: dune exec bench/main.exe
   (pass --no-perf to skip the timing section) *)

module Term = Fsa_term.Term
module Agent = Fsa_term.Agent
module Action = Fsa_term.Action
module Sos = Fsa_model.Sos
module Auth = Fsa_requirements.Auth
module Derive = Fsa_requirements.Derive
module Classify = Fsa_requirements.Classify
module Generalise = Fsa_requirements.Generalise
module Apa = Fsa_apa.Apa
module Lts = Fsa_lts.Lts
module Hom = Fsa_hom.Hom
module Analysis = Fsa_core.Analysis
module S = Fsa_vanet.Scenario
module V = Fsa_vanet.Vehicle_apa
module Evita = Fsa_vanet.Evita

let failures = ref 0

let section id title = Fmt.pr "@.===== [%s] %s =====@." id title

let check id ~expected ~measured pp =
  let ok = expected = measured in
  if not ok then incr failures;
  Fmt.pr "  %-52s paper: %-20s measured: %-20s %s@." id
    (Fmt.str "%a" pp expected)
    (Fmt.str "%a" pp measured)
    (if ok then "OK" else "MISMATCH")

let check_int id ~expected ~measured = check id ~expected ~measured Fmt.int

let check_set id ~expected ~measured =
  let expected = List.sort_uniq String.compare expected in
  let measured = List.sort_uniq String.compare measured in
  let ok = expected = measured in
  if not ok then incr failures;
  Fmt.pr "  %-32s %s@." id (if ok then "OK" else "MISMATCH");
  if not ok then begin
    Fmt.pr "    paper:    @[%a@]@." Fmt.(list ~sep:comma string) expected;
    Fmt.pr "    measured: @[%a@]@." Fmt.(list ~sep:comma string) measured
  end
  else Fmt.pr "    @[%a@]@." Fmt.(list ~sep:comma string) measured

let req_strings reqs = List.map Auth.to_string reqs

(* =================================================================== *)
(* T1 — Table 1: the actions of the example system                     *)
(* =================================================================== *)

let exp_table1 () =
  section "T1" "Table 1: actions of the example system";
  List.iter
    (fun (action, explanation) ->
      Fmt.pr "  %-22s %s@." (Action.to_string action) explanation)
    S.table1;
  check_int "number of action kinds" ~expected:7
    ~measured:(List.length S.table1)

(* =================================================================== *)
(* F1 — Fig. 1: functional component models                            *)
(* =================================================================== *)

let exp_fig1 () =
  section "F1" "Fig. 1: functional component models (RSU, vehicle)";
  Fmt.pr "%a@." Fsa_model.Component.pp S.rsu_component;
  Fmt.pr "%a@." Fsa_model.Component.pp S.vehicle_template;
  check_int "RSU actions" ~expected:1
    ~measured:(List.length (Fsa_model.Component.actions S.rsu_component));
  check_int "vehicle actions" ~expected:6
    ~measured:(List.length (Fsa_model.Component.actions S.vehicle_template));
  check_int "vehicle internal flows" ~expected:6
    ~measured:(List.length (Fsa_model.Component.flows S.vehicle_template))

(* =================================================================== *)
(* F2 — Fig. 2 and Examples 1-2                                        *)
(* =================================================================== *)

let exp_fig2 () =
  section "F2" "Fig. 2 / Examples 1-2: vehicle w receives a warning from the RSU";
  let reqs = Derive.of_sos S.rsu_and_vehicle in
  check_set "requirement set"
    ~expected:
      [ "auth(pos(GPS_w, pos), show(HMI_w, warn), D_w)";
        "auth(send(cam(pos)), show(HMI_w, warn), D_w)" ]
    ~measured:(req_strings reqs)

(* =================================================================== *)
(* F3 — Fig. 3 and Example 3                                           *)
(* =================================================================== *)

let exp_fig3 () =
  section "F3" "Fig. 3 / Example 3: vehicle w receives a warning from vehicle 1";
  let poset = Sos.poset S.two_vehicles in
  let module P = Fsa_model.Action_graph.P in
  check_int "zeta (direct flows)" ~expected:5
    ~measured:(Fsa_model.Action_graph.G.nb_edges (P.base poset));
  check_int "zeta* (incl. reflexive pairs)" ~expected:16
    ~measured:(List.length (P.closure_pairs poset));
  check_set "chi_1 requirements (1)-(3)"
    ~expected:
      [ "auth(pos(GPS_1, pos), show(HMI_w, warn), D_w)";
        "auth(pos(GPS_w, pos), show(HMI_w, warn), D_w)";
        "auth(sense(ESP_1, sW), show(HMI_w, warn), D_w)" ]
    ~measured:(req_strings (Derive.of_sos S.two_vehicles))

(* =================================================================== *)
(* F4 — Fig. 4: forwarding, chi_2, the parameterised family, (1)-(4)   *)
(* =================================================================== *)

let exp_fig4 () =
  section "F4" "Fig. 4: vehicle 2 forwards warnings; chi_2 and requirements (1)-(4)";
  let reqs2 = Derive.of_sos S.two_vehicles in
  let reqs3 = Derive.of_sos S.three_vehicles in
  check_set "chi_2 \\ chi_1"
    ~expected:[ "auth(pos(GPS_2, pos), show(HMI_w, warn), D_w)" ]
    ~measured:(req_strings (Auth.diff reqs3 reqs2));
  (* chi_i = chi_(i-1) + pos(GPS_i) *)
  let growth =
    List.map (fun n -> List.length (Derive.of_sos (S.chain n))) [ 2; 3; 4; 5; 6 ]
  in
  check "chi_i grows by one per forwarder" ~expected:[ 3; 4; 5; 6; 7 ]
    ~measured:growth
    Fmt.(Dump.list int);
  (* first-order generalisation *)
  let union = Derive.of_instances (List.map S.chain [ 2; 3; 4; 5; 6 ]) in
  let gens = Generalise.generalise ~domain_of:S.v_forward_domain union in
  Fmt.pr "  generalised requirement set:@.";
  List.iter (fun g -> Fmt.pr "    %a@." Generalise.pp g) gens;
  check_int "generalised set size (reqs (1)-(4))" ~expected:4
    ~measured:(List.length gens);
  check_int "quantified requirements" ~expected:1
    ~measured:
      (List.length
         (List.filter
            (function Generalise.Forall _ -> true | Generalise.Concrete _ -> false)
            gens));
  (* classification: requirement (4) is availability, not safety *)
  let classified = Classify.classify_all S.three_vehicles reqs3 in
  let availability =
    List.filter
      (fun (_, c) -> not (Classify.equal_class c Classify.Safety_critical))
      classified
  in
  check_set "availability-only requirements (req (4))"
    ~expected:[ "auth(pos(GPS_2, pos), show(HMI_w, warn), D_w)" ]
    ~measured:(List.map (fun (r, _) -> Auth.to_string r) availability)

(* =================================================================== *)
(* F5/F6 — APA models (Fig. 5, Fig. 6 / Example 5)                     *)
(* =================================================================== *)

let exp_fig5_6 () =
  section "F5" "Fig. 5: APA model of a vehicle";
  let v1 = V.vehicle ~esp_init:[ V.sw ] ~gps_init:[ V.pos1 ] 1 in
  Fmt.pr "%a@." Apa.pp v1;
  check_int "state components (esp, gps, bus, hmi, net)" ~expected:5
    ~measured:(List.length (Apa.components v1));
  check_int "elementary automata (full role incl. fwd)" ~expected:6
    ~measured:(List.length (Apa.rules v1));

  section "F6" "Fig. 6 / Example 5: APA SoS instance with two vehicles";
  let apa = V.two_vehicles () in
  check_int "state components" ~expected:9
    ~measured:(List.length (Apa.components apa));
  Fmt.pr "  initial state q0:@.";
  Fmt.pr "%a@." Apa.State.pp (Apa.initial_state apa);
  (* q0 = ({sW}, {pos1}, 0, 0, 0, {pos2}, 0, 0, 0) *)
  let q0 = Apa.initial_state apa in
  check_int "esp1 pending measurement" ~expected:1
    ~measured:(Term.Set.cardinal (Apa.State.get "esp1" q0));
  check_int "gps2 pending position" ~expected:1
    ~measured:(Term.Set.cardinal (Apa.State.get "gps2" q0));
  check_int "net initially empty" ~expected:0
    ~measured:(Term.Set.cardinal (Apa.State.get "net" q0))

(* =================================================================== *)
(* F7 — Fig. 7 / Example 6: reachability graph, minima and maxima      *)
(* =================================================================== *)

let exp_fig7 () =
  section "F7" "Fig. 7 / Example 6: reachability graph of the two-vehicle instance";
  let lts = Lts.explore (V.two_vehicles ()) in
  Fmt.pr "%a@." Lts.pp_min_max lts;
  check_int "states (M-1..M-13)" ~expected:13 ~measured:(Lts.nb_states lts);
  check_int "dead states" ~expected:1 ~measured:(List.length (Lts.deadlocks lts));
  check_set "minima"
    ~expected:[ "V1_sense"; "V1_pos"; "V2_pos" ]
    ~measured:(List.map Action.to_string (Action.Set.elements (Lts.minima lts)));
  check_set "maxima" ~expected:[ "V2_show" ]
    ~measured:(List.map Action.to_string (Action.Set.elements (Lts.maxima lts)));
  let report = Analysis.tool ~stakeholder:V.stakeholder (V.two_vehicles ()) in
  check_set "requirements (Sect. 5.4)"
    ~expected:
      [ "auth(V1_sense, V2_show, D_2)"; "auth(V1_pos, V2_show, D_2)";
        "auth(V2_pos, V2_show, D_2)" ]
    ~measured:(req_strings report.Analysis.t_requirements)

(* =================================================================== *)
(* F8/F9 — Figs. 8-9: four vehicles                                    *)
(* =================================================================== *)

let exp_fig8_9 () =
  section "F8" "Fig. 8: APA SoS instance with four vehicles (two pairs)";
  let apa = V.four_vehicles () in
  check_int "state components (4 vehicles x 4 + 2 nets)" ~expected:18
    ~measured:(List.length (Apa.components apa));
  check_int "elementary automata" ~expected:12
    ~measured:(List.length (Apa.rules apa));

  section "F9" "Fig. 9: reachability graph of the four-vehicle instance";
  let lts = Lts.explore apa in
  Fmt.pr "%a@." Lts.pp_min_max lts;
  check_int "states (169 = 13^2)" ~expected:169 ~measured:(Lts.nb_states lts);
  check_set "minima"
    ~expected:[ "V1_sense"; "V3_sense"; "V1_pos"; "V2_pos"; "V3_pos"; "V4_pos" ]
    ~measured:(List.map Action.to_string (Action.Set.elements (Lts.minima lts)));
  check_set "maxima" ~expected:[ "V2_show"; "V4_show" ]
    ~measured:(List.map Action.to_string (Action.Set.elements (Lts.maxima lts)))

(* =================================================================== *)
(* F10/F11 — minimal automata of homomorphic images                    *)
(* =================================================================== *)

let exp_fig10_11 () =
  let lts = Lts.explore (V.four_vehicles ()) in
  section "F10" "Fig. 10: minimal automaton for (V1_sense, V2_show) — dependent";
  let d10 = Hom.minimal_automaton (Hom.preserve [ V.v_sense 1; V.v_show 2 ]) lts in
  Fmt.pr "%a@." Hom.A.Dfa.pp d10;
  check_int "states (chain: . -sense-> . -show-> .)" ~expected:3
    ~measured:(Hom.A.Dfa.nb_states d10);
  check_int "transitions" ~expected:2 ~measured:(Hom.A.Dfa.nb_transitions d10);
  check "functional dependence detected" ~expected:true
    ~measured:(Hom.depends_abstract lts ~min_action:(V.v_sense 1) ~max_action:(V.v_show 2))
    Fmt.bool;
  check "homomorphism simple" ~expected:true
    ~measured:(Hom.is_simple (Hom.preserve [ V.v_sense 1; V.v_show 2 ]) lts)
    Fmt.bool;

  section "F11" "Fig. 11: minimal automaton for (V1_sense, V4_show) — independent";
  let d11 = Hom.minimal_automaton (Hom.preserve [ V.v_sense 1; V.v_show 4 ]) lts in
  Fmt.pr "%a@." Hom.A.Dfa.pp d11;
  check_int "states (diamond)" ~expected:4 ~measured:(Hom.A.Dfa.nb_states d11);
  check_int "transitions" ~expected:4 ~measured:(Hom.A.Dfa.nb_transitions d11);
  check "independence detected" ~expected:false
    ~measured:(Hom.depends_abstract lts ~min_action:(V.v_sense 1) ~max_action:(V.v_show 4))
    Fmt.bool

(* =================================================================== *)
(* R6 — Sect. 5.5: the requirement set of the four-vehicle scenario    *)
(* =================================================================== *)

let exp_req6 () =
  section "R6" "Sect. 5.5: requirement set of the four-vehicle scenario";
  let report = Analysis.tool ~stakeholder:V.stakeholder (V.four_vehicles ()) in
  check_set "six requirements"
    ~expected:
      [ "auth(V1_sense, V2_show, D_2)"; "auth(V1_pos, V2_show, D_2)";
        "auth(V2_pos, V2_show, D_2)"; "auth(V3_sense, V4_show, D_4)";
        "auth(V3_pos, V4_show, D_4)"; "auth(V4_pos, V4_show, D_4)" ]
    ~measured:(req_strings report.Analysis.t_requirements)

(* =================================================================== *)
(* EV — Sect. 4.4: EVITA-scale statistics                              *)
(* =================================================================== *)

let exp_evita () =
  section "EV" "Sect. 4.4: EVITA application statistics (synthetic model)";
  let p = Evita.paper_profile and m = Evita.measured_profile () in
  check_int "authenticity requirements" ~expected:p.Evita.requirements
    ~measured:m.Evita.requirements;
  check_int "component boundary actions"
    ~expected:p.Evita.component_boundary_actions
    ~measured:m.Evita.component_boundary_actions;
  check_int "system boundary actions" ~expected:p.Evita.system_boundary_actions
    ~measured:m.Evita.system_boundary_actions;
  check_int "maximal elements" ~expected:p.Evita.maximal ~measured:m.Evita.maximal;
  check_int "minimal elements" ~expected:p.Evita.minimal ~measured:m.Evita.minimal

(* =================================================================== *)
(* X1 — cross-validation of the two analysis paths                     *)
(* =================================================================== *)

let exp_crosscheck () =
  section "X1" "Cross-validation: manual path vs tool path";
  List.iter
    (fun (name, apa, sos) ->
      let tool = Analysis.tool ~stakeholder:V.stakeholder apa in
      let direct = Analysis.tool ~meth:Analysis.Direct ~stakeholder:V.stakeholder apa in
      let manual = Analysis.manual sos in
      let c =
        Analysis.crosscheck ~map:V.manual_action_of_label
          ~manual_requirements:manual.Analysis.m_requirements
          ~tool_requirements:tool.Analysis.t_requirements
      in
      check (name ^ ": manual = tool") ~expected:true ~measured:c.Analysis.c_agree
        Fmt.bool;
      check (name ^ ": abstract = direct") ~expected:true
        ~measured:
          (Auth.equal_set tool.Analysis.t_requirements
             direct.Analysis.t_requirements)
        Fmt.bool)
    [ ("two vehicles", V.two_vehicles (), S.chain_concrete 2);
      ("four vehicles", V.four_vehicles (), S.pairs_concrete 2);
      ("chain of 3", V.chain 3, S.chain_concrete 3);
      ("chain of 5", V.chain 5, S.chain_concrete 5) ];
  (* the smart-grid domain, with its own label correspondence *)
  let grid_tool =
    Analysis.tool ~stakeholder:Fsa_grid.Grid_apa.stakeholder
      (Fsa_grid.Grid_apa.demand_response ())
  in
  let grid_manual =
    Analysis.manual ~stakeholder:Fsa_grid.Scenario.stakeholder
      (Fsa_grid.Scenario.demand_response ())
  in
  let grid_check =
    Analysis.crosscheck ~map:Fsa_grid.Grid_apa.manual_action_of_label
      ~manual_requirements:grid_manual.Analysis.m_requirements
      ~tool_requirements:grid_tool.Analysis.t_requirements
  in
  check "smart grid: manual = tool" ~expected:true
    ~measured:grid_check.Analysis.c_agree Fmt.bool

(* =================================================================== *)
(* S1 — scaling series (extension beyond the paper's figures)          *)
(* =================================================================== *)

let exp_scaling () =
  section "S1" "Scaling: state spaces and requirement sets vs. system size";
  Fmt.pr "  %-18s %10s %14s %14s@." "instance" "states" "transitions" "requirements";
  List.iter
    (fun k ->
      let lts = Lts.explore (V.pairs k) in
      let report = Analysis.tool ~stakeholder:V.stakeholder (V.pairs k) in
      Fmt.pr "  %-18s %10d %14d %14d@."
        (Printf.sprintf "pairs(%d)" k)
        (Lts.nb_states lts) (Lts.nb_transitions lts)
        (List.length report.Analysis.t_requirements))
    [ 1; 2; 3; 4 ];
  List.iter
    (fun n ->
      let lts = Lts.explore (V.chain n) in
      let report = Analysis.tool ~stakeholder:V.stakeholder (V.chain n) in
      Fmt.pr "  %-18s %10d %14d %14d@."
        (Printf.sprintf "chain(%d)" n)
        (Lts.nb_states lts) (Lts.nb_transitions lts)
        (List.length report.Analysis.t_requirements))
    [ 2; 3; 4; 5; 6; 7 ];
  (* 13^k law for independent pairs *)
  check_int "pairs(3) states = 13^3" ~expected:2197
    ~measured:(Lts.nb_states (Lts.explore (V.pairs 3)));
  check_int "pairs(4) states = 13^4" ~expected:28561
    ~measured:(Lts.nb_states (Lts.explore (V.pairs 4)))

(* =================================================================== *)
(* E1-E3 — extensions beyond the paper's published experiments          *)
(* =================================================================== *)

let exp_confidentiality () =
  section "E1" "Extension: confidentiality requirements (Sect. 6 future work)";
  let module Conf = Fsa_requirements.Confidentiality in
  (* the dual analysis mirrors chi: one forward-flow requirement per pair *)
  check_int "forward-flow requirements on EVITA = chi pairs" ~expected:29
    ~measured:(List.length (Conf.derive Evita.model));
  let gps_conf =
    { Conf.default_labelling with
      Conf.source_level =
        (fun a ->
          if Action.label a = "gps_acquire" then Conf.Confidential
          else Conf.Public) }
  in
  check_int "outputs reached by the (confidential) position" ~expected:5
    ~measured:
      (List.length
         (Conf.derive ~labelling:gps_conf ~threshold:Conf.Confidential
            Evita.model));
  check_int "clearance violations under internal-only observers" ~expected:5
    ~measured:
      (List.length
         (Conf.violations
            ~labelling:{ gps_conf with Conf.sink_clearance = (fun _ -> Conf.Internal) }
            Evita.model))

let exp_patterns () =
  section "E2" "Extension: requirements as property-specification patterns";
  let module Pattern = Fsa_mc.Pattern in
  let lts = Lts.explore (V.two_vehicles ()) in
  let precedes a b =
    Pattern.make (Pattern.Precedence (Pattern.action_is a, Pattern.action_is b))
  in
  let responds s p =
    Pattern.make (Pattern.Response (Pattern.action_is s, Pattern.action_is p))
  in
  (* the three derived authenticity requirements, as precedence properties *)
  List.iter
    (fun (mn, mx) ->
      check
        (Fmt.str "%a precedes %a" Action.pp mn Action.pp mx)
        ~expected:true
        ~measured:(Pattern.holds lts (precedes mn mx))
        Fmt.bool)
    [ (V.v_sense 1, V.v_show 2); (V.v_pos 1, V.v_show 2); (V.v_pos 2, V.v_show 2) ];
  check "liveness: the warning responds to the sensing" ~expected:true
    ~measured:(Pattern.holds lts (responds (V.v_sense 1) (V.v_show 2)))
    Fmt.bool;
  check "non-requirement rejected (show precedes sense)" ~expected:false
    ~measured:(Pattern.holds lts (precedes (V.v_show 2) (V.v_sense 1)))
    Fmt.bool

let exp_selfsim () =
  section "E3" "Extension: uniform parameterisation and self-similarity (Sect. 6)";
  let module Family = Fsa_param.Family in
  let module Selfsim = Fsa_param.Selfsim in
  check "chain requirement schema uniform for n = 2..7" ~expected:true
    ~measured:(Family.incrementally_uniform ~family:S.chain [ 3; 4; 5; 6; 7 ])
    Fmt.bool;
  let chain_report = Selfsim.check_chain ~range:[ 2; 3; 4; 5 ] () in
  Fmt.pr "%a@." Selfsim.pp_report chain_report;
  check "chain family self-similar (n = 2..5)" ~expected:true
    ~measured:chain_report.Selfsim.self_similar Fmt.bool;
  let pairs_report = Selfsim.check_pairs ~range:[ 1; 2 ] () in
  check "pairs family self-similar (k = 1..2)" ~expected:true
    ~measured:pairs_report.Selfsim.self_similar Fmt.bool

let exp_canonical_apa () =
  section "E5" "Extension: canonical APA of a functional model (tool path for free)";
  let module AoM = Fsa_core.Apa_of_model in
  (* the derived prediction: the tool-path state space of the EVITA model
     equals the number of order ideals of its event poset *)
  let ideals =
    Fsa_model.Action_graph.P.count_ideals (Sos.poset Evita.model)
  in
  let lts = Lts.explore (AoM.compile Evita.model) in
  check_int "EVITA tool-path states = order ideals" ~expected:ideals
    ~measured:(Lts.nb_states lts);
  check_int "states (pinned)" ~expected:80460 ~measured:(Lts.nb_states lts);
  let c =
    AoM.crosscheck ~meth:Analysis.Direct ~stakeholder:Evita.stakeholder
      Evita.model
  in
  check "EVITA: tool path = manual path" ~expected:true
    ~measured:c.Analysis.c_agree Fmt.bool;
  (* the canonical APA of the two-vehicle functional model coincides with
     the hand-written APA's state space *)
  check_int "two-vehicle canonical APA states" ~expected:13
    ~measured:(Lts.nb_states (Lts.explore (AoM.compile S.two_vehicles)))

let exp_platoon () =
  section "E6" "Extension: platooning — quantified families and a cyclic model";
  let module P = Fsa_vanet.Platoon in
  let counts =
    List.map
      (fun n ->
        List.length
          (Derive.of_sos ~stakeholder:P.stakeholder (P.round ~followers:n ())))
      [ 1; 2; 3; 4 ]
  in
  check "requirements = 2n per platoon size" ~expected:[ 2; 4; 6; 8 ]
    ~measured:counts
    Fmt.(Dump.list int);
  let union =
    Derive.of_instances ~stakeholder:P.stakeholder
      (List.map (fun n -> P.round ~followers:n ()) [ 2; 3; 4; 5 ])
  in
  let gens = Generalise.generalise ~domain_of:P.follower_domain union in
  check_int "two co-indexed quantified families" ~expected:2
    ~measured:
      (List.length
         (List.filter
            (function Generalise.Forall _ -> true | Generalise.Concrete _ -> false)
            gens));
  let lts = Lts.explore (P.apa ~followers:2 ()) in
  check_int "cyclic behaviour: no dead states" ~expected:0
    ~measured:(List.length (Lts.deadlocks lts));
  check "dependence survives cycles (ctrl <- beacon)" ~expected:true
    ~measured:
      (Lts.depends_on lts ~max_action:(P.f_ctrl 1) ~min_action:P.l_beacon)
    Fmt.bool

let exp_refinement () =
  section "E4" "Extension: refinement into architectural protection options";
  let module Refine = Fsa_refine.Refine in
  let module AG = Fsa_model.Action_graph in
  let requirements =
    Derive.of_sos ~stakeholder:Evita.stakeholder Evita.model
  in
  let plans = List.map (fun r -> (r, Refine.plan Evita.model r)) requirements in
  check_int "every requirement has a refinement path" ~expected:29
    ~measured:
      (List.length (List.filter (fun (_, p) -> p.Refine.p_paths <> []) plans));
  let cut_disconnects (r, p) =
    let remaining =
      List.filter
        (fun f -> not (List.exists (Fsa_model.Flow.equal f) p.Refine.p_min_cut))
        (Sos.all_flows Evita.model)
    in
    let g = AG.of_flows remaining in
    not
      (AG.G.mem_vertex (Auth.cause r) g
       && AG.G.Vset.mem (Auth.effect r) (AG.G.reachable (Auth.cause r) g))
  in
  check_int "every minimum cut severs its dependency" ~expected:29
    ~measured:(List.length (List.filter cut_disconnects plans));
  let total_cut =
    List.fold_left (fun acc (_, p) -> acc + List.length p.Refine.p_min_cut) 0 plans
  in
  Fmt.pr "  total protection points across all 29 requirements: %d@." total_cut;
  Fmt.pr "  largest attack surface: %d flows@."
    (List.fold_left
       (fun acc (_, p) -> max acc (List.length p.Refine.p_surface))
       0 plans)

(* =================================================================== *)
(* Bechamel micro-benchmarks                                           *)
(* =================================================================== *)

let benchmarks () =
  let open Bechamel in
  let open Toolkit in
  section "PERF" "Bechamel micro-benchmarks (time per run)";
  let evita_graph = Sos.dependency_graph Evita.model in
  let lts4 = Lts.explore (V.four_vehicles ()) in
  let tests =
    [ Test.make ~name:"closure/dfs/evita"
        (Staged.stage (fun () ->
             ignore (Fsa_model.Action_graph.G.transitive_closure evita_graph)));
      Test.make ~name:"closure/warshall/evita"
        (Staged.stage (fun () ->
             ignore
               (Fsa_model.Action_graph.G.transitive_closure_dense evita_graph)));
      Test.make ~name:"reach/2-vehicles"
        (Staged.stage (fun () -> ignore (Lts.explore (V.two_vehicles ()))));
      Test.make ~name:"reach/4-vehicles"
        (Staged.stage (fun () -> ignore (Lts.explore (V.four_vehicles ()))));
      Test.make ~name:"reach/3-pairs"
        (Staged.stage (fun () -> ignore (Lts.explore (V.pairs 3))));
      Test.make ~name:"dependence/direct"
        (Staged.stage (fun () ->
             ignore
               (Lts.depends_on lts4 ~max_action:(V.v_show 2)
                  ~min_action:(V.v_sense 1))));
      Test.make ~name:"dependence/abstract"
        (Staged.stage (fun () ->
             ignore
               (Hom.depends_abstract lts4 ~min_action:(V.v_sense 1)
                  ~max_action:(V.v_show 2))));
      Test.make ~name:"minimal-automaton/4-vehicles"
        (Staged.stage (fun () ->
             ignore
               (Hom.minimal_automaton
                  (Hom.preserve [ V.v_sense 1; V.v_show 2 ])
                  lts4)));
      Test.make ~name:"simplicity-check/4-vehicles"
        (Staged.stage (fun () ->
             ignore (Hom.is_simple (Hom.preserve [ V.v_sense 1; V.v_show 2 ]) lts4)));
      Test.make ~name:"pipeline/manual/evita"
        (Staged.stage (fun () ->
             ignore (Derive.of_sos ~stakeholder:Evita.stakeholder Evita.model)));
      Test.make ~name:"pipeline/tool/4-vehicles"
        (Staged.stage (fun () ->
             ignore (Analysis.tool ~stakeholder:V.stakeholder (V.four_vehicles ()))));
      Test.make ~name:"minimize/hopcroft/4-vehicles"
        (Staged.stage
           (let dfa =
              Hom.A.Dfa.determinize (Hom.image_nfa Hom.identity lts4)
            in
            fun () -> ignore (Hom.A.Dfa.minimize dfa)));
      Test.make ~name:"minimize/moore/4-vehicles"
        (Staged.stage
           (let dfa =
              Hom.A.Dfa.determinize (Hom.image_nfa Hom.identity lts4)
            in
            fun () -> ignore (Hom.A.Dfa.minimize_moore dfa)));
      Test.make ~name:"pattern/precedence/2-vehicles"
        (Staged.stage
           (let module Pattern = Fsa_mc.Pattern in
            let lts2 = Lts.explore (V.two_vehicles ()) in
            let p =
              Pattern.make
                (Pattern.Precedence
                   (Pattern.action_is (V.v_sense 1), Pattern.action_is (V.v_show 2)))
            in
            fun () -> ignore (Pattern.holds lts2 p)));
      Test.make ~name:"selfsim/chain-step/n=3"
        (Staged.stage
           (let module Selfsim = Fsa_param.Selfsim in
            let bigger = Lts.explore (V.chain 4) in
            let smaller = Lts.explore (V.chain 3) in
            fun () ->
              ignore
                (Selfsim.abstraction_equal ~bigger ~smaller
                   ~hom:(Selfsim.chain_hom 3))));
      Test.make ~name:"pipeline/tool/grid"
        (Staged.stage (fun () ->
             ignore
               (Analysis.tool ~stakeholder:Fsa_grid.Grid_apa.stakeholder
                  (Fsa_grid.Grid_apa.demand_response ()))));
      Test.make ~name:"refine/plan/evita"
        (Staged.stage
           (let module Refine = Fsa_refine.Refine in
            let req =
              Auth.make
                ~cause:(Action.of_string_exn "esp_sense(ESP)")
                ~effect:(Action.of_string_exn "log_write(LOG)")
                ~stakeholder:(Agent.unindexed "Backend")
            in
            fun () -> ignore (Refine.plan Evita.model req)));
      Test.make ~name:"confidentiality/evita"
        (Staged.stage (fun () ->
             ignore (Fsa_requirements.Confidentiality.derive Evita.model)));
      Test.make ~name:"ctl/AG-safety/2-vehicles"
        (Staged.stage
           (let lts2 = Lts.explore (V.two_vehicles ()) in
            let f =
              Fsa_mc.Ctl.AG
                (Fsa_mc.Ctl.Implies
                   ( Fsa_mc.Ctl.deadlock,
                     Fsa_mc.Ctl.Not (Fsa_mc.Ctl.enabled_action (V.v_rec 2)) ))
            in
            fun () -> ignore (Fsa_mc.Ctl.On_lts.check lts2 f))) ]
  in
  let grouped = Test.make_grouped ~name:"fsa" ~fmt:"%s %s" tests in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let instances = Instance.[ monotonic_clock ] in
  let raw = Benchmark.all cfg instances grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
  Fmt.pr "  %-42s %16s %8s@." "benchmark" "time/run" "r^2";
  List.iter
    (fun (name, v) ->
      let time =
        match Analyze.OLS.estimates v with
        | Some [ t ] -> t
        | Some _ | None -> nan
      in
      let pp_time ppf ns =
        if Float.is_nan ns then Fmt.string ppf "n/a"
        else if ns > 1e9 then Fmt.pf ppf "%.2f s" (ns /. 1e9)
        else if ns > 1e6 then Fmt.pf ppf "%.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Fmt.pf ppf "%.2f us" (ns /. 1e3)
        else Fmt.pf ppf "%.0f ns" ns
      in
      let r2 =
        match Analyze.OLS.r_square v with Some r -> Fmt.str "%.3f" r | None -> "-"
      in
      Fmt.pr "  %-42s %16s %8s@." name (Fmt.str "%a" pp_time time) r2)
    (List.sort compare rows)

(* =================================================================== *)
(* Machine-readable kernel benchmarks (BENCH_fsa.json)                  *)
(* =================================================================== *)

(* A known-good APA spec for the store round-trip benchmark: the
   two-vehicle scenario's behavioural part, parsed from source so the
   measurement covers the same digest path the CLI and server use. *)
let store_spec_source =
  {|
component Vehicle {
  state esp = { }
  state gps = { }
  state bus = { }
  state hmi = { }
  shared net

  action sense: take esp(_x) -> put bus(_x)
  action pos:   take gps(_p) -> put bus(_p)
  action send:  take bus(sW), take bus(_p) when position(_p)
                -> put net(cam(self, _p))
  action rec:   take net(cam(_v, _p)) when _v != self
                -> put bus(warn(_p))
  action show:  take bus(warn(_p)), take bus(_q)
                when position(_q) && near(_p, _q)
                -> put hmi(warn)
}

instance V1 = Vehicle(1) { esp = { sW }, gps = { pos1 } }
instance V2 = Vehicle(2) { gps = { pos2 } }
|}

(* Millisecond buckets for wall-clock quantiles of whole kernel runs;
   the metrics default buckets top out too low for explorations. *)
let ms_buckets =
  [| 0.5; 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1000.; 2000.; 5000.;
     10000.; 30000. |]

(* Cold vs. warm result-cache round-trip.  The warm run must be a cache
   hit that replays the stored outcome byte-for-byte without touching
   the state space — a miss or a divergent replay is a correctness
   failure of the store, not a perf regression, and fails the harness. *)
let bench_store () =
  let module Metrics = Fsa_obs.Metrics in
  let module Server = Fsa_server.Server in
  let module Store = Fsa_store.Store in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "fsa-bench-store-%Ld" (Fsa_obs.Span.now_ns ()))
  in
  let store = Store.open_ ~dir () in
  let cfg = Server.config ~store () in
  let spec = Fsa_spec.Parser.parse_string store_spec_source in
  let time f =
    let t0 = Fsa_obs.Span.now_ns () in
    let r = f () in
    (r, Int64.sub (Fsa_obs.Span.now_ns ()) t0)
  in
  let run () = Server.Exec.run cfg ~op:Server.Exec.Reach ~file:"<bench>" spec in
  let cold, cold_ns = time run in
  let warm, warm_ns = time run in
  let hit = (not cold.Server.Exec.oc_cached) && warm.Server.Exec.oc_cached in
  let identical =
    String.equal cold.Server.Exec.oc_output warm.Server.Exec.oc_output
  in
  if not (hit && identical) then incr failures;
  (* warm-read latency distribution: repeated cache hits over the same
     entry, reported as interpolated quantiles *)
  let warm_reads = 12 in
  let h_warm = Metrics.histogram ~buckets:ms_buckets "bench.store.warm_ms" in
  let was_enabled = Metrics.enabled () in
  Metrics.set_enabled true;
  for _ = 1 to warm_reads do
    let _, ns = time run in
    Metrics.observe h_warm (Int64.to_float ns /. 1e6)
  done;
  let warm_p50 = Metrics.quantile h_warm 0.5 in
  let warm_p99 = Metrics.quantile h_warm 0.99 in
  Metrics.set_enabled was_enabled;
  (try
     Array.iter
       (fun f -> Sys.remove (Filename.concat dir f))
       (Sys.readdir dir);
     Sys.rmdir dir
   with Sys_error _ -> ());
  Fmt.pr
    "  %-24s cold %a  warm %a  warm p50 %.2f ms  p99 %.2f ms  hit: %s  \
     identical: %s@."
    "store/reach" Fsa_obs.Span.pp_dur cold_ns Fsa_obs.Span.pp_dur warm_ns
    warm_p50 warm_p99
    (if hit then "OK" else "MISS")
    (if identical then "OK" else "MISMATCH");
  Printf.sprintf
    "    \"reach\": {\"cold_wall_ns\": %Ld, \"warm_wall_ns\": %Ld, \
     \"warm_hit\": %b, \"replay_identical\": %b, \"warm_reads\": %d, \
     \"warm_p50_ms\": %.3f, \"warm_p99_ms\": %.3f}"
    cold_ns warm_ns hit identical warm_reads warm_p50 warm_p99

(* Static dependence pruning: run the tool path with and without
   --prune-static over the example systems.  The pruned report must be
   identical — pruning only skips (min, max) pairs whose dependence the
   token-flow analysis proves negative — so a divergence is a soundness
   failure of Fsa_struct, not a perf regression, and fails the harness. *)
let bench_struct () =
  let module Metrics = Fsa_obs.Metrics in
  let module Structural = Fsa_struct.Structural in
  let pairs_pruned = Structural.pairs_pruned in
  Metrics.set_enabled true;
  let systems =
    [ ("two-vehicles", V.stakeholder, fun () -> V.two_vehicles ());
      ("four-vehicles", V.stakeholder, fun () -> V.four_vehicles ());
      ("grid", Fsa_grid.Grid_apa.stakeholder,
       fun () -> Fsa_grid.Grid_apa.demand_response ()) ]
  in
  let rows =
    List.map
      (fun (name, stakeholder, mk) ->
        let apa = mk () in
        let t0 = Fsa_obs.Span.now_ns () in
        let plain = Analysis.tool ~stakeholder apa in
        let plain_ns = Int64.sub (Fsa_obs.Span.now_ns ()) t0 in
        Metrics.reset ();
        let t0 = Fsa_obs.Span.now_ns () in
        let pruned = Analysis.tool ~prune:true ~stakeholder apa in
        let pruned_ns = Int64.sub (Fsa_obs.Span.now_ns ()) t0 in
        let skipped = Metrics.counter_value pairs_pruned in
        let equal =
          Auth.equal_set plain.Analysis.t_requirements
            pruned.Analysis.t_requirements
        in
        if not equal then incr failures;
        Fmt.pr "  %-24s plain %a  pruned %a  skipped %d  identical: %s@."
          name Fsa_obs.Span.pp_dur plain_ns Fsa_obs.Span.pp_dur pruned_ns
          skipped
          (if equal then "OK" else "MISMATCH");
        Printf.sprintf
          "    \"%s\": {\"wall_ns_unpruned\": %Ld, \"wall_ns_pruned\": %Ld, \
           \"pairs_pruned\": %d, \"pruned_equal\": %b}"
          name plain_ns pruned_ns skipped equal)
      systems
  in
  Metrics.set_enabled false;
  Metrics.reset ();
  rows

(* Provenance stamp: a benchmark number without the revision, host and
   core count that produced it cannot be compared against later runs. *)
let bench_meta () =
  let git_rev =
    try
      let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
      let line = try input_line ic with End_of_file -> "unknown" in
      match Unix.close_process_in ic with
      | Unix.WEXITED 0 -> line
      | _ -> "unknown"
    with Unix.Unix_error _ | Sys_error _ -> "unknown"
  in
  let hostname = try Unix.gethostname () with Unix.Unix_error _ -> "unknown" in
  let tm = Unix.gmtime (Unix.time ()) in
  let timestamp =
    Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
      (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
      tm.Unix.tm_sec
  in
  Printf.sprintf
    "    \"git_rev\": %S,\n    \"hostname\": %S,\n    \"domains\": %d,\n\
    \    \"timestamp\": %S"
    git_rev hostname
    (Domain.recommended_domain_count ())
    timestamp

(* Symmetry / partial-order reduction: run the tool path unreduced and
   under --reduce sym+por over uniform pair fleets.  Two gates, both
   soundness gates of Fsa_sym rather than perf regressions: the reduced
   requirement set must be identical to the unreduced one, and the
   quotient must explore at most 25% of the full state count (the
   reduction claim the docs make for EVITA-scale fleets). *)
let bench_reduction () =
  let module Sym = Fsa_sym.Sym in
  (* the 25% claim is for EVITA-scale fleets (k >= 3 pairs); the k = 2
     instance is bounded below by C(14,2)/13^2 = 54% for symmetry alone,
     so it gets a looser bound and mainly guards requirement equality *)
  let systems =
    [ ("pairs-2-uniform", 0.50, fun () -> V.pairs ~uniform:true 2);
      ("pairs-3-uniform", 0.25, fun () -> V.pairs ~uniform:true 3) ]
  in
  List.map
    (fun (name, bound, mk) ->
      let apa = mk () in
      let time f =
        let t0 = Fsa_obs.Span.now_ns () in
        let r = f () in
        (r, Int64.sub (Fsa_obs.Span.now_ns ()) t0)
      in
      let full, full_ns =
        time (fun () -> Analysis.tool ~stakeholder:V.stakeholder apa)
      in
      let pl = Sym.plan ~guard_sig:V.guard_attest Sym.Sym_por apa in
      let red, red_ns =
        time (fun () ->
            Analysis.tool ~stakeholder:V.stakeholder ~reduce:pl apa)
      in
      let full_states = Lts.nb_states full.Analysis.t_lts in
      let red_states, fallback =
        match red.Analysis.t_reduction with
        | Some ri ->
          (ri.Analysis.ri_reduced_states, ri.Analysis.ri_fallback <> None)
        | None -> (Lts.nb_states red.Analysis.t_lts, true)
      in
      let ratio =
        if full_states > 0 then
          float_of_int red_states /. float_of_int full_states
        else 1.
      in
      let reqs r =
        List.sort String.compare (req_strings r.Analysis.t_requirements)
      in
      let identical = reqs full = reqs red in
      let ok = identical && (not fallback) && ratio <= bound in
      if not ok then incr failures;
      Fmt.pr
        "  %-24s full %d states %a  reduced %d states %a  ratio %.3f  \
         identical: %s@."
        name full_states Fsa_obs.Span.pp_dur full_ns red_states
        Fsa_obs.Span.pp_dur red_ns ratio
        (if ok then "OK"
         else if not identical then "MISMATCH"
         else if fallback then "FALLBACK"
         else "RATIO");
      Printf.sprintf
        "    \"%s\": {\"kind\": \"sym+por\", \"full_states\": %d, \
         \"reduced_states\": %d, \"ratio\": %.4f, \"ratio_bound\": %.2f, \
         \"full_wall_ns\": %Ld, \"reduced_wall_ns\": %Ld, \
         \"requirements_equal\": %b, \"fallback\": %b, \"ok\": %b}"
        name full_states red_states ratio bound full_ns red_ns identical
        fallback ok)
    systems

(* Shared multi-pair abstraction engine: the tool path over the EVITA
   fleet spec with the engine on and off.  Two gates: the rendered
   requirement reports must be byte-identical (the engine is a pure
   optimisation), and the shared pass must be at least 2x faster than
   the legacy per-pair path — one erase/determinise/minimise over the
   union alphabet instead of one per surviving pair. *)
let bench_abstraction () =
  let spec_path =
    List.find_opt Sys.file_exists
      [ "examples/specs/evita_fleet.fsa";
        "../examples/specs/evita_fleet.fsa" ]
  in
  match spec_path with
  | None ->
    incr failures;
    Fmt.pr "  %-24s evita_fleet.fsa not found@." "abstraction/evita-fleet";
    "    \"evita-fleet\": {\"ok\": false, \"error\": \"spec not found\"}"
  | Some path ->
    let spec = Fsa_spec.Parser.parse_file path in
    let apa = Fsa_spec.Elaborate.apa_of_spec spec in
    let stakeholder = Fsa_requirements.Derive.default_stakeholder in
    let time f =
      let t0 = Fsa_obs.Span.now_ns () in
      let r = f () in
      (r, Int64.sub (Fsa_obs.Span.now_ns ()) t0)
    in
    let legacy, legacy_ns =
      time (fun () -> Analysis.tool ~shared:false ~stakeholder apa)
    in
    let shared, shared_ns =
      time (fun () -> Analysis.tool ~stakeholder apa)
    in
    let report r = Fmt.str "%a" Analysis.pp_tool_report r in
    let identical = String.equal (report legacy) (report shared) in
    let speedup =
      if Int64.compare shared_ns 0L > 0 then
        Int64.to_float legacy_ns /. Int64.to_float shared_ns
      else 0.
    in
    let alphabet, dfa_states, early =
      match shared.Analysis.t_timings.Analysis.ph_shared with
      | Some s ->
        (s.Analysis.sh_alphabet_size, s.Analysis.sh_dfa_states,
         s.Analysis.sh_early_pairs)
      | None -> (0, 0, 0)
    in
    let min_speedup = 2.0 in
    let ok = identical && dfa_states > 0 && speedup >= min_speedup in
    if not ok then incr failures;
    Fmt.pr
      "  %-24s legacy %a  shared %a  speedup %.2fx  quotient %d states  \
       early %d  identical: %s@."
      "abstraction/evita-fleet" Fsa_obs.Span.pp_dur legacy_ns
      Fsa_obs.Span.pp_dur shared_ns speedup dfa_states early
      (if ok then "OK"
       else if not identical then "MISMATCH"
       else if dfa_states = 0 then "NO-ENGINE"
       else "SLOW");
    Printf.sprintf
      "    \"evita-fleet\": {\"legacy_wall_ns\": %Ld, \"shared_wall_ns\": \
       %Ld, \"speedup\": %.3f, \"min_speedup\": %.2f, \"alphabet\": %d, \
       \"quotient_states\": %d, \"early_pairs\": %d, \"reports_equal\": \
       %b, \"ok\": %b}"
      legacy_ns shared_ns speedup min_speedup alphabet dfa_states early
      identical ok

(* Report-generation overhead: building the Fsa_report view (sos
   mapping, one shared projection engine for the per-item automata, the
   traceability matrix and both emissions) must stay marginal next to
   the requirements run it annotates — the gate is 5% of the tool-path
   wall time, with a small absolute allowance so a cache-warm tool run
   cannot fail the harness on noise alone.  Emission must also be
   deterministic: two builds over the same run agree byte-for-byte. *)
let bench_report () =
  let module R = Fsa_report.Report in
  let spec_path =
    List.find_opt Sys.file_exists
      [ "examples/specs/evita_fleet.fsa";
        "../examples/specs/evita_fleet.fsa" ]
  in
  match spec_path with
  | None ->
    incr failures;
    Fmt.pr "  %-24s evita_fleet.fsa not found@." "report/evita-fleet";
    "    \"evita-fleet\": {\"ok\": false, \"error\": \"spec not found\"}"
  | Some path ->
    let spec = Fsa_spec.Parser.parse_file path in
    let apa = Fsa_spec.Elaborate.apa_of_spec spec in
    let time f =
      let t0 = Fsa_obs.Span.now_ns () in
      let r = f () in
      (r, Int64.sub (Fsa_obs.Span.now_ns ()) t0)
    in
    let tool, tool_ns =
      time (fun () ->
          Analysis.tool
            ~stakeholder:Fsa_requirements.Derive.default_stakeholder apa)
    in
    let build () =
      R.of_tool
        ~origins:
          (R.origins_of_skeleton (Fsa_spec.Elaborate.skeleton_of_spec spec))
        ~soses:(Fsa_spec.Elaborate.sos_list spec)
        ~alphabet:(Fsa_apa.Apa.rule_names apa)
        ~digest:
          (Fsa_spec.Elaborate.digest_of_spec ~parts:[ `Apa; `Models ] spec)
        ~settings:
          { R.sg_path = "tool";
            sg_method = "abstract";
            sg_engine = "shared-v1";
            sg_reduce = "none";
            sg_prune = "none";
            sg_max_states = 1_000_000 }
        tool
    in
    let r1, report_ns =
      time (fun () ->
          let r = build () in
          ignore (R.to_json_string r);
          ignore (R.to_markdown r);
          r)
    in
    let r2 = build () in
    let deterministic =
      String.equal (R.to_json_string r1) (R.to_json_string r2)
      && String.equal (R.to_markdown r1) (R.to_markdown r2)
    in
    let ratio =
      if Int64.compare tool_ns 0L > 0 then
        Int64.to_float report_ns /. Int64.to_float tool_ns
      else 0.
    in
    let max_ratio = 0.05 in
    let slack_ns = 50_000_000L in
    let ok =
      deterministic
      && List.length r1.R.r_items > 0
      && (ratio <= max_ratio || Int64.compare report_ns slack_ns <= 0)
    in
    if not ok then incr failures;
    Fmt.pr
      "  %-24s tool %a  report %a  ratio %.4f  items %d  deterministic: %s@."
      "report/evita-fleet" Fsa_obs.Span.pp_dur tool_ns Fsa_obs.Span.pp_dur
      report_ns ratio
      (List.length r1.R.r_items)
      (if ok then "OK"
       else if not deterministic then "NONDETERMINISTIC"
       else if r1.R.r_items = [] then "EMPTY"
       else "SLOW");
    Printf.sprintf
      "    \"evita-fleet\": {\"tool_wall_ns\": %Ld, \"report_wall_ns\": \
       %Ld, \"ratio\": %.5f, \"max_ratio\": %.2f, \"requirements\": %d, \
       \"deterministic\": %b, \"ok\": %b}"
      tool_ns report_ns ratio max_ratio
      (List.length r1.R.r_items)
      deterministic ok

(* Flow-pruning overhead and soundness on the fleet spec: building the
   guard-refined def-use graph and running the pruned dependence matrix
   must (a) leave the requirements report byte-identical to the
   unpruned run, (b) actually skip pairs (attributed "static-flow"),
   and (c) cost at most 5% of the full requirements run — with the same
   absolute allowance as the report gate, so a cache-warm tool run
   cannot fail the harness on noise alone. *)
let bench_flow () =
  let module Flow = Fsa_flow.Flow in
  let spec_path =
    List.find_opt Sys.file_exists
      [ "examples/specs/evita_fleet.fsa";
        "../examples/specs/evita_fleet.fsa" ]
  in
  match spec_path with
  | None ->
    incr failures;
    Fmt.pr "  %-24s evita_fleet.fsa not found@." "flow/evita-fleet";
    "    \"evita-fleet\": {\"ok\": false, \"error\": \"spec not found\"}"
  | Some path ->
    let spec = Fsa_spec.Parser.parse_file path in
    let apa = Fsa_spec.Elaborate.apa_of_spec spec in
    let stakeholder = Fsa_requirements.Derive.default_stakeholder in
    let time f =
      let t0 = Fsa_obs.Span.now_ns () in
      let r = f () in
      (r, Int64.sub (Fsa_obs.Span.now_ns ()) t0)
    in
    let base, base_ns = time (fun () -> Analysis.tool ~stakeholder apa) in
    let flow, flow_ns =
      time (fun () ->
          Flow.build
            ~attribution:
              (Fsa_check.Check.flow_attribution
                 (Fsa_spec.Elaborate.skeleton_of_spec spec))
            apa)
    in
    let pruned_run, pruned_ns =
      time (fun () -> Analysis.tool ~flow ~stakeholder apa)
    in
    let render r = Fmt.str "%a" Analysis.pp_tool_report r in
    let identical = String.equal (render base) (render pruned_run) in
    let pruned =
      List.length
        (List.filter
           (fun p ->
             match p.Analysis.pt_pruned_by with
             | Some by -> String.equal by "static-flow"
             | None -> false)
           pruned_run.Analysis.t_timings.Analysis.ph_pairs)
    in
    let ratio =
      if Int64.compare base_ns 0L > 0 then
        Int64.to_float flow_ns /. Int64.to_float base_ns
      else 0.
    in
    let max_ratio = 0.05 in
    let slack_ns = 50_000_000L in
    let ok =
      identical && pruned > 0
      && (ratio <= max_ratio || Int64.compare flow_ns slack_ns <= 0)
    in
    if not ok then incr failures;
    Fmt.pr
      "  %-24s tool %a  flow %a  pruned tool %a  ratio %.4f  \
       pairs pruned %d  identical: %s@."
      "flow/evita-fleet" Fsa_obs.Span.pp_dur base_ns Fsa_obs.Span.pp_dur
      flow_ns Fsa_obs.Span.pp_dur pruned_ns ratio pruned
      (if ok then "OK"
       else if not identical then "MISMATCH"
       else if pruned = 0 then "NO-PRUNING"
       else "SLOW");
    Printf.sprintf
      "    \"evita-fleet\": {\"tool_wall_ns\": %Ld, \"flow_wall_ns\": %Ld, \
       \"pruned_tool_wall_ns\": %Ld, \"ratio\": %.5f, \"max_ratio\": %.2f, \
       \"pairs_pruned\": %d, \"reports_equal\": %b, \"ok\": %b}"
      base_ns flow_ns pruned_ns ratio max_ratio pruned identical ok

(* Observability overhead on the vanet pairs-4 exploration, three
   configurations interleaved (min-of-N keeps scheduler noise out):

     disabled  the whole stack off — the reference cost
     base      metrics, spans and the flight recorder on (the registry
               the pre-tracing code already paid for)
     traced    base plus a live per-request trace context, as the
               serving layer runs it

   The gate is traced vs. base: the request tracing and flight-recorder
   machinery must stay within a few percent of the plain instrumented
   run, or it is a regression and fails the harness. *)
let bench_obs () =
  let module Metrics = Fsa_obs.Metrics in
  let module Span = Fsa_obs.Span in
  let module Recorder = Fsa_obs.Recorder in
  let apa = V.pairs 4 in
  let runs = 3 in
  let time f =
    let t0 = Span.now_ns () in
    f ();
    Int64.sub (Span.now_ns ()) t0
  in
  let clean () =
    Metrics.reset ();
    Span.reset ();
    Recorder.reset ()
  in
  let disabled = ref Int64.max_int in
  let base = ref Int64.max_int in
  let traced = ref Int64.max_int in
  let keep_min cell ns = if Int64.compare ns !cell < 0 then cell := ns in
  for _ = 1 to runs do
    Metrics.set_enabled false;
    keep_min disabled (time (fun () -> ignore (Lts.explore apa)));
    clean ();
    Metrics.set_enabled true;
    keep_min base (time (fun () -> ignore (Lts.explore apa)));
    clean ();
    keep_min traced
      (time (fun () ->
           Span.with_trace ~trace_id:"bench-obs" (fun () ->
               ignore (Lts.explore apa))))
  done;
  Metrics.set_enabled false;
  clean ();
  let ratio =
    if Int64.compare !base 0L > 0 then
      Int64.to_float !traced /. Int64.to_float !base
    else 1.
  in
  (* absolute slack shields short runs, where a single scheduler blip
     dwarfs any plausible instrumentation cost *)
  let ok =
    ratio <= 1.05
    || Int64.compare (Int64.sub !traced !base) 50_000_000L <= 0
  in
  if not ok then incr failures;
  Fmt.pr
    "  %-24s disabled %a  base %a  traced %a  overhead %.3fx  %s@."
    "obs/pairs-4" Fsa_obs.Span.pp_dur !disabled Fsa_obs.Span.pp_dur !base
    Fsa_obs.Span.pp_dur !traced ratio
    (if ok then "OK" else "REGRESSION");
  Printf.sprintf
    "    \"workload\": \"explore/pairs-4\",\n\
    \    \"runs\": %d,\n\
    \    \"disabled_wall_ns\": %Ld,\n\
    \    \"base_wall_ns\": %Ld,\n\
    \    \"traced_wall_ns\": %Ld,\n\
    \    \"overhead_ratio\": %.4f,\n\
    \    \"overhead_ok\": %b"
    runs !disabled !base !traced ratio ok

(* One wall-clock measurement per pipeline kernel, with the key counters
   of the run (states explored, transitions, requirements derived,
   APA rules tried, dedup hits).  Written as JSON so later PRs have a
   perf trajectory to compare against. *)
let bench_json path =
  section "JSON" (Printf.sprintf "machine-readable kernel benchmarks -> %s" path);
  let module Metrics = Fsa_obs.Metrics in
  let rules_tried = Metrics.counter "apa.rules_tried" in
  let dedup_hits = Metrics.counter "lts.dedup_hits" in
  Metrics.set_enabled true;
  let kernels =
    [ ("tool/two-vehicles", fun () -> Analysis.tool ~stakeholder:V.stakeholder (V.two_vehicles ()));
      ("tool/four-vehicles", fun () -> Analysis.tool ~stakeholder:V.stakeholder (V.four_vehicles ()));
      ("tool/pairs-3", fun () -> Analysis.tool ~stakeholder:V.stakeholder (V.pairs 3));
      ("tool/chain-5", fun () -> Analysis.tool ~stakeholder:V.stakeholder (V.chain 5));
      ("tool/grid", fun () ->
         Analysis.tool ~stakeholder:Fsa_grid.Grid_apa.stakeholder
           (Fsa_grid.Grid_apa.demand_response ())) ]
  in
  let rows =
    List.map
      (fun (name, kernel) ->
        Metrics.reset ();
        let t0 = Fsa_obs.Span.now_ns () in
        let report = kernel () in
        let wall_ns = Int64.sub (Fsa_obs.Span.now_ns ()) t0 in
        Fmt.pr "  %-24s %a@." name Fsa_obs.Span.pp_dur wall_ns;
        Printf.sprintf
          "    \"%s\": {\"wall_ns\": %Ld, \"states\": %d, \"transitions\": %d, \
           \"requirements\": %d, \"rules_tried\": %d, \"dedup_hits\": %d}"
          name wall_ns
          (Lts.nb_states report.Analysis.t_lts)
          (Lts.nb_transitions report.Analysis.t_lts)
          (List.length report.Analysis.t_requirements)
          (Metrics.counter_value rules_tried)
          (Metrics.counter_value dedup_hits))
      kernels
  in
  Metrics.set_enabled false;
  Metrics.reset ();
  (* sequential vs. parallel exploration throughput.  The parallel graph
     must be identical to the sequential one — a divergence is a
     correctness failure of explore_par, not a perf regression, and fails
     the harness. *)
  let jobs = 4 in
  let explorations =
    [ ("pairs-4", fun () -> V.pairs 4);
      ("grid", fun () -> Fsa_grid.Grid_apa.demand_response ()) ]
  in
  let exploration_rows =
    List.map
      (fun (name, mk) ->
        let apa = mk () in
        let t0 = Fsa_obs.Span.now_ns () in
        let seq = Lts.explore apa in
        let seq_ns = Int64.sub (Fsa_obs.Span.now_ns ()) t0 in
        let t0 = Fsa_obs.Span.now_ns () in
        let par = Lts.explore_par ~jobs apa in
        let par_ns = Int64.sub (Fsa_obs.Span.now_ns ()) t0 in
        let equal =
          Lts.nb_states seq = Lts.nb_states par
          && Lts.transitions seq = Lts.transitions par
        in
        if not equal then incr failures;
        (* run-to-run spread of the sequential exploration, as
           interpolated quantiles over a small sample.  The timed runs
           themselves stay unmetered: recording is switched on only for
           the observation itself. *)
        let h =
          Metrics.histogram ~buckets:ms_buckets
            (Printf.sprintf "bench.explore.%s_ms" name)
        in
        let observe_ms ns =
          Metrics.set_enabled true;
          Metrics.observe h (Int64.to_float ns /. 1e6);
          Metrics.set_enabled false
        in
        observe_ms seq_ns;
        for _ = 1 to 2 do
          let t0 = Fsa_obs.Span.now_ns () in
          ignore (Lts.explore apa);
          observe_ms (Int64.sub (Fsa_obs.Span.now_ns ()) t0)
        done;
        let p50 = Metrics.quantile h 0.5 in
        let p99 = Metrics.quantile h 0.99 in
        let rate ns =
          let s = Int64.to_float ns /. 1e9 in
          if s > 0. then float_of_int (Lts.nb_states seq) /. s else 0.
        in
        let speedup =
          if Int64.compare par_ns 0L > 0 then
            Int64.to_float seq_ns /. Int64.to_float par_ns
          else 0.
        in
        Fmt.pr
          "  %-24s seq %a  par(%d) %a  speedup %.2fx  p50 %.1f ms  \
           p99 %.1f ms  identical: %s@."
          name Fsa_obs.Span.pp_dur seq_ns jobs Fsa_obs.Span.pp_dur par_ns
          speedup p50 p99
          (if equal then "OK" else "MISMATCH");
        Printf.sprintf
          "    \"%s\": {\"seq_wall_ns\": %Ld, \"par_wall_ns\": %Ld, \
           \"states\": %d, \"seq_states_per_sec\": %.1f, \
           \"par_states_per_sec\": %.1f, \"speedup\": %.3f, \
           \"seq_p50_ms\": %.3f, \"seq_p99_ms\": %.3f, \"par_equal\": %b}"
          name seq_ns par_ns (Lts.nb_states seq) (rate seq_ns) (rate par_ns)
          speedup p50 p99 equal)
      explorations
  in
  let struct_rows = bench_struct () in
  let reduction_rows = bench_reduction () in
  let abstraction_row = bench_abstraction () in
  let report_row = bench_report () in
  let flow_row = bench_flow () in
  let store_row = bench_store () in
  let obs_row = bench_obs () in
  let meta_row = bench_meta () in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "{\n  \"schema\": \"fsa-bench/1\",\n  \"meta\": {\n";
      output_string oc meta_row;
      output_string oc "\n  },\n  \"kernels\": {\n";
      output_string oc (String.concat ",\n" rows);
      output_string oc "\n  },\n";
      output_string oc
        (Printf.sprintf "  \"exploration\": {\n    \"jobs\": %d,\n" jobs);
      output_string oc (String.concat ",\n" exploration_rows);
      output_string oc "\n  },\n  \"struct\": {\n";
      output_string oc (String.concat ",\n" struct_rows);
      output_string oc "\n  },\n  \"reduction\": {\n";
      output_string oc (String.concat ",\n" reduction_rows);
      output_string oc "\n  },\n  \"abstraction\": {\n";
      output_string oc abstraction_row;
      output_string oc "\n  },\n  \"report\": {\n";
      output_string oc report_row;
      output_string oc "\n  },\n  \"flow\": {\n";
      output_string oc flow_row;
      output_string oc "\n  },\n  \"store\": {\n";
      output_string oc store_row;
      output_string oc "\n  },\n  \"obs\": {\n";
      output_string oc obs_row;
      output_string oc "\n  }\n}\n");
  Fmt.pr "  wrote %s@." path

let () =
  let run_perf = not (Array.exists (String.equal "--no-perf") Sys.argv) in
  let json_out =
    let rec find = function
      | "--json" :: path :: _ -> Some path
      | _ :: rest -> find rest
      | [] -> None
    in
    find (Array.to_list Sys.argv)
  in
  Fmt.pr
    "Functional security analysis — experiment reproduction harness@.\
     Paper: Fuchs & Rieke, DSN-W 2009.@.";
  exp_table1 ();
  exp_fig1 ();
  exp_fig2 ();
  exp_fig3 ();
  exp_fig4 ();
  exp_fig5_6 ();
  exp_fig7 ();
  exp_fig8_9 ();
  exp_fig10_11 ();
  exp_req6 ();
  exp_evita ();
  exp_crosscheck ();
  exp_scaling ();
  exp_confidentiality ();
  exp_patterns ();
  exp_selfsim ();
  exp_canonical_apa ();
  exp_platoon ();
  exp_refinement ();
  if run_perf then benchmarks ();
  Option.iter bench_json json_out;
  Fmt.pr "@.===== summary =====@.";
  if !failures = 0 then Fmt.pr "All experiment checks passed.@."
  else begin
    Fmt.pr "%d experiment check(s) FAILED.@." !failures;
    exit 1
  end
