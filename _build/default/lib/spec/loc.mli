(** Source locations and located errors of the specification language. *)

type t = { line : int; col : int }

val dummy : t
val pp : t Fmt.t

exception Error of t * string

val error : t -> ('a, Format.formatter, unit, 'b) format4 -> 'a
val pp_exn : (t * string) Fmt.t
