lib/sim/sim.mli: Fmt Fsa_apa Fsa_requirements Fsa_term
