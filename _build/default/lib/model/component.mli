(** Functional component models (Sect. 4.1 of the paper).

    A component model describes one system component in isolation: its
    atomic actions, the internal functional flow among them, and its
    declared interaction points (ports).  Templates carry a symbolic
    instance index and can be instantiated any number of times. *)

module Action = Fsa_term.Action

type port = { port_action : Action.t; direction : [ `In | `Out ] }

type t = {
  name : string;
  param : string option;
  actions : Action.t list;
  flows : Flow.t list;
  ports : port list;
}

type error =
  | Unknown_action of string * Action.t
  | External_flow_in_component of Flow.t
  | Duplicate_action of Action.t

val pp_error : error Fmt.t
val validate : t -> (unit, error list) result

val make :
  ?param:string ->
  ?ports:port list ->
  actions:Action.t list ->
  flows:Flow.t list ->
  string ->
  t
(** @raise Invalid_argument when the component is ill-formed. *)

val name : t -> string
val actions : t -> Action.t list
val flows : t -> Flow.t list
val ports : t -> port list
val is_template : t -> bool

val boundary_actions : t -> Action.t list
(** Sources and sinks of the internal flow graph, plus declared ports: the
    actions that interact with the component's environment. *)

val inputs : t -> Action.t list
val outputs : t -> Action.t list

val instantiate : ?short_name:string -> t -> int -> t
(** [instantiate t i] replaces the template's symbolic index by the
    concrete index [i]; the instance is named ["<short_name>_<i>"]. *)

val with_symbolic_index : t -> string -> t
(** Alpha-convert the template's symbolic index (e.g. to [w]). *)

val pp : t Fmt.t
