test/test_threat.ml: Alcotest Fmt Fsa_model Fsa_refine Fsa_requirements Fsa_term Fsa_vanet List String
