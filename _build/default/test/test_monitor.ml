(* Tests for Fsa_mc.Monitor: runtime verification of requirements, and
   for the export formats. *)

module Action = Fsa_term.Action
module Agent = Fsa_term.Agent
module Auth = Fsa_requirements.Auth
module Monitor = Fsa_mc.Monitor
module Export = Fsa_requirements.Export
module Classify = Fsa_requirements.Classify
module Lts = Fsa_lts.Lts
module V = Fsa_vanet.Vehicle_apa
module S = Fsa_vanet.Scenario

let requirements2 =
  lazy
    (Fsa_core.Analysis.tool ~stakeholder:V.stakeholder (V.two_vehicles ()))
      .Fsa_core.Analysis.t_requirements

(* ------------------------------------------------------------------ *)
(* Monitoring                                                          *)
(* ------------------------------------------------------------------ *)

let test_system_traces_satisfy_requirements () =
  (* every word of the behaviour satisfies the derived requirements —
     completeness of the derivation in monitor form *)
  let lts = Lts.explore (V.two_vehicles ()) in
  let reqs = Lazy.force requirements2 in
  List.iter
    (fun trace ->
      let verdicts = Monitor.run reqs trace in
      List.iter
        (fun (r, v) ->
          Alcotest.(check bool)
            (Fmt.str "%a on a system trace" Auth.pp r)
            true
            (Monitor.equal_verdict v Monitor.Satisfied))
        verdicts)
    (Lts.words ~max_len:6 lts)

let test_forged_trace_detected () =
  let reqs = Lazy.force requirements2 in
  (* an attacker injects the warning without any sensing: V2 receives and
     shows, but V1 never sensed *)
  let forged = [ V.v_pos 2; V.v_rec 2; V.v_show 2 ] in
  let verdicts = Monitor.run reqs forged in
  let violated =
    List.filter
      (fun (_, v) -> not (Monitor.equal_verdict v Monitor.Satisfied))
      verdicts
  in
  (* V1_sense and V1_pos requirements fire; V2_pos was satisfied *)
  Alcotest.(check int) "two requirements violated" 2 (List.length violated);
  match violated with
  | (_, Monitor.Violated { position; _ }) :: _ ->
    Alcotest.(check int) "violation at the show event" 2 position
  | _ -> Alcotest.fail "expected violation details"

let test_incremental_monitoring () =
  let reqs = Lazy.force requirements2 in
  let m = Monitor.of_requirements reqs in
  Alcotest.(check bool) "initially satisfied" true (Monitor.all_satisfied m);
  Monitor.step m (V.v_sense 1);
  Monitor.step m (V.v_pos 1);
  Monitor.step m (V.v_send 1);
  Monitor.step m (V.v_pos 2);
  Monitor.step m (V.v_rec 2);
  Alcotest.(check bool) "still satisfied before show" true
    (Monitor.all_satisfied m);
  Monitor.step m (V.v_show 2);
  Alcotest.(check bool) "full run satisfied" true (Monitor.all_satisfied m);
  Alcotest.(check int) "no violations" 0 (List.length (Monitor.violations m))

let test_first_violation_sticks () =
  let req =
    Auth.make ~cause:(Action.make "a") ~effect:(Action.make "b")
      ~stakeholder:(Agent.unindexed "P")
  in
  let m = Monitor.of_requirements [ req ] in
  Monitor.step m (Action.make "b");
  (* late cause does not heal the violation *)
  Monitor.step m (Action.make "a");
  Monitor.step m (Action.make "b");
  match Monitor.verdicts m with
  | [ (_, Monitor.Violated { position; _ }) ] ->
    Alcotest.(check int) "first position kept" 0 position
  | _ -> Alcotest.fail "expected a sticky violation"

let test_cause_on_same_event () =
  (* degenerate reflexive requirement: satisfied because the cause check
     precedes the effect check *)
  let a = Action.make "a" in
  let req = Auth.make ~cause:a ~effect:a ~stakeholder:(Agent.unindexed "P") in
  let verdicts = Monitor.run [ req ] [ a ] in
  match verdicts with
  | [ (_, v) ] ->
    Alcotest.(check bool) "reflexive satisfied" true
      (Monitor.equal_verdict v Monitor.Satisfied)
  | _ -> Alcotest.fail "one verdict expected"

let test_report_renders () =
  let reqs = Lazy.force requirements2 in
  let m = Monitor.of_requirements reqs in
  Monitor.step m (V.v_show 2);
  let text = Fmt.str "%a" Monitor.pp_report m in
  Alcotest.(check bool) "report mentions violation" true
    (let sub = "violated" in
     let rec contains i =
       i + String.length sub <= String.length text
       && (String.sub text i (String.length sub) = sub || contains (i + 1))
     in
     contains 0)

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let contains s sub =
  let rec go i =
    i + String.length sub <= String.length s
    && (String.sub s i (String.length sub) = sub || go (i + 1))
  in
  go 0

let test_json_export () =
  let reqs = Fsa_requirements.Derive.of_sos S.three_vehicles in
  let json = Export.to_json ~classify:(Classify.classify S.three_vehicles) reqs in
  Alcotest.(check bool) "array" true (json.[0] = '[');
  Alcotest.(check bool) "contains cause field" true (contains json "\"cause\"");
  Alcotest.(check bool) "contains classification" true
    (contains json "policy-induced");
  Alcotest.(check bool) "mentions the driver" true (contains json "D_w")

let test_json_escaping () =
  Alcotest.(check string) "quotes escaped" "a\\\"b\\\\c"
    (Export.json_escape "a\"b\\c");
  Alcotest.(check string) "newline escaped" "x\\ny" (Export.json_escape "x\ny");
  Alcotest.(check string) "control chars" "\\u0001" (Export.json_escape "\x01")

let test_csv_export () =
  let reqs = Fsa_requirements.Derive.of_sos S.two_vehicles in
  let csv = Export.to_csv reqs in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + 3 rows" 4 (List.length lines);
  Alcotest.(check string) "header" "cause,effect,stakeholder" (List.hd lines);
  let csv_c = Export.to_csv ~classify:(Classify.classify S.two_vehicles) reqs in
  Alcotest.(check bool) "classified header" true
    (contains csv_c "classification")

let test_markdown_export () =
  let reqs = Fsa_requirements.Derive.of_sos S.two_vehicles in
  let md = Export.to_markdown reqs in
  Alcotest.(check bool) "table header" true (contains md "| # | Cause |");
  Alcotest.(check bool) "numbered rows" true (contains md "| 1 |");
  Alcotest.(check bool) "three rows" true (contains md "| 3 |")

let suite =
  [ Alcotest.test_case "system traces satisfy requirements" `Quick
      test_system_traces_satisfy_requirements;
    Alcotest.test_case "forged trace detected" `Quick test_forged_trace_detected;
    Alcotest.test_case "incremental monitoring" `Quick test_incremental_monitoring;
    Alcotest.test_case "first violation sticks" `Quick test_first_violation_sticks;
    Alcotest.test_case "reflexive requirement" `Quick test_cause_on_same_event;
    Alcotest.test_case "report rendering" `Quick test_report_renders;
    Alcotest.test_case "json export" `Quick test_json_export;
    Alcotest.test_case "json escaping" `Quick test_json_escaping;
    Alcotest.test_case "csv export" `Quick test_csv_export;
    Alcotest.test_case "markdown export" `Quick test_markdown_export ]
