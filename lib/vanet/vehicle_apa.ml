(* APA models of the vehicular scenario (Sect. 5.1-5.2).

   Each vehicle V_i has state components esp_i, gps_i, bus_i, hmi_i and a
   shared wireless medium [net]; its elementary automata are
   Vi_sense, Vi_pos, Vi_send, Vi_rec, Vi_show (the reduced model without
   the forward action used in the paper's Sect. 5), plus Vi_fwd for the
   forwarding variant used in chain scenarios.

   Messages on the net carry the sender identity
   (Z_net = P({cam} x {V1..V4} x Z_gps)); a vehicle does not receive its
   own messages.  The receive action depends only on the arrival of the
   message; the comparison with the own position happens at show time
   (functional model Fig. 1(b): show <- rec, pos) — this is the semantics
   consistent with the reachability graph sizes published in the paper
   (13 states for two vehicles, 169 for four).

   Radio range: the paper's four-vehicle scenario has two pairs "out of
   range from the other pair"; we model range clusters as separate net
   components chosen by position at composition time. *)

module Term = Fsa_term.Term
module Action = Fsa_term.Action
module Apa = Fsa_apa.Apa

let vehicle_id i = Term.sym (Printf.sprintf "V%d" i)

let is_position s = Geo.is_position s

(* The label of an elementary automaton in the tool's naming: V1_sense. *)
let label i act = Action.make (Printf.sprintf "V%d_%s" i act)

let v_sense i = label i "sense"
let v_pos i = label i "pos"
let v_send i = label i "send"
let v_rec i = label i "rec"
let v_show i = label i "show"
let v_fwd i = label i "fwd"

type role = Full | Warner | Receiver | Forwarder

(* State component names of vehicle i. *)
let esp i = Printf.sprintf "esp%d" i
let gps i = Printf.sprintf "gps%d" i
let bus i = Printf.sprintf "bus%d" i
let hmi i = Printf.sprintf "hmi%d" i

let sw = Term.sym "sW"
let warn = Term.sym "warn"

let var v = Term.var v

let cam sender p = Term.app "cam" [ sender; p ]

let guard_position v subst =
  match Term.Subst.find v subst with
  | Some t -> is_position t
  | None -> false

let guard_not_self i v subst =
  match Term.Subst.find v subst with
  | Some t -> not (Term.equal t (vehicle_id i))
  | None -> false

let guard_in_range ~range p q subst =
  match Term.Subst.find p subst, Term.Subst.find q subst with
  | Some tp, Some tq -> Geo.in_range ~range tp tq
  | (None | Some _), _ -> false

(* Canonical signatures of the guard closures above, keyed by rule name,
   for symmetry detection ([Fsa_sym.detect ~guard_sig]).  Every guard is
   self-relative — [guard_not_self i] rejects the firing vehicle's own
   identity, the position and range predicates never mention identities
   at all — so two vehicles' guards for the same elementary automaton
   are equivalent up to instance renaming and get equal signatures.
   Valid for models built with a single radio range, which holds for all
   the bundled scenarios. *)
let guard_attest rule =
  match String.index_opt rule '_' with
  | None -> None
  | Some i when String.length rule > 1 && rule.[0] = 'V' -> (
    match String.sub rule (i + 1) (String.length rule - i - 1) with
    | "send" -> Some "position(p)"
    | "rec" -> Some "not_self(v)"
    | "show" | "fwd" -> Some "position(q) && in_range(p, q)"
    | _ -> None)
  | Some _ -> None

(* The elementary automata of vehicle [i].  [net_in] is the radio medium
   the vehicle listens on, [net_out] the one it transmits on; both default
   to a single shared "net". *)
let rules ?(net_in = "net") ?(net_out = "net") ?(range = Geo.default_range)
    ~role i =
  let sense_rule =
    Apa.rule
      (Printf.sprintf "V%d_sense" i)
      ~takes:[ Apa.take (esp i) (var "x") ]
      ~puts:[ Apa.put (bus i) (var "x") ]
  in
  let pos_rule =
    Apa.rule
      (Printf.sprintf "V%d_pos" i)
      ~takes:[ Apa.take (gps i) (var "p") ]
      ~puts:[ Apa.put (bus i) (var "p") ]
  in
  let send_rule =
    Apa.rule
      (Printf.sprintf "V%d_send" i)
      ~takes:[ Apa.take (bus i) sw; Apa.take (bus i) (var "p") ]
      ~guard:(guard_position "p")
      ~puts:[ Apa.put net_out (cam (vehicle_id i) (var "p")) ]
  in
  let rec_rule =
    Apa.rule
      (Printf.sprintf "V%d_rec" i)
      ~takes:[ Apa.take net_in (cam (var "v") (var "p")) ]
      ~guard:(guard_not_self i "v")
      ~puts:[ Apa.put (bus i) (Term.app "warn" [ var "p" ]) ]
  in
  let show_rule =
    Apa.rule
      (Printf.sprintf "V%d_show" i)
      ~takes:
        [ Apa.take (bus i) (Term.app "warn" [ var "p" ]);
          Apa.take (bus i) (var "q") ]
      ~guard:(fun s -> guard_position "q" s && guard_in_range ~range "p" "q" s)
      ~puts:[ Apa.put (hmi i) warn ]
  in
  let fwd_rule =
    Apa.rule
      (Printf.sprintf "V%d_fwd" i)
      ~takes:
        [ Apa.take (bus i) (Term.app "warn" [ var "p" ]);
          Apa.take (bus i) (var "q") ]
      ~guard:(fun s -> guard_position "q" s && guard_in_range ~range "p" "q" s)
      ~puts:[ Apa.put net_out (cam (vehicle_id i) (var "p")) ]
  in
  match role with
  | Full -> [ sense_rule; pos_rule; send_rule; rec_rule; show_rule; fwd_rule ]
  | Warner -> [ sense_rule; pos_rule; send_rule ]
  | Receiver -> [ pos_rule; rec_rule; show_rule ]
  | Forwarder -> [ pos_rule; rec_rule; fwd_rule ]

(* The APA of one vehicle (Fig. 5).  [esp_init]/[gps_init] are the sensor
   and GPS inputs pending in the initial state. *)
let vehicle ?(net_in = "net") ?(net_out = "net") ?(range = Geo.default_range)
    ?(role = Full) ?(esp_init = []) ?(gps_init = []) i =
  let nets =
    List.sort_uniq String.compare [ net_in; net_out ]
    |> List.map (fun n -> (n, Term.Set.empty))
  in
  Apa.make
    ~components:
      ([ (esp i, Term.Set.of_list esp_init);
         (gps i, Term.Set.of_list gps_init);
         (bus i, Term.Set.empty);
         (hmi i, Term.Set.empty) ]
       @ nets)
    ~rules:(rules ~net_in ~net_out ~range ~role i)
    (Printf.sprintf "V%d" i)

(* ------------------------------------------------------------------ *)
(* SoS instances                                                       *)
(* ------------------------------------------------------------------ *)

let pos1 = Term.sym "pos1"
let pos2 = Term.sym "pos2"
let pos3 = Term.sym "pos3"
let pos4 = Term.sym "pos4"

(* An APA model of the roadside unit (use case 1): broadcasts the pending
   cooperative awareness message. *)
let rsu ?(net_out = "net") ?(cam_init = [ Term.app "cam" [ Term.sym "RSU"; pos1 ] ]) () =
  Apa.make
    ~components:[ ("rsu_out", Term.Set.of_list cam_init); (net_out, Term.Set.empty) ]
    ~rules:
      [ Apa.rule "RSU_send"
          ~takes:[ Apa.take "rsu_out" (var "m") ]
          ~puts:[ Apa.put net_out (var "m") ] ]
    "RSU"

(* Fig. 2 as a tool-path instance: vehicle 1 receives a warning from the
   RSU (use cases 1 + 3). *)
let rsu_and_vehicle () =
  Apa.compose ~name:"sos_rsu_and_vehicle"
    [ rsu (); vehicle ~role:Receiver ~gps_init:[ pos2 ] 1 ]

(* Example 5 / Fig. 6: two vehicles in range; V1 performs use case 2
   (warner), V2 performs use case 3 (receiver). *)
let two_vehicles () =
  Apa.compose ~name:"sos_2_vehicles"
    [ vehicle ~role:Warner ~esp_init:[ sw ] ~gps_init:[ pos1 ] 1;
      vehicle ~role:Receiver ~gps_init:[ pos2 ] 2 ]

(* Fig. 8: two pairs of two vehicles, each pair within communication
   range but out of range from the other pair; V1 warns V2 and V3 warns
   V4.  The radio clusters are modelled as distinct net components. *)
let four_vehicles () =
  Apa.compose ~name:"sos_4_vehicles"
    [ vehicle ~net_in:"netA" ~net_out:"netA" ~role:Warner ~esp_init:[ sw ]
        ~gps_init:[ pos1 ] 1;
      vehicle ~net_in:"netA" ~net_out:"netA" ~role:Receiver ~gps_init:[ pos2 ] 2;
      vehicle ~net_in:"netB" ~net_out:"netB" ~role:Warner ~esp_init:[ sw ]
        ~gps_init:[ pos3 ] 3;
      vehicle ~net_in:"netB" ~net_out:"netB" ~role:Receiver ~gps_init:[ pos4 ] 4 ]

(* The same four vehicles on ONE shared radio medium — a deliberately
   flawed variant: without range clusters a receiver can consume a message
   it cannot process (the show guard fails on the distance check), leaving
   the run stuck.  Used to demonstrate deadlock diagnostics. *)
let four_vehicles_shared_net () =
  Apa.compose ~name:"sos_4_vehicles_shared_net"
    [ vehicle ~role:Warner ~esp_init:[ sw ] ~gps_init:[ pos1 ] 1;
      vehicle ~role:Receiver ~gps_init:[ pos2 ] 2;
      vehicle ~role:Warner ~esp_init:[ sw ] ~gps_init:[ pos3 ] 3;
      vehicle ~role:Receiver ~gps_init:[ pos4 ] 4 ]

(* [pairs k]: k independent warner/receiver pairs — the state space grows
   as 13^k; used for scaling experiments.  [uniform] puts every pair at
   the same two positions, making the pairs genuinely interchangeable
   (the alternating default breaks symmetry through the gps contents). *)
let pairs ?(uniform = false) k =
  if k < 1 then invalid_arg "Vehicle_apa.pairs";
  let cluster j = Printf.sprintf "net%d" j in
  let mk j =
    (* reuse the two in-range position pairs alternately: independence is
       enforced by the per-pair net component *)
    let p_send, p_recv =
      if uniform || j mod 2 = 0 then (pos1, pos2) else (pos3, pos4)
    in
    [ vehicle ~net_in:(cluster j) ~net_out:(cluster j) ~role:Warner
        ~esp_init:[ sw ] ~gps_init:[ p_send ]
        ((2 * j) + 1);
      vehicle ~net_in:(cluster j) ~net_out:(cluster j) ~role:Receiver
        ~gps_init:[ p_recv ]
        ((2 * j) + 2) ]
  in
  Apa.compose
    ~name:(Printf.sprintf "sos_%d_pairs" k)
    (List.concat_map mk (List.init k Fun.id))

(* [chain n]: V1 warns, V2..V(n-1) forward hop by hop, Vn receives; hop j
   uses its own radio cluster net_j (each consecutive pair is in range,
   non-consecutive vehicles are not). *)
let chain n =
  if n < 2 then invalid_arg "Vehicle_apa.chain";
  let hop j = Printf.sprintf "hop%d" j in
  let middle =
    List.init (n - 2) (fun k ->
        let i = k + 2 in
        vehicle ~net_in:(hop (i - 1)) ~net_out:(hop i) ~role:Forwarder
          ~gps_init:[ pos1 ] i)
  in
  Apa.compose
    ~name:(Printf.sprintf "sos_chain_%d" n)
    ((vehicle ~net_out:(hop 1) ~net_in:(hop 1) ~role:Warner ~esp_init:[ sw ]
        ~gps_init:[ pos1 ] 1
      :: middle)
     @ [ vehicle
           ~net_in:(hop (n - 1))
           ~net_out:(hop (n - 1))
           ~role:Receiver ~gps_init:[ pos2 ] n ])

(* Stakeholders for the tool path: the driver D_i for Vi_show, the vehicle
   otherwise (Sect. 5.4: auth(..., V2_show, D_2)). *)
let stakeholder action =
  match String.split_on_char '_' (Action.label action) with
  | [ v; "show" ] when String.length v > 1 && v.[0] = 'V' ->
    Fsa_term.Agent.of_string ("D_" ^ String.sub v 1 (String.length v - 1))
  | _ -> Fsa_term.Agent.unindexed "SYS"

(* Correspondence between tool-path labels (V1_sense) and manual-path
   actions (sense(ESP_1, sW)) for cross-validation of the two methods. *)
let manual_action_of_label action =
  if String.equal (Action.label action) "RSU_send" then Some Scenario.rsu_send
  else
  match String.split_on_char '_' (Action.label action) with
  | [ v; act ] when String.length v > 1 && v.[0] = 'V' -> (
    match int_of_string_opt (String.sub v 1 (String.length v - 1)) with
    | None -> None
    | Some i ->
      let idx = Fsa_term.Agent.Concrete i in
      (match act with
       | "sense" -> Some (Scenario.sense idx)
       | "pos" -> Some (Scenario.gps_pos idx)
       | "send" -> Some (Scenario.cu_send idx)
       | "rec" -> Some (Scenario.cu_rec idx)
       | "fwd" -> Some (Scenario.cu_fwd idx)
       | "show" -> Some (Scenario.show idx)
       | _ -> None))
  | _ -> None
