(* Lexer for the specification language: identifiers, integers, strings,
   punctuation, line comments introduced by "//". *)

type t = {
  input : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (* offset of the beginning of the current line *)
  mutable peeked : (Token.t * Loc.t) option;
}

let make input = { input; pos = 0; line = 1; bol = 0; peeked = None }

let location t = Loc.point ~line:t.line ~col:(t.pos - t.bol + 1)

(* The span from [start] (a point at the first character) to the current
   position, i.e. one past the last consumed character.  Tokens never
   span lines, so the end line is the current one. *)
let span_from t (start : Loc.t) =
  let end_col = max start.Loc.col (t.pos - t.bol) in
  Loc.span ~line:start.Loc.line ~col:start.Loc.col ~end_line:t.line ~end_col

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let newline t =
  t.line <- t.line + 1;
  t.bol <- t.pos

let rec skip_blank t =
  let n = String.length t.input in
  if t.pos < n then
    match t.input.[t.pos] with
    | ' ' | '\t' | '\r' ->
      t.pos <- t.pos + 1;
      skip_blank t
    | '\n' ->
      t.pos <- t.pos + 1;
      newline t;
      skip_blank t
    | '/' when t.pos + 1 < n && t.input.[t.pos + 1] = '/' ->
      while t.pos < n && t.input.[t.pos] <> '\n' do
        t.pos <- t.pos + 1
      done;
      skip_blank t
    | _ -> ()

let lex_while t pred =
  let n = String.length t.input in
  let start = t.pos in
  let rec go i = if i < n && pred t.input.[i] then go (i + 1) else i in
  let stop = go start in
  t.pos <- stop;
  String.sub t.input start (stop - start)

let lex_string t loc =
  (* opening quote already consumed *)
  let buf = Buffer.create 16 in
  let n = String.length t.input in
  let rec go () =
    if t.pos >= n then Loc.error loc "unterminated string literal"
    else
      match t.input.[t.pos] with
      | '"' -> t.pos <- t.pos + 1
      | '\n' -> Loc.error loc "newline in string literal"
      | '\\' when t.pos + 1 < n ->
        let c = t.input.[t.pos + 1] in
        Buffer.add_char buf (match c with 'n' -> '\n' | 't' -> '\t' | c -> c);
        t.pos <- t.pos + 2;
        go ()
      | c ->
        Buffer.add_char buf c;
        t.pos <- t.pos + 1;
        go ()
  in
  go ();
  Buffer.contents buf

let read_token t =
  skip_blank t;
  let loc = location t in
  let n = String.length t.input in
  if t.pos >= n then (Token.Eof, loc)
  else begin
    let two_char c1 c2 tok single =
      if t.pos + 1 < n && t.input.[t.pos] = c1 && t.input.[t.pos + 1] = c2
      then begin
        t.pos <- t.pos + 2;
        tok
      end
      else begin
        t.pos <- t.pos + 1;
        single loc
      end
    in
    let tok =
      match t.input.[t.pos] with
      | '{' -> t.pos <- t.pos + 1; Token.Lbrace
      | '}' -> t.pos <- t.pos + 1; Token.Rbrace
      | '(' -> t.pos <- t.pos + 1; Token.Lparen
      | ')' -> t.pos <- t.pos + 1; Token.Rparen
      | '[' -> t.pos <- t.pos + 1; Token.Lbracket
      | ']' -> t.pos <- t.pos + 1; Token.Rbracket
      | ',' -> t.pos <- t.pos + 1; Token.Comma
      | '.' -> t.pos <- t.pos + 1; Token.Dot
      | ':' -> t.pos <- t.pos + 1; Token.Colon
      | '=' -> two_char '=' '=' Token.Eq_eq (fun _ -> Token.Eq)
      | '!' -> two_char '!' '=' Token.Bang_eq (fun _ -> Token.Bang)
      | '-' ->
        two_char '-' '>' Token.Arrow (fun loc ->
            Loc.error loc "expected '->' after '-'")
      | '&' ->
        two_char '&' '&' Token.And_and (fun loc ->
            Loc.error loc "expected '&&' after '&'")
      | '|' ->
        two_char '|' '|' Token.Or_or (fun loc ->
            Loc.error loc "expected '||' after '|'")
      | '"' ->
        t.pos <- t.pos + 1;
        Token.String (lex_string t loc)
      | c when is_digit c -> Token.Int (int_of_string (lex_while t is_digit))
      | c when is_ident_start c -> Token.Ident (lex_while t is_ident_char)
      | c -> Loc.error loc "unexpected character %C" c
    in
    (tok, span_from t loc)
  end

let next t =
  match t.peeked with
  | Some tl ->
    t.peeked <- None;
    tl
  | None -> read_token t

let peek t =
  match t.peeked with
  | Some tl -> tl
  | None ->
    let tl = read_token t in
    t.peeked <- Some tl;
    tl

let expect t tok =
  let got, loc = next t in
  if not (Token.equal got tok) then
    Loc.error loc "expected %a but found %a" Token.pp tok Token.pp got;
  loc

let accept t tok =
  let got, _ = peek t in
  if Token.equal got tok then begin
    ignore (next t);
    true
  end
  else false

let ident t =
  match next t with
  | Token.Ident s, _ -> s
  | tok, loc -> Loc.error loc "expected an identifier, found %a" Token.pp tok
