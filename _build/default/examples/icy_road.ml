(* The icy-road warning scenario — the manual analysis path of Sect. 4 of
   the paper, end to end:

     1. functional component models for RSU and vehicles (Fig. 1),
     2. SoS instances for use-case combinations (Figs. 2-4),
     3. the partial order zeta* and its restriction chi,
     4. authenticity requirements per instance,
     5. the union over the instance family, generalised to first-order
        form (requirements (1)-(4) of the paper),
     6. classification: the forwarding-policy requirement is availability,
        not safety.

   Run with: dune exec examples/icy_road.exe *)

module Scenario = Fsa_vanet.Scenario
module Analysis = Fsa_core.Analysis
module Auth = Fsa_requirements.Auth
module Generalise = Fsa_requirements.Generalise
module Classify = Fsa_requirements.Classify
module P = Fsa_model.Action_graph.P

let section title = Fmt.pr "@.=== %s ===@." title

let () =
  section "Use case instance: vehicle w receives a warning from the RSU (Fig. 2)";
  let report = Analysis.manual Scenario.rsu_and_vehicle in
  Fmt.pr "%a@." Analysis.pp_manual_report report;

  section "Use case instance: vehicle w receives a warning from vehicle 1 (Fig. 3)";
  let report2 = Analysis.manual Scenario.two_vehicles in
  Fmt.pr "%a@." Analysis.pp_manual_report report2;

  section "zeta and zeta* of the Fig. 3 instance (Example 3)";
  let poset = Fsa_model.Sos.poset Scenario.two_vehicles in
  let pp_pair ppf (a, b) =
    Fmt.pf ppf "(%a, %a)" Fsa_term.Action.pp a Fsa_term.Action.pp b
  in
  Fmt.pr "zeta  = {%a}@."
    Fmt.(list ~sep:comma pp_pair)
    (Fsa_model.Action_graph.G.edges (P.base poset));
  Fmt.pr "zeta* = {%a}@."
    Fmt.(list ~sep:comma pp_pair)
    (P.closure_pairs poset);

  section "Vehicle 2 forwards warnings (Fig. 4)";
  let report3 = Analysis.manual Scenario.three_vehicles in
  Fmt.pr "%a@." Analysis.pp_manual_report report3;

  section "The parameterised instance family chain(2..6)";
  let family = List.map Scenario.chain [ 2; 3; 4; 5; 6 ] in
  let union = Fsa_requirements.Derive.of_instances family in
  Fmt.pr "union of the instances' requirement sets:@.%a@." Auth.pp_set union;

  section "First-order generalisation (requirements (1)-(4) of the paper)";
  let generalised =
    Generalise.generalise ~domain_of:Scenario.v_forward_domain union
  in
  Fmt.pr "%a@." Generalise.pp_set generalised;

  section "Safety evaluation of the requirements (Sect. 4.4)";
  let sos = Scenario.chain 4 in
  List.iter
    (fun (r, c) -> Fmt.pr "- %a@." Classify.pp_classified (r, c))
    (Classify.classify_all sos (Fsa_requirements.Derive.of_sos sos));
  Fmt.pr
    "@.The position requirements of forwarding vehicles originate from the \
     position-based forwarding policy, introduced for performance reasons: \
     breaking them cannot cause the warning of a driver that should not be \
     warned, so they are availability requirements, not safety-critical \
     ones.@.";

  section "Structurally different two-component instances (Sect. 4.2)";
  let instances = Scenario.enumerate_two_component_instances () in
  List.iter
    (fun sos -> Fmt.pr "- %s@." (Fsa_model.Sos.name sos))
    instances;

  section "Systematic instance enumeration up to three components";
  let module Agent = Fsa_term.Agent in
  let module Enumerate = Fsa_model.Enumerate in
  let templates =
    [ Enumerate.template ~name:"rsu"
        ~build:(fun _ -> Scenario.rsu_component)
        ~outputs:[ "send" ] ~inputs:[];
      Enumerate.template ~name:"warner"
        ~build:(fun i -> Scenario.warning_vehicle (Agent.Concrete i))
        ~outputs:[ "send" ] ~inputs:[];
      Enumerate.template ~name:"forwarder"
        ~build:(fun i -> Scenario.forwarding_vehicle (Agent.Concrete i))
        ~outputs:[ "fwd" ] ~inputs:[ "rec" ];
      Enumerate.template ~name:"receiver"
        ~build:(fun i -> Scenario.receiving_vehicle (Agent.Concrete i))
        ~outputs:[] ~inputs:[ "rec" ] ]
  in
  let connectors = [ ("send", "rec"); ("fwd", "rec") ] in
  List.iter
    (fun size ->
      let instances = Enumerate.compositions ~templates ~connectors ~size () in
      Fmt.pr "size %d: %d structurally different instances@." size
        (List.length instances))
    [ 1; 2; 3 ]
