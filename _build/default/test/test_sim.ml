(* Tests for Fsa_sim: the interactive simulator and its command
   language. *)

module Action = Fsa_term.Action
module Apa = Fsa_apa.Apa
module Sim = Fsa_sim.Sim
module Monitor = Fsa_mc.Monitor
module V = Fsa_vanet.Vehicle_apa

let new_sim () = Sim.create (V.two_vehicles ())

let requirements () =
  (Fsa_core.Analysis.tool ~stakeholder:V.stakeholder (V.two_vehicles ()))
    .Fsa_core.Analysis.t_requirements

let contains s sub =
  let rec go i =
    i + String.length sub <= String.length s
    && (String.sub s i (String.length sub) = sub || go (i + 1))
  in
  go 0

let test_initial () =
  let sim = new_sim () in
  Alcotest.(check int) "no steps yet" 0 (Sim.steps_taken sim);
  Alcotest.(check (list string)) "initially enabled"
    [ "V1_pos"; "V1_sense"; "V2_pos" ]
    (List.map (fun (n, _, _) -> n) (Sim.enabled sim));
  Alcotest.(check bool) "not deadlocked" false (Sim.is_deadlocked sim)

let test_step_named () =
  let sim = new_sim () in
  (match Sim.step_named sim "V1_sense" with
  | Ok label -> Alcotest.(check string) "label" "V1_sense" (Action.to_string label)
  | Error _ -> Alcotest.fail "sense must be enabled");
  Alcotest.(check int) "one step" 1 (Sim.steps_taken sim);
  (* the same transition is no longer enabled *)
  match Sim.step_named sim "V1_sense" with
  | Error (Sim.No_such_transition _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "sense must be gone"

let test_full_run_and_deadlock () =
  let sim = new_sim () in
  let order = [ "V1_sense"; "V1_pos"; "V1_send"; "V2_pos"; "V2_rec"; "V2_show" ] in
  List.iter
    (fun name ->
      match Sim.step_named sim name with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Fmt.str "step %s: %a" name Sim.pp_step_error e))
    order;
  Alcotest.(check bool) "deadlocked after the run" true (Sim.is_deadlocked sim);
  Alcotest.(check int) "six steps" 6 (Sim.steps_taken sim);
  match Sim.step_random sim with
  | Error Sim.Deadlock -> ()
  | Ok _ | Error _ -> Alcotest.fail "random step must report deadlock"

let test_undo_reset () =
  let sim = new_sim () in
  ignore (Sim.step_named sim "V1_sense");
  ignore (Sim.step_named sim "V1_pos");
  Alcotest.(check bool) "undo succeeds" true (Sim.undo sim);
  Alcotest.(check int) "one step left" 1 (Sim.steps_taken sim);
  (* V1_pos is enabled again *)
  Alcotest.(check bool) "pos re-enabled" true
    (List.exists (fun (n, _, _) -> n = "V1_pos") (Sim.enabled sim));
  Sim.reset sim;
  Alcotest.(check int) "reset clears" 0 (Sim.steps_taken sim);
  Alcotest.(check bool) "undo on empty fails" false (Sim.undo sim)

let test_random_run_deterministic () =
  let sim1 = Sim.create ~seed:7 (V.two_vehicles ()) in
  let sim2 = Sim.create ~seed:7 (V.two_vehicles ()) in
  let t1 = Sim.run_random sim1 ~max_steps:100 in
  let t2 = Sim.run_random sim2 ~max_steps:100 in
  Alcotest.(check bool) "same seed, same trace" true
    (List.equal Action.equal t1 t2);
  (* the scenario always terminates after exactly six actions *)
  Alcotest.(check int) "every complete run has six actions" 6 (List.length t1);
  Alcotest.(check bool) "deadlocked" true (Sim.is_deadlocked sim1)

let test_monitoring_in_sim () =
  let sim = new_sim () in
  Sim.attach_monitor sim (requirements ());
  let _ = Sim.run_random sim ~max_steps:100 in
  match Sim.monitor_report sim with
  | Some report ->
    Alcotest.(check bool) "all satisfied on a system run" false
      (contains report "violated")
  | None -> Alcotest.fail "monitor must be attached"

let test_monitor_survives_undo () =
  let sim = new_sim () in
  Sim.attach_monitor sim (requirements ());
  ignore (Sim.step_named sim "V1_sense");
  ignore (Sim.undo sim);
  match Sim.monitor_report sim with
  | Some report -> Alcotest.(check bool) "report still renders" true (String.length report > 0)
  | None -> Alcotest.fail "monitor lost after undo"

let test_command_parsing () =
  let ok s c = Alcotest.(check bool) s true (Sim.parse_command s = Ok c) in
  ok "state" Sim.Show_state;
  ok "enabled" Sim.Show_enabled;
  ok "trace" Sim.Show_trace;
  ok "random" Sim.Step_random;
  ok "undo" Sim.Undo;
  ok "reset" Sim.Reset;
  ok "monitor" Sim.Monitor_report;
  ok "help" Sim.Help;
  ok "quit" Sim.Quit;
  Alcotest.(check bool) "step by index" true
    (Sim.parse_command "step 2" = Ok (Sim.Step_index 2));
  Alcotest.(check bool) "step by name" true
    (Sim.parse_command "step V1_sense" = Ok (Sim.Step_name "V1_sense"));
  Alcotest.(check bool) "run" true (Sim.parse_command "run 10" = Ok (Sim.Run_random 10));
  Alcotest.(check bool) "whitespace tolerated" true
    (Sim.parse_command "  ls  " = Ok Sim.Show_enabled);
  (match Sim.parse_command "run -3" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative run must be rejected");
  match Sim.parse_command "frobnicate" with
  | Error msg -> Alcotest.(check bool) "helpful error" true (contains msg "help")
  | Ok _ -> Alcotest.fail "unknown command must be rejected"

let test_scripted_session () =
  let sim = new_sim () in
  let outputs =
    Sim.script sim
      [ "enabled"; "step V1_sense"; "step V1_pos"; "step V1_send";
        "step V2_pos"; "step V2_rec"; "step V2_show"; "trace"; "enabled";
        "quit"; "state" (* ignored after quit *) ]
  in
  (* 9 outputs: everything before quit *)
  Alcotest.(check int) "outputs before quit" 9 (List.length outputs);
  Alcotest.(check bool) "trace lists the run" true
    (contains (List.nth outputs 7) "V2_show");
  Alcotest.(check bool) "deadlock reported" true
    (contains (List.nth outputs 8) "deadlocked")

let test_script_error_handling () =
  let sim = new_sim () in
  let outputs = Sim.script sim [ "bogus"; "step V9_warp"; "help" ] in
  Alcotest.(check int) "three outputs" 3 (List.length outputs);
  Alcotest.(check bool) "parse error surfaced" true
    (contains (List.nth outputs 0) "error");
  Alcotest.(check bool) "step error surfaced" true
    (contains (List.nth outputs 1) "no enabled transition");
  Alcotest.(check bool) "help text" true (contains (List.nth outputs 2) "commands")

let test_save_trace () =
  let sim = new_sim () in
  let _ = Sim.run_random sim ~max_steps:100 in
  let path = Filename.temp_file "fsa_trace" ".txt" in
  (match Sim.execute sim (Sim.Save_trace path) with
  | `Output msg -> Alcotest.(check bool) "confirmation" true (contains msg "wrote 6")
  | `Quit -> Alcotest.fail "save must not quit");
  let ic = open_in path in
  let lines =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec go acc =
          match In_channel.input_line ic with
          | Some l -> go (l :: acc)
          | None -> List.rev acc
        in
        go [])
  in
  Sys.remove path;
  Alcotest.(check int) "six lines" 6 (List.length lines);
  (* the saved trace replays cleanly through the monitor *)
  let verdicts =
    Monitor.run (requirements ()) (List.map Fsa_term.Action.make lines)
  in
  Alcotest.(check bool) "saved trace satisfies the requirements" true
    (List.for_all
       (fun (_, v) -> Monitor.equal_verdict v Monitor.Satisfied)
       verdicts)

let test_ambiguous_step () =
  (* a rule with two interpretations in the same state must be stepped by
     index *)
  let apa =
    Apa.make
      ~components:
        [ ("src", Fsa_term.Term.Set.of_list [ Fsa_term.Term.sym "a"; Fsa_term.Term.sym "b" ]);
          ("dst", Fsa_term.Term.Set.empty) ]
      ~rules:
        [ Apa.rule "move"
            ~takes:[ Apa.take "src" (Fsa_term.Term.var "x") ]
            ~puts:[ Apa.put "dst" (Fsa_term.Term.var "x") ] ]
      "mover"
  in
  let sim = Sim.create apa in
  (match Sim.step_named sim "move" with
  | Error (Sim.Ambiguous ("move", 2)) -> ()
  | Ok _ | Error _ -> Alcotest.fail "ambiguity must be reported");
  match Sim.step_index sim 0 with
  | Ok _ -> Alcotest.(check int) "index step works" 1 (Sim.steps_taken sim)
  | Error _ -> Alcotest.fail "index step must work"

let suite =
  [ Alcotest.test_case "initial session" `Quick test_initial;
    Alcotest.test_case "step by name" `Quick test_step_named;
    Alcotest.test_case "full run to deadlock" `Quick test_full_run_and_deadlock;
    Alcotest.test_case "undo/reset" `Quick test_undo_reset;
    Alcotest.test_case "deterministic random runs" `Quick test_random_run_deterministic;
    Alcotest.test_case "monitoring in the simulator" `Quick test_monitoring_in_sim;
    Alcotest.test_case "monitor survives undo" `Quick test_monitor_survives_undo;
    Alcotest.test_case "command parsing" `Quick test_command_parsing;
    Alcotest.test_case "scripted session" `Quick test_scripted_session;
    Alcotest.test_case "script error handling" `Quick test_script_error_handling;
    Alcotest.test_case "save trace" `Quick test_save_trace;
    Alcotest.test_case "ambiguous step" `Quick test_ambiguous_step ]
