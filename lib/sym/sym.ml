(* Static symmetry detection and ample-set partial-order reduction.
   See sym.mli for the soundness arguments. *)

module Term = Fsa_term.Term
module Action = Fsa_term.Action
module Apa = Fsa_apa.Apa
module State = Fsa_apa.Apa.State
module Structural = Fsa_struct.Structural
module Metrics = Fsa_obs.Metrics
module Smap = Map.Make (String)
module Sset = Set.Make (String)

exception Unsupported of string

let m_canon_hits = Metrics.counter "sym.canon_cache_hits"
let m_canon_misses = Metrics.counter "sym.canon_cache_misses"
let m_ample_reduced = Metrics.counter "sym.ample_states_reduced"

(* ------------------------------------------------------------------ *)
(* Permutations                                                        *)
(* ------------------------------------------------------------------ *)

module Perm = struct
  type t = {
    pm_comp : string Smap.t;
    pm_rule : string Smap.t;
    pm_sym : string Smap.t;
  }

  let id = { pm_comp = Smap.empty; pm_rule = Smap.empty; pm_sym = Smap.empty }

  let is_id p =
    Smap.is_empty p.pm_comp && Smap.is_empty p.pm_rule && Smap.is_empty p.pm_sym

  let lookup m x = match Smap.find_opt x m with Some y -> y | None -> x
  let comp p x = lookup p.pm_comp x
  let rule p x = lookup p.pm_rule x
  let ident p x = lookup p.pm_sym x
  let norm m = Smap.filter (fun k v -> not (String.equal k v)) m

  let of_maps ~comps ~rules ~syms =
    { pm_comp = norm comps; pm_rule = norm rules; pm_sym = norm syms }

  (* [compose a b] applies [b] first. *)
  let compose_map ma mb =
    let m = Smap.map (fun v -> lookup ma v) mb in
    let m =
      Smap.fold
        (fun k v acc -> if Smap.mem k acc then acc else Smap.add k v acc)
        ma m
    in
    norm m

  let compose a b =
    {
      pm_comp = compose_map a.pm_comp b.pm_comp;
      pm_rule = compose_map a.pm_rule b.pm_rule;
      pm_sym = compose_map a.pm_sym b.pm_sym;
    }

  let invert_map m = Smap.fold (fun k v acc -> Smap.add v k acc) m Smap.empty

  let inverse p =
    {
      pm_comp = invert_map p.pm_comp;
      pm_rule = invert_map p.pm_rule;
      pm_sym = invert_map p.pm_sym;
    }

  let rec apply_term p t =
    match t with
    | Term.Sym s -> (
        match Smap.find_opt s p.pm_sym with
        | None -> t
        | Some s' -> Term.sym s')
    | Term.Int _ | Term.Var _ -> t
    | Term.App (f, args) ->
        let args' = List.map (apply_term p) args in
        if List.for_all2 (fun a b -> a == b) args args' then t
        else Term.app f args'

  let apply_state p s =
    if is_id p then s else State.map ~comp:(comp p) ~term:(apply_term p) s

  let apply_action p (a : Action.t) =
    let label = rule p a.Action.label in
    let args = List.map (apply_term p) a.Action.args in
    match a.Action.actor with
    | None -> Action.make ~args label
    | Some actor -> Action.make ~actor ~args label

  let equal a b =
    Smap.equal String.equal a.pm_comp b.pm_comp
    && Smap.equal String.equal a.pm_rule b.pm_rule
    && Smap.equal String.equal a.pm_sym b.pm_sym

  let key p =
    let buf = Buffer.create 64 in
    let dump tag m =
      Buffer.add_string buf tag;
      Smap.iter
        (fun k v ->
          Buffer.add_string buf k;
          Buffer.add_char buf '>';
          Buffer.add_string buf v;
          Buffer.add_char buf ';')
        m
    in
    dump "c:" p.pm_comp;
    dump "r:" p.pm_rule;
    dump "s:" p.pm_sym;
    Buffer.contents buf

  let pp ppf p =
    if is_id p then Fmt.string ppf "id"
    else
      let binds m = Smap.bindings m in
      Fmt.pf ppf "@[<h>%a@]"
        Fmt.(list ~sep:(any " ") (pair ~sep:(any "->") string string))
        (binds p.pm_comp @ binds p.pm_rule @ binds p.pm_sym)
end

(* ------------------------------------------------------------------ *)
(* Report types                                                        *)
(* ------------------------------------------------------------------ *)

type block = {
  b_instances : string list;
  b_comps : string list;
  b_rules : string list;
  b_from_ref : Perm.t;
}

type orbit = { o_blocks : block list; o_reducible : bool; o_why : string }

type rejection = {
  j_a : string;
  j_b : string;
  j_reason : [ `Guard | `Initial | `Rules | `Ambiguous ];
  j_detail : string;
}

type report = {
  r_instances : (string * string list) list;
  r_orbits : orbit list;
  r_rejected : rejection list;
  r_attested_guards : string list;
}

let reason_to_string = function
  | `Guard -> "guard"
  | `Initial -> "initial"
  | `Rules -> "rules"
  | `Ambiguous -> "ambiguous"

(* ------------------------------------------------------------------ *)
(* Instance inference                                                  *)
(* ------------------------------------------------------------------ *)

(* "V1_send" -> Some ("V1", "send"); rules without a proper prefix are
   fixed under every candidate permutation. *)
let prefix_of name =
  match String.index_opt name '_' with
  | Some i when i > 0 && i < String.length name - 1 ->
      Some (String.sub name 0 i, String.sub name (i + 1) (String.length name - i - 1))
  | _ -> None

let takes_of (r : Apa.rule) =
  List.map
    (fun (t : Apa.take) -> (t.Apa.t_component, t.Apa.t_pattern, t.Apa.t_consume))
    r.Apa.r_takes

let puts_of (r : Apa.rule) =
  List.map (fun (p : Apa.put) -> (p.Apa.p_component, p.Apa.p_template)) r.Apa.r_puts

(* Symbols (and separately App heads) occurring in a term. *)
let rec term_syms acc t =
  match t with
  | Term.Sym s -> Sset.add s acc
  | Term.Int _ | Term.Var _ -> acc
  | Term.App (_, args) -> List.fold_left term_syms acc args

let rec term_heads acc t =
  match t with
  | Term.Sym _ | Term.Int _ | Term.Var _ -> acc
  | Term.App (f, args) -> List.fold_left term_heads (Sset.add f acc) args

(* ------------------------------------------------------------------ *)
(* Rule comparison up to renaming                                      *)
(* ------------------------------------------------------------------ *)

(* Structural equality of (takes, puts) with a consistent bijective
   renaming of variables, positions aligned. *)
let positional_equal (takes1, puts1) (takes2, puts2) =
  let fwd = Hashtbl.create 8 and bwd = Hashtbl.create 8 in
  let var_ok v1 v2 =
    match (Hashtbl.find_opt fwd v1, Hashtbl.find_opt bwd v2) with
    | None, None ->
        Hashtbl.replace fwd v1 v2;
        Hashtbl.replace bwd v2 v1;
        true
    | Some x, Some y -> String.equal x v2 && String.equal y v1
    | _ -> false
  in
  let rec term_eq t1 t2 =
    match (t1, t2) with
    | Term.Var v1, Term.Var v2 -> var_ok v1 v2
    | Term.Sym a, Term.Sym b -> String.equal a b
    | Term.Int a, Term.Int b -> a = b
    | Term.App (f, xs), Term.App (g, ys) ->
        String.equal f g
        && List.length xs = List.length ys
        && List.for_all2 term_eq xs ys
    | _ -> false
  in
  List.length takes1 = List.length takes2
  && List.length puts1 = List.length puts2
  && List.for_all2
       (fun (c1, p1, k1) (c2, p2, k2) ->
         String.equal c1 c2 && Bool.equal k1 k2 && term_eq p1 p2)
       takes1 takes2
  && List.for_all2
       (fun (c1, p1) (c2, p2) -> String.equal c1 c2 && term_eq p1 p2)
       puts1 puts2

(* Order-insensitive comparison: sort takes and puts by a variable-blind
   key, then rename variables in traversal order.  Used for rules fixed
   by a permutation that shuffles their arcs; binding roles may permute,
   so callers must additionally require a trivial guard. *)
let alpha_canon (takes, puts) =
  let rec blind t =
    match t with
    | Term.Var _ -> Term.Var "_"
    | Term.Sym _ | Term.Int _ -> t
    | Term.App (f, args) -> Term.App (f, List.map blind args)
  in
  let tkey (c, p, k) = (c, Term.to_string (blind p), k) in
  let pkey (c, p) = (c, Term.to_string (blind p)) in
  let takes = List.sort (fun a b -> compare (tkey a) (tkey b)) takes in
  let puts = List.sort (fun a b -> compare (pkey a) (pkey b)) puts in
  let tbl = Hashtbl.create 8 and ctr = ref 0 in
  let rec go t =
    match t with
    | Term.Var v -> (
        match Hashtbl.find_opt tbl v with
        | Some v' -> Term.Var v'
        | None ->
            let v' = Printf.sprintf "v%d" !ctr in
            incr ctr;
            Hashtbl.replace tbl v v';
            Term.Var v')
    | Term.Sym _ | Term.Int _ -> t
    | Term.App (f, args) -> Term.App (f, List.map go args)
  in
  ( List.map (fun (c, p, k) -> (c, go p, k)) takes,
    List.map (fun (c, p) -> (c, go p)) puts )

(* ------------------------------------------------------------------ *)
(* Generator search                                                    *)
(* ------------------------------------------------------------------ *)

type genr = {
  g_pairs : (string * string) list;  (* jointly swapped instances *)
  g_perm : Perm.t;  (* the verified involution *)
  g_moved_comps : (string * string) list;
}

exception Rejected of [ `Guard | `Initial | `Rules | `Ambiguous ] * string

type ctx = {
  cx_comps : (string * Term.Set.t) list;
  cx_comp_init : Term.Set.t Smap.t;
  cx_rules : Apa.rule list;
  cx_rule_tbl : (string, Apa.rule) Hashtbl.t;
  cx_suffix_rules : string -> (string * Apa.rule) list;  (* sorted *)
  cx_shape : string -> string list;
  cx_is_instance : string -> bool;
  cx_touchers : string -> Sset.t;  (* instance prefixes, "" for fixed *)
  cx_owned_by : string -> string option;
  cx_guard_sig : string -> string option;
}

(* Attempt to verify the joint swap closure generated by exchanging
   instances [a0] and [b0].  Returns the verified generator and the set
   of guard-attested rules, or raises [Rejected]. *)
let try_swap ctx a0 b0 =
  let reject reason detail = raise (Rejected (reason, detail)) in
  let cmap = Hashtbl.create 16
  and smap = Hashtbl.create 16
  and rmap = Hashtbl.create 16 in
  let add_map tbl what x y =
    if String.equal x y then ()
    else
      match (Hashtbl.find_opt tbl x, Hashtbl.find_opt tbl y) with
      | Some x', _ when not (String.equal x' y) ->
          reject `Ambiguous
            (Printf.sprintf "%s %s forced to both %s and %s" what x x' y)
      | _, Some y' when not (String.equal y' x) ->
          reject `Ambiguous
            (Printf.sprintf "%s %s forced to both %s and %s" what y y' x)
      | _ ->
          Hashtbl.replace tbl x y;
          Hashtbl.replace tbl y x
  in
  let paired = Hashtbl.create 8 in
  let pair_list = ref [] in
  let queue = Queue.create () in
  let attested = ref Sset.empty in
  let rec add_pair x y =
    if String.equal x y then
      reject `Rules (Printf.sprintf "instance %s forced to pair with itself" x)
    else
      match (Hashtbl.find_opt paired x, Hashtbl.find_opt paired y) with
      | Some x', Some y' when String.equal x' y && String.equal y' x -> ()
      | None, None ->
          if not (List.equal String.equal (ctx.cx_shape x) (ctx.cx_shape y))
          then
            reject `Rules
              (Printf.sprintf "instances %s and %s have different rule sets" x y);
          Hashtbl.replace paired x y;
          Hashtbl.replace paired y x;
          pair_list := (x, y) :: !pair_list;
          Queue.add (x, y) queue
      | _ ->
          reject `Ambiguous
            (Printf.sprintf "instance %s pulled into conflicting pairings" x)
  and add_comp cx cy =
    if String.equal cx cy then ()
    else begin
      let fresh = not (Hashtbl.mem cmap cx) in
      add_map cmap "component" cx cy;
      if fresh then
        match (ctx.cx_owned_by cx, ctx.cx_owned_by cy) with
        | Some ox, Some oy -> add_pair ox oy
        | None, None ->
            (* Shared components: every instance touching [cx] must pair
               with an instance touching [cy]; match the remaining ones
               by rule shape when unambiguous. *)
            let tx = Sset.remove "" (ctx.cx_touchers cx)
            and ty = Sset.remove "" (ctx.cx_touchers cy) in
            if Sset.cardinal tx <> Sset.cardinal ty then
              reject `Rules
                (Printf.sprintf
                   "shared components %s and %s have different clients" cx cy);
            Sset.iter
              (fun u ->
                match Hashtbl.find_opt paired u with
                | Some v when Sset.mem v ty -> ()
                | Some _ ->
                    reject `Rules
                      (Printf.sprintf "client %s of %s paired outside %s" u cx
                         cy)
                | None -> (
                    let candidates =
                      Sset.filter
                        (fun v ->
                          (not (Hashtbl.mem paired v))
                          && List.equal String.equal (ctx.cx_shape u)
                               (ctx.cx_shape v))
                        ty
                    in
                    match Sset.elements candidates with
                    | [ v ] -> add_pair u v
                    | [] ->
                        reject `Rules
                          (Printf.sprintf "no counterpart for client %s of %s"
                             u cx)
                    | _ ->
                        reject `Ambiguous
                          (Printf.sprintf
                             "several counterparts for client %s of %s" u cx)))
              tx
        | _ ->
            reject `Rules
              (Printf.sprintf "components %s and %s have different ownership"
                 cx cy)
    end
  in
  let rec align_term vmap t1 t2 =
    match (t1, t2) with
    | Term.Var v1, Term.Var v2 -> add_map vmap "variable" v1 v2
    | Term.Sym s1, Term.Sym s2 when String.equal s1 s2 -> ()
    | Term.Sym s1, Term.Sym s2 ->
        if ctx.cx_is_instance s1 && ctx.cx_is_instance s2 then begin
          add_map smap "identity" s1 s2;
          add_pair s1 s2
        end
        else
          reject `Rules
            (Printf.sprintf "distinct non-instance symbols %s and %s" s1 s2)
    | Term.Int a, Term.Int b when a = b -> ()
    | Term.App (f, xs), Term.App (g, ys)
      when String.equal f g && List.length xs = List.length ys ->
        List.iter2 (align_term vmap) xs ys
    | _ ->
        reject `Rules
          (Printf.sprintf "patterns %s and %s do not align" (Term.to_string t1)
             (Term.to_string t2))
  in
  let align_rule (rx : Apa.rule) (ry : Apa.rule) =
    add_map rmap "rule" rx.Apa.r_name ry.Apa.r_name;
    (if rx.Apa.r_trivial_guard && ry.Apa.r_trivial_guard then ()
     else
       match (ctx.cx_guard_sig rx.Apa.r_name, ctx.cx_guard_sig ry.Apa.r_name)
       with
       | Some ga, Some gb when String.equal ga gb ->
           attested :=
             Sset.add rx.Apa.r_name (Sset.add ry.Apa.r_name !attested)
       | _ ->
           reject `Guard
             (Printf.sprintf "guards of %s and %s not attested equivalent"
                rx.Apa.r_name ry.Apa.r_name));
    let vmap = Hashtbl.create 8 in
    let tx = takes_of rx and ty = takes_of ry in
    if List.length tx <> List.length ty then
      reject `Rules
        (Printf.sprintf "%s and %s have different take counts" rx.Apa.r_name
           ry.Apa.r_name);
    List.iter2
      (fun (c1, p1, k1) (c2, p2, k2) ->
        if not (Bool.equal k1 k2) then
          reject `Rules
            (Printf.sprintf "consume mismatch between %s and %s" rx.Apa.r_name
               ry.Apa.r_name);
        add_comp c1 c2;
        align_term vmap p1 p2)
      tx ty;
    let px = puts_of rx and py = puts_of ry in
    if List.length px <> List.length py then
      reject `Rules
        (Printf.sprintf "%s and %s have different put counts" rx.Apa.r_name
           ry.Apa.r_name);
    List.iter2
      (fun (c1, t1) (c2, t2) ->
        add_comp c1 c2;
        align_term vmap t1 t2)
      px py
  in
  let process (x, y) =
    add_map smap "identity" x y;
    let sx = ctx.cx_suffix_rules x and sy = ctx.cx_suffix_rules y in
    List.iter2 (fun (_, rx) (_, ry) -> align_rule rx ry) sx sy
  in
  add_pair a0 b0;
  while not (Queue.is_empty queue) do
    process (Queue.pop queue)
  done;
  let tbl_to_map tbl = Hashtbl.fold Smap.add tbl Smap.empty in
  let p =
    Perm.of_maps ~comps:(tbl_to_map cmap) ~rules:(tbl_to_map rmap)
      ~syms:(tbl_to_map smap)
  in
  (* Global verification: the candidate really is an automorphism. *)
  List.iter
    (fun (c, init) ->
      let c' = Perm.comp p c in
      match Smap.find_opt c' ctx.cx_comp_init with
      | None ->
          reject `Rules (Printf.sprintf "image %s of %s is not a component" c' c)
      | Some init' ->
          let mapped = Term.Set.map (Perm.apply_term p) init in
          if not (Term.Set.equal mapped init') then
            reject `Initial
              (Printf.sprintf "initial contents of %s and %s differ" c c'))
    ctx.cx_comps;
  List.iter
    (fun (r : Apa.rule) ->
      let name' = Perm.rule p r.Apa.r_name in
      match Hashtbl.find_opt ctx.cx_rule_tbl name' with
      | None ->
          reject `Rules
            (Printf.sprintf "image %s of rule %s does not exist" name'
               r.Apa.r_name)
      | Some r' ->
          let img =
            ( List.map
                (fun (c, pat, k) -> (Perm.comp p c, Perm.apply_term p pat, k))
                (takes_of r),
              List.map
                (fun (c, t) -> (Perm.comp p c, Perm.apply_term p t))
                (puts_of r) )
          in
          let tgt = (takes_of r', puts_of r') in
          if positional_equal img tgt then ()
          else if alpha_canon img = alpha_canon tgt then begin
            (* Arc order changed: binding roles may permute under the
               opaque guard, so only trivially guarded rules qualify. *)
            if not (r.Apa.r_trivial_guard && r'.Apa.r_trivial_guard) then
              reject `Guard
                (Printf.sprintf
                   "rule %s is guarded and its arcs move under the renaming"
                   r.Apa.r_name)
          end
          else
            reject `Rules
              (Printf.sprintf "rule %s does not map onto %s" r.Apa.r_name name'))
    ctx.cx_rules;
  let moved =
    Hashtbl.fold
      (fun x y acc -> if String.compare x y < 0 then (x, y) :: acc else acc)
      cmap []
    |> List.sort compare
  in
  ({ g_pairs = List.rev !pair_list; g_perm = p; g_moved_comps = moved }, !attested)

(* ------------------------------------------------------------------ *)
(* Orbits, blocks and leak checks                                      *)
(* ------------------------------------------------------------------ *)

let fact n =
  let rec go acc k = if k <= 1 then acc else go (acc *. float_of_int k) (k - 1) in
  go 1.0 n

let detect ?(guard_sig = fun _ -> None) apa =
  let rules = Apa.rules apa in
  let comps = Apa.components apa in
  let comp_init =
    List.fold_left (fun m (c, i) -> Smap.add c i m) Smap.empty comps
  in
  let rule_tbl = Hashtbl.create 64 in
  List.iter (fun (r : Apa.rule) -> Hashtbl.replace rule_tbl r.Apa.r_name r) rules;
  let by_prefix : (string, (string * Apa.rule) list) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun (r : Apa.rule) ->
      match prefix_of r.Apa.r_name with
      | Some (p, s) ->
          let cur = Option.value ~default:[] (Hashtbl.find_opt by_prefix p) in
          Hashtbl.replace by_prefix p ((s, r) :: cur)
      | None -> ())
    rules;
  let instances =
    Hashtbl.fold (fun p _ acc -> p :: acc) by_prefix []
    |> List.sort String.compare
  in
  let suffix_rules p =
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      (Option.value ~default:[] (Hashtbl.find_opt by_prefix p))
  in
  let shape p = List.map fst (suffix_rules p) in
  let is_instance p = Hashtbl.mem by_prefix p in
  let touchers = Hashtbl.create 32 in
  List.iter
    (fun (r : Apa.rule) ->
      let p =
        match prefix_of r.Apa.r_name with Some (p, _) -> p | None -> ""
      in
      List.iter
        (fun c ->
          let cur = Option.value ~default:Sset.empty (Hashtbl.find_opt touchers c) in
          Hashtbl.replace touchers c (Sset.add p cur))
        (Apa.neighbourhood r))
    rules;
  let touchers_of c =
    Option.value ~default:Sset.empty (Hashtbl.find_opt touchers c)
  in
  let owned_by c =
    match Sset.elements (touchers_of c) with
    | [ p ] when not (String.equal p "") -> Some p
    | _ -> None
  in
  let owned_comps p =
    List.filter_map
      (fun (c, _) ->
        match owned_by c with Some q when String.equal p q -> Some c | _ -> None)
      comps
    |> List.sort String.compare
  in
  let r_instances = List.map (fun p -> (p, owned_comps p)) instances in
  let ctx =
    {
      cx_comps = comps;
      cx_comp_init = comp_init;
      cx_rules = rules;
      cx_rule_tbl = rule_tbl;
      cx_suffix_rules = suffix_rules;
      cx_shape = shape;
      cx_is_instance = is_instance;
      cx_touchers = touchers_of;
      cx_owned_by = owned_by;
      cx_guard_sig = guard_sig;
    }
  in
  (* Union-find, path-compressing, over instance names. *)
  let uf_find tbl x =
    let rec go x =
      match Hashtbl.find_opt tbl x with
      | None -> x
      | Some p when String.equal p x -> x
      | Some p ->
          let r = go p in
          Hashtbl.replace tbl x r;
          r
    in
    go x
  in
  let uf_union tbl x y =
    let rx = uf_find tbl x and ry = uf_find tbl y in
    if not (String.equal rx ry) then Hashtbl.replace tbl rx ry
  in
  let conn = Hashtbl.create 8 (* connected by some generator: same orbit *)
  and coside = Hashtbl.create 8 (* jointly moved on the same side: same block *)
  in
  let gens = ref []
  and rejected = ref []
  and attested_all = ref Sset.empty in
  let groups =
    List.fold_left
      (fun m p ->
        let k = String.concat "\x00" (shape p) in
        Smap.add k (p :: (Option.value ~default:[] (Smap.find_opt k m))) m)
      Smap.empty instances
    |> Smap.bindings
    |> List.map (fun (_, ps) -> List.rev ps)
  in
  List.iter
    (fun group ->
      List.iteri
        (fun i a ->
          List.iteri
            (fun j b ->
              if j > i && not (String.equal (uf_find conn a) (uf_find conn b))
              then
                match try_swap ctx a b with
                | g, att ->
                    gens := g :: !gens;
                    attested_all := Sset.union att !attested_all;
                    List.iter (fun (x, y) -> uf_union conn x y) g.g_pairs;
                    (match g.g_pairs with
                    | (a1, b1) :: rest ->
                        List.iter
                          (fun (x, y) ->
                            uf_union coside a1 x;
                            uf_union coside b1 y)
                          rest
                    | [] -> ())
                | exception Rejected (reason, detail) ->
                    rejected :=
                      { j_a = a; j_b = b; j_reason = reason; j_detail = detail }
                      :: !rejected)
            group)
        group)
    groups;
  let gens = List.rev !gens in
  (* Blocks: co-side equivalence classes of instances moved by some
     verified generator. *)
  let members = Hashtbl.create 8 in
  List.iter
    (fun g ->
      List.iter
        (fun (x, y) ->
          List.iter
            (fun z ->
              let r = uf_find coside z in
              let cur =
                Option.value ~default:Sset.empty (Hashtbl.find_opt members r)
              in
              Hashtbl.replace members r (Sset.add z cur))
            [ x; y ])
        g.g_pairs)
    gens;
  let members_of rep =
    Option.value ~default:Sset.empty (Hashtbl.find_opt members rep)
  in
  (* A generator is usable only when it is a bijection between two whole
     blocks; block merges by later generators can invalidate earlier
     ones. *)
  let valid_gens =
    List.filter
      (fun g ->
        match g.g_pairs with
        | [] -> false
        | (a1, b1) :: _ ->
            let ba = uf_find coside a1 and bb = uf_find coside b1 in
            (not (String.equal ba bb))
            && List.for_all
                 (fun (x, y) ->
                   String.equal (uf_find coside x) ba
                   && String.equal (uf_find coside y) bb)
                 g.g_pairs
            && Sset.equal (Sset.of_list (List.map fst g.g_pairs)) (members_of ba)
            && Sset.equal (Sset.of_list (List.map snd g.g_pairs)) (members_of bb))
      gens
  in
  (* Assign moved shared components to the block of their clients. *)
  let assigned = Hashtbl.create 8 (* comp -> block rep *)
  and assign_bad = Hashtbl.create 8 (* block rep -> reason *) in
  List.iter
    (fun g ->
      List.iter
        (fun (cx, cy) ->
          List.iter
            (fun cz ->
              if ctx.cx_owned_by cz = None && not (Hashtbl.mem assigned cz)
              then begin
                let ts = touchers_of cz in
                let insts = Sset.remove "" ts in
                let reps =
                  Sset.elements insts
                  |> List.map (uf_find coside)
                  |> List.sort_uniq String.compare
                in
                match reps with
                | [ r ]
                  when (not (Sset.mem "" ts))
                       && Sset.subset insts (members_of r) ->
                    Hashtbl.replace assigned cz r
                | r :: _ ->
                    Hashtbl.replace assign_bad r
                      (Printf.sprintf
                         "moved component %s is shared beyond one block" cz)
                | [] -> ()
              end)
            [ cx; cy ])
        g.g_moved_comps)
    valid_gens;
  let block_comps rep =
    let owned =
      Sset.fold (fun i acc -> owned_comps i @ acc) (members_of rep) []
    in
    let shared =
      Hashtbl.fold
        (fun c r acc -> if String.equal r rep then c :: acc else acc)
        assigned []
    in
    List.sort_uniq String.compare (owned @ shared)
  in
  let block_rules rep =
    Sset.fold
      (fun i acc ->
        List.map (fun (_, r) -> r.Apa.r_name) (suffix_rules i) @ acc)
      (members_of rep) []
    |> List.sort String.compare
  in
  (* Orbit graph: connected components of blocks under valid generators. *)
  let block_edges = Hashtbl.create 8 in
  List.iter
    (fun g ->
      match g.g_pairs with
      | (a1, b1) :: _ ->
          let ba = uf_find coside a1 and bb = uf_find coside b1 in
          let add u v =
            let cur = Option.value ~default:[] (Hashtbl.find_opt block_edges u) in
            Hashtbl.replace block_edges u ((v, g) :: cur)
          in
          add ba bb;
          add bb ba
      | [] -> ())
    valid_gens;
  let all_reps =
    Hashtbl.fold (fun r _ acc -> r :: acc) members []
    |> List.sort (fun a b ->
           String.compare (Sset.min_elt (members_of a)) (Sset.min_elt (members_of b)))
  in
  let seen = Hashtbl.create 8 in
  let orbits = ref [] in
  List.iter
    (fun rep0 ->
      if not (Hashtbl.mem seen rep0) then begin
        (* BFS collecting the component and a from-reference permutation
           per block (composed along the spanning tree). *)
        let perms = Hashtbl.create 8 in
        let ref_comps = block_comps rep0
        and ref_rules = block_rules rep0
        and ref_ids = Sset.elements (members_of rep0) in
        Hashtbl.replace perms rep0 Perm.id;
        Hashtbl.replace seen rep0 ();
        let order = ref [ rep0 ] in
        let q = Queue.create () in
        Queue.add rep0 q;
        while not (Queue.is_empty q) do
          let u = Queue.pop q in
          let pu = Hashtbl.find perms u in
          List.iter
            (fun (v, g) ->
              if not (Hashtbl.mem seen v) then begin
                Hashtbl.replace seen v ();
                let mk proj names =
                  List.fold_left
                    (fun m n ->
                      Smap.add n (proj g.g_perm (proj pu n)) m)
                    Smap.empty names
                in
                let pv =
                  Perm.of_maps ~comps:(mk Perm.comp ref_comps)
                    ~rules:(mk Perm.rule ref_rules)
                    ~syms:(mk Perm.ident ref_ids)
                in
                Hashtbl.replace perms v pv;
                order := v :: !order;
                Queue.add v q
              end)
            (Option.value ~default:[] (Hashtbl.find_opt block_edges u))
        done;
        let reps =
          List.rev !order
          |> List.sort (fun a b ->
                 String.compare (Sset.min_elt (members_of a))
                   (Sset.min_elt (members_of b)))
        in
        if List.length reps >= 2 then begin
          let blocks =
            List.map
              (fun rep ->
                {
                  b_instances = Sset.elements (members_of rep);
                  b_comps = block_comps rep;
                  b_rules = block_rules rep;
                  b_from_ref = Hashtbl.find perms rep;
                })
              reps
          in
          (* Reducibility: component images must line up and no instance
             identity may leak outside its own block's components. *)
          let why = ref "" in
          let fail msg = if String.equal !why "" then why := msg in
          List.iter
            (fun rep ->
              match Hashtbl.find_opt assign_bad rep with
              | Some msg -> fail msg
              | None -> ())
            reps;
          List.iter
            (fun b ->
              let img =
                List.map (Perm.comp b.b_from_ref) ref_comps
                |> List.sort String.compare
              in
              if not (List.equal String.equal img b.b_comps) then
                fail
                  (Printf.sprintf "components of block {%s} do not align"
                     (String.concat " " b.b_instances)))
            blocks;
          let all_ids =
            List.fold_left
              (fun acc b -> List.fold_left (fun a i -> Sset.add i a) acc b.b_instances)
              Sset.empty blocks
          in
          let comp_block =
            List.fold_left
              (fun m (i, b) ->
                List.fold_left (fun m c -> Smap.add c i m) m b.b_comps)
              Smap.empty
              (List.mapi (fun i b -> (i, b)) blocks)
          in
          let ids_at i = Sset.of_list (List.nth blocks i).b_instances in
          let rule_block (r : Apa.rule) =
            match prefix_of r.Apa.r_name with
            | Some (p, _) ->
                List.find_index (fun b -> List.mem p b.b_instances) blocks
            | None -> None
          in
          (* No orbit identity may occur as a compound-term head: the
             renaming rewrites symbols, not heads. *)
          let check_heads where t =
            let heads = term_heads Sset.empty t in
            if not (Sset.is_empty (Sset.inter heads all_ids)) then
              fail
                (Printf.sprintf "instance identity used as a term head in %s"
                   where)
          in
          List.iter
            (fun (c, init) ->
              Term.Set.iter (check_heads ("component " ^ c)) init;
              let mentioned =
                Term.Set.fold (fun t acc -> term_syms acc t) init Sset.empty
              in
              let leaked =
                match Smap.find_opt c comp_block with
                | Some i -> Sset.diff (Sset.inter mentioned all_ids) (ids_at i)
                | None -> Sset.inter mentioned all_ids
              in
              if not (Sset.is_empty leaked) then
                fail
                  (Printf.sprintf
                     "identity %s occurs initially outside its block (in %s)"
                     (Sset.min_elt leaked) c))
            comps;
          List.iter
            (fun (r : Apa.rule) ->
              let rb = rule_block r in
              List.iter
                (fun (c, pat, _) ->
                  check_heads ("rule " ^ r.Apa.r_name) pat;
                  match (rb, Smap.find_opt c comp_block) with
                  | Some i, Some j when i <> j ->
                      fail
                        (Printf.sprintf "rule %s reads another block's %s"
                           r.Apa.r_name c)
                  | None, Some _ ->
                      (* An outside rule touching orbit components may
                         ferry identities out through its bindings. *)
                      if
                        List.exists
                          (fun (_, t) -> not (Term.is_ground t))
                          (puts_of r)
                      then
                        fail
                          (Printf.sprintf
                             "rule %s outside the orbit takes %s and puts \
                              non-ground terms"
                             r.Apa.r_name c)
                  | _ -> ())
                (takes_of r);
              List.iter
                (fun (c, tpl) ->
                  check_heads ("rule " ^ r.Apa.r_name) tpl;
                  let mentioned = Sset.inter (term_syms Sset.empty tpl) all_ids in
                  match (rb, Smap.find_opt c comp_block) with
                  | Some i, Some j when i = j ->
                      if not (Sset.subset mentioned (ids_at i)) then
                        fail
                          (Printf.sprintf
                             "rule %s writes a foreign identity into %s"
                             r.Apa.r_name c)
                  | Some _, _ ->
                      if not (Sset.is_empty mentioned) then
                        fail
                          (Printf.sprintf
                             "rule %s writes its identity outside its block \
                              (into %s)"
                             r.Apa.r_name c)
                      else if not (Term.is_ground tpl) then
                        fail
                          (Printf.sprintf
                             "rule %s may ferry block data outside (into %s)"
                             r.Apa.r_name c)
                  | None, _ ->
                      if not (Sset.is_empty mentioned) then
                        fail
                          (Printf.sprintf
                             "rule %s outside the orbit writes identity %s"
                             r.Apa.r_name (Sset.min_elt mentioned)))
                (puts_of r))
            rules;
          orbits :=
            {
              o_blocks = blocks;
              o_reducible = String.equal !why "";
              o_why = !why;
            }
            :: !orbits
        end
      end)
    all_reps;
  {
    r_instances;
    r_orbits = List.rev !orbits;
    r_rejected = List.rev !rejected;
    r_attested_guards = Sset.elements !attested_all;
  }

let group_order r =
  List.fold_left
    (fun acc o ->
      if o.o_reducible then acc *. fact (List.length o.o_blocks) else acc)
    1.0 r.r_orbits

(* ------------------------------------------------------------------ *)
(* Report printing                                                     *)
(* ------------------------------------------------------------------ *)

let pp_report ppf r =
  Fmt.pf ppf "@[<v>";
  Fmt.pf ppf "instances: %d@," (List.length r.r_instances);
  List.iter
    (fun (i, comps) ->
      Fmt.pf ppf "  %s: %a@," i Fmt.(list ~sep:(any " ") string) comps)
    r.r_instances;
  if r.r_orbits = [] then Fmt.pf ppf "no symmetry orbits@,"
  else
    List.iter
      (fun o ->
        let blocks =
          String.concat " ~ "
            (List.map
               (fun b -> "{" ^ String.concat " " b.b_instances ^ "}")
               o.o_blocks)
        in
        if o.o_reducible then
          Fmt.pf ppf "orbit: %s (reducible, %g states/class)@," blocks
            (fact (List.length o.o_blocks))
        else Fmt.pf ppf "orbit: %s (not reducible: %s)@," blocks o.o_why)
      r.r_orbits;
  List.iter
    (fun j ->
      Fmt.pf ppf "rejected: %s ~ %s (%s): %s@," j.j_a j.j_b
        (reason_to_string j.j_reason)
        j.j_detail)
    r.r_rejected;
  if r.r_attested_guards <> [] then
    Fmt.pf ppf "guard equivalence attested for: %a@,"
      Fmt.(list ~sep:(any " ") string)
      r.r_attested_guards;
  Fmt.pf ppf "group order: %g@]" (group_order r)

let report_to_json r =
  let buf = Buffer.create 1024 in
  let str s =
    Buffer.add_char buf '"';
    Metrics.json_escape buf s;
    Buffer.add_char buf '"'
  in
  let str_list l =
    Buffer.add_char buf '[';
    List.iteri
      (fun i s ->
        if i > 0 then Buffer.add_string buf ", ";
        str s)
      l;
    Buffer.add_char buf ']'
  in
  Buffer.add_string buf "{\n  \"instances\": [";
  List.iteri
    (fun i (name, comps) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf "{\"name\": ";
      str name;
      Buffer.add_string buf ", \"components\": ";
      str_list comps;
      Buffer.add_char buf '}')
    r.r_instances;
  Buffer.add_string buf "],\n  \"orbits\": [";
  List.iteri
    (fun i o ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf "{\"blocks\": [";
      List.iteri
        (fun k b ->
          if k > 0 then Buffer.add_string buf ", ";
          str_list b.b_instances)
        o.o_blocks;
      Buffer.add_string buf "], \"components\": [";
      List.iteri
        (fun k b ->
          if k > 0 then Buffer.add_string buf ", ";
          str_list b.b_comps)
        o.o_blocks;
      Buffer.add_string buf
        (Printf.sprintf "], \"reducible\": %b, \"why\": " o.o_reducible);
      str o.o_why;
      Buffer.add_char buf '}')
    r.r_orbits;
  Buffer.add_string buf "],\n  \"rejected\": [";
  List.iteri
    (fun i j ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf "{\"a\": ";
      str j.j_a;
      Buffer.add_string buf ", \"b\": ";
      str j.j_b;
      Buffer.add_string buf ", \"reason\": ";
      str (reason_to_string j.j_reason);
      Buffer.add_string buf ", \"detail\": ";
      str j.j_detail;
      Buffer.add_char buf '}')
    r.r_rejected;
  Buffer.add_string buf "],\n  \"attested_guards\": ";
  str_list r.r_attested_guards;
  Buffer.add_string buf
    (Printf.sprintf ",\n  \"group_order\": %g\n}\n" (group_order r));
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Canonicalisation                                                    *)
(* ------------------------------------------------------------------ *)

module Stbl = Hashtbl.Make (struct
  type t = State.t

  let equal = State.equal
  let hash = State.hash
end)

type cblock = {
  cb_comps : string array;  (* aligned with the reference order *)
  cb_rules : string array;
  cb_insts : string array;
  cb_to_ref : Perm.t;
}

type corbit = { co_blocks : cblock array }

type canonizer = {
  cz_orbits : corbit array;
  cz_memo : (State.t * Perm.t) Stbl.t;
  cz_lock : Mutex.t;
}

let canonizer report =
  let orbits =
    List.filter (fun o -> o.o_reducible) report.r_orbits
    |> List.map (fun o ->
           let ref_block = List.hd o.o_blocks in
           let blocks =
             List.map
               (fun b ->
                 {
                   cb_comps =
                     Array.of_list
                       (List.map (Perm.comp b.b_from_ref) ref_block.b_comps);
                   cb_rules =
                     Array.of_list
                       (List.map (Perm.rule b.b_from_ref) ref_block.b_rules);
                   cb_insts =
                     Array.of_list
                       (List.map (Perm.ident b.b_from_ref) ref_block.b_instances);
                   cb_to_ref = Perm.inverse b.b_from_ref;
                 })
               o.o_blocks
           in
           { co_blocks = Array.of_list blocks })
  in
  {
    cz_orbits = Array.of_list orbits;
    cz_memo = Stbl.create 4096;
    cz_lock = Mutex.create ();
  }

let nontrivial cz = Array.length cz.cz_orbits > 0

(* Contents of a block's components, pulled back to the reference
   namespace so that signatures of different blocks are comparable. *)
let signature blk s =
  Array.to_list
    (Array.map
       (fun c -> Term.Set.map (Perm.apply_term blk.cb_to_ref) (State.get c s))
       blk.cb_comps)

let compare_sig = List.compare Term.Set.compare

let canonical cz s =
  Mutex.lock cz.cz_lock;
  match Stbl.find_opt cz.cz_memo s with
  | Some r ->
      Metrics.incr m_canon_hits;
      Mutex.unlock cz.cz_lock;
      r
  | None ->
      Mutex.unlock cz.cz_lock;
      Metrics.incr m_canon_misses;
      let perm = ref Perm.id and cur = ref s in
      Array.iter
        (fun orb ->
          let n = Array.length orb.co_blocks in
          let sigs = Array.map (fun b -> signature b !cur) orb.co_blocks in
          let order = Array.init n (fun i -> i) in
          Array.sort
            (fun i j ->
              match compare_sig sigs.(i) sigs.(j) with
              | 0 -> Int.compare i j
              | c -> c)
            order;
          if not (Array.for_all2 (fun i j -> i = j) order (Array.init n (fun i -> i)))
          then begin
            (* Move block [order.(j)] into slot [j]: map its names to the
               slot's names through the shared reference alignment. *)
            let comps = ref Smap.empty
            and rules = ref Smap.empty
            and syms = ref Smap.empty in
            for j = 0 to n - 1 do
              let src = orb.co_blocks.(order.(j))
              and dst = orb.co_blocks.(j) in
              if order.(j) <> j then begin
                Array.iteri
                  (fun k c -> comps := Smap.add c dst.cb_comps.(k) !comps)
                  src.cb_comps;
                Array.iteri
                  (fun k r -> rules := Smap.add r dst.cb_rules.(k) !rules)
                  src.cb_rules;
                Array.iteri
                  (fun k i -> syms := Smap.add i dst.cb_insts.(k) !syms)
                  src.cb_insts
              end
            done;
            let pi = Perm.of_maps ~comps:!comps ~rules:!rules ~syms:!syms in
            cur := Perm.apply_state pi !cur;
            perm := Perm.compose pi !perm
          end)
        cz.cz_orbits;
      let result = (!cur, !perm) in
      Mutex.lock cz.cz_lock;
      if not (Stbl.mem cz.cz_memo s) then Stbl.replace cz.cz_memo s result;
      (* The representative canonicalises to itself with the identity. *)
      if not (Stbl.mem cz.cz_memo !cur) then
        Stbl.replace cz.cz_memo !cur (!cur, Perm.id);
      Mutex.unlock cz.cz_lock;
      result

(* ------------------------------------------------------------------ *)
(* Ample sets                                                          *)
(* ------------------------------------------------------------------ *)

type por_module = { m_rules : string list; m_reducible : bool; m_why : string }

type por = {
  po_init : State.t;
  po_module_of : (string, int) Hashtbl.t;
  po_reducible : bool array;
  po_modules : por_module list;
}

let por_plan apa net =
  let rules = Array.of_list net.Structural.n_rules in
  let n = Array.length rules in
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else begin
      let r = find parent.(i) in
      parent.(i) <- r;
      r
    end
  in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(ri) <- rj
  in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Structural.interferes rules.(i) rules.(j) then union i j
    done
  done;
  let groups = Hashtbl.create 8 in
  for i = 0 to n - 1 do
    let r = find i in
    Hashtbl.replace groups r (i :: Option.value ~default:[] (Hashtbl.find_opt groups r))
  done;
  let module_rule_names idxs =
    List.map (fun i -> rules.(i).Structural.rs_name) idxs
    |> List.sort String.compare
  in
  let modules =
    Hashtbl.fold (fun _ idxs acc -> (module_rule_names idxs, idxs) :: acc) groups []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  (* C3 certification: a module may serve as an ample set only when it
     cannot run forever — every rule consumes and the module-internal
     token flow is acyclic, so each firing strictly decreases a
     lexicographic measure. *)
  let flow = Structural.flow_edges net in
  let certify (names, idxs) =
    let name_set = Sset.of_list names in
    match
      List.find_opt
        (fun i ->
          not
            (List.exists
               (fun (_, _, consume) -> consume)
               rules.(i).Structural.rs_takes))
        idxs
    with
    | Some i ->
        ( false,
          Printf.sprintf "rule %s never consumes" rules.(i).Structural.rs_name )
    | None ->
        let edges =
          List.filter
            (fun (a, b) -> Sset.mem a name_set && Sset.mem b name_set)
            flow
        in
        let adj = Hashtbl.create 8 in
        List.iter
          (fun (a, b) ->
            Hashtbl.replace adj a (b :: Option.value ~default:[] (Hashtbl.find_opt adj a)))
          edges;
        let color = Hashtbl.create 8 in
        let cyclic = ref None in
        let rec dfs v =
          match Hashtbl.find_opt color v with
          | Some `Done -> ()
          | Some `Active -> if !cyclic = None then cyclic := Some v
          | None ->
              Hashtbl.replace color v `Active;
              List.iter dfs (Option.value ~default:[] (Hashtbl.find_opt adj v));
              Hashtbl.replace color v `Done
        in
        List.iter dfs names;
        (match !cyclic with
        | Some v -> (false, Printf.sprintf "token-flow cycle through %s" v)
        | None -> (true, ""))
  in
  let po_modules =
    List.map
      (fun (names, idxs) ->
        let ok, why = certify (names, idxs) in
        { m_rules = names; m_reducible = ok; m_why = why })
      modules
  in
  let module_of = Hashtbl.create 64 in
  List.iteri
    (fun k m -> List.iter (fun name -> Hashtbl.replace module_of name k) m.m_rules)
    po_modules;
  {
    po_init = Apa.initial_state apa;
    po_module_of = module_of;
    po_reducible = Array.of_list (List.map (fun m -> m.m_reducible) po_modules);
    po_modules;
  }

let por_modules po = po.po_modules

let ample po s succs =
  match succs with
  | [] | [ _ ] -> succs
  | _ when State.equal s po.po_init -> succs
  | _ -> (
      let idx_of (r, _, _) =
        Hashtbl.find_opt po.po_module_of r.Apa.r_name
      in
      let idxs = List.map idx_of succs in
      if List.exists (fun i -> i = None) idxs then succs
      else
        let present =
          List.filter_map (fun i -> i) idxs |> List.sort_uniq Int.compare
        in
        match present with
        | [] | [ _ ] -> succs
        | _ -> (
            match
              List.find_opt (fun i -> po.po_reducible.(i)) present
            with
            | None -> succs
            | Some chosen ->
                Metrics.incr m_ample_reduced;
                List.filter (fun t -> idx_of t = Some chosen) succs))

(* ------------------------------------------------------------------ *)
(* Plans                                                               *)
(* ------------------------------------------------------------------ *)

type kind = Sym | Por | Sym_por

let kind_of_string = function
  | "sym" -> Some Sym
  | "por" -> Some Por
  | "sym+por" -> Some Sym_por
  | _ -> None

let kind_to_string = function
  | Sym -> "sym"
  | Por -> "por"
  | Sym_por -> "sym+por"

type plan = {
  pl_kind : kind;
  pl_report : report;
  pl_canonizer : canonizer option;
  pl_por : por option;
  pl_net : Structural.net;
  pl_indep : (string -> string -> bool) Lazy.t;
}

let plan ?guard_sig kind apa =
  let report = detect ?guard_sig apa in
  let net = Structural.of_apa apa in
  let cz =
    match kind with Sym | Sym_por -> Some (canonizer report) | Por -> None
  in
  let po =
    match kind with
    | Por | Sym_por -> Some (por_plan apa net)
    | Sym -> None
  in
  {
    pl_kind = kind;
    pl_report = report;
    pl_canonizer = cz;
    pl_por = po;
    pl_net = net;
    pl_indep = Structural.independent_all net;
  }

let canon_fn pl =
  match pl.pl_canonizer with
  | Some cz when nontrivial cz -> Some (fun s -> fst (canonical cz s))
  | _ -> None

let ample_fn pl =
  match pl.pl_por with
  | Some po
    when List.length po.po_modules > 1
         && List.exists (fun m -> m.m_reducible) po.po_modules ->
      Some (fun s succs -> ample po s succs)
  | _ -> None
