lib/spec/elaborate.ml: Ast Fmt Fsa_apa Fsa_mc Fsa_model Fsa_term Fsa_vanet Fun List Loc Option Printf String
