lib/requirements/derive.ml: Auth Fsa_model Fsa_term List
