(** Batch and daemon serving layer over the analysis pipeline.

    [Exec] is the shared executor: every analysis the CLI and the server
    both offer (reach, requirements, analyze, abstract, verify, check)
    runs through {!Exec.run}, which consults the content-addressed
    result cache ({!Fsa_store.Store}) before paying for an exploration
    and stores fresh results for the next caller — so a result computed
    by [fsa reach --cache] is served to a later [fsa serve] request over
    the same model, and vice versa.

    The server itself speaks newline-delimited JSON.  One request per
    line:

    {v
    {"id": .., "op": "reach", "source": "..", "max_states": 10000}
    {"id": .., "op": "requirements", "spec": "path.fsa", "method": "direct"}
    v}

    [op] is one of [reach], [requirements], [analyze], [abstract],
    [verify], [check], or the protocol-level [stats] (below); the model
    comes either inline ([source]) or from a file ([spec]).  Optional
    members: [max_states] (clamped to the server's bound), [timeout_ms]
    (clamped to the server's budget), [method] ([direct]|[abstract],
    requirements only), [prune] (requirements only: skip dependence
    tests for statically independent action pairs — never changes the
    result), [reduce] ([sym]|[por]|[sym+por]: symmetry / partial-order
    reduction on reach, requirements and verify; verify honours only
    the symmetry half), [shared] (requirements only, default [true]:
    answer all dependence pairs from the shared multi-pair abstraction
    engine; [false] falls back to the legacy per-pair path — verdicts
    and requirement reports are identical either way), [sos] (analyze),
    [keep] (list of action names, abstract only), [cache] (set [false]
    to bypass the store for one request) and [trace_id] (a
    client-chosen identifier for the request's trace; one is generated
    when absent).

    Each response is a single line, in request order, echoing the
    request's trace id:

    {v
    {"id": .., "trace_id": "..", "ok": true, "cached": false, "exit": 0,
     "result": {..}}
    {"id": .., "trace_id": "..", "ok": false,
     "error": {"kind": "timeout", "message": ".."}}
    v}

    Error kinds: [parse_error], [bad_request], [too_large], [timeout],
    [io_error], [internal].

    {b Tracing.}  Each request runs under {!Fsa_obs.Span.with_trace}
    with its trace id, so the spans it records — [server.request] and
    the analysis phases beneath it — form one tree per request even when
    several worker domains serve concurrently, and the flight recorder
    ({!Fsa_obs.Recorder}) attributes queueing, cache and phase events to
    it.  When a request ends in [timeout], [too_large] or [internal] and
    the server was configured with a flight directory, everything the
    recorder still holds for that trace is dumped to
    [<flight_dir>/<trace_id>.json]; requests slower than [sv_slow_ms]
    are logged and recorded as [slow] events.

    {b Introspection.}  The [stats] op takes no model and returns a
    point-in-time snapshot: interpolated p50/p90/p99 latency estimates,
    queue depth, per-worker in-flight state (op, trace id, busy time),
    cache occupancy, recorder fill, and the whole metrics registry in
    Prometheus text exposition format under ["prometheus"].

    With observability enabled the layer records [server.requests],
    [server.errors], a [server.latency_ms] histogram and one
    [server.request] span per request. *)

module Action = Fsa_term.Action
module Agent = Fsa_term.Agent
module Json = Fsa_store.Json
module Store = Fsa_store.Store

type config = {
  sv_workers : int;  (** worker domains handling requests *)
  sv_max_states : int;  (** hard state-space bound per request *)
  sv_timeout_ms : int;  (** wall-clock budget per request; 0 = none *)
  sv_store : Store.t option;  (** result cache; [None] disables caching *)
  sv_stakeholder : Action.t -> Agent.t;
      (** stakeholder assignment for the tool path (requirements) *)
  sv_prune : bool;
      (** default for static dependence pruning (requirements); requests
          may override it with a ["prune"] member *)
  sv_flight_dir : string option;
      (** where to write flight-recorder dumps for requests ending in
          [timeout], [too_large] or [internal]; [None] disables dumps *)
  sv_slow_ms : float;
      (** slow-request threshold in milliseconds; requests above it are
          logged and recorded as [slow] events.  [0.] disables the
          check. *)
}

val config :
  ?workers:int ->
  ?max_states:int ->
  ?timeout_ms:int ->
  ?store:Store.t ->
  ?stakeholder:(Action.t -> Agent.t) ->
  ?prune:bool ->
  ?flight_dir:string ->
  ?slow_ms:float ->
  unit ->
  config
(** Defaults: 1 worker, 1_000_000 states, no timeout, no store, the
    paper's default stakeholder assignment, no pruning, no flight dumps,
    no slow-request threshold. *)

exception Request_timeout
(** A request exceeded its wall-clock budget (checked cooperatively
    during state-space exploration). *)

exception Usage_error of string
(** The request or invocation is malformed at the analysis level
    (unknown sos, empty keep set, no check declarations, ...). *)

exception Too_large of int * string
(** {!Fsa_lts.Lts.State_space_too_large} raised from {!Exec.run},
    enriched with the structural growth hint of
    {!Fsa_struct.Structural.growth_hint} naming the fastest-growing
    state components (possibly [""]). *)

(** {1 Shared executor} *)

module Exec : sig
  type op = Reach | Requirements | Analyze | Abstract | Verify | Check | Report

  val op_of_string : string -> op option
  val op_to_string : op -> string

  type outcome = {
    oc_result : Json.t;  (** structured result (summary, requirements, ...) *)
    oc_output : string;  (** rendered human report, byte-identical replay *)
    oc_exit : int;  (** exit code the CLI should use: 0 clean, 1 findings *)
    oc_cached : bool;
  }

  val run :
    config ->
    op:op ->
    ?meth:Fsa_core.Analysis.dependence_method ->
    ?max_states:int ->
    ?jobs:int ->
    ?prune:bool ->
    ?flow:bool ->
    ?sos:string ->
    ?keep:string list ->
    ?reduce:Fsa_sym.Sym.kind ->
    ?shared:bool ->
    ?progress:Fsa_obs.Progress.t ->
    ?deadline_ns:int64 ->
    ?cache:bool ->
    file:string ->
    Fsa_spec.Ast.t ->
    outcome
  (** Run one analysis, cache-aware.  On a hit the stored outcome is
      replayed without touching the state space; on a miss the analysis
      runs and (if it completes) its outcome is stored.  [Check] is
      never cached: its diagnostics carry source locations, which the
      location-free digest deliberately ignores.  Timeouts and other
      errors propagate as exceptions and are never cached.
      [prune] (default [sv_prune]) enables static dependence pruning on
      the requirements path; it cannot change the result and is
      therefore not part of the cache key — a cached unpruned outcome
      serves a pruned request and vice versa.
      [flow] (default [false], request member ["flow"]) additionally
      prunes with {!Fsa_flow.Flow} taint reachability on the
      requirements and report paths; pairs it skips that static pruning
      did not are attributed ["static-flow"] in the report coverage and
      the per-pair ["pruned_by"] timing member.  Unlike [prune], [flow]
      {e is} part of the requirements/report cache keys (a ["flow"]
      param): verdicts cannot change, but flow-pruned outcomes carry
      attribution that pre-flow entries lack, so the two never replay
      for each other.
      [reduce] requests symmetry / partial-order reduction
      ({!Fsa_sym.Sym}) on the reach, requirements and verify paths; it
      {e is} part of the cache key, because reduced outcomes report
      quotient statistics.  Verify downgrades the request to its
      symmetry half first ([sym+por] to [sym], [por] to none): the
      POR-reduced graph is unsound for arbitrary properties, and the
      symmetry path model-checks the exact unfolded graph, so verify
      verdicts never depend on the reduction.
      [shared] (default [true]) answers all requirements dependence
      pairs from the shared multi-pair abstraction engine
      ({!Fsa_core.Analysis.tool}[ ~shared]); it is part of the
      requirements cache key (as an ["engine"] param, together with the
      engine version), because shared-pass and per-pair outcomes carry
      different timing sections even though verdicts are identical.
      With a store configured, the shared intermediate quotient itself
      is cached under kind ["quotient"], keyed by the APA digest, the
      erased-alphabet digest, [max_states], the effective reduction and
      the engine version — a later run over the same model reuses the
      minimised automaton without re-walking the graph.
      [Report] renders the {!Fsa_report.Report} view: the tool path
      when the spec elaborates instances (or the manual path for an
      explicitly named [sos]), otherwise the manual path over every
      declared functional model.  Report outcomes are cached like
      requirements ones (method/engine/reduce params, plus ["sos"] when
      given) under the APA+models digest: the embedded classification
      maps onto the declared functional models, so requirements and
      report entries must miss when the models change even if the APA
      part did not.  The requirements and analyze results embed the
      same report under a ["report"] member.
      [deadline_ns] (absolute, {!Fsa_obs.Span.now_ns} clock) arms a
      cooperative timeout checked during exploration; it is only used
      when no [progress] reporter is supplied.
      @raise Fsa_spec.Loc.Error on specs that do not elaborate
      @raise Usage_error on analysis-level misuse
      @raise Request_timeout past the deadline
      @raise Too_large beyond [max_states] *)
end

(** {1 Request handling} *)

val handle_line : ?seq:int -> config -> string -> string
(** Map one request line to one response line (no trailing newline).
    Never raises: every failure becomes a structured error response.
    The whole request runs under its trace id (accepted from the
    request's ["trace_id"] member or generated), which the response
    echoes.  [seq] is the server-side request sequence number, used only
    to label the flight recorder's dequeue event. *)

(** {1 Serving} *)

val request_shutdown : unit -> unit
(** Ask a running server loop to stop reading, drain the requests
    already accepted, flush their responses and return.  Safe to call
    from a signal handler. *)

val serve_channels : config -> fd_in:Unix.file_descr -> out_channel -> unit
(** Serve newline-delimited JSON requests from [fd_in] until end of
    file or {!request_shutdown}, writing one response line per request,
    in request order, to the output channel.  Requests are handled by
    [sv_workers] worker domains. *)

val serve_unix_socket : config -> path:string -> unit
(** Bind a Unix-domain stream socket at [path] and serve connections
    (serially) until {!request_shutdown}; the socket file is removed on
    exit. *)

(** {1 Batch runs} *)

module Batch : sig
  val run : config -> op:Exec.op -> jobs:int -> string list -> int
  (** Run the analysis over each spec file, [jobs] files in parallel,
      cache-aware.  Prints one JSON result line per file to stdout, in
      input order, and a summary to stderr; returns the exit code (0 if
      every file succeeded with exit 0, 1 otherwise). *)
end
