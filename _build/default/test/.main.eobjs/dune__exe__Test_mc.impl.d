test/test_mc.ml: Alcotest Array Fmt Fsa_hom Fsa_lts Fsa_mc Fsa_term Fsa_vanet Fun Lazy List String
