(** Alphabetic language homomorphisms and abstraction-based dependence
    analysis (Sect. 5.5 of the paper). *)

module Action = Fsa_term.Action
module Lts = Fsa_lts.Lts
module Action_label : Fsa_automata.Automata.LABEL with type t = Action.t
module A : module type of Fsa_automata.Automata.Make (Action_label)

type t = Action.t -> Action.t option
(** An alphabetic homomorphism on action languages; [None] erases the
    action (maps it to the empty word). *)

val identity : t

val preserve : Action.t list -> t
(** Identity on the listed actions, erase everything else. *)

val rename : (Action.t * Action.t) list -> t
val compose : t -> t -> t

val erased : t -> Action.t list -> Action.t list
(** The actions of the given alphabet the homomorphism erases. *)

val preserved : t -> Action.t list -> Action.t list
(** The actions of the given alphabet the homomorphism keeps.  An
    abstraction preserving nothing has a single-state minimal automaton
    and makes every dependence verdict vacuous. *)

val image_nfa : t -> Lts.t -> A.Nfa.t
(** The homomorphic image of a (prefix-closed) behaviour, with erased
    transitions as epsilon edges; every state accepts. *)

val minimal_automaton : t -> Lts.t -> A.Dfa.t
(** The minimal deterministic automaton of the image — what the SH tool
    displays in Figs. 10 and 11. *)

val dfa_has_target_before_avoid :
  A.Dfa.t -> avoid:Action.t -> target:Action.t -> bool

val depends_abstract :
  Lts.t -> min_action:Action.t -> max_action:Action.t -> bool
(** Abstraction-based functional dependence: preserve only the pair,
    minimise, and check that [max_action] cannot occur before
    [min_action]. *)

type dependence_timing = {
  dt_erase_ns : int64;  (** building the homomorphic image NFA *)
  dt_determinise_ns : int64;
  dt_minimise_ns : int64;
  dt_compare_ns : int64;  (** the target-before-avoid search *)
}
(** Wall-clock breakdown of one abstraction-based dependence test. *)

val depends_abstract_timed :
  Lts.t ->
  min_action:Action.t ->
  max_action:Action.t ->
  bool * dependence_timing
(** {!depends_abstract} plus the time spent in each sub-phase, so the
    analysis layer can report which phase dominates per (min, max)
    pair. *)

val dependence_matrix :
  Lts.t ->
  minima:Action.t list ->
  maxima:Action.t list ->
  (Action.t * (Action.t * bool) list) list
(** For each maximum, the dependence verdict against every minimum. *)

val is_simple : t -> Lts.t -> bool
(** Weak continuation-closure check on the product of the behaviour with
    the minimal automaton of its image: when it holds, every abstract
    continuation is realisable from every concrete representative and the
    homomorphism is simple on this behaviour (the condition the SH tool
    verifies before transferring abstract results). *)

val dot : ?name:string -> t -> Lts.t -> string
val describe_dfa : A.Dfa.t -> string
