(* Source locations for error reporting in the specification language. *)

type t = { line : int; col : int }

let dummy = { line = 0; col = 0 }

let pp ppf { line; col } = Fmt.pf ppf "line %d, column %d" line col

exception Error of t * string

let error loc fmt = Fmt.kstr (fun msg -> raise (Error (loc, msg))) fmt

let pp_exn ppf (loc, msg) = Fmt.pf ppf "%a: %s" pp loc msg
