(* Abstract syntax of the specification language.

   The language has two halves mirroring the two analysis paths of the
   paper: [component]/[instance]/[cluster] declarations describe APA
   models for the tool-assisted path (Sect. 5), while [model]/[sos]
   declarations describe functional models for the manual path (Sect. 4). *)

type sterm =
  | S_int of int
  | S_self  (* the identity of the enclosing instance *)
  | S_app of string * sterm list
      (* S_app (id, []) is a symbol, or a variable when id starts with '_' *)

type cond =
  | C_true
  | C_eq of sterm * sterm
  | C_neq of sterm * sterm
  | C_call of string * sterm list  (* builtin predicate, e.g. position(_p) *)
  | C_and of cond * cond
  | C_or of cond * cond
  | C_not of cond

type take_ast = {
  tk_read : bool;  (* read without consuming *)
  tk_comp : string;
  tk_pat : sterm;
  tk_loc : Loc.t;
}

type put_ast = { pt_comp : string; pt_term : sterm; pt_loc : Loc.t }

type rule_ast = {
  ru_name : string;
  ru_takes : take_ast list;
  ru_cond : cond;
  ru_puts : put_ast list;
  ru_loc : Loc.t;
}

type comp_item =
  | I_state of string * sterm list  (* default initial content *)
  | I_shared of string
  | I_rule of rule_ast

type component_decl = {
  cd_name : string;
  cd_items : comp_item list;
  cd_loc : Loc.t;
}

type instance_decl = {
  in_name : string;
  in_comp : string;
  in_id : int;
  in_overrides : (string * sterm list) list;
  in_loc : Loc.t;
}

type cluster_decl = {
  cl_name : string;
  cl_members : string list;
  cl_loc : Loc.t;
}

type model_action = { ma_label : string; ma_args : sterm list; ma_loc : Loc.t }

type model_flow = {
  mf_src : string;
  mf_dst : string;
  mf_policy : string option;
  mf_loc : Loc.t;
}

type model_decl = {
  md_name : string;
  md_param : string option;
  md_actions : model_action list;
  md_flows : model_flow list;
  md_loc : Loc.t;
}

type use_decl = {
  us_model : string;
  us_index : int option;
  us_alias : string;
  us_loc : Loc.t;
}

type link_decl = {
  lk_src : string * string;  (* alias, action label *)
  lk_dst : string * string;
  lk_policy : string option;
  lk_loc : Loc.t;
}

type sos_decl = {
  sd_name : string;
  sd_uses : use_decl list;
  sd_links : link_decl list;
  sd_loc : Loc.t;
}

type check_decl = {
  ck_kind : string;  (* absence | existence | universality | precedence | response *)
  ck_args : string list;  (* transition names *)
  ck_scope : (string * string) option;  (* ("before"|"after", transition) *)
  ck_loc : Loc.t;
}

type decl =
  | D_component of component_decl
  | D_instance of instance_decl
  | D_cluster of cluster_decl
  | D_model of model_decl
  | D_sos of sos_decl
  | D_check of check_decl

type t = decl list

let rec pp_sterm ppf = function
  | S_int i -> Fmt.int ppf i
  | S_self -> Fmt.string ppf "self"
  | S_app (f, []) -> Fmt.string ppf f
  | S_app (f, args) ->
    Fmt.pf ppf "%s(%a)" f Fmt.(list ~sep:comma pp_sterm) args

let rec pp_cond ppf = function
  | C_true -> Fmt.string ppf "true"
  | C_eq (a, b) -> Fmt.pf ppf "%a == %a" pp_sterm a pp_sterm b
  | C_neq (a, b) -> Fmt.pf ppf "%a != %a" pp_sterm a pp_sterm b
  | C_call (f, args) ->
    Fmt.pf ppf "%s(%a)" f Fmt.(list ~sep:comma pp_sterm) args
  | C_and (a, b) -> Fmt.pf ppf "(%a && %a)" pp_cond a pp_cond b
  | C_or (a, b) -> Fmt.pf ppf "(%a || %a)" pp_cond a pp_cond b
  | C_not c -> Fmt.pf ppf "!(%a)" pp_cond c
