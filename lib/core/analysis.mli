(** Functional security analysis — the paper's methodology as a façade.

    The {e manual} path (Sect. 4) derives requirements from a functional
    model via the partial order ζ* and its restriction χ; the {e tool}
    path (Sect. 5) derives them from an APA model via its reachability
    graph, identifying minima and maxima and testing each pair for
    functional dependence.  [crosscheck] validates the two paths against
    each other through a label correspondence. *)

module Action = Fsa_term.Action
module Agent = Fsa_term.Agent
module Sos = Fsa_model.Sos
module Auth = Fsa_requirements.Auth
module Classify = Fsa_requirements.Classify
module Lts = Fsa_lts.Lts

(** {1 Manual path} *)

type manual_report = {
  m_sos : Sos.t;
  m_stats : Sos.stats;
  m_boundary : Sos.boundary;
  m_chi : (Action.t * Action.t) list;
  m_requirements : Auth.t list;
  m_classified : (Auth.t * Classify.class_) list;
}

val manual : ?stakeholder:(Action.t -> Agent.t) -> Sos.t -> manual_report
val pp_manual_report : manual_report Fmt.t

(** {1 Tool path} *)

type dependence_method =
  | Direct  (** BFS on the reachability graph *)
  | Abstract  (** homomorphism + minimal automaton (Sect. 5.5) *)

type pair_timing = {
  pt_min : Action.t;
  pt_max : Action.t;
  pt_pruned : bool;  (** skipped by static pruning, all stages 0 *)
  pt_pruned_by : string option;
      (** which static argument settled the pair: ["static"] (skeleton
          token reachability, [?prune]) or ["static-flow"] (the
          guard-refined flow graph, [?flow]); [None] when tested *)
  pt_erase_ns : int64;
  pt_determinise_ns : int64;
  pt_minimise_ns : int64;
  pt_compare_ns : int64;
}
(** Wall-clock breakdown of one (min, max) dependence test, in matrix
    order.  The erase/determinise/minimise stages are populated by the
    [Abstract] method; under [Direct] the whole BFS is accounted to
    [pt_compare_ns]. *)

type shared_timing = {
  sh_alphabet_size : int;  (** union alphabet of the surviving pairs *)
  sh_dfa_states : int;  (** states of the shared minimal quotient *)
  sh_cached : bool;  (** the shared quotient came from the store *)
  sh_early_pairs : int;
      (** pairs already decided independent during the single pass *)
  sh_erase_ns : int64;
  sh_determinise_ns : int64;
  sh_minimise_ns : int64;
  sh_early_ns : int64;
}
(** One-off cost and shape of the shared abstraction engine's build —
    the work the per-pair [pt_erase_ns]/[pt_determinise_ns]/
    [pt_minimise_ns] columns no longer contain when the shared path
    answered the pairs (they are 0 there; only [pt_compare_ns] remains
    genuinely per-pair). *)

type phase_timings = {
  ph_explore_ns : int64;
  ph_min_max_ns : int64;
  ph_matrix_ns : int64;
  ph_derive_ns : int64;
  ph_pairs : pair_timing list;
  ph_shared : shared_timing option;
      (** [Some] iff the shared engine answered this run's pairs *)
}
(** Per-phase durations of one {!tool} run.  Always collected — the
    clock readings are negligible against the phases they measure — so
    "which phase dominates" is data even without observability
    enabled. *)

type reduction_info = {
  ri_kind : string;  (** ["sym"], ["por"] or ["sym+por"] *)
  ri_reduced_states : int;
      (** states that underwent rule matching: symmetry-canonical
          representatives under [sym], the reduced graph's states under
          plain [por] *)
  ri_reduced_transitions : int;
  ri_group_order : float;
      (** order of the detected symmetry group (1 without [sym]) *)
  ri_fallback : string option;
      (** why the plan could not be applied and the run explored
          unreduced, when it did *)
}
(** What [?reduce] actually did during a {!tool} run. *)

type tool_report = {
  t_lts : Lts.t;
  t_stats : Lts.stats;
  t_minima : Action.t list;
  t_maxima : Action.t list;
  t_matrix : (Action.t * (Action.t * bool) list) list;
  t_requirements : Auth.t list;
  t_timings : phase_timings;
  t_reduction : reduction_info option;  (** [Some] iff [?reduce] given *)
  t_engine : Fsa_hom.Hom.Shared.engine option;
      (** the shared multi-pair engine that answered the dependence
          queries, when one was built ([Abstract] method with [?shared]);
          downstream layers reuse it to project per-pair minimal
          automata without re-walking the graph *)
}

val matrix_pairs : tool_report -> (Action.t * Action.t * bool) list
(** The dependence matrix flattened to [(min, max, dependent)] triples,
    in matrix (row-major) order. *)

val dependence :
  meth:dependence_method ->
  Lts.t ->
  min_action:Action.t ->
  max_action:Action.t ->
  bool

type quotient_cache = {
  qc_find : alphabet:Action.t list -> Fsa_hom.Hom.A.Dfa.t option;
  qc_store : alphabet:Action.t list -> Fsa_hom.Hom.A.Dfa.t -> unit;
}
(** Hook for caching the shared intermediate quotient of {!tool}'s
    shared abstraction engine.  The store lives above this library, so
    the analysis takes the cache as callbacks; implementations must key
    entries on the spec digest {e and} the erased-alphabet digest {e
    and} an engine version, so per-pair-era entries never replay as
    shared-pass results. *)

val quotient :
  ?max_states:int ->
  ?jobs:int ->
  ?progress:Fsa_obs.Progress.t ->
  Fsa_sym.Sym.plan ->
  Fsa_apa.Apa.t ->
  Lts.t
(** Reduced exploration under a {!Fsa_sym.Sym.plan}: successors are
    canonicalised into orbit representatives and restricted to ample
    sets per the plan.  The result is the reduced (quotient) graph —
    right for reachability statistics, not for requirement derivation
    (its raw labels mix concrete instances along representative
    paths; use {!unfolded} or {!tool}[ ~reduce] for label-exact
    analyses). *)

val unfolded :
  ?max_states:int ->
  Fsa_sym.Sym.plan ->
  Fsa_apa.Apa.t ->
  Lts.t * int * int
(** [(lts, reps, rep_transitions)]: the {e full} reachability graph
    (modulo any ample-set restriction in the plan), rebuilt from the
    symmetry quotient by a product BFS over (representative,
    permutation) pairs.  Rule matching runs once per representative —
    [reps] of them, with [rep_transitions] raw successors — and every
    other concrete state replays its representative's successors
    through a permutation.  Labels are concrete per-instance labels, so
    all set-level analyses coincide with an unreduced exploration
    (state numbering may differ).  [max_states] bounds the
    representatives, not the concrete states.
    @raise Invalid_argument when the plan has no symmetry component.
    @raise Fsa_sym.Sym.Unsupported when the model does not carry the
    default rule-name labelling.
    @raise Lts.State_space_too_large beyond the representative budget. *)

val tool :
  ?meth:dependence_method ->
  ?max_states:int ->
  ?jobs:int ->
  ?prune:bool ->
  ?flow:Fsa_flow.Flow.t ->
  ?reduce:Fsa_sym.Sym.plan ->
  ?shared:bool ->
  ?quotient_cache:quotient_cache ->
  ?progress:Fsa_obs.Progress.t ->
  stakeholder:(Action.t -> Agent.t) ->
  Fsa_apa.Apa.t ->
  tool_report
(** With observability enabled ({!Fsa_obs.Metrics.set_enabled}), each
    pipeline phase runs inside its own span ([tool.explore],
    [tool.min_max], [tool.dependence_matrix], [tool.derive]);
    [progress] is threaded through the state-space exploration.  With
    [jobs > 1] the exploration runs on {!Lts.explore_par} over that many
    domains — the resulting graph is identical to the sequential one.

    [prune] (default [false]) skips the dependence test for (min, max)
    pairs {!Fsa_struct.Structural} proves statically independent (no
    token-flow path from the min's rule to the max's rule), recording
    them as independent directly and counting each skip in the
    [struct.pairs_pruned] metric.  The pruning is sound — a pair with no
    token flow can never test dependent — and it is automatically
    disabled when the LTS is not labelled by plain rule names, so the
    report (matrix included) is identical with and without it.

    [flow] supplies a {!Fsa_flow.Flow} graph of the same model and
    additionally skips every pair that graph proves flow-independent
    ([--prune-flow]).  The refined graph is a subgraph of the skeleton's
    (guards can only sever edges), so the same soundness argument
    applies and the report stays identical; pairs the skeleton argument
    does not already settle are attributed ["static-flow"] in
    {!pair_timing.pt_pruned_by} and counted in the [flow.pairs_pruned]
    metric.  The same rule-name labelling gate applies.

    [shared] (default [true], effective only under [Abstract]) answers
    all surviving (min, max) pairs from one shared abstraction: erase
    once to the union alphabet of their actions, determinise/minimise
    that shared image, then decide each pair on the shared automaton
    (and, on-the-fly, during the single pass over the graph where the
    independent verdict is already witnessed).  Verdicts, requirement
    reports and per-pair minimal automata are identical to the per-pair
    path — [preserve {min, max}] factors through [preserve union] and
    minimal DFAs are unique up to isomorphism.  [quotient_cache] lets
    the caller persist/reuse the shared quotient across runs (see
    {!quotient_cache}); a cache hit skips the erase/determinise/minimise
    and early-decision work entirely.

    [reduce] applies a {!Fsa_sym.Sym.plan}.  A symmetry component is
    applied as quotient-then-{!unfolded}, so the derived requirements
    are identical to the unreduced run's while rule matching is confined
    to orbit representatives; an ample-set component restricts the
    explored interleavings and forces static pruning on (see
    {!reduction_info} and DESIGN.md §13 for the soundness argument).
    [jobs] does not parallelise the unfold (the quotient dominates the
    matching cost).  Models without the default rule-name labelling
    fall back to unreduced exploration, recorded in [ri_fallback].
    The soundness gate: on every model completing un-reduced, the
    reduced run must produce the identical requirement set — the test
    suite enforces this across the bundled examples. *)

val pp_tool_report : tool_report Fmt.t

(** {1 Cross-validation} *)

type crosscheck = {
  c_agree : bool;
  c_manual_only : Auth.t list;
  c_tool_only : Auth.t list;
  c_unmapped : Action.t list;
}

val crosscheck :
  map:(Action.t -> Action.t option) ->
  manual_requirements:Auth.t list ->
  tool_requirements:Auth.t list ->
  crosscheck

val pp_crosscheck : crosscheck Fmt.t
