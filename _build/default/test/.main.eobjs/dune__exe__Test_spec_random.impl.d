test/test_spec_random.ml: Fsa_lts Fsa_spec List Printf QCheck2 QCheck_alcotest
