lib/mc/monitor.ml: Fmt Fsa_requirements Fsa_term List
