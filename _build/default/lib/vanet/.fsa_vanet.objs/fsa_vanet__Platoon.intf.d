lib/vanet/platoon.mli: Fsa_apa Fsa_model Fsa_term
