lib/graph/digraph.ml: Array Bool Fmt List Map Queue Set Stdlib
