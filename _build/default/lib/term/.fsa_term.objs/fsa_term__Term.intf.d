lib/term/term.mli: Fmt Lexer Map Set
