examples/extensions.mli:
