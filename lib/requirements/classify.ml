(* Classification of derived requirements (Sect. 4.4).

   The derivation highlights *every* functional dependency in the use
   cases; when the use case description incorporates more than the sheer
   safety-related functional description, additional requirements arise.
   The paper's requirement (4) — authenticity of the positions of
   forwarding vehicles — originates solely from the position-based
   forwarding policy, introduced for performance reasons: breaking it
   cannot cause the warning of a driver that should not be warned, so it is
   an availability concern, not a safety one.

   We automate the paper's argument: a requirement auth(x, y, _) is
   classified as safety-critical when y still functionally depends on x
   after removing every policy-induced flow from the model; otherwise the
   dependency exists only because of the policies on the removed flows and
   the requirement is attributed to them. *)

module Action = Fsa_term.Action
module AG = Fsa_model.Action_graph

type class_ =
  | Safety_critical
  | Policy_induced of string list
      (* the policies without which the dependency vanishes *)

let pp_class ppf = function
  | Safety_critical -> Fmt.string ppf "safety-critical"
  | Policy_induced [] ->
    (* a model can induce a dependency through unannotated flows: keep
       the rendering distinguishable from prose around it instead of
       printing a dangling "…: " *)
    Fmt.string ppf "policy-induced (unattributed)"
  | Policy_induced ps ->
    Fmt.pf ppf "policy-induced (availability): %a"
      Fmt.(list ~sep:comma string)
      ps

let equal_class a b =
  match a, b with
  | Safety_critical, Safety_critical -> true
  | Policy_induced xs, Policy_induced ys ->
    List.sort String.compare xs = List.sort String.compare ys
  | Safety_critical, Policy_induced _ | Policy_induced _, Safety_critical ->
    false

(* The dependency graph of the instance without policy-induced flows. *)
let safety_graph sos =
  Fsa_model.Sos.all_flows sos
  |> List.filter (fun f -> not (Fsa_model.Flow.is_policy_induced f))
  |> AG.of_flows

let policies_of sos =
  Fsa_model.Sos.all_flows sos
  |> List.filter_map Fsa_model.Flow.policy
  |> List.sort_uniq String.compare

let classify sos req =
  let g = safety_graph sos in
  let cause = Auth.cause req and effect = Auth.effect req in
  let still_dependent =
    AG.G.mem_vertex cause g && AG.G.Vset.mem effect (AG.G.reachable cause g)
  in
  if still_dependent then Safety_critical else Policy_induced (policies_of sos)

let classify_all sos reqs = List.map (fun r -> (r, classify sos r)) reqs

let safety_critical sos reqs =
  List.filter (fun r -> classify sos r = Safety_critical) reqs

let pp_classified ppf (req, cls) =
  Fmt.pf ppf "%a  [%a]" Auth.pp req pp_class cls
