(* Tests for the smart-grid scenario: a second domain exercising APA
   joins, token duplication and fan-out. *)

module Term = Fsa_term.Term
module Action = Fsa_term.Action
module Apa = Fsa_apa.Apa
module Lts = Fsa_lts.Lts
module Auth = Fsa_requirements.Auth
module Analysis = Fsa_core.Analysis
module Scenario = Fsa_grid.Scenario
module Grid_apa = Fsa_grid.Grid_apa

let tool = lazy (Analysis.tool ~stakeholder:Grid_apa.stakeholder (Grid_apa.demand_response ()))
let manual = lazy (Analysis.manual ~stakeholder:Scenario.stakeholder (Scenario.demand_response ()))

let test_manual_requirements () =
  let r = Lazy.force manual in
  Alcotest.(check int) "eight requirements" 8
    (List.length r.Analysis.m_requirements);
  (* the settlement flow is availability-only *)
  let availability =
    List.filter
      (fun (_, c) ->
        not
          (Fsa_requirements.Classify.equal_class c
             Fsa_requirements.Classify.Safety_critical))
      r.Analysis.m_classified
  in
  Alcotest.(check int) "two billing requirements are policy-induced" 2
    (List.length availability);
  List.iter
    (fun (req, _) ->
      Alcotest.(check string) "billing effect" "bill"
        (Action.label (Auth.effect req)))
    availability

let test_boundaries () =
  let r = Lazy.force manual in
  Alcotest.(check int) "three inputs" 3
    (List.length r.Analysis.m_boundary.Fsa_model.Sos.incoming);
  Alcotest.(check int) "three outputs" 3
    (List.length r.Analysis.m_boundary.Fsa_model.Sos.outgoing)

let test_tool_path () =
  let r = Lazy.force tool in
  Alcotest.(check int) "eight requirements from the behaviour" 8
    (List.length r.Analysis.t_requirements);
  Alcotest.(check int) "one dead state" 1 r.Analysis.t_stats.Lts.nb_deadlocks;
  Alcotest.(check (list string)) "minima"
    [ "M1_measure"; "M2_measure"; "MK_quote" ]
    (List.map Action.to_string r.Analysis.t_minima);
  Alcotest.(check (list string)) "maxima"
    [ "B1_switch"; "B2_switch"; "HE_bill" ]
    (List.map Action.to_string r.Analysis.t_maxima)

let test_crosscheck () =
  let t = Lazy.force tool and m = Lazy.force manual in
  let c =
    Analysis.crosscheck ~map:Grid_apa.manual_action_of_label
      ~manual_requirements:m.Analysis.m_requirements
      ~tool_requirements:t.Analysis.t_requirements
  in
  Alcotest.(check bool) "paths agree" true c.Analysis.c_agree

let test_join_semantics () =
  (* the aggregate needs BOTH readings: it is not enabled after a single
     collect *)
  let apa = Grid_apa.demand_response () in
  let rec drive st = function
    | [] -> st
    | name :: rest ->
      let next =
        List.find_map
          (fun (r, _, s) -> if Apa.rule_name r = name then Some s else None)
          (Apa.step apa st)
      in
      (match next with
      | Some s -> drive s rest
      | None -> Alcotest.fail ("cannot drive " ^ name))
  in
  let st =
    drive (Apa.initial_state apa) [ "M1_measure"; "M1_report"; "C_collect" ]
  in
  Alcotest.(check bool) "aggregate blocked on one reading" true
    (List.for_all
       (fun (r, _, _) -> Apa.rule_name r <> "C_aggregate")
       (Apa.step apa st));
  let st =
    drive st [ "M2_measure"; "M2_report"; "C_collect" ]
  in
  Alcotest.(check bool) "aggregate enabled with both" true
    (List.exists
       (fun (r, _, _) -> Apa.rule_name r = "C_aggregate")
       (Apa.step apa st))

let test_fanout_semantics () =
  (* dispatch produces one command per breaker in a single transition *)
  let apa = Grid_apa.demand_response () in
  let lts = Lts.explore apa in
  (* find a transition labelled HE_dispatch and inspect its target *)
  let tr =
    List.find
      (fun tr -> Action.label tr.Lts.t_label = "HE_dispatch")
      (Lts.transitions lts)
  in
  let state = Lts.state lts tr.Lts.t_dst in
  Alcotest.(check int) "two commands on the field network" 2
    (Term.Set.cardinal (Apa.State.get "fieldnet" state))

let test_duplication_semantics () =
  (* ingest feeds both the decision and billing: after a full run the
     ledger holds the invoice AND both breakers switched *)
  let lts = Lts.explore (Grid_apa.demand_response ()) in
  match Lts.deadlocks lts with
  | [ dead ] ->
    let state = Lts.state lts dead in
    Alcotest.(check int) "invoice written" 1
      (Term.Set.cardinal (Apa.State.get "ledger" state));
    Alcotest.(check int) "breaker 1 off" 1
      (Term.Set.cardinal (Apa.State.get "bstate1" state));
    Alcotest.(check int) "breaker 2 off" 1
      (Term.Set.cardinal (Apa.State.get "bstate2" state))
  | _ -> Alcotest.fail "expected a unique dead state"

let test_scaling_households () =
  (* the model is parameterised: three households work as well *)
  let manual3 =
    Analysis.manual ~stakeholder:Scenario.stakeholder
      (Scenario.demand_response ~households:3 ())
  in
  (* 3 meters x (3 switches + bill) + quote x 3 switches = 15 *)
  Alcotest.(check int) "fifteen requirements with three households" 15
    (List.length manual3.Analysis.m_requirements);
  let tool3 =
    Analysis.tool ~stakeholder:Grid_apa.stakeholder
      (Grid_apa.demand_response ~households:3 ())
  in
  let c =
    Analysis.crosscheck ~map:Grid_apa.manual_action_of_label
      ~manual_requirements:manual3.Analysis.m_requirements
      ~tool_requirements:tool3.Analysis.t_requirements
  in
  Alcotest.(check bool) "three-household paths agree" true c.Analysis.c_agree

let suite =
  [ Alcotest.test_case "manual requirements" `Quick test_manual_requirements;
    Alcotest.test_case "boundaries" `Quick test_boundaries;
    Alcotest.test_case "tool path" `Quick test_tool_path;
    Alcotest.test_case "crosscheck" `Quick test_crosscheck;
    Alcotest.test_case "join semantics" `Quick test_join_semantics;
    Alcotest.test_case "fan-out semantics" `Quick test_fanout_semantics;
    Alcotest.test_case "duplication semantics" `Quick test_duplication_semantics;
    Alcotest.test_case "scaling households" `Quick test_scaling_households ]
