test/test_sim.ml: Alcotest Filename Fmt Fsa_apa Fsa_core Fsa_mc Fsa_sim Fsa_term Fsa_vanet Fun In_channel List String Sys
