examples/custom_spec.ml: Array Fmt Fsa_core Fsa_lts Fsa_model Fsa_requirements Fsa_spec Fsa_term List String Sys
