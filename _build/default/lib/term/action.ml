(* Atomic actions of the functional model, e.g. [sense(ESP_1, sW)],
   [send(cam(pos))] or [show(HMI_w, warn)].  An action has a label, an
   optional acting component and data arguments.  Actions are the vertices
   of functional flow graphs and the transition labels of APA behaviours. *)

type t = { label : string; actor : Agent.t option; args : Term.t list }

let make ?actor ?(args = []) label = { label; actor; args }

let label t = t.label
let actor t = t.actor
let args t = t.args

let compare a b =
  let c = String.compare a.label b.label in
  if c <> 0 then c
  else
    let c = Option.compare Agent.compare a.actor b.actor in
    if c <> 0 then c else Term.compare_list a.args b.args

let equal a b = compare a b = 0

(* Break-free for the same reason as {!Term.pp}. *)
let pp ppf t =
  match t.actor, t.args with
  | None, [] -> Fmt.string ppf t.label
  | None, args ->
    Fmt.pf ppf "%s(%a)" t.label Fmt.(list ~sep:(any ", ") Term.pp) args
  | Some actor, [] -> Fmt.pf ppf "%s(%a)" t.label Agent.pp actor
  | Some actor, args ->
    Fmt.pf ppf "%s(%a, %a)" t.label Agent.pp actor
      Fmt.(list ~sep:(any ", ") Term.pp)
      args

let to_string t = Fmt.str "%a" pp t

(* A short, unambiguous identifier in the style of the SH verification
   tool's transition names, e.g. [V1_send] for [send(CU_1, cam(pos))] when
   the communication unit belongs to vehicle [V_1].  The [system] argument
   names the enclosing system instance. *)
let tool_name ?system t =
  match system with
  | Some s -> Printf.sprintf "%s_%s" s t.label
  | None -> (
    match t.actor with
    | None -> t.label
    | Some a -> Printf.sprintf "%s_%s" (Agent.to_string a) t.label)

let reindex f t = { t with actor = Option.map (Agent.reindex f) t.actor }

let map_args f t = { t with args = List.map f t.args }

let is_parameterised t =
  (match t.actor with Some a -> Agent.is_parameterised a | None -> false)
  || List.exists (fun a -> not (Term.is_ground a)) t.args

(* The shape of an action forgets the instance index of the actor: used to
   recognise families of requirements that differ only in the instance. *)
type shape = { s_label : string; s_role : string option; s_args : Term.t list }

let shape t =
  { s_label = t.label;
    s_role = Option.map Agent.role t.actor;
    s_args = t.args }

let compare_shape a b =
  let c = String.compare a.s_label b.s_label in
  if c <> 0 then c
  else
    let c = Option.compare String.compare a.s_role b.s_role in
    if c <> 0 then c else Term.compare_list a.s_args b.s_args

let pp_shape ppf s =
  let role = match s.s_role with None -> "" | Some r -> r ^ "_x, " in
  Fmt.pf ppf "%s(%s%a)" s.s_label role Fmt.(list ~sep:comma Term.pp) s.s_args

(* Parsing.  An action is written [label], [label(args)] or
   [label(Actor, args)]: the first argument is taken as the actor when it is
   a bare identifier that parses as an indexed or well-known role written in
   capitals (e.g. ESP_1, GPS_w, RSU, HMI_2).  This is the convention used in
   the paper's Table 1. *)
let looks_like_agent = function
  | Term.Sym s ->
    s <> "" && s.[0] >= 'A' && s.[0] <= 'Z'
  | Term.Int _ | Term.Var _ | Term.App _ -> false

let of_string s =
  let lx = Lexer.make s in
  match
    let label =
      match Lexer.next lx with
      | Lexer.Ident id -> id
      | _ -> raise (Lexer.Error ("expected an action label", 0))
    in
    if Lexer.at_eof lx then { label; actor = None; args = [] }
    else begin
      Lexer.expect lx Lexer.Lparen ~what:"(";
      let rec collect acc =
        let t = Term.parse_term lx in
        match Lexer.next lx with
        | Lexer.Comma -> collect (t :: acc)
        | Lexer.Rparen -> List.rev (t :: acc)
        | _ -> raise (Lexer.Error ("expected ',' or ')'", 0))
      in
      let all = collect [] in
      match all with
      | first :: rest when looks_like_agent first ->
        let actor =
          match first with
          | Term.Sym name -> Agent.of_string name
          | _ -> assert false
        in
        { label; actor = Some actor; args = rest }
      | args -> { label; actor = None; args }
    end
  with
  | action ->
    if Lexer.at_eof lx then Ok action
    else Error (Printf.sprintf "trailing input in action %S" s)
  | exception Lexer.Error (msg, pos) ->
    Error (Printf.sprintf "parse error in action %S at %d: %s" s pos msg)

let of_string_exn s =
  match of_string s with Ok a -> a | Error msg -> invalid_arg msg

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)
