(* Alphabetic language homomorphisms and abstraction-based analysis
   (Sect. 5.5 of the paper).

   Behaviour abstraction of an APA is formalised by alphabetic language
   homomorphisms h : Sigma* -> Sigma'*: certain transitions are ignored
   (mapped to the empty word) and others are renamed.  Applying h to a
   reachability graph yields an NFA with epsilon transitions whose
   determinised, minimised form is the "minimal automaton for the
   homomorphic image" that the SH verification tool computes and displays
   (Figs. 10 and 11). *)

module Action = Fsa_term.Action
module Lts = Fsa_lts.Lts

let log_src =
  Logs.Src.create "fsa.hom" ~doc:"homomorphic abstraction and minimisation"

module Log = (val Logs.src_log log_src)

module Metrics = Fsa_obs.Metrics
module Span = Fsa_obs.Span

let m_minimal_automata = Metrics.counter "hom.minimal_automata"
let m_dependence_tests = Metrics.counter "hom.dependence_tests"

module Action_label = struct
  type t = Action.t

  let compare = Action.compare
  let pp = Action.pp
end

module A = Fsa_automata.Automata.Make (Action_label)

(* An alphabetic homomorphism: [None] maps the action to the empty word. *)
type t = Action.t -> Action.t option

let identity : t = fun a -> Some a

(* Preserve exactly the listed actions, erase everything else — the
   homomorphism used in the paper to focus on one (minimum, maximum)
   pair.  The set is built once, when the homomorphism is constructed:
   the closure is applied once per transition of the behaviour, and a
   per-call list scan shows up in abstraction profiles. *)
let preserve actions : t =
  let keep = Action.Set.of_list actions in
  fun a -> if Action.Set.mem a keep then Some a else None

let rename assoc : t =
  (* first binding wins, matching the order semantics of an assoc list *)
  let table =
    List.fold_left
      (fun m (x, y) ->
        if Action.Map.mem x m then m else Action.Map.add x y m)
      Action.Map.empty assoc
  in
  fun a ->
    match Action.Map.find_opt a table with
    | Some y -> Some y
    | None -> Some a

let compose (h2 : t) (h1 : t) : t = fun a -> Option.bind (h1 a) h2

(* Restrictions of a homomorphism to a concrete alphabet, for static
   soundness checks: an abstraction that erases the whole alphabet (or
   preserves an action the alphabet does not contain) yields a vacuous
   minimal automaton and silently meaningless dependence verdicts. *)
let erased (h : t) alphabet =
  List.filter (fun a -> Option.is_none (h a)) alphabet

let preserved (h : t) alphabet =
  List.filter (fun a -> Option.is_some (h a)) alphabet

(* ------------------------------------------------------------------ *)
(* Application to behaviours                                            *)
(* ------------------------------------------------------------------ *)

(* The homomorphic image of a reachability graph, as an NFA with epsilon
   transitions.  The behaviour of an APA is prefix closed, hence every
   state accepts. *)
let image_nfa (h : t) lts =
  let n = Lts.nb_states lts in
  let edges =
    (* fold + rev keeps the edge order of [Lts.transitions] without
       materializing the transition list *)
    Lts.fold_transitions
      (fun tr acc -> (tr.Lts.t_src, h tr.Lts.t_label, tr.Lts.t_dst) :: acc)
      lts []
    |> List.rev
  in
  let all = List.init n Fun.id |> Fsa_automata.Automata.Int_set.of_list in
  A.Nfa.create ~nb_states:n
    ~start:(Fsa_automata.Automata.Int_set.singleton (Lts.initial lts))
    ~finals:all ~edges

(* The minimal deterministic automaton of the homomorphic image. *)
let minimal_automaton (h : t) lts =
  Span.with_ ~cat:"hom" "hom.minimal_automaton" @@ fun () ->
  Metrics.incr m_minimal_automata;
  let dfa = A.Dfa.minimize (A.Dfa.determinize (image_nfa h lts)) in
  Log.debug (fun m ->
      m "minimal automaton of %s image: %d states, %d transitions"
        (Lts.name lts) (A.Dfa.nb_states dfa) (A.Dfa.nb_transitions dfa));
  dfa

(* ------------------------------------------------------------------ *)
(* Functional dependence by abstraction                                 *)
(* ------------------------------------------------------------------ *)

(* Reading functional dependence off the abstract automaton: with the
   homomorphism preserving only {min, max}, the maximum depends on the
   minimum iff no accepted word contains [max] before the first [min] —
   graphically, iff every path of the minimal automaton reaches a
   [max]-edge only after a [min]-edge (Fig. 10), whereas independence shows
   as a diamond (Fig. 11). *)
let dfa_has_target_before_avoid dfa ~avoid ~target =
  let module IS = Fsa_automata.Automata.Int_set in
  (* [delta] is the DFA's per-state adjacency array — no rescan of the
     full transition list per visited state *)
  let delta = A.Dfa.delta dfa in
  let rec go visited frontier =
    match frontier with
    | [] -> false
    | s :: rest ->
      if IS.mem s visited then go visited rest
      else begin
        let visited = IS.add s visited in
        let hit = ref false in
        let next = ref rest in
        A.Lmap.iter
          (fun l d ->
            if Action.equal l target then hit := true
            else if not (Action.equal l avoid) then next := d :: !next)
          delta.(s);
        !hit || go visited !next
      end
  in
  go IS.empty [ A.Dfa.start dfa ]

(* Wall-clock breakdown of one abstraction-based dependence test: the
   four sub-phases the paper's tool pipeline spends its time in. *)
type dependence_timing = {
  dt_erase_ns : int64;
  dt_determinise_ns : int64;
  dt_minimise_ns : int64;
  dt_compare_ns : int64;
}

let depends_abstract_timed lts ~min_action ~max_action =
  Metrics.incr m_dependence_tests;
  let h = preserve [ min_action; max_action ] in
  let dfa, dt_erase_ns, dt_determinise_ns, dt_minimise_ns =
    (* same span and counter as [minimal_automaton], with per-stage
       clock readings in between *)
    Span.with_ ~cat:"hom" "hom.minimal_automaton" @@ fun () ->
    Metrics.incr m_minimal_automata;
    let t0 = Span.now_ns () in
    let nfa = image_nfa h lts in
    let t1 = Span.now_ns () in
    let det = A.Dfa.determinize nfa in
    let t2 = Span.now_ns () in
    let dfa = A.Dfa.minimize det in
    let t3 = Span.now_ns () in
    Log.debug (fun m ->
        m "minimal automaton of %s image: %d states, %d transitions"
          (Lts.name lts) (A.Dfa.nb_states dfa) (A.Dfa.nb_transitions dfa));
    (dfa, Int64.sub t1 t0, Int64.sub t2 t1, Int64.sub t3 t2)
  in
  let t3 = Span.now_ns () in
  let dep =
    not (dfa_has_target_before_avoid dfa ~avoid:min_action ~target:max_action)
  in
  let t4 = Span.now_ns () in
  ( dep,
    { dt_erase_ns;
      dt_determinise_ns;
      dt_minimise_ns;
      dt_compare_ns = Int64.sub t4 t3 } )

let depends_abstract lts ~min_action ~max_action =
  fst (depends_abstract_timed lts ~min_action ~max_action)

(* Testing each maximum against each minimum (Sect. 5.5): the dependence
   matrix of the behaviour. *)
let dependence_matrix lts ~minima ~maxima =
  List.map
    (fun mx ->
      (mx,
       List.map
         (fun mn -> (mn, depends_abstract lts ~min_action:mn ~max_action:mx))
         minima))
    maxima

(* ------------------------------------------------------------------ *)
(* Simplicity of homomorphisms                                          *)
(* ------------------------------------------------------------------ *)

(* The SH verification tool checks "simplicity" of a homomorphism: a
   sufficient condition under which satisfaction of properties on the
   abstract level carries over (approximately) to the concrete level.  We
   implement the weak continuation-closure check on the product of the
   concrete behaviour with the minimal automaton of its image:

     for every reachable product state (q, m) and every abstract action x
     enabled in m, some concrete path from q of erased transitions
     followed by one transition t with h(t) = x must exist.

   If this holds everywhere, every abstract continuation is realisable
   from every concrete representative, so the abstraction adds no spurious
   decisions: h is simple on the given behaviour. *)
let is_simple (h : t) lts =
  let dfa = minimal_automaton h lts in
  let module IS = Fsa_automata.Automata.Int_set in
  (* the graph already indexes transitions by source state *)
  let succ = Lts.succ lts in
  let delta = A.Dfa.delta dfa in
  (* abstract letters enabled in a DFA state *)
  let enabled m = List.map fst (A.Lmap.bindings delta.(m)) in
  (* can concrete state q produce abstract letter x after erased steps? *)
  let can_produce q x =
    let rec go visited = function
      | [] -> false
      | s :: rest ->
        if IS.mem s visited then go visited rest
        else begin
          let visited = IS.add s visited in
          let hit = ref false in
          let next = ref rest in
          List.iter
            (fun tr ->
              match h tr.Lts.t_label with
              | Some y when Action.equal y x -> hit := true
              | Some _ -> ()
              | None -> next := tr.Lts.t_dst :: !next)
            (succ s);
          !hit || go visited !next
        end
    in
    go IS.empty [ q ]
  in
  (* BFS over reachable product states *)
  let module PS = Set.Make (struct
    type t = int * int

    let compare = Stdlib.compare
  end) in
  let step_abstract m l = A.Dfa.step dfa m l in
  let ok = ref true in
  let visited = ref PS.empty in
  let queue = Queue.create () in
  Queue.add (Lts.initial lts, A.Dfa.start dfa) queue;
  while (not (Queue.is_empty queue)) && !ok do
    let (q, m) as ps = Queue.pop queue in
    if not (PS.mem ps !visited) then begin
      visited := PS.add ps !visited;
      List.iter
        (fun x -> if not (can_produce q x) then ok := false)
        (enabled m);
      List.iter
        (fun tr ->
          match h tr.Lts.t_label with
          | None -> Queue.add (tr.Lts.t_dst, m) queue
          | Some x -> (
            match step_abstract m x with
            | Some m' -> Queue.add (tr.Lts.t_dst, m') queue
            | None -> ok := false (* image outside abstract language *)))
        (succ q)
    end
  done;
  !ok

(* ------------------------------------------------------------------ *)
(* Rendering                                                            *)
(* ------------------------------------------------------------------ *)

let dot ?(name = "minimal_automaton") (h : t) lts =
  A.Dfa.dot ~name (minimal_automaton h lts)

(* A compact description of the shape of a minimal automaton, used to
   compare against the figures of the paper. *)
let describe_dfa dfa =
  Fmt.str "%d states, %d transitions, %d final" (A.Dfa.nb_states dfa)
    (A.Dfa.nb_transitions dfa)
    (Fsa_automata.Automata.Int_set.cardinal (A.Dfa.finals dfa))
