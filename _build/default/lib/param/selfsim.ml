(* Self-similarity of parameterised behaviours (Sect. 6 outlook).

   For families parameterised by a number of replicated components, the
   paper's outlook (building on Ochsenschlaeger/Rieke's uniform
   parameterisations) reduces verification of the whole family to a
   finite-state problem via *self-similarity*: abstracting the behaviour
   of the (n+1)-component instance onto the alphabet of the n-component
   instance yields exactly the n-component behaviour.

   This module checks that condition instance by instance: the minimal
   automaton of the homomorphic image of family(n+1) must be language
   equivalent to the minimal automaton of family(n)'s behaviour.  Together
   with a uniform requirement schema (see {!Family}), the checked range
   provides the finite-state evidence for the parameterised requirement
   statements of Sect. 4.4. *)

module Action = Fsa_term.Action
module Apa = Fsa_apa.Apa
module Lts = Fsa_lts.Lts
module Hom = Fsa_hom.Hom
module V = Fsa_vanet.Vehicle_apa

(* Abstracting [bigger] under [hom] yields exactly the behaviour of
   [smaller]. *)
let abstraction_equal ~bigger ~smaller ~hom =
  let abstracted = Hom.minimal_automaton hom bigger in
  let reference = Hom.minimal_automaton Hom.identity smaller in
  Hom.A.Dfa.language_equal abstracted reference

type step = { parameter : int; similar : bool }

type report = { steps : step list; self_similar : bool }

let pp_report ppf r =
  let pp_step ppf s =
    Fmt.pf ppf "n = %d -> n+1: %s" s.parameter
      (if s.similar then "similar" else "NOT similar")
  in
  Fmt.pf ppf "@[<v>%a@,family self-similar on the checked range: %b@]"
    Fmt.(list ~sep:cut pp_step)
    r.steps r.self_similar

(* Check self-similarity for each n in [range]: family (n+1) abstracted
   under [hom_for n] equals family n. *)
let check_family ?(max_states = 1_000_000) ~family ~hom_for range =
  let steps =
    List.map
      (fun n ->
        let bigger = Lts.explore ~max_states (family (n + 1)) in
        let smaller = Lts.explore ~max_states (family n) in
        { parameter = n;
          similar = abstraction_equal ~bigger ~smaller ~hom:(hom_for n) })
      range
  in
  { steps; self_similar = List.for_all (fun s -> s.similar) steps }

(* ------------------------------------------------------------------ *)
(* The paper's vehicle families                                        *)
(* ------------------------------------------------------------------ *)

(* chain(n+1) -> chain(n): hide the new receiver V(n+1) entirely and
   rename the forward action of V(n) (a forwarder in the longer chain)
   to its show action (as the receiver of the shorter chain).  Both
   actions consume the warning and the own position, so the behaviours
   coincide. *)
let chain_hom n : Hom.t =
 fun a ->
  let label = Action.label a in
  if String.equal label (Action.label (V.v_fwd n)) then Some (V.v_show n)
  else if
    List.exists
      (fun erased -> String.equal label (Action.label erased))
      [ V.v_pos (n + 1); V.v_rec (n + 1); V.v_show (n + 1) ]
  then None
  else Some a

(* pairs(k+1) -> pairs(k): hide the additional warner/receiver pair. *)
let pairs_hom k : Hom.t =
 fun a ->
  let hidden =
    [ V.v_sense ((2 * k) + 1); V.v_pos ((2 * k) + 1); V.v_send ((2 * k) + 1);
      V.v_pos ((2 * k) + 2); V.v_rec ((2 * k) + 2); V.v_show ((2 * k) + 2) ]
  in
  if List.exists (Action.equal a) hidden then None else Some a

(* ------------------------------------------------------------------ *)
(* Inductive verification of safety patterns over a family              *)
(* ------------------------------------------------------------------ *)

(* Verification of a safety pattern (over the base instance's alphabet)
   for the whole family, by induction on the parameter:

   - base case: the pattern holds on family(base);
   - step: family(n+1) abstracted under hom_for(n) is language-equivalent
     to family(n) (self-similarity), so the pattern — a statement about
     the preserved alphabet's prefix language — transfers.

   The range provides the finite-state evidence for the steps; the
   per-instance abstract checks double as a sanity net. *)
type family_verification = {
  fv_base : bool;
  fv_steps : report;
  fv_abstract_checks : (int * bool) list;
      (* pattern on the projected language of each range instance + 1 *)
  fv_holds : bool;
}

let pp_family_verification ppf fv =
  Fmt.pf ppf
    "@[<v>base case: %b@,%a@,abstract checks: %a@,family-level verdict: %b@]"
    fv.fv_base pp_report fv.fv_steps
    Fmt.(
      list ~sep:comma (fun ppf (n, ok) -> Fmt.pf ppf "n=%d:%b" (n + 1) ok))
    fv.fv_abstract_checks fv.fv_holds

(* The composed abstraction from family(n) all the way down to the base
   instance's alphabet. *)
let rec hom_to_base ~hom_for ~base n : Hom.t =
  if n <= base then Hom.identity
  else
    Hom.compose (hom_to_base ~hom_for ~base (n - 1)) (hom_for (n - 1))

let verify_uniform_safety ?(max_states = 1_000_000) ~family ~hom_for ~base
    ~range pattern =
  if Fsa_mc.Pattern.is_liveness pattern then
    invalid_arg "Selfsim.verify_uniform_safety: safety patterns only";
  let base_lts = Lts.explore ~max_states (family base) in
  let fv_base = Fsa_mc.Pattern.holds base_lts pattern in
  let fv_steps = check_family ~max_states ~family ~hom_for range in
  let fv_abstract_checks =
    List.map
      (fun n ->
        let lts = Lts.explore ~max_states (family (n + 1)) in
        let hom = hom_to_base ~hom_for ~base (n + 1) in
        (n, Fsa_mc.Pattern.holds_abstract hom lts pattern))
      range
  in
  { fv_base;
    fv_steps;
    fv_abstract_checks;
    fv_holds =
      fv_base && fv_steps.self_similar
      && List.for_all snd fv_abstract_checks }

let check_chain ?(range = [ 2; 3; 4 ]) () =
  check_family ~family:V.chain ~hom_for:chain_hom range

let check_pairs ?(range = [ 1; 2 ]) () =
  check_family ~family:V.pairs ~hom_for:pairs_hom range
