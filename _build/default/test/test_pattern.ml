(* Tests for Fsa_mc.Pattern: property-specification patterns over the
   vehicular behaviours. *)

module Action = Fsa_term.Action
module Lts = Fsa_lts.Lts
module Pattern = Fsa_mc.Pattern
module V = Fsa_vanet.Vehicle_apa

let lts2 = lazy (Lts.explore (V.two_vehicles ()))
let lts4 = lazy (Lts.explore (V.four_vehicles ()))

let holds2 p = Pattern.holds (Lazy.force lts2) p
let check2 p = Pattern.check (Lazy.force lts2) p

let sense1 = Pattern.action_is (V.v_sense 1)
let send1 = Pattern.action_is (V.v_send 1)
let rec2 = Pattern.action_is (V.v_rec 2)
let show2 = Pattern.action_is (V.v_show 2)

let test_absence () =
  (* no "V1_show" ever occurs in the warner/receiver scenario *)
  Alcotest.(check bool) "absent action" true
    (holds2 (Pattern.make (Pattern.Absence (Pattern.action_is (V.v_show 1)))));
  (* but V2_show does occur *)
  let r = check2 (Pattern.make (Pattern.Absence show2)) in
  Alcotest.(check bool) "present action violates absence" false r.Pattern.holds_;
  (match r.Pattern.counterexample with
  | Some trace ->
    Alcotest.(check bool) "counterexample ends in the offending action" true
      (match List.rev trace with
      | last :: _ -> Action.equal last (V.v_show 2)
      | [] -> false)
  | None -> Alcotest.fail "expected a counterexample")

let test_universality () =
  Alcotest.(check bool) "not every action is a sense" false
    (holds2 (Pattern.make (Pattern.Universality sense1)));
  Alcotest.(check bool) "every action is some vehicle action" true
    (holds2
       (Pattern.make
          (Pattern.Universality
             (Pattern.pred "vehicle action" (fun a ->
                  String.length (Action.label a) > 0
                  && (Action.label a).[0] = 'V')))))

let test_existence () =
  (* on every complete run the driver is warned *)
  Alcotest.(check bool) "warning shown on every maximal trace" true
    (holds2 (Pattern.make (Pattern.Existence show2)));
  Alcotest.(check bool) "V1_show never happens" false
    (holds2 (Pattern.make (Pattern.Existence (Pattern.action_is (V.v_show 1)))))

let test_precedence () =
  (* the authenticity property itself: sensing precedes the warning *)
  Alcotest.(check bool) "sense precedes show" true
    (holds2 (Pattern.make (Pattern.Precedence (sense1, show2))));
  Alcotest.(check bool) "send precedes rec" true
    (holds2 (Pattern.make (Pattern.Precedence (send1, rec2))));
  (* the converse precedence is violated *)
  let r = check2 (Pattern.make (Pattern.Precedence (show2, sense1))) in
  Alcotest.(check bool) "show does not precede sense" false r.Pattern.holds_;
  (* independence in the four-vehicle scenario: V3's sensing does NOT
     precede V2's warning *)
  Alcotest.(check bool) "cross-pair precedence fails" false
    (Pattern.holds (Lazy.force lts4)
       (Pattern.make
          (Pattern.Precedence (Pattern.action_is (V.v_sense 3), show2))))

let test_response () =
  (* every sensed danger is eventually shown to the receiving driver *)
  Alcotest.(check bool) "show responds to sense" true
    (holds2 (Pattern.make (Pattern.Response (sense1, show2))));
  (* nothing responds to the show action except trace end *)
  Alcotest.(check bool) "sense does not respond to show" false
    (holds2 (Pattern.make (Pattern.Response (show2, sense1))))

let test_scopes () =
  (* before the first send, no receive can have happened *)
  Alcotest.(check bool) "absence of rec before send" true
    (holds2
       (Pattern.make ~scope:(Pattern.Before send1) (Pattern.Absence rec2)));
  (* after the send, the receive eventually happens *)
  Alcotest.(check bool) "existence of rec after send" true
    (holds2
       (Pattern.make ~scope:(Pattern.After send1) (Pattern.Existence rec2)));
  (* after the show, nothing more happens: absence of everything *)
  Alcotest.(check bool) "absence of actions after show" true
    (holds2
       (Pattern.make ~scope:(Pattern.After show2)
          (Pattern.Absence (Pattern.pred "any" (fun _ -> true)))));
  (* before the show, the sense must already exist (liveness in scope) *)
  Alcotest.(check bool) "existence of sense before show" true
    (holds2
       (Pattern.make ~scope:(Pattern.Before show2) (Pattern.Existence sense1)))

let test_property_dfa_shape () =
  let alphabet = Action.Set.elements (Lts.alphabet (Lazy.force lts2)) in
  let dfa =
    Pattern.property_dfa ~alphabet
      (Pattern.make (Pattern.Precedence (sense1, show2)))
  in
  (* two states: before/after the enabling sense *)
  Alcotest.(check int) "precedence automaton has 2 states" 2
    (Pattern.A.Dfa.nb_states dfa);
  (* a show-first word is rejected, sense-first accepted *)
  Alcotest.(check bool) "rejects show before sense" false
    (Pattern.A.Dfa.accepts dfa [ V.v_show 2 ]);
  Alcotest.(check bool) "accepts sense then show" true
    (Pattern.A.Dfa.accepts dfa [ V.v_sense 1; V.v_show 2 ])

let test_behaviour_nfa () =
  let lts = Lazy.force lts2 in
  let prefix = Pattern.behaviour_nfa ~maximal:false lts in
  let maximal = Pattern.behaviour_nfa ~maximal:true lts in
  Alcotest.(check bool) "empty word is a prefix" true (Pattern.A.Nfa.accepts prefix []);
  Alcotest.(check bool) "empty word is not maximal" false
    (Pattern.A.Nfa.accepts maximal []);
  (* a full run is both a prefix and maximal *)
  match Lts.deadlocks lts with
  | [ dead ] -> (
    match Lts.trace_to lts dead with
    | Some run ->
      Alcotest.(check bool) "full run accepted as prefix" true
        (Pattern.A.Nfa.accepts prefix run);
      Alcotest.(check bool) "full run accepted as maximal" true
        (Pattern.A.Nfa.accepts maximal run)
    | None -> Alcotest.fail "dead state unreachable")
  | _ -> Alcotest.fail "expected one dead state"

let test_pattern_pp () =
  let p = Pattern.make ~scope:(Pattern.After send1) (Pattern.Response (sense1, show2)) in
  let s = Fmt.str "%a" Pattern.pp p in
  Alcotest.(check bool) "pp mentions responds" true
    (let sub = "responds" in
     let rec contains i =
       i + String.length sub <= String.length s
       && (String.sub s i (String.length sub) = sub || contains (i + 1))
     in
     contains 0)

let suite =
  [ Alcotest.test_case "absence" `Quick test_absence;
    Alcotest.test_case "universality" `Quick test_universality;
    Alcotest.test_case "existence" `Quick test_existence;
    Alcotest.test_case "precedence" `Quick test_precedence;
    Alcotest.test_case "response" `Quick test_response;
    Alcotest.test_case "scopes" `Quick test_scopes;
    Alcotest.test_case "property automaton shape" `Quick test_property_dfa_shape;
    Alcotest.test_case "behaviour NFAs" `Quick test_behaviour_nfa;
    Alcotest.test_case "pattern printing" `Quick test_pattern_pp ]
