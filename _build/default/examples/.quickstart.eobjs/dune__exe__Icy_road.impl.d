examples/icy_road.ml: Fmt Fsa_core Fsa_model Fsa_requirements Fsa_term Fsa_vanet List
