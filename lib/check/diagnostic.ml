(* Unified diagnostics: stable codes, severities, source spans and
   deterministic renderers. *)

module Loc = Fsa_spec.Loc

type severity = Error | Warning | Info

let pp_severity ppf = function
  | Error -> Fmt.string ppf "error"
  | Warning -> Fmt.string ppf "warning"
  | Info -> Fmt.string ppf "info"

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

type t = {
  code : string;
  severity : severity;
  file : string option;
  loc : Loc.t option;
  message : string;
}

let make ?file ?loc ~severity ~code fmt =
  Fmt.kstr (fun message -> { code; severity; file; loc; message }) fmt

let error ?file ?loc ~code fmt = make ?file ?loc ~severity:Error ~code fmt
let warning ?file ?loc ~code fmt = make ?file ?loc ~severity:Warning ~code fmt
let info ?file ?loc ~code fmt = make ?file ?loc ~severity:Info ~code fmt

let compare a b =
  let file_cmp =
    Option.compare String.compare a.file b.file
  in
  if file_cmp <> 0 then file_cmp
  else
    let loc_cmp = Option.compare Loc.compare a.loc b.loc in
    if loc_cmp <> 0 then loc_cmp
    else
      (* code before severity: two findings on the same line keep a
         stable code order instead of interleaving by severity *)
      let code_cmp = String.compare a.code b.code in
      if code_cmp <> 0 then code_cmp
      else
        let sev_cmp =
          Int.compare (severity_rank a.severity) (severity_rank b.severity)
        in
        if sev_cmp <> 0 then sev_cmp
        else String.compare a.message b.message

let sort ds = List.sort compare ds

let promote_warnings ds =
  List.map
    (fun d -> if d.severity = Warning then { d with severity = Error } else d)
    ds

let count sev ds = List.length (List.filter (fun d -> d.severity = sev) ds)
let has_errors ds = List.exists (fun d -> d.severity = Error) ds

let summary ds =
  if ds = [] then "no findings"
  else
    let plural n word = Printf.sprintf "%d %s%s" n word (if n = 1 then "" else "s") in
    [ (count Error ds, "error"); (count Warning ds, "warning");
      (count Info ds, "note") ]
    |> List.filter (fun (n, _) -> n > 0)
    |> List.map (fun (n, w) -> plural n w)
    |> String.concat ", "

(* ------------------------------------------------------------------ *)
(* Code registry                                                       *)
(* ------------------------------------------------------------------ *)

let registry =
  [ ("FSA000", Error, "the specification does not parse or elaborate");
    ("FSA001", Error,
     "dead rule: a take pattern can never match any producible term");
    ("FSA002", Error,
     "a put template uses a variable not bound by any take pattern");
    ("FSA003", Warning,
     "a guard references a variable not bound by any take pattern");
    ("FSA004", Info,
     "write-only state component: its contents are never read");
    ("FSA005", Warning,
     "unused state component: no rule ever reads or writes it");
    ("FSA006", Info,
     "inert rule: it reads a component that never holds any data in this \
      instantiation");
    ("FSA007", Error, "a rule references an undeclared state component");
    ("FSA010", Warning,
     "consume/consume race: two rules remove unifiable terms from the same \
      component");
    ("FSA011", Warning,
     "consume/read race: one rule removes terms another rule reads");
    ("FSA020", Error,
     "a check declaration names an action outside the APA's alphabet");
    ("FSA021", Warning,
     "vacuous check declaration: it names an action no rule can emit");
    ("FSA022", Error,
     "a homomorphism keep set names an action outside the APA's alphabet");
    ("FSA023", Warning,
     "the homomorphism erases the entire alphabet: the abstraction is \
      vacuous");
    ("FSA030", Error, "isolated action: no functional flows at all");
    ("FSA031", Info, "component with no external interaction");
    ("FSA032", Error, "action is both a system input and a system output");
    ("FSA033", Info, "policy tag used by a single flow (typo?)");
    ("FSA034", Error, "system output influenced by no system input");
    ("FSA035", Info, "heavy external fan-in (undocumented merge logic?)");
    ("FSA040", Info,
     "component bounded by a place invariant of the net skeleton");
    ("FSA041", Warning,
     "state space certified infinite: an unguarded rule re-enables itself \
      with a strictly growing term");
    ("FSA042", Info,
     "potentially unbounded component: positive net production and no \
      covering place invariant");
    ("FSA043", Info,
     "transition invariant: a multiset of rules whose firing leaves the \
      skeleton marking unchanged (cyclic behaviour)");
    ("FSA044", Info,
     "structurally dead-lockable: a siphon without an initially marked \
      trap can drain and permanently disable its consumers");
    ("FSA045", Info,
     "deadlock-free at skeleton level: every minimal siphon contains an \
      initially marked trap");
    ("FSA046", Info,
     "statically independent rule pairs: no token flow connects them, so \
      their dependence tests can be skipped under --prune-static");
    ("FSA047", Info,
     "initially marked trap: these components can never all drain");
    ("FSA048", Info,
     "structural analysis truncated: siphon/trap enumeration exceeded its \
      budget");
    ("FSA050", Info,
     "symmetry orbit: interchangeable instances, explored once per \
      equivalence class under --reduce sym");
    ("FSA051", Info,
     "same-shape instances are not interchangeable (guards, rule sets or \
      ambiguous correspondence)");
    ("FSA052", Info,
     "symmetry orbit not reducible: an instance identity leaks outside \
      the orbit's own components");
    ("FSA053", Info,
     "rule interference modules: statically independent subsystems, \
      usable as ample sets under --reduce por");
    ("FSA054", Info,
     "same-shape instances differ in their initial contents");
    ("FSA055", Info,
     "predicted symmetry reduction factor for --reduce sym");
    ("FSA056", Info,
     "interference module unusable as an ample set: a rule does not \
      consume, or intra-module token flow is cyclic");
    ("FSA057", Info,
     "guard equivalence attested by syntactic signature only: symmetry \
      soundness assumes the guard builtins treat the instances alike");
    ("FSA058", Info,
     "reduction available: the model qualifies for --reduce");
    ("FSA060", Warning,
     "confidentiality leak: a protected component flows into a \
      cross-instance channel");
    ("FSA061", Info,
     "unsanitized cross-instance flow: data crosses a system boundary \
      into a rule with no guard");
    ("FSA062", Info,
     "dead attack surface: an initially enabled rule influences no \
      output rule");
    ("FSA063", Info,
     "unguarded flow cycle: a feedback loop no guard ever checks");
    ("FSA064", Info,
     "guard-killed flow edges: statically decided guards sever token \
      flows the net skeleton admits");
    ("FSA065", Info,
     "flow-independent action pairs beyond the skeleton baseline; \
      --prune-flow skips their dependence tests") ]

let describe code =
  List.find_map
    (fun (c, _, d) -> if String.equal c code then Some d else None)
    registry

(* ------------------------------------------------------------------ *)
(* Text rendering                                                      *)
(* ------------------------------------------------------------------ *)

let pp ppf d =
  (match d.file with Some f -> Fmt.pf ppf "%s:" f | None -> ());
  (match d.loc with
  | Some l when not (Loc.is_dummy l) -> Fmt.pf ppf "%d:%d:" l.Loc.line l.Loc.col
  | Some _ | None -> ());
  if d.file <> None || d.loc <> None then Fmt.sp ppf ();
  Fmt.pf ppf "%a[%s]: %s" pp_severity d.severity d.code d.message

let source_line content n =
  let rec go i line =
    if line = n then
      let stop =
        match String.index_from_opt content i '\n' with
        | Some j -> j
        | None -> String.length content
      in
      Some (String.sub content i (stop - i))
    else
      match String.index_from_opt content i '\n' with
      | Some j -> go (j + 1) (line + 1)
      | None -> None
  in
  if n < 1 then None else go 0 1

(* The quoted source line with a caret underline covering the span (or to
   the end of the line for multi-line spans). *)
let underline buf content (l : Loc.t) =
  match source_line content l.Loc.line with
  | None -> ()
  | Some line ->
    let prefix = Printf.sprintf "  %d | " l.Loc.line in
    Buffer.add_string buf prefix;
    Buffer.add_string buf line;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (String.make (String.length prefix - 2) ' ');
    Buffer.add_string buf "| ";
    let start = max 1 l.Loc.col in
    let stop =
      if l.Loc.end_line > l.Loc.line then String.length line
      else min (max l.Loc.end_col start) (max (String.length line) start)
    in
    Buffer.add_string buf (String.make (start - 1) ' ');
    Buffer.add_char buf '^';
    if stop > start then Buffer.add_string buf (String.make (stop - start) '~');
    Buffer.add_char buf '\n'

let render_text ?(sources = []) ds =
  let buf = Buffer.create 256 in
  List.iter
    (fun d ->
      Buffer.add_string buf (Fmt.str "%a" pp d);
      Buffer.add_char buf '\n';
      (match d.loc with
      | Some l when not (Loc.is_dummy l) -> (
        match Option.bind d.file (fun f -> List.assoc_opt f sources) with
        | Some content -> underline buf content l
        | None -> ())
      | Some _ | None -> ()))
    (sort ds);
  Buffer.add_string buf (summary ds);
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSON rendering                                                      *)
(* ------------------------------------------------------------------ *)

let render_json ds =
  let buf = Buffer.create 256 in
  let str s =
    Buffer.add_char buf '"';
    Fsa_obs.Metrics.json_escape buf s;
    Buffer.add_char buf '"'
  in
  Buffer.add_string buf "[";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf "\n  {";
      (match d.file with
      | Some f ->
        Buffer.add_string buf "\"file\": ";
        str f;
        Buffer.add_string buf ", "
      | None -> ());
      Buffer.add_string buf "\"code\": ";
      str d.code;
      Buffer.add_string buf ", \"severity\": ";
      str (severity_to_string d.severity);
      (match d.loc with
      | Some l when not (Loc.is_dummy l) ->
        Buffer.add_string buf
          (Printf.sprintf
             ", \"line\": %d, \"col\": %d, \"endLine\": %d, \"endCol\": %d"
             l.Loc.line l.Loc.col l.Loc.end_line l.Loc.end_col)
      | Some _ | None -> ());
      Buffer.add_string buf ", \"message\": ";
      str d.message;
      Buffer.add_string buf "}")
    (sort ds);
  Buffer.add_string buf (if ds = [] then "]\n" else "\n]\n");
  Buffer.contents buf
