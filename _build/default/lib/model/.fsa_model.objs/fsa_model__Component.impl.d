lib/model/component.ml: Action_graph Flow Fmt Fsa_term List Option Printf String
