(* Platooning (cooperative adaptive cruise control): requirement families
   quantified over the followers, and a deliberately cyclic operational
   model marking the boundary of the paper's minima/maxima reading.

   Run with: dune exec examples/platoon.exe *)

module Action = Fsa_term.Action
module Auth = Fsa_requirements.Auth
module Generalise = Fsa_requirements.Generalise
module Derive = Fsa_requirements.Derive
module Lts = Fsa_lts.Lts
module Pattern = Fsa_mc.Pattern
module Ctl = Fsa_mc.Ctl
module P = Fsa_vanet.Platoon

let section title = Fmt.pr "@.=== %s ===@." title

let () =
  section "One control round: requirements per platoon size";
  List.iter
    (fun n ->
      let reqs = Derive.of_sos ~stakeholder:P.stakeholder (P.round ~followers:n ()) in
      Fmt.pr "%d follower(s): %d requirements@." n (List.length reqs))
    [ 1; 2; 3; 4 ];

  section "The quantified requirement families";
  let union =
    Derive.of_instances ~stakeholder:P.stakeholder
      (List.map (fun n -> P.round ~followers:n ()) [ 2; 3; 4; 5 ])
  in
  let gens = Generalise.generalise ~domain_of:P.follower_domain union in
  Fmt.pr "%a@." Generalise.pp_set gens;
  Fmt.pr
    "@.Note the co-varying indices: the follower's own gap measurement, \
     actuation and passenger quantify together.@.";

  section "The continuously beaconing behaviour is cyclic";
  let lts = Lts.explore (P.apa ~followers:2 ()) in
  Fmt.pr "states: %d, dead states: %d, complete-run count: %s@."
    (Lts.nb_states lts)
    (List.length (Lts.deadlocks lts))
    (match Lts.count_complete_runs lts with
    | Some n -> string_of_int n
    | None -> "none (cyclic)");
  Fmt.pr
    "The paper's minima/maxima reading needs acyclic behaviours — the \
     maxima set is empty here.  Functional dependence survives:@.";
  List.iter
    (fun (mn, mx) ->
      Fmt.pr "  %a -> %a: %b@." Action.pp mn Action.pp mx
        (Lts.depends_on lts ~max_action:mx ~min_action:mn))
    [ (P.l_beacon, P.f_ctrl 1); (P.f_gap 1, P.f_ctrl 1);
      (P.f_gap 2, P.f_ctrl 1) ];

  section "Properties on the cyclic behaviour";
  let prop =
    Pattern.make
      (Pattern.Precedence
         (Pattern.action_is P.l_beacon, Pattern.action_is (P.f_ctrl 1)))
  in
  Fmt.pr "%a: %a@." Pattern.pp prop Pattern.pp_result (Pattern.check lts prop);
  Fmt.pr "AG EF enabled(L_beacon): %b@."
    (Ctl.On_lts.check lts (Ctl.AG (Ctl.EF (Ctl.enabled_action P.l_beacon))))
