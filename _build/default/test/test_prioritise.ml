(* Tests for requirement prioritisation, plus a JSON well-formedness check
   for the export module (using a minimal JSON reader defined here). *)

module Action = Fsa_term.Action
module Agent = Fsa_term.Agent
module Auth = Fsa_requirements.Auth
module Classify = Fsa_requirements.Classify
module Prioritise = Fsa_requirements.Prioritise
module Derive = Fsa_requirements.Derive
module S = Fsa_vanet.Scenario
module Evita = Fsa_vanet.Evita

(* ------------------------------------------------------------------ *)
(* Prioritisation                                                      *)
(* ------------------------------------------------------------------ *)

let test_factors () =
  let sos = S.three_vehicles in
  let req =
    List.find
      (fun r -> Action.label (Auth.cause r) = "sense")
      (Derive.of_sos sos)
  in
  let s = Prioritise.score sos req in
  (* sense -> send -> (ext) rec2 -> fwd2 -> (ext) recw -> show: two
     external hops, shortest path of 5 flows *)
  Alcotest.(check int) "exposure counts external hops" 2 s.Prioritise.s_exposure;
  Alcotest.(check int) "reach is the shortest path" 5 s.Prioritise.s_reach;
  Alcotest.(check bool) "safety-critical impact" true
    (s.Prioritise.s_impact = 10)

let test_safety_above_policy () =
  let sos = S.three_vehicles in
  let ranking = Prioritise.rank sos (Derive.of_sos sos) in
  (* every safety-critical requirement ranks above the policy-induced one *)
  let rec split_ranks acc = function
    | [] -> List.rev acc
    | s :: rest ->
      split_ranks
        ((Classify.equal_class s.Prioritise.s_class Classify.Safety_critical)
         :: acc)
        rest
  in
  let flags = split_ranks [] ranking in
  (* safety block first, then policy block: no true after a false *)
  let rec monotone seen_policy = function
    | [] -> true
    | true :: _ when seen_policy -> false
    | true :: rest -> monotone false rest
    | false :: rest -> monotone true rest
  in
  Alcotest.(check bool) "safety ranks above policy" true (monotone false flags)

let test_stakeholder_weights () =
  let sos = Evita.model in
  let reqs = Derive.of_sos ~stakeholder:Evita.stakeholder sos in
  let weights =
    { Prioritise.default_weights with
      Prioritise.stakeholder_weight =
        (fun a -> if Agent.role a = "Driver" then 5 else 1) }
  in
  let ranking = Prioritise.rank ~weights sos reqs in
  (* the top-ranked requirement concerns a driver-facing output *)
  match ranking with
  | top :: _ ->
    Alcotest.(check string) "driver on top" "Driver"
      (Agent.role (Auth.stakeholder top.Prioritise.s_requirement))
  | [] -> Alcotest.fail "non-empty ranking expected"

let test_rank_deterministic () =
  let sos = S.chain 4 in
  let reqs = Derive.of_sos sos in
  let r1 = Prioritise.rank sos reqs and r2 = Prioritise.rank sos (List.rev reqs) in
  Alcotest.(check (list string)) "order independent of input order"
    (List.map (fun s -> Auth.to_string s.Prioritise.s_requirement) r1)
    (List.map (fun s -> Auth.to_string s.Prioritise.s_requirement) r2)

let test_ranking_renders () =
  let sos = S.two_vehicles in
  let text =
    Fmt.str "%a" Prioritise.pp_ranking (Prioritise.rank sos (Derive.of_sos sos))
  in
  Alcotest.(check bool) "mentions impact" true
    (let sub = "impact" in
     let rec contains i =
       i + String.length sub <= String.length text
       && (String.sub text i (String.length sub) = sub || contains (i + 1))
     in
     contains 0)

(* ------------------------------------------------------------------ *)
(* JSON well-formedness of the export                                  *)
(* ------------------------------------------------------------------ *)

(* A minimal JSON reader, sufficient to validate the exporter's output:
   values are objects, arrays, strings; no numbers are emitted. *)
let json_parses input =
  let pos = ref 0 in
  let n = String.length input in
  let fail () = raise Exit in
  let peek () = if !pos < n then input.[!pos] else fail () in
  let advance () = incr pos in
  let rec skip_ws () =
    if !pos < n && (peek () = ' ' || peek () = '\n' || peek () = '\t') then begin
      advance ();
      skip_ws ()
    end
  in
  let expect c = if peek () = c then advance () else fail () in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' -> obj ()
    | '[' -> arr ()
    | '"' -> str ()
    | _ -> fail ()
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = '}' then advance ()
    else begin
      let rec fields () =
        skip_ws ();
        str ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        if peek () = ',' then begin
          advance ();
          fields ()
        end
        else expect '}'
      in
      fields ()
    end
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = ']' then advance ()
    else begin
      let rec items () =
        value ();
        skip_ws ();
        if peek () = ',' then begin
          advance ();
          items ()
        end
        else expect ']'
      in
      items ()
    end
  and str () =
    expect '"';
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        advance ();
        go ()
      | _ ->
        advance ();
        go ()
    in
    go ()
  in
  match
    value ();
    skip_ws ()
  with
  | () -> !pos = n
  | exception Exit -> false

let test_export_json_wellformed () =
  let sos = Evita.model in
  let reqs = Derive.of_sos ~stakeholder:Evita.stakeholder sos in
  let json =
    Fsa_requirements.Export.to_json ~classify:(Classify.classify sos) reqs
  in
  Alcotest.(check bool) "EVITA export parses as JSON" true
    (json_parses (String.trim json));
  (* escaping survives adversarial content *)
  let nasty =
    Auth.make
      ~cause:(Action.make "a\"b\\c")
      ~effect:(Action.make "x\ny")
      ~stakeholder:(Agent.unindexed "P\tQ")
  in
  Alcotest.(check bool) "nasty strings stay well-formed" true
    (json_parses (String.trim (Fsa_requirements.Export.to_json [ nasty ])))

let suite =
  [ Alcotest.test_case "score factors" `Quick test_factors;
    Alcotest.test_case "safety above policy" `Quick test_safety_above_policy;
    Alcotest.test_case "stakeholder weights" `Quick test_stakeholder_weights;
    Alcotest.test_case "deterministic ranking" `Quick test_rank_deterministic;
    Alcotest.test_case "ranking renders" `Quick test_ranking_renders;
    Alcotest.test_case "export JSON well-formed" `Quick test_export_json_wellformed ]
