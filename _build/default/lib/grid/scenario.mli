(** Smart-grid demand response — a second application domain for the
    method, in manual-path (functional model) form. *)

module Term = Fsa_term.Term
module Agent = Fsa_term.Agent
module Action = Fsa_term.Action
module Component = Fsa_model.Component
module Sos = Fsa_model.Sos

val settlement_policy : string

(** {1 Actions} *)

val measure : int -> Action.t
val report : int -> Action.t
val collect : Action.t
val aggregate : Action.t
val upload : Action.t
val quote : Action.t
val ingest : Action.t
val price_in : Action.t
val decide : Action.t
val dispatch : Action.t
val bill : Action.t
val command : int -> Action.t
val switch : int -> Action.t

(** {1 Components and the SoS} *)

val meter : int -> Component.t
val breaker : int -> Component.t
val concentrator : Component.t
val market : Component.t
val head_end : Component.t

val demand_response : ?households:int -> unit -> Sos.t
(** The demand-response SoS with [households] meter/breaker pairs
    (default 2). *)

val stakeholder : Action.t -> Agent.t
