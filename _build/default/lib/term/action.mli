(** Atomic actions of functional models.

    Actions follow the paper's Table 1: [sense(ESP_1, sW)],
    [pos(GPS_w, pos)], [send(cam(pos))], [show(HMI_w, warn)].  An action has
    a label, an optional acting component (agent) and data arguments. *)

type t = { label : string; actor : Agent.t option; args : Term.t list }

val make : ?actor:Agent.t -> ?args:Term.t list -> string -> t

val label : t -> string
val actor : t -> Agent.t option
val args : t -> Term.t list

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : t Fmt.t
val to_string : t -> string

val tool_name : ?system:string -> t -> string
(** Short transition name in the style of the SH verification tool, e.g.
    [V1_send]. *)

val reindex : (Agent.index -> Agent.index) -> t -> t
val map_args : (Term.t -> Term.t) -> t -> t
val is_parameterised : t -> bool

(** Action shapes forget the actor's instance index; two actions with equal
    shapes belong to the same parameterised family. *)
type shape = { s_label : string; s_role : string option; s_args : Term.t list }

val shape : t -> shape
val compare_shape : shape -> shape -> int
val pp_shape : shape Fmt.t

val of_string : string -> (t, string) result
(** Parse the paper's notation.  The first argument is recognised as the
    acting component when it is a capitalised identifier ([ESP_1], [RSU]). *)

val of_string_exn : string -> t

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
