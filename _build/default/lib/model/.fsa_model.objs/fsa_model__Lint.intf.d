lib/model/lint.mli: Flow Fmt Fsa_term Sos
