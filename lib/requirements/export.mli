(** Export of requirement sets (JSON, CSV, Markdown) for the follow-up
    inspection, categorisation and prioritisation steps. *)

module Action = Fsa_term.Action
module Agent = Fsa_term.Agent

val json_escape : string -> string
val json_string : string -> string
val class_string : Classify.class_ -> string

val to_json : ?classify:(Auth.t -> Classify.class_) -> Auth.t list -> string
val to_csv : ?classify:(Auth.t -> Classify.class_) -> Auth.t list -> string

val to_markdown :
  ?classify:(Auth.t -> Classify.class_) -> Auth.t list -> string

val write_file : string -> string -> unit
(** Atomic write: the content goes to a sibling temporary file which is
    then renamed into place, so a concurrent reader never observes a
    partially written export. *)
