(* Tests for Fsa_mc: CTL model checking on concrete and abstract
   behaviours. *)

module Action = Fsa_term.Action
module Lts = Fsa_lts.Lts
module Ctl = Fsa_mc.Ctl
module Hom = Fsa_hom.Hom
module V = Fsa_vanet.Vehicle_apa

let lts2 = lazy (Lts.explore (V.two_vehicles ()))

let check_lts f expected name =
  Alcotest.(check bool) name expected (Ctl.On_lts.check (Lazy.force lts2) f)

let test_atoms () =
  check_lts (Ctl.enabled_action (V.v_sense 1)) true "sense enabled initially";
  check_lts (Ctl.enabled_action (V.v_show 2)) false "show not enabled initially";
  check_lts Ctl.deadlock false "initial state is not dead";
  check_lts (Ctl.state_pred "is-initial" (fun s -> s = 0)) true "state predicate"

let test_boolean_connectives () =
  let t = Ctl.True and f = Ctl.False in
  check_lts (Ctl.And (t, t)) true "and";
  check_lts (Ctl.And (t, f)) false "and false";
  check_lts (Ctl.Or (f, t)) true "or";
  check_lts (Ctl.Not f) true "not";
  check_lts (Ctl.Implies (f, f)) true "ex falso";
  check_lts (Ctl.Implies (t, f)) false "implies false"

let test_temporal_operators () =
  (* EF deadlock: the run can terminate *)
  check_lts (Ctl.EF Ctl.deadlock) true "EF deadlock";
  (* AF deadlock: every run terminates (the scenario is finite) *)
  check_lts (Ctl.AF Ctl.deadlock) true "AF deadlock";
  (* EX: after one step, sense can still be enabled (if pos moved first) *)
  check_lts (Ctl.EX (Ctl.enabled_action (V.v_sense 1))) true "EX sense";
  (* AX: not every first step keeps sense enabled (sense itself fires) *)
  check_lts (Ctl.AX (Ctl.enabled_action (V.v_sense 1))) false "AX sense";
  (* AG true *)
  check_lts (Ctl.AG Ctl.True) true "AG true";
  (* EG: some maximal path on which show is never *taken* — but
     enabledness of show2 only arises late; EG (not enabled show) fails
     because every complete run eventually enables show *)
  check_lts (Ctl.EG (Ctl.Not (Ctl.enabled_action (V.v_show 2)))) false
    "every run eventually enables show";
  (* safety: the warning can only be shown after the message arrived —
     AG (enabled show => not enabled rec) on this 1-message scenario *)
  check_lts
    (Ctl.AG
       (Ctl.Implies
          (Ctl.enabled_action (V.v_show 2),
           Ctl.Not (Ctl.enabled_action (V.v_rec 2)))))
    true "show enabled only after rec consumed the message"

let test_until_operators () =
  (* E[ not-dead U enabled show ] : some path stays live until show *)
  check_lts
    (Ctl.EU (Ctl.Not Ctl.deadlock, Ctl.enabled_action (V.v_show 2)))
    true "EU reaches show";
  (* A[ true U deadlock ] = AF deadlock *)
  check_lts (Ctl.AU (Ctl.True, Ctl.deadlock)) true "AU deadlock";
  (* A[ false U deadlock ] fails in the initial state (it is not dead) *)
  check_lts (Ctl.AU (Ctl.False, Ctl.deadlock)) false "AU with false lhs"

let test_deadlock_eg_convention () =
  (* a dead state satisfying f witnesses EG f (maximal finite paths) *)
  check_lts (Ctl.EF (Ctl.EG Ctl.deadlock)) true "EG on dead states"

let test_sat_set_and_counterexamples () =
  let lts = Lazy.force lts2 in
  let sat = Ctl.On_lts.sat_set lts (Ctl.EF Ctl.deadlock) in
  Alcotest.(check bool) "every state can terminate" true
    (Array.for_all Fun.id sat);
  let cex =
    Ctl.On_lts.counterexample_states lts (Ctl.enabled_action (V.v_sense 1))
  in
  (* sense is enabled only while esp1 is pending: in states without it the
     atom fails *)
  Alcotest.(check bool) "counterexamples exist" true (cex <> []);
  Alcotest.(check bool) "initial not among them" true
    (not (List.mem (Lts.initial lts) cex))

let test_check_abstract () =
  let lts = Lazy.force lts2 in
  let h = Hom.preserve [ V.v_sense 1; V.v_show 2 ] in
  Alcotest.(check bool) "hom is simple here" true (Hom.is_simple h lts);
  (* abstractly: sense can happen, then show *)
  Alcotest.(check bool) "EF enabled(show) abstractly" true
    (Ctl.check_abstract h lts (Ctl.EF (Ctl.enabled_action (V.v_show 2))));
  (* abstractly, show is never enabled before sense happened *)
  Alcotest.(check bool) "show not initially enabled abstractly" false
    (Ctl.check_abstract h lts (Ctl.enabled_action (V.v_show 2)))

let test_pp () =
  let f =
    Ctl.AG (Ctl.Implies (Ctl.deadlock, Ctl.Not (Ctl.enabled_action (V.v_show 2))))
  in
  let s = Fmt.str "%a" Ctl.pp f in
  Alcotest.(check bool) "pp mentions AG" true
    (String.length s >= 2 && String.sub s 0 2 = "AG")

let suite =
  [ Alcotest.test_case "atoms" `Quick test_atoms;
    Alcotest.test_case "boolean connectives" `Quick test_boolean_connectives;
    Alcotest.test_case "temporal operators" `Quick test_temporal_operators;
    Alcotest.test_case "until operators" `Quick test_until_operators;
    Alcotest.test_case "EG on dead states" `Quick test_deadlock_eg_convention;
    Alcotest.test_case "sat sets / counterexamples" `Quick test_sat_set_and_counterexamples;
    Alcotest.test_case "abstract checking" `Quick test_check_abstract;
    Alcotest.test_case "formula printing" `Quick test_pp ]
