(* Property-based tests over randomly generated systems of systems.

   The generator produces layered architectures: components are chains of
   actions, arranged in layers, with external links flowing only from
   lower to higher layers — acyclicity by construction, as functional
   models of well-defined use cases are (Sect. 4.3). *)

module Term = Fsa_term.Term
module Agent = Fsa_term.Agent
module Action = Fsa_term.Action
module Component = Fsa_model.Component
module Flow = Fsa_model.Flow
module Sos = Fsa_model.Sos
module Auth = Fsa_requirements.Auth
module Derive = Fsa_requirements.Derive
module Classify = Fsa_requirements.Classify
module Conf = Fsa_requirements.Confidentiality
module Refine = Fsa_refine.Refine
module AG = Fsa_model.Action_graph

(* ------------------------------------------------------------------ *)
(* Generator                                                           *)
(* ------------------------------------------------------------------ *)

let gen_sos =
  let open QCheck2.Gen in
  let* nb_layers = int_range 2 4 in
  let* per_layer = int_range 1 3 in
  (* component (l, k): a chain of 1-3 actions *)
  let* chains =
    flatten_l
      (List.concat_map
         (fun l ->
           List.map
             (fun k ->
               let* len = int_range 1 3 in
               return (l, k, len))
             (List.init per_layer Fun.id))
         (List.init nb_layers Fun.id))
  in
  let components =
    List.map
      (fun (l, k, len) ->
        let role = Printf.sprintf "C%d_%d" l k in
        let actions =
          List.init len (fun i ->
              Action.make
                ~actor:(Agent.unindexed role)
                (Printf.sprintf "a%d_%d_%d" l k i))
        in
        let rec flows = function
          | a :: (b :: _ as rest) -> Flow.internal a b :: flows rest
          | [ _ ] | [] -> []
        in
        ((l, k), Component.make role ~actions ~flows:(flows actions)))
      chains
  in
  (* links: from the last action of a lower-layer component to the first
     action of a strictly higher-layer component *)
  let* links =
    let candidates =
      List.concat_map
        (fun ((l1, _), c1) ->
          List.filter_map
            (fun ((l2, _), c2) ->
              if l1 < l2 then
                let out = List.nth (Component.actions c1)
                    (List.length (Component.actions c1) - 1) in
                let inp = List.hd (Component.actions c2) in
                Some (out, inp)
              else None)
            components)
        components
    in
    let* picks =
      flatten_l
        (List.map (fun cand -> map (fun b -> (cand, b)) bool) candidates)
    in
    return (List.filter_map (fun (c, b) -> if b then Some c else None) picks)
  in
  let links = List.map (fun (a, b) -> Flow.external_ a b) links in
  return (Sos.make "random" ~components:(List.map snd components) ~links)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_requirements_relate_boundaries =
  QCheck2.Test.make ~name:"causes are inputs, effects are outputs" ~count:100
    gen_sos (fun sos ->
      let b = Sos.boundary sos in
      List.for_all
        (fun r ->
          List.exists (Action.equal (Auth.cause r)) b.Sos.incoming
          && List.exists (Action.equal (Auth.effect r)) b.Sos.outgoing)
        (Derive.of_sos sos))

let prop_system_boundary_within_component_boundary =
  QCheck2.Test.make
    ~name:"system boundary actions are component boundary actions" ~count:100
    gen_sos (fun sos ->
      let b = Sos.boundary sos in
      let cb = Sos.component_boundary_actions sos in
      List.for_all
        (fun a -> List.exists (Action.equal a) cb)
        (b.Sos.incoming @ b.Sos.outgoing))

let prop_no_policy_all_safety =
  QCheck2.Test.make ~name:"without policies every requirement is safety"
    ~count:100 gen_sos (fun sos ->
      let reqs = Derive.of_sos sos in
      List.for_all
        (fun r ->
          Classify.equal_class (Classify.classify sos r)
            Classify.Safety_critical)
        reqs)

let prop_requirements_monotone_in_links =
  QCheck2.Test.make
    ~name:"dropping all links never invents new requirements between the \
           same pairs"
    ~count:100 gen_sos (fun sos ->
      (* without links, every requirement stays within one component *)
      let unlinked = Sos.make "unlinked" ~components:(Sos.components sos) in
      List.for_all
        (fun r ->
          match
            ( Sos.owner_of (Sos.components unlinked) (Auth.cause r),
              Sos.owner_of (Sos.components unlinked) (Auth.effect r) )
          with
          | Some c1, Some c2 ->
            String.equal (Component.name c1) (Component.name c2)
          | _ -> false)
        (Derive.of_sos unlinked))

let prop_confidentiality_mirrors_auth =
  QCheck2.Test.make
    ~name:"confidentiality pairs coincide with authenticity pairs" ~count:100
    gen_sos (fun sos ->
      let auth_pairs =
        List.map (fun r -> (Auth.cause r, Auth.effect r)) (Derive.of_sos sos)
        |> List.sort compare
      in
      let conf_pairs =
        List.map (fun c -> (c.Conf.source, c.Conf.sink)) (Conf.derive sos)
        |> List.sort compare
      in
      auth_pairs = conf_pairs)

let prop_min_cut_disconnects =
  QCheck2.Test.make ~name:"minimum cuts disconnect their dependency"
    ~count:60 gen_sos (fun sos ->
      List.for_all
        (fun r ->
          let cut = Refine.min_cut sos (Auth.cause r) (Auth.effect r) in
          let remaining =
            List.filter
              (fun f -> not (List.exists (Flow.equal f) cut))
              (Sos.all_flows sos)
          in
          let g = AG.of_flows remaining in
          not
            (AG.G.mem_vertex (Auth.cause r) g
             && AG.G.Vset.mem (Auth.effect r)
                  (AG.G.reachable (Auth.cause r) g)))
        (Derive.of_sos sos))

let prop_cut_bounded_by_paths =
  QCheck2.Test.make ~name:"min cut is at most the number of paths (unit caps)"
    ~count:60 gen_sos (fun sos ->
      List.for_all
        (fun r ->
          let paths =
            Refine.simple_paths ~limit:500 sos (Auth.cause r) (Auth.effect r)
          in
          List.length (Refine.min_cut sos (Auth.cause r) (Auth.effect r))
          <= max 1 (List.length paths))
        (Derive.of_sos sos))

let prop_monitor_accepts_system_runs =
  QCheck2.Test.make ~name:"simulated runs satisfy derived requirements"
    ~count:40 gen_sos (fun sos ->
      (* drive the functional model as a trivial APA: each action becomes
         a token move along the dependency graph — instead, simulate by
         replaying topological orders of the dependency graph *)
      let g = Sos.dependency_graph sos in
      match AG.G.topological_sort g with
      | None -> false
      | Some order ->
        let reqs = Derive.of_sos sos in
        List.for_all
          (fun (_, v) -> Fsa_mc.Monitor.equal_verdict v Fsa_mc.Monitor.Satisfied)
          (Fsa_mc.Monitor.run reqs order))

let suite =
  [ QCheck_alcotest.to_alcotest prop_requirements_relate_boundaries;
    QCheck_alcotest.to_alcotest prop_system_boundary_within_component_boundary;
    QCheck_alcotest.to_alcotest prop_no_policy_all_safety;
    QCheck_alcotest.to_alcotest prop_requirements_monotone_in_links;
    QCheck_alcotest.to_alcotest prop_confidentiality_mirrors_auth;
    QCheck_alcotest.to_alcotest prop_min_cut_disconnects;
    QCheck_alcotest.to_alcotest prop_cut_bounded_by_paths;
    QCheck_alcotest.to_alcotest prop_monitor_accepts_system_runs ]
