(** Static information-flow analysis over an APA model.

    {!Fsa_struct.Structural} prunes (min, max) dependence pairs by token
    reachability over the net skeleton — puts unified against take
    patterns, guards ignored.  This module refines that graph with the
    guards it can decide statically, and reads security-relevant facts
    off the result:

    - the {e def-use flow graph} has the rules and state components of
      the APA as nodes; a rule's takes and reads are uses, its puts are
      definitions, and a directed rule edge [r1 -> r2] over component
      [c] exists when some put template of [r1] unifies (variables
      renamed apart) with some take pattern of [r2] on [c];
    - a candidate (put, take) pair is {e killed} when the unifier binds
      every variable the consumer's guard inspects to a {b ground} term
      and the guard evaluates to [false] on those bindings.  A most
      general unifier factors every concrete producer/consumer match,
      so a ground binding is forced in every instance: the guard
      rejects {e every} token this put can deliver to this take, and
      removing the edge is sound.  Partial bindings, opaque guards and
      guard exceptions all conservatively keep the edge;
    - {e taint reachability} over the killed-refined rule graph
      over-approximates functional dependence exactly as the skeleton
      argument does ({!Fsa_struct.Structural.independent}): if no flow
      path leads from [min]'s rule to [max]'s rule, deleting [min]'s
      firings and their downward flow closure from any run leaves a
      valid run still containing [max], so the dependence test is
      negative by construction.  The refined graph is a subgraph of the
      skeleton's, so everything the skeleton prunes is pruned here too
      ([--prune-flow] subsumes [--prune-static]);
    - on top of the graph, the analyses behind the FSA060–FSA069
      diagnostics: protected components flowing into cross-instance
      channels (confidentiality leaks), cross-instance edges whose
      consumer has no guard (unsanitized flows), initially-enabled
      rules influencing no output rule (dead attack surface), and flow
      cycles every rule of which is unguarded.

    Everything is deterministic: rules and components keep their APA
    declaration order, edge lists are ordered by (source, target,
    component), reachability is a memoized DFS in index order. *)

module Term = Fsa_term.Term
module Apa = Fsa_apa.Apa

(** {1 Attribution}

    The APA itself does not know which elaborated instance a rule
    belongs to or which variables a guard closure inspects — the
    specification layer does.  Callers with a located skeleton inject
    both; programmatic models fall back to a naming heuristic and
    guard-opaque (kill-free) construction. *)

type attribution = {
  at_instance : string -> string option;
      (** elaborated instance of a rule, e.g. [V1] for [V1_send];
          [None] when unknown *)
  at_guard_vars : string -> string list option;
      (** the complete set of variables the rule's guard inspects;
          [None] when unknown (the guard is then never evaluated and no
          edge into the rule is killed) *)
}

val heuristic_attribution : attribution
(** Rule names are split at the first ['_'] into instance and use-case
    action (the {!Fsa_report} fallback convention); guard variables are
    unknown. *)

(** {1 The flow graph} *)

type edge = {
  e_src : string;  (** producing rule *)
  e_dst : string;  (** consuming or reading rule *)
  e_component : string;  (** the component carrying the flow *)
  e_consume : bool;  (** some surviving take on this edge consumes *)
  e_cross : bool;  (** source and target belong to distinct instances *)
  e_unguarded : bool;  (** the target rule has a trivial guard *)
}

type kill = {
  k_src : string;
  k_dst : string;
  k_component : string;
  k_bindings : (string * Term.t) list;
      (** the ground guard bindings the unifier forces, sorted by
          variable name — the evidence the guard was evaluated on *)
}

type t

val build : ?attribution:attribution -> Apa.t -> t
(** Construct the flow graph (under a [flow.build] span).  Default
    attribution is {!heuristic_attribution}. *)

val rules : t -> string list
(** Rule names in declaration order. *)

val components : t -> string list
(** Component names in declaration order. *)

val edges : t -> edge list
(** Surviving rule edges, ordered by (source index, target index,
    component). *)

val kills : t -> kill list
(** Candidate edges severed by ground guard evaluation, same order.  An
    entry here does not preclude a surviving edge between the same
    rules through another (put, take) pair or component. *)

val instance_of : t -> string -> string option
val guarded : t -> string -> bool
(** Does the rule have a non-trivial guard? *)

val shared_channels : t -> string list
(** Components read or written by rules of at least two distinct
    attributed instances — the cross-instance communication channels
    (sorted). *)

val protected_components : t -> string list
(** Components whose name suggests secret material (contains [key],
    [secret], [priv], [credential], [token] or [passw],
    case-insensitively); sorted.  A naming heuristic, used only to
    direct diagnostics — never to prune. *)

val entry_rules : t -> string list
(** Rules whose every take pattern matches a term of the initial state
    — the statically attacker-reachable entry surface (declaration
    order). *)

val output_rules : t -> string list
(** Rules that produce nothing any rule consumes or reads: every put
    lands in a pure-sink component (or the rule has no puts at all) —
    the observable effect surface (declaration order). *)

(** {1 Taint reachability} *)

val reaches : t -> string -> string -> bool
(** Is there a flow path (length >= 0) between two rules in the refined
    graph?  Unknown rule names conservatively reach everything. *)

val independent : t -> min:string -> max:string -> bool
(** [true] when no flow path leads from [min]'s rule to [max]'s rule —
    then the functional dependence test for the (min, max) pair must
    come out negative, and {!Fsa_core} may skip it.  Unknown rule names
    are conservatively dependent. *)

val independent_pairs : t -> int
(** Ordered rule pairs (distinct endpoints) proved independent. *)

val skeleton_independent_pairs : t -> int
(** The same count over the unrefined skeleton graph (kills ignored) —
    the [--prune-static] baseline, for reporting the refinement gain. *)

val rule_pairs : t -> int
(** All ordered rule pairs, [n * (n - 1)]. *)

(** {1 Security analyses} *)

type leak = {
  lk_source : string;  (** protected component *)
  lk_channel : string;  (** cross-instance channel it flows into *)
  lk_rules : string list;
      (** a shortest witness rule path: the first rule takes or reads
          the source, the last puts into the channel; empty when the
          protected component is itself a shared channel *)
}

val leaks : t -> leak list
(** Protected components with a flow path into a cross-instance
    channel, one shortest witness per (source, channel), sorted. *)

val unsanitized : t -> edge list
(** Cross-instance edges whose consumer has a trivial guard: data
    crosses a system boundary with no check at all. *)

val dead_sources : t -> string list
(** Entry rules from which no output rule is reachable: an
    attacker-facing action that can influence no observable effect.
    Empty when the model declares no output rules (then the notion is
    vacuous). *)

val unguarded_cycles : t -> string list list
(** Flow cycles (non-trivial SCCs, or self-loops) every rule of which
    is unguarded: unchecked feedback loops.  Each cycle is its sorted
    rule list; the list of cycles is sorted. *)

val pairs_pruned : Fsa_obs.Metrics.counter
(** The process-wide [flow.pairs_pruned] counter, incremented by
    {!Fsa_core.Analysis} for every (min, max) pair skipped by flow
    pruning (and not already by the structural pruner). *)

(** {1 Report} *)

type report = {
  r_rules : string list;
  r_components : string list;
  r_edges : edge list;
  r_kills : kill list;
  r_shared : string list;
  r_protected : string list;
  r_entries : string list;
  r_outputs : string list;
  r_leaks : leak list;
  r_unsanitized : edge list;
  r_dead : string list;
  r_cycles : string list list;
  r_independent_pairs : int;
  r_skeleton_independent_pairs : int;
  r_rule_pairs : int;
}

val analyse : t -> report

val pp_report : report Fmt.t

val report_to_json : report -> string
(** Deterministic JSON object (fixed key order, trailing newline). *)

val to_dot : t -> string
(** Graphviz rendering of the bipartite graph: components as boxes
    (shared channels doubled, protected ones filled), rules as
    ellipses, take edges dashed when reading, killed rule edges dotted
    and labelled with the deciding component. *)
