lib/lts/lts.mli: Fmt Fsa_apa Fsa_term
