(* A CTL model checker over finite transition systems — the counterpart of
   the SH verification tool's temporal logic component.  Formulae are
   checked on concrete reachability graphs, and — via the same functor —
   on abstract behaviours (minimal automata of homomorphic images), which
   is the paper's "checking temporal logic formulae on the abstract
   behaviour (under a simple homomorphism)". *)

module Action = Fsa_term.Action

(* Any finite transition system with integer states and action-labelled
   transitions can be model-checked. *)
module type MODEL = sig
  type t

  val nb_states : t -> int
  val initial : t -> int
  val succ : t -> int -> (Action.t * int) list
end

type formula =
  | True
  | False
  | Atom of string * atom
  | Not of formula
  | And of formula * formula
  | Or of formula * formula
  | Implies of formula * formula
  | EX of formula
  | AX of formula
  | EF of formula
  | AF of formula
  | EG of formula
  | AG of formula
  | EU of formula * formula
  | AU of formula * formula

and atom =
  | Enabled of (Action.t -> bool)  (* some enabled transition satisfies *)
  | Deadlock
  | State_pred of (int -> bool)  (* arbitrary predicate on state ids *)

let atom name a = Atom (name, a)
let enabled ?(name = "enabled") p = atom name (Enabled p)
let enabled_action a =
  atom (Fmt.str "enabled(%a)" Action.pp a) (Enabled (Action.equal a))
let deadlock = atom "deadlock" Deadlock
let state_pred name p = atom name (State_pred p)

let rec pp ppf = function
  | True -> Fmt.string ppf "true"
  | False -> Fmt.string ppf "false"
  | Atom (name, _) -> Fmt.string ppf name
  | Not f -> Fmt.pf ppf "!(%a)" pp f
  | And (f, g) -> Fmt.pf ppf "(%a & %a)" pp f pp g
  | Or (f, g) -> Fmt.pf ppf "(%a | %a)" pp f pp g
  | Implies (f, g) -> Fmt.pf ppf "(%a => %a)" pp f pp g
  | EX f -> Fmt.pf ppf "EX %a" pp f
  | AX f -> Fmt.pf ppf "AX %a" pp f
  | EF f -> Fmt.pf ppf "EF %a" pp f
  | AF f -> Fmt.pf ppf "AF %a" pp f
  | EG f -> Fmt.pf ppf "EG %a" pp f
  | AG f -> Fmt.pf ppf "AG %a" pp f
  | EU (f, g) -> Fmt.pf ppf "E[%a U %a]" pp f pp g
  | AU (f, g) -> Fmt.pf ppf "A[%a U %a]" pp f pp g

module Make (M : MODEL) = struct
  (* Satisfaction sets as boolean arrays indexed by state. *)
  let atoms_sat model = function
    | Enabled p ->
      Array.init (M.nb_states model) (fun s ->
          List.exists (fun (l, _) -> p l) (M.succ model s))
    | Deadlock ->
      Array.init (M.nb_states model) (fun s -> M.succ model s = [])
    | State_pred p -> Array.init (M.nb_states model) p

  let preds_of model =
    let preds = Array.make (M.nb_states model) [] in
    for s = 0 to M.nb_states model - 1 do
      List.iter (fun (_, d) -> preds.(d) <- s :: preds.(d)) (M.succ model s)
    done;
    preds

  (* EU by backwards least fixpoint: start from states satisfying g, add
     predecessors satisfying f. *)
  let eu_sat model f_sat g_sat =
    let n = M.nb_states model in
    let preds = preds_of model in
    let sat = Array.copy g_sat in
    let queue = Queue.create () in
    Array.iteri (fun s v -> if v then Queue.add s queue) sat;
    while not (Queue.is_empty queue) do
      let s = Queue.pop queue in
      List.iter
        (fun p ->
          if f_sat.(p) && not sat.(p) then begin
            sat.(p) <- true;
            Queue.add p queue
          end)
        preds.(s)
    done;
    ignore n;
    sat

  (* EG by greatest fixpoint: start from f-states, repeatedly remove
     states without a successor inside the candidate set — states without
     successors cannot satisfy EG except through... note: on finite Kripke
     structures CTL assumes total transition relations; reachability
     graphs have deadlocks, so we adopt the convention that a maximal
     finite path that ends in a deadlock state also witnesses EG f (the
     path cannot be extended).  This matches intuition for behavioural
     analysis: a dead state satisfying f satisfies EG f. *)
  let eg_sat model f_sat =
    let n = M.nb_states model in
    let sat = Array.copy f_sat in
    let changed = ref true in
    while !changed do
      changed := false;
      for s = 0 to n - 1 do
        if sat.(s) then begin
          let succs = M.succ model s in
          let ok =
            succs = [] || List.exists (fun (_, d) -> sat.(d)) succs
          in
          if not ok then begin
            sat.(s) <- false;
            changed := true
          end
        end
      done
    done;
    sat

  let rec sat_set model = function
    | True -> Array.make (M.nb_states model) true
    | False -> Array.make (M.nb_states model) false
    | Atom (_, a) -> atoms_sat model a
    | Not f -> Array.map not (sat_set model f)
    | And (f, g) -> Array.map2 ( && ) (sat_set model f) (sat_set model g)
    | Or (f, g) -> Array.map2 ( || ) (sat_set model f) (sat_set model g)
    | Implies (f, g) ->
      Array.map2 (fun a b -> (not a) || b) (sat_set model f) (sat_set model g)
    | EX f ->
      let fs = sat_set model f in
      Array.init (M.nb_states model) (fun s ->
          List.exists (fun (_, d) -> fs.(d)) (M.succ model s))
    | AX f ->
      let fs = sat_set model f in
      Array.init (M.nb_states model) (fun s ->
          List.for_all (fun (_, d) -> fs.(d)) (M.succ model s))
    | EF f -> eu_sat model (Array.make (M.nb_states model) true) (sat_set model f)
    | AF f ->
      (* AF f = not EG (not f) *)
      Array.map not (eg_sat model (Array.map not (sat_set model f)))
    | EG f -> eg_sat model (sat_set model f)
    | AG f ->
      (* AG f = not EF (not f) *)
      Array.map not
        (eu_sat model
           (Array.make (M.nb_states model) true)
           (Array.map not (sat_set model f)))
    | EU (f, g) -> eu_sat model (sat_set model f) (sat_set model g)
    | AU (f, g) ->
      (* A[f U g] = not (E[not g U (not f & not g)] | EG not g) *)
      let nf = Array.map not (sat_set model f) in
      let ng = Array.map not (sat_set model g) in
      let both = Array.map2 ( && ) nf ng in
      let e1 = eu_sat model ng both in
      let e2 = eg_sat model ng in
      Array.map2 (fun a b -> not (a || b)) e1 e2

  let check model f = (sat_set model f).(M.initial model)

  let counterexample_states model f =
    let sat = sat_set model f in
    let acc = ref [] in
    Array.iteri (fun s v -> if not v then acc := s :: !acc) sat;
    List.rev !acc
end

(* ------------------------------------------------------------------ *)
(* Instantiations                                                      *)
(* ------------------------------------------------------------------ *)

module Lts_model = struct
  type t = Fsa_lts.Lts.t

  let nb_states = Fsa_lts.Lts.nb_states
  let initial = Fsa_lts.Lts.initial

  let succ lts s =
    List.map
      (fun tr -> (tr.Fsa_lts.Lts.t_label, tr.Fsa_lts.Lts.t_dst))
      (Fsa_lts.Lts.succ lts s)
end

module Dfa_model = struct
  type t = Fsa_hom.Hom.A.Dfa.t

  let nb_states = Fsa_hom.Hom.A.Dfa.nb_states
  let initial = Fsa_hom.Hom.A.Dfa.start

  let succ dfa s =
    List.filter_map
      (fun (s', l, d) -> if s' = s then Some (l, d) else None)
      (Fsa_hom.Hom.A.Dfa.transitions dfa)
end

module On_lts = Make (Lts_model)
module On_dfa = Make (Dfa_model)

(* Approximate satisfaction: check the formula on the abstract behaviour
   (the minimal automaton of the homomorphic image).  The result is
   meaningful for the concrete system when the homomorphism is simple
   (Fsa_hom.Hom.is_simple). *)
let check_abstract hom lts f =
  On_dfa.check (Fsa_hom.Hom.minimal_automaton hom lts) f
