(* Functional flows between actions.  The action-oriented approach of the
   paper (Sect. 4.1) considers possible sequences of actions (control flow)
   and information flow between interdependent actions; flows crossing a
   component's boundary are external, flows within one component instance
   are internal.

   A flow may carry a policy tag recording that the dependency exists only
   because of a non-safety policy (e.g. the position-based forwarding policy
   of Sect. 4.4, introduced for performance reasons); requirement
   classification uses these tags. *)

type kind = Information | Control

type locality = Internal | External

type t = {
  src : Fsa_term.Action.t;
  dst : Fsa_term.Action.t;
  kind : kind;
  locality : locality;
  policy : string option;
}

let make ?(kind = Information) ?(locality = Internal) ?policy src dst =
  { src; dst; kind; locality; policy }

let internal ?kind ?policy src dst = make ?kind ~locality:Internal ?policy src dst
let external_ ?kind ?policy src dst = make ?kind ~locality:External ?policy src dst

let src f = f.src
let dst f = f.dst
let kind f = f.kind
let locality f = f.locality
let policy f = f.policy

let is_external f = f.locality = External
let is_policy_induced f = Option.is_some f.policy

let compare a b =
  let c = Fsa_term.Action.compare a.src b.src in
  if c <> 0 then c
  else
    let c = Fsa_term.Action.compare a.dst b.dst in
    if c <> 0 then c
    else
      let c = Stdlib.compare a.kind b.kind in
      if c <> 0 then c
      else
        let c = Stdlib.compare a.locality b.locality in
        if c <> 0 then c
        else Option.compare String.compare a.policy b.policy

let equal a b = compare a b = 0

let pp_kind ppf = function
  | Information -> Fmt.string ppf "info"
  | Control -> Fmt.string ppf "ctrl"

let pp ppf f =
  let ext = if is_external f then " (ext)" else "" in
  let pol = match f.policy with None -> "" | Some p -> " [policy " ^ p ^ "]" in
  Fmt.pf ppf "%a -> %a%s%s" Fsa_term.Action.pp f.src Fsa_term.Action.pp f.dst
    ext pol

let reindex g f =
  { f with
    src = Fsa_term.Action.reindex g f.src;
    dst = Fsa_term.Action.reindex g f.dst }
