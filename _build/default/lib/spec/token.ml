(* Tokens of the specification language. *)

type t =
  | Ident of string
  | Int of int
  | String of string
  | Lbrace
  | Rbrace
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Comma
  | Dot
  | Eq  (* = *)
  | Eq_eq  (* == *)
  | Bang_eq  (* != *)
  | Arrow  (* -> *)
  | And_and  (* && *)
  | Or_or  (* || *)
  | Bang  (* ! *)
  | Colon
  | Eof

let pp ppf = function
  | Ident s -> Fmt.pf ppf "identifier %S" s
  | Int i -> Fmt.pf ppf "integer %d" i
  | String s -> Fmt.pf ppf "string %S" s
  | Lbrace -> Fmt.string ppf "'{'"
  | Rbrace -> Fmt.string ppf "'}'"
  | Lparen -> Fmt.string ppf "'('"
  | Rparen -> Fmt.string ppf "')'"
  | Lbracket -> Fmt.string ppf "'['"
  | Rbracket -> Fmt.string ppf "']'"
  | Comma -> Fmt.string ppf "','"
  | Dot -> Fmt.string ppf "'.'"
  | Eq -> Fmt.string ppf "'='"
  | Eq_eq -> Fmt.string ppf "'=='"
  | Bang_eq -> Fmt.string ppf "'!='"
  | Arrow -> Fmt.string ppf "'->'"
  | And_and -> Fmt.string ppf "'&&'"
  | Or_or -> Fmt.string ppf "'||'"
  | Bang -> Fmt.string ppf "'!'"
  | Colon -> Fmt.string ppf "':'"
  | Eof -> Fmt.string ppf "end of input"

let equal a b =
  match a, b with
  | Ident x, Ident y -> String.equal x y
  | Int x, Int y -> x = y
  | String x, String y -> String.equal x y
  | Lbrace, Lbrace | Rbrace, Rbrace | Lparen, Lparen | Rparen, Rparen
  | Lbracket, Lbracket | Rbracket, Rbracket | Comma, Comma | Dot, Dot
  | Eq, Eq | Eq_eq, Eq_eq | Bang_eq, Bang_eq | Arrow, Arrow
  | And_and, And_and | Or_or, Or_or | Bang, Bang | Colon, Colon | Eof, Eof ->
    true
  | _, _ -> false
