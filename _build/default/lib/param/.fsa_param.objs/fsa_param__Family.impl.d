lib/param/family.ml: Fmt Fsa_model Fsa_requirements Fsa_term List
