lib/requirements/auth.ml: Fmt Fsa_term List Stdlib
