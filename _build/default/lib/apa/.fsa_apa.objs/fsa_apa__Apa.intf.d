lib/apa/apa.mli: Fmt Fsa_term Map
