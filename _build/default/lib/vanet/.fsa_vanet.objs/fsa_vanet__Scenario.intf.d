lib/vanet/scenario.mli: Fsa_model Fsa_term
