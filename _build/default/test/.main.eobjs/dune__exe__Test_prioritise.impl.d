test/test_prioritise.ml: Alcotest Fmt Fsa_requirements Fsa_term Fsa_vanet List String
