lib/term/lexer.ml: Printf String
