(** Pretty-printing of specification ASTs back to concrete syntax.

    Round-trips with the parser: [Parser.parse_string (to_string ast)]
    equals [ast] up to source locations (see {!equal}). *)

val pp_decl : Ast.decl Fmt.t
val pp : Ast.t Fmt.t
val to_string : Ast.t -> string

val equal : Ast.t -> Ast.t -> bool
(** Structural equality up to source locations. *)

val equal_decl : Ast.decl -> Ast.decl -> bool
val equal_sterm : Ast.sterm -> Ast.sterm -> bool
val equal_cond : Ast.cond -> Ast.cond -> bool
