lib/spec/token.ml: Fmt String
