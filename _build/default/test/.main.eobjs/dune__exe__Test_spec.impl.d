test/test_spec.ml: Alcotest Filename Fsa_apa Fsa_grid Fsa_lts Fsa_model Fsa_requirements Fsa_spec Fsa_term Fsa_vanet List QCheck2 QCheck_alcotest Sys
