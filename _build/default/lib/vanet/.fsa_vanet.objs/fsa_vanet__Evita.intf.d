lib/vanet/evita.mli: Fmt Fsa_model Fsa_term
