lib/model/action_graph.ml: Flow Fsa_graph Fsa_order Fsa_term List
