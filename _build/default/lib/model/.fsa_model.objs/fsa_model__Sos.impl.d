lib/model/sos.ml: Action_graph Component Flow Fmt Fsa_term List Option String
