lib/core/apa_of_model.ml: Analysis Fmt Fsa_apa Fsa_model Fsa_requirements Fsa_term List
