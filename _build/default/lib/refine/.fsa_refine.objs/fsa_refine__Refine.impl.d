lib/refine/refine.ml: Fmt Fsa_model Fsa_requirements Fsa_term List
